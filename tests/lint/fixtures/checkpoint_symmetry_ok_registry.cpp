// Fixture: the compliant shape — tags referenced from the registry
// constant, a symmetric save/restore pair, and a deliberate one-sided
// reader waived with a reason.
// lint-fixture-path: src/core/fixture_component.hpp
namespace losstomo::io {
class CheckpointWriter;
class CheckpointReader;
namespace tags {
inline constexpr char kFixture[] = "FIXT";
}  // namespace tags
}  // namespace losstomo::io

namespace losstomo::core {

class FixtureComponent {
 public:
  void save_state(io::CheckpointWriter& writer) const;
  void restore_state(io::CheckpointReader& reader);
};

class LegacyImageReader {
 public:
  // lint: checkpoint-symmetry-ok(migration shim: reads the pre-v2 image
  // only; the writer side was retired with CheckpointWriter::kVersion 2)
  void restore_state(io::CheckpointReader& reader);
};

}  // namespace losstomo::core
