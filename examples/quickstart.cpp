// Quickstart: the paper's Figure 1 story, end to end, on six nodes.
//
//  1. Build the three-path, five-link network of Fig. 1.
//  2. Show that first-moment (mean) measurements cannot identify link loss
//     rates: two different assignments produce identical path data.
//  3. Show that the augmented matrix A has full column rank (Theorem 1):
//     link *variances* are identifiable.
//  4. Run LIA: learn variances from snapshots, eliminate quiet links,
//     recover the loss rates of the congested links exactly.
//
// Build & run:   ./build/examples/quickstart
#include <cmath>
#include <iostream>

#include "baselines/first_moment.hpp"
#include "core/augmented_matrix.hpp"
#include "core/lia.hpp"
#include "linalg/qr.hpp"
#include "net/routing_matrix.hpp"
#include "stats/moments.hpp"
#include "stats/rng.hpp"
#include "util/table.hpp"

using namespace losstomo;

int main() {
  // --- 1. The Figure-1 network: beacon B1, destinations D1..D3 ----------
  // B1 -> v -> {D1, w}, w -> {D2, D3}.  Five links; e1 = B1->v is shared
  // by all three paths.
  net::Graph graph(6);
  const auto e1 = graph.add_edge(0, 1);  // B1 -> v (shared)
  const auto e2 = graph.add_edge(1, 3);  // v  -> D1
  const auto e3 = graph.add_edge(1, 2);  // v  -> w (shared by P2, P3)
  const auto e4 = graph.add_edge(2, 4);  // w  -> D2
  const auto e5 = graph.add_edge(2, 5);  // w  -> D3
  std::vector<net::Path> paths{
      {.source = 0, .destination = 3, .edges = {e1, e2}},
      {.source = 0, .destination = 4, .edges = {e1, e3, e4}},
      {.source = 0, .destination = 5, .edges = {e1, e3, e5}},
  };
  const net::ReducedRoutingMatrix rrm(graph, paths);
  const auto& r = rrm.matrix();
  std::cout << "Routing matrix R (" << r.rows() << " paths x " << r.cols()
            << " links), rank " << linalg::matrix_rank(r.to_dense()) << "\n\n";

  // --- 2. Means are not identifiable ------------------------------------
  // Two different link transmission-rate assignments that induce the SAME
  // end-to-end transmission rates (the paper's Fig. 1 ambiguity).
  const linalg::Vector phi_a{0.90, 0.95, 0.88, 0.92, 0.85};
  linalg::Vector phi_b = phi_a;
  phi_b[0] = phi_a[0] * 0.95;  // shift loss from the shared link...
  phi_b[1] = phi_a[1] / 0.95;  // ...onto each downstream branch
  phi_b[2] = phi_a[2] / 0.95;
  const auto to_y = [&](const linalg::Vector& phi) {
    linalg::Vector x(phi.size());
    for (std::size_t k = 0; k < phi.size(); ++k) x[k] = std::log(phi[k]);
    return r.multiply(x);
  };
  const auto ya = to_y(phi_a);
  const auto yb = to_y(phi_b);
  std::cout << "Two distinct assignments, max path-measurement difference: "
            << util::Table::num(linalg::max_abs_diff(ya, yb), 12)
            << "  (identical => means unidentifiable)\n";
  const auto naive = baselines::solve_first_moment(r, ya);
  std::cout << "First-moment solver: rank " << naive.rank << " of "
            << naive.columns << " -> "
            << (naive.identifiable() ? "identifiable" : "NOT identifiable")
            << "\n\n";

  // --- 3. Variances ARE identifiable (Theorem 1) ------------------------
  const auto a = core::build_augmented_matrix(r);
  std::cout << "Augmented matrix A: " << a.rows() << " pair equations x "
            << a.cols() << " links, rank " << linalg::matrix_rank(a)
            << "  (full column rank => variances identifiable)\n\n";

  // --- 4. LIA ------------------------------------------------------------
  // Scenario: links e1 and e4 are congested (lossy and variable); the rest
  // are quiet.  Draw m snapshots of the exact log-linear model.
  const linalg::Vector mu{-0.10, -1e-4, -1e-4, -0.15, -1e-4};
  const linalg::Vector v_true{0.004, 1e-10, 1e-10, 0.006, 1e-10};
  stats::Rng rng(2007);
  const std::size_t m = 200;
  stats::SnapshotMatrix history(r.rows(), m);
  linalg::Vector x(r.cols());
  for (std::size_t l = 0; l < m; ++l) {
    for (std::size_t k = 0; k < r.cols(); ++k) {
      x[k] = std::min(rng.gaussian(mu[k], std::sqrt(v_true[k])), 0.0);
    }
    const auto y = r.multiply(x);
    std::copy(y.begin(), y.end(), history.sample(l).begin());
  }

  core::Lia lia(r);
  const auto& learned = lia.learn(history);
  std::cout << "Phase 1 (" << learned.method << "): learned variances\n";

  // A fresh snapshot to diagnose.
  linalg::Vector x_now(r.cols());
  for (std::size_t k = 0; k < r.cols(); ++k) {
    x_now[k] = std::min(rng.gaussian(mu[k], std::sqrt(v_true[k])), 0.0);
  }
  const auto result = lia.infer(r.multiply(x_now));

  util::Table table({"link", "true loss", "inferred loss", "learned var",
                     "phase-2"});
  const char* names[] = {"e1 B1->v", "e2 v->D1", "e3 v->w", "e4 w->D2",
                         "e5 w->D3"};
  for (std::size_t k = 0; k < r.cols(); ++k) {
    table.add_row({names[k], util::Table::num(1.0 - std::exp(x_now[k]), 4),
                   util::Table::num(result.loss[k], 4),
                   util::Table::num(learned.v[k], 6),
                   result.removed[k] ? "eliminated (loss ~ 0)" : "solved"});
  }
  table.print(std::cout);
  std::cout << "\nThe two congested links are recovered from measurements "
               "that could not even identify the means.\n";
  return 0;
}
