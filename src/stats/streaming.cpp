#include "stats/streaming.hpp"

#include <algorithm>
#include <stdexcept>

#include "io/checkpoint.hpp"
#include "io/checkpoint_tags.hpp"
#include "linalg/kernels.hpp"
#include "util/parallel.hpp"

namespace losstomo::stats {

StreamingMoments::StreamingMoments(std::size_t dim,
                                   StreamingMomentsOptions options)
    : dim_(dim),
      options_(options),
      churn_(dim),
      ring_(dim, options.window),
      mean_(dim, 0.0),
      delta_(dim, 0.0),
      cross_(dim, dim),
      cov_(dim, dim) {
  if (options_.window < 2) throw std::invalid_argument("window must be >= 2");
  if (options_.refresh_every == 0) {
    options_.refresh_every = 2 * options_.window;
  }
}

void StreamingMoments::activate_path(std::size_t i) {
  if (i >= dim_) throw std::invalid_argument("path out of range");
  churn_.activate(i, pushes_);
}

void StreamingMoments::retire_path(std::size_t i) {
  if (i >= dim_) throw std::invalid_argument("path out of range");
  churn_.retire(i);
}

std::size_t StreamingMoments::add_path() { return add_paths(1); }

std::size_t StreamingMoments::add_paths(std::size_t count) {
  if (count == 0) throw std::invalid_argument("add_paths needs count >= 1");
  const std::size_t index = dim_;
  const std::size_t next = dim_ + count;
  // Grow the ring: old rows widen with a zero tail — for the incremental
  // invariant the new dimensions' history IS zero.
  SnapshotMatrix ring(next, options_.window);
  for (std::size_t l = 0; l < options_.window; ++l) {
    const auto src = ring_.sample(l);
    std::copy(src.begin(), src.end(), ring.sample(l).begin());
  }
  ring_ = std::move(ring);
  linalg::Matrix cross(next, next);
  for (std::size_t i = 0; i < dim_; ++i) {
    const auto src = cross_.row(i);
    std::copy(src.begin(), src.end(), cross.row(i).begin());
  }
  cross_ = std::move(cross);
  cov_ = linalg::Matrix(next, next);
  cov_valid_ = false;
  mean_.resize(next, 0.0);
  delta_.resize(next, 0.0);
  for (std::size_t k = 0; k < count; ++k) churn_.add_dim(pushes_);
  dim_ = next;
  return index;
}

std::size_t StreamingMoments::samples(std::size_t i) const {
  return churn_.samples(i, pushes_, count_);
}

bool StreamingMoments::pair_ready(std::size_t i, std::size_t j) const {
  return churn_.pair_ready(i, j, pushes_, count_);
}

void StreamingMoments::rank1(double w) {
  util::parallel_for(
      dim_, 64,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const double wi = w * delta_[i];
          if (wi == 0.0) continue;
          auto row = cross_.row(i);
          for (std::size_t j = 0; j < dim_; ++j) row[j] += wi * delta_[j];
        }
      },
      options_.threads);
}

void StreamingMoments::add(std::span<const double> y) {
  const double n1 = static_cast<double>(count_ + 1);
  for (std::size_t i = 0; i < dim_; ++i) delta_[i] = y[i] - mean_[i];
  for (std::size_t i = 0; i < dim_; ++i) mean_[i] += delta_[i] / n1;
  if (count_ > 0) rank1(static_cast<double>(count_) / n1);
  ++count_;
}

void StreamingMoments::retire(std::span<const double> y) {
  const double n = static_cast<double>(count_);
  for (std::size_t i = 0; i < dim_; ++i) delta_[i] = y[i] - mean_[i];
  if (count_ == 1) {
    std::fill(mean_.begin(), mean_.end(), 0.0);
    std::fill(cross_.data().begin(), cross_.data().end(), 0.0);
    count_ = 0;
    return;
  }
  const double n1 = n - 1.0;
  for (std::size_t i = 0; i < dim_; ++i) mean_[i] -= delta_[i] / n1;
  rank1(-n / n1);
  --count_;
}

void StreamingMoments::push(std::span<const double> y) {
  if (y.size() != dim_) throw std::invalid_argument("snapshot size != dim");
  std::size_t slot;
  if (count_ == options_.window) {
    slot = head_;
    retire(ring_.sample(head_));
    head_ = (head_ + 1) % options_.window;
  } else {
    slot = (head_ + count_) % options_.window;
  }
  std::copy(y.begin(), y.end(), ring_.sample(slot).begin());
  add(y);
  ++pushes_;
  cov_valid_ = false;
  if (++since_refresh_ >= options_.refresh_every) refresh();
}

void StreamingMoments::push_block(std::span<const double> values,
                                  std::size_t rows) {
  if (values.size() != rows * dim_) {
    throw std::invalid_argument("push_block size != rows * dim");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    push(values.subspan(r * dim_, dim_));
  }
}

void StreamingMoments::refresh() {
  since_refresh_ = 0;
  ++refreshes_;
  cov_valid_ = false;
  if (count_ == 0) return;
  // Logical (oldest-to-newest) order, so the result is independent of the
  // ring head position.
  SnapshotMatrix centered(dim_, count_);
  std::fill(mean_.begin(), mean_.end(), 0.0);
  for (std::size_t l = 0; l < count_; ++l) {
    const auto src = ring_.sample((head_ + l) % options_.window);
    for (std::size_t i = 0; i < dim_; ++i) mean_[i] += src[i];
  }
  const double inv = 1.0 / static_cast<double>(count_);
  for (auto& m : mean_) m *= inv;
  for (std::size_t l = 0; l < count_; ++l) {
    const auto src = ring_.sample((head_ + l) % options_.window);
    auto dst = centered.sample(l);
    for (std::size_t i = 0; i < dim_; ++i) dst[i] = src[i] - mean_[i];
  }
  cross_ = linalg::blocked_gram(centered.flat().data(), count_, dim_, 1.0,
                                options_.threads);
}

void StreamingMoments::save_state(io::CheckpointWriter& writer) const {
  writer.begin_section(io::tags::kStreamingMoments);
  writer.usize(dim_);
  writer.usize(options_.window);
  churn_.save_state(writer);
  writer.doubles(ring_.flat());
  writer.usize(head_);
  writer.usize(count_);
  writer.usize(pushes_);
  writer.usize(since_refresh_);
  writer.usize(refreshes_);
  writer.doubles(mean_);
  writer.doubles(cross_.data());
  writer.end_section();
}

void StreamingMoments::restore_state(io::CheckpointReader& reader) {
  reader.expect_section(io::tags::kStreamingMoments);
  const std::size_t dim = reader.usize();
  const std::size_t window = reader.usize();
  if (dim != dim_ || window != options_.window) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "streaming moments shape " + std::to_string(dim) + "x" +
            std::to_string(window) + ", expected " + std::to_string(dim_) +
            "x" + std::to_string(options_.window));
  }
  // Parse everything into temporaries, validate, then commit with moves so
  // a corrupt section leaves *this untouched.
  PathChurnLedger churn = churn_;
  churn.restore_state(reader);
  std::vector<double> ring = reader.doubles();
  const std::size_t head = reader.usize();
  const std::size_t count = reader.usize();
  const std::size_t pushes = reader.usize();
  const std::size_t since_refresh = reader.usize();
  const std::size_t refreshes = reader.usize();
  std::vector<double> mean = reader.doubles();
  std::vector<double> cross = reader.doubles();
  reader.end_section();
  if (ring.size() != dim_ * options_.window || head >= options_.window ||
      count > options_.window || mean.size() != dim_ ||
      cross.size() != dim_ * dim_) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "streaming moments state is inconsistent");
  }
  churn_ = std::move(churn);
  std::copy(ring.begin(), ring.end(), ring_.sample(0).data());
  head_ = head;
  count_ = count;
  pushes_ = pushes;
  since_refresh_ = since_refresh;
  refreshes_ = refreshes;
  mean_ = std::move(mean);
  std::copy(cross.begin(), cross.end(), cross_.data().begin());
  cov_valid_ = false;
}

double StreamingMoments::covariance(std::size_t i, std::size_t j) const {
  if (count_ < 2) throw std::logic_error("covariance needs >= 2 snapshots");
  return cross_(i, j) / static_cast<double>(count_ - 1);
}

const linalg::Matrix& StreamingMoments::matrix() const {
  if (count_ < 2) throw std::logic_error("covariance needs >= 2 snapshots");
  if (!cov_valid_) {
    const double inv = 1.0 / static_cast<double>(count_ - 1);
    const auto& src = cross_.data();
    auto& dst = cov_.data();
    util::parallel_for(
        dim_, 64,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t idx = begin * dim_; idx < end * dim_; ++idx) {
            dst[idx] = src[idx] * inv;
          }
        },
        options_.threads);
    cov_valid_ = true;
  }
  return cov_;
}

}  // namespace losstomo::stats
