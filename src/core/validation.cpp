#include "core/validation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace losstomo::core {

SplitIndices split_paths(std::size_t path_count, stats::Rng& rng) {
  std::vector<std::size_t> order(path_count);
  std::iota(order.begin(), order.end(), 0u);
  std::shuffle(order.begin(), order.end(), rng.engine());
  SplitIndices split;
  const std::size_t half = path_count / 2;
  split.inference.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(half));
  split.validation.assign(order.begin() + static_cast<std::ptrdiff_t>(half), order.end());
  std::sort(split.inference.begin(), split.inference.end());
  std::sort(split.validation.begin(), split.validation.end());
  return split;
}

CrossValidationResult cross_validate(
    const net::Graph& g, const std::vector<net::Path>& all_paths,
    const stats::SnapshotMatrix& history_y,
    std::span<const double> current_y_log,
    std::span<const double> current_phi, const SplitIndices& split,
    double epsilon, const LiaOptions& options) {
  if (history_y.dim() != all_paths.size() ||
      current_y_log.size() != all_paths.size() ||
      current_phi.size() != all_paths.size()) {
    throw std::invalid_argument("cross_validate: size mismatch");
  }

  // Inference topology: reduced routing matrix over the inference paths.
  std::vector<net::Path> inf_paths;
  inf_paths.reserve(split.inference.size());
  for (const auto i : split.inference) inf_paths.push_back(all_paths[i]);
  const net::ReducedRoutingMatrix inf_rrm(g, std::move(inf_paths));

  // Restrict history/current snapshots to the inference rows.
  stats::SnapshotMatrix inf_history(split.inference.size(), history_y.count());
  for (std::size_t l = 0; l < history_y.count(); ++l) {
    const auto src = history_y.sample(l);
    auto dst = inf_history.sample(l);
    for (std::size_t i = 0; i < split.inference.size(); ++i) {
      dst[i] = src[split.inference[i]];
    }
  }
  linalg::Vector inf_y(split.inference.size());
  for (std::size_t i = 0; i < split.inference.size(); ++i) {
    inf_y[i] = current_y_log[split.inference[i]];
  }

  Lia lia(inf_rrm.matrix(), options);
  lia.learn(inf_history);
  const LossInference inference = lia.infer(inf_y);

  // Distribute each virtual link's log rate uniformly over its member
  // edges so partially-covered validation paths can be scored.
  std::vector<double> edge_log_phi(g.edge_count(), 0.0);
  std::vector<bool> edge_covered(g.edge_count(), false);
  for (std::size_t k = 0; k < inf_rrm.link_count(); ++k) {
    const auto members = inf_rrm.members(k);
    const double per_edge =
        std::log(std::max(inference.phi[k], 1e-12)) /
        static_cast<double>(members.size());
    for (const auto e : members) {
      edge_log_phi[e] = per_edge;
      edge_covered[e] = true;
    }
  }

  CrossValidationResult result;
  for (const auto i : split.validation) {
    double predicted_log = 0.0;
    bool any_covered = false;
    for (const auto e : all_paths[i].edges) {
      if (edge_covered[e]) {
        predicted_log += edge_log_phi[e];
        any_covered = true;
      }
    }
    if (!any_covered) {
      ++result.uncovered;
      continue;
    }
    ++result.checked;
    const double predicted_phi = std::exp(predicted_log);
    if (std::fabs(current_phi[i] - predicted_phi) <= epsilon) {
      ++result.consistent;
    }
  }
  return result;
}

}  // namespace losstomo::core
