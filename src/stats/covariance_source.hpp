// CovarianceSource — where the Phase-1 estimator gets its second-order
// statistics from.
//
// The covariance system Sigma* = A v only ever consumes pairwise sample
// covariances of the path observations; it does not care how they were
// produced.  This interface decouples the estimator stack
// (core::build_normal_equations / core::estimate_link_variances /
// core::Lia::learn) from the measurement representation, with two
// implementations:
//
//  * BatchCovarianceSource — the reference batch path: wraps the centred
//    m x np snapshot matrix, serves on-demand O(m) pair covariances, and
//    materialises the full covariance matrix S lazily via the blocked SYRK
//    kernel when a consumer asks for it;
//  * stats::StreamingMoments (streaming.hpp) — a sliding-window accumulator
//    that maintains S under O(np^2) rank-1 add/retire updates, so a
//    monitoring loop never pays the O(m np^2) batch recomputation.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "linalg/matrix.hpp"
#include "stats/moments.hpp"

namespace losstomo::stats {

/// Abstract supplier of the unbiased sample covariance of an np-dimensional
/// observation vector (paper eq. (7)).
///
/// Thread-safety contract for implementations: all methods here are
/// logically const reads and must be safe to call concurrently *after*
/// matrix() has been materialised once; mutating operations (e.g.
/// StreamingMoments::push) are single-writer and must not overlap reads.
class CovarianceSource {
 public:
  virtual ~CovarianceSource() = default;

  /// Observation dimension (number of paths np).
  [[nodiscard]] virtual std::size_t dim() const = 0;
  /// Number of samples backing the current statistics (the window m).
  [[nodiscard]] virtual std::size_t count() const = 0;

  /// Unbiased sample covariance between coordinates i and j.  Requires
  /// count() >= 2.
  [[nodiscard]] virtual double covariance(std::size_t i, std::size_t j) const = 0;

  /// Full dim() x dim() covariance matrix S.  Implementations cache the
  /// result, but the first call may be expensive (see matrix_is_cheap).
  [[nodiscard]] virtual const linalg::Matrix& matrix() const = 0;

  /// True when matrix() is available without significant computation
  /// (streaming accumulators maintain S; batch sources compute it lazily).
  /// Consumers use this to pick between matrix reads and covariance().
  [[nodiscard]] virtual bool matrix_is_cheap() const = 0;

  /// Optional fast path: row-major centred samples (count() rows of dim()
  /// entries) when the implementation stores them; empty otherwise.
  /// Consumers that stream over raw samples (the sparse-sharing pairwise
  /// accumulation) use this instead of per-pair covariance() calls.
  [[nodiscard]] virtual std::span<const double> centered_flat() const {
    return {};
  }
};

/// Batch implementation over a snapshot window: the PR-1 path, unchanged in
/// behaviour, behind the CovarianceSource interface.
class BatchCovarianceSource final : public CovarianceSource {
 public:
  /// Centres `y` and owns the result.  `threads` caps the blocked SYRK
  /// worker count when matrix() is materialised (0 = library default).
  explicit BatchCovarianceSource(const SnapshotMatrix& y,
                                 std::size_t threads = 0);
  /// Non-owning view over already-centred snapshots; `centered` must
  /// outlive this source.
  explicit BatchCovarianceSource(const CenteredSnapshots& centered,
                                 std::size_t threads = 0);

  // centered_ points into owned_ for the owning constructor, so default
  // copy/move would dangle.
  BatchCovarianceSource(const BatchCovarianceSource&) = delete;
  BatchCovarianceSource& operator=(const BatchCovarianceSource&) = delete;

  [[nodiscard]] std::size_t dim() const override { return centered_->dim(); }
  [[nodiscard]] std::size_t count() const override {
    return centered_->count();
  }
  [[nodiscard]] double covariance(std::size_t i, std::size_t j) const override {
    return centered_->covariance(i, j);
  }
  [[nodiscard]] const linalg::Matrix& matrix() const override;
  [[nodiscard]] bool matrix_is_cheap() const override {
    return cached_.has_value();
  }
  [[nodiscard]] std::span<const double> centered_flat() const override {
    return centered_->flat();
  }

  [[nodiscard]] const CenteredSnapshots& centered() const { return *centered_; }

 private:
  std::optional<CenteredSnapshots> owned_;
  const CenteredSnapshots* centered_;
  std::size_t threads_;
  mutable std::optional<linalg::Matrix> cached_;  // lazily built S
};

}  // namespace losstomo::stats
