// Link loss-rate models LLRD1 / LLRD2 (paper §6, after Padmanabhan et al.).
//
// In every snapshot each link is congested with probability p.  Under
// LLRD1 congested links get loss rates uniform in [0.05, 0.2] and good
// links uniform in [0, 0.002]; LLRD2 widens the congested range to
// [0.002, 1].  The threshold tl = 0.002 separates good from congested in
// both models and is the classification threshold used by the DR/FPR
// metrics.
#pragma once

#include "stats/rng.hpp"

namespace losstomo::sim {

enum class LossRateModel {
  kLlrd1,
  kLlrd2,
};

struct LossModelConfig {
  LossRateModel model = LossRateModel::kLlrd1;
  double threshold_tl = 0.002;  // good/congested classification threshold
  double good_lo = 0.0;
  double good_hi = 0.002;
  double congested_lo = 0.05;   // LLRD1 default; LLRD2 uses [0.002, 1]
  double congested_hi = 0.2;

  /// Canonical configurations from the paper.
  static LossModelConfig llrd1();
  static LossModelConfig llrd2();

  /// LLRD1 with near-lossless good links (good_hi = 5e-4).
  ///
  /// Calibration note: the paper's reported accuracy (Fig. 6 absolute
  /// errors capped at ~0.0025, Fig. 5 FPR ~3%) is unattainable if good
  /// links realise losses from the full [0, 0.002] range — at S = 1000 a
  /// 0.002-rate link crosses the tl = 0.002 classification threshold in
  /// ~30% of snapshots through sampling alone.  Their numbers imply good
  /// links that essentially never drop probes; this profile is the largest
  /// good-loss range consistent with the reported FPR.  The sensitivity to
  /// good_hi is quantified in bench/ablation_lossmodel.
  static LossModelConfig llrd1_calibrated();
};

/// Draws a loss rate for a link given its congestion state.
double draw_loss_rate(const LossModelConfig& config, bool congested,
                      stats::Rng& rng);

}  // namespace losstomo::sim
