#include "net/graph.hpp"

#include <queue>
#include <stdexcept>

namespace losstomo::net {

Graph::Graph(std::size_t node_count) { add_nodes(node_count); }

NodeId Graph::add_nodes(std::size_t count) {
  const auto first = static_cast<NodeId>(out_.size());
  out_.resize(out_.size() + count);
  in_.resize(in_.size() + count);
  as_.resize(as_.size() + count, kNoAs);
  return first;
}

EdgeId Graph::add_edge(NodeId from, NodeId to) {
  if (from >= node_count() || to >= node_count()) {
    throw std::invalid_argument("edge endpoint out of range");
  }
  if (from == to) throw std::invalid_argument("self-loop not allowed");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({from, to});
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

EdgeId Graph::add_bidirectional(NodeId a, NodeId b) {
  const EdgeId forward = add_edge(a, b);
  add_edge(b, a);
  return forward;
}

bool Graph::is_inter_as(EdgeId e) const {
  const auto& ed = edges_[e];
  const auto a = as_[ed.from];
  const auto b = as_[ed.to];
  return a != kNoAs && b != kNoAs && a != b;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  for (const auto e : out_[a]) {
    if (edges_[e].to == b) return true;
  }
  return false;
}

std::vector<NodeId> Graph::reachable_from(NodeId v) const {
  std::vector<bool> seen(node_count(), false);
  std::vector<NodeId> order;
  std::queue<NodeId> frontier;
  frontier.push(v);
  seen[v] = true;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    order.push_back(u);
    for (const auto e : out_[u]) {
      const NodeId w = edges_[e].to;
      if (!seen[w]) {
        seen[w] = true;
        frontier.push(w);
      }
    }
  }
  return order;
}

bool Graph::all_reachable_from(NodeId v) const {
  return reachable_from(v).size() == node_count();
}

}  // namespace losstomo::net
