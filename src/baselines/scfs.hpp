// SCFS — Smallest Consistent Failure Set (Duffield, IEEE Trans. IT 2006).
//
// The single-snapshot baseline the paper compares against in Fig. 5.  SCFS
// consumes *binary* path states (good/bad) from one snapshot and returns
// the smallest set of links whose failure explains every bad path, under
// the priors that links fail independently with equal probability and that
// failures are rare:
//   * on a tree, blame the highest (closest to the root) link whose entire
//     downstream path set is bad;
//   * on a general topology (extension), greedy set cover over links not
//     appearing on any good path.
//
// Path binarisation: a path is declared bad when its measured transmission
// rate falls below (1 - tl)^|path| — the value it would have if every
// traversed link sat exactly at the good/congested threshold tl (see
// DESIGN.md §5).
#pragma once

#include <span>
#include <vector>

#include "linalg/sparse.hpp"
#include "net/routing_matrix.hpp"

namespace losstomo::baselines {

/// Binary path states from measured transmission rates.
/// `path_phi[i]` is the measured transmission rate of path i;
/// `path_lengths[i]` its hop count (virtual links).
std::vector<bool> binarize_paths(std::span<const double> path_phi,
                                 std::span<const std::size_t> path_lengths,
                                 double tl);

/// Convenience: path lengths (in virtual links) of a routing matrix.
std::vector<std::size_t> path_lengths(const linalg::SparseBinaryMatrix& r);

/// Tree SCFS.  `r` must be the reduced routing matrix of a single-beacon
/// tree (every path starts at the root); `path_bad[i]` is the binary state
/// of path i.  Returns the per-link diagnosis (true = congested).
std::vector<bool> scfs_tree(const net::ReducedRoutingMatrix& rrm,
                            const std::vector<bool>& path_bad);

/// General-topology greedy variant: links on any good path are exonerated;
/// remaining bad paths are covered greedily by the link explaining the
/// most of them (ties: smaller id).
std::vector<bool> scfs_general(const linalg::SparseBinaryMatrix& r,
                               const std::vector<bool>& path_bad);

}  // namespace losstomo::baselines
