#include "io/checkpoint.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <fstream>
#include <limits>

namespace losstomo::io {
namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'L', 'T', 'C', 'P'};
// magic + version + payload size + crc.
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4;

void append_le(std::vector<std::uint8_t>& out, std::uint64_t v,
               std::size_t bytes) {
  for (std::size_t b = 0; b < bytes; ++b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

std::uint64_t read_le(const std::uint8_t* p, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t b = 0; b < bytes; ++b) {
    v |= static_cast<std::uint64_t>(p[b]) << (8 * b);
  }
  return v;
}

std::uint32_t tag_value(const char* tag) {
  if (tag == nullptr || std::strlen(tag) != 4) {
    throw std::logic_error("checkpoint section tags must be 4 characters");
  }
  std::uint32_t v = 0;
  for (std::size_t b = 0; b < 4; ++b) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(tag[b]))
         << (8 * b);
  }
  return v;
}

std::string tag_name(std::uint32_t v) {
  std::string s(4, '?');
  for (std::size_t b = 0; b < 4; ++b) {
    const char c = static_cast<char>((v >> (8 * b)) & 0xff);
    s[b] = (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  return s;
}

}  // namespace

const char* checkpoint_error_kind_name(CheckpointErrorKind kind) {
  switch (kind) {
    case CheckpointErrorKind::kIo: return "io";
    case CheckpointErrorKind::kBadMagic: return "bad-magic";
    case CheckpointErrorKind::kBadVersion: return "bad-version";
    case CheckpointErrorKind::kTruncated: return "truncated";
    case CheckpointErrorKind::kCorrupt: return "corrupt";
    case CheckpointErrorKind::kMismatch: return "mismatch";
  }
  return "unknown";
}

CheckpointError::CheckpointError(CheckpointErrorKind kind,
                                 const std::string& detail)
    : std::runtime_error(std::string("checkpoint ") +
                         checkpoint_error_kind_name(kind) + ": " + detail),
      kind_(kind) {}

namespace {

// Reflected CRC-32 (polynomial 0xedb88320), slice-by-8 tables built on
// first use.  table[0] is the classic byte-at-a-time table; table[k]
// folds a byte sitting k positions ahead, so the hot loop consumes 8
// input bytes per iteration with 8 independent lookups (no loop-carried
// table dependency), which matters at checkpoint/trace payload sizes
// (hundreds of MB checkpointed, whole traces CRC'd at open).  The result
// is identical to the byte-at-a-time loop for every input.
const std::array<std::array<std::uint32_t, 256>, 8>& crc32_tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        c = t[0][c & 0xffu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  Crc32 crc;
  crc.update(bytes);
  return crc.value();
}

void Crc32::update(std::span<const std::uint8_t> bytes) {
  const auto& t = crc32_tables();
  std::uint32_t crc = state_;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    // Little-endian-free: assemble the two words byte-by-byte (the
    // compiler fuses these into plain loads on LE targets).
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
          t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    crc = t[0][(crc ^ *p) & 0xffu] ^ (crc >> 8);
  }
  state_ = crc;
}

// -- CheckpointWriter -------------------------------------------------------

void CheckpointWriter::u8(std::uint8_t v) { payload_.push_back(v); }
void CheckpointWriter::u32(std::uint32_t v) { append_le(payload_, v, 4); }
void CheckpointWriter::u64(std::uint64_t v) { append_le(payload_, v, 8); }
void CheckpointWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void CheckpointWriter::str(const std::string& s) {
  usize(s.size());
  payload_.insert(payload_.end(), s.begin(), s.end());
}

void CheckpointWriter::doubles(std::span<const double> v) {
  usize(v.size());
  for (const double x : v) f64(x);
}

void CheckpointWriter::u8s(std::span<const std::uint8_t> v) {
  usize(v.size());
  payload_.insert(payload_.end(), v.begin(), v.end());
}

void CheckpointWriter::u32s(std::span<const std::uint32_t> v) {
  usize(v.size());
  for (const std::uint32_t x : v) u32(x);
}

void CheckpointWriter::sizes(std::span<const std::size_t> v) {
  usize(v.size());
  for (const std::size_t x : v) usize(x);
}

void CheckpointWriter::begin_section(const char* tag) {
  u32(tag_value(tag));
  open_sections_.push_back(payload_.size());
  u64(0);  // size slot, patched by end_section
}

void CheckpointWriter::end_section() {
  if (open_sections_.empty()) {
    throw std::logic_error("checkpoint end_section without begin_section");
  }
  const std::size_t slot = open_sections_.back();
  open_sections_.pop_back();
  const std::uint64_t size = payload_.size() - (slot + 8);
  for (std::size_t b = 0; b < 8; ++b) {
    payload_[slot + b] = static_cast<std::uint8_t>(size >> (8 * b));
  }
}

std::vector<std::uint8_t> CheckpointWriter::finish() {
  if (finished_) {
    throw std::logic_error("checkpoint writer already finished");
  }
  if (!open_sections_.empty()) {
    throw std::logic_error("checkpoint finish with an open section");
  }
  finished_ = true;
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload_.size());
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  append_le(out, kVersion, 4);
  append_le(out, payload_.size(), 8);
  append_le(out, crc32(payload_), 4);
  out.insert(out.end(), payload_.begin(), payload_.end());
  return out;
}

void CheckpointWriter::save(const std::string& file) {
  const std::vector<std::uint8_t> bytes = finish();
  std::ofstream os(file, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw CheckpointError(CheckpointErrorKind::kIo,
                          "cannot open '" + file + "' for writing");
  }
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  os.flush();
  if (!os) {
    throw CheckpointError(CheckpointErrorKind::kIo,
                          "short write to '" + file + "'");
  }
}

// -- CheckpointReader -------------------------------------------------------

CheckpointReader CheckpointReader::from_file(const std::string& file) {
  std::ifstream is(file, std::ios::binary);
  if (!is) {
    throw CheckpointError(CheckpointErrorKind::kIo,
                          "cannot open '" + file + "'");
  }
  std::vector<std::uint8_t> bytes;
  is.seekg(0, std::ios::end);
  const std::streamoff size = is.tellg();
  if (size < 0) {
    throw CheckpointError(CheckpointErrorKind::kIo,
                          "cannot size '" + file + "'");
  }
  bytes.resize(static_cast<std::size_t>(size));
  is.seekg(0, std::ios::beg);
  if (size > 0) {
    is.read(reinterpret_cast<char*>(bytes.data()), size);
  }
  if (is.bad() || is.gcount() != size) {
    throw CheckpointError(CheckpointErrorKind::kIo,
                          "short read from '" + file + "'");
  }
  return CheckpointReader(std::move(bytes));
}

CheckpointReader CheckpointReader::from_bytes(std::vector<std::uint8_t> bytes) {
  return CheckpointReader(std::move(bytes));
}

CheckpointReader::CheckpointReader(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes)) {
  if (bytes_.size() < kHeaderSize) {
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "file shorter than the header (" +
                              std::to_string(bytes_.size()) + " bytes)");
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes_.begin())) {
    throw CheckpointError(CheckpointErrorKind::kBadMagic,
                          "not a checkpoint file");
  }
  const std::uint32_t version =
      static_cast<std::uint32_t>(read_le(bytes_.data() + 4, 4));
  if (version != CheckpointWriter::kVersion) {
    throw CheckpointError(
        CheckpointErrorKind::kBadVersion,
        "format version " + std::to_string(version) + ", expected " +
            std::to_string(CheckpointWriter::kVersion));
  }
  const std::uint64_t payload_size = read_le(bytes_.data() + 8, 8);
  if (payload_size != bytes_.size() - kHeaderSize) {
    const bool shorter = bytes_.size() - kHeaderSize < payload_size;
    throw CheckpointError(
        shorter ? CheckpointErrorKind::kTruncated
                : CheckpointErrorKind::kCorrupt,
        "payload is " + std::to_string(bytes_.size() - kHeaderSize) +
            " bytes, header promises " + std::to_string(payload_size));
  }
  const std::uint32_t crc =
      static_cast<std::uint32_t>(read_le(bytes_.data() + 16, 4));
  const std::uint32_t actual = crc32(
      std::span<const std::uint8_t>(bytes_.data() + kHeaderSize, payload_size));
  if (crc != actual) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt, "CRC mismatch");
  }
  cursor_ = kHeaderSize;
  end_ = bytes_.size();
}

void CheckpointReader::need(std::size_t n) const {
  if (end_ - cursor_ < n) {
    throw CheckpointError(
        CheckpointErrorKind::kCorrupt,
        "field of " + std::to_string(n) + " bytes overruns its bound (" +
            std::to_string(end_ - cursor_) + " left)");
  }
}

std::uint8_t CheckpointReader::u8() {
  need(1);
  return bytes_[cursor_++];
}

std::uint32_t CheckpointReader::u32() {
  need(4);
  const std::uint32_t v =
      static_cast<std::uint32_t>(read_le(bytes_.data() + cursor_, 4));
  cursor_ += 4;
  return v;
}

std::uint64_t CheckpointReader::u64() {
  need(8);
  const std::uint64_t v = read_le(bytes_.data() + cursor_, 8);
  cursor_ += 8;
  return v;
}

double CheckpointReader::f64() { return std::bit_cast<double>(u64()); }

std::size_t CheckpointReader::usize() {
  const std::uint64_t v = u64();
  if (v > std::numeric_limits<std::size_t>::max()) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "size field overflows std::size_t");
  }
  return static_cast<std::size_t>(v);
}

std::size_t CheckpointReader::length_prefix() {
  // Element counts are validated against the bytes actually present before
  // any allocation, so a corrupted length cannot trigger a huge resize.
  return usize();
}

std::string CheckpointReader::str() {
  const std::size_t n = length_prefix();
  need(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + cursor_), n);
  cursor_ += n;
  return s;
}

std::vector<double> CheckpointReader::doubles() {
  const std::size_t n = length_prefix();
  if (n > (end_ - cursor_) / 8) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "double array length exceeds remaining bytes");
  }
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = f64();
  return v;
}

std::vector<std::uint8_t> CheckpointReader::u8s() {
  const std::size_t n = length_prefix();
  need(n);
  std::vector<std::uint8_t> v(bytes_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                              bytes_.begin() + static_cast<std::ptrdiff_t>(cursor_ + n));
  cursor_ += n;
  return v;
}

std::vector<std::uint32_t> CheckpointReader::u32s() {
  const std::size_t n = length_prefix();
  if (n > (end_ - cursor_) / 4) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "u32 array length exceeds remaining bytes");
  }
  std::vector<std::uint32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = u32();
  return v;
}

std::vector<std::size_t> CheckpointReader::sizes() {
  const std::size_t n = length_prefix();
  if (n > (end_ - cursor_) / 8) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "size array length exceeds remaining bytes");
  }
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = usize();
  return v;
}

void CheckpointReader::expect_section(const char* tag) {
  const std::uint32_t want = tag_value(tag);
  const std::uint32_t got = u32();
  if (got != want) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "expected section '" + tag_name(want) +
                              "', found '" + tag_name(got) + "'");
  }
  const std::uint64_t size = u64();
  if (size > end_ - cursor_) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "section '" + tag_name(want) +
                              "' overruns the payload");
  }
  section_ends_.push_back(end_);
  end_ = cursor_ + static_cast<std::size_t>(size);
}

void CheckpointReader::end_section() {
  if (section_ends_.empty()) {
    throw std::logic_error("checkpoint end_section without expect_section");
  }
  cursor_ = end_;  // skip any unread remainder of the section
  end_ = section_ends_.back();
  section_ends_.pop_back();
}

}  // namespace losstomo::io
