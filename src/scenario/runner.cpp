#include "scenario/runner.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "io/checkpoint.hpp"
#include "io/checkpoint_tags.hpp"
#include "io/scenario_io.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "stats/rng.hpp"
#include "topology/generators.hpp"
#include "topology/overlay.hpp"
#include "topology/routing.hpp"
#include "util/timer.hpp"

namespace losstomo::scenario {

namespace {

// Deterministic alternate route for a measured path: shortest path (BFS,
// out-edge order ties) from source to destination that avoids the path's
// first edge.  Returns nullopt when the topology offers none (trees).
std::optional<net::Path> alternate_route(const net::Graph& g,
                                         const net::Path& path) {
  if (path.edges.empty()) return std::nullopt;
  const net::EdgeId avoid = path.edges.front();
  constexpr net::EdgeId kNoEdge = 0xffffffffu;
  std::vector<net::EdgeId> via(g.node_count(), kNoEdge);
  std::vector<std::uint8_t> seen(g.node_count(), 0);
  std::deque<net::NodeId> queue{path.source};
  seen[path.source] = 1;
  while (!queue.empty()) {
    const net::NodeId v = queue.front();
    queue.pop_front();
    if (v == path.destination) break;
    for (const auto e : g.out_edges(v)) {
      if (e == avoid) continue;
      const net::NodeId to = g.edge(e).to;
      if (seen[to]) continue;
      seen[to] = 1;
      via[to] = e;
      queue.push_back(to);
    }
  }
  if (!seen[path.destination] || path.destination == path.source) {
    return std::nullopt;
  }
  net::Path alt;
  alt.source = path.source;
  alt.destination = path.destination;
  for (net::NodeId v = path.destination; v != path.source;) {
    const net::EdgeId e = via[v];
    alt.edges.push_back(e);
    v = g.edge(e).from;
  }
  std::reverse(alt.edges.begin(), alt.edges.end());
  return alt;
}

struct GeneratedBase {
  net::Graph graph;
  std::vector<net::Path> paths;
};

GeneratedBase generate_base(const TopologySpec& topology) {
  GeneratedBase out;
  stats::Rng rng(topology.seed);
  switch (topology.kind) {
    case TopologySpec::Kind::kTree: {
      auto tree = topology::make_random_tree(
          {.nodes = topology.nodes, .max_branching = topology.branching}, rng);
      out.paths = topology::tree_paths(tree);
      out.graph = std::move(tree.graph);
      return out;
    }
    case TopologySpec::Kind::kMesh: {
      auto topo = topology::make_waxman(
          {.nodes = topology.nodes, .links_per_node = 2, .alpha = 0.3,
           .beta = 0.4},
          rng);
      const auto hosts =
          topology::pick_low_degree_hosts(topo.graph, topology.hosts);
      auto routed = topology::route_paths(topo.graph, hosts, hosts);
      out.paths = std::move(routed.paths);
      out.graph = std::move(topo.graph);
      return out;
    }
    case TopologySpec::Kind::kOverlay: {
      auto topo = topology::make_planetlab_like(
          {.hosts = topology.hosts, .as_count = topology.as_count,
           .routers_per_as = topology.routers_per_as},
          rng);
      auto routed = topology::route_paths(topo.graph, topo.hosts, topo.hosts);
      out.paths = std::move(routed.paths);
      out.graph = std::move(topo.graph);
      return out;
    }
    case TopologySpec::Kind::kBranchingTree: {
      auto tree = topology::make_branching_tree(
          {.depth = topology.depth, .branching = topology.branching,
           .extra_leaves = topology.extra_leaves},
          rng);
      out.paths = topology::tree_paths(tree);
      out.graph = std::move(tree.graph);
      return out;
    }
  }
  throw std::invalid_argument("unknown topology kind");
}

}  // namespace

// Pre-resolved metric handles: every name is interned once at attach time,
// so the per-tick publishing path is plain pointer stores.  The counters are
// *published* from the runner's serialized ledgers (tick_, events_applied_,
// event_counts_), never live-incremented — bit-identity across thread/shard
// counts and checkpoint restore follows from the ledgers', for free.
struct ScenarioRunner::Telemetry {
  obs::Registry* registry;
  obs::Counter* ticks;
  obs::Counter* events;
  obs::Counter* diagnosed;
  std::array<obs::Counter*, kEventTypeCount> by_type{};
  // Per-event-type apply() cost (wall clock — nondeterministic): the churn
  // cost attribution the scenario reports break down by.
  std::array<obs::Histogram*, kEventTypeCount> seconds_by_type{};
  std::size_t tick_phase;
  std::size_t ingest_phase;

  explicit Telemetry(obs::Registry& r)
      : registry(&r),
        ticks(&r.counter("scenario.ticks")),
        events(&r.counter("scenario.events")),
        diagnosed(&r.counter("scenario.diagnosed")),
        tick_phase(r.phase("tick")),
        ingest_phase(r.phase("ingest")) {
    for (std::size_t t = 0; t < kEventTypeCount; ++t) {
      const std::string name = event_type_name(static_cast<EventType>(t));
      by_type[t] = &r.counter("scenario.events." + name);
      seconds_by_type[t] = &r.histogram("scenario.event." + name + ".seconds");
    }
  }
};

ScenarioRunner::ScenarioRunner(ScenarioRunner&&) noexcept = default;
ScenarioRunner& ScenarioRunner::operator=(ScenarioRunner&&) noexcept = default;
ScenarioRunner::~ScenarioRunner() = default;

ScenarioRunner::ScenarioRunner(ScenarioSpec spec,
                               core::MonitorOptions monitor_options)
    : spec_(std::move(spec)), timeline_(spec_.events) {
  spec_.validate();
  event_counts_.assign(kEventTypeCount, 0);
  auto base = generate_base(spec_.topology);
  graph_ = std::move(base.graph);
  base_paths_ = base.paths.size();
  if (base_paths_ < 2) {
    throw std::invalid_argument("scenario topology yields < 2 paths");
  }
  if (spec_.reserve_paths >= base_paths_) {
    throw std::invalid_argument("reserve_paths must leave base paths");
  }
  const std::size_t initial = base_paths_ - spec_.reserve_paths;
  if (spec_.initial_paths > initial) {
    throw std::invalid_argument("initial_paths exceeds non-reserved paths");
  }
  std::vector<net::Path> pool(base.paths.begin() + initial, base.paths.end());
  universe_paths_.assign(base.paths.begin(), base.paths.begin() + initial);

  // Combined reserve consumption up front: reroutes and both grow kinds
  // all pop the pending-addition queue at apply time, and the grow kinds
  // additionally pop the reserve pool here — validating the totals against
  // the whole timeline before laying anything out means apply() can never
  // run the queue dry or hand out a reserve path that does not exist.
  std::size_t grow_total = 0;
  for (const Event& e : timeline_.events()) {
    if (e.type == EventType::kGrow || e.type == EventType::kGrowLinks) {
      grow_total += e.count;
    }
  }
  if (grow_total > pool.size()) {
    throw std::invalid_argument(
        "grow/grow_links events consume " + std::to_string(grow_total) +
        " reserve paths combined, but reserve_paths is " +
        std::to_string(pool.size()));
  }

  // Lay out every row the monitor will ever learn, in the order it will
  // learn them, so universe and monitor row indices coincide.
  std::size_t pool_next = 0;
  std::set<std::size_t> rerouted;
  std::vector<std::uint8_t> row_discovers_links(initial, 0);
  for (const Event& e : timeline_.events()) {
    switch (e.type) {
      case EventType::kPathJoin:
      case EventType::kPathLeave:
        if (e.path >= initial) {
          throw std::invalid_argument(
              "join/leave path index out of the initial path range");
        }
        break;
      case EventType::kRouteChange: {
        if (e.path >= initial) {
          throw std::invalid_argument("reroute path index out of range");
        }
        // The alternate is computed from the path's ORIGINAL route; a
        // second reroute of the same path would silently duplicate that
        // alternate (the first one can never be retired by later events).
        if (rerouted.count(e.path) != 0) {
          throw std::invalid_argument(
              "path " + std::to_string(e.path) +
              " is rerouted twice; one route change per path is supported");
        }
        rerouted.insert(e.path);
        auto alt = alternate_route(graph_, universe_paths_[e.path]);
        if (!alt) {
          throw std::invalid_argument(
              "no alternate route exists for rerouted path " +
              std::to_string(e.path));
        }
        pending_additions_.push_back(universe_paths_.size());
        universe_paths_.push_back(std::move(*alt));
        row_discovers_links.push_back(0);
        break;
      }
      case EventType::kGrow:
      case EventType::kGrowLinks:
        for (std::size_t k = 0; k < e.count; ++k) {
          pending_additions_.push_back(universe_paths_.size());
          universe_paths_.push_back(pool[pool_next++]);
          row_discovers_links.push_back(e.type == EventType::kGrowLinks);
        }
        break;
      case EventType::kLinkDown:
      case EventType::kLinkUp:
      case EventType::kRegimeShift:
      case EventType::kCheckpoint:
      case EventType::kRestore:
      case EventType::kHandoff:
        break;  // validated below / by the simulator / at apply time
    }
  }

  rrm_ = std::make_unique<net::ReducedRoutingMatrix>(graph_, universe_paths_);
  for (const Event& e : timeline_.events()) {
    if ((e.type == EventType::kLinkDown || e.type == EventType::kLinkUp) &&
        e.link >= rrm_->link_count()) {
      throw std::invalid_argument("event link index out of range");
    }
  }

  // Monitor link basis.  Without kGrowLinks events: the whole universe
  // basis, identity-mapped (churn never changes the column space).  With
  // them (link-discovery mode): the links covered by any non-kGrowLinks
  // row first, in ascending universe order, then the fresh links in the
  // order their kGrowLinks rows append them — the exact order apply()
  // replays, resolved here once so the mapping is a pure function of the
  // spec.
  const auto& universe_matrix = rrm_->matrix();
  const std::size_t universe_links = rrm_->link_count();
  constexpr std::uint32_t kUnmapped = 0xffffffffu;
  link_to_monitor_.assign(universe_links, kUnmapped);
  monitor_to_universe_.clear();
  monitor_to_universe_.reserve(universe_links);
  const bool discover = timeline_.count(EventType::kGrowLinks) > 0;
  if (discover) {
    std::vector<std::uint8_t> known(universe_links, 0);
    for (std::size_t i = 0; i < universe_paths_.size(); ++i) {
      if (row_discovers_links[i]) continue;
      for (const auto link : universe_matrix.row(i)) known[link] = 1;
    }
    for (std::uint32_t k = 0; k < universe_links; ++k) {
      if (!known[k]) continue;
      link_to_monitor_[k] =
          static_cast<std::uint32_t>(monitor_to_universe_.size());
      monitor_to_universe_.push_back(k);
    }
  } else {
    for (std::uint32_t k = 0; k < universe_links; ++k) {
      link_to_monitor_[k] = k;
      monitor_to_universe_.push_back(k);
    }
  }
  const std::size_t initial_links = monitor_to_universe_.size();
  if (discover) {
    for (std::size_t i = 0; i < universe_paths_.size(); ++i) {
      if (!row_discovers_links[i]) continue;
      for (const auto link : universe_matrix.row(i)) {
        if (link_to_monitor_[link] != kUnmapped) continue;
        link_to_monitor_[link] =
            static_cast<std::uint32_t>(monitor_to_universe_.size());
        monitor_to_universe_.push_back(link);
      }
    }
  }

  // The monitor starts with the initial rows over the initially known link
  // basis; churn requires drop-negative on the streaming engine, so an
  // unresolved (kAuto) policy resolves to drop here.  The resolved options
  // and simulator config are kept: checkpoint restore and handoff rebuild
  // the engines from them, exactly as constructed here.
  monitor_options.window = spec_.window;
  if (monitor_options.lia.variance.negatives ==
      core::NegativeCovariancePolicy::kAuto) {
    monitor_options.lia.variance.negatives =
        core::NegativeCovariancePolicy::kDrop;
  }
  monitor_options_ = monitor_options;
  initial_links_ = initial_links;
  monitor_ = make_initial_monitor();

  sim_config_.p = spec_.p;
  sim_config_.probes_per_snapshot = spec_.probes;
  if (spec_.min_good_loss > 0.0) {
    // min_good_loss is a FLOOR on the good-link loss range: it must never
    // lower a configured good_lo that already sits above it.
    sim_config_.loss_model.good_lo =
        std::max(sim_config_.loss_model.good_lo, spec_.min_good_loss);
    sim_config_.loss_model.good_hi =
        std::max(sim_config_.loss_model.good_hi, spec_.min_good_loss);
  }
  simulator_ = make_simulator();

  if (monitor_options_.telemetry != nullptr) {
    obs_ = std::make_unique<Telemetry>(*monitor_options_.telemetry);
    publish_telemetry();
  }
}

void ScenarioRunner::publish_telemetry() {
  if (!obs_) return;
  obs_->ticks->set(tick_);
  obs_->events->set(events_applied_);
  obs_->diagnosed->set(diagnosed_);
  for (std::size_t t = 0; t < kEventTypeCount; ++t) {
    obs_->by_type[t]->set(event_counts_[t]);
  }
}

std::unique_ptr<core::LiaMonitor> ScenarioRunner::make_initial_monitor()
    const {
  const std::size_t initial = base_paths_ - spec_.reserve_paths;
  const auto& universe_matrix = rrm_->matrix();
  std::vector<std::vector<std::uint32_t>> rows;
  rows.reserve(initial);
  for (std::size_t i = 0; i < initial; ++i) {
    const auto row = universe_matrix.row(i);
    std::vector<std::uint32_t> mapped(row.size());
    for (std::size_t idx = 0; idx < row.size(); ++idx) {
      mapped[idx] = link_to_monitor_[row[idx]];
    }
    rows.push_back(std::move(mapped));
  }
  auto monitor = std::make_unique<core::LiaMonitor>(
      linalg::SparseBinaryMatrix(initial_links_, std::move(rows)),
      monitor_options_);
  if (spec_.initial_paths > 0) {
    for (std::size_t i = spec_.initial_paths; i < initial; ++i) {
      monitor->set_path_active(i, false);
    }
  }
  return monitor;
}

std::unique_ptr<sim::SnapshotSimulator> ScenarioRunner::make_simulator()
    const {
  return std::make_unique<sim::SnapshotSimulator>(graph_, *rrm_, sim_config_,
                                                  spec_.seed);
}

void ScenarioRunner::apply(const Event& event) {
  switch (event.type) {
    case EventType::kPathJoin:
      monitor_->set_path_active(event.path, true);
      break;
    case EventType::kPathLeave:
      monitor_->set_path_active(event.path, false);
      break;
    case EventType::kRouteChange:
    case EventType::kGrow:
    case EventType::kGrowLinks: {
      if (event.type == EventType::kRouteChange) {
        monitor_->set_path_active(event.path, false);
      }
      const std::size_t rows =
          event.type == EventType::kRouteChange ? std::size_t{1} : event.count;
      // One batched append per event: the whole burst costs one routing-
      // matrix append + one accumulator growth, not `rows` of each.
      const std::size_t first_row = monitor_->routing().rows();
      const std::size_t known_links = monitor_->routing().cols();
      std::vector<std::vector<std::uint32_t>> batch;
      batch.reserve(rows);
      std::size_t fresh_links = 0;
      for (std::size_t k = 0; k < rows; ++k) {
        if (pending_additions_.empty()) {
          throw std::logic_error(
              "pending-addition queue exhausted: universe layout and "
              "timeline diverged");
        }
        const std::size_t universe_row = pending_additions_.front();
        pending_additions_.pop_front();
        if (universe_row != first_row + k) {
          throw std::logic_error("universe/monitor row order diverged");
        }
        const auto row = rrm_->matrix().row(universe_row);
        std::vector<std::uint32_t> mapped(row.size());
        for (std::size_t idx = 0; idx < row.size(); ++idx) {
          const std::uint32_t m = link_to_monitor_[row[idx]];
          mapped[idx] = m;
          // Fresh links were assigned the next consecutive monitor
          // columns at construction; the batch carries them as new_links.
          if (m >= known_links) {
            fresh_links = std::max<std::size_t>(fresh_links,
                                                m - known_links + 1);
          }
        }
        batch.push_back(std::move(mapped));
      }
      const std::size_t added =
          monitor_->add_paths(std::move(batch), fresh_links);
      if (added != first_row) {
        throw std::logic_error("universe/monitor row order diverged");
      }
      break;
    }
    case EventType::kLinkDown:
      simulator_->force_link_loss(
          event.link, event.value > 0.0 ? event.value : spec_.down_loss);
      break;
    case EventType::kLinkUp:
      simulator_->clear_link_forcing(event.link);
      break;
    case EventType::kRegimeShift:
      simulator_->shift_regime(event.value);
      break;
    case EventType::kCheckpoint:
      // Count this event BEFORE saving, so the serialized state already
      // includes it and a restored run continues exactly past it.
      ++events_applied_;
      count_event(EventType::kCheckpoint);
      save_checkpoint(event.file);
      return;
    case EventType::kRestore:
      restore_checkpoint(event.file);
      // A scripted restore is a same-tick drill: restoring an earlier
      // tick's checkpoint mid-script would rewind the timeline and replay
      // this restore forever.
      if (tick_ != event.tick) {
        throw std::runtime_error(
            "restore event at tick " + std::to_string(event.tick) +
            " loaded a checkpoint of tick " + std::to_string(tick_) +
            "; scripted restores must target a same-tick checkpoint");
      }
      // events_applied_ came back from the checkpoint (which already counts
      // its own checkpoint event); count this restore on top of it.
      ++events_applied_;
      count_event(EventType::kRestore);
      return;
    case EventType::kHandoff: {
      // Warm failover: serialize to memory, tear the engines down, rebuild
      // them from scratch, and restore.  The run must continue as if
      // nothing happened — the parity drills pin that bit-identically.
      ++events_applied_;
      count_event(EventType::kHandoff);
      io::CheckpointWriter writer;
      save_state(writer);
      std::vector<std::uint8_t> image = writer.finish();
      monitor_.reset();
      simulator_.reset();
      io::CheckpointReader reader =
          io::CheckpointReader::from_bytes(std::move(image));
      restore_state(reader);
      return;
    }
  }
  ++events_applied_;
  count_event(event.type);
}

void ScenarioRunner::save_state(io::CheckpointWriter& writer) const {
  writer.begin_section(io::tags::kScenarioRunner);
  // The full spec rides along as text: restore validates identity against
  // it, and restore_runner() can rebuild a runner from the file alone.
  std::ostringstream spec_text;
  io::write_scenario(spec_text, spec_);
  writer.str(spec_text.str());
  writer.usize(tick_);
  writer.usize(events_applied_);
  writer.usize(diagnosed_);
  const std::vector<std::size_t> pending(pending_additions_.begin(),
                                         pending_additions_.end());
  writer.sizes(pending);
  writer.sizes(event_counts_);
  steady_tick_.save_state(writer);
  event_tick_.save_state(writer);
  writer.f64(max_tick_seconds_);
  simulator_->save_state(writer);
  monitor_->save_state(writer);
  writer.end_section();
}

void ScenarioRunner::restore_state(io::CheckpointReader& reader) {
  reader.expect_section(io::tags::kScenarioRunner);
  const std::string spec_text = reader.str();
  std::ostringstream mine;
  io::write_scenario(mine, spec_);
  if (spec_text != mine.str()) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "checkpoint was taken under a different scenario spec");
  }
  const std::size_t tick = reader.usize();
  const std::size_t events_applied = reader.usize();
  const std::size_t diagnosed = reader.usize();
  if (tick > spec_.ticks) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "checkpoint tick beyond the scenario end");
  }
  const std::vector<std::size_t> pending = reader.sizes();
  for (const std::size_t row : pending) {
    if (row >= universe_paths_.size()) {
      throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                                "pending addition outside the universe");
    }
  }
  const std::vector<std::size_t> event_counts = reader.sizes();
  if (event_counts.size() != kEventTypeCount) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "per-type event ledger has the wrong arity");
  }
  stats::RunningStat steady_tick;
  steady_tick.restore_state(reader);
  stats::RunningStat event_tick;
  event_tick.restore_state(reader);
  const double max_tick_seconds = reader.f64();
  // Fresh engines, exactly the constructor's, restored before anything of
  // this runner changes: a throw below leaves the runner fully usable.
  std::unique_ptr<sim::SnapshotSimulator> simulator = make_simulator();
  simulator->restore_state(reader);
  std::unique_ptr<core::LiaMonitor> monitor = make_initial_monitor();
  monitor->restore_state(reader);
  reader.end_section();

  tick_ = tick;
  events_applied_ = events_applied;
  diagnosed_ = diagnosed;
  event_counts_ = event_counts;
  pending_additions_.assign(pending.begin(), pending.end());
  steady_tick_ = steady_tick;
  event_tick_ = event_tick;
  max_tick_seconds_ = max_tick_seconds;
  simulator_ = std::move(simulator);
  monitor_ = std::move(monitor);
  publish_telemetry();
}

void ScenarioRunner::save_checkpoint(const std::string& file) const {
  io::CheckpointWriter writer;
  save_state(writer);
  writer.save(file);
}

void ScenarioRunner::restore_checkpoint(const std::string& file) {
  io::CheckpointReader reader = io::CheckpointReader::from_file(file);
  restore_state(reader);
}

ScenarioRunner restore_runner(const std::string& file,
                              core::MonitorOptions monitor_options) {
  io::CheckpointReader reader = io::CheckpointReader::from_file(file);
  reader.expect_section(io::tags::kScenarioRunner);
  std::istringstream spec_stream(reader.str());
  scenario::ScenarioSpec spec;
  try {
    spec = io::read_scenario(spec_stream);
  } catch (const std::exception& e) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kCorrupt,
        std::string("embedded scenario spec: ") + e.what());
  }
  ScenarioRunner runner(std::move(spec), monitor_options);
  runner.restore_checkpoint(file);
  return runner;
}

void ScenarioRunner::record_trace(const std::string& file) {
  if (replay_) throw std::logic_error("cannot record while replaying");
  recorder_ = std::make_unique<io::BinaryTraceWriter>(
      file, rrm_->path_count(), /*log_transformed=*/true);
}

void ScenarioRunner::replay_trace(const std::string& file) {
  if (recorder_) throw std::logic_error("cannot replay while recording");
  auto reader = io::BinaryTraceReader::open(file);
  if (reader.paths() != rrm_->path_count()) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "trace arity " + std::to_string(reader.paths()) +
            " != scenario universe " + std::to_string(rrm_->path_count()));
  }
  if (!reader.log_transformed()) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "scenario replay needs a log-transformed (recorded) trace");
  }
  if (reader.snapshots() < spec_.ticks) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "trace has " + std::to_string(reader.snapshots()) +
            " snapshots, scenario runs " + std::to_string(spec_.ticks) +
            " ticks");
  }
  replay_.emplace(std::move(reader));
}

std::optional<core::LossInference> ScenarioRunner::step() {
  if (tick_ >= spec_.ticks) throw std::logic_error("scenario exhausted");
  util::Timer timer;
  // Root phase span of the tick; the monitor's accumulate/solve spans and
  // the ingest span below nest under it (exclusive time — a parent's clock
  // pauses while a child runs).
  obs::Span tick_span(obs_ ? obs_->registry : nullptr,
                      obs_ ? obs_->tick_phase : 0);
  const auto due = timeline_.at(tick_);
  for (const Event& e : due) {
    if (obs_ != nullptr) {
      util::Timer event_timer;
      apply(e);
      obs_->seconds_by_type[static_cast<std::size_t>(e.type)]->observe(
          event_timer.seconds());
    } else {
      apply(e);
    }
  }
  const std::size_t known = monitor_->routing().rows();
  {
    obs::Span ingest_span(obs_ ? obs_->registry : nullptr,
                          obs_ ? obs_->ingest_phase : 0);
    if (replay_) {
      // Replay: the recorded universe-width row's known prefix IS the feed
      // of the recording run — the simulator is bypassed entirely (events
      // touching it are harmless; its output is never read), and there is
      // no ground truth to expose in last_snapshot_.
      const auto row = replay_->row(tick_);
      y_.assign(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(known));
      last_snapshot_ = sim::Snapshot{};
    } else {
      if (spec_.lazy_simulation &&
          simulator_->config().mode == sim::ProbeMode::kSlotSynchronized) {
        // Evaluate only the rows the monitor will actually read this tick:
        // dormant reserve/alternate rows and retired paths cost nothing.
        // The per-unit loss processes consume the same RNG stream either
        // way, so every evaluated entry is bit-identical to a full
        // simulation.
        needed_.assign(rrm_->path_count(), 0);
        for (std::size_t i = 0; i < known; ++i) {
          if (monitor_->path_active(i)) needed_[i] = 1;
        }
        last_snapshot_ = simulator_->next(needed_);
      } else {
        last_snapshot_ = simulator_->next();
      }
      y_.assign(known, 0.0);
      for (std::size_t i = 0; i < known; ++i) {
        if (monitor_->path_active(i)) y_[i] = last_snapshot_.path_log_trans[i];
      }
    }
  }
  if (recorder_) {
    record_row_.assign(rrm_->path_count(), 0.0);
    std::copy(y_.begin(), y_.end(), record_row_.begin());
    recorder_->append(record_row_);
  }
  auto result = monitor_->observe(y_);
  const double seconds = timer.seconds();
  ++tick_;
  if (recorder_ && tick_ == spec_.ticks) recorder_->finish();
  if (result) ++diagnosed_;
  if (!due.empty()) {
    event_tick_.add(seconds);
  } else if (result) {
    steady_tick_.add(seconds);
  }
  max_tick_seconds_ = std::max(max_tick_seconds_, seconds);
  publish_telemetry();
  return result;
}

ScenarioOutcome ScenarioRunner::outcome() const {
  ScenarioOutcome out;
  out.ticks = tick_;
  out.events_applied = events_applied_;
  out.diagnosed = diagnosed_;
  out.active_paths_end = monitor_->active_path_count();
  out.steady_tick_seconds = steady_tick_.count() ? steady_tick_.mean() : 0.0;
  out.event_tick_seconds = event_tick_.count() ? event_tick_.mean() : 0.0;
  out.max_tick_seconds = max_tick_seconds_;
  return out;
}

}  // namespace losstomo::scenario
