// Cholesky-family factorizations for symmetric positive (semi-)definite
// systems.
//
// These power the "implicit" large-scale paths of the library: the Phase-1
// normal equations (A^T A) v = A^T sigma and the Phase-2 reduced
// first-moment solve, both of which operate on Gram matrices derived from
// the routing matrix.  IncrementalCholesky is the core of the Phase-2
// column-elimination procedure: columns are admitted in decreasing variance
// order until the first dependent column, which identifies the minimal
// removal set (see src/core/elimination.hpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace losstomo::linalg {

/// Standard Cholesky (L L^T) of a symmetric positive definite matrix.
/// Immutable after construction — concurrent solve() calls are safe.
class Cholesky {
 public:
  /// Factorizes `a` (copied; only the lower triangle is read).  O(n^3 / 3).
  /// Preconditions: `a` square (std::invalid_argument) and SPD
  /// (std::runtime_error on a pivot at or below `min_pivot`).  The default
  /// floor of 0 accepts any positive pivot; callers factorizing matrices
  /// whose exact-arithmetic pivots can be exactly zero (integer normal
  /// equations after equation drops) pass a small absolute floor so
  /// rounding-level "positive" pivots are treated as the singularities
  /// they are instead of amplifying noise by ~1/pivot.
  explicit Cholesky(Matrix a, double min_pivot = 0.0);

  [[nodiscard]] std::size_t dim() const { return l_.rows(); }

  /// Solves a x = b.  O(n^2); `b.size()` must equal dim().
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Lower-triangular factor.
  [[nodiscard]] const Matrix& l() const { return l_; }

  /// det(a)^(1/2) = prod of diagonal entries (useful for diagnostics).
  [[nodiscard]] double sqrt_det() const;

 private:
  Matrix l_;
};

/// Cholesky with additive diagonal regularization fallback: attempts a plain
/// factorization and, on failure, retries with `jitter * max_diag * I`
/// escalating by 10x up to `max_attempts`.  Returns the jitter actually
/// used; 0 for a clean factorization.  This is the pragmatic guard for
/// nearly-singular normal equations produced by sampling noise.
/// O(n^3 / 3) per attempt; immutable after construction.
class RegularizedCholesky {
 public:
  /// `min_pivot_rel` scales by the largest diagonal into the Cholesky
  /// pivot floor (0 keeps the accept-any-positive-pivot behaviour).
  explicit RegularizedCholesky(const Matrix& a, double jitter = 1e-12,
                               int max_attempts = 6,
                               double min_pivot_rel = 0.0);

  [[nodiscard]] Vector solve(std::span<const double> b) const;
  [[nodiscard]] double jitter_used() const { return jitter_used_; }
  /// Ladder rung that succeeded: 0 = clean factorization, 1 = the base
  /// jitter, k = base * 10^(k-1).  Values >= 2 mean the base jitter had to
  /// be *amplified* — the signal consumers use to switch to a
  /// rank-revealing fallback instead of trusting the regularized solve.
  [[nodiscard]] int jitter_attempts() const { return jitter_attempts_; }
  /// The successful factorization (of a + jitter_used * I).
  [[nodiscard]] const Cholesky& factor() const { return holder_.front(); }

 private:
  std::vector<Cholesky> holder_;  // size 1; indirection for late init
  double jitter_used_ = 0.0;
  int jitter_attempts_ = 0;
};

/// Cholesky factor that tracks a matrix evolving by symmetric rank-1 steps:
/// update() folds A + x x^T into the factor, downdate() folds A - x x^T.
///
/// This is the factor-caching core of the streaming drop-negative Phase-1
/// path (core::StreamingNormalEquations): a sharing pair whose covariance
/// changes sign perturbs G by +/- e_S e_S^T (e_S the indicator of the
/// shared-link set), so the cached factor follows in O((n - j0)^2) per flip
/// — j0 the first nonzero of x — instead of an O(n^3) refactorization.
///
/// Construction uses the same escalating-jitter fallback as
/// RegularizedCholesky, so a singular input still yields a usable
/// (regularized) factor; subsequent up/downdates then track A + jitter * I.
///
/// Numerical contract: update() uses Givens rotations and is
/// unconditionally stable.  downdate() uses hyperbolic rotations and
/// *fails* (returns false) when the downdated matrix loses positive
/// definiteness within `downdate_tol` — after a failed downdate the factor
/// is INVALID and the caller must refactorize from scratch.  Both apply
/// O(eps * ||A||) perturbation per step; callers that accumulate thousands
/// of steps should bound drift with a periodic refactorization (see
/// core::VarianceOptions::factor_update_cap).
///
/// Not thread-safe: update/downdate mutate the factor in place.
class UpdatableCholesky {
 public:
  /// Factorizes `a` (symmetric positive definite up to jitter).  Complexity
  /// O(n^3 / 3) per attempt.  Throws std::runtime_error when even the
  /// largest jitter fails.
  explicit UpdatableCholesky(const Matrix& a, double jitter = 1e-12,
                             int max_attempts = 6,
                             double min_pivot_rel = 0.0);

  /// Reconstructs a factor from previously extracted state — `l` a valid
  /// lower-triangular factor plus the jitter diagnostics that produced it —
  /// WITHOUT refactorizing (no O(n^3) work; `l` must be square, throws
  /// std::invalid_argument otherwise).  This is the checkpoint-restore
  /// entry (io/checkpoint.hpp): a resumed streaming run re-adopts its
  /// cached factor and keeps its zero-refactorization guarantee.
  static UpdatableCholesky from_state(Matrix l, double jitter_used,
                                      int jitter_attempts);

  [[nodiscard]] std::size_t dim() const { return l_.rows(); }
  [[nodiscard]] double jitter_used() const { return jitter_used_; }
  /// Jitter-ladder rung of the construction-time factorization (see
  /// RegularizedCholesky::jitter_attempts).
  [[nodiscard]] int jitter_attempts() const { return jitter_attempts_; }
  /// Current lower-triangular factor (valid unless a downdate failed).
  [[nodiscard]] const Matrix& l() const { return l_; }

  /// Rank-1 update: the factored matrix becomes A + x x^T.  `x.size()` must
  /// equal dim().  Leading zeros of x are skipped, so a vector whose first
  /// nonzero sits at index j0 costs O((dim - j0)^2).
  void update(std::span<const double> x);

  /// Rank-1 downdate: the factored matrix becomes A - x x^T.  Returns false
  /// when the result would lose positive definiteness (relative pivot
  /// tolerance `downdate_tol`); the factor is then invalid and must be
  /// rebuilt.  Same sparsity skip and complexity as update().
  [[nodiscard]] bool downdate(std::span<const double> x,
                              double downdate_tol = 1e-12);

  /// Bordered growth: the factored matrix becomes diag(A, I_k) — `k` new
  /// trailing dimensions, decoupled (identity rows/columns).  Because the
  /// border is exactly the identity, the factor extends with unit diagonal
  /// entries and zero fill: no refactorization, no new rotation work, and
  /// the extension is exact (the dimension-growth path of the streaming
  /// normal equations, where fresh virtual links enter identity-pinned and
  /// are later bordered into the live block by rank-1 steps).  Cost:
  /// O((dim + k)^2) for the storage copy only.
  void append_identity(std::size_t k);

  /// Solves A x = b with the current factor.  O(n^2).
  [[nodiscard]] Vector solve(std::span<const double> b) const;

 private:
  UpdatableCholesky() : l_(0, 0) {}  // from_state fills the members

  Matrix l_;
  std::vector<double> w_;  // rotation scratch, kept to avoid reallocation
  double jitter_used_ = 0.0;
  int jitter_attempts_ = 0;
};

/// Diagonal-pivoted (rank-revealing) Cholesky of a PSD matrix:
/// P^T A P = L L^T with non-increasing pivots.  Stops when the largest
/// remaining pivot falls below rel_tol * (largest initial pivot), which
/// yields the numerical rank.
class PivotedCholesky {
 public:
  explicit PivotedCholesky(Matrix a, double rel_tol = 1e-10);

  [[nodiscard]] std::size_t rank() const { return rank_; }
  /// permutation()[k] = original index of the k-th pivot.
  [[nodiscard]] const std::vector<std::size_t>& permutation() const {
    return perm_;
  }

 private:
  std::size_t rank_ = 0;
  std::vector<std::size_t> perm_;
};

/// Incrementally grown Cholesky factor of a Gram matrix whose columns are
/// revealed one at a time.
///
/// Each `try_add(diag, cross)` call attempts to append a column with
/// self-inner-product `diag` and inner products `cross` against the
/// already-accepted columns.  If the squared residual of the new column
/// against the span of the accepted ones falls at or below
/// rel_tol * diag, the column is rejected (linearly dependent) and the
/// factor is unchanged.  Otherwise the factor grows by one row.
///
/// After construction, `solve(b)` solves (C^T C) x = b where C is the
/// matrix of accepted columns in insertion order.
class IncrementalCholesky {
 public:
  explicit IncrementalCholesky(double rel_tol = 1e-9);

  /// Number of accepted columns.
  [[nodiscard]] std::size_t size() const { return n_; }

  /// Attempts to append a column; returns true when accepted.
  /// `cross.size()` must equal size() (throws std::invalid_argument).
  /// O(size^2) — one forward substitution against the current factor.
  bool try_add(double diag, std::span<const double> cross);

  /// Squared residual of the most recent try_add (accepted or not);
  /// diagnostic for tolerance tuning.
  [[nodiscard]] double last_residual_sq() const { return last_res2_; }

  /// Solves (C^T C) x = b for b of length size().
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Forward substitution L w = b.
  [[nodiscard]] Vector forward(std::span<const double> b) const;
  /// Back substitution L^T x = w.
  [[nodiscard]] Vector backward(std::span<const double> w) const;

 private:
  // Row k of L (length k+1) starts at offset k(k+1)/2 in the packed store.
  [[nodiscard]] const double* row(std::size_t k) const {
    return packed_.data() + k * (k + 1) / 2;
  }

  double rel_tol_;
  std::size_t n_ = 0;
  std::vector<double> packed_;  // packed lower-triangular rows
  double last_res2_ = 0.0;
};

}  // namespace losstomo::linalg
