// The churn parity acceptance test: a scenario with at least one event of
// every type — path join, path leave, route change, link down (and up),
// congestion-regime shift, growth — driven through ScenarioRunner, where
// the streaming engine must stay within 1e-10 of a batch re-learn at every
// post-event tick, at 1, 2, and 8 threads, WITHOUT ever relearning from
// scratch: the factor counters must show exactly one factorization with
// the churn absorbed by rank-1/bordered updates (or, at the default flip
// threshold, by the stale-factor PCG machinery).
//
// Instance notes: the mesh (40 nodes / 24 hosts / topology seed 3) keeps
// the drop-negative normal matrix positive definite through every event of
// this timeline (no jitter on any tick — asserted), and min_good_loss
// keeps every path strictly lossy so no pair covariance sits exactly on
// the drop-policy's zero boundary (a constant, lossless path has *exactly
// zero* sample covariance, where the two engines may legitimately round to
// different sides — see core/monitor.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "core/monitor.hpp"
#include "linalg/matrix.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace losstomo::scenario {
namespace {

ScenarioSpec parity_spec() {
  ScenarioSpec spec;
  spec.name = "churn-parity";
  spec.topology.kind = TopologySpec::Kind::kMesh;
  spec.topology.nodes = 40;
  spec.topology.hosts = 24;
  spec.topology.seed = 3;
  spec.window = 25;
  spec.ticks = 110;
  spec.seed = 11;
  spec.p = 0.6;
  spec.probes = 600;
  spec.min_good_loss = 0.002;
  spec.reserve_paths = 3;
  spec.events = {
      {.tick = 30, .type = EventType::kPathLeave, .path = 3},
      {.tick = 34, .type = EventType::kPathJoin, .path = 3},
      {.tick = 45, .type = EventType::kRouteChange, .path = 5},
      {.tick = 55, .type = EventType::kLinkDown, .link = 2},
      {.tick = 70, .type = EventType::kLinkUp, .link = 2},
      {.tick = 80, .type = EventType::kRegimeShift, .value = 0.35},
      {.tick = 90, .type = EventType::kGrow, .count = 3},
  };
  return spec;
}

struct Reference {
  std::vector<std::optional<core::LossInference>> inferences;
  std::vector<linalg::Vector> variances;
};

// The batch engine relearns from scratch every tick over the live-and-warm
// submatrix — the ground truth churned streaming must reproduce.  Batch
// results are bit-identical at any thread count, so one run suffices.
Reference batch_reference(const ScenarioSpec& spec) {
  core::MonitorOptions options;
  options.engine = core::MonitorEngine::kBatch;
  ScenarioRunner runner(spec, options);
  Reference ref;
  while (runner.ticks_run() < spec.ticks) {
    ref.inferences.push_back(runner.step());
    ref.variances.push_back(ref.inferences.back().has_value()
                                ? runner.monitor().variances().v
                                : linalg::Vector());
  }
  return ref;
}

const Reference& shared_reference() {
  static const Reference ref = batch_reference(parity_spec());
  return ref;
}

void expect_parity(const ScenarioSpec& spec,
                   const core::MonitorOptions& options, const Reference& ref,
                   const std::string& label) {
  ScenarioRunner runner(spec, options);
  std::size_t compared = 0;
  while (runner.ticks_run() < spec.ticks) {
    const std::size_t tick = runner.ticks_run();
    const auto inference = runner.step();
    ASSERT_EQ(inference.has_value(), ref.inferences[tick].has_value())
        << label << " tick " << tick;
    if (!inference) continue;
    ++compared;
    EXPECT_LE(
        linalg::max_abs_diff(inference->loss, ref.inferences[tick]->loss),
        1e-10)
        << label << " tick " << tick;
    EXPECT_LE(
        linalg::max_abs_diff(runner.monitor().variances().v,
                             ref.variances[tick]),
        1e-10)
        << label << " tick " << tick;
    // The instance is chosen so the system never needs regularization —
    // the precondition for tight cross-engine parity.
    EXPECT_DOUBLE_EQ(runner.monitor().variances().jitter_used, 0.0)
        << label << " tick " << tick;
  }
  EXPECT_EQ(compared, spec.ticks - spec.window) << label;

  // No relearn-from-scratch: one factorization for the whole run, all
  // churn absorbed incrementally.
  const auto* eqs = runner.monitor().streaming_equations();
  ASSERT_NE(eqs, nullptr) << label;
  EXPECT_EQ(eqs->refactorizations(), 1u) << label;
  EXPECT_EQ(eqs->downdate_fallbacks(), 0u) << label;
}

TEST(ChurnParity, AllEventTypesMatchBatchAtAnyThreadCount) {
  const auto spec = parity_spec();
  ASSERT_GE(spec.timeline().count(EventType::kPathJoin), 1u);
  ASSERT_GE(spec.timeline().count(EventType::kPathLeave), 1u);
  ASSERT_GE(spec.timeline().count(EventType::kRouteChange), 1u);
  ASSERT_GE(spec.timeline().count(EventType::kLinkDown), 1u);
  ASSERT_GE(spec.timeline().count(EventType::kRegimeShift), 1u);
  ASSERT_GE(spec.timeline().count(EventType::kGrow), 1u);
  const Reference& ref = shared_reference();

  for (const std::size_t threads : {1u, 2u, 8u}) {
    // Bordered rank-1 mode: every churn burst rides rank-1 up/downdates on
    // the cached factor (flip threshold raised past the burst size).
    {
      core::MonitorOptions options;
      options.lia.variance.threads = threads;
      options.lia.variance.factor_flip_threshold = 1u << 20;
      options.lia.variance.factor_update_cap = 1u << 20;
      expect_parity(spec, options, ref,
                    "rank1/threads=" + std::to_string(threads));
    }
    // Default mode: bursts larger than nc/4 ride the stale-factor PCG
    // refinement path instead.
    {
      core::MonitorOptions options;
      options.lia.variance.threads = threads;
      expect_parity(spec, options, ref,
                    "stale/threads=" + std::to_string(threads));
    }
  }
}

TEST(ChurnParity, CountersShowBorderedUpdatesNotRelearns) {
  const auto spec = parity_spec();
  core::MonitorOptions options;
  options.lia.variance.factor_flip_threshold = 1u << 20;
  options.lia.variance.factor_update_cap = 1u << 20;
  ScenarioRunner runner(spec, options);
  (void)runner.run();
  const auto* eqs = runner.monitor().streaming_equations();
  ASSERT_NE(eqs, nullptr);
  EXPECT_EQ(eqs->refactorizations(), 1u);
  EXPECT_GT(eqs->rank1_updates(), 0u);
  EXPECT_EQ(eqs->downdate_fallbacks(), 0u);

  core::MonitorOptions stale;
  ScenarioRunner stale_runner(spec, stale);
  (void)stale_runner.run();
  const auto* stale_eqs = stale_runner.monitor().streaming_equations();
  EXPECT_EQ(stale_eqs->refactorizations(), 1u);
  EXPECT_GT(stale_eqs->refine_iterations(), 0u);
}

TEST(ChurnParity, PairIndexedAccumulatorMatchesBatch) {
  const auto spec = parity_spec();
  const Reference& ref = shared_reference();
  for (const std::size_t threads : {1u, 8u}) {
    core::MonitorOptions options;
    options.accumulator = core::CovarianceAccumulator::kSharingPairs;
    options.lia.variance.threads = threads;
    expect_parity(spec, options, ref,
                  "pairs/threads=" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace losstomo::scenario
