// Wall-clock timer for the running-time experiments (§6.4 of the paper).
#pragma once

#include <chrono>

namespace losstomo::util {

/// Monotonic stopwatch; starts on construction.
///
/// pause()/resume() accumulate: seconds() is the total time spent running,
/// excluding paused intervals.  obs::Span leans on this to credit a parent
/// phase with its *exclusive* time — the parent's timer is paused while a
/// child span runs.  A timer that is never paused behaves exactly like the
/// original two-call stopwatch.
class Timer {
 public:
  Timer();

  /// Restarts the stopwatch: zero accumulated time, running.
  void reset();

  /// Stops accumulating (no-op when already paused).
  void pause();
  /// Starts accumulating again (no-op when already running).
  void resume();
  [[nodiscard]] bool running() const { return running_; }

  /// Accumulated running time, in seconds.
  [[nodiscard]] double seconds() const;
  /// Accumulated running time in milliseconds.
  [[nodiscard]] double millis() const;

 private:
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::duration banked_{0};
  bool running_ = true;
};

}  // namespace losstomo::util
