// PairMoments — the pair-indexed sparse covariance accumulator — must
// agree with the dense StreamingMoments on every sharing pair through
// pushes, window wrap-arounds, drift refreshes, churn, and growth, at any
// thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/pair_moments.hpp"
#include "core/sharing_pairs.hpp"
#include "stats/rng.hpp"
#include "stats/streaming.hpp"
#include "test_util.hpp"

namespace losstomo::core {
namespace {

linalg::SparseBinaryMatrix small_mesh_matrix() {
  stats::Rng rng(31);
  const auto mesh = losstomo::testing::make_random_mesh(30, 10, rng);
  const net::ReducedRoutingMatrix rrm(mesh.topo.graph, mesh.paths);
  return rrm.matrix();
}

TEST(PairMoments, MatchesDenseAccumulatorOnSharingPairs) {
  const auto r = small_mesh_matrix();
  const std::size_t np = r.rows();
  auto store = std::make_shared<SharingPairStore>(SharingPairStore::build(r));
  ASSERT_GT(store->pair_count(), np);  // off-diagonal pairs exist

  const stats::StreamingMomentsOptions options{.window = 9};
  for (const std::size_t threads : {1u, 2u, 8u}) {
    auto opts = options;
    opts.threads = threads;
    stats::StreamingMoments dense(np, opts);
    PairMoments sparse(store, np, opts);
    stats::Rng rng(17);
    std::vector<double> y(np);
    // Three wrap-arounds so every drift-refresh boundary is crossed.
    for (std::size_t l = 0; l < 3 * 2 * 9 + 5; ++l) {
      for (auto& v : y) v = rng.gaussian(-0.05, 0.2);
      dense.push(y);
      sparse.push(y);
      if (l < 1) continue;
      store->for_pairs(
          0, store->pair_count(),
          [&](std::size_t p, std::uint32_t i, std::uint32_t j,
              std::span<const std::uint32_t>) {
            EXPECT_NEAR(sparse.pair_covariance(p), dense.covariance(i, j),
                        1e-12)
                << "pair " << p << " push " << l << " threads " << threads;
          });
    }
    EXPECT_GT(sparse.refreshes(), 0u);
  }
}

TEST(PairMoments, SymmetricLookupAndNonSharingPairs) {
  const linalg::SparseBinaryMatrix r(2, {{0}, {0, 1}, {1}});
  auto store = std::make_shared<SharingPairStore>(SharingPairStore::build(r));
  PairMoments acc(store, 3, {.window = 4});
  acc.push(std::vector<double>{1.0, 2.0, 3.0});
  acc.push(std::vector<double>{2.0, 1.0, -1.0});
  // (0, 2) shares nothing: defined as 0.  (1, 2) shares link 1: symmetric.
  EXPECT_DOUBLE_EQ(acc.covariance(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(acc.covariance(1, 2), acc.covariance(2, 1));
  // Means (1.5, 1.5, 1.0): cov(1,2) = (2-1.5)(3-1) + (1-1.5)(-1-1) = 2.
  EXPECT_NEAR(acc.covariance(1, 2), 2.0, 1e-12);
  EXPECT_THROW(acc.matrix(), std::logic_error);
}

TEST(PairMoments, GrowthAlignsWithStoreAddRow) {
  // Universe: 3 paths now, a 4th appended later.
  const linalg::SparseBinaryMatrix r3(3, {{0, 1}, {1, 2}, {0, 2}});
  const linalg::SparseBinaryMatrix r4(3, {{0, 1}, {1, 2}, {0, 2}, {1}});
  auto store = std::make_shared<SharingPairStore>(SharingPairStore::build(r3));
  PairMoments sparse(store, 3, {.window = 5});
  stats::StreamingMoments dense(3, {.window = 5});
  stats::Rng rng(5);
  std::vector<double> y(3);
  for (std::size_t l = 0; l < 7; ++l) {
    for (auto& v : y) v = rng.gaussian(0.0, 1.0);
    dense.push(y);
    sparse.push(y);
  }
  // Growing the store without growing the accumulator is caught.
  store->add_row(r4);
  EXPECT_THROW(sparse.push(std::vector<double>(3, 0.0)), std::logic_error);
  EXPECT_EQ(sparse.add_path(), 3u);
  EXPECT_EQ(dense.add_path(), 3u);
  y.resize(4);
  for (std::size_t l = 0; l < 6; ++l) {
    for (auto& v : y) v = rng.gaussian(0.0, 1.0);
    dense.push(y);
    sparse.push(y);
  }
  EXPECT_TRUE(sparse.pair_ready(3, 1));
  store->for_pairs(0, store->pair_count(),
                   [&](std::size_t p, std::uint32_t i, std::uint32_t j,
                       std::span<const std::uint32_t>) {
                     EXPECT_NEAR(sparse.pair_covariance(p),
                                 dense.covariance(i, j), 1e-12);
                   });
}

}  // namespace
}  // namespace losstomo::core
