#include "delay/delay_tomography.hpp"

#include <cmath>

namespace losstomo::delay {

DelaySimulator::DelaySimulator(const net::ReducedRoutingMatrix& rrm,
                               DelayScenarioConfig config, std::uint64_t seed)
    : rrm_(rrm), config_(config), rng_(seed) {
  prop_delay_.resize(rrm_.link_count());
  for (auto& d : prop_delay_) {
    d = rng_.uniform(config_.prop_delay_lo_ms, config_.prop_delay_hi_ms);
  }
  // As in the loss simulations, the congested set is drawn once per run;
  // the per-snapshot variability (large, redrawn queueing delays) is what
  // identifies congested links through their delay variance.
  congested_.resize(rrm_.link_count());
  for (std::size_t k = 0; k < rrm_.link_count(); ++k) {
    congested_[k] = rng_.bernoulli(config_.p);
  }
}

DelaySnapshot DelaySimulator::next() {
  const std::size_t nc = rrm_.link_count();
  const std::size_t np = rrm_.path_count();
  DelaySnapshot snap;
  snap.link_delay.resize(nc);
  snap.link_congested.resize(nc);
  for (std::size_t k = 0; k < nc; ++k) {
    double queue;
    if (congested_[k]) {
      queue = rng_.uniform(config_.congested_queue_lo_ms,
                           config_.congested_queue_hi_ms);
    } else {
      queue = std::fabs(rng_.gaussian(0.0, config_.good_jitter_ms));
    }
    snap.link_delay[k] = prop_delay_[k] + queue;
    snap.link_congested[k] = queue > config_.congestion_threshold_ms;
  }
  snap.path_delay.resize(np);
  const double probe_sd =
      config_.probe_noise_ms /
      std::sqrt(static_cast<double>(config_.probes_per_snapshot));
  const auto& r = rrm_.matrix();
  for (std::size_t i = 0; i < np; ++i) {
    double d = 0.0;
    for (const auto k : r.row(i)) d += snap.link_delay[k];
    snap.path_delay[i] = d + rng_.gaussian(0.0, probe_sd);
  }
  return snap;
}

DelayInference infer_snapshot_delays(const linalg::SparseBinaryMatrix& r,
                                     const core::Elimination& elimination,
                                     std::span<const double> y) {
  // Identical normal-equation solve as the loss case, without the log/exp
  // transform (delays are already additive).
  constexpr std::uint32_t kNotKept = 0xffffffffu;
  std::vector<std::uint32_t> position(r.cols(), kNotKept);
  for (std::size_t a = 0; a < elimination.kept.size(); ++a) {
    position[elimination.kept[a]] = static_cast<std::uint32_t>(a);
  }
  linalg::Vector rhs(elimination.kept.size(), 0.0);
  for (std::size_t i = 0; i < r.rows(); ++i) {
    const double yi = y[i];
    if (yi == 0.0) continue;
    for (const auto link : r.row(i)) {
      const auto pos = position[link];
      if (pos != kNotKept) rhs[pos] += yi;
    }
  }
  const linalg::Vector x = elimination.factor.solve(rhs);
  DelayInference out;
  out.delay.assign(r.cols(), 0.0);
  out.removed.assign(r.cols(), true);
  for (std::size_t a = 0; a < elimination.kept.size(); ++a) {
    const auto link = elimination.kept[a];
    out.removed[link] = false;
    out.delay[link] = x[a];
  }
  return out;
}

DelayInference run_delay_tomography(const linalg::SparseBinaryMatrix& r,
                                    const stats::SnapshotMatrix& history,
                                    std::span<const double> current,
                                    const core::VarianceOptions& var_options,
                                    const core::EliminationOptions& elim_options) {
  const auto variances = core::estimate_link_variances(r, history, var_options);
  const auto elimination =
      core::eliminate_low_variance_links(r, variances.v, elim_options);
  return infer_snapshot_delays(r, elimination, current);
}

}  // namespace losstomo::delay
