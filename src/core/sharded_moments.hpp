// ShardedPairMoments — the pair-indexed window accumulator, partitioned
// across K shards plus a boundary shard for cross-shard sharing pairs.
//
// The normal equations are additive over sharing pairs, and the
// Youngs–Cramer arithmetic PairMoments runs is elementwise independent:
// every per-dimension mean update and every per-pair centred cross-product
// update reads only that dimension's (or that pair's two dimensions')
// values.  So the global accumulator state can be partitioned by PATH:
// shard s owns the paths assigned to it, runs a full PairMoments over its
// own rows' sub-matrix (intra-shard pairs only), and a boundary shard —
// a full-dimension PairMoments over a store filtered to exactly the
// cross-shard pairs — absorbs every pair whose paths live in different
// shards.  Feeding shard s the gathered sub-vector of each snapshot
// reproduces the global accumulator's per-pair values BIT-IDENTICALLY:
// same adds, same retires, same periodic refresh cadence, same operand
// order.  This is the partition/merge layer of core::ShardedMonitor — each
// shard's state is independent (a future multi-socket or multi-machine
// deployment pins one shard per node), and the coordinator's merge is a
// value gather, not an arithmetic reduction, so shard count never changes
// the result.
//
// The merged per-pair view (pair_values()) is gathered lazily into an
// array aligned with the monitor's global SharingPairStore via
// precomputed (pair -> owning shard, local index) maps; each gather after
// new pushes counts as one coordinator merge (merges()).  The
// StreamingNormalEquations refresh consumes that view exactly as it
// consumes the flat PairMoments', preserving h's summation order and the
// drop/keep flip sequence — hence one cached factor, zero extra
// refactorizations, at any shard count.
//
// Partition: a deterministic splitmix64 hash of the global path index
// (hash_shard) by default, or an explicit per-path assignment for the
// initial paths; paths grown mid-run are always hash-partitioned, so a
// checkpoint restored into a freshly constructed accumulator reproduces
// the same partition without serializing the topology.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/pair_moments.hpp"
#include "core/sharing_pairs.hpp"
#include "linalg/sparse.hpp"

namespace losstomo::obs {
class Registry;
}  // namespace losstomo::obs

namespace losstomo::core {

/// Partitioned pair-indexed sliding-window covariance accumulator.
///
/// Thread-safety: single-writer like PairMoments; per-shard work
/// parallelizes internally per options.threads with bit-identical results
/// at any thread count.  Not copyable/movable (the boundary store's pair
/// filter captures this).
class ShardedPairMoments final : public PairIndexedSource {
 public:
  /// `store` is the monitor's global pair store, already built over `r`
  /// (dim = r.rows() paths); the accumulator slices `r` into per-shard row
  /// sub-matrices.  `partition` (optional) fixes the shard of the first
  /// partition.size() paths (entries < shards); every other path hashes.
  /// Throws std::invalid_argument on shards == 0, a store/matrix shape
  /// disagreement, or an out-of-range partition entry.
  ShardedPairMoments(std::shared_ptr<const SharingPairStore> store,
                     const linalg::SparseBinaryMatrix& r, std::size_t shards,
                     stats::StreamingMomentsOptions options,
                     std::span<const std::uint32_t> partition = {});

  ShardedPairMoments(const ShardedPairMoments&) = delete;
  ShardedPairMoments& operator=(const ShardedPairMoments&) = delete;

  /// Deterministic hash shard of global path `path` (splitmix64 % shards)
  /// — exposed so tests and tools can predict the default partition.
  static std::uint32_t hash_shard(std::size_t path, std::size_t shards);

  // CovarianceSource:
  [[nodiscard]] std::size_t dim() const override { return dim_; }
  [[nodiscard]] std::size_t count() const override {
    return boundary_->count();
  }
  [[nodiscard]] double covariance(std::size_t i, std::size_t j) const override;
  /// Unsupported, exactly like PairMoments.  Throws std::logic_error.
  [[nodiscard]] const linalg::Matrix& matrix() const override;
  [[nodiscard]] bool matrix_is_cheap() const override { return false; }
  [[nodiscard]] std::size_t samples(std::size_t i) const override {
    return boundary_->samples(i);
  }
  [[nodiscard]] bool pair_ready(std::size_t i, std::size_t j) const {
    return boundary_->pair_ready(i, j);
  }

  // PairIndexedSource:
  void push(std::span<const double> y) override;
  void push_block(std::span<const double> values, std::size_t rows) override;
  void activate_path(std::size_t i) override;
  void retire_path(std::size_t i) override;
  std::size_t add_paths(const linalg::SparseBinaryMatrix& r,
                        std::size_t count) override;
  void save_state(io::CheckpointWriter& writer) const override;
  void restore_state(io::CheckpointReader& reader) override;
  [[nodiscard]] const SharingPairStore* pair_store() const override {
    return store_.get();
  }
  /// The merged per-pair view, gathered lazily from the shard-local
  /// accumulators (one coordinator merge per gather-after-push).
  [[nodiscard]] std::span<const double> pair_values() const override;

  [[nodiscard]] std::size_t window() const { return options_.window; }
  [[nodiscard]] bool full() const { return boundary_->full(); }
  [[nodiscard]] std::size_t pushes() const { return boundary_->pushes(); }

  // -- Shard diagnostics --------------------------------------------------
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  [[nodiscard]] std::uint32_t shard_of(std::size_t path) const {
    return shard_of_[path];
  }
  [[nodiscard]] std::size_t shard_path_count(std::size_t s) const {
    return shards_[s].paths.size();
  }
  /// Intra-shard sharing pairs owned by shard s.
  [[nodiscard]] std::size_t shard_pair_count(std::size_t s) const {
    return shards_[s].store->pair_count();
  }
  /// Sharing pairs absorbed by the boundary shard.
  [[nodiscard]] std::size_t cross_shard_pairs() const {
    return boundary_store_->pair_count();
  }
  /// Coordinator merges performed so far (pair_values() gathers that
  /// followed at least one push).
  [[nodiscard]] std::size_t merges() const { return merges_; }

  /// Attaches telemetry: each lazy coordinator gather records a "merge"
  /// phase span (span.merge.seconds) into `registry`.  nullptr detaches.
  /// LiaMonitor wires this from MonitorOptions::telemetry.
  void set_telemetry(obs::Registry* registry);

 private:
  struct Shard {
    std::vector<std::uint32_t> paths;  // owned global path ids, ascending
    linalg::SparseBinaryMatrix sub_r;  // owned rows, global column width
    std::shared_ptr<SharingPairStore> store;  // intra-shard pairs
    std::optional<PairMoments> moments;       // dim = paths.size()
    std::vector<double> gather;               // sub-vector scratch
  };

  /// Extends the (global pair -> owning shard, local pair) maps for every
  /// global pair index >= first_pair.
  void map_pairs_from(std::size_t first_pair);

  std::shared_ptr<const SharingPairStore> store_;  // global (monitor's)
  std::size_t dim_;
  std::size_t shard_count_;
  stats::StreamingMomentsOptions options_;
  std::vector<std::uint32_t> shard_of_;   // per global path
  std::vector<std::uint32_t> local_of_;   // index within the owning shard
  std::vector<Shard> shards_;
  // Boundary shard: full dimension (growth may pair a new path with any
  // old one), store filtered to cross-shard pairs only.  Its push stream
  // is the full snapshot, so its count/pushes/churn ledger mirror the flat
  // accumulator's global bookkeeping exactly — count(), samples() and
  // pair_ready() delegate to it.
  std::shared_ptr<SharingPairStore> boundary_store_;
  std::optional<PairMoments> boundary_;
  // Merged view: global pair p lives in shard pair_shard_[p] (shard_count_
  // = boundary) at local pair index pair_local_[p].
  std::vector<std::uint32_t> pair_shard_;
  std::vector<std::size_t> pair_local_;
  mutable std::vector<double> merged_values_;
  mutable bool merged_dirty_ = true;
  mutable std::size_t merges_ = 0;
  obs::Registry* telemetry_ = nullptr;
  std::size_t merge_phase_ = 0;
};

}  // namespace losstomo::core
