// ScenarioRunner — drives sim::SnapshotSimulator + core::LiaMonitor
// through a scripted churn timeline (spec.hpp).
//
// The runner fixes a *universe* of measurement paths at construction: the
// base paths routed over the generated topology, plus the alternate routes
// every kRouteChange event will switch to, plus the reserve paths kGrow
// events will append — laid out in exactly the order the monitor will
// come to know them, so universe row indices and monitor row indices
// coincide.  The reduced routing matrix (virtual-link basis) is computed
// once over the whole universe: churn changes which rows are live, never
// the column space, which is what lets the streaming engine carry its
// state across events instead of relearning from scratch.
//
// The simulator realises every universe path every tick (loss processes
// evolve continuously whether or not a path is currently measured); the
// runner zeroes the entries of paths the monitor knows but that are
// inactive (deterministic filler — never read by the estimator) and feeds
// the prefix of rows the monitor currently knows.
//
// Determinism: a runner is a pure function of (spec, monitor options) —
// two runners over the same spec see identical snapshots and events, which
// is how the churn parity tests drive a streaming and a batch monitor
// through one scenario and compare tick by tick.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/monitor.hpp"
#include "net/graph.hpp"
#include "net/path.hpp"
#include "net/routing_matrix.hpp"
#include "scenario/spec.hpp"
#include "sim/probe_sim.hpp"
#include "stats/moments.hpp"

namespace losstomo::scenario {

/// Aggregate figures of one scenario run.
struct ScenarioOutcome {
  std::size_t ticks = 0;
  std::size_t events_applied = 0;
  std::size_t diagnosed = 0;
  std::size_t active_paths_end = 0;
  /// Mean/max seconds of diagnosing ticks with no event applied (the
  /// steady state) and of ticks that applied at least one event.
  double steady_tick_seconds = 0.0;
  double event_tick_seconds = 0.0;
  double max_tick_seconds = 0.0;
};

class ScenarioRunner {
 public:
  /// Builds the universe (topology, base + alternate + reserve paths),
  /// the simulator, and the monitor.  `monitor_options.window` comes from
  /// the spec (every other monitor knob is the caller's); a kAuto
  /// negative-covariance policy resolves to drop-negative (churn requires
  /// it on the streaming engine).  Throws std::invalid_argument on an
  /// invalid spec — unknown paths/links, a reroute with no alternate
  /// route (trees) or of an already-rerouted path, or a grow beyond the
  /// reserve pool.
  explicit ScenarioRunner(ScenarioSpec spec,
                          core::MonitorOptions monitor_options = {});

  /// Applies the events due at the current tick, generates one snapshot,
  /// and feeds it to the monitor.  Returns the monitor's inference (empty
  /// while the window is filling).
  std::optional<core::LossInference> step();

  /// Runs the remaining ticks; fn(tick, events_applied_this_tick,
  /// inference) is invoked after each one.
  template <typename Fn>
  ScenarioOutcome run(Fn&& fn) {
    while (tick_ < spec_.ticks) {
      const std::size_t before = events_applied_;
      auto inference = step();
      fn(tick_ - 1, events_applied_ - before, inference);
    }
    return outcome();
  }
  ScenarioOutcome run() {
    return run([](std::size_t, std::size_t, const auto&) {});
  }

  [[nodiscard]] ScenarioOutcome outcome() const;

  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }
  [[nodiscard]] const EventTimeline& timeline() const { return timeline_; }
  [[nodiscard]] core::LiaMonitor& monitor() { return *monitor_; }
  [[nodiscard]] const core::LiaMonitor& monitor() const { return *monitor_; }
  /// The universe routing matrix (all base + alternate + reserve paths).
  [[nodiscard]] const net::ReducedRoutingMatrix& universe() const {
    return *rrm_;
  }
  [[nodiscard]] const net::Graph& graph() const { return graph_; }
  /// Base paths routed over the topology (before alternates/reserve).
  [[nodiscard]] std::size_t base_path_count() const { return base_paths_; }
  [[nodiscard]] std::size_t ticks_run() const { return tick_; }
  [[nodiscard]] std::size_t events_applied() const { return events_applied_; }
  /// Ground truth of the most recent tick (for accuracy evaluation).
  [[nodiscard]] const sim::Snapshot& last_snapshot() const {
    return last_snapshot_;
  }

 private:
  void apply(const Event& event);

  ScenarioSpec spec_;
  EventTimeline timeline_;
  net::Graph graph_;
  std::vector<net::Path> universe_paths_;
  std::unique_ptr<net::ReducedRoutingMatrix> rrm_;
  std::unique_ptr<sim::SnapshotSimulator> simulator_;
  std::unique_ptr<core::LiaMonitor> monitor_;
  std::size_t base_paths_ = 0;
  // Universe rows each addition event will append, in timeline order.
  std::deque<std::size_t> pending_additions_;
  std::size_t tick_ = 0;
  std::size_t events_applied_ = 0;
  std::size_t diagnosed_ = 0;
  stats::RunningStat steady_tick_;
  stats::RunningStat event_tick_;
  double max_tick_seconds_ = 0.0;
  std::vector<double> y_;
  sim::Snapshot last_snapshot_;
};

}  // namespace losstomo::scenario
