// Fixture: the compliant shape — schema-clean names, timers tagged
// nondeterministic, deterministic counters left to publish from
// serialized state.
// lint-fixture-path: src/core/fixture_metrics.cpp
#include "obs/registry.hpp"

void register_metrics(losstomo::obs::Registry& r) {
  r.counter("monitor.ticks");
  r.gauge("shard.load",
          losstomo::obs::Determinism::kNondeterministic);
  r.histogram("span.solve.seconds");
  // lint: metric-naming-ok(window_load is a serialized ring-fill ratio
  // published from restore-stable state, not a timer reading)
  r.gauge("monitor.window_load",
          losstomo::obs::Determinism::kDeterministic);
}
