#include "topology/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace losstomo::topology {
namespace {

TEST(RandomTree, HasRequestedNodeCount) {
  stats::Rng rng(1);
  const auto tree = make_random_tree({.nodes = 200, .max_branching = 10}, rng);
  EXPECT_EQ(tree.graph.node_count(), 200u);
  EXPECT_EQ(tree.graph.edge_count(), 199u);  // tree property
}

TEST(RandomTree, RespectsBranchingLimit) {
  stats::Rng rng(2);
  const auto tree = make_random_tree({.nodes = 500, .max_branching = 3}, rng);
  for (net::NodeId v = 0; v < tree.graph.node_count(); ++v) {
    EXPECT_LE(tree.graph.out_degree(v), 3u);
  }
}

TEST(RandomTree, AllNodesReachableFromRoot) {
  stats::Rng rng(3);
  const auto tree = make_random_tree({.nodes = 300, .max_branching = 10}, rng);
  EXPECT_TRUE(tree.graph.all_reachable_from(tree.root));
}

TEST(RandomTree, LeavesHaveNoChildren) {
  stats::Rng rng(4);
  const auto tree = make_random_tree({.nodes = 100, .max_branching = 5}, rng);
  EXPECT_FALSE(tree.leaves.empty());
  for (const auto leaf : tree.leaves) {
    EXPECT_EQ(tree.graph.out_degree(leaf), 0u);
  }
}

TEST(RandomTree, PathsReachEveryLeaf) {
  stats::Rng rng(5);
  const auto tree = make_random_tree({.nodes = 150, .max_branching = 10}, rng);
  const auto paths = tree_paths(tree);
  ASSERT_EQ(paths.size(), tree.leaves.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(paths[i].source, tree.root);
    EXPECT_EQ(paths[i].destination, tree.leaves[i]);
    net::validate_path(tree.graph, paths[i]);
  }
}

TEST(RandomTree, PathsFormTree) {
  stats::Rng rng(6);
  const auto tree = make_random_tree({.nodes = 200, .max_branching = 8}, rng);
  EXPECT_TRUE(net::paths_form_tree(tree.graph, tree_paths(tree)));
}

TEST(RandomTree, DeterministicUnderSeed) {
  stats::Rng rng1(7), rng2(7);
  const auto t1 = make_random_tree({.nodes = 50, .max_branching = 4}, rng1);
  const auto t2 = make_random_tree({.nodes = 50, .max_branching = 4}, rng2);
  ASSERT_EQ(t1.graph.edge_count(), t2.graph.edge_count());
  for (net::EdgeId e = 0; e < t1.graph.edge_count(); ++e) {
    EXPECT_EQ(t1.graph.edge(e).from, t2.graph.edge(e).from);
    EXPECT_EQ(t1.graph.edge(e).to, t2.graph.edge(e).to);
  }
}

TEST(Waxman, ConnectedAndBidirectional) {
  stats::Rng rng(8);
  const auto topo = make_waxman({.nodes = 120, .links_per_node = 2}, rng);
  EXPECT_EQ(topo.graph.node_count(), 120u);
  EXPECT_TRUE(topo.graph.all_reachable_from(0));
  // Every edge has its reverse.
  for (net::EdgeId e = 0; e < topo.graph.edge_count(); e += 2) {
    EXPECT_EQ(topo.graph.edge(e).from, topo.graph.edge(e + 1).to);
    EXPECT_EQ(topo.graph.edge(e).to, topo.graph.edge(e + 1).from);
  }
}

TEST(Waxman, CoordinatesInUnitSquare) {
  stats::Rng rng(9);
  const auto topo = make_waxman({.nodes = 60, .links_per_node = 2}, rng);
  ASSERT_EQ(topo.coords.size(), 60u);
  for (const auto& [x, y] : topo.coords) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    EXPECT_GE(y, 0.0);
    EXPECT_LT(y, 1.0);
  }
}

TEST(Waxman, RejectsTooFewNodes) {
  stats::Rng rng(10);
  EXPECT_THROW(make_waxman({.nodes = 2, .links_per_node = 3}, rng),
               std::invalid_argument);
}

TEST(BarabasiAlbert, ConnectedWithExpectedEdgeCount) {
  stats::Rng rng(11);
  const auto topo =
      make_barabasi_albert({.nodes = 150, .links_per_node = 2}, rng);
  EXPECT_TRUE(topo.graph.all_reachable_from(0));
  // seed chain (2 links_per_node = m+1 = 3 nodes, 2 undirected) then
  // (n - 3) * 2 undirected attachments, each stored as 2 directed edges.
  const std::size_t undirected = 2 + (150 - 3) * 2;
  EXPECT_EQ(topo.graph.edge_count(), undirected * 2);
}

TEST(BarabasiAlbert, ProducesSkewedDegrees) {
  stats::Rng rng(12);
  const auto topo =
      make_barabasi_albert({.nodes = 400, .links_per_node = 2}, rng);
  std::size_t max_deg = 0;
  for (net::NodeId v = 0; v < topo.graph.node_count(); ++v) {
    max_deg = std::max(max_deg, topo.graph.out_degree(v));
  }
  // Preferential attachment grows hubs well beyond the attachment count.
  EXPECT_GE(max_deg, 10u);
}

TEST(HierarchicalTopDown, AsAnnotationComplete) {
  stats::Rng rng(13);
  const auto topo = make_hierarchical_top_down(
      {.as_count = 6, .routers_per_as = 10}, rng);
  EXPECT_EQ(topo.graph.node_count(), 60u);
  std::set<std::uint32_t> as_ids;
  for (net::NodeId v = 0; v < topo.graph.node_count(); ++v) {
    ASSERT_NE(topo.graph.as_of(v), net::kNoAs);
    as_ids.insert(topo.graph.as_of(v));
  }
  EXPECT_EQ(as_ids.size(), 6u);
}

TEST(HierarchicalTopDown, HasInterAndIntraAsLinks) {
  stats::Rng rng(14);
  const auto topo = make_hierarchical_top_down(
      {.as_count = 5, .routers_per_as = 8}, rng);
  std::size_t inter = 0, intra = 0;
  for (net::EdgeId e = 0; e < topo.graph.edge_count(); ++e) {
    (topo.graph.is_inter_as(e) ? inter : intra) += 1;
  }
  EXPECT_GT(inter, 0u);
  EXPECT_GT(intra, 0u);
}

TEST(HierarchicalTopDown, Connected) {
  stats::Rng rng(15);
  const auto topo = make_hierarchical_top_down(
      {.as_count = 8, .routers_per_as = 6}, rng);
  EXPECT_TRUE(topo.graph.all_reachable_from(0));
}

TEST(HierarchicalBottomUp, AssignsSpatialAses) {
  stats::Rng rng(16);
  const auto topo = make_hierarchical_bottom_up(
      {.nodes = 200, .links_per_node = 2, .grid = 4}, rng);
  std::set<std::uint32_t> as_ids;
  for (net::NodeId v = 0; v < topo.graph.node_count(); ++v) {
    ASSERT_NE(topo.graph.as_of(v), net::kNoAs);
    as_ids.insert(topo.graph.as_of(v));
  }
  EXPECT_GT(as_ids.size(), 1u);
  EXPECT_LE(as_ids.size(), 16u);
}

TEST(PickLowDegreeHosts, ReturnsLowestDegreeNodes) {
  net::Graph g(4);
  g.add_bidirectional(0, 1);
  g.add_bidirectional(0, 2);
  g.add_bidirectional(0, 3);
  g.add_bidirectional(1, 2);
  // Degrees: 0 -> 6, 1 -> 4, 2 -> 4, 3 -> 2.
  const auto hosts = pick_low_degree_hosts(g, 2);
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0], 3u);
  EXPECT_EQ(hosts[1], 1u);  // stable tie-break by id
}

}  // namespace
}  // namespace losstomo::topology
