// Shared machinery for the experiment harnesses: scenario construction for
// the paper's topologies and the standard learn-then-infer pipeline with
// its accuracy metrics.  Each bench binary reproduces one table/figure and
// prints the same rows/series the paper reports.
#pragma once

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "baselines/scfs.hpp"
#include "core/lia.hpp"
#include "core/metrics.hpp"
#include "net/routing_matrix.hpp"
#include "sim/probe_sim.hpp"
#include "stats/cdf.hpp"
#include "stats/moments.hpp"
#include "stats/rng.hpp"
#include "topology/generators.hpp"
#include "topology/overlay.hpp"
#include "topology/routing.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace losstomo::bench {

/// Standardised machine-readable bench output.  Every harness that wants a
/// perf trajectory accepts `--json <path>` (equivalently `json=<path>`) and
/// dumps its headline numbers as one flat JSON object, so successive PRs
/// can diff the recorded BENCH_*.json files.
class JsonReport {
 public:
  void set(const std::string& key, double value) {
    entries_.emplace_back(key, util::json::number(value));
  }
  void set(const std::string& key, std::size_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, util::json::escaped(value));
  }

  /// Writes the object to `path` when non-empty; returns true if written.
  bool write(const std::string& path) const {
    if (path.empty()) return false;
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write json report: " + path);
    util::json::Writer w(out);
    w.begin_object();
    for (const auto& [key, token] : entries_) {
      w.key(key).value_raw(token);
    }
    w.end_object();
    w.finish();
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;  // insertion order
};

/// Standardised `threads=1,2,8` sweep for JsonReport benches: runs the
/// callback once per requested worker count with the library default
/// (util::set_default_threads) pinned for the duration, so a multi-core
/// re-record of a bench is one command instead of N LOSSTOMO_THREADS
/// invocations.  The callback receives (threads, key_suffix); the suffix
/// is empty for a single-entry sweep (the default `threads=0` = library
/// default keeps every existing key name unchanged) and "_t<N>" per entry
/// otherwise, so one JSON report carries the whole sweep.
class ThreadSweep {
 public:
  explicit ThreadSweep(const util::Args& args)
      : counts_(args.get_ints("threads", {0})) {
    if (counts_.empty()) counts_ = {0};
  }

  template <typename Fn>
  void run(Fn&& fn) const {
    for (const int t : counts_) {
      const std::size_t threads = t <= 0 ? 0 : static_cast<std::size_t>(t);
      util::set_default_threads(threads);
      fn(threads,
         counts_.size() == 1 ? std::string() : "_t" + std::to_string(t));
    }
    util::set_default_threads(0);
  }

  [[nodiscard]] const std::vector<int>& counts() const { return counts_; }

 private:
  std::vector<int> counts_;
};

/// Runs `trials` independent evaluations concurrently on the thread pool.
/// fn(trial, seed) receives a SplitMix64-decorrelated per-trial seed, so
/// the result set depends only on `seed` — not on the thread count or on
/// which worker ran which trial.  Results come back in trial order.
template <typename Fn>
auto run_trials(std::size_t trials, std::uint64_t seed, Fn&& fn) {
  using Result = std::invoke_result_t<Fn&, std::size_t, std::uint64_t>;
  // vector<bool> packs bits: adjacent elements share a byte, so concurrent
  // per-trial writes would tear.  Return a struct/int instead.
  static_assert(!std::is_same_v<Result, bool>,
                "run_trials cannot return bool (vector<bool> data race)");
  std::vector<Result> out(trials);
  util::parallel_for(trials, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      out[t] = fn(t, stats::splitmix64(seed ^ stats::splitmix64(t + 1)));
    }
  });
  return out;
}

/// A topology plus its routed measurement paths and reduced matrix.
struct Instance {
  net::Graph graph;
  std::vector<net::Path> paths;
  std::unique_ptr<net::ReducedRoutingMatrix> rrm;
  std::string name;
  bool is_tree = false;

  [[nodiscard]] const net::ReducedRoutingMatrix& matrix() const { return *rrm; }
};

inline Instance make_tree_instance(std::size_t nodes, std::size_t branching,
                                   std::uint64_t seed) {
  stats::Rng rng(seed);
  auto tree = topology::make_random_tree(
      {.nodes = nodes, .max_branching = branching}, rng);
  Instance inst;
  inst.paths = topology::tree_paths(tree);
  inst.graph = std::move(tree.graph);
  inst.rrm = std::make_unique<net::ReducedRoutingMatrix>(inst.graph, inst.paths);
  inst.name = "Tree";
  inst.is_tree = true;
  return inst;
}

inline Instance from_topology(topology::Topology topo, std::string name,
                              std::size_t host_count = 0) {
  Instance inst;
  auto hosts = topo.hosts;
  if (hosts.empty()) {
    hosts = topology::pick_low_degree_hosts(topo.graph, host_count);
  }
  auto routed = topology::route_paths(topo.graph, hosts, hosts);
  inst.paths = std::move(routed.paths);
  inst.graph = std::move(topo.graph);
  inst.rrm = std::make_unique<net::ReducedRoutingMatrix>(inst.graph, inst.paths);
  inst.name = std::move(name);
  return inst;
}

/// The six Table-2 topologies at a size scale in (0, 1]; scale 1
/// approximates the paper's setups (1000-node BRITE meshes, 500-beacon
/// PlanetLab, 801-beacon DIMES).
inline std::vector<Instance> table2_instances(double scale, std::uint64_t seed) {
  std::vector<Instance> out;
  const auto nodes = static_cast<std::size_t>(1000 * scale);
  const auto hosts = static_cast<std::size_t>(120 * scale);
  {
    stats::Rng rng(seed + 1);
    out.push_back(from_topology(
        topology::make_barabasi_albert({.nodes = nodes, .links_per_node = 2}, rng),
        "Barabasi-Albert", hosts));
  }
  {
    stats::Rng rng(seed + 2);
    out.push_back(from_topology(
        topology::make_waxman({.nodes = nodes, .links_per_node = 2}, rng),
        "Waxman", hosts));
  }
  {
    stats::Rng rng(seed + 3);
    out.push_back(from_topology(
        topology::make_hierarchical_top_down(
            {.as_count = std::max<std::size_t>(4, nodes / 50),
             .routers_per_as = 50},
            rng),
        "Hierarchical (Top-Down)", hosts));
  }
  {
    stats::Rng rng(seed + 4);
    out.push_back(from_topology(
        topology::make_hierarchical_bottom_up({.nodes = nodes, .grid = 5}, rng),
        "Hierarchical (Bottom-Up)", hosts));
  }
  {
    stats::Rng rng(seed + 5);
    out.push_back(from_topology(
        topology::make_planetlab_like_scaled(scale * 0.5, rng), "PlanetLab"));
  }
  {
    stats::Rng rng(seed + 6);
    out.push_back(from_topology(
        topology::make_dimes_like_scaled(scale * 0.35, rng), "DIMES"));
  }
  return out;
}

/// One learn-then-infer run.
struct PipelineOutcome {
  core::LocationAccuracy lia;
  core::LocationAccuracy scfs;           // trees only
  core::ErrorVectors errors;             // per-link |err| and f_delta
  std::size_t congested_links = 0;       // |F| in the evaluation snapshot
  std::size_t kept_columns = 0;          // columns of R*
  std::size_t congested_evicted = 0;     // congested columns eliminated
  bool congested_removed = false;        // any congested column eliminated
  double learn_seconds = 0.0;
  double infer_seconds = 0.0;
};

inline PipelineOutcome run_pipeline(const Instance& inst,
                                    const sim::ScenarioConfig& config,
                                    std::size_t m, std::uint64_t seed,
                                    bool run_scfs = false,
                                    const core::LiaOptions& lia_options = {}) {
  sim::SnapshotSimulator simulator(inst.graph, inst.matrix(), config, seed);
  auto series = sim::run_snapshots(simulator, m + 1);
  const auto& rrm = inst.matrix();
  stats::SnapshotMatrix history(rrm.path_count(), m);
  for (std::size_t l = 0; l < m; ++l) {
    const auto& y = series.snapshots[l].path_log_trans;
    std::copy(y.begin(), y.end(), history.sample(l).begin());
  }
  const auto& current = series.snapshots[m];

  PipelineOutcome out;
  core::Lia lia(rrm.matrix(), lia_options);
  util::Timer learn_timer;
  lia.learn(history);
  out.learn_seconds = learn_timer.seconds();
  util::Timer infer_timer;
  const auto inference = lia.infer(current.path_log_trans);
  out.infer_seconds = infer_timer.seconds();

  const double tl = config.loss_model.threshold_tl;
  out.lia = core::locate_congested(inference.loss, current.link_congested, tl);
  out.errors = core::per_link_errors(current.link_true_loss, inference.loss);
  out.kept_columns = lia.elimination().kept.size();
  for (std::size_t k = 0; k < rrm.link_count(); ++k) {
    if (current.link_congested[k]) {
      ++out.congested_links;
      if (inference.removed[k]) {
        ++out.congested_evicted;
        out.congested_removed = true;
      }
    }
  }
  if (run_scfs && inst.is_tree) {
    const auto bad = baselines::binarize_paths(
        current.path_trans, baselines::path_lengths(rrm.matrix()), tl);
    out.scfs = core::locate_congested(baselines::scfs_tree(rrm, bad),
                                      current.link_congested);
  }
  return out;
}

}  // namespace losstomo::bench
