// Sample moments: means, variances, and the unbiased covariance estimator of
// the paper's eq. (7), computed over m snapshots of the path observation
// vector Y.
//
// Two access patterns are provided:
//  * SnapshotMatrix + covariance(i, j): exact pairwise covariances, used by
//    the explicit (drop-negative-equation) Phase-1 estimator on small path
//    sets;
//  * CenteredSnapshots: centred samples exposed so the implicit Phase-1
//    estimator can evaluate per-link sums (sum over paths through a link of
//    centred Y, squared, summed over snapshots) without materialising the
//    np x np covariance matrix.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace losstomo::io {
class CheckpointWriter;
class CheckpointReader;
}  // namespace losstomo::io

namespace losstomo::stats {

/// Row-major collection of m snapshots of an np-dimensional observation:
/// sample(l) returns snapshot l as a span of length np.  Plain storage —
/// concurrent reads are safe; writers need external synchronisation.
/// Accessors do not bounds-check (l < count(), i < dim() are
/// preconditions).
class SnapshotMatrix {
 public:
  SnapshotMatrix(std::size_t dim, std::size_t count);

  /// Builds from a vector of snapshot vectors (each of size dim).
  static SnapshotMatrix from_rows(const std::vector<std::vector<double>>& rows);

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t count() const { return count_; }

  [[nodiscard]] std::span<double> sample(std::size_t l);
  [[nodiscard]] std::span<const double> sample(std::size_t l) const;

  [[nodiscard]] double& at(std::size_t l, std::size_t i);
  [[nodiscard]] double at(std::size_t l, std::size_t i) const;

  /// Contiguous row-major storage (count() rows of dim() entries); the
  /// layout the blocked covariance kernels consume directly.
  [[nodiscard]] std::span<const double> flat() const { return data_; }

 private:
  std::size_t dim_;
  std::size_t count_;
  std::vector<double> data_;  // count_ rows of dim_ entries
};

/// Per-coordinate sample means of the snapshots.
std::vector<double> sample_means(const SnapshotMatrix& y);

/// Centred snapshots plus cached means; the basis for all covariance math.
class CenteredSnapshots {
 public:
  explicit CenteredSnapshots(const SnapshotMatrix& y);

  [[nodiscard]] std::size_t dim() const { return centered_.dim(); }
  [[nodiscard]] std::size_t count() const { return centered_.count(); }
  [[nodiscard]] const std::vector<double>& means() const { return means_; }

  /// Centred snapshot l.
  [[nodiscard]] std::span<const double> sample(std::size_t l) const {
    return centered_.sample(l);
  }

  /// Unbiased sample covariance between coordinates i and j (paper eq. (7)):
  ///   cov(i,j) = 1/(m-1) * sum_l (Y_i^l - mean_i)(Y_j^l - mean_j).
  /// Requires count() >= 2.  O(count()) per call — consumers needing many
  /// pairs should use covariance_matrix() (one blocked pass) instead.
  [[nodiscard]] double covariance(std::size_t i, std::size_t j) const;

  /// Unbiased sample variance of coordinate i.
  [[nodiscard]] double variance(std::size_t i) const { return covariance(i, i); }

  /// Contiguous centred samples (count() rows of dim() entries).
  [[nodiscard]] std::span<const double> flat() const { return centered_.flat(); }

 private:
  SnapshotMatrix centered_;
  std::vector<double> means_;
};

/// Full sample covariance matrix S of the snapshots (paper eq. (7)):
/// S_ij = 1/(m-1) sum_l ytilde_i^l ytilde_j^l, computed in one blocked
/// SYRK pass over the centred data (linalg/kernels.hpp).  This is the
/// precomputation that lets the Phase-1 pairwise accumulation drop its
/// O(m) inner loop per path pair.  Requires count() >= 2.
linalg::Matrix covariance_matrix(const CenteredSnapshots& y,
                                 std::size_t threads = 0);

/// Streaming univariate accumulator (count/mean/variance/min/max) used by
/// experiment harnesses to aggregate repeated runs.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Checkpoint hooks (io/checkpoint.hpp): full Welford state round-trips
  /// bit-exactly.
  void save_state(io::CheckpointWriter& writer) const;
  void restore_state(io::CheckpointReader& reader);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations (Welford)
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation between two equal-length series; returns 0 when
/// either series is constant.
double pearson(std::span<const double> a, std::span<const double> b);

/// Spearman rank correlation (used to quantify the Fig. 3 monotone
/// mean-variance relationship).  Ties get average ranks.
double spearman(std::span<const double> a, std::span<const double> b);

}  // namespace losstomo::stats
