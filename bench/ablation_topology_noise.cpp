// Ablation: robustness to traceroute topology errors (paper §7.1).
//
// The physical network is simulated as usual, but LIA sees only the
// *observed* topology produced by the measurement-error model: a fraction
// of routers do not answer ICMP (adjacent hops fuse) and a fraction have
// unresolved interface aliases (the router splits).  Ground truth for an
// observed link is the compound loss of its underlying physical chain.
#include "common.hpp"

#include "topology/observed.hpp"

int main(int argc, char** argv) {
  using namespace losstomo;
  const util::Args args(argc, argv);
  const bool full = util::Args::full_scale();
  const double scale = args.get_double("scale", full ? 0.3 : 0.12);
  const auto m = args.get_size("m", 50);
  const double p = args.get_double("p", 0.1);
  const auto runs = args.get_size("runs", full ? 6 : 3);
  const auto seed = args.get_size("seed", 59);
  args.finish();

  std::cout << "Ablation: LIA under traceroute topology noise "
               "(PlanetLab-like, scale=" << scale << ", m=" << m
            << ", p=" << p << ")\n"
            << "Losses run on physical edges; inference sees the observed "
               "topology.\n\n";

  struct Variant {
    std::string name;
    topology::ObservationOptions options;
  };
  const std::vector<Variant> variants = {
      {"clean topology", {}},
      {"5% hidden routers", {.hide_fraction = 0.05}},
      {"10% hidden routers", {.hide_fraction = 0.10}},
      {"16% split interfaces", {.split_fraction = 0.16}},
      {"10% hidden + 16% split (paper's §7.1 error rates)",
       {.hide_fraction = 0.10, .split_fraction = 0.16}},
  };

  util::Table table({"variant", "observed links", "DR", "FPR"});
  for (const auto& variant : variants) {
    stats::RunningStat dr, fpr, links;
    for (std::size_t run = 0; run < runs; ++run) {
      stats::Rng rng(seed + run);
      auto topo_rng = rng.fork(1);
      auto topo = topology::make_planetlab_like_scaled(scale, topo_rng);
      const auto routed =
          topology::route_paths(topo.graph, topo.hosts, topo.hosts);
      // Physical ground truth at per-edge granularity.
      const net::ReducedRoutingMatrix phys_rrm(topo.graph, routed.paths);
      sim::ScenarioConfig config;
      config.p = p;
      config.granularity = sim::LossGranularity::kPerPhysicalEdge;
      sim::SnapshotSimulator simulator(topo.graph, phys_rrm, config,
                                       seed * 17 + run);
      auto series = sim::run_snapshots(simulator, m + 1);

      // Observed topology + routing matrix.
      auto obs_rng = rng.fork(2);
      const auto observed = topology::observe_topology(
          topo.graph, routed.paths, variant.options, obs_rng);
      const net::ReducedRoutingMatrix obs_rrm(observed.graph, observed.paths);
      links.add(static_cast<double>(obs_rrm.link_count()));

      stats::SnapshotMatrix history(obs_rrm.path_count(), m);
      for (std::size_t l = 0; l < m; ++l) {
        const auto& y = series.snapshots[l].path_log_trans;
        std::copy(y.begin(), y.end(), history.sample(l).begin());
      }
      core::Lia lia(obs_rrm.matrix());
      lia.learn(history);
      const auto inference =
          lia.infer(series.snapshots[m].path_log_trans);

      // Ground truth per observed virtual link: compound loss of all
      // underlying physical edges of all member observed edges.
      const auto& snap = series.snapshots[m];
      std::vector<bool> truly_congested(obs_rrm.link_count());
      for (std::size_t k = 0; k < obs_rrm.link_count(); ++k) {
        double trans = 1.0;
        for (const auto obs_edge : obs_rrm.members(k)) {
          for (const auto phys_edge : observed.underlying[obs_edge]) {
            trans *= 1.0 - snap.edge_loss[phys_edge];
          }
        }
        truly_congested[k] =
            1.0 - trans > config.loss_model.threshold_tl;
      }
      const auto acc = core::locate_congested(
          inference.loss, truly_congested, config.loss_model.threshold_tl);
      dr.add(acc.dr);
      fpr.add(acc.fpr);
    }
    table.add_row({variant.name, util::Table::num(links.mean(), 0),
                   util::Table::num(dr.mean(), 4),
                   util::Table::num(fpr.mean(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: accuracy degrades gracefully with hidden/"
               "split routers (paper §7: 'despite the potential errors in "
               "network topology, our algorithm is still very accurate').\n";
  return 0;
}
