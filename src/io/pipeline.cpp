#include "io/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "obs/registry.hpp"
#include "sim/probe_sim.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace losstomo::io {

void Element::push(const SnapshotBatch& batch) {
  if (rows_counter_ != nullptr) {
    rows_counter_->add(batch.rows);
    bytes_counter_->add(batch.values.size() * sizeof(double));
  }
  do_push(batch);
}

void Element::set_telemetry(obs::Registry* registry, std::string_view name) {
  if (registry == nullptr) {
    rows_counter_ = nullptr;
    bytes_counter_ = nullptr;
    return;
  }
  const std::string base = "pipeline." + std::string(name) + ".";
  rows_counter_ = &registry->counter(base + "rows");
  bytes_counter_ = &registry->counter(base + "bytes");
}

void Source::set_telemetry(obs::Registry* registry, std::string_view name) {
  if (registry == nullptr) {
    rows_counter_ = nullptr;
    stall_histogram_ = nullptr;
    return;
  }
  const std::string base = "pipeline." + std::string(name) + ".";
  rows_counter_ = &registry->counter(base + "rows");
  stall_histogram_ = &registry->histogram(base + "stall_seconds");
}

void Source::note_produced(std::size_t rows, double seconds) {
  if (rows_counter_ == nullptr) return;
  rows_counter_->add(rows);
  stall_histogram_->observe(seconds);
}

void Element::finish() { emit_finish(); }

std::size_t Source::drain(Element& first, std::size_t block_rows) {
  if (block_rows == 0) {
    throw std::invalid_argument("pipeline drain needs block_rows > 0");
  }
  std::size_t total = 0;
  for (std::size_t got; (got = pump(first, block_rows)) > 0;) total += got;
  first.finish();
  return total;
}

// -- Sources ----------------------------------------------------------------

std::size_t BinaryTraceSource::pump(Element& sink, std::size_t max_rows) {
  const std::size_t left = reader_->snapshots() - cursor_;
  const std::size_t rows = std::min(left, max_rows);
  if (rows == 0) return 0;
  // Source-side "work" is just the mmap slice — timed anyway so the stall
  // histogram stays comparable across source kinds (page faults show up
  // here on a cold cache).
  util::Timer timer;
  const std::span<const double> values = reader_->rows(cursor_, rows);
  if (telemetry_enabled()) note_produced(rows, timer.seconds());
  sink.push({.values = values,
             .rows = rows,
             .paths = reader_->paths(),
             .log_transformed = reader_->log_transformed()});
  cursor_ += rows;
  return rows;
}

TextSnapshotSource::TextSnapshotSource(std::istream& is)
    : stream_(is, /*log_transform=*/false) {}

std::size_t TextSnapshotSource::pump(Element& sink, std::size_t max_rows) {
  util::Timer timer;
  block_.clear();
  std::size_t rows = 0;
  while (rows < max_rows && stream_.next(row_)) {
    block_.insert(block_.end(), row_.begin(), row_.end());
    ++rows;
  }
  if (rows == 0) return 0;
  if (telemetry_enabled()) note_produced(rows, timer.seconds());
  sink.push({.values = block_,
             .rows = rows,
             .paths = stream_.dim(),
             .log_transformed = false});
  return rows;
}

SimulatorSource::SimulatorSource(sim::SnapshotSimulator& simulator,
                                 std::size_t snapshots)
    : simulator_(&simulator), remaining_(snapshots) {}

std::size_t SimulatorSource::pump(Element& sink, std::size_t max_rows) {
  const std::size_t rows = std::min(remaining_, max_rows);
  if (rows == 0) return 0;
  util::Timer timer;
  block_.clear();
  std::size_t paths = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const sim::Snapshot snap = simulator_->next();
    paths = snap.path_trans.size();
    block_.insert(block_.end(), snap.path_trans.data(),
                  snap.path_trans.data() + paths);
  }
  remaining_ -= rows;
  if (telemetry_enabled()) note_produced(rows, timer.seconds());
  sink.push({.values = block_,
             .rows = rows,
             .paths = paths,
             .log_transformed = false});
  return rows;
}

// -- Transforms -------------------------------------------------------------

void LogTransform::do_push(const SnapshotBatch& batch) {
  if (batch.log_transformed) {
    emit(batch);
    return;
  }
  buffer_.resize(batch.values.size());
  const double* in = batch.values.data();
  double* out = buffer_.data();
  // One tight pass over the whole block: the body is a pure element-wise
  // map (auto-vectorizable), chunked deterministically so results are
  // bit-identical at any thread count.  Same expression as
  // SnapshotStream::next — this is what pins text/binary bit-parity.
  util::parallel_for(
      batch.values.size(), 4096,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = std::log(std::max(in[i], 1e-9));
        }
      },
      threads_);
  emit({.values = buffer_,
        .rows = batch.rows,
        .paths = batch.paths,
        .log_transformed = true});
}

Thin::Thin(std::size_t keep_every) : keep_every_(keep_every) {
  if (keep_every == 0) {
    throw std::invalid_argument("Thin needs keep_every > 0");
  }
}

void Thin::do_push(const SnapshotBatch& batch) {
  if (keep_every_ == 1) {
    emit(batch);
    return;
  }
  // Kept rows stay zero-copy: each is emitted as a 1-row sub-span of the
  // incoming block (rows of a batch are contiguous by contract).
  for (std::size_t r = 0; r < batch.rows; ++r) {
    const bool keep = phase_ == 0;
    phase_ = (phase_ + 1) % keep_every_;
    if (!keep) continue;
    emit({.values = batch.values.subspan(r * batch.paths, batch.paths),
          .rows = 1,
          .paths = batch.paths,
          .log_transformed = batch.log_transformed});
  }
}

void Scale::do_push(const SnapshotBatch& batch) {
  if (batch.log_transformed) {
    throw std::logic_error("Scale on a log-transformed stream");
  }
  buffer_.resize(batch.values.size());
  for (std::size_t i = 0; i < batch.values.size(); ++i) {
    buffer_[i] = batch.values[i] * factor_;
  }
  emit({.values = buffer_,
        .rows = batch.rows,
        .paths = batch.paths,
        .log_transformed = false});
}

// -- Sinks ------------------------------------------------------------------

void MonitorSink::do_push(const SnapshotBatch& batch) {
  if (!batch.log_transformed) {
    throw std::logic_error(
        "MonitorSink fed raw phi — insert a LogTransform upstream");
  }
  monitor_->observe_block(
      batch.values, batch.rows,
      on_inference_ ? core::LiaMonitor::InferenceFn(on_inference_)
                    : core::LiaMonitor::InferenceFn{});
  emit(batch);
}

void BinaryTraceSink::do_push(const SnapshotBatch& batch) {
  if (!writer_) {
    writer_ = std::make_unique<BinaryTraceWriter>(file_, batch.paths,
                                                  batch.log_transformed);
  }
  writer_->append_block(batch.values, batch.rows);
  snapshots_ += batch.rows;
  emit(batch);
}

void BinaryTraceSink::finish() {
  if (writer_) writer_->finish();
  emit_finish();
}

void TextSnapshotSink::do_push(const SnapshotBatch& batch) {
  if (batch.log_transformed) {
    throw std::logic_error(
        "text snapshot format stores phi; cannot serialize a "
        "log-transformed trace");
  }
  if (!wrote_header_) {
    *os_ << "# losstomo snapshots: one line per snapshot, phi per path\n";
    wrote_header_ = true;
  }
  // max_digits10 so the parsed-back double is bit-identical — the
  // convert round-trip test depends on it.
  const auto saved = os_->precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t r = 0; r < batch.rows; ++r) {
    const double* row = batch.values.data() + r * batch.paths;
    for (std::size_t i = 0; i < batch.paths; ++i) {
      if (i) *os_ << ' ';
      *os_ << row[i];
    }
    *os_ << '\n';
  }
  os_->precision(saved);
  if (!*os_) {
    throw CheckpointError(CheckpointErrorKind::kIo,
                          "write failed on text snapshot sink");
  }
  emit(batch);
}

void CollectSink::do_push(const SnapshotBatch& batch) {
  if (rows_ == 0) {
    paths_ = batch.paths;
    log_transformed_ = batch.log_transformed;
  } else if (batch.paths != paths_ ||
             batch.log_transformed != log_transformed_) {
    throw std::logic_error("CollectSink saw an inconsistent batch");
  }
  values_.insert(values_.end(), batch.values.begin(), batch.values.end());
  rows_ += batch.rows;
  emit(batch);
}

OpenedSnapshotSource open_snapshot_source(const std::string& file) {
  OpenedSnapshotSource opened;
  if (is_binary_trace(file)) {
    auto reader =
        std::make_shared<BinaryTraceReader>(BinaryTraceReader::open(file));
    opened.source = std::make_unique<BinaryTraceSource>(*reader);
    opened.holder = reader;
    opened.binary = true;
    opened.log_transformed = reader->log_transformed();
    return opened;
  }
  auto is = std::make_shared<std::ifstream>(file);
  if (!*is) {
    throw CheckpointError(CheckpointErrorKind::kIo,
                          "cannot open snapshot file '" + file + "'");
  }
  opened.source = std::make_unique<TextSnapshotSource>(*is);
  opened.holder = is;
  return opened;
}

}  // namespace losstomo::io
