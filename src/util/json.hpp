// Shared JSON emission: escaping-correct string/number encoding plus a
// small streaming writer for nested documents.
//
// Two consumers with different shapes share this code.  bench::JsonReport
// emits flat insertion-ordered objects and needs only the token encoders
// (escaped() / number()); the obs:: metric exporters emit nested
// schema-versioned snapshots and drive the Writer.  Keeping the encoding
// in one place means there is exactly one implementation of JSON string
// escaping and one of the "non-finite doubles become null" rule in the
// repo (JSON has no NaN/inf literal).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace losstomo::util::json {

/// Appends the escaped body of `s` (no surrounding quotes) to `out`:
/// `"` and `\` get a backslash, control characters become \u%04x.
void append_escaped(std::string& out, std::string_view s);

/// The quoted JSON string literal for `s`.
[[nodiscard]] std::string escaped(std::string_view s);

/// The JSON number token for `value` at `precision` significant digits;
/// non-finite values encode as "null".
[[nodiscard]] std::string number(double value, int precision = 12);

/// Streaming writer for nested objects/arrays: tracks nesting, comma
/// placement, and 2-space indentation, so emitters state structure and
/// never touch punctuation.  A container opened with compact = true is
/// laid out on one line (its nested containers inherit that), which keeps
/// bucket lists and event rows readable.  Methods return *this for
/// chaining; finish() requires a balanced document.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(&out) {}

  Writer& begin_object(bool compact = false);
  Writer& end_object();
  Writer& begin_array(bool compact = false);
  Writer& end_array();

  /// Object member key; must be followed by a value or container.
  Writer& key(std::string_view k);

  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(double v);  // non-finite -> null
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool v);
  Writer& null();
  /// Emits a pre-encoded token verbatim (JsonReport's stored entries).
  Writer& value_raw(std::string_view token);

  /// Ends the document with a trailing newline; throws std::logic_error
  /// on unbalanced nesting or a dangling key.
  void finish();

 private:
  struct Level {
    bool array = false;
    bool compact = false;
    bool empty = true;
  };
  /// Punctuation before a value/container: comma for a sibling, then
  /// newline + indent (or a space in compact layout).
  void before_value();
  void newline_indent();

  std::ostream* out_;
  std::vector<Level> stack_;
  bool after_key_ = false;
};

}  // namespace losstomo::util::json
