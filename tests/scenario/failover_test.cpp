// Crash-drill acceptance tests for checkpoint/restore at the scenario
// level: kill the run at EVERY tick of a churn scenario, restore into a
// fresh runner, and require the resumed inferences to be bit-identical to
// the uninterrupted run with the cached factor carried across (exactly one
// factorization per resumed run, no downdate fallbacks, no jitter).  Also
// pins the scripted failover events (checkpoint / restore / handoff — the
// shipped scenarios/failover.scn) to be invisible to the inference stream,
// and that a damaged checkpoint is rejected cleanly with the runner left
// fully usable.
#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "io/checkpoint.hpp"
#include "io/scenario_io.hpp"
#include "linalg/matrix.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "test_util.hpp"

namespace losstomo::scenario {
namespace {

// The churn-parity mesh instance, shortened: every event type that touches
// the monitor state happens before the kill window ends.
ScenarioSpec drill_spec() {
  ScenarioSpec spec;
  spec.name = "failover-drill";
  spec.topology.kind = TopologySpec::Kind::kMesh;
  spec.topology.nodes = 40;
  spec.topology.hosts = 24;
  spec.topology.seed = 3;
  spec.window = 25;
  spec.ticks = 60;
  spec.seed = 11;
  spec.p = 0.6;
  spec.probes = 600;
  spec.min_good_loss = 0.002;
  spec.reserve_paths = 3;
  spec.events = {
      {.tick = 30, .type = EventType::kPathLeave, .path = 3},
      {.tick = 34, .type = EventType::kPathJoin, .path = 3},
      {.tick = 45, .type = EventType::kRouteChange, .path = 5},
      {.tick = 50, .type = EventType::kLinkDown, .link = 2},
      {.tick = 55, .type = EventType::kGrow, .count = 2},
  };
  return spec;
}

core::MonitorOptions drill_options(std::size_t threads) {
  core::MonitorOptions options;
  options.lia.variance.threads = threads;
  return options;
}

struct UninterruptedRun {
  std::vector<std::optional<linalg::Vector>> losses;  // per tick
  std::vector<std::vector<std::uint8_t>> images;      // checkpoint per tick
  std::size_t refactorizations = 0;
};

// One continuous run that checkpoints itself (to memory) before every
// tick: images[t] is the state a process dying right before tick t would
// have recovered from.
UninterruptedRun uninterrupted(const ScenarioSpec& spec,
                               const core::MonitorOptions& options) {
  UninterruptedRun run;
  ScenarioRunner runner(spec, options);
  while (runner.ticks_run() < spec.ticks) {
    io::CheckpointWriter writer;
    runner.save_state(writer);
    run.images.push_back(writer.finish());
    const auto inference = runner.step();
    run.losses.push_back(inference
                             ? std::optional<linalg::Vector>(inference->loss)
                             : std::nullopt);
  }
  const auto* eqs = runner.monitor().streaming_equations();
  EXPECT_NE(eqs, nullptr);
  if (eqs) run.refactorizations = eqs->refactorizations();
  return run;
}

// Restores a fresh runner from images[kill_at] and finishes the scenario,
// requiring bit-identical inferences and an intact factor cache.
void expect_bit_identical_resume(const ScenarioSpec& spec,
                                 const core::MonitorOptions& options,
                                 const UninterruptedRun& ref,
                                 std::size_t kill_at,
                                 const std::string& label) {
  ScenarioRunner runner(spec, options);
  auto reader = io::CheckpointReader::from_bytes(ref.images[kill_at]);
  runner.restore_state(reader);
  ASSERT_EQ(runner.ticks_run(), kill_at) << label;
  while (runner.ticks_run() < spec.ticks) {
    const std::size_t tick = runner.ticks_run();
    const auto inference = runner.step();
    ASSERT_EQ(inference.has_value(), ref.losses[tick].has_value())
        << label << " tick " << tick;
    if (!inference) continue;
    // Bit-identical, not merely close: restore must be exact resumption.
    EXPECT_EQ(linalg::max_abs_diff(inference->loss, *ref.losses[tick]), 0.0)
        << label << " tick " << tick;
    EXPECT_EQ(runner.monitor().variances().jitter_used, 0.0)
        << label << " tick " << tick;
  }
  const auto* eqs = runner.monitor().streaming_equations();
  ASSERT_NE(eqs, nullptr) << label;
  EXPECT_EQ(eqs->refactorizations(), ref.refactorizations) << label;
  EXPECT_EQ(eqs->refactorizations(), 1u) << label;
  EXPECT_EQ(eqs->downdate_fallbacks(), 0u) << label;
}

TEST(Failover, KillAtEveryTickResumesBitIdentically) {
  const auto spec = drill_spec();
  const auto options = drill_options(1);
  const auto ref = uninterrupted(spec, options);
  ASSERT_EQ(ref.images.size(), spec.ticks);
  for (std::size_t kill_at = 1; kill_at < spec.ticks; ++kill_at) {
    expect_bit_identical_resume(spec, options, ref, kill_at,
                                "kill_at=" + std::to_string(kill_at));
  }
}

TEST(Failover, ResumeIsThreadCountIndependent) {
  const auto spec = drill_spec();
  for (const std::size_t threads : {2u, 8u}) {
    const auto options = drill_options(threads);
    const auto ref = uninterrupted(spec, options);
    // Curated kill points: mid-warmup, right after the window fills, mid
    // churn, and straight after the growth burst.
    for (const std::size_t kill_at : {12u, 26u, 46u, 56u}) {
      expect_bit_identical_resume(
          spec, options, ref, kill_at,
          "threads=" + std::to_string(threads) +
              "/kill_at=" + std::to_string(kill_at));
    }
  }
}

TEST(Failover, ScriptedFailoverEventsAreInvisible) {
  // The shipped failover scenario (checkpoint + same-tick restore +
  // handoff) must produce the exact inference stream of the same scenario
  // with those events stripped.
  auto spec = io::load_scenario(
      std::string(LOSSTOMO_SOURCE_DIR "/scenarios/failover.scn"));
  auto clean = spec;
  std::erase_if(clean.events, [](const Event& e) {
    return e.type == EventType::kCheckpoint ||
           e.type == EventType::kRestore || e.type == EventType::kHandoff;
  });
  ASSERT_EQ(clean.events.size() + 3, spec.events.size());

  const auto options = drill_options(1);
  std::vector<std::optional<linalg::Vector>> reference;
  ScenarioRunner clean_runner(clean, options);
  clean_runner.run([&](std::size_t, std::size_t,
                       const std::optional<core::LossInference>& inf) {
    reference.push_back(inf ? std::optional<linalg::Vector>(inf->loss)
                            : std::nullopt);
  });

  ScenarioRunner runner(spec, options);
  std::size_t tick = 0;
  runner.run([&](std::size_t, std::size_t,
                 const std::optional<core::LossInference>& inf) {
    const auto& ref = reference[tick++];
    ASSERT_EQ(inf.has_value(), ref.has_value());
    if (inf) {
      EXPECT_EQ(linalg::max_abs_diff(inf->loss, *ref), 0.0);
    }
  });
  const auto outcome = runner.outcome();
  // All three failover events applied, on top of the regular churn.
  EXPECT_EQ(outcome.events_applied, clean_runner.outcome().events_applied + 3);
  const auto* eqs = runner.monitor().streaming_equations();
  ASSERT_NE(eqs, nullptr);
  EXPECT_EQ(eqs->refactorizations(), 1u);
  std::remove("/tmp/losstomo_failover.ckpt");
}

TEST(Failover, RestoreRunnerRebuildsFromTheFileAlone) {
  const auto spec = drill_spec();
  const auto options = drill_options(1);
  const std::string file = losstomo::testing::scratch_file("restore.ckpt");
  std::vector<std::optional<linalg::Vector>> reference;
  {
    ScenarioRunner runner(spec, options);
    while (runner.ticks_run() < 40) (void)runner.step();
    runner.save_checkpoint(file);
    while (runner.ticks_run() < spec.ticks) {
      const auto inf = runner.step();
      reference.push_back(inf ? std::optional<linalg::Vector>(inf->loss)
                              : std::nullopt);
    }
  }
  auto resumed = restore_runner(file, options);
  EXPECT_EQ(resumed.ticks_run(), 40u);
  EXPECT_EQ(resumed.spec().name, spec.name);
  std::size_t at = 0;
  while (resumed.ticks_run() < resumed.spec().ticks) {
    const auto inf = resumed.step();
    const auto& ref = reference[at++];
    ASSERT_EQ(inf.has_value(), ref.has_value());
    if (inf) {
      EXPECT_EQ(linalg::max_abs_diff(inf->loss, *ref), 0.0);
    }
  }
  std::remove(file.c_str());
}

TEST(Failover, DamagedCheckpointIsRejectedAndRunnerStaysUsable) {
  const auto spec = drill_spec();
  const auto options = drill_options(1);
  ScenarioRunner runner(spec, options);
  while (runner.ticks_run() < 30) (void)runner.step();

  io::CheckpointWriter writer;
  runner.save_state(writer);
  const auto image = writer.finish();

  // Truncated and bit-flipped images: typed rejection, no partial state.
  {
    std::vector<std::uint8_t> cut(image.begin(),
                                  image.begin() + image.size() / 3);
    EXPECT_THROW(io::CheckpointReader::from_bytes(std::move(cut)),
                 io::CheckpointError);
  }
  {
    auto flipped = image;
    flipped[flipped.size() / 2] ^= 0x10;
    EXPECT_THROW(io::CheckpointReader::from_bytes(std::move(flipped)),
                 io::CheckpointError);
  }
  // A checkpoint from a DIFFERENT scenario: valid file, wrong target.
  {
    auto other = spec;
    other.seed = 404;
    other.name = "someone-else";
    ScenarioRunner other_runner(other, options);
    while (other_runner.ticks_run() < 5) (void)other_runner.step();
    io::CheckpointWriter other_writer;
    other_runner.save_state(other_writer);
    auto reader = io::CheckpointReader::from_bytes(other_writer.finish());
    try {
      runner.restore_state(reader);
      FAIL() << "accepted a checkpoint from a different scenario";
    } catch (const io::CheckpointError& e) {
      EXPECT_EQ(e.kind(), io::CheckpointErrorKind::kMismatch);
    }
  }
  // The failed restores must not have perturbed the runner: a good image
  // still restores, and the run completes.
  auto reader = io::CheckpointReader::from_bytes(image);
  runner.restore_state(reader);
  EXPECT_EQ(runner.ticks_run(), 30u);
  while (runner.ticks_run() < spec.ticks) (void)runner.step();
  EXPECT_EQ(runner.outcome().ticks, spec.ticks);
}

TEST(Failover, ScriptedRestoreOfForeignTickIsRefused) {
  // A restore event pointing at a checkpoint of a DIFFERENT tick must be
  // refused (it would rewind the timeline and replay itself forever).
  auto spec = drill_spec();
  const std::string file =
      losstomo::testing::scratch_file("wrong_tick.ckpt");
  {
    ScenarioRunner runner(spec, drill_options(1));
    while (runner.ticks_run() < 20) (void)runner.step();
    runner.save_checkpoint(file);
  }
  auto scripted = spec;
  scripted.events.push_back(
      {.tick = 35, .type = EventType::kRestore, .file = file});
  ScenarioRunner runner(scripted, drill_options(1));
  EXPECT_THROW(
      {
        while (runner.ticks_run() < scripted.ticks) (void)runner.step();
      },
      std::runtime_error);
  std::remove(file.c_str());
}

}  // namespace
}  // namespace losstomo::scenario
