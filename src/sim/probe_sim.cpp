#include "sim/probe_sim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>

#include "io/checkpoint.hpp"
#include "io/checkpoint_tags.hpp"
#include "util/parallel.hpp"

namespace losstomo::sim {

namespace {

// Floor for a sampled transmission fraction: a path losing all S probes
// would give log(0); half a probe's worth is the standard continuity
// correction (documented in DESIGN.md).
double clamp_fraction(double fraction, std::size_t s) {
  const double floor_value = 0.5 / static_cast<double>(s);
  return std::max(fraction, floor_value);
}

}  // namespace

SnapshotSimulator::SnapshotSimulator(const net::Graph& g,
                                     const net::ReducedRoutingMatrix& rrm,
                                     ScenarioConfig config, std::uint64_t seed)
    : graph_(g), rrm_(rrm), config_(config), rng_(seed) {
  if (config_.p < 0.0 || config_.p > 1.0) {
    throw std::invalid_argument("p out of [0,1]");
  }
  if (config_.probes_per_snapshot == 0) {
    throw std::invalid_argument("S must be positive");
  }
  // Covered physical edges, ascending (diagnostics + per-edge mode).
  std::set<net::EdgeId> covered;
  for (std::size_t k = 0; k < rrm_.link_count(); ++k) {
    for (const auto e : rrm_.members(k)) covered.insert(e);
  }
  covered_edges_.assign(covered.begin(), covered.end());

  // Loss-process "units": one per virtual link (paper's model) or one per
  // covered physical edge (realism ablation).
  const bool per_edge =
      config_.granularity == LossGranularity::kPerPhysicalEdge;
  const std::size_t nc = rrm_.link_count();
  const std::size_t np = rrm_.path_count();

  if (per_edge) {
    unit_count_ = covered_edges_.size();
    std::vector<std::uint32_t> edge_slot(graph_.edge_count(), 0xffffffffu);
    for (std::size_t i = 0; i < covered_edges_.size(); ++i) {
      edge_slot[covered_edges_[i]] = static_cast<std::uint32_t>(i);
    }
    path_units_.resize(np);
    for (std::size_t i = 0; i < np; ++i) {
      for (const auto e : rrm_.paths()[i].edges) {
        path_units_[i].push_back(edge_slot[e]);
      }
    }
    link_units_.resize(nc);
    for (std::size_t k = 0; k < nc; ++k) {
      for (const auto e : rrm_.members(k)) {
        link_units_[k].push_back(edge_slot[e]);
      }
    }
    unit_inter_as_.resize(unit_count_);
    for (std::size_t u = 0; u < unit_count_; ++u) {
      unit_inter_as_[u] = graph_.is_inter_as(covered_edges_[u]);
    }
  } else {
    unit_count_ = nc;
    path_units_.resize(np);
    for (std::size_t i = 0; i < np; ++i) {
      const auto links = rrm_.links_of_path(i);
      path_units_[i].assign(links.begin(), links.end());
    }
    link_units_.resize(nc);
    for (std::size_t k = 0; k < nc; ++k) {
      link_units_[k] = {static_cast<std::uint32_t>(k)};
    }
    unit_inter_as_.resize(unit_count_);
    for (std::size_t k = 0; k < nc; ++k) {
      unit_inter_as_[k] = rrm_.link_is_inter_as(graph_, k);
    }
  }

  if (config_.congestible_fraction <= 0.0 ||
      config_.congestible_fraction > 1.0) {
    throw std::invalid_argument("congestible_fraction out of (0,1]");
  }
  congestion_prob_.resize(unit_count_);
  unit_congestible_.resize(unit_count_);
  for (std::size_t u = 0; u < unit_count_; ++u) {
    unit_congestible_[u] = config_.congestible_fraction >= 1.0 ||
                           rng_.bernoulli(config_.congestible_fraction);
    double pu = 0.0;
    if (unit_congestible_[u]) {
      pu = config_.p / config_.congestible_fraction;
      if (unit_inter_as_[u]) pu *= config_.inter_as_congestion_bias;
    }
    congestion_prob_[u] = std::min(pu, 0.9);
  }
  congested_.assign(unit_count_, false);
  rate_.assign(unit_count_, 0.0);
  forced_rate_.assign(unit_count_,
                      std::numeric_limits<double>::quiet_NaN());
  words_ = (config_.probes_per_snapshot + 63) / 64;
  bad_masks_.assign(unit_count_ * words_, 0);
}

double SnapshotSimulator::effective_rate(std::size_t u) const {
  const double forced = forced_rate_[u];
  return std::isnan(forced) ? rate_[u] : forced;
}

void SnapshotSimulator::force_link_loss(std::size_t k, double rate) {
  if (k >= link_units_.size()) throw std::invalid_argument("link out of range");
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("forced loss rate out of [0,1)");
  }
  for (const auto u : link_units_[k]) forced_rate_[u] = rate;
}

void SnapshotSimulator::clear_link_forcing(std::size_t k) {
  if (k >= link_units_.size()) throw std::invalid_argument("link out of range");
  for (const auto u : link_units_[k]) {
    forced_rate_[u] = std::numeric_limits<double>::quiet_NaN();
  }
}

void SnapshotSimulator::shift_regime(double p) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("p out of [0,1]");
  config_.p = p;
  for (std::size_t u = 0; u < unit_count_; ++u) {
    double pu = 0.0;
    if (unit_congestible_[u]) {
      pu = p / config_.congestible_fraction;
      if (unit_inter_as_[u]) pu *= config_.inter_as_congestion_bias;
    }
    congestion_prob_[u] = std::min(pu, 0.9);
    congested_[u] = rng_.bernoulli(congestion_prob_[u]);
    rate_[u] = draw_loss_rate(config_.loss_model, congested_[u], rng_);
  }
  // The regime draw above replaces the lazy first-snapshot draw.
  first_snapshot_ = false;
}

void SnapshotSimulator::refresh_congestion() {
  if (first_snapshot_) {
    for (std::size_t u = 0; u < unit_count_; ++u) {
      congested_[u] = rng_.bernoulli(congestion_prob_[u]);
      rate_[u] = draw_loss_rate(config_.loss_model, congested_[u], rng_);
    }
    first_snapshot_ = false;
    return;
  }
  if (config_.redraw_rate_each_snapshot) {
    for (std::size_t u = 0; u < unit_count_; ++u) {
      rate_[u] = draw_loss_rate(config_.loss_model, congested_[u], rng_);
    }
  }
  switch (config_.dynamics) {
    case CongestionDynamics::kStatic:
      return;  // one draw per run; only the loss-process realisation varies
    case CongestionDynamics::kIid:
      for (std::size_t u = 0; u < unit_count_; ++u) {
        congested_[u] = rng_.bernoulli(congestion_prob_[u]);
        rate_[u] = draw_loss_rate(config_.loss_model, congested_[u], rng_);
      }
      return;
    case CongestionDynamics::kMarkov: {
      const double rho = config_.persistence;
      for (std::size_t u = 0; u < unit_count_; ++u) {
        const double pu = congestion_prob_[u];
        // Binary Markov chain with stationary pu and lag-1 autocorrelation
        // rho: P(1|1) = rho + (1-rho) pu, P(1|0) = (1-rho) pu.
        const double p_next =
            congested_[u] ? rho + (1.0 - rho) * pu : (1.0 - rho) * pu;
        const bool next = rng_.bernoulli(p_next);
        if (next != congested_[u]) {
          // Redraw the rate only on a state change so a congestion episode
          // keeps one rate for its whole duration.
          congested_[u] = next;
          rate_[u] = draw_loss_rate(config_.loss_model, next, rng_);
        }
      }
      return;
    }
  }
}

void SnapshotSimulator::fill_masks(stats::Rng& rng) {
  const std::size_t s = config_.probes_per_snapshot;
  // One master draw per snapshot, then an independent SplitMix64-derived
  // stream per loss unit: units can be realised on any worker in any order
  // and the snapshot is still a pure function of the master seed, so the
  // output is unchanged at any thread count.
  const std::uint64_t base = stats::splitmix64(rng.engine()());
  std::fill(bad_masks_.begin(), bad_masks_.end(), 0);
  util::parallel_for(unit_count_, 8, [&](std::size_t u_begin, std::size_t u_end) {
    for (std::size_t u = u_begin; u < u_end; ++u) {
      const double rate = effective_rate(u);
      if (rate <= 0.0) continue;
      std::uint64_t* mask = bad_masks_.data() + u * words_;
      stats::Rng unit_rng(stats::splitmix64(base ^ (u + 1) * 0xff51afd7ed558ccdULL));
      if (config_.process == LossProcess::kGilbert) {
        GilbertChain chain(
            GilbertParams::for_loss_rate(rate, config_.gilbert_stay_bad),
            unit_rng);
        for (std::size_t t = 0; t < s; ++t) {
          if (chain.step(unit_rng)) mask[t >> 6] |= (1ULL << (t & 63));
        }
      } else {
        for (std::size_t t = 0; t < s; ++t) {
          if (unit_rng.bernoulli(rate)) mask[t >> 6] |= (1ULL << (t & 63));
        }
      }
    }
  });
}

Snapshot SnapshotSimulator::evaluate_slot_synchronized(
    std::span<const std::uint8_t> needed) {
  const std::size_t s = config_.probes_per_snapshot;
  const std::size_t np = rrm_.path_count();
  const std::size_t nc = rrm_.link_count();
  Snapshot snap;
  snap.path_log_trans.resize(np);
  snap.path_trans.resize(np);
  snap.link_sampled_log_trans.resize(nc);

  const auto popcount_or = [&](const std::vector<std::uint32_t>& units,
                               std::vector<std::uint64_t>& acc) {
    std::fill(acc.begin(), acc.end(), 0);
    for (const auto u : units) {
      const std::uint64_t* mask = bad_masks_.data() + u * words_;
      for (std::size_t w = 0; w < words_; ++w) acc[w] |= mask[w];
    }
    std::size_t bad = 0;
    for (const auto w : acc) bad += static_cast<std::size_t>(std::popcount(w));
    return bad;
  };

  // Paths: a probe survives iff no traversed unit is bad in its slot.  Each
  // path/link writes only its own entries, so both sweeps parallelise
  // without changing the output.  Unneeded paths (lazy mode) skip the
  // popcount sweep entirely and carry a 0.0 filler.
  util::parallel_for(np, 32, [&](std::size_t begin, std::size_t end) {
    std::vector<std::uint64_t> acc(words_);
    for (std::size_t i = begin; i < end; ++i) {
      if (!needed.empty() && needed[i] == 0) {
        snap.path_trans[i] = 0.0;
        snap.path_log_trans[i] = 0.0;
        continue;
      }
      const std::size_t bad = popcount_or(path_units_[i], acc);
      const double phi = clamp_fraction(
          static_cast<double>(s - bad) / static_cast<double>(s), s);
      snap.path_trans[i] = phi;
      snap.path_log_trans[i] = std::log(phi);
    }
  });
  // Virtual links: a probe traverses the link successfully iff every unit
  // backing it is good in its slot.
  util::parallel_for(nc, 32, [&](std::size_t begin, std::size_t end) {
    std::vector<std::uint64_t> acc(words_);
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t bad = popcount_or(link_units_[k], acc);
      const double phi = clamp_fraction(
          static_cast<double>(s - bad) / static_cast<double>(s), s);
      snap.link_sampled_log_trans[k] = std::log(phi);
    }
  });
  return snap;
}

Snapshot SnapshotSimulator::evaluate_per_packet(stats::Rng& rng) {
  const std::size_t s = config_.probes_per_snapshot;
  const std::size_t np = rrm_.path_count();
  const std::size_t nc = rrm_.link_count();
  Snapshot snap;
  snap.path_log_trans.resize(np);
  snap.path_trans.resize(np);
  snap.link_sampled_log_trans.resize(nc);

  // Per-unit chains shared across paths; a packet arrival advances the
  // chain of every unit it reaches.
  std::vector<GilbertChain> chains;
  chains.reserve(unit_count_);
  for (std::size_t u = 0; u < unit_count_; ++u) {
    chains.emplace_back(
        GilbertParams::for_loss_rate(effective_rate(u),
                                     config_.gilbert_stay_bad),
        rng);
  }
  std::vector<std::size_t> arrivals(unit_count_, 0);
  std::vector<std::size_t> drops(unit_count_, 0);
  std::vector<std::size_t> delivered(np, 0);

  std::vector<std::size_t> order(np);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t t = 0; t < s; ++t) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (const auto i : order) {
      bool alive = true;
      for (const auto u : path_units_[i]) {
        if (!alive) break;
        ++arrivals[u];
        bool bad;
        if (config_.process == LossProcess::kGilbert) {
          bad = chains[u].step(rng);
        } else {
          bad = rng.bernoulli(effective_rate(u));
        }
        if (bad) {
          ++drops[u];
          alive = false;
        }
      }
      if (alive) ++delivered[i];
    }
  }
  for (std::size_t i = 0; i < np; ++i) {
    const double phi = clamp_fraction(
        static_cast<double>(delivered[i]) / static_cast<double>(s), s);
    snap.path_trans[i] = phi;
    snap.path_log_trans[i] = std::log(phi);
  }
  for (std::size_t k = 0; k < nc; ++k) {
    double log_phi = 0.0;
    for (const auto u : link_units_[k]) {
      const double phi_u =
          arrivals[u] == 0
              ? 1.0
              : clamp_fraction(static_cast<double>(arrivals[u] - drops[u]) /
                                   static_cast<double>(arrivals[u]),
                               s);
      log_phi += std::log(phi_u);
    }
    snap.link_sampled_log_trans[k] = log_phi;
  }
  return snap;
}

bool SnapshotSimulator::effective_congested(std::size_t u) const {
  const double forced = forced_rate_[u];
  if (std::isnan(forced)) return congested_[u];
  return forced > config_.loss_model.threshold_tl;
}

Snapshot SnapshotSimulator::finalize_truth(Snapshot snap) const {
  const std::size_t nc = rrm_.link_count();
  snap.edge_loss.assign(graph_.edge_count(), 0.0);
  snap.edge_congested.assign(graph_.edge_count(), false);
  snap.link_true_loss.resize(nc);
  snap.link_congested.resize(nc);
  if (config_.granularity == LossGranularity::kPerPhysicalEdge) {
    for (std::size_t i = 0; i < covered_edges_.size(); ++i) {
      snap.edge_loss[covered_edges_[i]] = effective_rate(i);
      snap.edge_congested[covered_edges_[i]] = effective_congested(i);
    }
    snap.link_true_loss = rrm_.aggregate_edge_losses(snap.edge_loss);
  } else {
    for (std::size_t k = 0; k < nc; ++k) {
      snap.link_true_loss[k] = effective_rate(k);
      // Diagnostics: split the link's rate evenly (in log space) over its
      // member edges.
      const auto members = rrm_.members(k);
      const double per_edge =
          1.0 - std::pow(1.0 - snap.link_true_loss[k],
                         1.0 / static_cast<double>(members.size()));
      for (const auto e : members) {
        snap.edge_loss[e] = per_edge;
        snap.edge_congested[e] = effective_congested(k);
      }
    }
  }
  for (std::size_t k = 0; k < nc; ++k) {
    snap.link_congested[k] =
        snap.link_true_loss[k] > config_.loss_model.threshold_tl;
  }
  return snap;
}

Snapshot SnapshotSimulator::next() { return next({}); }

Snapshot SnapshotSimulator::next(std::span<const std::uint8_t> needed_paths) {
  if (!needed_paths.empty() && needed_paths.size() != rrm_.path_count()) {
    throw std::invalid_argument("needed-path mask size != path count");
  }
  refresh_congestion();
  auto slot_rng = rng_.fork(0x5eed);
  if (config_.mode == ProbeMode::kSlotSynchronized) {
    fill_masks(slot_rng);
    return finalize_truth(evaluate_slot_synchronized(needed_paths));
  }
  // Per-packet arrivals advance shared link chains path by path; skipping
  // a path would change every later draw, so the mask is ignored here.
  return finalize_truth(evaluate_per_packet(slot_rng));
}

void SnapshotSimulator::save_state(io::CheckpointWriter& writer) const {
  writer.begin_section(io::tags::kProbeSim);
  writer.usize(unit_count_);
  rng_.save_state(writer);
  std::vector<std::uint8_t> congested(unit_count_, 0);
  for (std::size_t u = 0; u < unit_count_; ++u) congested[u] = congested_[u];
  writer.u8s(congested);
  writer.doubles(rate_);
  writer.doubles(forced_rate_);  // NaN sentinels round-trip bit-exactly
  writer.doubles(congestion_prob_);
  writer.boolean(first_snapshot_);
  writer.end_section();
}

void SnapshotSimulator::restore_state(io::CheckpointReader& reader) {
  reader.expect_section(io::tags::kProbeSim);
  const std::size_t units = reader.usize();
  if (units != unit_count_) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "simulator unit count differs from the checkpointed one");
  }
  stats::Rng rng = rng_;
  rng.restore_state(reader);
  const std::vector<std::uint8_t> congested = reader.u8s();
  std::vector<double> rate = reader.doubles();
  std::vector<double> forced_rate = reader.doubles();
  std::vector<double> congestion_prob = reader.doubles();
  const bool first_snapshot = reader.boolean();
  reader.end_section();
  if (congested.size() != unit_count_ || rate.size() != unit_count_ ||
      forced_rate.size() != unit_count_ ||
      congestion_prob.size() != unit_count_) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "simulator per-unit array size != unit count");
  }
  rng_ = std::move(rng);
  for (std::size_t u = 0; u < unit_count_; ++u) {
    congested_[u] = congested[u] != 0;
  }
  rate_ = std::move(rate);
  forced_rate_ = std::move(forced_rate);
  congestion_prob_ = std::move(congestion_prob);
  first_snapshot_ = first_snapshot;
}

stats::SnapshotMatrix SnapshotSeries::observation_matrix() const {
  if (snapshots.empty()) throw std::logic_error("no snapshots collected");
  stats::SnapshotMatrix y(snapshots.front().path_log_trans.size(),
                          snapshots.size());
  for (std::size_t l = 0; l < snapshots.size(); ++l) {
    const auto& src = snapshots[l].path_log_trans;
    std::copy(src.begin(), src.end(), y.sample(l).begin());
  }
  return y;
}

SnapshotSeries run_snapshots(SnapshotSimulator& simulator, std::size_t m) {
  SnapshotSeries series;
  series.snapshots.reserve(m);
  for (std::size_t i = 0; i < m; ++i) series.snapshots.push_back(simulator.next());
  return series;
}

}  // namespace losstomo::sim
