#include "topology/observed.hpp"

#include <map>
#include <set>

namespace losstomo::topology {

namespace {

using net::EdgeId;
using net::NodeId;

// Observed node label: physical node plus an interface salt (0 for
// correctly-aliased routers; split routers get one label per incoming-edge
// parity, modelling unresolved interfaces).
using Label = std::pair<NodeId, std::uint32_t>;

}  // namespace

ObservedTopology observe_topology(const net::Graph& physical,
                                  const std::vector<net::Path>& paths,
                                  const ObservationOptions& options,
                                  stats::Rng& rng) {
  // End-hosts keep their identity; only interior routers degrade.
  std::set<NodeId> endpoints;
  for (const auto& p : paths) {
    endpoints.insert(p.source);
    endpoints.insert(p.destination);
  }
  std::vector<bool> hidden(physical.node_count(), false);
  std::vector<bool> split(physical.node_count(), false);
  ObservedTopology out;
  for (NodeId v = 0; v < physical.node_count(); ++v) {
    if (endpoints.contains(v)) continue;
    if (rng.bernoulli(options.hide_fraction)) {
      hidden[v] = true;
      ++out.hidden_routers;
    } else if (rng.bernoulli(options.split_fraction)) {
      split[v] = true;
      ++out.split_routers;
    }
  }

  std::map<Label, NodeId> node_of;
  const auto intern_node = [&](const Label& label) {
    const auto [it, inserted] = node_of.emplace(
        label, static_cast<NodeId>(node_of.size()));
    if (inserted) {
      out.graph.add_node();
      out.graph.set_as(it->second, physical.as_of(label.first));
    }
    return it->second;
  };
  std::map<std::pair<NodeId, NodeId>, EdgeId> edge_of;

  for (const auto& p : paths) {
    net::Path obs;
    const NodeId obs_src = intern_node({p.source, 0});
    obs.source = obs_src;
    NodeId seg_start = obs_src;
    std::vector<EdgeId> chain;
    for (std::size_t idx = 0; idx < p.edges.size(); ++idx) {
      const EdgeId e = p.edges[idx];
      const NodeId w = physical.edge(e).to;
      chain.push_back(e);
      const bool last = idx + 1 == p.edges.size();
      if (hidden[w] && !last) continue;  // hop invisible: extend the chain
      const std::uint32_t salt = split[w] ? (e & 1u) : 0u;
      const NodeId obs_w = intern_node({w, salt});
      const auto key = std::make_pair(seg_start, obs_w);
      const auto it = edge_of.find(key);
      EdgeId obs_e;
      if (it == edge_of.end()) {
        obs_e = out.graph.add_edge(seg_start, obs_w);
        edge_of.emplace(key, obs_e);
        out.underlying.push_back(chain);
      } else {
        obs_e = it->second;
        if (out.underlying[obs_e] != chain) ++out.ambiguous_links;
      }
      obs.edges.push_back(obs_e);
      seg_start = obs_w;
      chain.clear();
    }
    obs.destination = seg_start;
    out.paths.push_back(std::move(obs));
  }
  return out;
}

}  // namespace losstomo::topology
