#include "core/monitor.hpp"

#include <stdexcept>

namespace losstomo::core {

LiaMonitor::LiaMonitor(const linalg::SparseBinaryMatrix& r,
                       MonitorOptions options)
    : r_(r), options_(options), lia_(r_, options_.lia) {
  if (options_.window < 2) throw std::invalid_argument("window must be >= 2");
  if (options_.relearn_every == 0) {
    throw std::invalid_argument("relearn_every must be >= 1");
  }
}

void LiaMonitor::relearn() {
  stats::SnapshotMatrix history(r_.rows(), options_.window);
  for (std::size_t l = 0; l < options_.window; ++l) {
    const auto& y = window_[l];
    std::copy(y.begin(), y.end(), history.sample(l).begin());
  }
  lia_.learn(history);
  since_learn_ = 0;
}

std::optional<LossInference> LiaMonitor::observe(std::span<const double> y) {
  if (y.size() != r_.rows()) throw std::invalid_argument("snapshot size");
  ++ticks_;

  std::optional<LossInference> result;
  if (window_.size() == options_.window) {
    // Window full: (re)learn if due, then diagnose this snapshot using the
    // PRECEDING window only (the paper's m-then-(m+1) split).
    if (!lia_.trained() || ++since_learn_ >= options_.relearn_every) {
      relearn();
    }
    result = lia_.infer(y);
  }
  window_.emplace_back(y.begin(), y.end());
  if (window_.size() > options_.window) window_.pop_front();
  return result;
}

}  // namespace losstomo::core
