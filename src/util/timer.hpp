// Wall-clock timer for the running-time experiments (§6.4 of the paper).
#pragma once

#include <chrono>

namespace losstomo::util {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer();

  /// Restarts the stopwatch.
  void reset();

  /// Elapsed time since construction/reset, in seconds.
  [[nodiscard]] double seconds() const;
  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace losstomo::util
