// §7.2.2: duration of congestion episodes as seen by LIA.  The paper ran
// LIA over 100 consecutive PlanetLab snapshots (5 minutes each) and found
// 99% of inferred congested links stayed congested for a single snapshot.
// We run the same sliding-window analysis on the simulated overlay with
// short-lived congestion episodes (Markov dynamics) and print the inferred
// duration distribution.
#include "common.hpp"

#include <map>

#include "core/monitor.hpp"

int main(int argc, char** argv) {
  using namespace losstomo;
  const util::Args args(argc, argv);
  const bool full = util::Args::full_scale();
  const double scale = args.get_double("scale", full ? 0.3 : 0.1);
  const double p = args.get_double("p", 0.02);
  const double persistence = args.get_double("persistence", 0.0);
  const double congestible = args.get_double("congestible", 0.25);
  const auto m = args.get_size("m", full ? 50 : 30);
  const auto windows = args.get_size("windows", full ? 100 : 40);
  const double tl = args.get_double("tl", 0.01);
  const auto seed = args.get_size("seed", 41);
  const auto json_path = args.get_string("json", "");
  args.finish();

  std::cout << "Sec 7.2.2: congestion episode durations (PlanetLab-like, "
               "scale=" << scale << ", p=" << p << ", persistence="
            << persistence << ", windows=" << windows << ", tl=" << tl
            << ")\n\n";

  stats::Rng topo_rng(seed);
  const auto inst = bench::from_topology(
      topology::make_planetlab_like_scaled(scale, topo_rng), "PlanetLab");
  const auto& rrm = inst.matrix();

  sim::ScenarioConfig config;
  config.p = p;
  config.dynamics = sim::CongestionDynamics::kMarkov;
  config.persistence = persistence;
  // Congestion recurs at chronic hot spots (the real-Internet regime the
  // paper measures in §7): only this fraction of links ever congests.
  config.congestible_fraction = congestible;
  sim::SnapshotSimulator simulator(inst.graph, rrm, config, seed * 7);

  // Slide the learning window one snapshot at a time; every diagnosed
  // snapshot contributes one column to the duration analysis.
  core::LiaMonitor monitor(rrm.matrix(), {.window = m});
  std::vector<std::vector<bool>> inferred_congested;
  while (inferred_congested.size() < windows) {
    const auto snap = simulator.next();
    const auto inference = monitor.observe(snap.path_log_trans);
    if (!inference) continue;
    std::vector<bool> congested(rrm.link_count());
    for (std::size_t k = 0; k < rrm.link_count(); ++k) {
      congested[k] = inference->loss[k] > tl;
    }
    inferred_congested.push_back(std::move(congested));
  }

  // Episode lengths: maximal runs of consecutive inferred-congested
  // windows per link.
  std::map<std::size_t, std::size_t> duration_count;
  for (std::size_t k = 0; k < rrm.link_count(); ++k) {
    std::size_t run = 0;
    for (std::size_t w = 0; w < inferred_congested.size(); ++w) {
      if (inferred_congested[w][k]) {
        ++run;
      } else if (run > 0) {
        ++duration_count[run];
        run = 0;
      }
    }
    if (run > 0) ++duration_count[run];
  }
  std::size_t episodes = 0;
  for (const auto& [len, count] : duration_count) episodes += count;

  util::Table table({"duration (snapshots)", "episodes", "fraction"});
  for (const auto& [len, count] : duration_count) {
    table.add_row({std::to_string(len), std::to_string(count),
                   episodes == 0
                       ? "-"
                       : util::Table::pct(static_cast<double>(count) /
                                          static_cast<double>(episodes), 1)});
  }
  table.print(std::cout);
  std::cout << "\ntotal episodes: " << episodes
            << "\nExpected shape (paper): the overwhelming majority of "
               "congestion episodes last one snapshot; a small tail spans "
               "two.\n";

  bench::JsonReport report;
  report.set("bench", std::string("sec722_duration"));
  report.set("np", rrm.path_count());
  report.set("nc", rrm.link_count());
  report.set("m", m);
  report.set("windows", windows);
  report.set("p", p);
  report.set("persistence", persistence);
  report.set("episodes", episodes);
  const std::size_t one_snapshot =
      duration_count.count(1) ? duration_count.at(1) : 0;
  report.set("one_snapshot_episodes", one_snapshot);
  report.set("one_snapshot_fraction",
             episodes == 0 ? 0.0
                           : static_cast<double>(one_snapshot) /
                                 static_cast<double>(episodes));
  report.set("max_duration",
             duration_count.empty() ? std::size_t{0}
                                    : duration_count.rbegin()->first);
  report.write(json_path);
  return 0;
}
