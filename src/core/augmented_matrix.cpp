#include "core/augmented_matrix.hpp"

#include <stdexcept>

#include "util/parallel.hpp"

namespace losstomo::core {

linalg::Matrix build_augmented_matrix(const linalg::SparseBinaryMatrix& r,
                                      std::size_t max_entries,
                                      std::size_t threads) {
  const std::size_t np = r.rows();
  const std::size_t nc = r.cols();
  const std::size_t rows = pair_count(np);
  if (rows * nc > max_entries) {
    throw std::length_error("augmented matrix too large to materialise");
  }
  linalg::Matrix a(rows, nc);
  // Each pair row is written by exactly one task: parallel and
  // bit-identical at any thread count.
  util::parallel_for(
      np, 1,
      [&](std::size_t i_begin, std::size_t i_end) {
        std::vector<std::uint32_t> shared;
        for (std::size_t i = i_begin; i < i_end; ++i) {
          const auto ri = r.row(i);
          for (std::size_t j = i; j < np; ++j) {
            linalg::intersect_sorted(ri, r.row(j), shared);
            auto out = a.row(pair_index(i, j, np));
            for (const auto link : shared) out[link] = 1.0;
          }
        }
      },
      threads);
  return a;
}

linalg::Vector packed_covariances(const stats::CenteredSnapshots& y) {
  const std::size_t np = y.dim();
  linalg::Vector sigma(pair_count(np), 0.0);
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t j = i; j < np; ++j) {
      sigma[pair_index(i, j, np)] = y.covariance(i, j);
    }
  }
  return sigma;
}

linalg::Vector packed_covariances(const linalg::Matrix& s) {
  const std::size_t np = s.rows();
  linalg::Vector sigma(pair_count(np), 0.0);
  for (std::size_t i = 0; i < np; ++i) {
    const auto row = s.row(i);
    const std::size_t base = pair_index(i, i, np);
    for (std::size_t j = i; j < np; ++j) sigma[base + (j - i)] = row[j];
  }
  return sigma;
}

linalg::Matrix augmented_normal_matrix(const linalg::CoTraversalGram& gram,
                                       std::size_t threads) {
  return gram.map_to_dense([](double n) { return n * (n + 1.0) / 2.0; },
                           threads);
}

linalg::Vector augmented_normal_rhs(
    const stats::CenteredSnapshots& y,
    const std::vector<std::vector<std::uint32_t>>& column_paths,
    std::size_t threads) {
  const std::size_t nc = column_paths.size();
  const std::size_t np = y.dim();
  const std::size_t m = y.count();
  if (m < 2) throw std::logic_error("need >= 2 snapshots");
  linalg::Vector h(nc, 0.0);

  // Per-path variances, shared across links.  Parallel over paths: each
  // entry sums its snapshots in ascending order, matching the scalar sweep
  // bit for bit.
  const std::span<const double> flat = y.flat();
  linalg::Vector path_var(np, 0.0);
  util::parallel_for(
      np, 64,
      [&](std::size_t i_begin, std::size_t i_end) {
        for (std::size_t i = i_begin; i < i_end; ++i) {
          double acc = 0.0;
          const double* p = flat.data() + i;
          for (std::size_t l = 0; l < m; ++l, p += np) acc += *p * *p;
          path_var[i] = acc / static_cast<double>(m - 1);
        }
      },
      threads);

  util::parallel_for(
      nc, 4,
      [&](std::size_t k_begin, std::size_t k_end) {
        for (std::size_t k = k_begin; k < k_end; ++k) {
          const auto& paths = column_paths[k];
          // FullSum = 1/(m-1) sum_l ( sum_{i in S_k} ytilde_i^l )^2.
          double full_sum = 0.0;
          for (std::size_t l = 0; l < m; ++l) {
            const auto row = y.sample(l);
            double s = 0.0;
            for (const auto i : paths) s += row[i];
            full_sum += s * s;
          }
          full_sum /= static_cast<double>(m - 1);
          double diag = 0.0;
          for (const auto i : paths) diag += path_var[i];
          h[k] = 0.5 * (full_sum + diag);
        }
      },
      threads);
  return h;
}

linalg::Vector augmented_normal_rhs(
    const linalg::Matrix& s,
    const std::vector<std::vector<std::uint32_t>>& column_paths,
    std::size_t threads) {
  const std::size_t nc = column_paths.size();
  linalg::Vector h(nc, 0.0);
  // Links are independent (disjoint writes) and every per-link sum runs in
  // ascending path order: bit-identical at any thread count.
  util::parallel_for(
      nc, 4,
      [&](std::size_t k_begin, std::size_t k_end) {
        for (std::size_t k = k_begin; k < k_end; ++k) {
          const auto& paths = column_paths[k];
          double full_sum = 0.0;
          double diag = 0.0;
          for (const auto i : paths) {
            const auto row = s.row(i);
            diag += row[i];
            double acc = 0.0;
            for (const auto j : paths) acc += row[j];
            full_sum += acc;
          }
          h[k] = 0.5 * (full_sum + diag);
        }
      },
      threads);
  return h;
}

}  // namespace losstomo::core
