// Fixture: istringstream-per-line parsing in the ingestion layer — the
// shape PR 7 removed (31x slower than from_chars on the snapshot path).
// lint-fixture-path: src/io/fixture_reader.cpp
#include <sstream>
#include <string>
#include <vector>

std::vector<double> parse_row(const std::string& line) {
  std::istringstream ss(line);  // must be flagged
  std::vector<double> out;
  double v = 0.0;
  while (ss >> v) out.push_back(v);
  out.push_back(std::stod(line));  // must be flagged
  return out;
}
