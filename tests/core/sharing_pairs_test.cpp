#include "core/sharing_pairs.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/routing_matrix.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"
#include "topology/overlay.hpp"
#include "topology/routing.hpp"

namespace losstomo::core {
namespace {

// Reference enumeration: the seed's all-pairs upper-triangle scan.
struct BrutePair {
  std::uint32_t i, j;
  std::vector<std::uint32_t> links;
};

std::vector<BrutePair> brute_force(const linalg::SparseBinaryMatrix& r) {
  std::vector<BrutePair> out;
  std::vector<std::uint32_t> shared;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    for (std::size_t j = i; j < r.rows(); ++j) {
      linalg::intersect_sorted(r.row(i), r.row(j), shared);
      if (shared.empty()) continue;
      out.push_back({static_cast<std::uint32_t>(i),
                     static_cast<std::uint32_t>(j), shared});
    }
  }
  return out;
}

void expect_matches_brute_force(const linalg::SparseBinaryMatrix& r,
                                const SharingPairStore& store) {
  const auto expected = brute_force(r);
  ASSERT_EQ(store.pair_count(), expected.size());
  std::size_t p = 0;
  store.for_pairs(0, store.pair_count(),
                  [&](std::size_t idx, std::uint32_t i, std::uint32_t j,
                      std::span<const std::uint32_t> links) {
                    ASSERT_EQ(idx, p);
                    EXPECT_EQ(i, expected[p].i) << "pair " << p;
                    EXPECT_EQ(j, expected[p].j) << "pair " << p;
                    EXPECT_TRUE(std::equal(links.begin(), links.end(),
                                           expected[p].links.begin(),
                                           expected[p].links.end()))
                        << "pair " << p;
                    ++p;
                  });
  EXPECT_EQ(p, expected.size());
}

linalg::SparseBinaryMatrix tree_matrix() {
  stats::Rng rng(41);
  auto tree =
      topology::make_random_tree({.nodes = 80, .max_branching = 4}, rng);
  const auto paths = topology::tree_paths(tree);
  return net::ReducedRoutingMatrix(tree.graph, paths).matrix();
}

linalg::SparseBinaryMatrix mesh_matrix() {
  stats::Rng rng(42);
  auto topo = topology::make_waxman({.nodes = 120, .links_per_node = 2}, rng);
  const auto hosts = topology::pick_low_degree_hosts(topo.graph, 14);
  auto routed = topology::route_paths(topo.graph, hosts, hosts);
  return net::ReducedRoutingMatrix(topo.graph, routed.paths).matrix();
}

TEST(SharingPairStore, MatchesBruteForceOnDenseSharingTree) {
  const auto r = tree_matrix();
  expect_matches_brute_force(r, SharingPairStore::build(r));
}

TEST(SharingPairStore, MatchesBruteForceOnSparseSharingMesh) {
  const auto r = mesh_matrix();
  const auto store = SharingPairStore::build(r);
  expect_matches_brute_force(r, store);
  // The point of the store: a mesh shares far fewer pairs than np^2/2.
  EXPECT_LT(store.pair_count(), r.rows() * (r.rows() + 1) / 2);
}

TEST(SharingPairStore, BuildIsIdenticalAtAnyThreadCount) {
  const auto r = mesh_matrix();
  const auto reference = SharingPairStore::build(r, 1);
  for (const std::size_t threads : {2u, 8u}) {
    const auto store = SharingPairStore::build(r, threads);
    ASSERT_EQ(store.pair_count(), reference.pair_count());
    ASSERT_EQ(store.shared_link_entries(), reference.shared_link_entries());
    store.for_pairs(
        0, store.pair_count(),
        [&](std::size_t p, std::uint32_t i, std::uint32_t j,
            std::span<const std::uint32_t> links) {
          (void)i;
          EXPECT_EQ(j, reference.partner(p));
          const auto ref_links = reference.links(p);
          EXPECT_TRUE(std::equal(links.begin(), links.end(),
                                 ref_links.begin(), ref_links.end()));
        });
  }
}

TEST(SharingPairStore, ForPairsSubrangeSeesTheSamePairs) {
  const auto r = tree_matrix();
  const auto store = SharingPairStore::build(r);
  ASSERT_GT(store.pair_count(), 10u);
  const std::size_t begin = store.pair_count() / 3;
  const std::size_t end = 2 * store.pair_count() / 3;
  std::size_t seen = begin;
  store.for_pairs(begin, end,
                  [&](std::size_t p, std::uint32_t i, std::uint32_t j,
                      std::span<const std::uint32_t>) {
                    EXPECT_EQ(p, seen++);
                    EXPECT_GE(p, store.row_begin(i));
                    EXPECT_LT(p, store.row_end(i));
                    EXPECT_GE(j, i);
                  });
  EXPECT_EQ(seen, end);
}

TEST(SharingPairStore, PartnerFinderMatchesRowScan) {
  const auto r = mesh_matrix();
  const auto columns = r.column_lists();
  PartnerFinder finder(r, columns);
  std::vector<std::uint32_t> partners, shared;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    finder.partners_of(i, partners);
    std::vector<std::uint32_t> expected;
    for (std::size_t j = i; j < r.rows(); ++j) {
      linalg::intersect_sorted(r.row(i), r.row(j), shared);
      if (!shared.empty()) expected.push_back(static_cast<std::uint32_t>(j));
    }
    ASSERT_EQ(partners, expected) << "path " << i;
  }
}

TEST(SharingPairStore, EmptyMatrix) {
  const linalg::SparseBinaryMatrix r(4, {});
  const auto store = SharingPairStore::build(r);
  EXPECT_EQ(store.pair_count(), 0u);
  EXPECT_EQ(store.shared_link_entries(), 0u);
}

// Incremental row appends (path churn): an add_row-grown store must carry
// exactly the pairs a from-scratch build over the grown matrix finds —
// with the new rows' pairs contiguous at the tail, partner on either side.
TEST(SharingPairStore, AddRowMatchesRebuiltStore) {
  const auto r_full = tree_matrix();
  const std::size_t np = r_full.rows();
  ASSERT_GE(np, 6u);
  // Build over a prefix, then append the remaining rows one at a time.
  const std::size_t prefix = np - 3;
  std::vector<std::vector<std::uint32_t>> rows;
  for (std::size_t i = 0; i < prefix; ++i) {
    const auto row = r_full.row(i);
    rows.emplace_back(row.begin(), row.end());
  }
  linalg::SparseBinaryMatrix r(r_full.cols(), rows);
  auto store = SharingPairStore::build(r);
  for (std::size_t i = prefix; i < np; ++i) {
    const auto row = r_full.row(i);
    rows.emplace_back(row.begin(), row.end());
    r = linalg::SparseBinaryMatrix(r_full.cols(), rows);
    const std::size_t first = store.add_row(r);
    EXPECT_EQ(first, store.row_begin(i));
    EXPECT_EQ(store.path_count(), i + 1);
  }
  // Same pair multiset as a fresh build (orientation-normalised).
  const auto rebuilt = SharingPairStore::build(r_full);
  const auto canonical = [](const SharingPairStore& s) {
    std::vector<std::tuple<std::uint32_t, std::uint32_t,
                           std::vector<std::uint32_t>>>
        pairs;
    s.for_pairs(0, s.pair_count(),
                [&](std::size_t, std::uint32_t i, std::uint32_t j,
                    std::span<const std::uint32_t> links) {
                  pairs.emplace_back(
                      std::min(i, j), std::max(i, j),
                      std::vector<std::uint32_t>(links.begin(), links.end()));
                });
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };
  EXPECT_EQ(canonical(store), canonical(rebuilt));
}

// Batched growth must be state-identical to the equivalent add_row loop —
// same pair indices, same partner orientation, same shared-link lists —
// including pairs between two rows of the same batch, and rows that bring
// fresh columns (a growing link universe).
TEST(SharingPairStore, AddRowsMatchesSequentialAddRow) {
  auto r_full = tree_matrix();
  const std::size_t np = r_full.rows();
  const std::size_t prefix = np - 5;
  std::vector<std::vector<std::uint32_t>> rows;
  for (std::size_t i = 0; i < prefix; ++i) {
    const auto row = r_full.row(i);
    rows.emplace_back(row.begin(), row.end());
  }
  const linalg::SparseBinaryMatrix r_prefix(r_full.cols(), rows);
  // A trailing row over two fresh columns shared with the last batch row.
  const auto fresh_a = static_cast<std::uint32_t>(r_full.cols());
  const auto fresh_b = fresh_a + 1;
  r_full.append_rows(2, {{0, fresh_a, fresh_b}, {fresh_a, fresh_b}});

  auto batched = SharingPairStore::build(r_prefix);
  EXPECT_EQ(batched.add_rows(r_full), batched.row_begin(prefix));

  auto sequential = SharingPairStore::build(r_prefix);
  for (std::size_t i = prefix; i < r_full.rows(); ++i) {
    std::vector<std::vector<std::uint32_t>> upto;
    for (std::size_t k = 0; k <= i; ++k) {
      const auto row = r_full.row(k);
      upto.emplace_back(row.begin(), row.end());
    }
    sequential.add_row(linalg::SparseBinaryMatrix(r_full.cols(), upto));
  }

  ASSERT_EQ(batched.pair_count(), sequential.pair_count());
  ASSERT_EQ(batched.path_count(), sequential.path_count());
  std::size_t p = 0;
  batched.for_pairs(
      0, batched.pair_count(),
      [&](std::size_t idx, std::uint32_t i, std::uint32_t j,
          std::span<const std::uint32_t> links) {
        EXPECT_EQ(j, sequential.partner(idx)) << "pair " << idx;
        std::size_t q = 0;
        sequential.for_pairs(idx, idx + 1,
                             [&](std::size_t, std::uint32_t si, std::uint32_t,
                                 std::span<const std::uint32_t> slinks) {
                               EXPECT_EQ(i, si) << "pair " << idx;
                               EXPECT_TRUE(std::equal(links.begin(),
                                                      links.end(),
                                                      slinks.begin(),
                                                      slinks.end()))
                                   << "pair " << idx;
                               ++q;
                             });
        EXPECT_EQ(q, 1u);
        ++p;
      });
  EXPECT_EQ(p, batched.pair_count());
}

TEST(SharingPairStore, AddRowsRejectsShrunkMatrix) {
  const linalg::SparseBinaryMatrix r(3, {{0, 1}, {1, 2}});
  auto store = SharingPairStore::build(r);
  EXPECT_THROW(store.add_rows(linalg::SparseBinaryMatrix(3, {{0}})),
               std::invalid_argument);
  // add_rows over an identical matrix appends nothing.
  EXPECT_EQ(store.add_rows(r), store.pair_count());
  EXPECT_EQ(store.path_count(), 2u);
}

TEST(SharingPairStore, GrowsFromEmptyStore) {
  // A store built over zero paths (or default-constructed) must accept its
  // first add_row — the CSR leading offsets are established on demand.
  auto store = SharingPairStore::build(linalg::SparseBinaryMatrix(3, {}));
  const linalg::SparseBinaryMatrix r1(3, {{0, 2}});
  EXPECT_EQ(store.add_row(r1), 0u);
  ASSERT_EQ(store.pair_count(), 1u);  // the diagonal pair
  EXPECT_EQ(store.partner(0), 0u);
  ASSERT_EQ(store.links(0).size(), 2u);
  EXPECT_EQ(store.links(0)[0], 0u);
  EXPECT_EQ(store.links(0)[1], 2u);

  SharingPairStore fresh;
  const linalg::SparseBinaryMatrix r0(2, {{1}});
  EXPECT_EQ(fresh.add_row(r0), 0u);
  EXPECT_EQ(fresh.pair_count(), 1u);
}

TEST(SharingPairStore, PairsOfPathAndLiveness) {
  const linalg::SparseBinaryMatrix r(3, {{0, 1}, {1, 2}, {0, 2}});
  auto store = SharingPairStore::build(r);
  // Every pair shares a link here: 6 pairs total.
  ASSERT_EQ(store.pair_count(), 6u);
  std::vector<std::size_t> pairs;
  store.pairs_of_path(1, pairs);
  // Path 1 appears in (0,1), (1,1), (1,2).
  ASSERT_EQ(pairs.size(), 3u);
  for (const auto p : pairs) {
    const bool involved = store.partner(p) == 1 ||
                          (p >= store.row_begin(1) && p < store.row_end(1));
    EXPECT_TRUE(involved) << "pair " << p;
  }

  EXPECT_TRUE(store.row_live(1));
  store.set_row_live(1, false);
  store.for_pairs(0, store.pair_count(),
                  [&](std::size_t p, std::uint32_t i, std::uint32_t j,
                      std::span<const std::uint32_t>) {
                    const bool touches1 = i == 1 || j == 1;
                    EXPECT_EQ(store.pair_live(p, i), !touches1);
                  });
  store.set_row_live(1, true);
  EXPECT_TRUE(store.pair_live(0, 0));
}

TEST(SharingPairStore, BytesScaleWithSharingStructure) {
  const auto r = tree_matrix();
  const auto store = SharingPairStore::build(r);
  EXPECT_GT(store.bytes(), 0u);
  // Lower bound: the flat arrays actually stored.
  EXPECT_GE(store.bytes(),
            store.pair_count() * sizeof(std::uint32_t) +
                store.shared_link_entries() * sizeof(std::uint32_t));
}

}  // namespace
}  // namespace losstomo::core
