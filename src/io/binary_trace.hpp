// Versioned, mmap-able binary snapshot traces — line-rate ingestion.
//
// The text snapshot format (trace_io.hpp) tokenizes every double through an
// istream in the monitor's hot loop; at overlay scale (5112 paths) parsing
// dominates the steady tick.  This format stores the same campaign as raw
// little-endian IEEE-754 doubles so a reader can hand out contiguous
// `[tick x path]` blocks with ZERO per-value work — the blocks fold
// straight into the streaming accumulators (stats::StreamingMoments /
// core::PairMoments) through the ingestion pipeline (io/pipeline.hpp).
//
// File layout (all integers little-endian, fixed width):
//
//   offset  0  magic      "LTBT"                      4 bytes
//           4  version    u32  (kVersion)
//           8  flags      u32  (kFlagLogTransformed)
//          12  reserved   u32  (zero)
//          16  paths      u64  snapshot arity np
//          24  snapshots  u64  row count
//          32  payload    u64  byte count (= paths * snapshots * 8)
//          40  crc        u32  CRC-32 of the payload
//          44  reserved   u32 x 4 (zero)
//          60  header crc u32  CRC-32 of bytes [0, 60)
//          64  payload    row-major doubles, one row per snapshot
//
// The 64-byte header keeps the payload 8-aligned at any mmap base (pages
// are page-aligned), so `rows()` is a reinterpret of the mapping — no copy,
// no parse.  The same magic|version|size|CRC discipline as the "LTCP"
// checkpoint container applies: every header byte is covered by a check
// (magic, version, or the header CRC), the payload CRC is validated at
// open before any value is read, and all failure modes surface as typed
// io::CheckpointError — never UB, a crash, or an attacker-sized
// allocation.
//
// Flags: kFlagLogTransformed marks traces storing Y = log phi (what a
// monitor consumes — scenario record/replay traces); clear means raw path
// transmission rates phi in [0, 1] (what the text format stores, and what
// `lia_cli mode=convert` round-trips bit-identically).
//
// Versioning policy matches the checkpoint container: kVersion bumps on
// any layout change, readers reject every version but their own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "io/checkpoint.hpp"

namespace losstomo::io {

/// Streaming binary-trace writer: construct with the snapshot arity,
/// append rows (or whole blocks), then finish() — the header (row count +
/// CRCs) is patched in place, so gigabyte traces stream through O(row)
/// memory.  Throws CheckpointError(kIo) on filesystem failure.  A writer
/// abandoned without finish() leaves a file with an all-zero header that
/// every reader rejects (bad magic) — a torn trace can never parse.
class BinaryTraceWriter {
 public:
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::uint32_t kFlagLogTransformed = 1u << 0;

  /// Opens `file` for writing and reserves the header.
  /// `paths` must be > 0 (throws std::invalid_argument).
  BinaryTraceWriter(const std::string& file, std::size_t paths,
                    bool log_transformed = false);
  ~BinaryTraceWriter();
  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  /// Appends one snapshot row; `row.size()` must equal paths().
  void append(std::span<const double> row);
  /// Appends `rows` consecutive snapshots from a contiguous row-major
  /// block of rows * paths() doubles — ONE write, no per-row overhead.
  void append_block(std::span<const double> values, std::size_t rows);

  /// Seals the header (count + payload/header CRCs) and closes the file.
  /// Idempotent; no further append() is allowed after it.
  void finish();

  [[nodiscard]] std::size_t paths() const { return paths_; }
  [[nodiscard]] std::size_t snapshots() const { return snapshots_; }
  [[nodiscard]] bool log_transformed() const { return log_transformed_; }

 private:
  std::string file_;
  std::size_t paths_;
  bool log_transformed_;
  std::size_t snapshots_ = 0;
  Crc32 payload_crc_;
  int fd_ = -1;
  std::vector<std::uint8_t> buffer_;  // write coalescing
  void flush_buffer();
  void write_all(const std::uint8_t* data, std::size_t n);
  bool finished_ = false;
};

/// Zero-copy binary-trace reader.  Opening validates the ENTIRE failure
/// surface before any value is handed out: header length, magic, version,
/// header CRC, field consistency (paths/snapshots/payload size, overflow-
/// checked), file length, and the payload CRC — each rejection a typed
/// CheckpointError (kIo / kBadMagic / kBadVersion / kTruncated /
/// kCorrupt).  The payload is memory-mapped read-only where the platform
/// allows (falling back to a buffered read), so rows() costs nothing until
/// the pages are touched and the OS drops clean pages under memory
/// pressure instead of swapping.
///
/// Thread-safety: the mapping is immutable after construction — concurrent
/// rows() reads from any number of threads are safe.
class BinaryTraceReader {
 public:
  /// How much of the payload open()/from_bytes() verifies up front.
  /// Header integrity (magic, version, header CRC, overflow-checked field
  /// consistency, file length) is ALWAYS checked under either mode; the
  /// choice only covers the linear payload-CRC pass.
  enum class PayloadCheck {
    /// Verify the payload CRC before handing out any value (default).
    kVerify,
    /// Skip the payload pass: for re-opens of a trace this process (or a
    /// prior drill) already verified — scenario replay sweeps, warm
    /// failover, a monitor restarting on its own recorded feed — where
    /// paying a full read of a multi-GB mapping per open would defeat the
    /// point of mmap.  First contact with foreign data should verify.
    kTrust,
  };

  /// Maps and validates `file` (with kVerify, payload CRC included — one
  /// linear pass, still orders of magnitude cheaper than tokenizing the
  /// text form).
  static BinaryTraceReader open(const std::string& file,
                                PayloadCheck check = PayloadCheck::kVerify);
  /// Validates an in-memory image (same checks, same typed errors).
  static BinaryTraceReader from_bytes(std::vector<std::uint8_t> bytes,
                                      PayloadCheck check = PayloadCheck::kVerify);

  ~BinaryTraceReader();
  BinaryTraceReader(BinaryTraceReader&& other) noexcept;
  BinaryTraceReader& operator=(BinaryTraceReader&& other) noexcept;
  BinaryTraceReader(const BinaryTraceReader&) = delete;
  BinaryTraceReader& operator=(const BinaryTraceReader&) = delete;

  [[nodiscard]] std::size_t paths() const { return paths_; }
  [[nodiscard]] std::size_t snapshots() const { return snapshots_; }
  [[nodiscard]] bool log_transformed() const { return log_transformed_; }

  /// Contiguous row-major block of snapshots [first, first + count):
  /// count * paths() doubles, valid for the reader's lifetime, zero-copy.
  /// Preconditions checked: first + count <= snapshots() (throws
  /// std::out_of_range).
  [[nodiscard]] std::span<const double> rows(std::size_t first,
                                             std::size_t count) const;
  /// One snapshot row (rows(i, 1)).
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return rows(i, 1);
  }

  /// True when the payload is an OS memory mapping (diagnostics; false for
  /// from_bytes images and platforms without mmap).
  [[nodiscard]] bool mapped() const { return map_base_ != nullptr; }

 private:
  BinaryTraceReader() = default;
  void validate_and_adopt(const std::uint8_t* base, std::size_t size,
                          PayloadCheck check);
  void release() noexcept;

  std::size_t paths_ = 0;
  std::size_t snapshots_ = 0;
  bool log_transformed_ = false;
  const double* data_ = nullptr;       // payload, 8-aligned
  std::vector<std::uint8_t> owned_;    // from_bytes / fallback storage
  std::vector<double> aligned_;        // used only if payload misaligned
  void* map_base_ = nullptr;           // mmap bookkeeping
  std::size_t map_size_ = 0;
};

/// True if `file` starts with the binary-trace magic (format
/// auto-detection for CLI tools); false for missing/short/other files.
bool is_binary_trace(const std::string& file);

}  // namespace losstomo::io
