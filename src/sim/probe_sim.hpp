// Snapshot/probe simulator (paper §3.3 and §6).
//
// Measurement time is divided into slots of S probes; the collection of all
// path measurements in a slot is a *snapshot*.  Per snapshot each physical
// link is (re)drawn congested with probability p, assigned a loss rate from
// the LLRD model, and its per-slot good/bad sequence realised by a Gilbert
// (bursty) or Bernoulli process.  A probe on path P_i in slot t survives iff
// every link of P_i is good in slot t — the slot-synchronised realisation of
// the paper's "when a packet arrives at link ek the link state is decided
// according to the transition probabilities", which makes the sampled loss
// fraction of a link common to all paths through it (Assumption S.1).
//
// Per-link slot sequences are bitmasks, so a snapshot over tens of
// thousands of paths costs only OR/popcount word operations.  A slower
// per-packet mode (each packet advances the link chain individually) exists
// to stress Assumption S.1 on small networks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "net/graph.hpp"
#include "net/routing_matrix.hpp"
#include "sim/gilbert.hpp"
#include "sim/loss_model.hpp"
#include "stats/moments.hpp"
#include "stats/rng.hpp"

namespace losstomo::io {
class CheckpointWriter;
class CheckpointReader;
}  // namespace losstomo::io

namespace losstomo::sim {

enum class LossProcess {
  kGilbert,
  kBernoulli,
};

enum class ProbeMode {
  kSlotSynchronized,
  kPerPacket,
};

/// How the congested set evolves across snapshots.
///
/// The paper's §6 text ("once each link has been assigned a loss rate, the
/// actual losses on each link follow a Gilbert process") requires link
/// loss-rate assignments that persist across the variance-learning window:
/// the per-snapshot variance then comes from the bursty Gilbert
/// realisation, which is what separates congested from good links
/// (Assumption S.3).  kStatic reproduces this and is the default.  The
/// alternative readings are kept as ablations: with kIid every link is
/// statistically exchangeable across snapshots and variance ordering
/// carries no information — LIA degrades to chance, which is how we know
/// kStatic is the paper's setting (see bench/ablation_lossmodel).
enum class CongestionDynamics {
  kStatic,  // one draw per run (paper §6 simulations)
  kIid,     // redrawn independently every snapshot
  kMarkov,  // two-state Markov chain with the given persistence (§7.2.2)
};

/// Which entities receive LLRD loss-rate assignments.
///
/// The paper's simulations assign rates to the *links of the reduced
/// topology* (each column of R is "a link" with one rate) — under
/// kPerPhysicalEdge an alias chain of two good edges can compound to just
/// above tl and be scored "congested" despite having no congested member,
/// which the paper's metrics clearly do not do.  kPerVirtualLink is
/// therefore the default; kPerPhysicalEdge remains for the
/// topology-realism ablations (observed-topology noise needs true per-edge
/// processes).
enum class LossGranularity {
  kPerVirtualLink,
  kPerPhysicalEdge,
};

struct ScenarioConfig {
  /// Fraction of links congested (paper's p).
  double p = 0.1;
  LossGranularity granularity = LossGranularity::kPerVirtualLink;
  /// Probes per path per snapshot (paper's S).
  std::size_t probes_per_snapshot = 1000;
  LossModelConfig loss_model = LossModelConfig::llrd1_calibrated();
  LossProcess process = LossProcess::kGilbert;
  ProbeMode mode = ProbeMode::kSlotSynchronized;
  CongestionDynamics dynamics = CongestionDynamics::kStatic;
  double gilbert_stay_bad = 0.35;
  /// kMarkov only: lag-1 autocorrelation of the congestion indicator
  /// across snapshots (stationary marginal stays p).
  double persistence = 0.0;
  /// Fraction of links that can ever congest (chronic hot spots).  Real
  /// networks concentrate congestion on a stable subset of links; under
  /// episodic dynamics this is what lets the variance-learning window
  /// identify the risky links (§7-style scenarios).  1 = every link
  /// congestible (the §6 simulation setting).  The overall congested
  /// fraction stays p: congestible links use p / congestible_fraction.
  double congestible_fraction = 1.0;
  /// Redraw each link's loss rate (within its current class's range) every
  /// snapshot: models fluctuating congestion *intensity* on a stable
  /// congested set.  This is the regime behind Assumption S.3 in the wild
  /// — and the spatial-covariance source that survives per-packet probe
  /// interleaving (see bench/ablation_lossmodel).  Default false
  /// (paper-literal: one rate per assignment, Gilbert noise only).
  bool redraw_rate_each_snapshot = false;
  /// Congestion-probability multiplier for inter-AS physical links
  /// (Table 3 scenarios); 1 = uniform.
  double inter_as_congestion_bias = 1.0;
};

/// Everything the experiments need from one snapshot: the measurements
/// (path log transmission rates) and the ground truth at virtual-link and
/// physical-edge granularity.
struct Snapshot {
  linalg::Vector path_log_trans;          // Y_i = log measured phi_i
  linalg::Vector path_trans;              // measured phi_i
  linalg::Vector link_true_loss;          // per virtual link, from assigned rates
  linalg::Vector link_sampled_log_trans;  // realized X_k = log sampled link trans
  std::vector<bool> link_congested;       // truth: link_true_loss > tl
  std::vector<double> edge_loss;          // assigned rate per physical edge
  std::vector<bool> edge_congested;       // assigned state per physical edge
};

/// Streams snapshots for a fixed topology + routing matrix.
class SnapshotSimulator {
 public:
  SnapshotSimulator(const net::Graph& g, const net::ReducedRoutingMatrix& rrm,
                    ScenarioConfig config, std::uint64_t seed);

  /// Generates the next snapshot (congestion states evolve across calls
  /// according to `persistence`).
  Snapshot next();

  /// Lazy variant: evaluates the path measurements only for paths whose
  /// `needed_paths` entry is nonzero; the rest get a 0.0 filler in
  /// path_trans / path_log_trans (never meaningful measurements).  The
  /// loss processes are per *unit* and consume the identical RNG stream
  /// whichever paths are evaluated, so next(mask) agrees bit-for-bit with
  /// next() on every evaluated path and on all link-level truth — which is
  /// what lets a scenario over a 10k-path universe with a dormant reserve
  /// pool skip the per-tick popcount sweep of unmeasured rows.
  /// `needed_paths.size()` must equal the routing matrix's path count
  /// (throws std::invalid_argument); empty = evaluate everything.
  /// kPerPacket mode ignores the mask: per-packet arrivals advance shared
  /// link chains, so skipping a path would change the realisation.
  Snapshot next(std::span<const std::uint8_t> needed_paths);

  /// Mid-run churn hooks (scenario engine, src/scenario/):
  ///
  /// Forces every loss unit of virtual link k to the given loss rate until
  /// clear_link_forcing(k) — the "link down" event (a down link drops a
  /// severe fraction of its probes rather than black-holing them, so path
  /// log-rates stay finite).  The unit's underlying congestion state keeps
  /// evolving underneath and reappears unchanged when the forcing clears.
  /// `rate` must be in [0, 1); k < link_count (throws std::invalid_argument).
  void force_link_loss(std::size_t k, double rate);
  void clear_link_forcing(std::size_t k);

  /// Congestion-regime shift: rescales every congestible unit's congestion
  /// probability to the new p (keeping the congestible subset and inter-AS
  /// bias structure fixed) and redraws all congestion states and loss rates
  /// from the new regime.  Deterministic: consumes the simulator's own RNG
  /// stream.  `p` must be in [0, 1].
  void shift_regime(double p);

  [[nodiscard]] const ScenarioConfig& config() const { return config_; }

  // -- Checkpointing (io/checkpoint.hpp) ----------------------------------
  //
  // save_state serializes the evolving stochastic state: the RNG streams,
  // per-unit congestion states/loss rates/forcings, the (regime-shifted)
  // congestion probabilities, and the first-snapshot flag.  The per-snapshot
  // mask scratch is not serialized.  restore_state targets a simulator
  // constructed over the same topology/routing/config/seed; it validates
  // the unit count (io::CheckpointError kMismatch on disagreement) and
  // parses everything into temporaries before committing, so a failed
  // restore leaves the simulator usable.  A restored simulator's next()
  // stream continues bit-identically.
  void save_state(io::CheckpointWriter& writer) const;
  void restore_state(io::CheckpointReader& reader);

  /// Physical edges covered by at least one path (the edges simulated).
  [[nodiscard]] const std::vector<net::EdgeId>& covered_edges() const {
    return covered_edges_;
  }

 private:
  void refresh_congestion();
  void fill_masks(stats::Rng& rng);
  Snapshot evaluate_slot_synchronized(std::span<const std::uint8_t> needed);
  Snapshot evaluate_per_packet(stats::Rng& rng);
  Snapshot finalize_truth(Snapshot snap) const;

  const net::Graph& graph_;
  const net::ReducedRoutingMatrix& rrm_;
  ScenarioConfig config_;
  stats::Rng rng_;

  std::vector<net::EdgeId> covered_edges_;

  // Loss-process units: virtual links (default) or covered physical edges.
  std::size_t unit_count_ = 0;
  std::vector<std::vector<std::uint32_t>> path_units_;  // traversal order
  std::vector<std::vector<std::uint32_t>> link_units_;  // per virtual link
  std::vector<bool> unit_inter_as_;
  std::vector<bool> unit_congestible_;   // drawn once (congestible_fraction)
  std::vector<double> congestion_prob_;  // per unit (bias applied)
  std::vector<bool> congested_;          // per unit, current snapshot
  std::vector<double> rate_;             // per unit, current snapshot
  std::vector<double> forced_rate_;      // per unit; NaN = not forced
  bool first_snapshot_ = true;

  /// Forced rate when set, else the unit's drawn rate.
  [[nodiscard]] double effective_rate(std::size_t u) const;
  /// Truth flag consistent with the effective rate (forcing overrides).
  [[nodiscard]] bool effective_congested(std::size_t u) const;

  std::size_t words_ = 0;                 // mask words per unit
  std::vector<std::uint64_t> bad_masks_;  // unit-major [unit * words_]
};

/// Convenience bundle: m snapshots with the Y matrix assembled for the
/// Phase-1 estimator.
struct SnapshotSeries {
  std::vector<Snapshot> snapshots;
  /// Builds the m x np observation matrix from the collected snapshots.
  [[nodiscard]] stats::SnapshotMatrix observation_matrix() const;
};

SnapshotSeries run_snapshots(SnapshotSimulator& simulator, std::size_t m);

}  // namespace losstomo::sim
