// Streaming drop-negative factor maintenance (satellite of the rank-1
// up/down-dating tentpole): the cached Cholesky factor must follow pair
// sign flips by rank-1 steps, fall back to a full refactorization when a
// downdate would lose positive definiteness, and reproduce the batch
// drop-negative estimate through sign-flip-heavy windows at any thread
// count.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/monitor.hpp"
#include "core/variance_estimator.hpp"
#include "stats/covariance_source.hpp"
#include "test_util.hpp"

namespace losstomo::core {
namespace {

// A covariance source whose matrix the test controls entry by entry —
// lets us script exact sign-flip sequences into refresh().
class ScriptedSource final : public stats::CovarianceSource {
 public:
  explicit ScriptedSource(std::size_t dim)
      : s_(dim, dim) {}

  void set(std::size_t i, std::size_t j, double cov) {
    s_(i, j) = cov;
    s_(j, i) = cov;
  }

  [[nodiscard]] std::size_t dim() const override { return s_.rows(); }
  [[nodiscard]] std::size_t count() const override { return 16; }
  [[nodiscard]] double covariance(std::size_t i, std::size_t j) const override {
    return s_(i, j);
  }
  [[nodiscard]] const linalg::Matrix& matrix() const override { return s_; }
  [[nodiscard]] bool matrix_is_cheap() const override { return true; }

 private:
  linalg::Matrix s_;
};

VarianceOptions drop_options() {
  VarianceOptions options;
  options.negatives = NegativeCovariancePolicy::kDrop;
  return options;
}

// Two paths over one shared link: three sharing pairs, all touching the
// same G entry.  Flipping them between kept and dropped walks the kept
// count through 3 -> 0 -> 3, which exercises update, downdate, and — when
// the last equation covering the link drops — the identity pin that keeps
// G nonsingular where the pre-pinning engine had to refactorize with
// jitter.
TEST(StreamingDropNegative, UncoveredLinkIsIdentityPinned) {
  const linalg::SparseBinaryMatrix r(1, {{0}, {0}});
  StreamingNormalEquations eqs(r, drop_options());
  ScriptedSource source(2);

  // All three pair covariances positive: pairs (0,0), (0,1), (1,1) kept.
  source.set(0, 0, 0.5);
  source.set(0, 1, 0.25);
  source.set(1, 1, 0.75);
  eqs.refresh(source);
  EXPECT_EQ(eqs.system().used, 3u);
  EXPECT_DOUBLE_EQ(eqs.system().g(0, 0), 3.0);
  EXPECT_EQ(eqs.links_pinned(), 0u);
  (void)eqs.solve();  // first factorization
  EXPECT_EQ(eqs.refactorizations(), 1u);

  // Drop one pair: a clean rank-1 downdate, no refactorization.
  source.set(0, 1, -0.25);
  eqs.refresh(source);
  EXPECT_DOUBLE_EQ(eqs.system().g(0, 0), 2.0);
  const auto after_downdate = eqs.solve();
  EXPECT_EQ(eqs.refactorizations(), 1u);
  EXPECT_GE(eqs.rank1_updates(), 1u);
  EXPECT_EQ(eqs.downdate_fallbacks(), 0u);
  // v = h / G(0,0) = (0.5 + 0.75) / 2.
  EXPECT_NEAR(after_downdate.v[0], 1.25 / 2.0, 1e-9);

  // Drop the remaining pairs one at a time: the kept count walks
  // 2 -> 1 -> 0.  The 2 -> 1 step is a clean downdate; at the 1 -> 0 step
  // the link loses its last equation and is identity-pinned — G(0,0)
  // lands at exactly 1 (unit border), the factor follows by rank-1 steps
  // (pin update before pair downdate, so nothing loses definiteness), and
  // the link's variance solves to exactly 0.  No refactorization, no
  // jitter, no downdate failure.
  source.set(1, 1, -0.75);
  eqs.refresh(source);
  EXPECT_DOUBLE_EQ(eqs.system().g(0, 0), 1.0);
  EXPECT_EQ(eqs.downdate_fallbacks(), 0u);
  (void)eqs.solve();
  EXPECT_EQ(eqs.refactorizations(), 1u);

  source.set(0, 0, -0.5);
  eqs.refresh(source);
  EXPECT_DOUBLE_EQ(eqs.system().g(0, 0), 1.0);  // 0 kept + identity pin
  EXPECT_EQ(eqs.pending_flips(), 1u);  // factor reconciles at solve time
  const auto after_pin = eqs.solve();
  EXPECT_EQ(eqs.downdate_fallbacks(), 0u);
  EXPECT_EQ(eqs.refactorizations(), 1u);
  EXPECT_EQ(eqs.links_pinned(), 1u);
  EXPECT_EQ(eqs.system().used, 0u);
  EXPECT_EQ(eqs.system().dropped, 3u);
  EXPECT_DOUBLE_EQ(after_pin.v[0], 0.0);
  EXPECT_EQ(after_pin.links_pinned, 1u);
  EXPECT_DOUBLE_EQ(after_pin.jitter_used, 0.0);

  // Bring the pairs back: the pin cancels against the unpin before the
  // factor ever sees it, the three kept flips ride the stale-factor
  // refinement path, and the estimate returns to the exact value — still
  // on the original factorization.
  source.set(0, 0, 0.5);
  source.set(0, 1, 0.25);
  source.set(1, 1, 0.75);
  eqs.refresh(source);
  EXPECT_DOUBLE_EQ(eqs.system().g(0, 0), 3.0);
  EXPECT_EQ(eqs.links_pinned(), 0u);
  const auto restored = eqs.solve();
  EXPECT_EQ(eqs.refactorizations(), 1u);
  EXPECT_NEAR(restored.v[0], 1.5 / 3.0, 1e-12);
}

// Equation drops that leave the live block itself rank-deficient (every
// diagonal still covered) must degrade through the pivoted rank-revealing
// fallback when configured to pin on any jitter: the deficient pivot's
// link is pinned to zero variance and the streaming solve matches the
// batch path exactly — instead of both returning jitter-amplified
// solutions.
TEST(StreamingDropNegative, RankRevealingFallbackPinsDeficientLinks) {
  // Paths {a}, {a,b}, {a,b}: dropping the three {a}-only pairs leaves
  // G = [[3,3],[3,3]] — singular with positive diagonals (links a and b
  // are still covered but have become indistinguishable).
  const linalg::SparseBinaryMatrix r(2, {{0}, {0, 1}, {0, 1}});
  VarianceOptions options = drop_options();
  options.rank_revealing_min_attempts = 1;  // pin on any jitter
  StreamingNormalEquations eqs(r, options);
  ScriptedSource source(3);
  source.set(0, 0, 0.5);
  source.set(0, 1, 0.25);
  source.set(0, 2, 0.25);
  source.set(1, 1, 0.5);
  source.set(1, 2, 0.25);
  source.set(2, 2, 0.5);
  eqs.refresh(source);
  (void)eqs.solve();
  EXPECT_EQ(eqs.refactorizations(), 1u);

  // Drop the {a}-only pairs one tick at a time; the last downdate loses
  // positive definiteness and falls back.
  source.set(0, 0, -0.5);
  eqs.refresh(source);
  (void)eqs.solve();
  source.set(0, 1, -0.25);
  eqs.refresh(source);
  (void)eqs.solve();
  EXPECT_EQ(eqs.downdate_fallbacks(), 0u);
  source.set(0, 2, -0.25);
  eqs.refresh(source);
  const auto streaming = eqs.solve();
  EXPECT_EQ(eqs.downdate_fallbacks(), 1u);
  EXPECT_EQ(streaming.method,
            "streaming-normal(drop-negative,rank-revealing)");
  EXPECT_EQ(streaming.links_pinned, 1u);
  EXPECT_DOUBLE_EQ(streaming.jitter_used, 0.0);
  // Pivoting keeps link a (first of the tied diagonals) and pins b:
  // 3 v_a = h_a = 0.5 + 0.25 + 0.5 = 1.25.
  EXPECT_NEAR(streaming.v[0], 1.25 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(streaming.v[1], 0.0);

  // The batch solve on the same covariances degrades identically.
  const auto batch = estimate_link_variances(r, source, options);
  EXPECT_EQ(batch.method, "normal(drop-negative,rank-revealing)");
  EXPECT_EQ(batch.links_pinned, 1u);
  ASSERT_EQ(batch.v.size(), streaming.v.size());
  for (std::size_t k = 0; k < batch.v.size(); ++k) {
    EXPECT_NEAR(batch.v[k], streaming.v[k], 1e-12) << "link " << k;
  }
}

// The PCG refinement knobs are live: disabling the budget
// (refine_max_iterations = 0) forces a refactorization on every tick whose
// factor is inexact, reproducing the pre-refinement engine.
TEST(StreamingDropNegative, RefinementBudgetKnobForcesRefactorization) {
  const linalg::SparseBinaryMatrix r(1, {{0}, {0}});
  VarianceOptions options = drop_options();
  options.refine_max_iterations = 0;
  StreamingNormalEquations eqs(r, options);
  ScriptedSource source(2);
  source.set(0, 0, 0.5);
  source.set(0, 1, 0.25);
  source.set(1, 1, 0.75);
  eqs.refresh(source);
  (void)eqs.solve();
  ASSERT_EQ(eqs.refactorizations(), 1u);

  // A clean rank-1 downdate leaves the factor inexact (drift-wise); with
  // refinement disabled the solve must rebuild it.
  source.set(0, 1, -0.25);
  eqs.refresh(source);
  const auto est = eqs.solve();
  EXPECT_EQ(eqs.rank1_updates(), 1u);
  EXPECT_EQ(eqs.refactorizations(), 2u);
  EXPECT_NEAR(est.v[0], 1.25 / 2.0, 1e-12);
}

// The cumulative-update drift bound: with factor_update_cap = 1 every tick
// that flips pairs beyond the first rank-1 step must refactorize.
TEST(StreamingDropNegative, FactorUpdateCapForcesRefactorization) {
  const linalg::SparseBinaryMatrix r(1, {{0}, {0}});
  VarianceOptions options = drop_options();
  options.factor_update_cap = 1;
  StreamingNormalEquations eqs(r, options);
  ScriptedSource source(2);
  source.set(0, 0, 0.5);
  source.set(0, 1, 0.25);
  source.set(1, 1, 0.75);
  eqs.refresh(source);
  (void)eqs.solve();
  ASSERT_EQ(eqs.refactorizations(), 1u);

  // One flip fits the cap...
  source.set(0, 1, -0.25);
  eqs.refresh(source);
  (void)eqs.solve();
  EXPECT_EQ(eqs.refactorizations(), 1u);
  EXPECT_EQ(eqs.rank1_updates(), 1u);
  // ...the next flip exceeds it and refactorizes instead.
  source.set(0, 1, 0.25);
  eqs.refresh(source);
  (void)eqs.solve();
  EXPECT_EQ(eqs.refactorizations(), 2u);
  EXPECT_EQ(eqs.rank1_updates(), 1u);
}

// Sign-flip-heavy monitor parity: observations with near-zero means make
// pair covariances hover around zero, so nearly every tick flips some drop
// decision.  The streaming engine must stay within 1e-10 of the batch
// engine across >= 3 full window wrap-arounds at 1, 2, and 8 threads,
// while actually exercising the rank-1 factor path (flips happen, yet
// refactorizations stay rare).
TEST(StreamingDropNegative, SignFlipHeavyWindowsMatchBatchAtAnyThreadCount) {
  // A tree large enough (nc ~ 100) that the per-tick flip threshold
  // (nc / 4) leaves room for the rank-1 path to engage.
  stats::Rng topo_rng(514);
  const auto tree =
      topology::make_random_tree({.nodes = 90, .max_branching = 4}, topo_rng);
  const net::ReducedRoutingMatrix rrm(tree.graph, topology::tree_paths(tree));
  const std::size_t nc = rrm.link_count();
  const std::size_t m = 40;
  const std::size_t ticks = m + 3 * m;  // >= 3 wrap-arounds after warm-up

  // Every link active: weakly shared pairs have true covariances at the
  // scale of the window's sampling noise, so dozens of drop decisions flip
  // as the window slides (~5 per tick in this configuration), while
  // strongly shared pairs stay decisively kept — the regime the rank-1
  // factor path is built for.  (Near-zero-variance links would make the
  // drop-negative G numerically singular on some windows, where G^-1
  // amplifies mere summation-order noise past any parity tolerance for
  // every implementation — including refactor-every-tick; conditioning,
  // not factor drift, is the binding constraint there.)
  stats::Rng rng(515);
  linalg::Vector v_true(nc);
  for (auto& v : v_true) v = rng.uniform(0.01, 0.05);
  const linalg::Vector mu(nc, -0.02);
  const auto y = losstomo::testing::synthetic_observations(rrm.matrix(), mu,
                                                           v_true, ticks, rng);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    MonitorOptions batch_options{.window = m, .engine = MonitorEngine::kBatch};
    batch_options.lia.variance.negatives = NegativeCovariancePolicy::kDrop;
    batch_options.lia.variance.threads = threads;
    MonitorOptions streaming_options = batch_options;
    streaming_options.engine = MonitorEngine::kStreaming;

    LiaMonitor batch(rrm.matrix(), batch_options);
    LiaMonitor streaming(rrm.matrix(), streaming_options);
    std::size_t compared = 0;
    for (std::size_t l = 0; l < ticks; ++l) {
      const auto from_batch = batch.observe(y.sample(l));
      const auto from_streaming = streaming.observe(y.sample(l));
      ASSERT_EQ(from_batch.has_value(), from_streaming.has_value());
      if (!from_batch) continue;
      ++compared;
      EXPECT_LE(linalg::max_abs_diff(from_batch->loss, from_streaming->loss),
                1e-10)
          << "threads=" << threads << " tick " << l;
      EXPECT_LE(
          linalg::max_abs_diff(batch.variances().v, streaming.variances().v),
          1e-10)
          << "threads=" << threads << " tick " << l;
    }
    EXPECT_EQ(compared, ticks - m);

    const auto* eqs = streaming.streaming_equations();
    ASSERT_NE(eqs, nullptr);
    ASSERT_TRUE(eqs->drop_negative());
    // The scenario is flip-heavy: rank-1 steps must have run, and the
    // factor cache must have absorbed most of them (far fewer full
    // refactorizations than relearn ticks).
    EXPECT_GT(eqs->rank1_updates(), 0u) << "threads=" << threads;
    EXPECT_LT(eqs->refactorizations(), compared / 2) << "threads=" << threads;
    ASSERT_NE(eqs->pair_store(), nullptr);
    EXPECT_GT(eqs->pair_store()->pair_count(), 0u);
  }
}

// The pair store is built lazily: constructing the streaming system must
// not enumerate pairs; the first refresh must.
TEST(StreamingDropNegative, PairStoreIsBuiltLazily) {
  const auto net = losstomo::testing::make_two_beacon_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  StreamingNormalEquations eqs(rrm.matrix(), drop_options());
  EXPECT_EQ(eqs.pair_store(), nullptr);
  ScriptedSource source(rrm.path_count());
  for (std::size_t i = 0; i < rrm.path_count(); ++i) source.set(i, i, 0.1);
  eqs.refresh(source);
  ASSERT_NE(eqs.pair_store(), nullptr);
  EXPECT_GT(eqs.pair_store()->pair_count(), 0u);
  EXPECT_GT(eqs.pair_store()->bytes(), 0u);
}

}  // namespace
}  // namespace losstomo::core
