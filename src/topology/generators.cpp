#include "topology/generators.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>

namespace losstomo::topology {

namespace {

using net::Graph;
using net::NodeId;

// Samples `count` distinct indices from [0, n) with the given (unnormalized,
// non-negative) weights.  Selected indices have their weight zeroed.
std::vector<std::size_t> weighted_sample_without_replacement(
    std::vector<double> weights, std::size_t count, stats::Rng& rng) {
  std::vector<std::size_t> picked;
  picked.reserve(count);
  for (std::size_t draw = 0; draw < count; ++draw) {
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    if (total <= 0.0) break;
    double target = rng.uniform() * total;
    std::size_t chosen = weights.size() - 1;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    picked.push_back(chosen);
    weights[chosen] = 0.0;
  }
  return picked;
}

double distance(const std::pair<double, double>& a,
                const std::pair<double, double>& b) {
  const double dx = a.first - b.first;
  const double dy = a.second - b.second;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

Tree make_random_tree(const TreeConfig& config, stats::Rng& rng) {
  if (config.nodes < 2) throw std::invalid_argument("tree needs >= 2 nodes");
  if (config.max_branching < 1) {
    throw std::invalid_argument("branching must be >= 1");
  }
  Tree tree;
  tree.root = tree.graph.add_node();
  tree.parent_edge.assign(1, net::kNoAs);  // root sentinel

  // Nodes eligible to receive another child.
  std::vector<NodeId> open{tree.root};
  for (std::size_t i = 1; i < config.nodes; ++i) {
    const std::size_t slot = rng.index(open.size());
    const NodeId parent = open[slot];
    const NodeId child = tree.graph.add_node();
    const net::EdgeId e = tree.graph.add_edge(parent, child);
    tree.parent_edge.push_back(e);
    open.push_back(child);
    if (tree.graph.out_degree(parent) >= config.max_branching) {
      open[slot] = open.back();
      open.pop_back();
    }
  }
  for (NodeId v = 0; v < tree.graph.node_count(); ++v) {
    if (tree.graph.out_degree(v) == 0) tree.leaves.push_back(v);
  }
  return tree;
}

std::vector<net::Path> tree_paths(const Tree& tree) {
  std::vector<net::Path> paths;
  paths.reserve(tree.leaves.size());
  for (const NodeId leaf : tree.leaves) {
    net::Path p;
    p.source = tree.root;
    p.destination = leaf;
    NodeId at = leaf;
    while (at != tree.root) {
      const net::EdgeId e = tree.parent_edge[at];
      p.edges.push_back(e);
      at = tree.graph.edge(e).from;
    }
    std::reverse(p.edges.begin(), p.edges.end());
    paths.push_back(std::move(p));
  }
  return paths;
}

Tree make_branching_tree(const BranchingTreeConfig& config, stats::Rng& rng) {
  if (config.depth < 1) throw std::invalid_argument("depth must be >= 1");
  if (config.branching < 2) {
    throw std::invalid_argument("branching must be >= 2");
  }
  Tree tree;
  tree.root = tree.graph.add_node();
  tree.parent_edge.assign(1, net::kNoAs);  // root sentinel

  // Complete `branching`-ary core, level by level; every node of a
  // non-final level is a junction with exactly `branching` children.
  std::vector<NodeId> junctions;
  std::vector<NodeId> level{tree.root};
  for (std::size_t d = 0; d < config.depth; ++d) {
    junctions.insert(junctions.end(), level.begin(), level.end());
    std::vector<NodeId> next;
    next.reserve(level.size() * config.branching);
    for (const NodeId parent : level) {
      for (std::size_t b = 0; b < config.branching; ++b) {
        const NodeId child = tree.graph.add_node();
        tree.parent_edge.push_back(tree.graph.add_edge(parent, child));
        next.push_back(child);
      }
    }
    level = std::move(next);
  }

  // Growth leaves last: their node ids follow every core node, so the
  // out-degree scan below lists them after the core leaves.
  for (std::size_t x = 0; x < config.extra_leaves; ++x) {
    const NodeId parent = junctions[rng.index(junctions.size())];
    const NodeId child = tree.graph.add_node();
    tree.parent_edge.push_back(tree.graph.add_edge(parent, child));
  }
  for (NodeId v = 0; v < tree.graph.node_count(); ++v) {
    if (tree.graph.out_degree(v) == 0) tree.leaves.push_back(v);
  }
  return tree;
}

Topology make_waxman(const WaxmanConfig& config, stats::Rng& rng) {
  if (config.nodes < config.links_per_node + 1) {
    throw std::invalid_argument("waxman: too few nodes");
  }
  Topology topo;
  topo.name = "waxman";
  topo.graph.add_nodes(config.nodes);
  topo.coords.resize(config.nodes);
  for (auto& c : topo.coords) c = {rng.uniform(), rng.uniform()};

  const double scale = std::sqrt(2.0);  // max distance on the unit square
  // Seed: chain the first links_per_node+1 nodes so the incremental phase
  // always finds enough attachment candidates.
  const std::size_t seed_nodes = config.links_per_node + 1;
  for (std::size_t i = 1; i < seed_nodes; ++i) {
    topo.graph.add_bidirectional(static_cast<NodeId>(i - 1),
                                 static_cast<NodeId>(i));
  }
  for (std::size_t i = seed_nodes; i < config.nodes; ++i) {
    std::vector<double> weights(i);
    for (std::size_t j = 0; j < i; ++j) {
      const double d = distance(topo.coords[i], topo.coords[j]);
      weights[j] = config.alpha * std::exp(-d / (config.beta * scale));
    }
    const auto targets =
        weighted_sample_without_replacement(weights, config.links_per_node, rng);
    for (const auto j : targets) {
      topo.graph.add_bidirectional(static_cast<NodeId>(i),
                                   static_cast<NodeId>(j));
    }
  }
  return topo;
}

Topology make_barabasi_albert(const BarabasiAlbertConfig& config,
                              stats::Rng& rng) {
  if (config.nodes < config.links_per_node + 1) {
    throw std::invalid_argument("BA: too few nodes");
  }
  Topology topo;
  topo.name = "barabasi-albert";
  topo.graph.add_nodes(config.nodes);

  const std::size_t seed_nodes = config.links_per_node + 1;
  for (std::size_t i = 1; i < seed_nodes; ++i) {
    topo.graph.add_bidirectional(static_cast<NodeId>(i - 1),
                                 static_cast<NodeId>(i));
  }
  for (std::size_t i = seed_nodes; i < config.nodes; ++i) {
    std::vector<double> weights(i);
    for (std::size_t j = 0; j < i; ++j) {
      // Total degree counts both directions; +1 smoothing keeps isolated
      // seed nodes reachable.
      weights[j] = static_cast<double>(topo.graph.out_degree(static_cast<NodeId>(j))) + 1.0;
    }
    const auto targets =
        weighted_sample_without_replacement(weights, config.links_per_node, rng);
    for (const auto j : targets) {
      topo.graph.add_bidirectional(static_cast<NodeId>(i),
                                   static_cast<NodeId>(j));
    }
  }
  return topo;
}

Topology make_hierarchical_top_down(const HierarchicalConfig& config,
                                    stats::Rng& rng) {
  Topology topo;
  topo.name = "hierarchical-top-down";

  // AS-level graph: Barabási–Albert gives the transit/stub skew.
  auto as_rng = rng.fork(1);
  const auto as_level = make_barabasi_albert(
      {.nodes = config.as_count, .links_per_node = config.as_links_per_node},
      as_rng);

  // Router level: one Waxman pocket per AS.
  std::vector<std::vector<NodeId>> routers_of(config.as_count);
  for (std::size_t a = 0; a < config.as_count; ++a) {
    auto pocket_rng = rng.fork(100 + a);
    const auto pocket = make_waxman(
        {.nodes = config.routers_per_as,
         .links_per_node = config.router_links_per_node},
        pocket_rng);
    const NodeId base = topo.graph.add_nodes(config.routers_per_as);
    for (std::size_t v = 0; v < config.routers_per_as; ++v) {
      const auto id = static_cast<NodeId>(base + v);
      topo.graph.set_as(id, static_cast<std::uint32_t>(a));
      routers_of[a].push_back(id);
      topo.coords.push_back(pocket.coords[v]);
    }
    for (net::EdgeId e = 0; e < pocket.graph.edge_count(); e += 2) {
      const auto& ed = pocket.graph.edge(e);
      topo.graph.add_bidirectional(base + ed.from, base + ed.to);
    }
  }

  // Peering links: one (plus extras) per AS-level adjacency.
  for (net::EdgeId e = 0; e < as_level.graph.edge_count(); e += 2) {
    const auto& ed = as_level.graph.edge(e);
    const auto& from_pool = routers_of[ed.from];
    const auto& to_pool = routers_of[ed.to];
    for (std::size_t x = 0; x < 1 + config.extra_peerings; ++x) {
      topo.graph.add_bidirectional(from_pool[rng.index(from_pool.size())],
                                   to_pool[rng.index(to_pool.size())]);
    }
  }
  return topo;
}

Topology make_hierarchical_bottom_up(const BottomUpConfig& config,
                                     stats::Rng& rng) {
  auto base = make_waxman({.nodes = config.nodes,
                           .links_per_node = config.links_per_node,
                           .alpha = config.alpha,
                           .beta = config.beta},
                          rng);
  base.name = "hierarchical-bottom-up";
  // Group routers into ASes by spatial grid cell; empty cells vanish, so
  // AS sizes vary organically as in BRITE's bottom-up mode.
  std::map<std::size_t, std::uint32_t> cell_to_as;
  for (NodeId v = 0; v < base.graph.node_count(); ++v) {
    const auto [x, y] = base.coords[v];
    const auto gx = std::min(config.grid - 1,
                             static_cast<std::size_t>(x * static_cast<double>(config.grid)));
    const auto gy = std::min(config.grid - 1,
                             static_cast<std::size_t>(y * static_cast<double>(config.grid)));
    const std::size_t cell = gx * config.grid + gy;
    const auto [it, inserted] = cell_to_as.emplace(
        cell, static_cast<std::uint32_t>(cell_to_as.size()));
    base.graph.set_as(v, it->second);
  }
  return base;
}

std::vector<net::NodeId> pick_low_degree_hosts(const net::Graph& g,
                                               std::size_t count) {
  std::vector<NodeId> nodes(g.node_count());
  std::iota(nodes.begin(), nodes.end(), 0u);
  std::stable_sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    return g.out_degree(a) + g.in_degree(a) < g.out_degree(b) + g.in_degree(b);
  });
  nodes.resize(std::min(count, nodes.size()));
  return nodes;
}

}  // namespace losstomo::topology
