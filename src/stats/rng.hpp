// Deterministic random number generation for simulations and experiments.
//
// Every stochastic component in the library takes an explicit Rng&, so a
// single seed at the experiment harness reproduces the entire run.  `fork`
// derives independent streams (e.g. one per snapshot or per link) without
// the accidental correlation of reusing one engine across subsystems.
#pragma once

#include <cstdint>
#include <random>

namespace losstomo::io {
class CheckpointWriter;
class CheckpointReader;
}  // namespace losstomo::io

namespace losstomo::stats {

/// Seeded pseudo-random generator wrapping std::mt19937_64 with the
/// distributions the simulators need.
///
/// Not thread-safe: every draw mutates the engine.  Parallel code derives
/// one stream per unit of work via fork() (O(1)) instead of sharing an
/// instance — that is what keeps simulated outputs independent of the
/// thread count.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal draw.
  double gaussian() { return normal_(engine_); }

  /// Gaussian with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Exponential draw with the given rate (> 0).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Gamma draw with the given shape and scale.
  double gamma(double shape, double scale) {
    return std::gamma_distribution<double>(shape, scale)(engine_);
  }

  /// Derives an independent child stream.  SplitMix64 finalizer over
  /// (current state draw, salt) so distinct salts give decorrelated seeds.
  Rng fork(std::uint64_t salt);

  /// Access to the raw engine for std::shuffle and custom distributions.
  std::mt19937_64& engine() { return engine_; }

  /// Serializes the full stream state — the mt19937_64 engine *and* the
  /// member distributions (std::normal_distribution caches a spare
  /// Box–Muller draw) — so a restored Rng reproduces the exact upcoming
  /// draw sequence bit for bit (io/checkpoint.hpp).
  void save_state(io::CheckpointWriter& writer) const;
  /// Inverse of save_state.  Throws io::CheckpointError(kCorrupt) when the
  /// serialized stream text does not parse.
  void restore_state(io::CheckpointReader& reader);

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

/// SplitMix64 finalizer; used for seed derivation and hashing small ids.
std::uint64_t splitmix64(std::uint64_t x);

}  // namespace losstomo::stats
