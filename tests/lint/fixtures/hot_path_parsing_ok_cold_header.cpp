// Fixture: the same construct waived for a genuinely cold path.
// lint-fixture-path: src/io/fixture_reader.cpp
#include <sstream>
#include <string>

int parse_header_version(const std::string& header) {
  // lint: hot-path-parsing-ok(file header, parsed once per open — never on
  // the per-snapshot path)
  std::istringstream ss(header);
  int version = 0;
  ss >> version;
  return version;
}
