// Phase 1 of LIA: estimating the link variances v from end-to-end snapshots
// (paper §5.1).
//
// The moment system Sigma* = A v is solved by least squares.  Three solver
// backends are provided:
//  * kDenseQr      — materialise A, drop rows with negative sample
//                    covariance (the paper's policy), Householder QR.
//                    Exact paper method; only viable for small path sets.
//  * kNormal       — normal equations G v = h accumulated either pairwise
//                    (exact drop-negative policy) or in closed form from
//                    the co-traversal Gram matrix (keep-all policy, scales
//                    to tens of thousands of paths without materialising
//                    the np(np+1)/2-row system).
//  * kNnls         — non-negative least squares on the normal equations;
//                    enforces v >= 0 by construction (extension, ablated in
//                    bench/ablation_estimator).
// kAuto picks per problem size; sampling-noise negatives in the LS solution
// are clamped to zero and counted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/sharing_pairs.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "stats/covariance_source.hpp"
#include "stats/moments.hpp"

namespace losstomo::core {

enum class VarianceMethod {
  kAuto,
  kDenseQr,
  kNormal,
  kNnls,
};

enum class NegativeCovariancePolicy {
  kAuto,  // drop when the pairwise pass is affordable, else keep
  kDrop,  // paper §5.1: "we ignore equations with sigma_ii' < 0"
  kKeep,  // keep every pair equation (enables the closed-form fast path)
};

struct VarianceOptions {
  VarianceMethod method = VarianceMethod::kAuto;
  NegativeCovariancePolicy negatives = NegativeCovariancePolicy::kAuto;
  /// Largest dense A (in doubles) the kDenseQr backend may build.
  std::size_t dense_entry_cap = 20'000'000;
  /// Largest path count for which the pairwise (drop-negative) accumulation
  /// runs; beyond it kAuto switches to the closed form (keep-all), whose
  /// cost is independent of the number of path pairs.
  std::size_t pairwise_path_cap = 2000;
  /// Worker threads for the blocked covariance kernels and the parallel
  /// normal-equation accumulation.  0 = library default (LOSSTOMO_THREADS
  /// environment variable, else hardware concurrency).  Results are
  /// bit-identical at any thread count.
  std::size_t threads = 0;
  /// Streaming drop-negative only: cumulative rank-1 factor up/downdates
  /// (linalg::UpdatableCholesky) applied to the cached Cholesky factor
  /// before a full refactorization is forced, bounding floating-point
  /// drift of the incrementally maintained factor.  0 = automatic
  /// (4 * link count).
  std::size_t factor_update_cap = 0;
  /// Runs the retained scalar implementation (per-pair O(m) covariance
  /// loops, sequential accumulation) instead of the blocked/parallel
  /// kernels.  Kept for the parity tests and as a debugging fallback; the
  /// two paths agree to last-ulps rounding (<= 1e-12 in practice, provided
  /// no pair covariance sits within an ulp of the drop-negative zero
  /// boundary — see accumulate_pairwise_blocked).
  bool use_reference_impl = false;
};

struct VarianceEstimate {
  linalg::Vector v;                  // per-link variance (>= 0)
  std::string method;                // backend actually used
  std::size_t equations_used = 0;    // pair equations entering the LS
  std::size_t equations_dropped = 0; // negative-covariance rows removed
  std::size_t negative_clamped = 0;  // LS outputs clamped up to 0
  double jitter_used = 0.0;          // Cholesky regularization, if any
};

/// The Phase-1 normal equations G v = h (G = A^T A restricted to the kept
/// pair equations, h = A^T Sigma*) before solving.
struct NormalEquations {
  linalg::Matrix g;
  linalg::Vector h;
  std::size_t used = 0;     // pair equations entering the system
  std::size_t dropped = 0;  // negative-covariance rows removed
};

/// The negative-covariance policy options.negatives resolves to for a
/// problem with np paths (kAuto drops below pairwise_path_cap).  Exposed so
/// streaming consumers mirror the batch resolution exactly.
bool resolve_negative_policy(const VarianceOptions& options, std::size_t np);

/// Assembles the covariance system without solving it — the O(np^2) hot
/// path the blocked kernels accelerate.  Honours options.negatives /
/// threads / use_reference_impl exactly like estimate_link_variances
/// (options.method is ignored).  Exposed for benchmarking and diagnostics.
NormalEquations build_normal_equations(const linalg::SparseBinaryMatrix& r,
                                       const stats::SnapshotMatrix& y,
                                       const VarianceOptions& options = {});

/// Same system assembled from an abstract CovarianceSource (batch wrapper
/// or streaming accumulator).  `use_reference_impl` is ignored — the scalar
/// references are snapshot-based and live on the SnapshotMatrix overload.
NormalEquations build_normal_equations(const linalg::SparseBinaryMatrix& r,
                                       const stats::CovarianceSource& source,
                                       const VarianceOptions& options = {});

/// Estimates link variances from m snapshots of the path observations.
/// `y` must have dim() == r.rows() and count() >= 2.
VarianceEstimate estimate_link_variances(const linalg::SparseBinaryMatrix& r,
                                         const stats::SnapshotMatrix& y,
                                         const VarianceOptions& options = {});

/// Estimates link variances from a CovarianceSource; the entry point
/// Lia::learn(source) uses.  `source.dim()` must equal r.rows().
VarianceEstimate estimate_link_variances(const linalg::SparseBinaryMatrix& r,
                                         const stats::CovarianceSource& source,
                                         const VarianceOptions& options = {});

/// Incrementally maintained Phase-1 normal equations for monitoring loops.
///
/// Two policies, two incremental strategies:
///  * keep-all: G = A^T A depends only on the routing matrix, so it is
///    assembled at construction, the Cholesky factorization is computed on
///    the first solve(), and every subsequent solve() is O(nc^2);
///  * drop-negative: the sharing pairs live in a SharingPairStore built
///    *lazily* on the first refresh() (chunk-parallel, memory proportional
///    to the sharing structure — see core/sharing_pairs.hpp), so
///    constructing a monitor on a 10k+ path overlay costs nothing until
///    streaming actually starts.  Each refresh() re-reads every pair's
///    covariance; only pairs whose drop decision flipped touch G (exact
///    integer +/-1 counts).  The cached Cholesky factor is reconciled at
///    solve() time against the *pending* flip set (pairs whose state
///    differs from the factor; a pair that flips back cancels out), in
///    one of three modes:
///      1. small pending set (<= nc/4): one rank-1 up/downdate per flip
///         (linalg::UpdatableCholesky), O((nc - j0)^2) each;
///      2. large pending set (sign-flip storms — thousands of
///         near-zero-covariance pairs oscillate every tick): the factor
///         stays deliberately stale and the solve runs iterative
///         refinement against the exact G through it, O(nc^2) per step —
///         the state difference vs the factor saturates rather than
///         grows, so a recent factor keeps preconditioning G well;
///      3. full refactorization, only when a downdate would lose positive
///         definiteness, refinement stops contracting, or the cumulative
///         rank-1 count reaches VarianceOptions::factor_update_cap
///         (drift bound).
///
/// refresh() rebuilds h from the source's current covariance matrix — cost
/// proportional to the sharing structure, independent of the window length
/// — and solve() yields the same clamped estimate as
/// estimate_link_variances on an equal-valued source to refinement
/// accuracy (residual <= 1e-13 * ||h||; <= 1e-10 parity observed on
/// well-conditioned instances, and bit-identical on freshly refactorized
/// ticks; methods kNormal and kNnls; kDenseQr callers must use the batch
/// path).
///
/// Thread-safety: refresh() parallelizes internally (bit-identical at any
/// VarianceOptions::threads); concurrent calls on one instance are not
/// supported.
class StreamingNormalEquations {
 public:
  /// O(nc^2) for keep-all (Gram assembly); O(nnz(r)) copy for
  /// drop-negative (the pair store is deferred to the first refresh).
  StreamingNormalEquations(const linalg::SparseBinaryMatrix& r,
                           const VarianceOptions& options = {});

  /// Recomputes h (and the sign-flipped parts of G and the cached factor
  /// under drop-negative) from the source's current covariance matrix.
  const NormalEquations& refresh(const stats::CovarianceSource& source);

  /// Solves the current system for v, reusing the cached (possibly
  /// up/downdated) factorization while it is valid.  Requires a prior
  /// refresh().
  [[nodiscard]] VarianceEstimate solve();

  [[nodiscard]] const NormalEquations& system() const { return sys_; }
  [[nodiscard]] bool drop_negative() const { return drop_negative_; }
  /// Full Cholesky factorizations performed so far (1 after the first
  /// solve under keep-all; under drop-negative grows only on the fallback
  /// conditions listed above).
  [[nodiscard]] std::size_t refactorizations() const {
    return refactorizations_;
  }
  /// Rank-1 factor up/downdates applied so far (drop-negative only).
  [[nodiscard]] std::size_t rank1_updates() const { return rank1_updates_; }
  /// Failed downdates that forced a refactorization.
  [[nodiscard]] std::size_t downdate_fallbacks() const {
    return downdate_fallbacks_;
  }
  /// Iterative-refinement steps run against stale or drifted factors.
  [[nodiscard]] std::size_t refine_iterations() const {
    return refine_iterations_;
  }
  /// Pairs whose kept/dropped state currently differs from the factor.
  [[nodiscard]] std::size_t pending_flips() const { return pending_live_; }
  /// The lazily built sharing-pair store; nullptr before the first
  /// drop-negative refresh (and always under keep-all).
  [[nodiscard]] const SharingPairStore* pair_store() const {
    return pairs_ ? &*pairs_ : nullptr;
  }

 private:
  void apply_flips(const std::vector<std::size_t>& flips);
  bool reconcile_factor();
  void refactorize();
  bool refine(linalg::Vector& v);

  VarianceOptions options_;
  std::size_t np_ = 0;
  std::size_t nc_ = 0;
  bool drop_negative_ = false;
  bool refreshed_ = false;
  // keep-all: per-link path lists for the closed-form rhs.
  std::vector<std::vector<std::uint32_t>> column_paths_;
  // drop-negative: routing matrix retained until the pair store is built.
  std::optional<linalg::SparseBinaryMatrix> pending_r_;
  std::optional<SharingPairStore> pairs_;
  std::vector<std::uint8_t> pair_kept_;
  linalg::Vector flip_scratch_;  // shared-link indicator for up/downdates
  // Pairs whose kept state diverged from the factor: queue + membership
  // marks (an unmarked queue entry was cancelled by a flip-back).
  std::vector<std::size_t> pending_;
  std::vector<std::uint8_t> pending_mark_;
  std::size_t pending_live_ = 0;
  NormalEquations sys_;
  bool factor_dirty_ = true;
  std::optional<linalg::UpdatableCholesky> factor_;
  std::size_t factor_updates_ = 0;  // rank-1 steps since last refactorization
  std::size_t refactorizations_ = 0;
  std::size_t rank1_updates_ = 0;
  std::size_t downdate_fallbacks_ = 0;
  std::size_t refine_iterations_ = 0;
};

}  // namespace losstomo::core
