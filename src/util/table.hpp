// Aligned plain-text table printer for the experiment harnesses.  The bench
// binaries reproduce the paper's tables/figures as text; this keeps their
// output format consistent and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace losstomo::util {

/// Accumulates rows of string cells and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with single-space-padded, left-aligned columns and a rule
  /// under the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Formats a double with `digits` digits after the decimal point.
  static std::string num(double value, int digits = 4);
  /// Formats a ratio as a percentage with `digits` decimals, e.g. "91.27%".
  static std::string pct(double ratio, int digits = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace losstomo::util
