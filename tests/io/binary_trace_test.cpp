// Binary trace format core: write/read round-trips (bit-exact doubles,
// mmap and in-memory images) and the typed-rejection contract — every way
// a trace can be damaged (any header byte flipped, truncation at every
// prefix, payload bit flips, lying dimension fields, trailing garbage)
// must surface as a CheckpointError of the right kind, never UB, a crash,
// or an attacker-sized allocation.  Mirrors the checkpoint_test idiom.
#include "io/binary_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "io/checkpoint.hpp"
#include "test_util.hpp"

namespace losstomo::io {
namespace {

std::string temp_file(const std::string& name) {
  return losstomo::testing::scratch_file(name);
}

std::vector<std::uint8_t> file_bytes(const std::string& file) {
  std::ifstream is(file, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& file,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(file, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

/// A 3-path x 4-snapshot trace exercising the doubles that byte-level
/// formats get wrong: -0.0, denormals, extreme exponents, and values with
/// no short decimal form.
std::vector<std::vector<double>> sample_rows() {
  return {{0.5, -0.0, 1.0 / 3.0},
          {std::numeric_limits<double>::denorm_min(), 1e-300, 0.1 + 0.2},
          {std::numeric_limits<double>::min(), 0.9999999999999999, 1e300},
          {0.0, 2.5e-9, 7.0 / 11.0}};
}

std::string sample_trace(bool log_transformed = false) {
  const auto file = temp_file(log_transformed ? "sample_log.bin"
                                              : "sample.bin");
  BinaryTraceWriter writer(file, 3, log_transformed);
  for (const auto& row : sample_rows()) writer.append(row);
  writer.finish();
  return file;
}

TEST(BinaryTrace, RoundTripsBitExactly) {
  const auto file = sample_trace();
  const auto reader = BinaryTraceReader::open(file);
  EXPECT_EQ(reader.paths(), 3u);
  EXPECT_EQ(reader.snapshots(), 4u);
  EXPECT_FALSE(reader.log_transformed());
  const auto rows = sample_rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto got = reader.row(i);
    ASSERT_EQ(got.size(), rows[i].size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      // memcmp, not ==: -0.0 == 0.0 would pass a sign-losing format.
      EXPECT_EQ(std::memcmp(&got[j], &rows[i][j], sizeof(double)), 0)
          << "row " << i << " col " << j;
    }
  }
}

TEST(BinaryTrace, BlocksAreContiguousAndZeroCopy) {
  const auto file = sample_trace();
  const auto reader = BinaryTraceReader::open(file);
  const auto all = reader.rows(0, 4);
  EXPECT_EQ(all.size(), 12u);
  // rows() hands out sub-spans of one mapping: adjacent requests tile it.
  EXPECT_EQ(reader.rows(1, 2).data(), all.data() + 3);
  EXPECT_EQ(reader.row(3).data(), all.data() + 9);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(all.data()) % alignof(double),
            0u);
}

TEST(BinaryTrace, FromBytesMatchesMmap) {
  const auto file = sample_trace();
  const auto mapped = BinaryTraceReader::open(file);
  const auto in_memory = BinaryTraceReader::from_bytes(file_bytes(file));
  EXPECT_FALSE(in_memory.mapped());
  ASSERT_EQ(in_memory.snapshots(), mapped.snapshots());
  const auto a = mapped.rows(0, 4);
  const auto b = in_memory.rows(0, 4);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

TEST(BinaryTrace, LogTransformedFlagRoundTrips) {
  const auto reader = BinaryTraceReader::open(sample_trace(true));
  EXPECT_TRUE(reader.log_transformed());
}

TEST(BinaryTrace, AppendBlockMatchesPerRowAppends) {
  const auto rows = sample_rows();
  std::vector<double> flat;
  for (const auto& row : rows) flat.insert(flat.end(), row.begin(), row.end());
  const auto blocked = temp_file("blocked.bin");
  {
    BinaryTraceWriter writer(blocked, 3);
    writer.append_block(flat, rows.size());
    writer.finish();
  }
  EXPECT_EQ(file_bytes(blocked), file_bytes(sample_trace()));
}

TEST(BinaryTrace, WriterRejectsMisuse) {
  const auto file = temp_file("misuse.bin");
  EXPECT_THROW(BinaryTraceWriter(file, 0), std::invalid_argument);
  BinaryTraceWriter writer(file, 3);
  const std::vector<double> wrong{1.0, 2.0};
  EXPECT_THROW(writer.append(wrong), std::invalid_argument);
  EXPECT_THROW(writer.append_block(wrong, 1), std::invalid_argument);
  writer.append(std::vector<double>{0.1, 0.2, 0.3});
  writer.finish();
  writer.finish();  // idempotent
  EXPECT_THROW(writer.append(std::vector<double>{0.1, 0.2, 0.3}),
               std::logic_error);
}

TEST(BinaryTrace, RowsOutOfRangeIsChecked) {
  const auto reader = BinaryTraceReader::open(sample_trace());
  EXPECT_THROW(reader.rows(0, 5), std::out_of_range);
  EXPECT_THROW(reader.rows(4, 1), std::out_of_range);
  // first > snapshots with a count that would wrap naive arithmetic.
  EXPECT_THROW(reader.rows(5, std::numeric_limits<std::size_t>::max()),
               std::out_of_range);
  EXPECT_EQ(reader.rows(4, 0).size(), 0u);  // empty tail slice is fine
}

CheckpointErrorKind kind_of(const std::vector<std::uint8_t>& bytes) {
  try {
    const auto reader = BinaryTraceReader::from_bytes(bytes);
    ADD_FAILURE() << "image of " << bytes.size() << " bytes was accepted";
    return CheckpointErrorKind::kIo;
  } catch (const CheckpointError& e) {
    return e.kind();
  }
}

TEST(BinaryTrace, EveryHeaderByteFlipIsTyped) {
  const auto image = file_bytes(sample_trace());
  ASSERT_GE(image.size(), 64u);
  for (std::size_t byte = 0; byte < 64; ++byte) {
    for (const std::uint8_t mask : {0x01, 0x80}) {
      auto damaged = image;
      damaged[byte] ^= mask;
      const auto kind = kind_of(damaged);
      if (byte < 4) {
        EXPECT_EQ(kind, CheckpointErrorKind::kBadMagic) << "byte " << byte;
      } else if (byte < 8) {
        EXPECT_EQ(kind, CheckpointErrorKind::kBadVersion) << "byte " << byte;
      } else {
        // Flags, dimensions, CRC fields, and reserved bytes are all
        // covered by the header CRC (or, for the payload-CRC field, by
        // the payload check) — every flip lands on kCorrupt.
        EXPECT_EQ(kind, CheckpointErrorKind::kCorrupt) << "byte " << byte;
      }
    }
  }
}

TEST(BinaryTrace, EveryPayloadBitFlipIsCaught) {
  const auto image = file_bytes(sample_trace());
  for (std::size_t byte = 64; byte < image.size(); ++byte) {
    auto damaged = image;
    damaged[byte] ^= 0x04;
    EXPECT_EQ(kind_of(damaged), CheckpointErrorKind::kCorrupt)
        << "payload byte " << byte - 64;
  }
}

TEST(BinaryTrace, TruncationIsTyped) {
  const auto image = file_bytes(sample_trace());
  for (std::size_t keep = 0; keep < image.size(); ++keep) {
    auto prefix = image;
    prefix.resize(keep);
    EXPECT_EQ(kind_of(prefix), CheckpointErrorKind::kTruncated)
        << "prefix of " << keep << " bytes";
  }
}

TEST(BinaryTrace, TrailingGarbageIsCorrupt) {
  auto image = file_bytes(sample_trace());
  image.push_back(0x00);
  EXPECT_EQ(kind_of(image), CheckpointErrorKind::kCorrupt);
}

TEST(BinaryTrace, TrustedOpenSkipsOnlyThePayloadPass) {
  const auto image = file_bytes(sample_trace());
  const auto trust = BinaryTraceReader::PayloadCheck::kTrust;

  // An intact trace reads identically under either mode.
  {
    const auto verified = BinaryTraceReader::from_bytes(image);
    const auto trusted = BinaryTraceReader::from_bytes(image, trust);
    ASSERT_EQ(trusted.snapshots(), verified.snapshots());
    const auto a = verified.rows(0, verified.snapshots());
    const auto b = trusted.rows(0, trusted.snapshots());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
  }

  // kTrust skips exactly the payload-CRC pass: a payload flip goes
  // undetected (the caller vouched for the payload)...
  {
    auto damaged = image;
    damaged[70] ^= 0x04;
    EXPECT_EQ(kind_of(damaged), CheckpointErrorKind::kCorrupt);
    EXPECT_NO_THROW(BinaryTraceReader::from_bytes(damaged, trust));
  }

  // ...but every header check still runs: magic, version, header CRC,
  // and length consistency reject with the same typed kinds.
  const auto trusted_kind = [&](std::vector<std::uint8_t> bytes) {
    try {
      const auto reader = BinaryTraceReader::from_bytes(std::move(bytes),
                                                        trust);
      ADD_FAILURE() << "damaged header accepted under kTrust";
      return CheckpointErrorKind::kIo;
    } catch (const CheckpointError& e) {
      return e.kind();
    }
  };
  {
    auto damaged = image;
    damaged[0] ^= 0x01;
    EXPECT_EQ(trusted_kind(damaged), CheckpointErrorKind::kBadMagic);
  }
  {
    auto damaged = image;
    damaged[4] ^= 0x01;
    EXPECT_EQ(trusted_kind(damaged), CheckpointErrorKind::kBadVersion);
  }
  {
    auto damaged = image;
    damaged[16] ^= 0x01;  // paths field, caught by the header CRC
    EXPECT_EQ(trusted_kind(damaged), CheckpointErrorKind::kCorrupt);
  }
  {
    auto prefix = image;
    prefix.resize(image.size() - 8);
    EXPECT_EQ(trusted_kind(prefix), CheckpointErrorKind::kTruncated);
  }
}

TEST(BinaryTrace, OversizedDimensionsDoNotAllocate) {
  // A lying header promising ~2^61 values must be rejected by arithmetic,
  // not by an allocation attempt or an overflow wrap.  The header CRC is
  // recomputed so the dimension checks themselves are what reject.
  auto image = file_bytes(sample_trace());
  const auto huge = std::numeric_limits<std::uint64_t>::max() / 2;
  std::memcpy(image.data() + 24, &huge, 8);  // snapshots field
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(image.data(), 60));
  std::memcpy(image.data() + 60, &crc, 4);
  EXPECT_EQ(kind_of(image), CheckpointErrorKind::kCorrupt);
}

TEST(BinaryTrace, ZeroPathsIsCorrupt) {
  auto image = file_bytes(sample_trace());
  const std::uint64_t zero = 0;
  std::memcpy(image.data() + 16, &zero, 8);
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(image.data(), 60));
  std::memcpy(image.data() + 60, &crc, 4);
  EXPECT_EQ(kind_of(image), CheckpointErrorKind::kCorrupt);
}

TEST(BinaryTrace, AbandonedWriterLeavesARejectedFile) {
  const auto file = temp_file("abandoned.bin");
  {
    BinaryTraceWriter writer(file, 3);
    writer.append(std::vector<double>{0.1, 0.2, 0.3});
    // no finish(): simulates a crash mid-write
  }
  EXPECT_FALSE(is_binary_trace(file));  // header is still all zeros
  try {
    const auto reader = BinaryTraceReader::open(file);
    FAIL() << "torn trace was accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kBadMagic);
  }
}

TEST(BinaryTrace, MissingFileIsIoError) {
  try {
    const auto reader =
        BinaryTraceReader::open(temp_file("no_such_trace.bin"));
    FAIL() << "missing file was opened";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kIo);
  }
}

TEST(BinaryTrace, DetectsFormatByMagic) {
  EXPECT_TRUE(is_binary_trace(sample_trace()));
  const auto text = temp_file("not_a_trace.txt");
  write_bytes(text, {'#', ' ', 'l', 'o', 's', 's'});
  EXPECT_FALSE(is_binary_trace(text));
  write_bytes(text, {'L', 'T'});
  EXPECT_FALSE(is_binary_trace(text));  // shorter than the magic
  EXPECT_FALSE(is_binary_trace(temp_file("missing.txt")));
}

TEST(BinaryTrace, IncrementalCrcMatchesOneShot) {
  std::vector<std::uint8_t> bytes(1027);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  Crc32 crc;
  std::size_t at = 0;
  for (const std::size_t chunk : {1u, 63u, 500u, 463u}) {
    crc.update(std::span<const std::uint8_t>(bytes.data() + at, chunk));
    at += chunk;
  }
  ASSERT_EQ(at, bytes.size());
  EXPECT_EQ(crc.value(), crc32(bytes));
}

TEST(BinaryTrace, EmptyTraceRoundTrips) {
  const auto file = temp_file("empty.bin");
  {
    BinaryTraceWriter writer(file, 5);
    writer.finish();
  }
  const auto reader = BinaryTraceReader::open(file);
  EXPECT_EQ(reader.paths(), 5u);
  EXPECT_EQ(reader.snapshots(), 0u);
  EXPECT_EQ(reader.rows(0, 0).size(), 0u);
}

}  // namespace
}  // namespace losstomo::io
