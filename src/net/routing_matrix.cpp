#include "net/routing_matrix.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace losstomo::net {

ReducedRoutingMatrix::ReducedRoutingMatrix(const Graph& g,
                                           std::vector<Path> paths)
    : paths_(std::move(paths)) {
  if (paths_.empty()) throw std::invalid_argument("no paths");
  for (const auto& p : paths_) validate_path(g, p);

  // Path incidence list per covered edge.
  std::map<EdgeId, std::vector<std::uint32_t>> edge_paths;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    for (const auto e : paths_[i].edges) {
      edge_paths[e].push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Group covered edges by identical incidence signature.  std::map keys on
  // the signature vector; edges iterate in ascending id order so the first
  // edge of each group is its smallest member.
  std::map<std::vector<std::uint32_t>, std::uint32_t> signature_to_link;
  edge_link_.reserve(edge_paths.size());
  for (const auto& [edge, incidence] : edge_paths) {
    const auto [it, inserted] = signature_to_link.emplace(
        incidence, static_cast<std::uint32_t>(members_.size()));
    if (inserted) members_.emplace_back();
    members_[it->second].push_back(edge);
    edge_link_.emplace_back(edge, it->second);
  }

  // Rows: virtual links per path, deduplicated.
  std::vector<std::vector<std::uint32_t>> rows(paths_.size());
  path_links_.resize(paths_.size());
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    std::vector<std::uint32_t> seen;
    for (const auto e : paths_[i].edges) {
      const auto lk = static_cast<std::uint32_t>(*link_of(e));
      if (std::find(seen.begin(), seen.end(), lk) == seen.end()) {
        seen.push_back(lk);
      }
    }
    path_links_[i] = seen;
    rows[i] = seen;
  }
  matrix_ = linalg::SparseBinaryMatrix(members_.size(), std::move(rows));
}

std::optional<std::size_t> ReducedRoutingMatrix::link_of(EdgeId e) const {
  const auto it = std::lower_bound(
      edge_link_.begin(), edge_link_.end(), e,
      [](const auto& pair, EdgeId value) { return pair.first < value; });
  if (it == edge_link_.end() || it->first != e) return std::nullopt;
  return it->second;
}

linalg::Vector ReducedRoutingMatrix::aggregate_edge_values(
    std::span<const double> per_edge) const {
  linalg::Vector out(link_count(), 0.0);
  for (std::size_t k = 0; k < link_count(); ++k) {
    double acc = 0.0;
    for (const auto e : members_[k]) acc += per_edge[e];
    out[k] = acc;
  }
  return out;
}

linalg::Vector ReducedRoutingMatrix::aggregate_edge_losses(
    std::span<const double> per_edge_loss) const {
  linalg::Vector out(link_count(), 0.0);
  for (std::size_t k = 0; k < link_count(); ++k) {
    double trans = 1.0;
    for (const auto e : members_[k]) trans *= 1.0 - per_edge_loss[e];
    out[k] = 1.0 - trans;
  }
  return out;
}

bool ReducedRoutingMatrix::link_is_inter_as(const Graph& g,
                                            std::size_t k) const {
  for (const auto e : members_[k]) {
    if (g.is_inter_as(e)) return true;
  }
  return false;
}

}  // namespace losstomo::net
