#include "topology/overlay.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace losstomo::topology {

namespace {

using net::NodeId;

// Degree of AS a in the AS-membership sense: total degree of its routers'
// inter-AS links.  Used to rank transit vs stub ASes.
std::vector<std::size_t> inter_as_degree(const net::Graph& g,
                                         std::size_t as_count) {
  std::vector<std::size_t> deg(as_count, 0);
  for (net::EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.is_inter_as(e)) ++deg[g.as_of(g.edge(e).from)];
  }
  return deg;
}

Topology attach_hosts(Topology core, const OverlayConfig& config,
                      stats::Rng& rng, const char* name) {
  core.name = name;
  // Rank ASes by inter-AS connectivity; the top `transit_fraction` are
  // transit networks that carry no hosts.
  const auto deg = inter_as_degree(core.graph, config.as_count);
  std::vector<std::size_t> order(config.as_count);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return deg[a] > deg[b];
  });
  const auto transit_count = static_cast<std::size_t>(
      std::ceil(config.transit_fraction * static_cast<double>(config.as_count)));
  std::vector<bool> is_transit(config.as_count, false);
  for (std::size_t i = 0; i < transit_count && i < order.size(); ++i) {
    is_transit[order[i]] = true;
  }

  // Stub routers eligible for host attachment.
  std::vector<NodeId> stub_routers;
  const auto core_nodes = static_cast<NodeId>(core.graph.node_count());
  for (NodeId v = 0; v < core_nodes; ++v) {
    const auto as = core.graph.as_of(v);
    if (as != net::kNoAs && !is_transit[as]) stub_routers.push_back(v);
  }

  for (std::size_t h = 0; h < config.hosts; ++h) {
    const NodeId gateway = stub_routers[rng.index(stub_routers.size())];
    const NodeId host = core.graph.add_node();
    core.graph.set_as(host, core.graph.as_of(gateway));
    core.graph.add_bidirectional(host, gateway);  // access link
    core.hosts.push_back(host);
  }
  return core;
}

}  // namespace

Topology make_planetlab_like(const OverlayConfig& config, stats::Rng& rng) {
  auto core_rng = rng.fork(11);
  auto core = make_hierarchical_top_down(
      {.as_count = config.as_count,
       .routers_per_as = config.routers_per_as,
       .as_links_per_node = config.as_links_per_node,
       .router_links_per_node = config.router_links_per_node,
       .extra_peerings = 1},
      core_rng);
  return attach_hosts(std::move(core), config, rng, "planetlab-like");
}

Topology make_planetlab_like_scaled(double scale, stats::Rng& rng) {
  // Paper scale: 500 beacons, 14922 distinct links.  The synthetic overlay
  // keeps the beacon:AS:router proportions while shrinking by `scale`.
  OverlayConfig config;
  config.hosts = std::max<std::size_t>(8, static_cast<std::size_t>(500 * scale));
  config.as_count = std::max<std::size_t>(6, static_cast<std::size_t>(120 * scale));
  config.routers_per_as = 12;  // pocket size stays constant under scaling
  config.transit_fraction = 0.25;
  return make_planetlab_like(config, rng);
}

Topology make_dimes_like_scaled(double scale, stats::Rng& rng) {
  OverlayConfig config;
  config.hosts = std::max<std::size_t>(10, static_cast<std::size_t>(800 * scale));
  config.as_count = std::max<std::size_t>(10, static_cast<std::size_t>(300 * scale));
  config.routers_per_as = 6;  // smaller commercial pockets
  config.as_links_per_node = 3;  // denser, heavier-tailed AS mesh
  config.router_links_per_node = 2;
  config.transit_fraction = 0.15;
  auto core_rng = rng.fork(13);
  auto core = make_hierarchical_top_down(
      {.as_count = config.as_count,
       .routers_per_as = config.routers_per_as,
       .as_links_per_node = config.as_links_per_node,
       .router_links_per_node = config.router_links_per_node,
       .extra_peerings = 0},
      core_rng);
  auto topo = attach_hosts(std::move(core), config, rng, "dimes-like");
  return topo;
}

}  // namespace losstomo::topology
