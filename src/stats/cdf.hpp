// Empirical distribution helpers used to report the paper's CDF figures
// (Fig. 6: absolute-error and error-factor CDFs).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace losstomo::stats {

/// Empirical CDF over a sample of doubles.  Precondition: at least one
/// sample (min()/max()/quantile() read the order statistics).
/// Construction sorts (O(n log n)); at() is an O(log n) binary search;
/// immutable afterwards, so concurrent reads are safe.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x) const;

  /// q-th quantile, q in [0, 1], by linear interpolation between order
  /// statistics.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double min() const { return sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.back(); }
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Evaluation points covering the support, useful for printing a curve:
  /// `points` equally spaced x values from min to max (inclusive).
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t points) const;

  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Histogram with equal-width bins over [lo, hi]; values outside clamp to
/// the boundary bins.  Used for the Fig. 3 mean-vs-variance binned series.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_center(std::size_t b) const;
  [[nodiscard]] double count(std::size_t b) const { return counts_[b]; }
  [[nodiscard]] double total() const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
};

}  // namespace losstomo::stats
