// Link-delay tomography from second-order statistics — the paper's first
// proposed extension (§8): "Congested links usually have high delay
// variations.  [...] take multiple snapshots of the network to learn the
// delay variances [...] then reduce the first order moment equations by
// removing links with small congestion delays and solve for the delays of
// the remaining congested links."
//
// Delays are additive along a path (no logarithm needed), so the moment
// system is literally Y = R X with X the per-link mean delays of the
// snapshot; the identical Phase-1/Phase-2 machinery applies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/elimination.hpp"
#include "core/variance_estimator.hpp"
#include "linalg/sparse.hpp"
#include "net/routing_matrix.hpp"
#include "stats/moments.hpp"
#include "stats/rng.hpp"

namespace losstomo::delay {

struct DelayScenarioConfig {
  double p = 0.1;                    // fraction of congested links
  double prop_delay_lo_ms = 0.1;     // fixed propagation delay range
  double prop_delay_hi_ms = 5.0;
  double good_jitter_ms = 0.05;      // per-snapshot queueing sd, good links
  double congested_queue_lo_ms = 5.0;  // congested queueing delay range
  double congested_queue_hi_ms = 50.0;
  std::size_t probes_per_snapshot = 1000;  // averaging shrinks probe noise
  double probe_noise_ms = 1.0;             // per-probe measurement noise sd
  /// A link is "high-delay congested" when its queueing delay of the
  /// snapshot exceeds this (classification threshold for metrics).
  double congestion_threshold_ms = 1.0;
};

struct DelaySnapshot {
  linalg::Vector path_delay;     // Y: measured mean path delays (ms)
  linalg::Vector link_delay;     // truth: per virtual link mean delay (ms)
  std::vector<bool> link_congested;
};

/// Streams delay snapshots over the same routing substrate as the loss
/// simulator.  Propagation delays are fixed per physical edge; queueing
/// delays are redrawn per snapshot (congested links get large, variable
/// queues — the delay analogue of bursty loss).
class DelaySimulator {
 public:
  DelaySimulator(const net::ReducedRoutingMatrix& rrm,
                 DelayScenarioConfig config, std::uint64_t seed);

  DelaySnapshot next();

  [[nodiscard]] const DelayScenarioConfig& config() const { return config_; }

 private:
  const net::ReducedRoutingMatrix& rrm_;
  DelayScenarioConfig config_;
  stats::Rng rng_;
  std::vector<double> prop_delay_;  // per virtual link, fixed
  std::vector<bool> congested_;     // per virtual link, fixed per run
};

struct DelayInference {
  linalg::Vector delay;       // per-link inferred mean delay (ms)
  std::vector<bool> removed;  // links approximated as zero-queue
};

/// Solves the reduced delay system for one snapshot; removed links are
/// assigned their (unknown) delay as 0 — they are the lowest-variance,
/// hence lowest-queueing, links.
DelayInference infer_snapshot_delays(const linalg::SparseBinaryMatrix& r,
                                     const core::Elimination& elimination,
                                     std::span<const double> y);

/// Full pipeline: learn delay variances on `history`, eliminate, solve the
/// current snapshot.
DelayInference run_delay_tomography(const linalg::SparseBinaryMatrix& r,
                                    const stats::SnapshotMatrix& history,
                                    std::span<const double> current,
                                    const core::VarianceOptions& var_options = {},
                                    const core::EliminationOptions& elim_options = {});

}  // namespace losstomo::delay
