// §6.4: running time of the LIA building blocks, as a google-benchmark
// binary.  The paper reports (on 2 GHz Matlab): building A up to an hour
// but done once; solving the Phase-1 moment system within seconds even for
// thousand-node networks; solving eq. (3)/(9) in milliseconds-to-a-second.
// We time: co-traversal Gram + normal-equation assembly (the "build A
// once" analogue), Phase-1 variance estimation, Phase-2 elimination, and
// the per-snapshot eq. (9) solve.
#include <benchmark/benchmark.h>

#include <map>

#include "common.hpp"

namespace {

using namespace losstomo;

struct Setup {
  bench::Instance inst;
  stats::SnapshotMatrix history{1, 1};
  linalg::Vector current;
  core::VarianceEstimate variances;
  core::Elimination elimination;

  explicit Setup(std::size_t nodes) {
    inst = bench::make_tree_instance(nodes, 10, 5);
    sim::ScenarioConfig config;
    sim::SnapshotSimulator simulator(inst.graph, inst.matrix(), config, 5);
    const std::size_t m = 50;
    auto series = sim::run_snapshots(simulator, m + 1);
    history = stats::SnapshotMatrix(inst.matrix().path_count(), m);
    for (std::size_t l = 0; l < m; ++l) {
      const auto& y = series.snapshots[l].path_log_trans;
      std::copy(y.begin(), y.end(), history.sample(l).begin());
    }
    current = series.snapshots[m].path_log_trans;
    variances = core::estimate_link_variances(inst.matrix().matrix(), history);
    elimination = core::eliminate_low_variance_links(inst.matrix().matrix(),
                                                     variances.v);
  }
};

Setup& setup(std::size_t nodes) {
  static std::map<std::size_t, std::unique_ptr<Setup>> cache;
  auto& slot = cache[nodes];
  if (!slot) slot = std::make_unique<Setup>(nodes);
  return *slot;
}

void BM_BuildCoTraversalGram(benchmark::State& state) {
  auto& s = setup(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    linalg::CoTraversalGram gram(s.inst.matrix().matrix());
    benchmark::DoNotOptimize(gram.nnz());
  }
}
BENCHMARK(BM_BuildCoTraversalGram)->Arg(250)->Arg(500)->Arg(1000);

void BM_Phase1_VarianceEstimation(benchmark::State& state) {
  auto& s = setup(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto est = core::estimate_link_variances(s.inst.matrix().matrix(),
                                             s.history);
    benchmark::DoNotOptimize(est.v.data());
  }
}
BENCHMARK(BM_Phase1_VarianceEstimation)->Arg(250)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_Phase2_Elimination(benchmark::State& state) {
  auto& s = setup(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto elim = core::eliminate_low_variance_links(s.inst.matrix().matrix(),
                                                   s.variances.v);
    benchmark::DoNotOptimize(elim.kept.data());
  }
}
BENCHMARK(BM_Phase2_Elimination)->Arg(250)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_Phase2_SnapshotSolve(benchmark::State& state) {
  // The per-snapshot eq. (9) solve the paper reports in milliseconds;
  // A/R*'s factor is built once and reused across snapshots.
  auto& s = setup(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto inference = core::infer_snapshot_losses(s.inst.matrix().matrix(),
                                                 s.elimination, s.current);
    benchmark::DoNotOptimize(inference.loss.data());
  }
}
BENCHMARK(BM_Phase2_SnapshotSolve)->Arg(250)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_FullInferencePipeline(benchmark::State& state) {
  // learn + infer end to end (what a monitoring tick costs).
  auto& s = setup(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::Lia lia(s.inst.matrix().matrix());
    lia.learn(s.history);
    auto inference = lia.infer(s.current);
    benchmark::DoNotOptimize(inference.loss.data());
  }
}
BENCHMARK(BM_FullInferencePipeline)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
