// Ablation: loss-model and measurement-model sensitivity (beyond-the-paper
// analysis grounded in the paper's own robustness remarks).
//
//  (a) Gilbert vs Bernoulli losses ("differences insignificant", §6)
//  (b) LLRD1 vs LLRD2 rate models ("very little difference", §6)
//  (c) slot-synchronised vs per-packet probe interleaving (Assumption S.1)
//  (d) congestion dynamics: static vs Markov vs iid across snapshots —
//      the iid row documents why the static reading of §6 is the only one
//      consistent with the paper's results (DESIGN.md §5)
//  (e) good-link loss ceiling good_hi — the calibration knob behind
//      LossModelConfig::llrd1_calibrated()
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace losstomo;
  const util::Args args(argc, argv);
  const bool full = util::Args::full_scale();
  const auto nodes = args.get_size("nodes", full ? 600 : 300);
  const auto m = args.get_size("m", 50);
  const double p = args.get_double("p", 0.1);
  const auto runs = args.get_size("runs", full ? 6 : 3);
  const auto seed = args.get_size("seed", 53);
  args.finish();

  std::cout << "Ablation: loss/measurement model sensitivity (tree nodes="
            << nodes << ", m=" << m << ", p=" << p << ", runs=" << runs
            << ")\n\n";

  struct Variant {
    std::string name;
    sim::ScenarioConfig config;
  };
  std::vector<Variant> variants;
  {
    Variant v{.name = "Gilbert + LLRD1-calibrated (default)", .config = {}};
    v.config.p = p;
    variants.push_back(v);
  }
  {
    Variant v{.name = "Bernoulli losses", .config = {}};
    v.config.p = p;
    v.config.process = sim::LossProcess::kBernoulli;
    variants.push_back(v);
  }
  {
    Variant v{.name = "LLRD2 rates", .config = {}};
    v.config.p = p;
    v.config.loss_model = sim::LossModelConfig::llrd2();
    v.config.loss_model.good_hi = 0.0005;
    variants.push_back(v);
  }
  {
    // Per-packet interleaving destroys slot-level loss correlation across
    // paths; with a static rate the spatial covariance signal vanishes.
    Variant v{.name = "per-packet probes, static rate", .config = {}};
    v.config.p = p;
    v.config.mode = sim::ProbeMode::kPerPacket;
    v.config.probes_per_snapshot = 300;  // per-packet mode is expensive
    variants.push_back(v);
  }
  {
    // ...but fluctuating congestion intensity restores it: the rate itself
    // varies across snapshots and is shared by all paths through the link.
    Variant v{.name = "per-packet probes, fluctuating rate", .config = {}};
    v.config.p = p;
    v.config.mode = sim::ProbeMode::kPerPacket;
    v.config.probes_per_snapshot = 300;
    v.config.redraw_rate_each_snapshot = true;
    variants.push_back(v);
  }
  {
    Variant v{.name = "fluctuating rate (slot mode)", .config = {}};
    v.config.p = p;
    v.config.redraw_rate_each_snapshot = true;
    variants.push_back(v);
  }
  {
    Variant v{.name = "Markov congestion (rho=0.7, hot spots)", .config = {}};
    v.config.p = p;
    v.config.dynamics = sim::CongestionDynamics::kMarkov;
    v.config.persistence = 0.7;
    v.config.congestible_fraction = 0.25;
    variants.push_back(v);
  }
  {
    Variant v{.name = "iid congestion (breaks S.3 learning)", .config = {}};
    v.config.p = p;
    v.config.dynamics = sim::CongestionDynamics::kIid;
    variants.push_back(v);
  }
  {
    Variant v{.name = "literal LLRD1 good range [0,0.002]", .config = {}};
    v.config.p = p;
    v.config.loss_model = sim::LossModelConfig::llrd1();
    variants.push_back(v);
  }

  util::Table table({"variant", "DR", "FPR"});
  for (const auto& variant : variants) {
    stats::RunningStat dr, fpr;
    for (std::size_t run = 0; run < runs; ++run) {
      const auto inst = bench::make_tree_instance(nodes, 10, seed + run);
      const auto outcome = bench::run_pipeline(inst, variant.config, m,
                                               seed * 11 + run);
      dr.add(outcome.lia.dr);
      fpr.add(outcome.lia.fpr);
    }
    table.add_row({variant.name, util::Table::num(dr.mean(), 4),
                   util::Table::num(fpr.mean(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: Gilbert ~ Bernoulli (paper's claim); LLRD2 "
               "loses the near-threshold congested links (tiny variance, "
               "legitimately hard); per-packet probing breaks the spatial "
               "covariance under a static rate but recovers once congestion "
               "intensity fluctuates across snapshots; Markov churn works "
               "when congestion lives on chronic hot spots; iid congestion "
               "collapses (all links exchangeable => variance ordering "
               "uninformative — evidence for the static reading of §6); the "
               "literal good range inflates threshold-crossing noise.\n";
  return 0;
}
