#include "delay/delay_tomography.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "test_util.hpp"

namespace losstomo::delay {
namespace {

struct Fixture {
  net::Graph graph;
  std::unique_ptr<net::ReducedRoutingMatrix> rrm;

  Fixture() {
    auto net = losstomo::testing::make_two_beacon_network();
    graph = std::move(net.graph);
    rrm = std::make_unique<net::ReducedRoutingMatrix>(graph, net.paths);
  }
};

TEST(DelaySimulator, PathDelayIsSumOfLinkDelays) {
  Fixture f;
  DelayScenarioConfig config;
  config.probe_noise_ms = 0.0;  // exact additivity
  DelaySimulator sim(*f.rrm, config, 1);
  const auto snap = sim.next();
  const auto& r = f.rrm->matrix();
  for (std::size_t i = 0; i < r.rows(); ++i) {
    double expected = 0.0;
    for (const auto k : r.row(i)) expected += snap.link_delay[k];
    EXPECT_NEAR(snap.path_delay[i], expected, 1e-9);
  }
}

TEST(DelaySimulator, CongestedLinksHaveLargeQueues) {
  Fixture f;
  DelayScenarioConfig config;
  config.p = 0.5;
  DelaySimulator sim(*f.rrm, config, 2);
  for (int s = 0; s < 20; ++s) {
    const auto snap = sim.next();
    for (std::size_t k = 0; k < f.rrm->link_count(); ++k) {
      if (snap.link_congested[k]) {
        EXPECT_GT(snap.link_delay[k], config.congested_queue_lo_ms);
      }
    }
  }
}

TEST(DelayTomography, RecoversCongestedLinkDelays) {
  Fixture f;
  DelayScenarioConfig config;
  config.p = 0.25;
  config.probe_noise_ms = 0.1;
  DelaySimulator sim(*f.rrm, config, 3);

  const std::size_t m = 60;
  std::vector<std::vector<double>> history_rows;
  for (std::size_t l = 0; l < m; ++l) {
    history_rows.push_back(sim.next().path_delay);
  }
  const auto history = stats::SnapshotMatrix::from_rows(history_rows);
  const auto current = sim.next();

  const auto inference =
      run_delay_tomography(f.rrm->matrix(), history, current.path_delay);
  // Links kept by the elimination must have accurate inferred delays on
  // congested links (propagation + queue >> approximation error).
  for (std::size_t k = 0; k < f.rrm->link_count(); ++k) {
    if (!inference.removed[k] && current.link_congested[k]) {
      EXPECT_NEAR(inference.delay[k], current.link_delay[k],
                  0.25 * current.link_delay[k])
          << "link " << k;
    }
  }
}

TEST(DelayTomography, CongestionLocationFromDelays) {
  // Classification via inferred queueing delay against the threshold.
  Fixture f;
  DelayScenarioConfig config;
  config.p = 0.3;
  DelaySimulator sim(*f.rrm, config, 4);
  const std::size_t m = 80;
  std::vector<std::vector<double>> history_rows;
  for (std::size_t l = 0; l < m; ++l) history_rows.push_back(sim.next().path_delay);
  const auto history = stats::SnapshotMatrix::from_rows(history_rows);

  stats::RunningStat dr;
  for (int trial = 0; trial < 5; ++trial) {
    const auto current = sim.next();
    const auto inference =
        run_delay_tomography(f.rrm->matrix(), history, current.path_delay);
    // Diagnose congested when the inferred delay is far above propagation
    // (which is <= prop_delay_hi_ms).
    std::vector<bool> diagnosed(f.rrm->link_count());
    for (std::size_t k = 0; k < diagnosed.size(); ++k) {
      diagnosed[k] = !inference.removed[k] &&
                     inference.delay[k] >
                         config.prop_delay_hi_ms + config.congestion_threshold_ms;
    }
    const auto acc = core::locate_congested(diagnosed, current.link_congested);
    dr.add(acc.dr);
  }
  EXPECT_GT(dr.mean(), 0.7);
}

TEST(DelayInference, RemovedLinksReportZero) {
  Fixture f;
  // All variance on link 0; everything else eliminated as dependent or
  // quiet.
  linalg::Vector v(f.rrm->link_count(), 1e-12);
  v[0] = 1.0;
  const auto elim = core::eliminate_low_variance_links(f.rrm->matrix(), v);
  linalg::Vector y(f.rrm->path_count(), 1.0);
  const auto inference = infer_snapshot_delays(f.rrm->matrix(), elim, y);
  for (std::size_t k = 0; k < f.rrm->link_count(); ++k) {
    if (inference.removed[k]) {
      EXPECT_DOUBLE_EQ(inference.delay[k], 0.0);
    }
  }
}

}  // namespace
}  // namespace losstomo::delay
