#include "linalg/kernels.hpp"

#include <gtest/gtest.h>

#include "stats/moments.hpp"
#include "stats/rng.hpp"

namespace losstomo::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, stats::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.gaussian();
  }
  return m;
}

Matrix naive_gram(const Matrix& a, double scale) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < a.rows(); ++r) acc += a(r, i) * a(r, j);
      g(i, j) = scale * acc;
    }
  }
  return g;
}

Matrix naive_multiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  }
  return c;
}

double max_abs_entry_diff(const Matrix& a, const Matrix& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::fabs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

TEST(BlockedGram, MatchesNaiveAcrossShapes) {
  stats::Rng rng(7);
  // Shapes straddle the tile boundaries (tile = 64) in both dimensions.
  const std::size_t shapes[][2] = {{1, 1},  {3, 5},    {64, 64},  {65, 63},
                                   {7, 130}, {200, 97}, {129, 129}};
  for (const auto& shape : shapes) {
    const auto a = random_matrix(shape[0], shape[1], rng);
    const auto blocked = blocked_gram(a, 0.25);
    const auto naive = naive_gram(a, 0.25);
    EXPECT_LT(max_abs_entry_diff(blocked, naive), 1e-10)
        << shape[0] << "x" << shape[1];
  }
}

TEST(BlockedGram, ExactlySymmetric) {
  stats::Rng rng(8);
  const auto a = random_matrix(150, 140, rng);
  const auto g = blocked_gram(a);
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) EXPECT_EQ(g(i, j), g(j, i));
  }
}

TEST(BlockedGram, BitIdenticalAcrossThreadCounts) {
  stats::Rng rng(9);
  const auto a = random_matrix(300, 180, rng);
  const auto one = blocked_gram(a, 1.0, 1);
  const auto two = blocked_gram(a, 1.0, 2);
  const auto eight = blocked_gram(a, 1.0, 8);
  EXPECT_EQ(one.data(), two.data());
  EXPECT_EQ(one.data(), eight.data());
}

TEST(BlockedMultiply, MatchesNaiveAcrossShapes) {
  stats::Rng rng(10);
  const std::size_t shapes[][3] = {
      {1, 1, 1}, {5, 3, 7}, {64, 64, 64}, {65, 130, 63}, {100, 257, 90}};
  for (const auto& shape : shapes) {
    const auto a = random_matrix(shape[0], shape[1], rng);
    const auto b = random_matrix(shape[1], shape[2], rng);
    const auto blocked = blocked_multiply(a, b);
    const auto naive = naive_multiply(a, b);
    EXPECT_LT(max_abs_entry_diff(blocked, naive), 1e-10);
  }
}

TEST(BlockedMultiply, BitIdenticalAcrossThreadCounts) {
  stats::Rng rng(11);
  const auto a = random_matrix(120, 200, rng);
  const auto b = random_matrix(200, 110, rng);
  const auto one = blocked_multiply(a, b, 1);
  const auto eight = blocked_multiply(a, b, 8);
  EXPECT_EQ(one.data(), eight.data());
}

TEST(CovarianceMatrix, MatchesPairwiseCovariance) {
  stats::Rng rng(12);
  const std::size_t np = 70, m = 40;
  stats::SnapshotMatrix y(np, m);
  for (std::size_t l = 0; l < m; ++l) {
    for (std::size_t i = 0; i < np; ++i) y.at(l, i) = rng.gaussian();
  }
  const stats::CenteredSnapshots centered(y);
  const auto s = stats::covariance_matrix(centered);
  ASSERT_EQ(s.rows(), np);
  ASSERT_EQ(s.cols(), np);
  for (std::size_t i = 0; i < np; i += 7) {
    for (std::size_t j = i; j < np; j += 5) {
      EXPECT_NEAR(s(i, j), centered.covariance(i, j), 1e-12);
    }
  }
}

TEST(MatrixOps, LargeGramAndMultiplyRouteThroughKernels) {
  // Above the flop threshold Matrix::gram/multiply delegate to the blocked
  // kernels; the results must still agree with the naive reference.
  stats::Rng rng(13);
  const auto a = random_matrix(90, 80, rng);
  EXPECT_LT(max_abs_entry_diff(a.gram(), naive_gram(a, 1.0)), 1e-10);
  const auto b = random_matrix(80, 90, rng);
  EXPECT_LT(max_abs_entry_diff(a.multiply(b), naive_multiply(a, b)), 1e-10);
}

}  // namespace
}  // namespace losstomo::linalg
