// Phase 2, step A of LIA: eliminating good links to reach full column rank
// (paper §5.2).
//
// Links are sorted by estimated variance; the lowest-variance columns are
// removed from R until the remaining matrix R* has full column rank.
// Because a subset of linearly independent columns stays independent,
// "remove from the bottom until full rank" equals "admit columns from the
// *top* (highest variance first) until the first dependent column": once a
// suffix of size j+1 is dependent, every larger suffix contains it and is
// dependent too, so the first rejection marks the exact minimal removal
// set.  Admission runs on an incremental Cholesky of the co-traversal Gram
// matrix N = R^T R (column c is dependent on the admitted set iff its
// residual against their span vanishes, computable from Gram entries
// alone), which also leaves behind the factor of R*^T R* needed to solve
// eq. (9).
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/sparse.hpp"

namespace losstomo::core {

struct EliminationOptions {
  /// Relative tolerance for the dependence test (residual^2 vs column
  /// norm^2; Gram entries are path counts, so this is essentially exact).
  double rank_tol = 1e-9;
  /// Paper behaviour: stop at the first dependent column (minimal prefix
  /// removal in variance order).  When false, continue scanning and admit
  /// any later independent columns (greedy maximal set; ablation only).
  bool stop_at_first_dependence = true;
};

struct Elimination {
  /// Links admitted into R*, in admission order (descending variance).
  std::vector<std::uint32_t> kept;
  /// Links removed (their loss is approximated as 0 / phi = 1).
  std::vector<std::uint32_t> removed;
  /// Cholesky factor of R*^T R* in admission order; reused by the
  /// snapshot loss solver.
  linalg::IncrementalCholesky factor;
  /// All links in descending-variance order (ties by id).
  std::vector<std::uint32_t> order;
};

/// Runs the elimination.  Precondition: `variances.size() == r.cols()`
/// (throws std::invalid_argument).  Complexity: O(nc log nc) for the
/// variance sort plus O(kept^2) Gram work per admitted column — O(kept^2 *
/// nc) in total, no dense matrix ever materialised.  Pure function of its
/// arguments; safe to call concurrently from multiple threads.
Elimination eliminate_low_variance_links(const linalg::SparseBinaryMatrix& r,
                                         std::span<const double> variances,
                                         const EliminationOptions& options = {});

}  // namespace losstomo::core
