#include "core/loss_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace losstomo::core {

LossInference infer_snapshot_losses(const linalg::SparseBinaryMatrix& r,
                                    const Elimination& elimination,
                                    std::span<const double> y) {
  const std::size_t nc = r.cols();
  if (y.size() != r.rows()) throw std::invalid_argument("snapshot size");

  // rhs_a = sum over paths through kept link a of Y_i, in admission order.
  constexpr std::uint32_t kNotKept = 0xffffffffu;
  std::vector<std::uint32_t> position(nc, kNotKept);
  for (std::size_t a = 0; a < elimination.kept.size(); ++a) {
    position[elimination.kept[a]] = static_cast<std::uint32_t>(a);
  }
  linalg::Vector rhs(elimination.kept.size(), 0.0);
  for (std::size_t i = 0; i < r.rows(); ++i) {
    const double yi = y[i];
    if (yi == 0.0) continue;
    for (const auto link : r.row(i)) {
      const auto pos = position[link];
      if (pos != kNotKept) rhs[pos] += yi;
    }
  }
  const linalg::Vector x = elimination.factor.solve(rhs);

  LossInference out;
  out.phi.assign(nc, 1.0);
  out.loss.assign(nc, 0.0);
  out.removed.assign(nc, true);
  linalg::Vector full_x(nc, 0.0);
  for (std::size_t a = 0; a < elimination.kept.size(); ++a) {
    const auto link = elimination.kept[a];
    out.removed[link] = false;
    // Log transmission rates are non-positive; noise can push the LS
    // estimate slightly above 0 (phi > 1), which we clamp.
    const double phi = std::clamp(std::exp(x[a]), 1e-12, 1.0);
    out.phi[link] = phi;
    out.loss[link] = 1.0 - phi;
    full_x[link] = x[a];
  }
  const linalg::Vector fitted = r.multiply(full_x);
  double acc = 0.0;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    const double d = fitted[i] - y[i];
    acc += d * d;
  }
  out.residual_norm = std::sqrt(acc);
  return out;
}

}  // namespace losstomo::core
