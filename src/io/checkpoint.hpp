// Versioned, CRC-guarded binary checkpoints for long-running monitors.
//
// A deployment that has folded days of snapshots into its sliding-window
// accumulators cannot afford to re-warm from scratch after a process death
// (ROADMAP: checkpoint/restore + warm failover).  The format here is the
// substrate every stateful layer serializes through — stats::Rng streams,
// the streaming accumulators, the sharing-pair store, the incrementally
// maintained normal equations with their cached Cholesky factor, the
// monitor, the simulator, and the scenario runner position — so a restored
// process resumes *bit-identically* mid-run with zero refactorizations.
//
// File layout (all integers little-endian, fixed width):
//
//   magic   "LTCP"            4 bytes
//   version u32               format version (kVersion)
//   size    u64               payload byte count
//   crc     u32               CRC-32 (IEEE 802.3) of the payload
//   payload                   size bytes of tagged sections
//
// The payload is a sequence of sections — u32 tag (four ASCII chars), u64
// byte size, then the section body of primitive fields — written by
// CheckpointWriter and consumed by CheckpointReader.  Readers load the
// whole file into memory and validate the header and CRC *before* any
// field is parsed, then bounds-check every individual read, so a
// truncated, bit-flipped, or version-mismatched checkpoint is rejected
// with a typed CheckpointError — never undefined behaviour, a crash, or a
// partially applied restore.  Components keep the no-partial-state
// guarantee by parsing into temporaries and committing with non-throwing
// moves; ScenarioRunner::restore_checkpoint additionally rebuilds its
// engines into fresh objects so a failed restore leaves the runner
// untouched.
//
// Versioning policy: kVersion bumps on any layout change; there is no
// cross-version migration (a checkpoint is a warm-failover artifact, not
// an archival format), so a reader rejects every version but its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace losstomo::io {

/// What a checkpoint read rejected.  Every failure mode of a corrupt or
/// foreign file maps to exactly one kind; consumers (the CLI drill, the CI
/// smokes) match on it.
enum class CheckpointErrorKind {
  kIo,          // file missing / unreadable / unwritable
  kBadMagic,    // not a checkpoint file at all
  kBadVersion,  // a checkpoint, but from a different format version
  kTruncated,   // shorter than its header promises
  kCorrupt,     // CRC mismatch, or structurally inconsistent fields
  kMismatch,    // valid file, wrong target (different config/spec/shape)
};

const char* checkpoint_error_kind_name(CheckpointErrorKind kind);

/// Typed checkpoint failure.  what() carries the kind name plus detail.
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(CheckpointErrorKind kind, const std::string& detail);
  [[nodiscard]] CheckpointErrorKind kind() const { return kind_; }

 private:
  CheckpointErrorKind kind_;
};

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xffffffff) of a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Incremental CRC-32 over a byte stream (same polynomial/value as crc32):
/// lets a streaming writer (io::BinaryTraceWriter) checksum gigabytes of
/// appended rows without ever holding the payload in memory.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> bytes);
  /// CRC of everything updated so far; the accumulator stays usable.
  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// Builds a checkpoint payload field by field.  All write methods append
/// to an in-memory buffer; finish() seals the header + CRC and returns the
/// complete file image (the writer is then spent).  Sections must be
/// balanced (every begin_section has an end_section) and may nest.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  // bit-exact (round-trips NaN payloads and -0.0)
  void boolean(bool v) { u8(v ? 1 : 0); }
  void usize(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s);
  void doubles(std::span<const double> v);
  void u8s(std::span<const std::uint8_t> v);
  void u32s(std::span<const std::uint32_t> v);
  void sizes(std::span<const std::size_t> v);

  /// Opens a tagged section; `tag` must be exactly four ASCII characters.
  void begin_section(const char* tag);
  void end_section();

  /// Seals header + CRC and returns the full file bytes.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  /// finish() + write to `file`; throws CheckpointError(kIo) on failure.
  void save(const std::string& file);

  static constexpr std::uint32_t kVersion = 3;

 private:
  std::vector<std::uint8_t> payload_;
  std::vector<std::size_t> open_sections_;  // offsets of pending size slots
  bool finished_ = false;
};

/// Parses a checkpoint image.  Construction validates magic, version,
/// length, and CRC; every subsequent read is bounds-checked against the
/// payload (and against the innermost open section), so no input can read
/// out of bounds or trigger an attacker-sized allocation.
class CheckpointReader {
 public:
  /// Reads and validates `file` whole.  Throws CheckpointError (kIo,
  /// kBadMagic, kBadVersion, kTruncated, or kCorrupt).
  static CheckpointReader from_file(const std::string& file);
  /// Validates an in-memory image (same checks, same errors).
  static CheckpointReader from_bytes(std::vector<std::uint8_t> bytes);

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean() { return u8() != 0; }
  [[nodiscard]] std::size_t usize();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<double> doubles();
  [[nodiscard]] std::vector<std::uint8_t> u8s();
  [[nodiscard]] std::vector<std::uint32_t> u32s();
  [[nodiscard]] std::vector<std::size_t> sizes();

  /// Enters the next section, which must carry `tag` (kCorrupt otherwise).
  void expect_section(const char* tag);
  /// Leaves the innermost section, skipping any unread remainder.
  void end_section();

  /// Bytes not yet consumed (diagnostics).
  [[nodiscard]] std::size_t remaining() const { return end_ - cursor_; }

 private:
  explicit CheckpointReader(std::vector<std::uint8_t> bytes);
  void need(std::size_t n) const;  // kTruncated/kCorrupt on short reads
  [[nodiscard]] std::size_t length_prefix();

  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;  // next unread payload byte
  std::size_t end_ = 0;     // payload end (innermost section bound)
  std::vector<std::size_t> section_ends_;
};

}  // namespace losstomo::io
