// Overlay monitoring campaign: the paper's §7 deployment in simulation.
//
// A PlanetLab-style overlay of end-hosts probes itself periodically; every
// five minutes a snapshot of all path loss rates reaches a coordinator,
// which maintains a sliding window of m snapshots, re-learns link
// variances, and flags the congested links of the newest snapshot —
// including whether each sits on an inter-AS (peering) or intra-AS link.
//
// The coordinator runs the monitor's streaming engine: the window
// covariance is kept current by O(np^2) rank-1 updates and the normal
// equations are refreshed from it, so the per-tick cost is independent of
// m (pass engine=batch to compare against the full relearn).
//
// Run:  ./build/examples/overlay_monitoring [hosts=24] [windows=12] [m=25]
//                                           [engine=streaming|batch]
#include <iostream>

#include "core/monitor.hpp"
#include "net/routing_matrix.hpp"
#include "sim/probe_sim.hpp"
#include "stats/moments.hpp"
#include "topology/overlay.hpp"
#include "topology/routing.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace losstomo;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto hosts = args.get_size("hosts", 30);
  const auto windows = args.get_size("windows", 12);
  const auto m = args.get_size("m", 40);
  const auto seed = args.get_size("seed", 1);
  const auto engine_name = args.get_string("engine", "streaming");
  args.finish();
  if (engine_name != "streaming" && engine_name != "batch") {
    std::cerr << "engine must be streaming|batch\n";
    return 2;
  }
  const auto engine = engine_name == "batch" ? core::MonitorEngine::kBatch
                                             : core::MonitorEngine::kStreaming;

  // --- Deploy the overlay -------------------------------------------------
  stats::Rng rng(seed);
  auto topo = topology::make_planetlab_like(
      {.hosts = hosts, .as_count = 10, .routers_per_as = 8}, rng);
  const auto routed = topology::route_paths(topo.graph, topo.hosts, topo.hosts);
  const net::ReducedRoutingMatrix rrm(topo.graph, routed.paths);
  std::cout << "overlay: " << hosts << " hosts, "
            << topo.graph.node_count() << " nodes, " << rrm.path_count()
            << " paths, " << rrm.link_count() << " measurable links ("
            << routed.fluttering_removed << " fluttering paths removed)\n\n";

  // --- Network weather: chronic hot spots with short episodes -------------
  sim::ScenarioConfig config;
  config.p = 0.04;
  config.dynamics = sim::CongestionDynamics::kMarkov;
  config.persistence = 0.3;
  config.congestible_fraction = 0.3;
  config.inter_as_congestion_bias = 2.5;
  sim::SnapshotSimulator simulator(topo.graph, rrm, config, seed * 97);

  // --- Monitoring loop -----------------------------------------------------
  core::LiaMonitor monitor(rrm.matrix(), {.window = m, .engine = engine});
  util::Table log({"tick", "congested links", "inter-AS", "worst link loss",
                   "detected/actual"});
  stats::RunningStat tick_seconds;
  std::size_t tick = 0;
  while (tick < windows) {
    const auto snap = simulator.next();
    util::Timer tick_timer;
    const auto inference = monitor.observe(snap.path_log_trans);
    if (!inference) continue;  // still filling the learning window
    tick_seconds.add(tick_timer.seconds());
    ++tick;

    std::size_t flagged = 0, inter = 0, hits = 0, actual = 0;
    double worst = 0.0;
    for (std::size_t k = 0; k < rrm.link_count(); ++k) {
      if (snap.link_congested[k]) ++actual;
      if (inference->loss[k] > config.loss_model.threshold_tl) {
        ++flagged;
        if (rrm.link_is_inter_as(topo.graph, k)) ++inter;
        if (snap.link_congested[k]) ++hits;
        worst = std::max(worst, inference->loss[k]);
      }
    }
    log.add_row({std::to_string(tick), std::to_string(flagged),
                 std::to_string(inter), util::Table::num(worst, 3),
                 std::to_string(hits) + "/" + std::to_string(actual)});
  }
  log.print(std::cout);
  std::cout << "\nEach tick: variances re-learned on the last " << m
            << " snapshots, then the newest snapshot diagnosed (LIA).\n"
            << engine_name << " engine: mean tick "
            << util::Table::num(tick_seconds.mean() * 1e3, 3) << " ms over "
            << windows << " diagnosed ticks.\n";
  return 0;
}
