// PairMoments — sliding-window covariance restricted to the sharing pairs.
//
// The dense stats::StreamingMoments accumulator maintains all np^2 entries
// of the window covariance matrix, O(np^2) per tick.  But the streaming
// drop-negative Phase-1 path only ever READS the covariances of pairs that
// share a link — ~1.3M of the 26M entries on the recorded 5112-path
// overlay.  This accumulator maintains exactly those entries, indexed by a
// shared core::SharingPairStore: a steady tick is O(np + sharing pairs)
// (two rank-1 passes over the stored pair list), and memory is O(np *
// window + pairs) instead of O(np^2).
//
// The arithmetic mirrors StreamingMoments entry by entry (Youngs–Cramer
// add/retire on the centred cross-products, deterministic periodic full
// refresh from the retained ring), so the two accumulators agree to
// floating-point drift on every stored pair.  The full covariance matrix is
// deliberately NOT available — matrix() throws — which is why this source
// only powers the drop-negative policy; keep-all's closed-form rhs needs
// the dense S and stays on StreamingMoments.
//
// Path churn follows the same uniform-invariant design as StreamingMoments:
// add/retire is bookkeeping (per-dimension validity), push a zero filler
// for inactive paths, and a grown dimension starts with an all-zero ring
// history that already satisfies the incremental invariant.  The pair list
// itself grows through SharingPairStore::add_row (driven by the monitor).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/sharing_pairs.hpp"
#include "linalg/matrix.hpp"
#include "stats/covariance_source.hpp"
#include "stats/moments.hpp"
#include "stats/streaming.hpp"

namespace losstomo::core {

/// Interface of the pair-indexed accumulators that back the streaming
/// drop-negative engine: a covariance source whose entries are addressable
/// by SharingPairStore pair index.  Two implementations — the flat
/// core::PairMoments and the partitioned core::ShardedPairMoments — so the
/// monitor and the StreamingNormalEquations refresh are agnostic to
/// whether the window statistics live in one accumulator or K shard-local
/// ones.
///
/// The writer API mirrors the accumulator contract the monitor drives:
/// single-writer push/churn, with add_paths called AFTER the shared store
/// has grown (the routing matrix is passed so sharded implementations can
/// slice the new rows).
class PairIndexedSource : public stats::CovarianceSource {
 public:
  virtual void push(std::span<const double> y) = 0;
  virtual void push_block(std::span<const double> values,
                          std::size_t rows) = 0;
  virtual void activate_path(std::size_t i) = 0;
  virtual void retire_path(std::size_t i) = 0;
  /// Appends the trailing `count` rows of the (already grown) routing
  /// matrix `r`; returns the first new dimension's index.
  virtual std::size_t add_paths(const linalg::SparseBinaryMatrix& r,
                                std::size_t count) = 0;
  virtual void save_state(io::CheckpointWriter& writer) const = 0;
  virtual void restore_state(io::CheckpointReader& reader) = 0;

  /// The store the pair values are indexed by (the monitor's shared one).
  [[nodiscard]] virtual const SharingPairStore* pair_store() const = 0;
  /// Centred cross-product per stored pair, aligned with pair_store()'s
  /// indexing; cov(pair p) = pair_values()[p] / (count() - 1).  May gather
  /// lazily (sharded implementation) — logically const, single-writer.
  [[nodiscard]] virtual std::span<const double> pair_values() const = 0;
};

/// Pair-indexed sparse sliding-window covariance accumulator.
///
/// Thread-safety: single-writer (push/refresh/add_path/activate mutate);
/// reads parallelize internally per options.threads with bit-identical
/// results at any thread count.
class PairMoments final : public PairIndexedSource {
 public:
  /// `store` must outlive the accumulator and already enumerate the pairs
  /// of the routing matrix the pushed snapshots are measured over; `dim`
  /// must equal store->path_count().
  PairMoments(std::shared_ptr<const SharingPairStore> store, std::size_t dim,
              stats::StreamingMomentsOptions options);

  /// Folds one snapshot (size dim()) into the window; retires the oldest
  /// when full.  Cost: O(dim + pair_count()) — two rank-1 passes over the
  /// stored pairs — plus the amortized O(window * pairs / refresh_every)
  /// drift refresh.
  void push(std::span<const double> y) override;

  /// Batched ingestion entry point: folds `rows` consecutive snapshots
  /// from a contiguous row-major block of rows * dim() doubles.
  /// State-identical and bit-identical to the per-row push() loop (same
  /// contract as stats::StreamingMoments::push_block).
  void push_block(std::span<const double> values, std::size_t rows) override;

  /// Recomputes means and every stored pair entry from the retained ring
  /// (drift bound; runs automatically every refresh_every pushes).
  void refresh();

  // CovarianceSource:
  [[nodiscard]] std::size_t dim() const override { return dim_; }
  [[nodiscard]] std::size_t count() const override { return count_; }
  /// O(log deg) pair lookup; returns 0 for pairs that share no link (their
  /// covariance is never consumed by the drop-negative path).
  [[nodiscard]] double covariance(std::size_t i, std::size_t j) const override;
  /// Unsupported: the full S is exactly what this accumulator avoids.
  /// Throws std::logic_error.
  [[nodiscard]] const linalg::Matrix& matrix() const override;
  [[nodiscard]] bool matrix_is_cheap() const override { return false; }
  [[nodiscard]] std::size_t samples(std::size_t i) const override;
  [[nodiscard]] bool pair_ready(std::size_t i, std::size_t j) const;

  /// Covariance of stored pair p — the O(1) read the aligned
  /// StreamingNormalEquations refresh uses.  Requires count() >= 2.
  [[nodiscard]] double pair_covariance(std::size_t p) const {
    return values_[p] / static_cast<double>(count_ - 1);
  }
  [[nodiscard]] const SharingPairStore* store() const { return store_.get(); }

  // PairIndexedSource:
  [[nodiscard]] const SharingPairStore* pair_store() const override {
    return store_.get();
  }
  [[nodiscard]] std::span<const double> pair_values() const override {
    return values_;
  }

  [[nodiscard]] std::size_t window() const { return options_.window; }
  [[nodiscard]] bool full() const { return count_ == options_.window; }
  [[nodiscard]] std::size_t pushes() const { return pushes_; }
  [[nodiscard]] std::size_t refreshes() const { return refreshes_; }

  // Path churn (same contract as stats::StreamingMoments):
  void activate_path(std::size_t i) override;
  void retire_path(std::size_t i) override;
  /// Appends one dimension (active, zero samples) and extends the pair
  /// values to match the store — call AFTER SharingPairStore::add_row.
  /// Returns the new dimension's index.
  std::size_t add_path();
  /// Batched growth: appends `count` dimensions at once, state-identical
  /// to `count` add_path() calls but with ONE ring reallocation — call
  /// AFTER SharingPairStore::add_rows.  Returns the first new dimension's
  /// index.
  std::size_t add_paths(std::size_t count);
  /// PairIndexedSource growth entry point: the flat accumulator reads the
  /// new rows straight off the already-grown shared store, so `r` is
  /// unused here.
  std::size_t add_paths(const linalg::SparseBinaryMatrix&,
                        std::size_t count) override {
    return add_paths(count);
  }
  [[nodiscard]] bool path_active(std::size_t i) const {
    return churn_.active(i);
  }

  // -- Checkpointing (io/checkpoint.hpp) ----------------------------------
  //
  // Same contract as stats::StreamingMoments::save_state/restore_state:
  // ring, means, per-pair cross-products, churn ledger, and cadence
  // counters round-trip bit-exactly; delta_ scratch is rebuilt.  The
  // SharingPairStore is serialized by its owner (the monitor) — restore
  // targets an accumulator already constructed over the restored store and
  // throws io::CheckpointError(kMismatch) on any shape disagreement.
  void save_state(io::CheckpointWriter& writer) const override;
  void restore_state(io::CheckpointReader& reader) override;

 private:
  void add(std::span<const double> y);
  void retire(std::span<const double> y);
  /// values_[p] += w * delta_i delta_j over every stored pair (parallel,
  /// disjoint writes — bit-identical at any thread count).
  void rank1(double w);

  std::shared_ptr<const SharingPairStore> store_;
  std::size_t dim_;
  stats::StreamingMomentsOptions options_;
  stats::PathChurnLedger churn_;  // shared activation/validity rule
  stats::SnapshotMatrix ring_;  // window rows; head_ = oldest
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t pushes_ = 0;
  std::size_t since_refresh_ = 0;
  std::size_t refreshes_ = 0;
  linalg::Vector mean_;
  linalg::Vector delta_;
  std::vector<double> values_;  // centred cross-product per stored pair
};

}  // namespace losstomo::core
