#include "linalg/sparse.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace losstomo::linalg {

void intersect_sorted(std::span<const std::uint32_t> a,
                      std::span<const std::uint32_t> b,
                      std::vector<std::uint32_t>& out) {
  out.clear();
  std::size_t x = 0, y = 0;
  while (x < a.size() && y < b.size()) {
    if (a[x] < b[y]) {
      ++x;
    } else if (a[x] > b[y]) {
      ++y;
    } else {
      out.push_back(a[x]);
      ++x;
      ++y;
    }
  }
}

SparseBinaryMatrix::SparseBinaryMatrix(
    std::size_t cols, std::vector<std::vector<std::uint32_t>> rows) {
  append_rows(cols, std::move(rows));
}

void SparseBinaryMatrix::append_rows(
    std::size_t new_cols, std::vector<std::vector<std::uint32_t>> rows) {
  const std::size_t cols = cols_ + new_cols;
  for (auto& row : rows) {
    std::sort(row.begin(), row.end());
    if (std::adjacent_find(row.begin(), row.end()) != row.end()) {
      throw std::invalid_argument("duplicate column in sparse row");
    }
    if (!row.empty() && row.back() >= cols) {
      throw std::invalid_argument("column index out of range");
    }
  }
  cols_ = cols;
  rows_.insert(rows_.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
}

std::size_t SparseBinaryMatrix::nnz() const {
  std::size_t n = 0;
  for (const auto& row : rows_) n += row.size();
  return n;
}

bool SparseBinaryMatrix::contains(std::size_t i, std::uint32_t c) const {
  const auto& row = rows_[i];
  return std::binary_search(row.begin(), row.end(), c);
}

Vector SparseBinaryMatrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("mv size mismatch");
  Vector y(rows(), 0.0);
  for (std::size_t i = 0; i < rows(); ++i) {
    double acc = 0.0;
    for (const auto c : rows_[i]) acc += x[c];
    y[i] = acc;
  }
  return y;
}

Vector SparseBinaryMatrix::multiply_transpose(std::span<const double> y) const {
  if (y.size() != rows()) throw std::invalid_argument("mtv size mismatch");
  Vector x(cols_, 0.0);
  for (std::size_t i = 0; i < rows(); ++i) {
    const double yi = y[i];
    if (yi == 0.0) continue;
    for (const auto c : rows_[i]) x[c] += yi;
  }
  return x;
}

std::vector<std::vector<std::uint32_t>> SparseBinaryMatrix::column_lists()
    const {
  std::vector<std::vector<std::uint32_t>> cols(cols_);
  for (std::size_t i = 0; i < rows(); ++i) {
    for (const auto c : rows_[i]) {
      cols[c].push_back(static_cast<std::uint32_t>(i));
    }
  }
  return cols;
}

Matrix SparseBinaryMatrix::to_dense() const {
  Matrix m(rows(), cols_);
  for (std::size_t i = 0; i < rows(); ++i) {
    for (const auto c : rows_[i]) m(i, c) = 1.0;
  }
  return m;
}

CoTraversalGram::CoTraversalGram(const SparseBinaryMatrix& r) {
  const std::size_t n = r.cols();
  // Accumulate counts for ordered pairs (k <= l) in a flat hash map, then
  // mirror into a CSR layout with both triangles for fast row access.
  std::unordered_map<std::uint64_t, double> acc;
  acc.reserve(r.nnz() * 4);
  for (std::size_t i = 0; i < r.rows(); ++i) {
    const auto row = r.row(i);
    for (std::size_t a = 0; a < row.size(); ++a) {
      for (std::size_t b = a; b < row.size(); ++b) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(row[a]) << 32) | row[b];
        acc[key] += 1.0;
      }
    }
  }
  // Drain the hash map into key order once; every walk below then visits
  // (k, l) pairs k-major / l-minor regardless of hash layout.
  // lint: nondet-order-ok(drained into a vector and key-sorted before any
  // order-dependent use)
  std::vector<std::pair<std::uint64_t, double>> entries(acc.begin(), acc.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Count per-row nnz (both triangles).
  std::vector<std::size_t> rownnz(n, 0);
  for (const auto& [key, count] : entries) {
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto l = static_cast<std::uint32_t>(key & 0xffffffffu);
    ++rownnz[k];
    if (l != k) ++rownnz[l];
  }
  offsets_.assign(n + 1, 0);
  for (std::size_t k = 0; k < n; ++k) offsets_[k + 1] = offsets_[k] + rownnz[k];
  cols_.resize(offsets_.back());
  values_.resize(offsets_.back());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  // Key-ordered fill leaves every row column-sorted without a repair pass:
  // row r first receives its mirrored entries (k, r) in ascending k < r,
  // then its direct entries (r, m) in ascending m >= r.
  for (const auto& [key, count] : entries) {
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto l = static_cast<std::uint32_t>(key & 0xffffffffu);
    cols_[cursor[k]] = l;
    values_[cursor[k]] = count;
    ++cursor[k];
    if (l != k) {
      cols_[cursor[l]] = k;
      values_[cursor[l]] = count;
      ++cursor[l];
    }
  }
}

double CoTraversalGram::at(std::size_t k, std::size_t l) const {
  const auto cols = row_cols(k);
  const auto it = std::lower_bound(cols.begin(), cols.end(),
                                   static_cast<std::uint32_t>(l));
  if (it == cols.end() || *it != l) return 0.0;
  return row_values(k)[static_cast<std::size_t>(it - cols.begin())];
}

std::span<const std::uint32_t> CoTraversalGram::row_cols(std::size_t k) const {
  return {cols_.data() + offsets_[k], offsets_[k + 1] - offsets_[k]};
}

std::span<const double> CoTraversalGram::row_values(std::size_t k) const {
  return {values_.data() + offsets_[k], offsets_[k + 1] - offsets_[k]};
}

Matrix CoTraversalGram::to_dense() const {
  Matrix m(dim(), dim());
  for (std::size_t k = 0; k < dim(); ++k) {
    const auto cols = row_cols(k);
    const auto vals = row_values(k);
    for (std::size_t i = 0; i < cols.size(); ++i) m(k, cols[i]) = vals[i];
  }
  return m;
}

}  // namespace losstomo::linalg
