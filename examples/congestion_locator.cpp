// Congested-link localization in an ISP distribution tree: LIA vs SCFS.
//
// The scenario the paper's Fig. 5 quantifies, played out on one incident: a
// content server (tree root) delivers to many subscribers (leaves); two
// links go bad, one of them "hiding" beneath the other on the same branch.
// SCFS — limited to one snapshot of binary path states — blames only the
// topmost bad link; LIA separates both and quantifies their loss rates.
//
// Run:  ./build/examples/congestion_locator [nodes=200] [m=40]
#include <iostream>

#include "baselines/scfs.hpp"
#include "core/lia.hpp"
#include "core/metrics.hpp"
#include "net/routing_matrix.hpp"
#include "sim/probe_sim.hpp"
#include "topology/generators.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace losstomo;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto nodes = args.get_size("nodes", 200);
  const auto m = args.get_size("m", 40);
  const auto seed = args.get_size("seed", 9);
  args.finish();

  stats::Rng rng(seed);
  const auto tree =
      topology::make_random_tree({.nodes = nodes, .max_branching = 6}, rng);
  const auto paths = topology::tree_paths(tree);
  const net::ReducedRoutingMatrix rrm(tree.graph, paths);
  std::cout << "distribution tree: " << nodes << " nodes, "
            << rrm.path_count() << " subscriber paths, " << rrm.link_count()
            << " links\n\n";

  sim::ScenarioConfig config;
  config.p = 0.08;
  sim::SnapshotSimulator simulator(tree.graph, rrm, config, seed * 13);
  auto series = sim::run_snapshots(simulator, m + 1);
  stats::SnapshotMatrix history(rrm.path_count(), m);
  for (std::size_t l = 0; l < m; ++l) {
    const auto& y = series.snapshots[l].path_log_trans;
    std::copy(y.begin(), y.end(), history.sample(l).begin());
  }
  const auto& incident = series.snapshots[m];

  // LIA.
  core::Lia lia(rrm.matrix());
  lia.learn(history);
  const auto inference = lia.infer(incident.path_log_trans);

  // SCFS on the same (single) snapshot.
  const auto bad = baselines::binarize_paths(
      incident.path_trans, baselines::path_lengths(rrm.matrix()),
      config.loss_model.threshold_tl);
  const auto scfs = baselines::scfs_tree(rrm, bad);

  // Incident report: every link that is actually congested or flagged by
  // either method.
  util::Table report(
      {"link", "true loss", "LIA inferred", "LIA verdict", "SCFS verdict"});
  const double tl = config.loss_model.threshold_tl;
  for (std::size_t k = 0; k < rrm.link_count(); ++k) {
    const bool lia_says = inference.loss[k] > tl;
    if (!incident.link_congested[k] && !lia_says && !scfs[k]) continue;
    report.add_row(
        {"link#" + std::to_string(k),
         util::Table::num(incident.link_true_loss[k], 4),
         util::Table::num(inference.loss[k], 4),
         lia_says ? "congested" : "ok", scfs[k] ? "congested" : "ok"});
  }
  report.print(std::cout);

  const auto lia_acc =
      core::locate_congested(inference.loss, incident.link_congested, tl);
  const auto scfs_acc = core::locate_congested(scfs, incident.link_congested);
  std::cout << "\nLIA : DR " << util::Table::pct(lia_acc.dr) << ", FPR "
            << util::Table::pct(lia_acc.fpr) << "\nSCFS: DR "
            << util::Table::pct(scfs_acc.dr) << ", FPR "
            << util::Table::pct(scfs_acc.fpr)
            << "\n\nSCFS can only blame the topmost all-bad link of a "
               "branch; LIA also quantifies how lossy each link is.\n";
  return 0;
}
