// Phase 1 of LIA: estimating the link variances v from end-to-end snapshots
// (paper §5.1).
//
// The moment system Sigma* = A v is solved by least squares.  Three solver
// backends are provided:
//  * kDenseQr      — materialise A, drop rows with negative sample
//                    covariance (the paper's policy), Householder QR.
//                    Exact paper method; only viable for small path sets.
//  * kNormal       — normal equations G v = h accumulated either pairwise
//                    (exact drop-negative policy) or in closed form from
//                    the co-traversal Gram matrix (keep-all policy, scales
//                    to tens of thousands of paths without materialising
//                    the np(np+1)/2-row system).
//  * kNnls         — non-negative least squares on the normal equations;
//                    enforces v >= 0 by construction (extension, ablated in
//                    bench/ablation_estimator).
// kAuto picks per problem size; sampling-noise negatives in the LS solution
// are clamped to zero and counted.
#pragma once

#include <cstddef>
#include <string>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "stats/moments.hpp"

namespace losstomo::core {

enum class VarianceMethod {
  kAuto,
  kDenseQr,
  kNormal,
  kNnls,
};

enum class NegativeCovariancePolicy {
  kAuto,  // drop when the pairwise pass is affordable, else keep
  kDrop,  // paper §5.1: "we ignore equations with sigma_ii' < 0"
  kKeep,  // keep every pair equation (enables the closed-form fast path)
};

struct VarianceOptions {
  VarianceMethod method = VarianceMethod::kAuto;
  NegativeCovariancePolicy negatives = NegativeCovariancePolicy::kAuto;
  /// Largest dense A (in doubles) the kDenseQr backend may build.
  std::size_t dense_entry_cap = 20'000'000;
  /// Largest path count for which the pairwise (drop-negative) accumulation
  /// runs; beyond it kAuto switches to the closed form (keep-all), whose
  /// cost is independent of the number of path pairs.
  std::size_t pairwise_path_cap = 2000;
  /// Worker threads for the blocked covariance kernels and the parallel
  /// normal-equation accumulation.  0 = library default (LOSSTOMO_THREADS
  /// environment variable, else hardware concurrency).  Results are
  /// bit-identical at any thread count.
  std::size_t threads = 0;
  /// Runs the retained scalar implementation (per-pair O(m) covariance
  /// loops, sequential accumulation) instead of the blocked/parallel
  /// kernels.  Kept for the parity tests and as a debugging fallback; the
  /// two paths agree to last-ulps rounding (<= 1e-12 in practice, provided
  /// no pair covariance sits within an ulp of the drop-negative zero
  /// boundary — see accumulate_pairwise_blocked).
  bool use_reference_impl = false;
};

struct VarianceEstimate {
  linalg::Vector v;                  // per-link variance (>= 0)
  std::string method;                // backend actually used
  std::size_t equations_used = 0;    // pair equations entering the LS
  std::size_t equations_dropped = 0; // negative-covariance rows removed
  std::size_t negative_clamped = 0;  // LS outputs clamped up to 0
  double jitter_used = 0.0;          // Cholesky regularization, if any
};

/// The Phase-1 normal equations G v = h (G = A^T A restricted to the kept
/// pair equations, h = A^T Sigma*) before solving.
struct NormalEquations {
  linalg::Matrix g;
  linalg::Vector h;
  std::size_t used = 0;     // pair equations entering the system
  std::size_t dropped = 0;  // negative-covariance rows removed
};

/// Assembles the covariance system without solving it — the O(np^2) hot
/// path the blocked kernels accelerate.  Honours options.negatives /
/// threads / use_reference_impl exactly like estimate_link_variances
/// (options.method is ignored).  Exposed for benchmarking and diagnostics.
NormalEquations build_normal_equations(const linalg::SparseBinaryMatrix& r,
                                       const stats::SnapshotMatrix& y,
                                       const VarianceOptions& options = {});

/// Estimates link variances from m snapshots of the path observations.
/// `y` must have dim() == r.rows() and count() >= 2.
VarianceEstimate estimate_link_variances(const linalg::SparseBinaryMatrix& r,
                                         const stats::SnapshotMatrix& y,
                                         const VarianceOptions& options = {});

}  // namespace losstomo::core
