#include "stats/rng.hpp"

#include <sstream>

#include "io/checkpoint.hpp"
#include "io/checkpoint_tags.hpp"

namespace losstomo::stats {
namespace {

// The standard requires operator<</>> on engines and distributions to
// round-trip the complete state through text (mt19937_64's 312-word state,
// the normal distribution's cached spare value), which is exactly the
// bit-identity the checkpoint format needs without poking at
// implementation internals.
template <typename T>
std::string stream_out(const T& value) {
  std::ostringstream os;
  os << value;
  if (!os) {
    throw io::CheckpointError(io::CheckpointErrorKind::kIo,
                              "cannot serialize RNG stream state");
  }
  return os.str();
}

template <typename T>
void stream_in(const std::string& text, T& value) {
  std::istringstream is(text);
  is >> value;
  if (!is) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "RNG stream state does not parse");
  }
}

}  // namespace

void Rng::save_state(io::CheckpointWriter& writer) const {
  writer.begin_section(io::tags::kRng);
  writer.str(stream_out(engine_));
  writer.str(stream_out(unit_));
  writer.str(stream_out(normal_));
  writer.end_section();
}

void Rng::restore_state(io::CheckpointReader& reader) {
  reader.expect_section(io::tags::kRng);
  std::mt19937_64 engine;
  std::uniform_real_distribution<double> unit;
  std::normal_distribution<double> normal;
  stream_in(reader.str(), engine);
  stream_in(reader.str(), unit);
  stream_in(reader.str(), normal);
  reader.end_section();
  engine_ = engine;
  unit_ = unit;
  normal_ = normal;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::fork(std::uint64_t salt) {
  const std::uint64_t base = engine_();
  return Rng(splitmix64(base ^ splitmix64(salt)));
}

}  // namespace losstomo::stats
