// The augmented matrix A of Definition 1 and its large-scale implicit form.
//
// A has one row per unordered path pair (i <= j): the element-wise product
// R_i* (x) R_j*, i.e. the indicator of the links shared by paths i and j.
// Lemma 1 turns Sigma = R diag(v) R^T into the linear system Sigma* = A v;
// Theorem 1 shows A has full column rank for T.1/T.2 topologies, making the
// link variances v identifiable.
//
// Note on row indexing: the paper prints the packed index
// (i-1)np + (j-i) + 1, which overflows for i = np; we use standard
// upper-triangle row-major packing, which matches the paper's own printed
// example (see DESIGN.md §1, "Indexing erratum").
//
// For large path sets A is never materialised: everything the Phase-1
// normal equations need collapses onto the co-traversal Gram matrix
// N = R^T R via
//   (A^T A)_kl = N_kl (N_kl + 1) / 2, and
//   (A^T sigma)_k = 1/2 [ 1/(m-1) sum_l s_k(l)^2 + sum_{i in S_k} var_i ],
// where s_k(l) is the sum of the centred observations of the paths through
// link k in snapshot l (derivation in DESIGN.md §5).
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "stats/moments.hpp"

namespace losstomo::core {

/// Number of unordered path pairs np(np+1)/2.
constexpr std::size_t pair_count(std::size_t np) {
  return np * (np + 1) / 2;
}

/// Packed row index of pair (i, j), 0-based.  Precondition: i <= j < np.
constexpr std::size_t pair_index(std::size_t i, std::size_t j, std::size_t np) {
  return i * np - i * (i - 1) / 2 + (j - i);
}

/// Explicit dense A (pair_count(np) x nc).  Intended for small systems and
/// cross-checking the implicit path; throws std::length_error when the
/// result would exceed `max_entries` doubles.  Row assembly is split over
/// the thread pool (rows are disjoint, so the result is bit-identical at
/// any `threads`; 0 = library default).
linalg::Matrix build_augmented_matrix(const linalg::SparseBinaryMatrix& r,
                                      std::size_t max_entries = 50'000'000,
                                      std::size_t threads = 0);

/// Packed vector of sample covariances Sigma*_(i,j) = cov(Y_i, Y_j) for all
/// i <= j, aligned with build_augmented_matrix's rows.  This is the
/// retained scalar reference: O(np^2 m) pairwise passes over the snapshots.
linalg::Vector packed_covariances(const stats::CenteredSnapshots& y);

/// Fast path: packs an already-computed covariance matrix S (from
/// stats::covariance_matrix) into the same row order.
linalg::Vector packed_covariances(const linalg::Matrix& s);

/// Implicit normal equations: G = A^T A from the co-traversal Gram matrix,
/// rows filled in parallel (bit-identical at any thread count).
linalg::Matrix augmented_normal_matrix(const linalg::CoTraversalGram& gram,
                                       std::size_t threads = 0);

/// Implicit right-hand side h = A^T Sigma* using the closed form above.
/// `column_paths[k]` lists the paths traversing link k (from
/// SparseBinaryMatrix::column_lists()).  Links are processed in parallel;
/// every per-link sum keeps the sequential snapshot order, so the result is
/// bit-identical to the scalar implementation at any thread count.
linalg::Vector augmented_normal_rhs(
    const stats::CenteredSnapshots& y,
    const std::vector<std::vector<std::uint32_t>>& column_paths,
    std::size_t threads = 0);

/// Same right-hand side evaluated from an already-formed covariance matrix
/// S (stats::CovarianceSource::matrix()) instead of raw snapshots:
///   h_k = 1/2 [ sum_{i,j in S_k} S_ij + sum_{i in S_k} S_ii ].
/// This is the per-tick form the streaming engine uses: its cost depends
/// only on the sharing structure, never on the window length.
linalg::Vector augmented_normal_rhs(
    const linalg::Matrix& s,
    const std::vector<std::vector<std::uint32_t>>& column_paths,
    std::size_t threads = 0);

}  // namespace losstomo::core
