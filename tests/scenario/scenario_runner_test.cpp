// ScenarioRunner mechanics: universe layout, event application, spec
// validation against the generated topology, and determinism (two runners
// over one spec see identical snapshots and produce identical outcomes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/monitor.hpp"
#include "linalg/matrix.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "sim/loss_model.hpp"

namespace losstomo::scenario {
namespace {

ScenarioSpec small_mesh_spec() {
  ScenarioSpec spec;
  spec.name = "runner-test";
  spec.topology.kind = TopologySpec::Kind::kMesh;
  spec.topology.nodes = 40;
  spec.topology.hosts = 10;
  spec.topology.seed = 3;
  spec.window = 10;
  spec.ticks = 40;
  spec.seed = 5;
  spec.probes = 200;
  spec.min_good_loss = 0.002;
  spec.reserve_paths = 2;
  spec.events = {
      {.tick = 12, .type = EventType::kPathLeave, .path = 1},
      {.tick = 15, .type = EventType::kPathJoin, .path = 1},
      {.tick = 18, .type = EventType::kRouteChange, .path = 2},
      {.tick = 20, .type = EventType::kLinkDown, .link = 0},
      {.tick = 24, .type = EventType::kLinkUp, .link = 0},
      {.tick = 26, .type = EventType::kRegimeShift, .value = 0.3},
      {.tick = 28, .type = EventType::kGrow, .count = 2},
  };
  return spec;
}

TEST(ScenarioRunner, LaysOutUniverseAndAppliesEvents) {
  ScenarioRunner runner(small_mesh_spec(), {});
  const std::size_t base = runner.base_path_count();
  // Universe = (base - reserve) initial rows + 1 reroute alternate + 2
  // reserve rows appended in event order.
  EXPECT_EQ(runner.universe().path_count(), base + 1);
  EXPECT_EQ(runner.monitor().routing().rows(), base - 2);

  std::size_t events_seen = 0;
  const auto outcome = runner.run(
      [&](std::size_t tick, std::size_t events,
          const std::optional<core::LossInference>& inference) {
        events_seen += events;
        if (tick < 10) {
          EXPECT_FALSE(inference.has_value());
        } else {
          EXPECT_TRUE(inference.has_value()) << tick;
        }
      });
  EXPECT_EQ(outcome.ticks, 40u);
  EXPECT_EQ(outcome.events_applied, 7u);
  EXPECT_EQ(events_seen, 7u);
  EXPECT_EQ(outcome.diagnosed, 30u);
  // Path 2's old route left, its alternate + 2 grown paths joined.
  EXPECT_EQ(outcome.active_paths_end, base - 2 - 1 + 1 + 2);
  // Monitor learned every appended row at its universe index.
  EXPECT_EQ(runner.monitor().routing().rows(), runner.universe().path_count());
  EXPECT_FALSE(runner.monitor().path_active(2));
  EXPECT_GT(outcome.steady_tick_seconds, 0.0);
  EXPECT_GT(outcome.event_tick_seconds, 0.0);
}

TEST(ScenarioRunner, DeterministicAcrossRuns) {
  ScenarioRunner a(small_mesh_spec(), {});
  ScenarioRunner b(small_mesh_spec(), {});
  while (a.ticks_run() < a.spec().ticks) {
    const auto ia = a.step();
    const auto ib = b.step();
    ASSERT_EQ(ia.has_value(), ib.has_value());
    if (!ia) continue;
    EXPECT_EQ(linalg::max_abs_diff(ia->loss, ib->loss), 0.0);
  }
}

TEST(ScenarioRunner, InitialPathsStartRetired) {
  auto spec = small_mesh_spec();
  spec.events.clear();
  spec.reserve_paths = 0;
  spec.initial_paths = 5;
  ScenarioRunner runner(spec, {});
  EXPECT_EQ(runner.monitor().active_path_count(), 5u);
  for (std::size_t i = 5; i < runner.monitor().routing().rows(); ++i) {
    EXPECT_FALSE(runner.monitor().path_active(i));
  }
}

TEST(ScenarioRunner, ValidatesSpecAgainstTopology) {
  // Reroute on a tree: no alternate route exists.
  {
    ScenarioSpec spec;
    spec.topology.kind = TopologySpec::Kind::kTree;
    spec.topology.nodes = 60;
    spec.window = 8;
    spec.ticks = 20;
    spec.events = {{.tick = 10, .type = EventType::kRouteChange, .path = 0}};
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
  }
  // A second reroute of the same path (its alternate would duplicate).
  {
    auto spec = small_mesh_spec();
    spec.events = {
        {.tick = 12, .type = EventType::kRouteChange, .path = 2},
        {.tick = 20, .type = EventType::kRouteChange, .path = 2},
    };
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
  }
  // Grow beyond the reserve pool.
  {
    auto spec = small_mesh_spec();
    spec.events = {{.tick = 12, .type = EventType::kGrow, .count = 99}};
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
  }
  // COMBINED grow + grow_links consumption beyond the reserve pool: each
  // event alone fits (reserve 2), together they over-consume — the
  // pending-addition queue would run dry at apply time.  Mixing in a
  // reroute must not mask the check (reroutes pop the queue but not the
  // pool).
  {
    auto spec = small_mesh_spec();
    spec.events = {
        {.tick = 10, .type = EventType::kRouteChange, .path = 2},
        {.tick = 12, .type = EventType::kGrow, .count = 2},
        {.tick = 14, .type = EventType::kGrowLinks, .count = 1},
    };
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
  }
  // Grow with count 0 (both kinds) is rejected by spec validation.
  {
    auto spec = small_mesh_spec();
    spec.events = {{.tick = 12, .type = EventType::kGrow, .count = 0}};
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
    spec.events = {{.tick = 12, .type = EventType::kGrowLinks, .count = 0}};
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
  }
  // Join of an out-of-range path.
  {
    auto spec = small_mesh_spec();
    spec.events = {{.tick = 12, .type = EventType::kPathJoin, .path = 10000}};
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
  }
  // Link event on an unknown link.
  {
    auto spec = small_mesh_spec();
    spec.events = {{.tick = 12, .type = EventType::kLinkDown, .link = 100000}};
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
  }
}

// Regression (min_good_loss clamp): the floor must never LOWER a
// configured good_lo that already exceeds it — the seed overwrote good_lo
// unconditionally, silently shrinking the good-loss floor.
TEST(ScenarioRunner, MinGoodLossIsAFloorNotAnOverwrite) {
  const auto defaults = sim::LossModelConfig::llrd1_calibrated();
  // A floor below the calibrated good range must leave good_hi untouched
  // and only raise good_lo.
  {
    auto spec = small_mesh_spec();
    spec.min_good_loss = 1e-5;
    ScenarioRunner runner(spec, {});
    const auto& model = runner.simulator().config().loss_model;
    EXPECT_DOUBLE_EQ(model.good_lo, std::max(defaults.good_lo, 1e-5));
    EXPECT_DOUBLE_EQ(model.good_hi, defaults.good_hi);
    EXPECT_LE(model.good_lo, model.good_hi);
  }
  // A floor above the whole calibrated range raises both bounds to it.
  {
    auto spec = small_mesh_spec();
    spec.min_good_loss = 0.01;
    ScenarioRunner runner(spec, {});
    const auto& model = runner.simulator().config().loss_model;
    EXPECT_DOUBLE_EQ(model.good_lo, 0.01);
    EXPECT_DOUBLE_EQ(model.good_hi, 0.01);
  }
}

// A script mixing reroutes with both grow kinds must keep the pending-
// addition queue aligned end to end: every appended monitor row lands at
// its universe index and the queue is exactly drained.
TEST(ScenarioRunner, MixedRerouteAndGrowStayAligned) {
  auto spec = small_mesh_spec();
  spec.events = {
      {.tick = 12, .type = EventType::kRouteChange, .path = 2},
      {.tick = 14, .type = EventType::kGrow, .count = 1},
      {.tick = 16, .type = EventType::kGrowLinks, .count = 1},
      {.tick = 18, .type = EventType::kRouteChange, .path = 4},
  };
  ScenarioRunner runner(spec, {});
  const auto outcome = runner.run();
  EXPECT_EQ(outcome.events_applied, 4u);
  EXPECT_EQ(runner.monitor().routing().rows(), runner.universe().path_count());
}

// Link-discovery mode: a grow_links script starts the monitor on the
// links its known rows cover and appends the fresh ones mid-run; without
// grow_links events the mapping stays the identity over the whole
// universe basis.
TEST(ScenarioRunner, GrowLinksDiscoversFreshColumns) {
  // A tree universe guarantees fresh links: every root-to-leaf path owns
  // its leaf virtual link exclusively, so reserve rows held for
  // grow_links keep those links out of the initial basis.
  auto spec = small_mesh_spec();
  spec.topology.kind = TopologySpec::Kind::kTree;
  spec.topology.nodes = 60;
  spec.events = {{.tick = 15, .type = EventType::kGrowLinks, .count = 2}};
  ScenarioRunner runner(spec, {});
  const std::size_t universe_links = runner.universe().link_count();
  const std::size_t initial_cols = runner.monitor().routing().cols();
  EXPECT_LE(initial_cols, universe_links);
  (void)runner.run();
  const std::size_t final_cols = runner.monitor().routing().cols();
  EXPECT_EQ(final_cols, universe_links);
  EXPECT_EQ(runner.monitor_links().size(), universe_links);
  // The mapping is a bijection onto the universe basis, identity on the
  // initially known prefix's ascending layout.
  std::vector<std::uint8_t> seen(universe_links, 0);
  for (const auto k : runner.monitor_links()) {
    ASSERT_LT(k, universe_links);
    EXPECT_EQ(seen[k], 0);
    seen[k] = 1;
  }
  // This instance genuinely discovers links mid-run (otherwise the test
  // would pin nothing; reseed the topology if generation ever changes).
  EXPECT_LT(initial_cols, universe_links);
  const auto* eqs = runner.monitor().streaming_equations();
  ASSERT_NE(eqs, nullptr);
  EXPECT_EQ(eqs->links_grown(), universe_links - initial_cols);
}

// Lazy simulation must not change anything the monitor ever reads: the
// same spec with lazy off produces bit-identical inferences.
TEST(ScenarioRunner, LazySimulationMatchesFullSimulation) {
  auto lazy_spec = small_mesh_spec();
  auto full_spec = small_mesh_spec();
  full_spec.lazy_simulation = false;
  ASSERT_TRUE(lazy_spec.lazy_simulation);
  ScenarioRunner lazy(lazy_spec, {});
  ScenarioRunner full(full_spec, {});
  while (lazy.ticks_run() < lazy_spec.ticks) {
    const auto a = lazy.step();
    const auto b = full.step();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) continue;
    EXPECT_EQ(linalg::max_abs_diff(a->loss, b->loss), 0.0);
  }
  // Link-level truth is identical too (the loss processes are per unit
  // and consume the same RNG stream either way).
  EXPECT_EQ(linalg::max_abs_diff(lazy.last_snapshot().link_true_loss,
                                 full.last_snapshot().link_true_loss),
            0.0);
}

TEST(ScenarioRunner, LinkDownRaisesMeasuredLossOnAffectedPaths) {
  auto spec = small_mesh_spec();
  spec.p = 0.0;  // only the forced failure produces meaningful loss
  spec.events = {{.tick = 15, .type = EventType::kLinkDown, .link = 0,
                  .value = 0.5}};
  ScenarioRunner runner(spec, {});
  // Find a universe path through virtual link 0.
  const auto& r = runner.universe().matrix();
  std::size_t victim = r.rows();
  for (std::size_t i = 0; i < runner.monitor().routing().rows(); ++i) {
    if (r.contains(i, 0)) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, r.rows());
  double before = 0.0, after = 0.0;
  while (runner.ticks_run() < spec.ticks) {
    (void)runner.step();
    const double loss = 1.0 - runner.last_snapshot().path_trans[victim];
    if (runner.ticks_run() - 1 < 15) {
      before = std::max(before, loss);
    } else {
      after = std::max(after, loss);
    }
  }
  // Forced 50% loss dwarfs anything the stationary regime produced.
  EXPECT_GT(after, 0.3);
  EXPECT_LT(before, 0.3);
}

}  // namespace
}  // namespace losstomo::scenario
