// Route-fluttering detection and removal (Assumption T.2, paper §3.1).
//
// T.2 forbids a pair of paths from sharing two links without sharing every
// link in between: the paths may meet, run together along one contiguous
// segment, and diverge — but never re-meet.  Violations break the
// identifiability proof, so (as in the paper's PlanetLab methodology, §7.1)
// we detect offending pairs and drop paths until none remain.
#pragma once

#include <cstddef>
#include <vector>

#include "net/path.hpp"

namespace losstomo::net {

/// A pair of path indices violating T.2.
struct FlutteringViolation {
  std::size_t path_a;
  std::size_t path_b;
};

/// Returns all path pairs that violate T.2: pairs sharing >= 2 edges whose
/// shared edges do not form one identical contiguous segment on both paths.
std::vector<FlutteringViolation> detect_fluttering(
    const std::vector<Path>& paths);

/// Result of removing fluttering paths.
struct SanitizeResult {
  std::vector<Path> paths;               // surviving paths
  std::vector<std::size_t> kept;         // original indices of survivors
  std::vector<std::size_t> removed;      // original indices dropped
};

/// Greedily removes the path involved in the most violations until the set
/// satisfies T.2 ("we keep only the measurements on one path and ignore the
/// others", paper §3.1).
SanitizeResult remove_fluttering_paths(std::vector<Path> paths);

}  // namespace losstomo::net
