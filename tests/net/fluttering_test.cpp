#include "net/fluttering.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace losstomo::net {
namespace {

// Two paths that meet (share e_m1), diverge, and meet again (share e_m2):
// the canonical T.2 violation from the paper's Fig. 4.
struct FlutterPair {
  Graph g;
  std::vector<Path> paths;
};

FlutterPair make_flutter_pair() {
  FlutterPair f;
  // Nodes: A=0, B=1, m1a=2, m1b=3, x=4, y=5, m2a=6, m2b=7, Da=8, Db=9.
  f.g.add_nodes(10);
  const auto a_in = f.g.add_edge(0, 2);
  const auto b_in = f.g.add_edge(1, 2);
  const auto shared1 = f.g.add_edge(2, 3);  // first shared link
  const auto via_x1 = f.g.add_edge(3, 4);
  const auto via_x2 = f.g.add_edge(4, 6);
  const auto via_y1 = f.g.add_edge(3, 5);
  const auto via_y2 = f.g.add_edge(5, 6);
  const auto shared2 = f.g.add_edge(6, 7);  // second shared link
  const auto da = f.g.add_edge(7, 8);
  const auto db = f.g.add_edge(7, 9);
  f.paths = {
      {.source = 0, .destination = 8,
       .edges = {a_in, shared1, via_x1, via_x2, shared2, da}},
      {.source = 1, .destination = 9,
       .edges = {b_in, shared1, via_y1, via_y2, shared2, db}},
  };
  return f;
}

TEST(Fluttering, DetectsMeetDivergeMeet) {
  const auto f = make_flutter_pair();
  const auto violations = detect_fluttering(f.paths);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].path_a, 0u);
  EXPECT_EQ(violations[0].path_b, 1u);
}

TEST(Fluttering, ContiguousSharedSegmentIsFine) {
  const auto net = testing::make_fig1_network();
  EXPECT_TRUE(detect_fluttering(net.paths).empty());
}

TEST(Fluttering, TwoBeaconNetworkIsFine) {
  const auto net = testing::make_two_beacon_network();
  EXPECT_TRUE(detect_fluttering(net.paths).empty());
}

TEST(Fluttering, SingleSharedLinkIsFine) {
  Graph g(5);
  const auto e1 = g.add_edge(0, 2);
  const auto e2 = g.add_edge(1, 2);
  const auto shared = g.add_edge(2, 3);
  const auto e3 = g.add_edge(3, 4);
  const std::vector<Path> paths{
      {.source = 0, .destination = 4, .edges = {e1, shared, e3}},
      {.source = 1, .destination = 3, .edges = {e2, shared}},
  };
  EXPECT_TRUE(detect_fluttering(paths).empty());
}

TEST(Fluttering, SanitizerRemovesOneOfThePair) {
  const auto f = make_flutter_pair();
  const auto result = remove_fluttering_paths(f.paths);
  EXPECT_EQ(result.paths.size(), 1u);
  EXPECT_EQ(result.removed.size(), 1u);
  EXPECT_EQ(result.kept.size(), 1u);
  EXPECT_TRUE(detect_fluttering(result.paths).empty());
}

TEST(Fluttering, SanitizerKeepsCleanSetIntact) {
  const auto net = testing::make_two_beacon_network();
  const auto result = remove_fluttering_paths(net.paths);
  EXPECT_EQ(result.paths.size(), net.paths.size());
  EXPECT_TRUE(result.removed.empty());
}

TEST(Fluttering, SanitizerPrefersHubPath) {
  // Three paths: one flutters against the other two; removing the hub
  // path alone must resolve everything.
  auto f = make_flutter_pair();
  // Clone path 1 with a different tail destination to make path 0 violate
  // against two paths.
  const auto dc = f.g.add_edge(7, f.g.add_nodes(1));
  auto third = f.paths[1];
  third.edges.back() = dc;
  third.destination = f.g.edge(dc).to;
  // Differentiate the head so it is a distinct path object sharing the
  // fluttering structure with path 0 only.
  f.paths.push_back(third);
  const auto result = remove_fluttering_paths(f.paths);
  EXPECT_TRUE(detect_fluttering(result.paths).empty());
  // Removing path 0 (involved in 2 violations) suffices.
  EXPECT_EQ(result.removed.size(), 1u);
  EXPECT_EQ(result.removed[0], 0u);
}

TEST(Fluttering, OriginalIndicesTracked) {
  const auto f = make_flutter_pair();
  const auto result = remove_fluttering_paths(f.paths);
  ASSERT_EQ(result.kept.size(), 1u);
  ASSERT_EQ(result.removed.size(), 1u);
  EXPECT_NE(result.kept[0], result.removed[0]);
  EXPECT_LT(result.kept[0], 2u);
}

}  // namespace
}  // namespace losstomo::net
