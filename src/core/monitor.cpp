#include "core/monitor.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/sharded_moments.hpp"
#include "io/checkpoint.hpp"
#include "io/checkpoint_tags.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace losstomo::core {

// Pre-resolved telemetry handles: one name lookup per metric at
// construction, plain stores per tick afterwards.  Everything registered
// kDeterministic here is published (Counter::set / Gauge::set) from
// serialized engine state in publish_telemetry(), never live-counted, so
// the exported values inherit the engine's bit-identity guarantees.
struct LiaMonitor::Telemetry {
  obs::Registry* registry;
  // Deterministic counters (serialized engine state).
  obs::Counter* ticks;
  obs::Counter* rank1_updates;
  obs::Counter* refactorizations;
  obs::Counter* pin_updates;
  obs::Counter* pcg_iterations;
  obs::Counter* downdate_fallbacks;
  obs::Counter* links_grown;
  obs::Counter* pairs;
  // Deterministic gauges (point-in-time serialized state).
  obs::Gauge* paths;
  obs::Gauge* active_paths;
  obs::Gauge* links;
  obs::Gauge* links_pinned;
  obs::Gauge* pending_flips;
  obs::Gauge* window_fill;
  obs::Gauge* equations_used;
  obs::Gauge* equations_dropped;
  obs::Gauge* negative_clamped;
  // Partition-dependent shard diagnostics: values depend on the shard
  // count, so they are nondeterministic by the registry's contract.
  std::vector<obs::Gauge*> shard_paths;
  std::vector<obs::Gauge*> shard_pairs;
  obs::Gauge* cross_shard_pairs = nullptr;
  obs::Counter* merges = nullptr;
  // Phase span ids.
  std::size_t tick_phase;
  std::size_t accumulate_phase;
  std::size_t solve_phase;

  Telemetry(obs::Registry& r, std::size_t shards)
      : registry(&r),
        ticks(&r.counter("monitor.ticks")),
        rank1_updates(&r.counter("monitor.rank1_updates")),
        refactorizations(&r.counter("monitor.refactorizations")),
        pin_updates(&r.counter("monitor.pin_updates")),
        pcg_iterations(&r.counter("monitor.pcg_iterations")),
        downdate_fallbacks(&r.counter("monitor.downdate_fallbacks")),
        links_grown(&r.counter("monitor.links_grown")),
        pairs(&r.counter("monitor.pairs")),
        paths(&r.gauge("monitor.paths")),
        active_paths(&r.gauge("monitor.active_paths")),
        links(&r.gauge("monitor.links")),
        links_pinned(&r.gauge("monitor.links_pinned")),
        pending_flips(&r.gauge("monitor.pending_flips")),
        window_fill(&r.gauge("monitor.window_fill")),
        equations_used(&r.gauge("monitor.estimate.equations_used")),
        equations_dropped(&r.gauge("monitor.estimate.equations_dropped")),
        negative_clamped(&r.gauge("monitor.estimate.negative_clamped")),
        tick_phase(r.phase("tick")),
        accumulate_phase(r.phase("accumulate")),
        solve_phase(r.phase("solve")) {
    for (std::size_t s = 0; s < shards; ++s) {
      const std::string base = "monitor.shard" + std::to_string(s) + ".";
      shard_paths.push_back(
          &r.gauge(base + "paths", obs::Determinism::kNondeterministic));
      shard_pairs.push_back(
          &r.gauge(base + "pairs", obs::Determinism::kNondeterministic));
    }
    if (shards > 0) {
      cross_shard_pairs = &r.gauge("monitor.cross_shard_pairs",
                                   obs::Determinism::kNondeterministic);
      merges =
          &r.counter("monitor.merges", obs::Determinism::kNondeterministic);
    }
  }
};

namespace {

// Freeze the negative-covariance policy on the construction-time path set:
// churned relearns run over active submatrices whose row count may cross
// the kAuto pairwise cap, and the streaming and batch engines must resolve
// the policy identically for parity.
MonitorOptions resolve_monitor_options(MonitorOptions options,
                                       const linalg::SparseBinaryMatrix& r) {
  options.lia.variance.negatives =
      resolve_negative_policy(options.lia.variance, r.rows())
          ? NegativeCovariancePolicy::kDrop
          : NegativeCovariancePolicy::kKeep;
  return options;
}

void save_estimate(io::CheckpointWriter& writer, const VarianceEstimate& e) {
  writer.begin_section(io::tags::kVarianceEstimate);
  writer.doubles(e.v);
  writer.str(e.method);
  writer.usize(e.equations_used);
  writer.usize(e.equations_dropped);
  writer.usize(e.negative_clamped);
  writer.f64(e.jitter_used);
  writer.usize(e.links_pinned);
  writer.end_section();
}

VarianceEstimate restore_estimate(io::CheckpointReader& reader) {
  reader.expect_section(io::tags::kVarianceEstimate);
  VarianceEstimate e;
  e.v = reader.doubles();
  e.method = reader.str();
  e.equations_used = reader.usize();
  e.equations_dropped = reader.usize();
  e.negative_clamped = reader.usize();
  e.jitter_used = reader.f64();
  e.links_pinned = reader.usize();
  reader.end_section();
  return e;
}

}  // namespace

LiaMonitor::LiaMonitor(linalg::SparseBinaryMatrix r, MonitorOptions options)
    : options_(resolve_monitor_options(std::move(options), r)),
      engine_(options_.engine),
      r_(std::move(r)),
      lia_(r_, options_.lia) {
  if (options_.window < 2) throw std::invalid_argument("window must be >= 2");
  if (options_.relearn_every == 0) {
    throw std::invalid_argument("relearn_every must be >= 1");
  }
  // The streaming solve covers the normal-equation methods; the paper-exact
  // dense QR needs the materialised batch system.
  if (options_.lia.variance.method == VarianceMethod::kDenseQr) {
    engine_ = MonitorEngine::kBatch;
  }
  const bool drop_negative =
      options_.lia.variance.negatives == NegativeCovariancePolicy::kDrop;
  if (options_.accumulator == CovarianceAccumulator::kSharingPairs &&
      (engine_ != MonitorEngine::kStreaming || !drop_negative)) {
    throw std::invalid_argument(
        "the sharing-pair accumulator requires the streaming engine with "
        "the drop-negative policy");
  }
  if (options_.shards > 0 &&
      options_.accumulator != CovarianceAccumulator::kSharingPairs) {
    throw std::invalid_argument(
        "sharding requires the kSharingPairs accumulator");
  }
  if (options_.shards == 0 && !options_.partition.empty()) {
    throw std::invalid_argument("partition given without shards");
  }
  if (engine_ == MonitorEngine::kStreaming) {
    const stats::StreamingMomentsOptions accumulator_options{
        .window = options_.window,
        .refresh_every = options_.refresh_every,
        .threads = options_.lia.variance.threads};
    if (options_.accumulator == CovarianceAccumulator::kSharingPairs) {
      store_ = std::make_shared<SharingPairStore>(
          SharingPairStore::build(r_, options_.lia.variance.threads));
      if (options_.shards > 0) {
        pair_accumulator_ = std::make_unique<ShardedPairMoments>(
            store_, r_, options_.shards, accumulator_options,
            options_.partition);
      } else {
        pair_accumulator_ = std::make_unique<PairMoments>(store_, r_.rows(),
                                                          accumulator_options);
      }
      equations_.emplace(r_, options_.lia.variance, store_);
    } else {
      accumulator_.emplace(r_.rows(), accumulator_options);
      equations_.emplace(r_, options_.lia.variance);
    }
  }
  active_.assign(r_.rows(), 1);
  activated_tick_.assign(r_.rows(), 0);
  if (options_.telemetry != nullptr) {
    obs_ = std::make_unique<Telemetry>(*options_.telemetry, options_.shards);
    if (auto* sharded =
            dynamic_cast<ShardedPairMoments*>(pair_accumulator_.get())) {
      sharded->set_telemetry(options_.telemetry);
    }
    publish_telemetry();
  }
}

LiaMonitor::LiaMonitor(LiaMonitor&&) = default;
LiaMonitor& LiaMonitor::operator=(LiaMonitor&&) = default;
LiaMonitor::~LiaMonitor() = default;

void LiaMonitor::publish_telemetry() {
  if (!obs_) return;
  Telemetry& t = *obs_;
  t.ticks->set(ticks_);
  t.paths->set(static_cast<double>(r_.rows()));
  t.links->set(static_cast<double>(r_.cols()));
  t.active_paths->set(static_cast<double>(active_path_count()));
  t.window_fill->set(static_cast<double>(window_fill()));
  if (equations_) {
    t.rank1_updates->set(equations_->rank1_updates());
    t.refactorizations->set(equations_->refactorizations());
    t.pin_updates->set(equations_->pin_updates());
    t.pcg_iterations->set(equations_->refine_iterations());
    t.downdate_fallbacks->set(equations_->downdate_fallbacks());
    t.links_grown->set(equations_->links_grown());
    t.links_pinned->set(static_cast<double>(equations_->links_pinned()));
    t.pending_flips->set(static_cast<double>(equations_->pending_flips()));
  }
  if (store_) t.pairs->set(store_->pair_count());
  const VarianceEstimate* estimate = nullptr;
  if (churn_ && churn_variance_) {
    estimate = &*churn_variance_;
  } else if (lia_.trained()) {
    estimate = &lia_.variances();
  }
  if (estimate != nullptr) {
    t.equations_used->set(static_cast<double>(estimate->equations_used));
    t.equations_dropped->set(static_cast<double>(estimate->equations_dropped));
    t.negative_clamped->set(static_cast<double>(estimate->negative_clamped));
  }
  if (const ShardedPairMoments* sharded = sharded_accumulator()) {
    for (std::size_t s = 0; s < t.shard_paths.size(); ++s) {
      t.shard_paths[s]->set(static_cast<double>(sharded->shard_path_count(s)));
      t.shard_pairs[s]->set(static_cast<double>(sharded->shard_pair_count(s)));
    }
    t.cross_shard_pairs->set(static_cast<double>(sharded->cross_shard_pairs()));
    t.merges->set(sharded->merges());
  }
}

std::size_t LiaMonitor::window_fill() const {
  if (engine_ != MonitorEngine::kStreaming) return window_.size();
  return pair_accumulator_ ? pair_accumulator_->count()
                           : accumulator_->count();
}

void LiaMonitor::push_snapshot(std::span<const double> y) {
  if (engine_ == MonitorEngine::kStreaming) {
    if (pair_accumulator_) {
      pair_accumulator_->push(y);
    } else {
      accumulator_->push(y);
    }
    return;
  }
  window_.emplace_back(y.begin(), y.end());
  if (window_.size() > options_.window) window_.pop_front();
}

bool LiaMonitor::path_full(std::size_t i) const {
  if (!active_[i]) return false;
  const std::size_t fill = window_fill();
  // Snapshots pushed so far = ticks_ - 1 inside a relearn (the current
  // snapshot enters the window after diagnosis) — the exact mirror of the
  // accumulators' samples() bookkeeping.
  return fill > 0 && ticks_ - 1 - activated_tick_[i] >= fill;
}

const VarianceEstimate& LiaMonitor::variances() const {
  if (churn_ && churn_variance_) return *churn_variance_;
  return lia_.variances();
}

const ShardedPairMoments* LiaMonitor::sharded_accumulator() const {
  return dynamic_cast<const ShardedPairMoments*>(pair_accumulator_.get());
}

std::size_t LiaMonitor::active_path_count() const {
  std::size_t count = 0;
  for (const auto a : active_) count += a != 0;
  return count;
}

void LiaMonitor::set_path_active(std::size_t path, bool active) {
  if (path >= r_.rows()) throw std::invalid_argument("path out of range");
  if (engine_ == MonitorEngine::kStreaming &&
      options_.lia.variance.negatives != NegativeCovariancePolicy::kDrop) {
    throw std::logic_error(
        "streaming path churn requires the drop-negative policy");
  }
  if ((active_[path] != 0) == active) return;
  churn_ = true;
  active_[path] = active ? 1 : 0;
  if (active) activated_tick_[path] = ticks_;
  active_dirty_ = true;
  // Phase 2 must never run against a stale active set: force a relearn at
  // the next diagnosing tick.
  since_learn_ = options_.relearn_every;
  if (engine_ == MonitorEngine::kStreaming) {
    equations_->set_path_live(path, active);
    if (pair_accumulator_) {
      if (active) {
        pair_accumulator_->activate_path(path);
      } else {
        pair_accumulator_->retire_path(path);
      }
    } else {
      if (active) {
        accumulator_->activate_path(path);
      } else {
        accumulator_->retire_path(path);
      }
    }
  }
}

std::size_t LiaMonitor::add_path(std::vector<std::uint32_t> links) {
  std::vector<std::vector<std::uint32_t>> rows;
  rows.push_back(std::move(links));
  return add_paths(std::move(rows));
}

std::size_t LiaMonitor::add_paths(std::vector<std::vector<std::uint32_t>> rows,
                                  std::size_t new_links) {
  if (engine_ == MonitorEngine::kStreaming &&
      options_.lia.variance.negatives != NegativeCovariancePolicy::kDrop) {
    throw std::logic_error(
        "streaming path churn requires the drop-negative policy");
  }
  if (rows.empty()) {
    throw std::invalid_argument("add_paths needs at least one row");
  }
  const std::size_t index = r_.rows();
  const std::size_t count = rows.size();
  r_.append_rows(new_links, std::move(rows));  // validates the rows
  churn_ = true;
  active_.resize(index + count, 1);
  activated_tick_.resize(index + count, ticks_);
  active_dirty_ = true;
  since_learn_ = options_.relearn_every;
  if (engine_ == MonitorEngine::kStreaming) {
    // Order matters with a shared store: the equations grow the link basis
    // and the store, then the accumulator aligns its pair values to it.
    equations_->grow_links(new_links);
    equations_->add_paths(r_, count);
    if (pair_accumulator_) {
      pair_accumulator_->add_paths(r_, count);
    } else {
      accumulator_->add_paths(count);
    }
  }
  if (obs_) obs_->registry->note("monitor.grow");
  return index;
}

void LiaMonitor::rebuild_active() {
  if (!active_dirty_ && active_r_) return;
  active_rows_.clear();
  std::vector<std::vector<std::uint32_t>> rows;
  for (std::size_t i = 0; i < r_.rows(); ++i) {
    if (!active_[i]) continue;
    active_rows_.push_back(static_cast<std::uint32_t>(i));
    const auto row = r_.row(i);
    rows.emplace_back(row.begin(), row.end());
  }
  active_r_.emplace(r_.cols(), std::move(rows));
  active_dirty_ = false;
}

void LiaMonitor::relearn_batch() {
  stats::SnapshotMatrix history(r_.rows(), options_.window);
  for (std::size_t l = 0; l < options_.window; ++l) {
    const auto& y = window_[l];
    std::copy(y.begin(), y.end(), history.sample(l).begin());
  }
  lia_.learn(history);
}

void LiaMonitor::relearn_churn() {
  rebuild_active();
  if (engine_ == MonitorEngine::kStreaming) {
    const stats::CovarianceSource& source =
        pair_accumulator_
            ? static_cast<const stats::CovarianceSource&>(*pair_accumulator_)
            : *accumulator_;
    equations_->refresh(source);
    churn_variance_ = equations_->solve();
  } else {
    // Batch reference: estimate from the active paths whose window entries
    // are all real measurements — the exact set whose pairs the streaming
    // engine reports ready.
    std::vector<std::uint32_t> full_rows;
    std::vector<std::vector<std::uint32_t>> rows;
    for (std::size_t i = 0; i < r_.rows(); ++i) {
      if (!active_[i] || !path_full(i)) continue;
      full_rows.push_back(static_cast<std::uint32_t>(i));
      const auto row = r_.row(i);
      rows.emplace_back(row.begin(), row.end());
    }
    if (full_rows.size() < 2) {
      // Not enough learned history to estimate anything yet.
      churn_variance_.reset();
      churn_elimination_.reset();
      return;
    }
    linalg::SparseBinaryMatrix sub(r_.cols(), std::move(rows));
    stats::SnapshotMatrix history(full_rows.size(), options_.window);
    for (std::size_t l = 0; l < options_.window; ++l) {
      const auto& y = window_[l];
      for (std::size_t idx = 0; idx < full_rows.size(); ++idx) {
        history.at(l, idx) = y[full_rows[idx]];
      }
    }
    churn_variance_ =
        estimate_link_variances(sub, history, options_.lia.variance);
  }
  churn_elimination_ = eliminate_low_variance_links(
      *active_r_, churn_variance_->v, options_.lia.elimination);
}

std::optional<LossInference> LiaMonitor::observe_churn(
    std::span<const double> y) {
  std::optional<LossInference> result;
  if (window_fill() == options_.window) {
    obs::Span solve_span(obs_ ? obs_->registry : nullptr,
                         obs_ ? obs_->solve_phase : 0);
    if (!churn_variance_ || ++since_learn_ >= options_.relearn_every) {
      relearn_churn();
      since_learn_ = 0;
    }
    if (churn_variance_ && churn_elimination_) {
      linalg::Vector y_active(active_rows_.size());
      for (std::size_t idx = 0; idx < active_rows_.size(); ++idx) {
        y_active[idx] = y[active_rows_[idx]];
      }
      result =
          infer_snapshot_losses(*active_r_, *churn_elimination_, y_active);
    }
  }
  {
    obs::Span accumulate_span(obs_ ? obs_->registry : nullptr,
                              obs_ ? obs_->accumulate_phase : 0);
    push_snapshot(y);
  }
  publish_telemetry();
  return result;
}

void LiaMonitor::observe_block(std::span<const double> values,
                               std::size_t rows,
                               const InferenceFn& on_inference) {
  const std::size_t np = r_.rows();
  if (values.size() != rows * np) {
    throw std::invalid_argument("observe_block size != rows * paths");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    obs::Span tick_span(obs_ ? obs_->registry : nullptr,
                        obs_ ? obs_->tick_phase : 0);
    const auto inference = observe(values.subspan(r * np, np));
    if (on_inference && inference) on_inference(ticks_ - 1, *inference);
  }
}

std::optional<LossInference> LiaMonitor::observe(std::span<const double> y) {
  if (y.size() != r_.rows()) {
    throw std::invalid_argument("snapshot size");
  }
  ++ticks_;
  if (churn_) return observe_churn(y);

  const bool streaming = engine_ == MonitorEngine::kStreaming;
  std::optional<LossInference> result;
  if (window_fill() == options_.window) {
    // Window full: (re)learn if due, then diagnose this snapshot using the
    // PRECEDING window only (the paper's m-then-(m+1) split).
    if (!lia_.trained() || ++since_learn_ >= options_.relearn_every) {
      obs::Span solve_span(obs_ ? obs_->registry : nullptr,
                           obs_ ? obs_->solve_phase : 0);
      if (streaming) {
        const stats::CovarianceSource& source =
            pair_accumulator_
                ? static_cast<const stats::CovarianceSource&>(
                      *pair_accumulator_)
                : *accumulator_;
        equations_->refresh(source);
        lia_.adopt(equations_->solve());
      } else {
        relearn_batch();
      }
      since_learn_ = 0;
    }
    result = lia_.infer(y);
  }
  // Every snapshot enters the window — also between relearns — so a
  // delayed relearn sees the full intermediate history.
  {
    obs::Span accumulate_span(obs_ ? obs_->registry : nullptr,
                              obs_ ? obs_->accumulate_phase : 0);
    push_snapshot(y);
  }
  publish_telemetry();
  return result;
}

void LiaMonitor::save_state(io::CheckpointWriter& writer) const {
  writer.begin_section(io::tags::kMonitor);
  // Configuration fingerprint — everything a divergent restore target
  // could silently disagree on.
  writer.usize(options_.window);
  writer.usize(options_.relearn_every);
  writer.u8(static_cast<std::uint8_t>(engine_));
  writer.u8(static_cast<std::uint8_t>(options_.accumulator));
  writer.boolean(options_.lia.variance.negatives ==
                 NegativeCovariancePolicy::kDrop);
  writer.usize(options_.refresh_every);
  writer.usize(options_.shards);
  // The grown routing matrix (the initial rows are its prefix).
  writer.usize(r_.cols());
  writer.usize(r_.rows());
  for (std::size_t i = 0; i < r_.rows(); ++i) writer.u32s(r_.row(i));
  writer.usize(ticks_);
  writer.usize(since_learn_);
  writer.boolean(churn_);
  writer.u8s(active_);
  writer.sizes(activated_tick_);
  writer.boolean(lia_.trained());
  if (lia_.trained()) save_estimate(writer, lia_.variances());
  writer.boolean(churn_variance_.has_value());
  if (churn_variance_) save_estimate(writer, *churn_variance_);
  if (engine_ == MonitorEngine::kStreaming) {
    const bool shared_store = store_ != nullptr;
    if (shared_store) store_->save_state(writer);
    if (pair_accumulator_) {
      pair_accumulator_->save_state(writer);
    } else {
      accumulator_->save_state(writer);
    }
    equations_->save_state(writer, shared_store);
  } else {
    writer.usize(window_.size());
    for (const auto& y : window_) writer.doubles(y);
  }
  writer.end_section();
}

void LiaMonitor::restore_state(io::CheckpointReader& reader) {
  reader.expect_section(io::tags::kMonitor);
  const std::size_t window = reader.usize();
  const std::size_t relearn_every = reader.usize();
  const auto engine = static_cast<MonitorEngine>(reader.u8());
  const auto accumulator = static_cast<CovarianceAccumulator>(reader.u8());
  const bool drop_negative = reader.boolean();
  const std::size_t refresh_every = reader.usize();
  const std::size_t shards = reader.usize();
  if (window != options_.window || relearn_every != options_.relearn_every ||
      engine != engine_ || accumulator != options_.accumulator ||
      drop_negative != (options_.lia.variance.negatives ==
                        NegativeCovariancePolicy::kDrop) ||
      refresh_every != options_.refresh_every || shards != options_.shards) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "monitor configuration differs from the checkpointed one");
  }
  // Rebuild the grown routing matrix and verify the constructed monitor's
  // initial routing is its prefix.
  const std::size_t cols = reader.usize();
  const std::size_t nrows = reader.usize();
  if (nrows > reader.remaining() / 8) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "routing row count exceeds the payload");
  }
  std::vector<std::vector<std::uint32_t>> rows(nrows);
  for (auto& row : rows) {
    const std::vector<std::uint32_t> links = reader.u32s();
    row.assign(links.begin(), links.end());
  }
  if (cols < r_.cols() || nrows < r_.rows()) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "checkpointed routing matrix is smaller than the monitor's");
  }
  std::optional<linalg::SparseBinaryMatrix> new_r;
  try {
    new_r.emplace(cols, std::move(rows));
  } catch (const std::exception& e) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              std::string("routing matrix: ") + e.what());
  }
  for (std::size_t i = 0; i < r_.rows(); ++i) {
    const auto mine = r_.row(i);
    const auto theirs = new_r->row(i);
    if (!std::equal(mine.begin(), mine.end(), theirs.begin(), theirs.end())) {
      throw io::CheckpointError(
          io::CheckpointErrorKind::kMismatch,
          "checkpointed routing does not extend the monitor's routing");
    }
  }
  const std::size_t ticks = reader.usize();
  const std::size_t since_learn = reader.usize();
  const bool churn = reader.boolean();
  std::vector<std::uint8_t> active = reader.u8s();
  std::vector<std::size_t> activated_tick = reader.sizes();
  if (active.size() != nrows || activated_tick.size() != nrows) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "activation ledger size != path count");
  }
  std::optional<VarianceEstimate> lia_estimate;
  if (reader.boolean()) lia_estimate = restore_estimate(reader);
  if (lia_estimate && lia_estimate->v.size() != lia_.routing().cols()) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "adopted variance estimate has wrong size");
  }
  std::optional<VarianceEstimate> churn_estimate;
  if (reader.boolean()) churn_estimate = restore_estimate(reader);
  if (churn_estimate && churn_estimate->v.size() != cols) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "churn variance estimate has wrong size");
  }

  // Reconstruct the engine stack over the restored routing, restore its
  // serialized state into the fresh objects, and only then commit.
  std::shared_ptr<SharingPairStore> store;
  std::optional<stats::StreamingMoments> acc;
  std::unique_ptr<PairIndexedSource> pair_acc;
  std::optional<StreamingNormalEquations> equations;
  std::deque<linalg::Vector> batch_window;
  if (engine_ == MonitorEngine::kStreaming) {
    const stats::StreamingMomentsOptions accumulator_options{
        .window = options_.window,
        .refresh_every = options_.refresh_every,
        .threads = options_.lia.variance.threads};
    if (options_.accumulator == CovarianceAccumulator::kSharingPairs) {
      store = std::make_shared<SharingPairStore>();
      store->restore_state(reader);
      if (store->path_count() != nrows) {
        throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                                  "pair store path count != routing rows");
      }
      if (options_.shards > 0) {
        pair_acc = std::make_unique<ShardedPairMoments>(
            store, *new_r, options_.shards, accumulator_options,
            options_.partition);
      } else {
        pair_acc =
            std::make_unique<PairMoments>(store, nrows, accumulator_options);
      }
      pair_acc->restore_state(reader);
      equations.emplace(*new_r, options_.lia.variance, store);
      equations->restore_state(reader, store);
    } else {
      acc.emplace(nrows, accumulator_options);
      acc->restore_state(reader);
      equations.emplace(*new_r, options_.lia.variance);
      equations->restore_state(reader, nullptr);
    }
  } else {
    const std::size_t stored = reader.usize();
    if (stored > options_.window) {
      throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                                "batch window larger than configured");
    }
    for (std::size_t l = 0; l < stored; ++l) {
      batch_window.emplace_back(reader.doubles());
      if (batch_window.back().size() != nrows) {
        throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                                  "batch window snapshot has wrong size");
      }
    }
  }
  reader.end_section();

  // Commit (non-throwing moves), then recompute the derived Phase-2 state.
  r_ = std::move(*new_r);
  ticks_ = ticks;
  since_learn_ = since_learn;
  churn_ = churn;
  active_ = std::move(active);
  activated_tick_ = std::move(activated_tick);
  active_dirty_ = true;
  active_rows_.clear();
  active_r_.reset();
  window_ = std::move(batch_window);
  store_ = std::move(store);
  accumulator_ = std::move(acc);
  pair_accumulator_ = std::move(pair_acc);
  equations_ = std::move(equations);
  if (lia_estimate) lia_.adopt(std::move(*lia_estimate));
  if (churn_ && churn_estimate) {
    churn_variance_ = std::move(churn_estimate);
    rebuild_active();
    churn_elimination_ = eliminate_low_variance_links(
        *active_r_, churn_variance_->v, options_.lia.elimination);
  } else {
    churn_variance_.reset();
    churn_elimination_.reset();
  }
  if (obs_) {
    // The engine stack was rebuilt: re-attach the sharded gather's merge
    // span, drop a marker, and republish from the restored state.
    if (auto* sharded =
            dynamic_cast<ShardedPairMoments*>(pair_accumulator_.get())) {
      sharded->set_telemetry(obs_->registry);
    }
    obs_->registry->note("monitor.restore");
    publish_telemetry();
  }
}

}  // namespace losstomo::core
