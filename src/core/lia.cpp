#include "core/lia.hpp"

#include <stdexcept>

namespace losstomo::core {

Lia::Lia(const linalg::SparseBinaryMatrix& r, LiaOptions options)
    : r_(r), options_(options) {}

const VarianceEstimate& Lia::learn(const stats::SnapshotMatrix& history) {
  variance_ = estimate_link_variances(r_, history, options_.variance);
  elimination_ =
      eliminate_low_variance_links(r_, variance_->v, options_.elimination);
  return *variance_;
}

const VarianceEstimate& Lia::learn_from_variances(linalg::Vector variances) {
  VarianceEstimate est;
  est.v = std::move(variances);
  est.method = "external";
  variance_ = std::move(est);
  elimination_ =
      eliminate_low_variance_links(r_, variance_->v, options_.elimination);
  return *variance_;
}

LossInference Lia::infer(std::span<const double> y) const {
  if (!elimination_) throw std::logic_error("Lia::infer before learn");
  return infer_snapshot_losses(r_, *elimination_, y);
}

const VarianceEstimate& Lia::variances() const {
  if (!variance_) throw std::logic_error("variances unavailable before learn");
  return *variance_;
}

const Elimination& Lia::elimination() const {
  if (!elimination_) {
    throw std::logic_error("elimination unavailable before learn");
  }
  return *elimination_;
}

}  // namespace losstomo::core
