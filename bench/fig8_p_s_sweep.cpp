// Figure 8: LIA accuracy under (a) varying fraction of congested links p
// (5-25%, S = 1000) and (b) varying probes per snapshot S (50-1000,
// p = 10%), on the PlanetLab-like overlay with m = 50 snapshots.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace losstomo;
  const util::Args args(argc, argv);
  const bool full = util::Args::full_scale();
  const double scale = args.get_double("scale", full ? 0.5 : 0.15);
  const auto m = args.get_size("m", 50);
  const auto runs = args.get_size("runs", full ? 10 : 3);
  const auto seed = args.get_size("seed", 23);
  const auto ps = args.get_doubles("p", {0.05, 0.10, 0.15, 0.20, 0.25});
  const auto ss = args.get_ints("S", {50, 200, 400, 600, 800, 1000});
  args.finish();

  std::cout << "Figure 8: accuracy vs p and vs S (PlanetLab-like, scale="
            << scale << ", m=" << m << ", runs=" << runs << ")\n\n";

  stats::Rng topo_rng(seed);
  const auto inst = bench::from_topology(
      topology::make_planetlab_like_scaled(scale, topo_rng), "PlanetLab");
  std::cout << "topology: np=" << inst.matrix().path_count()
            << " nc=" << inst.matrix().link_count() << "\n\n";

  std::cout << "(a) sweep over percentage of congested links (S = 1000)\n";
  util::Table pa({"p", "DR", "FPR"});
  for (const double p : ps) {
    sim::ScenarioConfig config;
    config.p = p;
    stats::RunningStat dr, fpr;
    for (std::size_t run = 0; run < runs; ++run) {
      const auto outcome =
          bench::run_pipeline(inst, config, m, seed * 100 + run);
      dr.add(outcome.lia.dr);
      fpr.add(outcome.lia.fpr);
    }
    pa.add_row({util::Table::pct(p, 0), util::Table::num(dr.mean(), 4),
                util::Table::num(fpr.mean(), 4)});
  }
  pa.print(std::cout);

  std::cout << "\n(b) sweep over probes per snapshot (p = 10%)\n";
  util::Table pb({"S", "DR", "FPR"});
  for (const int s : ss) {
    sim::ScenarioConfig config;
    config.p = 0.1;
    config.probes_per_snapshot = static_cast<std::size_t>(s);
    stats::RunningStat dr, fpr;
    for (std::size_t run = 0; run < runs; ++run) {
      const auto outcome =
          bench::run_pipeline(inst, config, m, seed * 200 + run);
      dr.add(outcome.lia.dr);
      fpr.add(outcome.lia.fpr);
    }
    pb.add_row({std::to_string(s), util::Table::num(dr.mean(), 4),
                util::Table::num(fpr.mean(), 4)});
  }
  pb.print(std::cout);
  std::cout << "\nExpected shape (paper): accuracy degrades as p grows (more "
               "congested links risk eviction in Phase 2); the impact of S "
               "is visible but less severe.\n";
  return 0;
}
