#include "topology/routing.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/routing_matrix.hpp"
#include "topology/generators.hpp"
#include "topology/overlay.hpp"

namespace losstomo::topology {
namespace {

net::Graph diamond() {
  // 0 -> {1,2} -> 3, all bidirectional.
  net::Graph g(4);
  g.add_bidirectional(0, 1);
  g.add_bidirectional(0, 2);
  g.add_bidirectional(1, 3);
  g.add_bidirectional(2, 3);
  return g;
}

TEST(NextHop, ReachesDestination) {
  const auto g = diamond();
  const auto next = next_hop_toward(g, 3);
  // Every node except 3 has a next hop.
  for (net::NodeId v = 0; v < 4; ++v) {
    if (v == 3) continue;
    ASSERT_NE(next[v], net::kNoAs) << "node " << v;
    // Next hop edges reduce distance (hop from v leads toward 3).
  }
}

TEST(NextHop, DeterministicTieBreak) {
  const auto g = diamond();
  const auto n1 = next_hop_toward(g, 3);
  const auto n2 = next_hop_toward(g, 3);
  EXPECT_EQ(n1, n2);
}

TEST(NextHop, UnreachableMarked) {
  net::Graph g(3);
  g.add_edge(0, 1);  // directed only; 2 isolated
  const auto next = next_hop_toward(g, 2);
  EXPECT_EQ(next[0], net::kNoAs);
  EXPECT_EQ(next[1], net::kNoAs);
}

TEST(RoutePaths, AllPairsRouted) {
  const auto g = diamond();
  const auto result = route_paths(g, {0, 3}, {0, 3});
  EXPECT_EQ(result.paths.size(), 2u);  // 0->3 and 3->0
  EXPECT_EQ(result.unreachable_pairs, 0u);
  for (const auto& p : result.paths) net::validate_path(g, p);
}

TEST(RoutePaths, PathsAreShortest) {
  const auto g = diamond();
  const auto result = route_paths(g, {0}, {3});
  ASSERT_EQ(result.paths.size(), 1u);
  EXPECT_EQ(result.paths[0].length(), 2u);
}

TEST(RoutePaths, SkipsSelfPairs) {
  const auto g = diamond();
  const auto result = route_paths(g, {0, 1}, {0, 1});
  EXPECT_EQ(result.paths.size(), 2u);
}

TEST(RoutePaths, CountsUnreachable) {
  net::Graph g(3);
  g.add_bidirectional(0, 1);  // 2 isolated
  const auto result = route_paths(g, {0}, {1, 2});
  EXPECT_EQ(result.paths.size(), 1u);
  EXPECT_EQ(result.unreachable_pairs, 1u);
}

TEST(RoutePaths, DestinationBasedMerging) {
  // Paths from different beacons to one destination must merge: once they
  // share a node they share the remaining suffix.
  stats::Rng rng(21);
  const auto topo = make_waxman({.nodes = 80, .links_per_node = 2}, rng);
  const auto hosts = pick_low_degree_hosts(topo.graph, 10);
  const auto result = route_paths(topo.graph, hosts, {hosts[0]},
                                  {.sanitize_fluttering = false});
  const auto next = next_hop_toward(topo.graph, hosts[0]);
  for (const auto& p : result.paths) {
    net::NodeId at = p.source;
    for (const auto e : p.edges) {
      EXPECT_EQ(e, next[at]);  // every hop follows the destination tree
      at = topo.graph.edge(e).to;
    }
  }
}

TEST(RoutePaths, SanitizedSetHasNoFluttering) {
  stats::Rng rng(22);
  const auto topo = make_planetlab_like(
      {.hosts = 12, .as_count = 6, .routers_per_as = 6}, rng);
  const auto result = route_paths(topo.graph, topo.hosts, topo.hosts);
  EXPECT_TRUE(net::detect_fluttering(result.paths).empty());
}

TEST(Overlay, PlanetlabLikeShape) {
  stats::Rng rng(23);
  const auto topo = make_planetlab_like(
      {.hosts = 20, .as_count = 8, .routers_per_as = 6}, rng);
  EXPECT_EQ(topo.hosts.size(), 20u);
  EXPECT_EQ(topo.graph.node_count(), 8u * 6u + 20u);
  // Hosts have exactly one access link (degree 2: out + in).
  for (const auto h : topo.hosts) {
    EXPECT_EQ(topo.graph.out_degree(h), 1u);
    EXPECT_EQ(topo.graph.in_degree(h), 1u);
    EXPECT_NE(topo.graph.as_of(h), net::kNoAs);
  }
}

TEST(Overlay, HostsAvoidTransitAses) {
  stats::Rng rng(24);
  const OverlayConfig config{.hosts = 30, .as_count = 10, .routers_per_as = 6,
                             .transit_fraction = 0.3};
  const auto topo = make_planetlab_like(config, rng);
  // Count distinct host ASes; must be at most the stub count (10 - 3).
  std::set<std::uint32_t> host_ases;
  for (const auto h : topo.hosts) host_ases.insert(topo.graph.as_of(h));
  EXPECT_LE(host_ases.size(), 7u);
}

TEST(Overlay, DimesLikeIsLargerThanPlanetlabLike) {
  stats::Rng rng1(25), rng2(25);
  const auto pl = make_planetlab_like_scaled(0.05, rng1);
  const auto dimes = make_dimes_like_scaled(0.05, rng2);
  EXPECT_GT(dimes.hosts.size(), pl.hosts.size());
  EXPECT_GT(dimes.graph.node_count(), 0u);
}

TEST(Overlay, RoutedOverlayYieldsUsableMatrix) {
  stats::Rng rng(26);
  const auto topo = make_planetlab_like(
      {.hosts = 10, .as_count = 5, .routers_per_as = 5}, rng);
  const auto routed = route_paths(topo.graph, topo.hosts, topo.hosts);
  ASSERT_GT(routed.paths.size(), 0u);
  const net::ReducedRoutingMatrix rrm(topo.graph, routed.paths);
  EXPECT_GT(rrm.link_count(), 0u);
  EXPECT_EQ(rrm.path_count(), routed.paths.size());
}

}  // namespace
}  // namespace losstomo::topology
