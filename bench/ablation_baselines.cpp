// Ablation: LIA against both related-work baselines from the paper's
// Table 1 lineage — SCFS (single snapshot, uniform prior; Duffield 2006)
// and CLINK (multiple snapshots, learned congestion priors, binary data;
// Nguyen & Thiran 2007).  All three consume the same measurements; only
// LIA exploits second-order statistics, and only LIA outputs *rates*.
#include "common.hpp"

#include "baselines/clink.hpp"

int main(int argc, char** argv) {
  using namespace losstomo;
  const util::Args args(argc, argv);
  const bool full = util::Args::full_scale();
  const auto nodes = args.get_size("nodes", full ? 1000 : 400);
  const auto m = args.get_size("m", 50);
  const double p = args.get_double("p", 0.1);
  const auto runs = args.get_size("runs", full ? 10 : 4);
  const auto seed = args.get_size("seed", 67);
  args.finish();

  std::cout << "Ablation: LIA vs SCFS vs CLINK on the tree (nodes=" << nodes
            << ", m=" << m << ", p=" << p << ", runs=" << runs << ")\n\n";

  sim::ScenarioConfig config;
  config.p = p;
  const double tl = config.loss_model.threshold_tl;

  stats::RunningStat lia_dr, lia_fpr, scfs_dr, scfs_fpr, clink_dr, clink_fpr;
  for (std::size_t run = 0; run < runs; ++run) {
    const auto inst = bench::make_tree_instance(nodes, 10, seed + run);
    const auto& rrm = inst.matrix();
    sim::SnapshotSimulator simulator(inst.graph, rrm, config,
                                     seed * 23 + run);
    auto series = sim::run_snapshots(simulator, m + 1);

    // Shared inputs.
    stats::SnapshotMatrix history(rrm.path_count(), m);
    std::vector<std::vector<bool>> binary_history;
    const auto lengths = baselines::path_lengths(rrm.matrix());
    for (std::size_t l = 0; l < m; ++l) {
      const auto& snap = series.snapshots[l];
      std::copy(snap.path_log_trans.begin(), snap.path_log_trans.end(),
                history.sample(l).begin());
      binary_history.push_back(
          baselines::binarize_paths(snap.path_trans, lengths, tl));
    }
    const auto& current = series.snapshots[m];
    const auto current_bad =
        baselines::binarize_paths(current.path_trans, lengths, tl);

    // LIA.
    core::Lia lia(rrm.matrix());
    lia.learn(history);
    const auto inference = lia.infer(current.path_log_trans);
    const auto acc_lia =
        core::locate_congested(inference.loss, current.link_congested, tl);
    lia_dr.add(acc_lia.dr);
    lia_fpr.add(acc_lia.fpr);

    // SCFS.
    const auto acc_scfs = core::locate_congested(
        baselines::scfs_tree(rrm, current_bad), current.link_congested);
    scfs_dr.add(acc_scfs.dr);
    scfs_fpr.add(acc_scfs.fpr);

    // CLINK.
    const auto model = baselines::clink_learn(rrm.matrix(), binary_history);
    const auto acc_clink = core::locate_congested(
        baselines::clink_locate(rrm.matrix(), model, current_bad),
        current.link_congested);
    clink_dr.add(acc_clink.dr);
    clink_fpr.add(acc_clink.fpr);
  }

  util::Table table({"algorithm", "data used", "DR", "FPR", "outputs rates?"});
  table.add_row({"SCFS", "1 snapshot, binary", util::Table::num(scfs_dr.mean(), 4),
                 util::Table::num(scfs_fpr.mean(), 4), "no"});
  table.add_row({"CLINK", "m snapshots, binary",
                 util::Table::num(clink_dr.mean(), 4),
                 util::Table::num(clink_fpr.mean(), 4), "no"});
  table.add_row({"LIA", "m snapshots, 2nd-order",
                 util::Table::num(lia_dr.mean(), 4),
                 util::Table::num(lia_fpr.mean(), 4), "yes"});
  table.print(std::cout);
  std::cout << "\nExpected shape: LIA clearly beats both binary baselines on "
               "DR while additionally producing per-link loss rates (the "
               "paper's headline).  Under §6's static congestion CLINK's "
               "learned priors track the truth but binary data still cannot "
               "see a congested link hiding below another congested link — "
               "that is precisely what second-order statistics unlock.\n";
  return 0;
}
