#include "core/sharded_monitor.hpp"

#include <stdexcept>
#include <utility>

#include "core/variance_estimator.hpp"

namespace losstomo::core {

namespace {

MonitorOptions sharded_options(std::size_t shards, MonitorOptions options) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedMonitor needs shards >= 1");
  }
  if (options.lia.variance.method == VarianceMethod::kDenseQr) {
    throw std::invalid_argument(
        "ShardedMonitor cannot run kDenseQr (it forces the batch engine)");
  }
  options.engine = MonitorEngine::kStreaming;
  options.accumulator = CovarianceAccumulator::kSharingPairs;
  options.lia.variance.negatives = NegativeCovariancePolicy::kDrop;
  options.shards = shards;
  return options;
}

}  // namespace

ShardedMonitor::ShardedMonitor(linalg::SparseBinaryMatrix r,
                               std::size_t shards, MonitorOptions options)
    : monitor_(std::move(r), sharded_options(shards, std::move(options))) {}

}  // namespace losstomo::core
