#include "scenario/spec.hpp"

#include <algorithm>
#include <stdexcept>

namespace losstomo::scenario {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kPathJoin:
      return "join";
    case EventType::kPathLeave:
      return "leave";
    case EventType::kRouteChange:
      return "reroute";
    case EventType::kLinkDown:
      return "link_down";
    case EventType::kLinkUp:
      return "link_up";
    case EventType::kRegimeShift:
      return "regime";
    case EventType::kGrow:
      return "grow";
    case EventType::kGrowLinks:
      return "grow_links";
    case EventType::kCheckpoint:
      return "checkpoint";
    case EventType::kRestore:
      return "restore";
    case EventType::kHandoff:
      return "handoff";
  }
  return "?";
}

const char* topology_kind_name(TopologySpec::Kind kind) {
  switch (kind) {
    case TopologySpec::Kind::kTree:
      return "tree";
    case TopologySpec::Kind::kMesh:
      return "mesh";
    case TopologySpec::Kind::kOverlay:
      return "overlay";
    case TopologySpec::Kind::kBranchingTree:
      return "branching_tree";
  }
  return "?";
}

EventTimeline::EventTimeline(std::vector<Event> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.tick < b.tick; });
}

std::span<const Event> EventTimeline::at(std::size_t tick) const {
  const auto begin = std::partition_point(
      events_.begin(), events_.end(),
      [&](const Event& e) { return e.tick < tick; });
  if (begin == events_.end() || begin->tick != tick) return {};
  auto end = begin;
  while (end != events_.end() && end->tick == tick) ++end;
  return {&*begin, static_cast<std::size_t>(end - begin)};
}

std::size_t EventTimeline::count(EventType type) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += e.type == type;
  return n;
}

void ScenarioSpec::validate() const {
  if (window < 2) throw std::invalid_argument("scenario window must be >= 2");
  if (ticks <= window) {
    throw std::invalid_argument(
        "scenario ticks must exceed the window (nothing would be diagnosed)");
  }
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("scenario p out of [0,1]");
  if (probes == 0) throw std::invalid_argument("scenario probes must be >= 1");
  if (down_loss < 0.0 || down_loss >= 1.0) {
    throw std::invalid_argument("scenario down_loss out of [0,1)");
  }
  if (min_good_loss < 0.0 || min_good_loss >= 1.0) {
    throw std::invalid_argument("scenario min_good_loss out of [0,1)");
  }
  for (const auto& e : events) {
    if (e.tick >= ticks) {
      throw std::invalid_argument("event tick beyond scenario end");
    }
    switch (e.type) {
      case EventType::kRegimeShift:
        if (e.value < 0.0 || e.value > 1.0) {
          throw std::invalid_argument("regime event p out of [0,1]");
        }
        break;
      case EventType::kLinkDown:
        if (e.value < 0.0 || e.value >= 1.0) {
          throw std::invalid_argument("link_down loss out of [0,1)");
        }
        break;
      case EventType::kGrow:
      case EventType::kGrowLinks:
        if (e.count == 0) {
          throw std::invalid_argument("grow event needs count >= 1");
        }
        break;
      case EventType::kCheckpoint:
      case EventType::kRestore:
        if (e.file.empty()) {
          throw std::invalid_argument(
              "checkpoint/restore event needs a file path");
        }
        break;
      default:
        break;
    }
  }
}

}  // namespace losstomo::scenario
