#include "net/path.hpp"

#include <map>
#include <set>
#include <stdexcept>

namespace losstomo::net {

void validate_path(const Graph& g, const Path& path) {
  if (path.edges.empty()) throw std::invalid_argument("empty path");
  NodeId at = path.source;
  std::set<NodeId> visited{at};
  for (const auto e : path.edges) {
    const auto& ed = g.edge(e);
    if (ed.from != at) throw std::invalid_argument("discontinuous path");
    at = ed.to;
    if (!visited.insert(at).second) {
      throw std::invalid_argument("path revisits a node");
    }
  }
  if (at != path.destination) {
    throw std::invalid_argument("path does not end at destination");
  }
}

bool paths_form_tree(const Graph& g, const std::vector<Path>& paths) {
  // Each node reached by any path must be reached through a unique parent
  // edge; a second distinct parent edge means two paths from the beacon
  // reach the node along different routes (not a tree).
  std::map<NodeId, EdgeId> parent;
  for (const auto& path : paths) {
    for (const auto e : path.edges) {
      const NodeId child = g.edge(e).to;
      const auto [it, inserted] = parent.emplace(child, e);
      if (!inserted && it->second != e) return false;
    }
  }
  return true;
}

}  // namespace losstomo::net
