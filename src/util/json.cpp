#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace losstomo::util::json {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

std::string escaped(std::string_view s) {
  std::string out = "\"";
  append_escaped(out, s);
  return out + "\"";
}

std::string number(double value, int precision) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream os;
  os.precision(precision);
  os << value;
  return os.str();
}

void Writer::newline_indent() {
  if (!stack_.empty() && stack_.back().compact) {
    if (!stack_.back().empty) *out_ << ' ';
    return;
  }
  *out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) *out_ << "  ";
}

void Writer::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (!stack_.back().array) {
    throw std::logic_error("json: value inside an object needs a key");
  }
  if (!stack_.back().empty) *out_ << ',';
  newline_indent();
  stack_.back().empty = false;
}

Writer& Writer::begin_object(bool compact) {
  before_value();
  // Nested containers of a compact container stay on its line.
  if (!stack_.empty() && stack_.back().compact) compact = true;
  stack_.push_back({.array = false, .compact = compact});
  *out_ << '{';
  return *this;
}

Writer& Writer::end_object() {
  if (stack_.empty() || stack_.back().array || after_key_) {
    throw std::logic_error("json: mismatched end_object");
  }
  const Level level = stack_.back();
  stack_.pop_back();
  if (!level.empty) {
    if (level.compact) {
      *out_ << ' ';
    } else {
      *out_ << '\n';
      for (std::size_t i = 0; i < stack_.size(); ++i) *out_ << "  ";
    }
  }
  *out_ << '}';
  return *this;
}

Writer& Writer::begin_array(bool compact) {
  before_value();
  if (!stack_.empty() && stack_.back().compact) compact = true;
  stack_.push_back({.array = true, .compact = compact});
  *out_ << '[';
  return *this;
}

Writer& Writer::end_array() {
  if (stack_.empty() || !stack_.back().array || after_key_) {
    throw std::logic_error("json: mismatched end_array");
  }
  const Level level = stack_.back();
  stack_.pop_back();
  if (!level.empty) {
    if (level.compact) {
      *out_ << ' ';
    } else {
      *out_ << '\n';
      for (std::size_t i = 0; i < stack_.size(); ++i) *out_ << "  ";
    }
  }
  *out_ << ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  if (stack_.empty() || stack_.back().array || after_key_) {
    throw std::logic_error("json: key outside an object");
  }
  if (!stack_.back().empty) *out_ << ',';
  newline_indent();
  stack_.back().empty = false;
  *out_ << escaped(k) << ": ";
  after_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) { return value_raw(escaped(v)); }

Writer& Writer::value(double v) { return value_raw(number(v)); }

Writer& Writer::value(std::uint64_t v) {
  return value_raw(std::to_string(v));
}

Writer& Writer::value(std::int64_t v) { return value_raw(std::to_string(v)); }

Writer& Writer::value(bool v) { return value_raw(v ? "true" : "false"); }

Writer& Writer::null() { return value_raw("null"); }

Writer& Writer::value_raw(std::string_view token) {
  before_value();
  *out_ << token;
  return *this;
}

void Writer::finish() {
  if (!stack_.empty() || after_key_) {
    throw std::logic_error("json: finish() on an unbalanced document");
  }
  *out_ << '\n';
}

}  // namespace losstomo::util::json
