// Ablation: Phase-2 column-elimination policy (beyond-the-paper analysis).
//
// The paper's loop removes the lowest-variance columns until R* has full
// column rank — equivalently, it keeps the maximal *suffix* of the
// variance ordering that is linearly independent.  When a dependence
// involves high-variance (congested) columns, that policy evicts every
// column below the dependence point, including independent congested ones
// ("some of the congested links can form a linearly dependent set", §5.2).
// The greedy alternative keeps scanning past the first dependent column
// and admits any later column that is independent of the kept set: R*
// still has full column rank, but strictly more congested links survive.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace losstomo;
  const util::Args args(argc, argv);
  const bool full = util::Args::full_scale();
  const double scale = args.get_double("scale", full ? 0.5 : 0.25);
  const auto m = args.get_size("m", 50);
  const double p = args.get_double("p", 0.1);
  const auto runs = args.get_size("runs", full ? 6 : 3);
  const auto seed = args.get_size("seed", 61);
  args.finish();

  std::cout << "Ablation: Phase-2 elimination policy (scale=" << scale
            << ", m=" << m << ", p=" << p << ", runs=" << runs << ")\n\n";

  struct Variant {
    std::string name;
    bool stop_at_first;
  };
  const std::vector<Variant> variants = {
      {"minimal-suffix removal (paper)", true},
      {"greedy independent set", false},
  };

  util::Table table({"Topology", "policy", "DR", "FPR", "kept cols",
                     "evicted congested"});
  auto instances = bench::table2_instances(scale, seed);
  for (const auto& inst : instances) {
    for (const auto& variant : variants) {
      core::LiaOptions options;
      options.elimination.stop_at_first_dependence = variant.stop_at_first;
      sim::ScenarioConfig config;
      config.p = p;
      stats::RunningStat dr, fpr, kept, evicted;
      for (std::size_t run = 0; run < runs; ++run) {
        const auto outcome = bench::run_pipeline(
            inst, config, m, seed * 100 + run, false, options);
        dr.add(outcome.lia.dr);
        fpr.add(outcome.lia.fpr);
        kept.add(static_cast<double>(outcome.kept_columns));
        evicted.add(static_cast<double>(outcome.congested_evicted));
      }
      table.add_row({inst.name, variant.name, util::Table::num(dr.mean(), 4),
                     util::Table::num(fpr.mean(), 4),
                     util::Table::num(kept.mean(), 1),
                     util::Table::num(evicted.mean(), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: greedy admission keeps far more columns "
               "and evicts fewer congested links (DR ticks up), but the "
               "extra kept good links absorb sampling noise and the FPR "
               "explodes.  The paper's aggressive minimal-suffix removal "
               "doubles as regularization — eliminating quiet links to "
               "exactly zero is what keeps the diagnosis clean.\n";
  return 0;
}
