// Figure 5: accuracy of LIA vs SCFS in locating congested links on a random
// tree (paper §6.1: 1000 nodes, max branching 10, p = 10%, S = 1000),
// sweeping the number of learning snapshots m.  Prints DR and FPR series
// for both algorithms.
#include "common.hpp"

#include "stats/moments.hpp"

int main(int argc, char** argv) {
  using namespace losstomo;
  const util::Args args(argc, argv);
  const bool full = util::Args::full_scale();
  const auto nodes = args.get_size("nodes", full ? 1000 : 400);
  const auto branching = args.get_size("branching", 10);
  const auto s = args.get_size("S", full ? 1000 : 1000);
  const double p = args.get_double("p", 0.1);
  const auto runs = args.get_size("runs", full ? 10 : 4);
  const auto ms = args.get_ints("m", {10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  const auto seed = args.get_size("seed", 42);
  args.finish();

  std::cout << "Figure 5: congested-link location on a tree (nodes=" << nodes
            << ", branching<=" << branching << ", p=" << p << ", S=" << s
            << ", runs=" << runs << ")\n\n";

  sim::ScenarioConfig config;
  config.p = p;
  config.probes_per_snapshot = s;

  util::Table table({"m", "LIA DR", "LIA FPR", "SCFS DR", "SCFS FPR"});
  for (const int m : ms) {
    stats::RunningStat lia_dr, lia_fpr, scfs_dr, scfs_fpr;
    for (std::size_t run = 0; run < runs; ++run) {
      const auto inst =
          bench::make_tree_instance(nodes, branching, seed + run);
      const auto outcome = bench::run_pipeline(
          inst, config, static_cast<std::size_t>(m), seed * 1000 + run, true);
      lia_dr.add(outcome.lia.dr);
      lia_fpr.add(outcome.lia.fpr);
      scfs_dr.add(outcome.scfs.dr);
      scfs_fpr.add(outcome.scfs.fpr);
    }
    table.add_row({std::to_string(m), util::Table::num(lia_dr.mean(), 4),
                   util::Table::num(lia_fpr.mean(), 4),
                   util::Table::num(scfs_dr.mean(), 4),
                   util::Table::num(scfs_fpr.mean(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): LIA DR well above SCFS DR at every m;"
               "\nLIA improves with m; SCFS is flat (single-snapshot method).\n";
  return 0;
}
