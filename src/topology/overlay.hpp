// Synthetic overlay monitoring topologies standing in for the paper's
// measured PlanetLab (§6.2, §7) and DIMES (§6.2) datasets.
//
// The real datasets are traceroute-derived router graphs with end-hosts at
// the edge.  We synthesize the same structure: a hierarchical transit/stub
// core (AS-annotated) with end-hosts attached to stub-AS routers via access
// links.  Hosts act as both beacons and probing destinations, exactly as in
// the paper ("In all simulations, the end-hosts are both beacons and
// probing destinations").  See DESIGN.md §4 for the substitution rationale.
#pragma once

#include "stats/rng.hpp"
#include "topology/generators.hpp"

namespace losstomo::topology {

struct OverlayConfig {
  std::size_t hosts = 60;
  std::size_t as_count = 24;
  std::size_t routers_per_as = 12;
  std::size_t as_links_per_node = 2;
  std::size_t router_links_per_node = 2;
  /// Fraction of ASes (the best-connected ones) treated as transit-only:
  /// hosts attach only to the remaining stub ASes.
  double transit_fraction = 0.25;
};

/// PlanetLab-flavoured overlay: moderate size, hosts concentrated on a few
/// hundred research-network stubs (several hosts may share a stub AS).
Topology make_planetlab_like(const OverlayConfig& config, stats::Rng& rng);

/// Convenience: paper-shaped PlanetLab-like defaults scaled by `scale`
/// in (0, 1]; scale=1 approximates the paper's 500-beacon topology.
Topology make_planetlab_like_scaled(double scale, stats::Rng& rng);

/// DIMES-flavoured overlay: more ASes, smaller router pockets, hosts spread
/// across many commercial edge ASes with higher degree variance.
Topology make_dimes_like_scaled(double scale, stats::Rng& rng);

}  // namespace losstomo::topology
