#!/usr/bin/env python3
"""Validate a losstomo.metrics JSON snapshot (obs::Registry::write_json).

Usage:

    python3 tools/check_metrics.py [snapshot.json ...]

With no arguments, validates docs/metrics.example.json (the checked-in
exemplar the docs describe).  Exits non-zero with a per-finding report on
the first structurally invalid file.  No third-party dependencies.

Checked invariants (schema "losstomo.metrics" version 1):
  - top level: schema / schema_version / counters / gauges / histograms,
    plus an optional flight_recorder section;
  - metric names match ^[a-z0-9_.]+$ (the Prometheus exporter relies on
    this to mangle dots);
  - counters carry an unsigned integer "value" and a boolean
    "deterministic"; gauges the same with a numeric (or null) value;
  - histogram buckets are sparse non-cumulative [upper_bound, count]
    pairs with strictly increasing bounds, where a null bound (the +inf
    overflow slot) may only appear last, and the bucket counts sum to
    "count";
  - "min"/"max" are null exactly when the histogram is empty;
  - flight-recorder events carry strictly increasing "seq" values.
"""

import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT = os.path.join(REPO, "docs", "metrics.example.json")

NAME_RE = re.compile(r"^[a-z0-9_.]+$")


def is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_name(name, errors, where):
    if not NAME_RE.match(name):
        errors.append(f"{where}: metric name {name!r} does not match "
                      f"{NAME_RE.pattern}")


def check_scalar_section(section, kind, errors):
    if not isinstance(section, dict):
        errors.append(f"{kind}: section is not an object")
        return
    for name, body in section.items():
        where = f"{kind}[{name}]"
        check_name(name, errors, where)
        if not isinstance(body, dict):
            errors.append(f"{where}: entry is not an object")
            continue
        if not isinstance(body.get("deterministic"), bool):
            errors.append(f"{where}: missing boolean 'deterministic'")
        value = body.get("value")
        if kind == "counters":
            if not is_uint(value):
                errors.append(f"{where}: counter value {value!r} is not an "
                              f"unsigned integer")
        elif value is not None and not is_number(value):
            # Gauges hold doubles; a non-finite value encodes as null.
            errors.append(f"{where}: gauge value {value!r} is not a number "
                          f"or null")


def check_histograms(section, errors):
    if not isinstance(section, dict):
        errors.append("histograms: section is not an object")
        return
    for name, body in section.items():
        where = f"histograms[{name}]"
        check_name(name, errors, where)
        if not isinstance(body, dict):
            errors.append(f"{where}: entry is not an object")
            continue
        if not isinstance(body.get("deterministic"), bool):
            errors.append(f"{where}: missing boolean 'deterministic'")
        count = body.get("count")
        if not is_uint(count):
            errors.append(f"{where}: count {count!r} is not an unsigned "
                          f"integer")
            continue
        if not is_number(body.get("sum")):
            errors.append(f"{where}: sum is not a number")
        for bound in ("min", "max"):
            v = body.get(bound)
            if count == 0 and v is not None:
                errors.append(f"{where}: {bound} must be null when empty")
            if count > 0 and not is_number(v):
                errors.append(f"{where}: {bound} must be a number when "
                              f"count > 0")
        buckets = body.get("buckets")
        if not isinstance(buckets, list):
            errors.append(f"{where}: buckets is not an array")
            continue
        total, last_upper, saw_inf = 0, None, False
        for i, pair in enumerate(buckets):
            slot = f"{where}.buckets[{i}]"
            if (not isinstance(pair, list) or len(pair) != 2
                    or not is_uint(pair[1])):
                errors.append(f"{slot}: expected [upper_bound, count]")
                continue
            upper, n = pair
            if n == 0:
                errors.append(f"{slot}: empty buckets must be elided")
            total += n
            if saw_inf:
                errors.append(f"{slot}: null (+inf) bound must be last")
            if upper is None:
                saw_inf = True
            elif not is_number(upper):
                errors.append(f"{slot}: bound {upper!r} is not a number or "
                              f"null")
            elif last_upper is not None and upper <= last_upper:
                errors.append(f"{slot}: bounds not strictly increasing "
                              f"({upper} after {last_upper})")
            else:
                last_upper = upper
        if total != count:
            errors.append(f"{where}: bucket counts sum to {total}, "
                          f"count says {count}")


def check_flight_recorder(section, errors):
    if not isinstance(section, dict):
        errors.append("flight_recorder: section is not an object")
        return
    for key in ("capacity", "recorded"):
        if not is_uint(section.get(key)):
            errors.append(f"flight_recorder: missing unsigned '{key}'")
    events = section.get("events")
    if not isinstance(events, list):
        errors.append("flight_recorder: events is not an array")
        return
    capacity = section.get("capacity")
    if is_uint(capacity) and len(events) > capacity:
        errors.append(f"flight_recorder: {len(events)} events exceed "
                      f"capacity {capacity}")
    last_seq = None
    for i, e in enumerate(events):
        where = f"flight_recorder.events[{i}]"
        if not isinstance(e, dict):
            errors.append(f"{where}: not an object")
            continue
        if not is_uint(e.get("seq")):
            errors.append(f"{where}: missing unsigned 'seq'")
        elif last_seq is not None and e["seq"] <= last_seq:
            errors.append(f"{where}: seq not strictly increasing")
        if is_uint(e.get("seq")):
            last_seq = e["seq"]
        if not isinstance(e.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        if not is_number(e.get("seconds")):
            errors.append(f"{where}: missing numeric 'seconds'")
        if not is_uint(e.get("depth")):
            errors.append(f"{where}: missing unsigned 'depth'")
        if not isinstance(e.get("marker"), bool):
            errors.append(f"{where}: missing boolean 'marker'")


def check_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"unreadable or not JSON: {e}"]
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    if doc.get("schema") != "losstomo.metrics":
        errors.append(f"schema is {doc.get('schema')!r}, expected "
                      f"'losstomo.metrics'")
    if doc.get("schema_version") != 1:
        errors.append(f"schema_version is {doc.get('schema_version')!r}, "
                      f"expected 1")
    for section in ("counters", "gauges", "histograms"):
        if section not in doc:
            errors.append(f"missing '{section}' section")
    known = {"schema", "schema_version", "counters", "gauges", "histograms",
             "flight_recorder"}
    for key in doc:
        if key not in known:
            errors.append(f"unknown top-level key {key!r}")
    check_scalar_section(doc.get("counters", {}), "counters", errors)
    check_scalar_section(doc.get("gauges", {}), "gauges", errors)
    check_histograms(doc.get("histograms", {}), errors)
    if "flight_recorder" in doc:
        check_flight_recorder(doc["flight_recorder"], errors)
    return errors


def main(argv):
    paths = argv[1:] or [DEFAULT]
    failed = False
    for path in paths:
        errors = check_file(path)
        if errors:
            failed = True
            for e in errors:
                print(f"{path}: {e}")
        else:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            counts = ", ".join(
                f"{len(doc.get(s, {}))} {s}"
                for s in ("counters", "gauges", "histograms"))
            print(f"check_metrics: {path}: {counts} — OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
