// Steady-state monitoring tick latency: the streaming engine (incremental
// sliding-window covariance + cached-factor normal-equation refresh)
// against the batch relearn path, on the same tree instance the kernel
// microbench records (np=646 at the defaults).
//
//   build/bench_monitor_streaming [nodes=1300] [branching=8] [m=200]
//                                 [ticks=60] [relearn_every=1] [p=0.05]
//                                 [--json <path>]
//
// Both engines consume an identical snapshot sequence; every measured tick
// cross-checks the two inferences (max |loss diff| is part of the report).
// The headline figure is the keep-all-policy speedup (G fixed, factorized
// once), where the engines agree exactly on the recorded instance.  The
// drop-negative numbers ride along: there the factor is only re-used on
// ticks where no pair covariance changed sign, and a pair whose sample
// covariance sits within the accumulator's drift of zero can flip its drop
// decision against the batch engine (the drop policy is discontinuous at
// cov = 0 — same caveat as blocked-vs-reference in
// core/variance_estimator.cpp), which shows up as a nonzero
// drop_max_loss_diff on some instances.
#include <algorithm>
#include <cmath>

#include "common.hpp"
#include "core/monitor.hpp"

namespace {

using namespace losstomo;

struct EngineComparison {
  double batch_mean = 0.0;
  double streaming_mean = 0.0;
  double max_loss_diff = 0.0;
  std::string batch_method;
  std::string streaming_method;
};

EngineComparison compare_engines(const linalg::SparseBinaryMatrix& r,
                                 const std::vector<linalg::Vector>& snapshots,
                                 std::size_t m, std::size_t relearn_every,
                                 core::NegativeCovariancePolicy policy) {
  core::MonitorOptions batch_options{
      .window = m, .relearn_every = relearn_every,
      .engine = core::MonitorEngine::kBatch};
  batch_options.lia.variance.negatives = policy;
  core::MonitorOptions streaming_options = batch_options;
  streaming_options.engine = core::MonitorEngine::kStreaming;

  core::LiaMonitor batch(r, batch_options);
  core::LiaMonitor streaming(r, streaming_options);

  EngineComparison out;
  stats::RunningStat batch_tick, streaming_tick;
  for (std::size_t t = 0; t < snapshots.size(); ++t) {
    const auto& y = snapshots[t];
    // Warm-up: fill the window and run the first (factorizing) relearn
    // untimed; every later tick is steady state.
    const bool measured = t > m + 1;
    util::Timer batch_timer;
    const auto from_batch = batch.observe(y);
    const double batch_seconds = batch_timer.seconds();
    util::Timer streaming_timer;
    const auto from_streaming = streaming.observe(y);
    const double streaming_seconds = streaming_timer.seconds();
    if (!measured || !from_batch || !from_streaming) continue;
    batch_tick.add(batch_seconds);
    streaming_tick.add(streaming_seconds);
    out.max_loss_diff =
        std::max(out.max_loss_diff,
                 linalg::max_abs_diff(from_batch->loss, from_streaming->loss));
  }
  out.batch_mean = batch_tick.mean();
  out.streaming_mean = streaming_tick.mean();
  out.batch_method = batch.variances().method;
  out.streaming_method = streaming.variances().method;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto nodes = args.get_size("nodes", 1300);
  const auto branching = args.get_size("branching", 8);
  const auto m = args.get_size("m", 200);
  const auto ticks = args.get_size("ticks", 60);
  const auto relearn_every = args.get_size("relearn_every", 1);
  const double p = args.get_double("p", 0.05);
  const auto seed = args.get_size("seed", 41);
  const auto json_path = args.get_string("json", "");
  args.finish();

  const auto inst = bench::make_tree_instance(nodes, branching, seed);
  const auto& rrm = inst.matrix();
  const auto& r = rrm.matrix();
  std::cout << "monitor_streaming: " << inst.name << " np=" << r.rows()
            << " links=" << r.cols() << " m=" << m << " ticks=" << ticks
            << " relearn_every=" << relearn_every
            << " threads=" << util::default_threads() << "\n\n";

  // One shared snapshot sequence, so both engines and both policies see
  // identical data.
  sim::ScenarioConfig config;
  config.p = p;
  sim::SnapshotSimulator simulator(inst.graph, rrm, config, seed * 7);
  std::vector<linalg::Vector> snapshots;
  snapshots.reserve(m + 2 + ticks);
  for (std::size_t t = 0; t < m + 2 + ticks; ++t) {
    snapshots.push_back(simulator.next().path_log_trans);
  }

  const auto keep =
      compare_engines(r, snapshots, m, relearn_every,
                      core::NegativeCovariancePolicy::kKeep);
  const auto drop =
      compare_engines(r, snapshots, m, relearn_every,
                      core::NegativeCovariancePolicy::kDrop);

  util::Table table({"policy", "batch tick s", "streaming tick s", "speedup",
                     "max |loss diff|"});
  const auto add = [&](const std::string& name, const EngineComparison& c) {
    table.add_row({name, util::Table::num(c.batch_mean, 5),
                   util::Table::num(c.streaming_mean, 5),
                   util::Table::num(c.batch_mean / c.streaming_mean, 2),
                   util::Table::num(c.max_loss_diff, 14)});
  };
  add("keep-all", keep);
  add("drop-negative", drop);
  table.print(std::cout);
  std::cout << "\nkeep-all: G depends only on R, so the streaming engine "
               "factorizes the normal equations once and a steady tick is "
               "two rank-1 covariance updates + an O(nc^2) solve.\n";

  bench::JsonReport report;
  report.set("bench", std::string("monitor_streaming"));
  report.set("np", r.rows());
  report.set("nc", r.cols());
  report.set("m", m);
  report.set("ticks", ticks);
  report.set("relearn_every", relearn_every);
  report.set("threads", util::default_threads());
  // Headline = keep-all policy (the scalable monitoring configuration).
  report.set("batch_tick_seconds", keep.batch_mean);
  report.set("streaming_tick_seconds", keep.streaming_mean);
  report.set("speedup", keep.batch_mean / keep.streaming_mean);
  report.set("max_loss_diff", keep.max_loss_diff);
  report.set("batch_method", keep.batch_method);
  report.set("streaming_method", keep.streaming_method);
  report.set("drop_batch_tick_seconds", drop.batch_mean);
  report.set("drop_streaming_tick_seconds", drop.streaming_mean);
  report.set("drop_speedup", drop.batch_mean / drop.streaming_mean);
  report.set("drop_max_loss_diff", drop.max_loss_diff);
  report.write(json_path);
  return 0;
}
