// LiaMonitor — continuous monitoring on a sliding snapshot window.
//
// The deployment loop of the paper's §7: every measurement period a new
// snapshot arrives; the monitor keeps the most recent m snapshots,
// re-learns the link variances, and diagnoses the newest snapshot.  This
// is the pattern used by examples/overlay_monitoring and the §7.2.2
// duration study, packaged so library users get it directly.
//
// Two engines drive the per-tick relearn:
//  * kStreaming (default) — a stats::StreamingMoments accumulator keeps
//    the window covariance matrix current under O(np^2) rank-1 add/retire
//    updates, and a StreamingNormalEquations instance refreshes h (and the
//    sign-flipped parts of G) from it, re-using the cached Cholesky factor
//    while G is unchanged.  Steady-state tick cost is independent of the
//    window length; under the keep-all policy G never changes and the
//    normal equations are factorized exactly once.
//  * kBatch — the reference path: rebuild the m x np snapshot matrix and
//    run the full Phase-1 estimate from scratch every relearn.  Retained
//    for parity tests, and required for VarianceMethod::kDenseQr (the
//    monitor falls back to it automatically in that configuration).
// Both engines fold every observed snapshot into the window regardless of
// relearn_every, and produce identical inferences to <= 1e-10 (see
// bench/monitor_streaming and tests/core/monitor_test) — except that under
// drop-negative a pair covariance within the accumulator's drift of zero
// can resolve its drop decision differently than the batch engine (the
// policy is discontinuous at cov = 0; keep-all has no such boundary).
#pragma once

#include <deque>
#include <optional>
#include <span>

#include "core/lia.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "stats/moments.hpp"
#include "stats/streaming.hpp"

namespace losstomo::core {

enum class MonitorEngine {
  kStreaming,  // incremental sliding-window covariance (default)
  kBatch,      // full relearn from the materialised window (reference)
};

struct MonitorOptions {
  /// Learning-window length (the paper's m).
  std::size_t window = 50;
  /// Re-learn variances every `relearn_every` ticks (1 = every tick, the
  /// paper's procedure; larger values amortise Phase 1, which is the
  /// dominant cost — see bench/sec64_runtime).  Every snapshot still enters
  /// the window, so a delayed relearn sees the full intermediate history.
  std::size_t relearn_every = 1;
  MonitorEngine engine = MonitorEngine::kStreaming;
  /// Streaming engine only: full recompute cadence of the incremental
  /// accumulator in ticks, bounding floating-point drift
  /// (stats::StreamingMomentsOptions::refresh_every); 0 = 2 * window.
  std::size_t refresh_every = 0;
  LiaOptions lia;
};

/// Feeds snapshots one at a time; once the window is full, every further
/// snapshot is diagnosed against variances learned from the preceding
/// window.
///
/// Thread-safety: single-writer — call observe() from one thread.
/// Internal work parallelizes per MonitorOptions::lia.variance.threads
/// with bit-identical results at any thread count.
class LiaMonitor {
 public:
  /// Takes the routing matrix by value (owned by the internal Lia), so
  /// constructing from a temporary is safe.  Throws std::invalid_argument
  /// for window < 2 or relearn_every == 0.  Keep-all streaming
  /// configurations assemble G here (O(nc^2)); drop-negative defers its
  /// sharing-pair store to the first relearn tick.
  explicit LiaMonitor(linalg::SparseBinaryMatrix r, MonitorOptions options = {});

  /// Observes one snapshot (Y = log path transmission rates).  Returns the
  /// inference for this snapshot, or std::nullopt while the window is
  /// still filling (the first `window` snapshots are learning-only).
  /// `y.size()` must equal routing().rows() (throws
  /// std::invalid_argument).  Steady-state cost per tick (streaming
  /// engine): O(np^2) covariance updates + the normal-equation refresh
  /// (proportional to the sharing structure) + the cached-factor solve —
  /// independent of the window length; the batch engine pays the full
  /// O(m np^2) relearn instead.
  std::optional<LossInference> observe(std::span<const double> y);

  /// Number of snapshots consumed so far.
  [[nodiscard]] std::size_t ticks() const { return ticks_; }
  /// True once diagnoses are being produced.
  [[nodiscard]] bool warmed_up() const { return ticks_ >= options_.window; }
  /// Variances from the most recent learn (requires warmed_up()).
  [[nodiscard]] const VarianceEstimate& variances() const {
    return lia_.variances();
  }
  /// The engine actually driving relearns (kDenseQr configurations fall
  /// back to kBatch).
  [[nodiscard]] MonitorEngine engine() const { return engine_; }
  /// The streaming engine's incrementally maintained Phase-1 system, for
  /// factor-cache diagnostics (refactorizations, rank-1 up/downdates, pair
  /// store size); nullptr when the batch engine is driving.
  [[nodiscard]] const StreamingNormalEquations* streaming_equations() const {
    return equations_ ? &*equations_ : nullptr;
  }
  [[nodiscard]] const linalg::SparseBinaryMatrix& routing() const {
    return lia_.routing();
  }

 private:
  void relearn_batch();

  MonitorOptions options_;
  MonitorEngine engine_;
  Lia lia_;
  // Batch engine state.
  std::deque<linalg::Vector> window_;
  // Streaming engine state.
  std::optional<stats::StreamingMoments> accumulator_;
  std::optional<StreamingNormalEquations> equations_;
  std::size_t ticks_ = 0;
  std::size_t since_learn_ = 0;
};

}  // namespace losstomo::core
