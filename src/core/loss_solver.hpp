// Phase 2, step B of LIA: solving the reduced first-moment system (eq. (9))
// for one snapshot.
//
// With R* fixed by the elimination, X* = argmin ||Y - R* X*|| via the
// normal equations (R*^T R*) X* = R*^T Y, reusing the Cholesky factor the
// elimination already built.  Removed links are approximated as loss-free
// (phi = 1), per the paper.
#pragma once

#include <span>
#include <vector>

#include "core/elimination.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace losstomo::core {

struct LossInference {
  linalg::Vector phi;         // per-link transmission rate, clamped to [~0, 1]
  linalg::Vector loss;        // 1 - phi
  std::vector<bool> removed;  // true for links eliminated in Phase 2
  double residual_norm = 0.0; // ||Y - R x|| over all paths
};

/// Solves eq. (9) for the snapshot `y` (log path transmission rates,
/// length r.rows()).  Preconditions: `y.size() == r.rows()` and
/// `elimination` produced from the same `r` (throws
/// std::invalid_argument on size mismatch).  Complexity: O(nnz(R) +
/// kept^2) — the right-hand side assembly plus two triangular
/// substitutions on the elimination's cached factor.  Pure function;
/// safe to call concurrently.
LossInference infer_snapshot_losses(const linalg::SparseBinaryMatrix& r,
                                    const Elimination& elimination,
                                    std::span<const double> y);

}  // namespace losstomo::core
