// Randomized shard-parity harness for core::ShardedMonitor /
// core::ShardedPairMoments: sharding must NEVER change an inference.
//
// Two fuzz regimes, both seeded and fully deterministic:
//
//  * Scenario-driven (tight regime): seeded random specs over the
//    constructive branching-tree family (topology::make_branching_tree —
//    every junction branches among the initial paths, every fresh link
//    attaches at a branching junction) with random churn scripts (leaves,
//    rejoins, grow_links bursts), driven through ScenarioRunner at shard
//    counts {1,2,3,7} x thread counts {1,2,8}.  Inferences must be
//    BIT-IDENTICAL to the unsharded streaming monitor, with exactly ONE
//    factorization per run, zero downdate fallbacks, zero jitter — the
//    merge is a value gather, so shard count can never cost even a
//    refactorization.
//
//  * Synthetic-feed (degraded regime): a noisy Gaussian feed over the
//    same tree family whose window covariances routinely drop equations
//    until G goes singular — the jitter / rank-revealing / refactorize
//    degradation path.  Sharding must track the flat accumulator
//    bit-identically THERE TOO, including every factor-cache counter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/sharded_moments.hpp"
#include "core/sharded_monitor.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "net/graph.hpp"
#include "net/routing_matrix.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "stats/rng.hpp"
#include "topology/generators.hpp"

namespace losstomo::core {
namespace {

// ---------------------------------------------------------------------------
// Scenario-driven fuzz: tight-parity regime.
// ---------------------------------------------------------------------------

// Seeded random scenario over the well-conditioned branching-tree family:
// random leave/rejoin pairs on distinct initial paths plus grow_links
// bursts consuming every extra leaf (each one a fresh link at a junction
// that already branches).
scenario::ScenarioSpec random_spec(std::uint64_t seed) {
  stats::Rng rng(seed);
  scenario::ScenarioSpec spec;
  spec.name = "sharded-parity-" + std::to_string(seed);
  // branching 4, not 2: a binary junction that loses one path stops
  // branching and leaves its two links indistinguishable (exact
  // singularity), so leave events demand a third child — and under the
  // drop-negative policy sample-covariance noise drops a sizeable
  // fraction of pair equations every tick (~14% per pair at this window),
  // so each link needs enough INDEPENDENT pairs that a simultaneous drop
  // burst cannot sever it from the equations.  Depth 3 x branching 4
  // (64 core paths) gives that redundancy; smaller overlays go singular
  // on unlucky ticks.  NOTE: the instances are seed-deterministic — if
  // the draw sequence below changes, re-validate that every seed still
  // holds refactorizations == 1.
  spec.topology.kind = scenario::TopologySpec::Kind::kBranchingTree;
  spec.topology.depth = 3;
  spec.topology.branching = 4;
  spec.topology.extra_leaves = 2 + rng.index(3);  // 2-4 growth leaves
  spec.topology.seed = seed;
  // The proven tight-parity feed (see churn_parity_test).  Equations DO
  // still drop under the drop-negative policy — window 30 plus the
  // overlay's pair redundancy keeps G nonsingular through every drop
  // pattern the seeds produce (jitter_used == 0 is asserted every tick).
  spec.window = 30;
  spec.ticks = 70;
  spec.seed = seed * 7 + 1;
  spec.p = 0.6;
  spec.probes = 800;
  spec.min_good_loss = 0.002;
  spec.reserve_paths = spec.topology.extra_leaves;

  std::size_t initial = 1;
  for (std::size_t d = 0; d < spec.topology.depth; ++d) {
    initial *= spec.topology.branching;
  }
  const auto event_tick = [&] { return 28 + rng.index(32); };

  const auto push = [&](std::size_t tick, scenario::EventType type,
                        std::size_t path_or_count) {
    scenario::Event event;
    event.tick = tick;
    event.type = type;
    if (type == scenario::EventType::kGrowLinks) {
      event.count = path_or_count;
    } else {
      event.path = path_or_count;
    }
    spec.events.push_back(event);
  };

  // Two leave/rejoin pairs on paths under DIFFERENT leaf-parent
  // junctions: two simultaneous leaves under the same 3-ary leaf parent
  // would collapse it to one covered child anyway.
  const std::size_t a = rng.index(initial);
  std::size_t b = rng.index(initial);
  if (b / spec.topology.branching == a / spec.topology.branching) {
    b = (b + spec.topology.branching) % initial;
  }
  for (const std::size_t path : {a, b}) {
    const std::size_t leave = event_tick();
    push(leave, scenario::EventType::kPathLeave, path);
    push(leave + 2 + rng.index(4), scenario::EventType::kPathJoin, path);
  }
  // grow_links bursts consuming the whole reserve, in one or two events.
  const std::size_t first_burst = 1 + rng.index(spec.reserve_paths);
  std::size_t t1 = event_tick();
  std::size_t t2 = event_tick();
  if (t2 < t1) std::swap(t1, t2);
  push(t1, scenario::EventType::kGrowLinks, first_burst);
  if (first_burst < spec.reserve_paths) {
    push(t2, scenario::EventType::kGrowLinks,
         spec.reserve_paths - first_burst);
  }
  // Event ticks can exceed spec.ticks - 1 by construction margin; clamp.
  for (auto& e : spec.events) e.tick = std::min(e.tick, spec.ticks - 2);
  return spec;
}

MonitorOptions runner_options(std::size_t shards, std::size_t threads) {
  MonitorOptions options;
  options.accumulator = CovarianceAccumulator::kSharingPairs;
  options.shards = shards;
  options.lia.variance.threads = threads;
  // Absorb whole churn bursts as rank-1/bordered factor steps (the
  // machinery under test) instead of tripping the drift cap.
  options.lia.variance.factor_flip_threshold = 1u << 20;
  options.lia.variance.factor_update_cap = 1u << 20;
  return options;
}

struct ScenarioRun {
  std::vector<std::optional<LossInference>> inferences;
  std::size_t refactorizations = 0;
  std::size_t downdate_fallbacks = 0;
};

ScenarioRun drive_scenario(const scenario::ScenarioSpec& spec,
                           const MonitorOptions& options,
                           const std::string& label) {
  scenario::ScenarioRunner runner(spec, options);
  ScenarioRun run;
  while (runner.ticks_run() < spec.ticks) {
    run.inferences.push_back(runner.step());
    if (run.inferences.back()) {
      EXPECT_DOUBLE_EQ(runner.monitor().variances().jitter_used, 0.0)
          << label << " tick " << runner.ticks_run();
    }
  }
  const auto* eqs = runner.monitor().streaming_equations();
  EXPECT_NE(eqs, nullptr) << label;
  if (eqs) {
    run.refactorizations = eqs->refactorizations();
    run.downdate_fallbacks = eqs->downdate_fallbacks();
  }

  const auto* acc = runner.monitor().sharded_accumulator();
  if (options.shards > 0) {
    // Shard bookkeeping: every path owned exactly once, every sharing
    // pair owned exactly once (intra-shard or boundary), coordinator
    // merges recorded.
    EXPECT_NE(acc, nullptr) << label;
    if (acc) {
      EXPECT_EQ(acc->shard_count(), options.shards) << label;
      std::size_t paths = 0;
      std::size_t pairs = acc->cross_shard_pairs();
      for (std::size_t s = 0; s < acc->shard_count(); ++s) {
        paths += acc->shard_path_count(s);
        pairs += acc->shard_pair_count(s);
      }
      EXPECT_EQ(paths, runner.monitor().routing().rows()) << label;
      EXPECT_EQ(pairs, acc->pair_store()->pair_count()) << label;
      EXPECT_GT(acc->merges(), 0u) << label;
      if (options.shards > 1) {
        EXPECT_GT(acc->cross_shard_pairs(), 0u) << label;
      }
    }
  } else {
    EXPECT_EQ(acc, nullptr) << label;
  }
  return run;
}

void expect_bit_identical(const std::vector<std::optional<LossInference>>& a,
                          const std::vector<std::optional<LossInference>>& b,
                          const std::string& label,
                          std::size_t min_compared = 20) {
  ASSERT_EQ(a.size(), b.size()) << label;
  std::size_t compared = 0;
  for (std::size_t l = 0; l < a.size(); ++l) {
    ASSERT_EQ(a[l].has_value(), b[l].has_value()) << label << " tick " << l;
    if (!a[l]) continue;
    ++compared;
    EXPECT_EQ(linalg::max_abs_diff(a[l]->loss, b[l]->loss), 0.0)
        << label << " tick " << l;
  }
  EXPECT_GT(compared, min_compared) << label;
}

class ShardedParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedParity, ShardCountNeverChangesAnInference) {
  const auto spec = random_spec(GetParam());
  const std::string base = "seed=" + std::to_string(GetParam());

  const ScenarioRun reference =
      drive_scenario(spec, runner_options(/*shards=*/0, /*threads=*/1),
                     base + " flat");
  // The instance family keeps the flat run in the tight regime: one
  // factorization, churn absorbed incrementally.
  ASSERT_EQ(reference.refactorizations, 1u) << base;
  ASSERT_EQ(reference.downdate_fallbacks, 0u) << base;

  for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const std::string label = base + " shards=" + std::to_string(shards) +
                                " threads=" + std::to_string(threads);
      const ScenarioRun run =
          drive_scenario(spec, runner_options(shards, threads), label);
      expect_bit_identical(reference.inferences, run.inferences, label);
      // Sharding must not cost a refactorization or a downdate fallback.
      EXPECT_EQ(run.refactorizations, 1u) << label;
      EXPECT_EQ(run.downdate_fallbacks, 0u) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedParity,
                         ::testing::Values(3u, 17u, 29u, 101u));

// ---------------------------------------------------------------------------
// Synthetic-feed fuzz: the degradation path (dropped equations drive G
// singular; jitter / rank-revealing / refactorize).  Sharding must track
// the flat accumulator bit-identically there too, counters included.
// ---------------------------------------------------------------------------

MonitorOptions direct_options(std::size_t threads) {
  MonitorOptions options = runner_options(/*shards=*/0, threads);
  options.window = 10;
  options.lia.variance.negatives = NegativeCovariancePolicy::kDrop;
  options.lia.variance.rank_revealing_min_attempts = 1;
  return options;
}

struct ChurnEvent {
  std::size_t tick = 0;
  enum class Kind { kToggle, kGrow } kind = Kind::kToggle;
  std::size_t path = 0;                          // kToggle
  std::vector<std::vector<std::uint32_t>> rows;  // kGrow
  std::size_t new_links = 0;                     // kGrow
};

struct FuzzInstance {
  linalg::SparseBinaryMatrix r;
  std::vector<ChurnEvent> script;
  std::size_t ticks = 48;
};

FuzzInstance make_instance(std::uint64_t seed) {
  FuzzInstance instance;
  stats::Rng rng(seed);
  const topology::BranchingTreeConfig config{
      .depth = 3, .branching = 2 + rng.index(2), .extra_leaves = 0};
  const auto tree = topology::make_branching_tree(config, rng);
  const auto paths = topology::tree_paths(tree);
  net::ReducedRoutingMatrix reduced(tree.graph, paths);
  instance.r = reduced.matrix();

  // Junction prefixes, as sorted virtual-link rows: growth rows attach
  // at branching junctions even in this regime.
  std::vector<std::vector<std::uint32_t>> prefixes;
  for (net::NodeId v = 0; v < tree.graph.node_count(); ++v) {
    if (tree.graph.out_degree(v) < 2) continue;  // leaves
    std::vector<std::uint32_t> prefix;
    for (net::NodeId at = v; at != tree.root;) {
      const auto e = tree.parent_edge[at];
      prefix.push_back(static_cast<std::uint32_t>(*reduced.link_of(e)));
      at = tree.graph.edge(e).from;
    }
    std::sort(prefix.begin(), prefix.end());
    prefixes.push_back(std::move(prefix));
  }

  // Random script: toggles on initial paths plus two growth bursts.  The
  // bursts must apply in construction order (the second one's fresh-link
  // indices assume the first already widened the monitor), so their ticks
  // are drawn together and sorted.
  const std::size_t initial_paths = instance.r.rows();
  std::size_t cols = instance.r.cols();
  const std::size_t events = 4 + rng.index(3);
  std::size_t grow_ticks[2] = {4 + rng.index(instance.ticks - 10),
                               4 + rng.index(instance.ticks - 10)};
  if (grow_ticks[1] < grow_ticks[0]) std::swap(grow_ticks[0], grow_ticks[1]);
  for (std::size_t e = 0; e < events; ++e) {
    ChurnEvent event;
    event.tick = e < 2 ? grow_ticks[e] : 4 + rng.index(instance.ticks - 10);
    if (e < 2) {  // the first two events are growth bursts
      event.kind = ChurnEvent::Kind::kGrow;
      const std::size_t batch = 1 + rng.index(3);
      for (std::size_t b = 0; b < batch; ++b) {
        auto row = prefixes[rng.index(prefixes.size())];
        if (rng.bernoulli(0.5)) {
          // Fresh leaf at the junction: link-universe growth.
          row.push_back(static_cast<std::uint32_t>(cols + event.new_links));
          ++event.new_links;
        } else if (row.empty()) {
          // A root prefix without a fresh link would be an empty row.
          row.push_back(0);
        }
        event.rows.push_back(std::move(row));
      }
      cols += event.new_links;
    } else {
      event.kind = ChurnEvent::Kind::kToggle;
      event.path = rng.index(initial_paths);
    }
    instance.script.push_back(event);
  }
  return instance;
}

// Drives one monitor (flat LiaMonitor or ShardedMonitor — anything with
// the churn surface) through the instance.  The feed draws snapshots over
// the FINAL link universe and projects through the monitor's current
// routing rows, so every variant sees one deterministic sequence.
template <typename Monitor>
std::vector<std::optional<LossInference>> drive(Monitor& monitor,
                                                const FuzzInstance& instance,
                                                const LiaMonitor& state) {
  std::size_t final_cols = instance.r.cols();
  for (const auto& event : instance.script) final_cols += event.new_links;

  stats::Rng rng(1234);
  std::vector<std::optional<LossInference>> out;
  std::vector<std::uint8_t> active(instance.r.rows(), 1);
  for (std::size_t l = 0; l < instance.ticks; ++l) {
    for (const auto& event : instance.script) {
      if (event.tick != l) continue;
      if (event.kind == ChurnEvent::Kind::kToggle) {
        active[event.path] ^= 1;
        monitor.set_path_active(event.path, active[event.path] != 0);
      } else {
        monitor.add_paths(event.rows, event.new_links);
        active.resize(active.size() + event.rows.size(), 1);
      }
    }
    linalg::Vector x(final_cols);
    for (std::size_t k = 0; k < x.size(); ++k) {
      x[k] = rng.gaussian(-0.05, 0.1 + 0.01 * static_cast<double>(k));
    }
    const auto& r = state.routing();
    std::vector<double> y(r.rows(), 0.0);
    for (std::size_t i = 0; i < r.rows(); ++i) {
      if (!active[i]) continue;  // deterministic filler for inactive rows
      double sum = 0.0;
      for (const auto k : r.row(i)) sum += x[k];
      y[i] = sum;
    }
    out.push_back(monitor.observe(y));
  }
  return out;
}

class ShardedDegraded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedDegraded, TracksFlatAccumulatorThroughDegradation) {
  const auto instance = make_instance(GetParam());
  LiaMonitor flat(instance.r, direct_options(/*threads=*/1));
  const auto reference = drive(flat, instance, flat);
  const auto* flat_eqs = flat.streaming_equations();
  ASSERT_NE(flat_eqs, nullptr);

  for (const std::size_t shards : {2u, 5u}) {
    ShardedMonitor monitor(instance.r, shards, direct_options(/*threads=*/1));
    const auto out = drive(monitor, instance, monitor.monitor());
    const std::string label = "seed=" + std::to_string(GetParam()) +
                              " shards=" + std::to_string(shards);
    expect_bit_identical(reference, out, label, /*min_compared=*/10);
    // The degradation path itself must be replayed step for step: same
    // refactorization count, same downdate fallbacks.
    const auto* eqs = monitor.monitor().streaming_equations();
    ASSERT_NE(eqs, nullptr) << label;
    EXPECT_EQ(eqs->refactorizations(), flat_eqs->refactorizations()) << label;
    EXPECT_EQ(eqs->downdate_fallbacks(), flat_eqs->downdate_fallbacks())
        << label;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDegraded,
                         ::testing::Values(3u, 101u));

// ---------------------------------------------------------------------------
// Wrapper / partition specifics.
// ---------------------------------------------------------------------------

TEST(ShardedParityExtras, ExplicitPartitionIsBitIdenticalToo) {
  const auto instance = make_instance(7);
  LiaMonitor flat(instance.r, direct_options(/*threads=*/2));
  const auto reference = drive(flat, instance, flat);

  // Round-robin the initial paths explicitly; grown paths still hash.
  MonitorOptions options = direct_options(/*threads=*/2);
  options.partition.resize(instance.r.rows());
  for (std::size_t i = 0; i < options.partition.size(); ++i) {
    options.partition[i] = static_cast<std::uint32_t>(i % 3);
  }
  ShardedMonitor monitor(instance.r, 3, options);
  const auto out = drive(monitor, instance, monitor.monitor());
  expect_bit_identical(reference, out, "explicit partition",
                       /*min_compared=*/10);
  EXPECT_EQ(monitor.shard_of(0), 0u);
  EXPECT_EQ(monitor.shard_of(1), 1u);
  EXPECT_EQ(monitor.shard_of(2), 2u);
  EXPECT_EQ(monitor.shard_count(), 3u);
  std::size_t paths = 0;
  for (std::size_t s = 0; s < 3; ++s) paths += monitor.shard_stats(s).paths;
  EXPECT_EQ(paths, monitor.monitor().routing().rows());
}

TEST(ShardedParityExtras, HashPartitionIsDeterministic) {
  for (const std::size_t shards : {1u, 2u, 5u}) {
    for (std::size_t path = 0; path < 64; ++path) {
      const auto s = ShardedPairMoments::hash_shard(path, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, ShardedPairMoments::hash_shard(path, shards));
    }
  }
}

TEST(ShardedParityExtras, ConfigurationValidation) {
  const linalg::SparseBinaryMatrix r(4, {{0, 1}, {0, 2}, {0, 3}});

  // shards > 0 requires the kSharingPairs accumulator.
  MonitorOptions dense;
  dense.shards = 2;
  dense.lia.variance.negatives = NegativeCovariancePolicy::kDrop;
  EXPECT_THROW(LiaMonitor(r, dense), std::invalid_argument);

  // partition without shards is a configuration error.
  MonitorOptions stray;
  stray.partition = {0, 0, 0};
  EXPECT_THROW(LiaMonitor(r, stray), std::invalid_argument);

  // Partition entries must stay below the shard count, and the partition
  // must not outnumber the paths.
  MonitorOptions bad;
  bad.shards = 2;
  bad.accumulator = CovarianceAccumulator::kSharingPairs;
  bad.lia.variance.negatives = NegativeCovariancePolicy::kDrop;
  bad.partition = {0, 2, 0};
  EXPECT_THROW(LiaMonitor(r, bad), std::invalid_argument);
  bad.partition = {0, 1, 0, 1, 0};
  EXPECT_THROW(LiaMonitor(r, bad), std::invalid_argument);

  // The wrapper rejects shards == 0 and batch-only variance backends.
  EXPECT_THROW(ShardedMonitor(r, 0), std::invalid_argument);
  MonitorOptions qr;
  qr.lia.variance.method = VarianceMethod::kDenseQr;
  EXPECT_THROW(ShardedMonitor(r, 2, qr), std::invalid_argument);
}

}  // namespace
}  // namespace losstomo::core
