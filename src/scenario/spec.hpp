// Declarative scenario descriptions for dynamic-overlay monitoring runs.
//
// A scenario is a topology, a monitoring window, and an event-scripted
// timeline of overlay churn: paths join and leave, routes change, links go
// down and come back, the congestion regime shifts, and the overlay grows.
// Scenarios drive sim::SnapshotSimulator + core::LiaMonitor through
// scenario::ScenarioRunner (runner.hpp), and are parseable from a small
// text format via io::read_scenario / io::load_scenario
// (src/io/scenario_io.hpp) — the shipped scripts live in scenarios/.
//
// Text format (whitespace-separated, '#' comments):
//
//   scenario flapping-mesh
//   topology mesh nodes=120 hosts=18 seed=7
//   window 30
//   ticks 160
//   seed 11
//   probes 600
//   p 0.08
//   down_loss 0.35
//   initial_paths 40          # active base paths at tick 0 (0 = all)
//   reserve_paths 4           # trailing base paths held back for `grow`
//   at 40 leave path=3
//   at 44 join path=3
//   at 60 reroute path=5
//   at 80 link_down link=2 loss=0.4
//   at 100 link_up link=2
//   at 120 regime p=0.2
//   at 130 grow count=2
//   at 140 grow_links count=2   # reserve paths whose fresh links grow nc
//   at 150 checkpoint file=/tmp/run.ckpt
//   at 150 restore file=/tmp/run.ckpt   # same-tick restore drill
//   at 155 handoff              # in-memory warm-failover drill
//
// Ticks are 0-based measurement periods; an event `at t` is applied
// before the snapshot of tick t is generated and observed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace losstomo::scenario {

enum class EventType {
  kPathJoin,     // activate a known (base) path
  kPathLeave,    // retire a known path
  kRouteChange,  // retire a path, join its precomputed alternate route
  kLinkDown,     // force a virtual link to a severe loss rate
  kLinkUp,       // clear the forcing
  kRegimeShift,  // rescale congestion probability, redraw the regime
  kGrow,         // append paths from the reserve pool as new dimensions
  kGrowLinks,    // like kGrow, but the appended routes may reference fresh
                 // virtual links: the monitor's link universe grows with
                 // them (bordered nc growth on the streaming factor).  Any
                 // kGrowLinks event switches the runner to link-discovery
                 // mode — the monitor starts with only the links its known
                 // rows cover, instead of the whole universe basis.
  kCheckpoint,   // save the full runner state to Event::file
                 // (io/checkpoint.hpp format)
  kRestore,      // restore the runner from Event::file; the checkpoint
                 // must have been taken at this same tick (a scripted
                 // restore cannot rewind the timeline)
  kHandoff,      // warm failover drill: serialize to memory, tear down the
                 // monitor and simulator, rebuild them fresh, and restore —
                 // the run must continue bit-identically
};

/// Number of EventType values (per-type counters, telemetry labels).
inline constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::kHandoff) + 1;

/// Name used in the text format ("join", "link_down", ...).
const char* event_type_name(EventType type);

struct Event {
  std::size_t tick = 0;
  EventType type = EventType::kPathJoin;
  std::size_t path = 0;   // kPathJoin / kPathLeave / kRouteChange
  std::size_t link = 0;   // kLinkDown / kLinkUp (virtual-link index)
  double value = 0.0;     // kRegimeShift: new p; kLinkDown: loss (0 = default)
  std::size_t count = 1;  // kGrow / kGrowLinks: paths to append
  std::string file;       // kCheckpoint / kRestore: checkpoint file path
                          // (whitespace-free in the text format)
};

/// How the scenario's network and measurement paths are generated.
struct TopologySpec {
  enum class Kind {
    kTree,           // random tree, root-to-leaf paths (paper §6.1)
    kMesh,           // Waxman mesh, low-degree hosts, routed paths (§6.2)
    kOverlay,        // PlanetLab-like overlay (§7 scenarios)
    kBranchingTree,  // complete `branching`-ary core + `extra_leaves`
                     // growth leaves at branching junctions: the
                     // constructive well-conditioned link-discovery
                     // family (topology::make_branching_tree).  Reserve
                     // exactly extra_leaves paths and feed them to
                     // grow_links for guaranteed tight parity.
  };
  Kind kind = Kind::kTree;
  std::size_t nodes = 120;          // kTree / kMesh
  std::size_t branching = 8;        // kTree / kBranchingTree
  std::size_t hosts = 16;           // kMesh / kOverlay
  std::size_t as_count = 8;         // kOverlay
  std::size_t routers_per_as = 6;   // kOverlay
  std::size_t depth = 3;            // kBranchingTree
  std::size_t extra_leaves = 0;     // kBranchingTree
  std::uint64_t seed = 1;           // generator stream
};

const char* topology_kind_name(TopologySpec::Kind kind);

/// Events in tick order with per-tick lookup.  Construction stable-sorts
/// by tick, so events scripted for one tick apply in script order.
class EventTimeline {
 public:
  EventTimeline() = default;
  explicit EventTimeline(std::vector<Event> events);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Events scheduled for exactly `tick` (contiguous, script order).
  [[nodiscard]] std::span<const Event> at(std::size_t tick) const;

  /// Number of events of the given type.
  [[nodiscard]] std::size_t count(EventType type) const;

 private:
  std::vector<Event> events_;  // sorted by tick (stable)
};

/// A full scenario: topology + run parameters + timeline.
struct ScenarioSpec {
  std::string name = "scenario";
  TopologySpec topology;
  /// Learning-window length (the monitor's m).
  std::size_t window = 40;
  /// Total measurement periods to simulate.
  std::size_t ticks = 120;
  /// Simulator seed (independent of the topology seed).
  std::uint64_t seed = 1;
  /// Congested-link fraction at tick 0 (sim::ScenarioConfig::p).
  double p = 0.08;
  /// Probes per path per snapshot (the paper's S).
  std::size_t probes = 600;
  /// Loss rate a kLinkDown event forces when the event carries none.
  double down_loss = 0.35;
  /// Lower bound of the good-link loss range (LossModelConfig::good_lo).
  /// The paper's models allow 0; a positive floor guarantees no path is
  /// ever exactly lossless over a whole window — a constant observation
  /// has *exactly zero* sample covariance, which sits on the drop-negative
  /// policy's discontinuity and makes streaming-vs-batch comparisons
  /// ill-posed (the parity scenarios set this).
  double min_good_loss = 0.0;
  /// Base paths active at tick 0 (the rest start retired and wait for
  /// join events); 0 = all base paths active.
  std::size_t initial_paths = 0;
  /// Trailing base paths held out of the monitor entirely until a kGrow
  /// event appends them as new dimensions.
  std::size_t reserve_paths = 0;
  /// Simulate path measurements lazily: each tick evaluates only the
  /// monitor-active paths (the per-unit loss processes keep evolving for
  /// everything and consume the same RNG stream, so evaluated paths are
  /// bit-identical either way).  A 10k-path universe with a heavy dormant
  /// reserve pool then stops paying a popcount sweep per dormant row per
  /// tick.  Text key: `lazy 0|1`.
  bool lazy_simulation = true;
  std::vector<Event> events;

  /// Structural sanity: window >= 2, ticks > window (something to
  /// diagnose), event ticks < ticks, event payloads in range where
  /// checkable without the topology (full path/link validation happens at
  /// ScenarioRunner construction).  Throws std::invalid_argument.
  void validate() const;

  [[nodiscard]] EventTimeline timeline() const { return EventTimeline(events); }
};

}  // namespace losstomo::scenario
