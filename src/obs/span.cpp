#include "obs/span.hpp"

#include "obs/registry.hpp"

namespace losstomo::obs {

#ifndef LOSSTOMO_NO_TELEMETRY

Span::Span(Registry* registry, std::size_t phase) noexcept
    : registry_(registry), phase_(phase) {
  if (registry_ == nullptr) return;
  parent_ = registry_->active_span_;
  if (parent_ != nullptr) {
    depth_ = parent_->depth_ + 1;
    // Exclusive timing: the parent stops accumulating while we run.
    parent_->timer_.pause();
  }
  registry_->active_span_ = this;
  timer_.reset();
}

Span::~Span() {
  if (registry_ == nullptr) return;
  timer_.pause();
  registry_->finish_span(phase_, timer_.seconds(), depth_);
  registry_->active_span_ = parent_;
  if (parent_ != nullptr) parent_->timer_.resume();
}

#endif  // LOSSTOMO_NO_TELEMETRY

}  // namespace losstomo::obs
