#include "stats/moments.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace losstomo::stats {
namespace {

TEST(SnapshotMatrix, FromRows) {
  const auto y = SnapshotMatrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(y.dim(), 2u);
  EXPECT_EQ(y.count(), 3u);
  EXPECT_DOUBLE_EQ(y.at(2, 1), 6.0);
}

TEST(SnapshotMatrix, FromRowsRejectsRagged) {
  EXPECT_THROW(SnapshotMatrix::from_rows({{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
}

TEST(SampleMeans, Computes) {
  const auto y = SnapshotMatrix::from_rows({{1.0, 10.0}, {3.0, 20.0}});
  const auto means = sample_means(y);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 15.0);
}

TEST(CenteredSnapshots, CenteringRemovesMean) {
  const auto y = SnapshotMatrix::from_rows({{1.0, 5.0}, {3.0, 7.0}, {5.0, 9.0}});
  const CenteredSnapshots c(y);
  for (std::size_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (std::size_t l = 0; l < 3; ++l) sum += c.sample(l)[i];
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

TEST(CenteredSnapshots, CovarianceOfKnownData) {
  // Two perfectly correlated coordinates.
  const auto y = SnapshotMatrix::from_rows({{0.0, 0.0}, {2.0, 4.0}});
  const CenteredSnapshots c(y);
  EXPECT_DOUBLE_EQ(c.variance(0), 2.0);   // ((-1)^2 + 1^2) / 1
  EXPECT_DOUBLE_EQ(c.variance(1), 8.0);
  EXPECT_DOUBLE_EQ(c.covariance(0, 1), 4.0);
}

TEST(CenteredSnapshots, CovarianceSymmetric) {
  const auto y =
      SnapshotMatrix::from_rows({{1.0, 2.0, 0.5}, {0.0, 1.0, 2.0}, {2.0, 0.0, 1.0}});
  const CenteredSnapshots c(y);
  EXPECT_DOUBLE_EQ(c.covariance(0, 2), c.covariance(2, 0));
}

TEST(CenteredSnapshots, UnbiasedOnGaussianDraws) {
  // Large-sample check: var estimate near the true value.
  stats::Rng rng(77);
  const std::size_t m = 20000;
  SnapshotMatrix y(1, m);
  for (std::size_t l = 0; l < m; ++l) y.at(l, 0) = rng.gaussian(3.0, 2.0);
  const CenteredSnapshots c(y);
  EXPECT_NEAR(c.variance(0), 4.0, 0.15);
}

TEST(CenteredSnapshots, ThrowsOnSingleSnapshot) {
  const auto y = SnapshotMatrix::from_rows({{1.0, 2.0}});
  const CenteredSnapshots c(y);
  EXPECT_THROW((void)c.covariance(0, 1), std::logic_error);
}

TEST(RunningStat, BasicStatistics) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{1.0, 8.0, 27.0, 64.0};  // cubic but monotone
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> a{1.0, 1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 1.0, 2.0, 3.0};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
}

}  // namespace
}  // namespace losstomo::stats
