// Fixture: the same walk, waived with a written justification — the map
// is drained into a vector and sorted before any order-dependent use.
#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

double sum_values_sorted() {
  std::unordered_map<int, double> acc;
  acc[1] = 0.5;
  // lint: nondet-order-ok(drained into a vector and key-sorted before any
  // order-dependent accumulation)
  std::vector<std::pair<int, double>> entries(acc.begin(), acc.end());
  std::sort(entries.begin(), entries.end());
  double total = 0.0;
  for (const auto& [key, value] : entries) total += value;
  return total;
}
