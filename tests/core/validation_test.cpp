#include "core/validation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/probe_sim.hpp"
#include "topology/generators.hpp"
#include "topology/overlay.hpp"
#include "topology/routing.hpp"

namespace losstomo::core {
namespace {

TEST(SplitPaths, HalvesArePartition) {
  stats::Rng rng(121);
  const auto split = split_paths(11, rng);
  EXPECT_EQ(split.inference.size(), 5u);
  EXPECT_EQ(split.validation.size(), 6u);
  std::set<std::size_t> all;
  for (const auto i : split.inference) all.insert(i);
  for (const auto i : split.validation) all.insert(i);
  EXPECT_EQ(all.size(), 11u);
}

TEST(SplitPaths, DeterministicUnderSeed) {
  stats::Rng rng1(122), rng2(122);
  const auto s1 = split_paths(20, rng1);
  const auto s2 = split_paths(20, rng2);
  EXPECT_EQ(s1.inference, s2.inference);
}

TEST(CrossValidation, HighConsistencyOnSimulatedOverlay) {
  // The §7.2 experiment in miniature: simulate an overlay, split, infer,
  // validate with eq. (11).  The Internet-like profile has near-zero loss
  // on good links (LLRD1's 0-0.2% per hop would alone exceed the paper's
  // epsilon = 0.005 over a 10-hop path once elimination rounds those links
  // to zero; the real network §7 measures has no such floor).
  stats::Rng rng(123);
  auto topo_rng = rng.fork(1);
  const auto topo = topology::make_planetlab_like(
      {.hosts = 14, .as_count = 6, .routers_per_as = 6}, topo_rng);
  const auto routed = topology::route_paths(topo.graph, topo.hosts, topo.hosts);
  const net::ReducedRoutingMatrix rrm(topo.graph, routed.paths);

  sim::ScenarioConfig config;
  config.p = 0.03;
  config.loss_model.good_hi = 0.0002;
  config.probes_per_snapshot = 2000;
  sim::SnapshotSimulator simulator(topo.graph, rrm, config, 1234);
  const auto series = sim::run_snapshots(simulator, 31);

  stats::SnapshotMatrix history(rrm.path_count(), 30);
  for (std::size_t l = 0; l < 30; ++l) {
    const auto& y = series.snapshots[l].path_log_trans;
    std::copy(y.begin(), y.end(), history.sample(l).begin());
  }
  const auto& current = series.snapshots[30];

  auto split_rng = rng.fork(2);
  const auto split = split_paths(rrm.path_count(), split_rng);
  const auto result = cross_validate(
      topo.graph, routed.paths, history, current.path_log_trans,
      current.path_trans, split, 0.005);
  EXPECT_GT(result.checked, 0u);
  EXPECT_GT(result.consistency(), 0.7);
}

TEST(CrossValidation, PerfectWhenNothingCongested) {
  stats::Rng rng(124);
  auto topo_rng = rng.fork(1);
  const auto topo = topology::make_planetlab_like(
      {.hosts = 10, .as_count = 5, .routers_per_as = 5}, topo_rng);
  const auto routed = topology::route_paths(topo.graph, topo.hosts, topo.hosts);
  const net::ReducedRoutingMatrix rrm(topo.graph, routed.paths);

  sim::ScenarioConfig config;
  config.p = 0.0;  // everything good: predictions are ~1, measurements ~1
  sim::SnapshotSimulator simulator(topo.graph, rrm, config, 99);
  const auto series = sim::run_snapshots(simulator, 13);
  stats::SnapshotMatrix history(rrm.path_count(), 12);
  for (std::size_t l = 0; l < 12; ++l) {
    const auto& y = series.snapshots[l].path_log_trans;
    std::copy(y.begin(), y.end(), history.sample(l).begin());
  }
  const auto& current = series.snapshots[12];
  auto split_rng = rng.fork(2);
  const auto split = split_paths(rrm.path_count(), split_rng);
  const auto result = cross_validate(
      topo.graph, routed.paths, history, current.path_log_trans,
      current.path_trans, split, 0.01);
  EXPECT_GT(result.consistency(), 0.95);
}

TEST(CrossValidation, RejectsMismatchedSizes) {
  net::Graph g(2);
  const auto e = g.add_edge(0, 1);
  const std::vector<net::Path> paths{{.source = 0, .destination = 1, .edges = {e}}};
  stats::SnapshotMatrix history(2, 3);  // wrong dim
  const linalg::Vector y{0.0};
  const linalg::Vector phi{1.0};
  SplitIndices split;
  split.inference = {0};
  EXPECT_THROW(cross_validate(g, paths, history, y, phi, split),
               std::invalid_argument);
}

}  // namespace
}  // namespace losstomo::core
