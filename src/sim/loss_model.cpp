#include "sim/loss_model.hpp"

namespace losstomo::sim {

LossModelConfig LossModelConfig::llrd1() { return LossModelConfig{}; }

LossModelConfig LossModelConfig::llrd2() {
  LossModelConfig c;
  c.model = LossRateModel::kLlrd2;
  c.congested_lo = 0.002;
  c.congested_hi = 1.0;
  return c;
}

LossModelConfig LossModelConfig::llrd1_calibrated() {
  LossModelConfig c;
  c.good_hi = 0.0005;
  return c;
}

double draw_loss_rate(const LossModelConfig& config, bool congested,
                      stats::Rng& rng) {
  if (congested) return rng.uniform(config.congested_lo, config.congested_hi);
  return rng.uniform(config.good_lo, config.good_hi);
}

}  // namespace losstomo::sim
