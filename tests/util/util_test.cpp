#include <gtest/gtest.h>

#include <sstream>

#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace losstomo::util {
namespace {

Args make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, ParsesTypedValues) {
  const auto args = make_args({"m=50", "p=0.25", "name=tree", "flag=true"});
  EXPECT_EQ(args.get_int("m", 0), 50);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.25);
  EXPECT_EQ(args.get_string("name", ""), "tree");
  EXPECT_TRUE(args.get_bool("flag", false));
  args.finish();
}

TEST(Args, DefaultsWhenAbsent) {
  const auto args = make_args({});
  EXPECT_EQ(args.get_int("m", 7), 7);
  EXPECT_EQ(args.get_size("n", 9u), 9u);
  EXPECT_FALSE(args.get_bool("flag", false));
  args.finish();
}

TEST(Args, ListParsing) {
  const auto args = make_args({"p=0.1,0.2", "m=1,2,3"});
  EXPECT_EQ(args.get_doubles("p", {}), (std::vector<double>{0.1, 0.2}));
  EXPECT_EQ(args.get_ints("m", {}), (std::vector<int>{1, 2, 3}));
  args.finish();
}

TEST(Args, RejectsMalformedArgument) {
  EXPECT_THROW(make_args({"novalue"}), std::invalid_argument);
  EXPECT_THROW(make_args({"=5"}), std::invalid_argument);
}

TEST(Args, RejectsBadBoolean) {
  const auto args = make_args({"flag=maybe"});
  EXPECT_THROW(args.get_bool("flag", false), std::invalid_argument);
}

TEST(Args, FinishFlagsUnknownKeys) {
  const auto args = make_args({"mm=50"});  // typo for m
  (void)args.get_int("m", 0);
  EXPECT_THROW(args.finish(), std::invalid_argument);
}

TEST(Table, AlignedOutput) {
  Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy", "2"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("long-header"), std::string::npos);
  EXPECT_NE(text.find("yyyy"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Args, AcceptsGnuStyleFlagSpellings) {
  const char* argv[] = {"prog", "--json", "out.json", "--m=7", "p=0.5"};
  const Args args(5, argv);
  EXPECT_EQ(args.get_string("json", ""), "out.json");
  EXPECT_EQ(args.get_int("m", 0), 7);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.5);
  args.finish();
}

TEST(Args, FlagMissingValueIsRejected) {
  const char* trailing[] = {"prog", "--json"};
  EXPECT_THROW(Args(2, trailing), std::invalid_argument);
  // A following flag means the value was forgotten, not that the flag
  // should swallow it.
  const char* swallowed[] = {"prog", "--json", "--full=1"};
  EXPECT_THROW(Args(3, swallowed), std::invalid_argument);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
  EXPECT_EQ(Table::pct(0.912745, 2), "91.27%");
  EXPECT_EQ(Table::pct(0.5, 0), "50%");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  // Burn a little CPU deterministically.
  volatile double acc = 0.0;
  for (int i = 0; i < 100000; ++i) acc += static_cast<double>(i) * 1e-9;
  EXPECT_GT(timer.seconds(), 0.0);
  EXPECT_GE(timer.millis(), timer.seconds() * 1000.0 * 0.99);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
}

}  // namespace
}  // namespace losstomo::util
