#include "stats/streaming.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "stats/covariance_source.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"

namespace losstomo::stats {
namespace {

constexpr std::size_t kDim = 6;

// A stream of correlated observations through the two-beacon routing
// matrix, so off-diagonal covariances are exercised.
std::vector<linalg::Vector> make_stream(std::size_t ticks, std::uint64_t seed) {
  const auto net = losstomo::testing::make_two_beacon_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  stats::Rng rng(seed);
  const auto v = losstomo::testing::random_variances(rrm.link_count(), rng, 0.4);
  const linalg::Vector mu(rrm.link_count(), -0.03);
  const auto y = losstomo::testing::synthetic_observations(rrm.matrix(), mu, v,
                                                           ticks, rng);
  EXPECT_EQ(y.dim(), kDim);
  std::vector<linalg::Vector> stream;
  for (std::size_t l = 0; l < ticks; ++l) {
    const auto row = y.sample(l);
    stream.emplace_back(row.begin(), row.end());
  }
  return stream;
}

// Batch covariance of the trailing window, the reference the accumulator
// must track.
linalg::Matrix batch_covariance(const std::deque<linalg::Vector>& window) {
  stats::SnapshotMatrix y(window.front().size(), window.size());
  for (std::size_t l = 0; l < window.size(); ++l) {
    std::copy(window[l].begin(), window[l].end(), y.sample(l).begin());
  }
  const stats::CenteredSnapshots centered(y);
  return covariance_matrix(centered, 1);
}

double max_matrix_diff(const linalg::Matrix& a, const linalg::Matrix& b) {
  return linalg::max_abs_diff(a.data(), b.data());
}

// Satellite: parity against the batch covariance to <= 1e-10 after >= 3
// window wrap-arounds, at 1/2/8 threads, including the drift-refresh
// boundary (refresh_every deliberately not aligned with the window).
TEST(StreamingMoments, TracksBatchCovarianceThroughWrapArounds) {
  const std::size_t window = 16;
  const auto stream = make_stream(4 * window, 501);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    StreamingMoments acc(kDim, {.window = window,
                                .refresh_every = window + 7,
                                .threads = threads});
    std::deque<linalg::Vector> reference;
    for (const auto& y : stream) {
      const std::size_t refreshes_before = acc.refreshes();
      acc.push(y);
      reference.emplace_back(y);
      if (reference.size() > window) reference.pop_front();
      if (acc.count() < 2) continue;
      const double diff = max_matrix_diff(acc.matrix(), batch_covariance(reference));
      EXPECT_LE(diff, 1e-10) << "threads=" << threads
                             << " push=" << acc.pushes()
                             << " refreshed=" << (acc.refreshes() > refreshes_before);
    }
    // >= 3 wrap-arounds and at least one drift refresh actually happened.
    EXPECT_EQ(acc.pushes(), 4 * window);
    EXPECT_GE(acc.refreshes(), 2u);
  }
}

TEST(StreamingMoments, BitIdenticalAtAnyThreadCount) {
  const std::size_t window = 12;
  const auto stream = make_stream(3 * window + 5, 502);
  std::vector<linalg::Matrix> results;
  std::vector<linalg::Vector> means;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    StreamingMoments acc(kDim, {.window = window, .threads = threads});
    for (const auto& y : stream) acc.push(y);
    results.push_back(acc.matrix());
    means.push_back(acc.means());
  }
  for (std::size_t t = 1; t < results.size(); ++t) {
    EXPECT_EQ(results[0].data(), results[t].data());
    EXPECT_EQ(means[0], means[t]);
  }
}

TEST(StreamingMoments, ManualRefreshDiscardsDriftOnly) {
  const std::size_t window = 10;
  const auto stream = make_stream(3 * window, 503);
  StreamingMoments acc(kDim, {.window = window, .refresh_every = 1000});
  for (const auto& y : stream) acc.push(y);
  const linalg::Matrix drifted = acc.matrix();
  acc.refresh();
  EXPECT_LE(max_matrix_diff(drifted, acc.matrix()), 1e-12);
}

TEST(StreamingMoments, MeansMatchWindowAverages) {
  const std::size_t window = 8;
  const auto stream = make_stream(2 * window + 3, 504);
  StreamingMoments acc(kDim, {.window = window});
  std::deque<linalg::Vector> reference;
  for (const auto& y : stream) {
    acc.push(y);
    reference.emplace_back(y);
    if (reference.size() > window) reference.pop_front();
  }
  for (std::size_t i = 0; i < kDim; ++i) {
    double mean = 0.0;
    for (const auto& y : reference) mean += y[i];
    mean /= static_cast<double>(reference.size());
    EXPECT_NEAR(acc.means()[i], mean, 1e-12);
  }
}

TEST(StreamingMoments, CovarianceEntriesMatchMatrix) {
  const std::size_t window = 8;
  const auto stream = make_stream(window + 2, 505);
  StreamingMoments acc(kDim, {.window = window});
  for (const auto& y : stream) acc.push(y);
  const auto& s = acc.matrix();
  for (std::size_t i = 0; i < kDim; ++i) {
    for (std::size_t j = 0; j < kDim; ++j) {
      EXPECT_DOUBLE_EQ(acc.covariance(i, j), s(i, j));
    }
  }
  EXPECT_TRUE(acc.matrix_is_cheap());
}

TEST(StreamingMoments, WindowFillSemantics) {
  StreamingMoments acc(3, {.window = 4});
  const linalg::Vector y{1.0, 2.0, 3.0};
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_FALSE(acc.full());
  for (std::size_t t = 0; t < 6; ++t) acc.push(y);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_TRUE(acc.full());
  EXPECT_EQ(acc.pushes(), 6u);
}

TEST(StreamingMoments, RejectsBadConfigAndInput) {
  EXPECT_THROW(StreamingMoments(3, {.window = 1}), std::invalid_argument);
  StreamingMoments acc(3, {.window = 4});
  const linalg::Vector wrong{1.0, 2.0};
  EXPECT_THROW(acc.push(wrong), std::invalid_argument);
  acc.push(linalg::Vector{1.0, 2.0, 3.0});
  EXPECT_THROW(static_cast<void>(acc.covariance(0, 0)), std::logic_error);
  EXPECT_THROW(static_cast<void>(acc.matrix()), std::logic_error);
}

}  // namespace
}  // namespace losstomo::stats
