#include "core/variance_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/augmented_matrix.hpp"
#include "core/pair_moments.hpp"
#include "io/checkpoint.hpp"
#include "io/checkpoint_tags.hpp"
#include "linalg/nnls.hpp"
#include "linalg/qr.hpp"
#include "util/parallel.hpp"

namespace losstomo::core {

namespace {

// Retained scalar reference of the pairwise accumulation (drop-negative
// policy): every path pair recomputes its sample covariance with an O(m)
// inner loop.  The blocked path below must match it to last-ulps rounding;
// the parity tests enforce that.
NormalEquations accumulate_pairwise_reference(
    const linalg::SparseBinaryMatrix& r, const stats::CenteredSnapshots& y,
    bool drop_negative) {
  const std::size_t np = r.rows();
  const std::size_t nc = r.cols();
  const std::size_t m = y.count();
  NormalEquations sys{linalg::Matrix(nc, nc), linalg::Vector(nc, 0.0)};

  std::vector<std::uint32_t> shared;
  for (std::size_t i = 0; i < np; ++i) {
    const auto ri = r.row(i);
    for (std::size_t j = i; j < np; ++j) {
      linalg::intersect_sorted(ri, r.row(j), shared);
      if (shared.empty()) continue;  // all-zero equation carries nothing
      double cov = 0.0;
      for (std::size_t l = 0; l < m; ++l) {
        const auto row = y.sample(l);
        cov += row[i] * row[j];
      }
      cov /= static_cast<double>(m - 1);
      if (drop_negative && cov < 0.0) {
        ++sys.dropped;
        continue;
      }
      ++sys.used;
      for (const auto a : shared) {
        sys.h[a] += cov;
        for (const auto b : shared) sys.g(a, b) += 1.0;
      }
    }
  }
  return sys;
}

// Deterministic estimate of the pair-sharing structure: how many path
// pairs share at least one link (fraction f) and how many links a sharing
// pair shares on average.  Samples up to `kSamples` pairs on a fixed stride
// over the packed upper-triangle pair index — no RNG, no dependence on the
// thread count.
struct SharingEstimate {
  double fraction = 0.0;      // sharing pairs / all pairs
  double mean_shared = 0.0;   // avg |shared| over sharing samples
};

SharingEstimate estimate_sharing(const linalg::SparseBinaryMatrix& r) {
  const std::size_t np = r.rows();
  const std::size_t total = pair_count(np);
  constexpr std::size_t kSamples = 2048;
  const std::size_t stride = std::max<std::size_t>(1, total / kSamples);
  std::vector<std::uint32_t> shared;
  std::size_t samples = 0, sharing = 0, shared_links = 0;
  std::size_t i = 0;
  std::size_t row_base = 0;  // packed index of pair (i, i)
  for (std::size_t p = 0; p < total; p += stride) {
    while (p >= row_base + (np - i)) {
      row_base += np - i;
      ++i;
    }
    const std::size_t j = i + (p - row_base);
    linalg::intersect_sorted(r.row(i), r.row(j), shared);
    ++samples;
    if (!shared.empty()) {
      ++sharing;
      shared_links += shared.size();
    }
  }
  SharingEstimate est;
  if (samples > 0) {
    est.fraction = static_cast<double>(sharing) / static_cast<double>(samples);
  }
  if (sharing > 0) {
    est.mean_shared =
        static_cast<double>(shared_links) / static_cast<double>(sharing);
  }
  return est;
}

// Blocked/parallel pairwise accumulation over a CovarianceSource.  Two
// covariance strategies, chosen from the sampled sharing structure (a pure
// function of the problem, so the choice is reproducible):
//  * dense sharing — or any source that already holds S (streaming
//    accumulators): read S(i, j) per pair, removing the seed's O(m) inner
//    loop from every pair;
//  * sparse sharing on a batch source: most pairs carry no equation, so
//    both the covariances AND the pair visits themselves are wasted work —
//    candidate discovery through the column lists (core/sharing_pairs.hpp
//    PartnerFinder) enumerates only the pairs that share a link, and the
//    on-demand per-pair covariance runs for exactly those.  The visited
//    sharing pairs come back in the same (i asc, j asc) order the full
//    upper-triangle scan produced, so the accumulated sums are unchanged.
// Either way G/h are folded over path-row chunks with per-chunk partials;
// chunk boundaries depend only on the problem size, so the reduction order
// — and therefore the result — is bit-identical at any thread count.
//
// Caveat vs the scalar reference: under the matrix strategy a pair whose
// true covariance sits within an ulp of zero can round to the opposite sign
// than the scalar sum and flip its drop decision (one whole equation).  The
// parity guarantee therefore assumes no covariance is exactly at the zero
// boundary — sampling noise makes that measure-zero in practice.
NormalEquations accumulate_pairwise_blocked(const linalg::SparseBinaryMatrix& r,
                                            const stats::CovarianceSource& y,
                                            bool drop_negative,
                                            std::size_t threads) {
  const std::size_t np = r.rows();
  const std::size_t nc = r.cols();
  const std::size_t m = y.count();
  if (np == 0) {
    return NormalEquations{linalg::Matrix(nc, nc), linalg::Vector(nc, 0.0)};
  }
  const SharingEstimate sharing = estimate_sharing(r);
  // The full matrix pays off once a meaningful fraction of pairs would
  // otherwise run the O(m) scalar loop — or comes for free from the source.
  const bool use_matrix = sharing.fraction >= 0.125 || y.matrix_is_cheap();
  const linalg::Matrix* s = use_matrix ? &y.matrix() : nullptr;
  const std::span<const double> flat = use_matrix ? std::span<const double>{}
                                                  : y.centered_flat();

  // Balance chunk count against the per-chunk partial cost: each extra
  // chunk buys 1/chunks of the pair-loop work but costs an nc^2 partial
  // (copy-init + reduce).  All inputs are problem sizes or the
  // deterministic sharing sample, never the thread count.
  double row_len = 0.0;
  for (std::size_t i = 0; i < np; ++i) row_len += static_cast<double>(r.row(i).size());
  row_len /= static_cast<double>(std::max<std::size_t>(np, 1));
  const double pair_ops =
      static_cast<double>(pair_count(np)) *
      (2.0 * row_len +
       sharing.fraction * (sharing.mean_shared * sharing.mean_shared +
                           (use_matrix ? 1.0 : static_cast<double>(m))));
  const double chunk_overhead = 4.0 * static_cast<double>(nc) * static_cast<double>(nc);
  const std::size_t partial_bytes = nc * nc * sizeof(double) + nc * sizeof(double);
  const std::size_t budget_chunks = std::max<std::size_t>(
      1, (std::size_t{1} << 28) / std::max<std::size_t>(partial_bytes, 1));
  const std::size_t want_chunks = static_cast<std::size_t>(std::clamp(
      pair_ops / (8.0 * chunk_overhead), 1.0, 32.0));
  const std::size_t chunks = std::min({want_chunks, budget_chunks, np});

  // Sparse sharing: visit only the pairs that share a link, discovered
  // through the transpose incidence.  The column lists are shared across
  // chunks; each chunk owns its PartnerFinder (stamp array).
  const std::vector<std::vector<std::uint32_t>> columns =
      use_matrix ? std::vector<std::vector<std::uint32_t>>{}
                 : r.column_lists();

  const auto body = [&](NormalEquations& part, std::size_t i_begin,
                        std::size_t i_end) {
        std::vector<std::uint32_t> shared;
        std::optional<PartnerFinder> finder;
        std::vector<std::uint32_t> partners;
        if (!use_matrix) finder.emplace(r, columns);
        const auto accumulate = [&](std::size_t i, std::size_t j,
                                    const double* si) {
          linalg::intersect_sorted(r.row(i), r.row(j), shared);
          if (shared.empty()) return;
          double cov;
          if (use_matrix) {
            cov = si[j];
          } else if (!flat.empty()) {
            // On-demand covariance, identical to the scalar reference.
            cov = 0.0;
            const double* pi = flat.data() + i;
            const double* pj = flat.data() + j;
            for (std::size_t l = 0; l < m; ++l, pi += np, pj += np) {
              cov += *pi * *pj;
            }
            cov /= static_cast<double>(m - 1);
          } else {
            cov = y.covariance(i, j);
          }
          if (drop_negative && cov < 0.0) {
            ++part.dropped;
            return;
          }
          ++part.used;
          for (const auto a : shared) {
            part.h[a] += cov;
            for (const auto b : shared) part.g(a, b) += 1.0;
          }
        };
        for (std::size_t i = i_begin; i < i_end; ++i) {
          if (use_matrix) {
            const double* si = s->row(i).data();
            for (std::size_t j = i; j < np; ++j) accumulate(i, j, si);
          } else {
            finder->partners_of(i, partners);
            for (const auto j : partners) accumulate(i, j, nullptr);
          }
        }
  };

  NormalEquations acc{linalg::Matrix(nc, nc), linalg::Vector(nc, 0.0)};
  if (chunks <= 1) {
    body(acc, 0, np);
    return acc;
  }

  // Chunk boundaries balanced by *pair* count: row i carries np - i pairs,
  // so equal-width row ranges would load the first chunk with ~2x the
  // average work and cap parallel scaling.  Boundaries depend only on
  // (np, chunks) — the fixed reduction order below is untouched.
  std::vector<std::size_t> bounds(chunks + 1, np);
  bounds[0] = 0;
  {
    const double per_chunk =
        static_cast<double>(pair_count(np)) / static_cast<double>(chunks);
    std::size_t i = 0;
    double covered = 0.0;
    for (std::size_t c = 1; c < chunks; ++c) {
      const double target = per_chunk * static_cast<double>(c);
      while (i < np && covered < target) {
        covered += static_cast<double>(np - i);
        ++i;
      }
      bounds[c] = i;
    }
  }

  std::vector<NormalEquations> partials(chunks, acc);
  util::ThreadPool::global().run(
      chunks,
      [&](std::size_t c) { body(partials[c], bounds[c], bounds[c + 1]); },
      threads);
  acc = std::move(partials.front());
  for (std::size_t c = 1; c < chunks; ++c) {
    const NormalEquations& part = partials[c];
    auto& gd = acc.g.data();
    const auto& pd = part.g.data();
    for (std::size_t idx = 0; idx < gd.size(); ++idx) gd[idx] += pd[idx];
    for (std::size_t k = 0; k < acc.h.size(); ++k) acc.h[k] += part.h[k];
    acc.used += part.used;
    acc.dropped += part.dropped;
  }
  return acc;
}

// Closed-form accumulation keeping all equations (policy kKeep).  Both the
// normal matrix and the right-hand side are assembled in parallel inside
// core/augmented_matrix.cpp.
NormalEquations accumulate_closed_form(const linalg::SparseBinaryMatrix& r,
                                       const stats::CenteredSnapshots& y,
                                       std::size_t threads) {
  NormalEquations sys;
  const linalg::CoTraversalGram gram(r);
  sys.g = augmented_normal_matrix(gram, threads);
  sys.h = augmented_normal_rhs(y, r.column_lists(), threads);
  sys.used = pair_count(r.rows());
  return sys;
}

// Retained scalar reference of the closed form: the seed's sequential
// sweeps (snapshot-outer path-variance accumulation, serial per-link
// sums).  The parallel version above preserves every per-element summation
// order, so the parity tests assert the two are equal — this function is
// what makes that assertion meaningful.
NormalEquations accumulate_closed_form_reference(
    const linalg::SparseBinaryMatrix& r, const stats::CenteredSnapshots& y) {
  NormalEquations sys;
  const linalg::CoTraversalGram gram(r);
  sys.g = gram.map_to_dense([](double n) { return n * (n + 1.0) / 2.0; }, 1);
  sys.used = pair_count(r.rows());

  const auto column_paths = r.column_lists();
  const std::size_t nc = column_paths.size();
  const std::size_t m = y.count();
  sys.h.assign(nc, 0.0);
  linalg::Vector path_var(y.dim(), 0.0);
  for (std::size_t l = 0; l < m; ++l) {
    const auto row = y.sample(l);
    for (std::size_t i = 0; i < y.dim(); ++i) path_var[i] += row[i] * row[i];
  }
  for (auto& v : path_var) v /= static_cast<double>(m - 1);
  for (std::size_t k = 0; k < nc; ++k) {
    const auto& paths = column_paths[k];
    double full_sum = 0.0;
    for (std::size_t l = 0; l < m; ++l) {
      const auto row = y.sample(l);
      double s = 0.0;
      for (const auto i : paths) s += row[i];
      full_sum += s * s;
    }
    full_sum /= static_cast<double>(m - 1);
    double diag = 0.0;
    for (const auto i : paths) diag += path_var[i];
    sys.h[k] = 0.5 * (full_sum + diag);
  }
  return sys;
}

// Rank-revealing fallback for a drop-negative G left singular (or
// numerically so) by equation drops with every diagonal still positive:
// pivoted Cholesky identifies the well-conditioned link subset, the
// reduced SPD system is solved directly, and the pivot-deficient links are
// pinned to zero variance — the same degradation the dense-QR path gets
// from its pivoted fallback, instead of a jitter-amplified solution on the
// full singular system.  Deterministic: pivot selection depends only on G,
// which both the batch accumulation and the streaming integer maintenance
// produce exactly.
linalg::Vector solve_rank_revealing(const linalg::Matrix& g,
                                    const linalg::Vector& h,
                                    std::size_t& pinned) {
  const std::size_t n = g.rows();
  const linalg::PivotedCholesky pivoted(g);
  const std::size_t rank = pivoted.rank();
  const auto& perm = pivoted.permutation();
  linalg::Matrix gs(rank, rank);
  linalg::Vector hs(rank);
  for (std::size_t i = 0; i < rank; ++i) {
    hs[i] = h[perm[i]];
    for (std::size_t j = 0; j < rank; ++j) gs(i, j) = g(perm[i], perm[j]);
  }
  const linalg::RegularizedCholesky chol(gs);
  const auto vs = chol.solve(hs);
  linalg::Vector v(n, 0.0);
  for (std::size_t i = 0; i < rank; ++i) v[perm[i]] = vs[i];
  pinned = n - rank;
  return v;
}

// Identity-pins the links no kept pair equation covers: their G row and
// column are exactly zero (integer counts), so a unit diagonal decouples
// them — v = h / 1 = 0 — without perturbing any live link.  Applied only
// under drop-negative: a reduced routing matrix has no all-zero column, so
// keep-all diagonals are always positive on a full path set, and churned
// (submatrix) systems resolve the policy to drop-negative.
std::size_t pin_uncovered_links(NormalEquations& sys) {
  std::size_t pinned = 0;
  for (std::size_t a = 0; a < sys.g.rows(); ++a) {
    if (sys.g(a, a) == 0.0) {
      sys.g(a, a) = 1.0;
      ++pinned;
    }
  }
  return pinned;
}

VarianceEstimate finish(linalg::Vector v, VarianceEstimate partial) {
  for (auto& value : v) {
    if (value < 0.0) {
      value = 0.0;
      ++partial.negative_clamped;
    }
  }
  partial.v = std::move(v);
  return partial;
}

NormalEquations build_normal_equations_centered(
    const linalg::SparseBinaryMatrix& r, const stats::CenteredSnapshots& centered,
    const VarianceOptions& options) {
  if (!resolve_negative_policy(options, r.rows())) {
    return options.use_reference_impl
               ? accumulate_closed_form_reference(r, centered)
               : accumulate_closed_form(r, centered, options.threads);
  }
  if (options.use_reference_impl) {
    return accumulate_pairwise_reference(r, centered, true);
  }
  const stats::BatchCovarianceSource source(centered, options.threads);
  return accumulate_pairwise_blocked(r, source, true, options.threads);
}

// Paper-exact dense path: materialise A, drop rows whose packed covariance
// is negative (when the policy says so), Householder QR.  `sigma_full` is
// the packed pair-covariance vector aligned with build_augmented_matrix.
VarianceEstimate dense_qr_estimate(const linalg::SparseBinaryMatrix& r,
                                   const linalg::Vector& sigma_full,
                                   bool drop_negative,
                                   const VarianceOptions& options) {
  const std::size_t nc = r.cols();
  // All-zero rows (path pairs with no shared link) carry no equation and
  // are excluded up front, mirroring the pairwise accumulation.
  const auto a_full =
      build_augmented_matrix(r, options.dense_entry_cap, options.threads);
  std::vector<std::size_t> keep;
  std::size_t dropped = 0;
  keep.reserve(sigma_full.size());
  for (std::size_t row = 0; row < sigma_full.size(); ++row) {
    const auto arow = a_full.row(row);
    const bool informative =
        std::any_of(arow.begin(), arow.end(), [](double x) { return x != 0.0; });
    if (!informative) continue;
    if (drop_negative && sigma_full[row] < 0.0) {
      ++dropped;
      continue;
    }
    keep.push_back(row);
  }
  linalg::Matrix a(keep.size(), nc);
  linalg::Vector sigma(keep.size());
  util::parallel_for(
      keep.size(), 64,
      [&](std::size_t out_begin, std::size_t out_end) {
        for (std::size_t out = out_begin; out < out_end; ++out) {
          const auto src = a_full.row(keep[out]);
          std::copy(src.begin(), src.end(), a.row(out).begin());
          sigma[out] = sigma_full[keep[out]];
        }
      },
      options.threads);
  VarianceEstimate est;
  est.method = "dense-qr";
  est.equations_used = keep.size();
  est.equations_dropped = dropped;
  const linalg::HouseholderQr qr(a);
  if (qr.full_column_rank()) {
    return finish(qr.solve(sigma), std::move(est));
  }
  // Dropping rows can (rarely) lose rank; fall back to the basic
  // rank-revealing solution.
  est.method = "dense-qr(pivoted-fallback)";
  return finish(linalg::PivotedQr(a).solve_basic(sigma), std::move(est));
}

// Shared normal-equation tail of both estimate_link_variances overloads.
VarianceEstimate solve_normal_system(NormalEquations sys, VarianceMethod method,
                                     bool drop_negative,
                                     const VarianceOptions& options) {
  VarianceEstimate est;
  est.equations_used = sys.used;
  est.equations_dropped = sys.dropped;
  if (drop_negative) est.links_pinned = pin_uncovered_links(sys);

  if (method == VarianceMethod::kNnls) {
    est.method = drop_negative ? "nnls(drop-negative)" : "nnls(keep-all)";
    auto result = linalg::nnls_gram(sys.g, sys.h);
    return finish(std::move(result.x), std::move(est));
  }

  est.method = drop_negative ? "normal(drop-negative)" : "normal(closed-form)";
  // Drop-negative G is integer-exact, so an exactly-singular system can
  // compute a rounding-level "positive" pivot and sail through a plain
  // factorization; the relative pivot floor forces such systems into the
  // jitter ladder (and from there the rank-revealing fallback).
  const linalg::RegularizedCholesky chol(sys.g, 1e-12, 6,
                                         drop_negative ? 1e-12 : 0.0);
  if (drop_negative && options.rank_revealing_min_attempts > 0 &&
      chol.jitter_attempts() >= options.rank_revealing_min_attempts) {
    // Equation drops left G rank-deficient beyond both the zero-diagonal
    // pins and the configured jitter tolerance: degrade by pinning the
    // deficient pivots instead of amplifying the jitter.
    est.method = "normal(drop-negative,rank-revealing)";
    std::size_t pinned = 0;
    auto v = solve_rank_revealing(sys.g, sys.h, pinned);
    est.links_pinned += pinned;
    return finish(std::move(v), std::move(est));
  }
  est.jitter_used = chol.jitter_used();
  return finish(chol.solve(sys.h), std::move(est));
}

}  // namespace

bool resolve_negative_policy(const VarianceOptions& options, std::size_t np) {
  switch (options.negatives) {
    case NegativeCovariancePolicy::kDrop:
      return true;
    case NegativeCovariancePolicy::kKeep:
      return false;
    case NegativeCovariancePolicy::kAuto:
    default:
      return np <= options.pairwise_path_cap;
  }
}

NormalEquations build_normal_equations(const linalg::SparseBinaryMatrix& r,
                                       const stats::SnapshotMatrix& y,
                                       const VarianceOptions& options) {
  if (y.dim() != r.rows()) {
    throw std::invalid_argument("snapshot dimension != path count");
  }
  if (y.count() < 2) throw std::invalid_argument("need >= 2 snapshots");
  const stats::CenteredSnapshots centered(y);
  return build_normal_equations_centered(r, centered, options);
}

NormalEquations build_normal_equations(const linalg::SparseBinaryMatrix& r,
                                       const stats::CovarianceSource& source,
                                       const VarianceOptions& options) {
  if (source.dim() != r.rows()) {
    throw std::invalid_argument("source dimension != path count");
  }
  if (source.count() < 2) throw std::invalid_argument("need >= 2 snapshots");
  if (resolve_negative_policy(options, r.rows())) {
    return accumulate_pairwise_blocked(r, source, true, options.threads);
  }
  NormalEquations sys;
  const linalg::CoTraversalGram gram(r);
  sys.g = augmented_normal_matrix(gram, options.threads);
  sys.h = augmented_normal_rhs(source.matrix(), r.column_lists(),
                               options.threads);
  sys.used = pair_count(r.rows());
  return sys;
}

VarianceEstimate estimate_link_variances(const linalg::SparseBinaryMatrix& r,
                                         const stats::SnapshotMatrix& y,
                                         const VarianceOptions& options) {
  if (y.dim() != r.rows()) {
    throw std::invalid_argument("snapshot dimension != path count");
  }
  if (y.count() < 2) throw std::invalid_argument("need >= 2 snapshots");
  const stats::CenteredSnapshots centered(y);

  // Resolve the auto knobs.
  VarianceMethod method = options.method;
  if (method == VarianceMethod::kAuto) {
    method = VarianceMethod::kNormal;
  }
  const bool drop_negative = resolve_negative_policy(options, r.rows());

  if (method == VarianceMethod::kDenseQr) {
    const auto sigma_full =
        options.use_reference_impl
            ? packed_covariances(centered)
            : packed_covariances(
                  stats::covariance_matrix(centered, options.threads));
    return dense_qr_estimate(r, sigma_full, drop_negative, options);
  }

  return solve_normal_system(build_normal_equations_centered(r, centered, options),
                             method, drop_negative, options);
}

VarianceEstimate estimate_link_variances(const linalg::SparseBinaryMatrix& r,
                                         const stats::CovarianceSource& source,
                                         const VarianceOptions& options) {
  if (source.dim() != r.rows()) {
    throw std::invalid_argument("source dimension != path count");
  }
  if (source.count() < 2) throw std::invalid_argument("need >= 2 snapshots");

  VarianceMethod method = options.method;
  if (method == VarianceMethod::kAuto) {
    method = VarianceMethod::kNormal;
  }
  const bool drop_negative = resolve_negative_policy(options, r.rows());

  if (method == VarianceMethod::kDenseQr) {
    return dense_qr_estimate(r, packed_covariances(source.matrix()),
                             drop_negative, options);
  }
  return solve_normal_system(build_normal_equations(r, source, options), method,
                             drop_negative, options);
}

StreamingNormalEquations::StreamingNormalEquations(
    const linalg::SparseBinaryMatrix& r, const VarianceOptions& options)
    : options_(options),
      np_(r.rows()),
      nc_(r.cols()),
      drop_negative_(resolve_negative_policy(options, r.rows())) {
  sys_.g = linalg::Matrix(nc_, nc_);
  sys_.h.assign(nc_, 0.0);
  if (!drop_negative_) {
    // Keep-all: G depends only on the routing matrix.
    const linalg::CoTraversalGram gram(r);
    sys_.g = augmented_normal_matrix(gram, options_.threads);
    sys_.used = pair_count(np_);
    column_paths_ = r.column_lists();
    return;
  }
  // Drop-negative: defer the sharing-pair enumeration to the first
  // refresh() (lazy build keeps construction O(nnz) — just this copy).
  // Every pair starts "dropped", so every link starts identity-pinned:
  // G = I, and the first refresh folds the kept pairs in (and the pins
  // out) through the flip path.
  pending_r_ = r;
  flip_scratch_.assign(nc_, 0.0);
  coverage_.assign(nc_, 0);
  pinned_in_g_.assign(nc_, 1);
  pin_pending_mark_.assign(nc_, 0);
  pins_active_ = nc_;
  for (std::size_t a = 0; a < nc_; ++a) sys_.g(a, a) = 1.0;
}

StreamingNormalEquations::StreamingNormalEquations(
    const linalg::SparseBinaryMatrix& r, const VarianceOptions& options,
    std::shared_ptr<SharingPairStore> store)
    : StreamingNormalEquations(r, options) {
  if (!drop_negative_) {
    throw std::invalid_argument(
        "a shared pair store requires the drop-negative policy");
  }
  if (!store || store->path_count() != np_) {
    throw std::invalid_argument("pair store does not match the routing matrix");
  }
  pairs_ = std::move(store);
  pair_kept_.assign(pairs_->pair_count(), 0);
  pending_mark_.assign(pairs_->pair_count(), 0);
  pending_r_.reset();
}

void StreamingNormalEquations::ensure_store() {
  if (pairs_) return;
  pairs_ = std::make_shared<SharingPairStore>(
      SharingPairStore::build(*pending_r_, options_.threads));
  pair_kept_.assign(pairs_->pair_count(), 0);
  pending_mark_.assign(pairs_->pair_count(), 0);
  pending_r_.reset();
}

// Folds the flipped pairs into G (integer counts, so the order does not
// matter and the result exactly matches a from-scratch accumulation over
// the current kept set) and records each flip in the pending set the next
// solve() reconciles the cached factor against.  A pair that flips back
// before the factor caught up cancels out of the pending set entirely —
// the saturation that lets the factor survive sign-flip storms.
void StreamingNormalEquations::apply_flips(
    const std::vector<std::size_t>& flips) {
  for (const std::size_t p : flips) {
    pair_kept_[p] ^= 1;
    const bool now_kept = pair_kept_[p] != 0;
    const double sign = now_kept ? 1.0 : -1.0;
    const auto links = pairs_->links(p);
    for (const auto a : links) {
      for (const auto b : links) sys_.g(a, b) += sign;
    }
    // Kept-pair coverage per link: a link crossing zero coverage enters or
    // leaves the identity-pinned state — an extra +/- e_a e_a^T on G that
    // the factor absorbs as a rank-1 border step.
    for (const auto a : links) {
      if (now_kept) {
        if (coverage_[a]++ == 0) {
          sys_.g(a, a) -= 1.0;
          pinned_in_g_[a] = 0;
          --pins_active_;
          note_pin_change(a);
        }
      } else {
        if (--coverage_[a] == 0) {
          sys_.g(a, a) += 1.0;
          pinned_in_g_[a] = 1;
          ++pins_active_;
          note_pin_change(a);
        }
      }
    }
    if (pending_mark_[p]) {
      // Net zero against the factor: drop from the pending set (the
      // stale queue entry is skipped lazily when its mark is clear).
      pending_mark_[p] = 0;
      --pending_live_;
    } else {
      pending_mark_[p] = 1;
      ++pending_live_;
      pending_.push_back(p);
    }
  }
  // Compact cancelled entries: a sustained sign-flip storm re-queues each
  // oscillating pair every other tick, and the stale-factor regime never
  // drains the queue — without this the queue would grow with ticks, not
  // with the live set.
  if (pending_.size() > 2 * pending_live_ + 64) {
    std::erase_if(pending_,
                  [&](std::size_t p) { return pending_mark_[p] == 0; });
  }
  if (pin_pending_.size() > 2 * pin_pending_live_ + 64) {
    std::erase_if(pin_pending_,
                  [&](std::size_t a) { return pin_pending_mark_[a] == 0; });
  }
}

void StreamingNormalEquations::note_pin_change(std::size_t link) {
  if (pin_pending_mark_[link]) {
    // Pinned and unpinned again before the factor caught up: net zero.
    pin_pending_mark_[link] = 0;
    --pin_pending_live_;
  } else {
    pin_pending_mark_[link] = 1;
    ++pin_pending_live_;
    pin_pending_.push_back(link);
  }
}

void StreamingNormalEquations::set_path_live(std::size_t path, bool live) {
  if (!drop_negative_) {
    throw std::logic_error(
        "path churn requires the drop-negative streaming configuration");
  }
  ensure_store();
  if (path >= pairs_->path_count()) {
    throw std::invalid_argument("path out of range");
  }
  if (pairs_->row_live(path) == live) return;
  pairs_->set_row_live(path, live);
  if (!live) {
    // Flip the departing path's kept pairs out of G now; refresh() will
    // skip the dead pairs from here on.
    pairs_->pairs_of_path(path, path_pairs_scratch_);
    std::vector<std::size_t> flips;
    for (const auto p : path_pairs_scratch_) {
      if (pair_kept_[p]) flips.push_back(p);
    }
    apply_flips(flips);
  }
  // Going live needs no immediate work: the pairs re-enter through
  // refresh() once the covariance source reports them ready again.
}

void StreamingNormalEquations::add_path(const linalg::SparseBinaryMatrix& r) {
  add_paths(r, 1);
}

void StreamingNormalEquations::add_paths(const linalg::SparseBinaryMatrix& r,
                                         std::size_t count) {
  if (!drop_negative_) {
    throw std::logic_error(
        "path churn requires the drop-negative streaming configuration");
  }
  if (count == 0) {
    throw std::invalid_argument("add_paths needs count >= 1");
  }
  if (r.rows() != np_ + count) {
    throw std::invalid_argument(
        "add_paths: appended row count does not match the routing matrix");
  }
  if (r.cols() != nc_) {
    throw std::invalid_argument(
        "add_paths: link universe mismatch (call grow_links first)");
  }
  np_ = r.rows();
  if (!pairs_) {
    pending_r_ = r;  // still lazy: the eventual build covers the new rows
    return;
  }
  pairs_->add_rows(r);
  // New pairs join dropped; they enter G through refresh() when ready.
  pair_kept_.resize(pairs_->pair_count(), 0);
  pending_mark_.resize(pairs_->pair_count(), 0);
}

void StreamingNormalEquations::grow_links(std::size_t count) {
  if (!drop_negative_) {
    throw std::logic_error(
        "link growth requires the drop-negative streaming configuration");
  }
  if (count == 0) return;
  const std::size_t nc = nc_ + count;
  // Fresh links have no kept pair equation, so they join identity-pinned:
  // G grows to diag(G, I) exactly.
  linalg::Matrix g(nc, nc);
  for (std::size_t i = 0; i < nc_; ++i) {
    const auto src = sys_.g.row(i);
    std::copy(src.begin(), src.end(), g.row(i).begin());
  }
  for (std::size_t a = nc_; a < nc; ++a) g(a, a) = 1.0;
  sys_.g = std::move(g);
  sys_.h.resize(nc, 0.0);
  flip_scratch_.resize(nc, 0.0);
  coverage_.resize(nc, 0);
  pinned_in_g_.resize(nc, 1);
  pin_pending_mark_.resize(nc, 0);
  pins_active_ += count;
  nc_ = nc;
  links_grown_ += count;
  if (factor_ && !factor_dirty_) {
    if (factor_->jitter_used() > 0.0) {
      // A jittered factor represents G + j*I; its identity border would
      // mismatch the exact unit diagonal of the grown G.  Rebuild instead.
      factor_dirty_ = true;
    } else {
      // Bordered growth: the identity border extends the factor exactly —
      // no refactorization, and pending flips stay reconcilable.
      factor_->append_identity(count);
    }
  }
}

// Brings the cached factor up to date with G when the pending flip set
// (pair flips + pin/unpin border steps) is small enough for rank-1 steps
// to beat a refactorization.  Returns false when a downdate lost positive
// definiteness (factor invalid).
bool StreamingNormalEquations::reconcile_factor() {
  const std::size_t cap = options_.factor_update_cap != 0
                              ? options_.factor_update_cap
                              : 4 * std::max<std::size_t>(nc_, 1);
  // Each up/downdate costs up to O(nc^2); a refactorization O(nc^3 / 3).
  // Past ~nc/4 pending flips (by default) the incremental path stops
  // paying for itself — the factor then stays stale and solve() leans on
  // iterative refinement instead.  Past the cumulative cap the drift
  // bound wins.
  const std::size_t stale_threshold = options_.factor_flip_threshold != 0
                                          ? options_.factor_flip_threshold
                                          : nc_ / 4 + 1;
  const std::size_t pending_total = pending_live_ + pin_pending_live_;
  if (pending_total > stale_threshold) return true;
  if (factor_updates_ + pending_total > cap) {
    factor_dirty_ = true;
    return true;
  }
  bool ok = true;
  // Additions before removals: a churn event retires whole batches of pair
  // equations while pinning the links they uncovered (and vice versa on a
  // join), and folding the updates in first keeps every intermediate
  // matrix maximally positive definite, so matched update/downdate batches
  // cannot transiently lose definiteness.
  for (const bool add_pass : {true, false}) {
    for (const std::size_t p : pending_) {
      if (!pending_mark_[p]) continue;  // cancelled while queued
      if ((pair_kept_[p] != 0) != add_pass) continue;
      pending_mark_[p] = 0;
      --pending_live_;
      if (!ok) continue;  // factor already invalid; just drain the queue
      const auto links = pairs_->links(p);
      // The flip perturbs G by +/- e_S e_S^T with e_S the shared-link
      // indicator — exactly one rank-1 step on the factor.
      for (const auto l : links) flip_scratch_[l] = 1.0;
      if (add_pass) {
        factor_->update(flip_scratch_);
      } else {
        ok = factor_->downdate(flip_scratch_);
      }
      for (const auto l : links) flip_scratch_[l] = 0.0;
      if (!ok) {
        ++downdate_fallbacks_;
        factor_dirty_ = true;
        continue;
      }
      ++factor_updates_;
      ++rank1_updates_;
    }
    for (const std::size_t a : pin_pending_) {
      if (!pin_pending_mark_[a]) continue;
      if ((pinned_in_g_[a] != 0) != add_pass) continue;
      pin_pending_mark_[a] = 0;
      --pin_pending_live_;
      if (!ok) continue;
      flip_scratch_[a] = 1.0;
      if (add_pass) {
        factor_->update(flip_scratch_);
      } else {
        ok = factor_->downdate(flip_scratch_);
      }
      flip_scratch_[a] = 0.0;
      if (!ok) {
        ++downdate_fallbacks_;
        factor_dirty_ = true;
        continue;
      }
      ++factor_updates_;
      ++rank1_updates_;
      ++pin_updates_;
    }
  }
  pending_.clear();
  pin_pending_.clear();
  return ok;
}

const NormalEquations& StreamingNormalEquations::refresh(
    const stats::CovarianceSource& source) {
  if (source.dim() != np_) {
    throw std::invalid_argument("source dimension != path count");
  }
  if (source.count() < 2) throw std::invalid_argument("need >= 2 snapshots");
  refreshed_ = true;

  if (!drop_negative_) {
    sys_.h =
        augmented_normal_rhs(source.matrix(), column_paths_, options_.threads);
    return sys_;
  }

  ensure_store();

  // Aligned pair-indexed source (core::PairMoments or the sharded
  // ShardedPairMoments on this very store): each pair's covariance is an
  // O(1) array read — no np x np matrix anywhere in the tick.  Every other
  // source serves the dense S.
  const auto* pair_source = dynamic_cast<const PairIndexedSource*>(&source);
  if (pair_source && pair_source->pair_store() != pairs_.get()) {
    pair_source = nullptr;
  }
  const linalg::Matrix* s = pair_source ? nullptr : &source.matrix();
  const std::span<const double> pair_values =
      pair_source ? pair_source->pair_values() : std::span<const double>{};
  // cov = values[p] / (count - 1): dividing here keeps the arithmetic
  // bit-identical to PairMoments::pair_covariance.
  const double pair_denom = static_cast<double>(source.count() - 1);

  // Per-dimension readiness (path churn): a pair enters the system only
  // when both paths' statistics cover the full current window.
  std::vector<std::uint8_t> ready(np_);
  const std::size_t window_count = source.count();
  for (std::size_t i = 0; i < np_; ++i) {
    ready[i] = source.samples(i) == window_count ? 1 : 0;
  }

  struct Partial {
    linalg::Vector h;
    std::size_t used = 0;
    std::size_t dropped = 0;
    std::vector<std::size_t> flips;
  };
  Partial identity;
  identity.h.assign(nc_, 0.0);
  // Pairs are scanned in chunks whose boundaries depend only on the pair
  // count; partials reduce in ascending chunk order, so h is bit-identical
  // at any thread count and `flips` comes back in ascending pair order.
  Partial acc = util::parallel_reduce(
      pairs_->pair_count(), 8192, identity,
      [&](Partial& part, std::size_t begin, std::size_t end) {
        pairs_->for_pairs(
            begin, end,
            [&](std::size_t p, std::uint32_t i, std::uint32_t j,
                std::span<const std::uint32_t> links) {
              if (!pairs_->pair_live(p, i) || !ready[i] || !ready[j]) {
                // Dead or warming pair: out of the system (neither used
                // nor dropped — matching a batch accumulation over the
                // live-and-ready path subset).
                if (pair_kept_[p]) part.flips.push_back(p);
                return;
              }
              const double cov =
                  pair_source ? pair_values[p] / pair_denom : (*s)(i, j);
              const bool kept = !(cov < 0.0);
              if (kept != (pair_kept_[p] != 0)) part.flips.push_back(p);
              if (!kept) {
                ++part.dropped;
                return;
              }
              ++part.used;
              for (const auto link : links) part.h[link] += cov;
            });
      },
      [](Partial& into, const Partial& part) {
        for (std::size_t k = 0; k < into.h.size(); ++k) into.h[k] += part.h[k];
        into.used += part.used;
        into.dropped += part.dropped;
        into.flips.insert(into.flips.end(), part.flips.begin(),
                          part.flips.end());
      },
      options_.threads);

  apply_flips(acc.flips);
  sys_.h = std::move(acc.h);
  sys_.used = acc.used;
  sys_.dropped = acc.dropped;
  return sys_;
}

VarianceEstimate StreamingNormalEquations::solve() {
  if (!refreshed_) {
    throw std::logic_error("StreamingNormalEquations::solve before refresh");
  }
  VarianceMethod method = options_.method;
  if (method == VarianceMethod::kAuto) method = VarianceMethod::kNormal;
  if (method == VarianceMethod::kDenseQr) {
    throw std::invalid_argument(
        "StreamingNormalEquations does not support kDenseQr; use the batch "
        "path");
  }
  VarianceEstimate est;
  est.equations_used = sys_.used;
  est.equations_dropped = sys_.dropped;
  est.links_pinned = pins_active_;

  if (method == VarianceMethod::kNnls) {
    est.method = drop_negative_ ? "streaming-nnls(drop-negative)"
                                : "streaming-nnls(keep-all)";
    auto result = linalg::nnls_gram(sys_.g, sys_.h);
    return finish(std::move(result.x), std::move(est));
  }

  est.method = drop_negative_ ? "streaming-normal(drop-negative)"
                              : "streaming-normal(keep-all)";
  // Zero-coverage links are identity-pinned inside G, so a factor that
  // needed an *amplified* jitter (ladder rung >= 2, matching the batch
  // trigger) means equation drops left the live block rank-deficient:
  // degrade exactly like the batch path — pivoted rank-revealing solve,
  // deficient links pinned — instead of amplifying the jittered solution.
  const auto rank_revealing_tail = [&](VarianceEstimate partial) {
    partial.method = "streaming-normal(drop-negative,rank-revealing)";
    partial.jitter_used = 0.0;
    std::size_t extra = 0;
    auto pinned_v = solve_rank_revealing(sys_.g, sys_.h, extra);
    partial.links_pinned = pins_active_ + extra;
    return finish(std::move(pinned_v), std::move(partial));
  };
  if (factor_ && !factor_dirty_ && pending_live_ + pin_pending_live_ > 0) {
    // A jitter-regularized factor solves G + j*I, not G; carrying it
    // across G changes would make refinement target a different system
    // than the batch baseline (and on a still-singular G, an unsolvable
    // one).  Jittered factors are refactorized at the first flip instead.
    if (factor_->jitter_used() > 0.0) {
      factor_dirty_ = true;
    } else if (!reconcile_factor()) {
      factor_dirty_ = true;
    }
  }
  if (!factor_ || factor_dirty_) refactorize();
  if (drop_negative_ && options_.rank_revealing_min_attempts > 0 &&
      factor_->jitter_attempts() >= options_.rank_revealing_min_attempts) {
    return rank_revealing_tail(std::move(est));
  }
  est.jitter_used = factor_->jitter_used();
  linalg::Vector v = factor_->solve(sys_.h);
  if (factor_updates_ > 0 || pending_live_ + pin_pending_live_ > 0) {
    // The factor is inexact — up/downdate drift, or deliberately stale
    // after a flip burst too large for rank-1 steps.  G itself is exact
    // (integer counts), so iterative refinement — residual against the
    // true G, correction through the cached factor — recovers
    // direct-solve accuracy at O(nc^2) per step as long as the factor
    // still preconditions G.  When it stops converging, the factor has
    // diverged too far: refactorize and solve directly (bit-identical
    // to the batch solve, as on every freshly refactorized tick).
    if (!refine(v)) {
      refactorize();
      if (drop_negative_ && options_.rank_revealing_min_attempts > 0 &&
          factor_->jitter_attempts() >= options_.rank_revealing_min_attempts) {
        return rank_revealing_tail(std::move(est));
      }
      est.jitter_used = factor_->jitter_used();
      v = factor_->solve(sys_.h);
    }
  }
  return finish(std::move(v), std::move(est));
}

void StreamingNormalEquations::refactorize() {
  // Same pivot floor as the batch solve (see solve_normal_system): an
  // exactly-singular drop-negative G must enter the jitter ladder rather
  // than factorize on a rounding-level pivot.
  factor_.emplace(sys_.g, 1e-12, 6, drop_negative_ ? 1e-12 : 0.0);
  factor_dirty_ = false;
  factor_updates_ = 0;
  // The fresh factor matches G exactly: the pending sets are moot.
  for (const std::size_t p : pending_) pending_mark_[p] = 0;
  pending_.clear();
  pending_live_ = 0;
  for (const std::size_t a : pin_pending_) pin_pending_mark_[a] = 0;
  pin_pending_.clear();
  pin_pending_live_ = 0;
  ++refactorizations_;
}

// Polishes the direct solve F v ~ G^-1 h against the exact G with
// conjugate gradients preconditioned by the cached factor.  A drifted or
// stale factor gives M = F F^T close to G, so PCG converges in a handful
// of steps where plain refinement (Richardson) would need dozens at the
// same O(nc^2) per-step cost.  Returns false when the iteration budget
// runs out or the search direction collapses (numerically indefinite /
// singular system) — the caller then refactorizes.  All arithmetic is
// sequential and depends only on the operand values, so results are
// identical at any thread count.
bool StreamingNormalEquations::refine(linalg::Vector& v) {
  // Tolerance, budget, and contraction come from VarianceOptions so a
  // deployment can trade parity for tick latency (ROADMAP open item); the
  // defaults reproduce the recorded 1e-13 * ||h|| behaviour.
  const int max_iterations = options_.refine_max_iterations;
  if (max_iterations <= 0) return false;  // refinement disabled
  const std::size_t n = sys_.h.size();
  double hnorm = 0.0;
  for (const double x : sys_.h) hnorm = std::max(hnorm, std::fabs(x));
  const double tol = options_.refine_tolerance * std::max(hnorm, 1e-300);

  const linalg::Vector gv = sys_.g.multiply(v);
  linalg::Vector r(n);
  double rnorm = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    r[k] = sys_.h[k] - gv[k];
    rnorm = std::max(rnorm, std::fabs(r[k]));
  }
  if (rnorm <= tol) return true;
  const double r0 = rnorm;

  linalg::Vector z = factor_->solve(r);
  linalg::Vector p = z;
  double rz = 0.0;
  for (std::size_t k = 0; k < n; ++k) rz += r[k] * z[k];
  // Stall guard: on ill-conditioned G the attainable residual floor sits
  // above the tolerance; once progress stops, bail to the refactorization
  // fallback instead of burning the whole iteration budget every tick.
  double best = rnorm;
  int since_best = 0;
  for (int iter = 0; iter < max_iterations; ++iter) {
    ++refine_iterations_;
    const linalg::Vector gp = sys_.g.multiply(p);
    double pgp = 0.0;
    for (std::size_t k = 0; k < n; ++k) pgp += p[k] * gp[k];
    if (!(pgp > 0.0)) return false;  // direction collapsed: G ~ singular
    const double alpha = rz / pgp;
    rnorm = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      v[k] += alpha * p[k];
      r[k] -= alpha * gp[k];
      rnorm = std::max(rnorm, std::fabs(r[k]));
    }
    if (rnorm <= tol) {
      // The recursive residual drifts from the true one when the start
      // point was poor (badly stale factor): accept only on a recomputed
      // residual, else refactorize.
      const linalg::Vector gv2 = sys_.g.multiply(v);
      double true_rnorm = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        true_rnorm = std::max(true_rnorm, std::fabs(sys_.h[k] - gv2[k]));
      }
      return true_rnorm <= 10.0 * tol;
    }
    if (rnorm > 100.0 * r0) return false;  // diverging
    if (rnorm < options_.refine_contraction * best) {
      best = rnorm;
      since_best = 0;
    } else if (++since_best >= options_.refine_stall_window) {
      return false;  // stalled above tolerance
    }
    z = factor_->solve(r);
    double rz_next = 0.0;
    for (std::size_t k = 0; k < n; ++k) rz_next += r[k] * z[k];
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t k = 0; k < n; ++k) p[k] = z[k] + beta * p[k];
  }
  return false;
}

void StreamingNormalEquations::save_state(io::CheckpointWriter& writer,
                                          bool store_external) const {
  writer.begin_section(io::tags::kNormalEquations);
  writer.usize(np_);
  writer.usize(nc_);
  writer.boolean(drop_negative_);
  writer.boolean(refreshed_);
  writer.doubles(sys_.g.data());
  writer.doubles(sys_.h);
  writer.usize(sys_.used);
  writer.usize(sys_.dropped);
  writer.boolean(factor_dirty_);
  writer.boolean(factor_.has_value());
  if (factor_) {
    writer.doubles(factor_->l().data());
    writer.f64(factor_->jitter_used());
    writer.u32(static_cast<std::uint32_t>(factor_->jitter_attempts()));
  }
  writer.usize(factor_updates_);
  writer.usize(refactorizations_);
  writer.usize(rank1_updates_);
  writer.usize(pin_updates_);
  writer.usize(links_grown_);
  writer.usize(downdate_fallbacks_);
  writer.usize(refine_iterations_);
  if (drop_negative_) {
    const bool has_store = pairs_ != nullptr;
    writer.boolean(has_store);
    writer.boolean(store_external);
    if (has_store && !store_external) pairs_->save_state(writer);
    writer.u8s(pair_kept_);
    writer.sizes(pending_);
    writer.u8s(pending_mark_);
    writer.usize(pending_live_);
    writer.u32s(coverage_);
    writer.u8s(pinned_in_g_);
    writer.sizes(pin_pending_);
    writer.u8s(pin_pending_mark_);
    writer.usize(pin_pending_live_);
    writer.usize(pins_active_);
  }
  writer.end_section();
}

void StreamingNormalEquations::restore_state(
    io::CheckpointReader& reader, std::shared_ptr<SharingPairStore> store) {
  reader.expect_section(io::tags::kNormalEquations);
  const std::size_t np = reader.usize();
  const std::size_t nc = reader.usize();
  const bool drop_negative = reader.boolean();
  if (np != np_ || nc != nc_ || drop_negative != drop_negative_) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "normal equations shape " + std::to_string(np) + "x" +
            std::to_string(nc) + (drop_negative ? " drop" : " keep") +
            ", expected " + std::to_string(np_) + "x" + std::to_string(nc_) +
            (drop_negative_ ? " drop" : " keep"));
  }
  // Everything parses into locals first; members only move in at the end
  // (no-partial-state guarantee).
  const bool refreshed = reader.boolean();
  std::vector<double> g = reader.doubles();
  std::vector<double> h = reader.doubles();
  const std::size_t used = reader.usize();
  const std::size_t dropped = reader.usize();
  const bool factor_dirty = reader.boolean();
  const bool has_factor = reader.boolean();
  std::optional<linalg::UpdatableCholesky> factor;
  if (has_factor) {
    std::vector<double> l = reader.doubles();
    const double jitter_used = reader.f64();
    const int jitter_attempts = static_cast<int>(reader.u32());
    if (l.size() != nc_ * nc_) {
      throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                                "cached factor has the wrong shape");
    }
    linalg::Matrix lm(nc_, nc_);
    std::copy(l.begin(), l.end(), lm.data().begin());
    factor = linalg::UpdatableCholesky::from_state(std::move(lm), jitter_used,
                                                   jitter_attempts);
  }
  const std::size_t factor_updates = reader.usize();
  const std::size_t refactorizations = reader.usize();
  const std::size_t rank1_updates = reader.usize();
  const std::size_t pin_updates = reader.usize();
  const std::size_t links_grown = reader.usize();
  const std::size_t downdate_fallbacks = reader.usize();
  const std::size_t refine_iterations = reader.usize();
  if (g.size() != nc_ * nc_ || h.size() != nc_) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "normal equations G/h have the wrong shape");
  }
  std::shared_ptr<SharingPairStore> pairs;
  std::vector<std::uint8_t> pair_kept;
  std::vector<std::size_t> pending;
  std::vector<std::uint8_t> pending_mark;
  std::size_t pending_live = 0;
  std::vector<std::uint32_t> coverage;
  std::vector<std::uint8_t> pinned_in_g;
  std::vector<std::size_t> pin_pending;
  std::vector<std::uint8_t> pin_pending_mark;
  std::size_t pin_pending_live = 0;
  std::size_t pins_active = 0;
  bool has_store = false;
  if (drop_negative_) {
    has_store = reader.boolean();
    const bool store_external = reader.boolean();
    if (has_store) {
      if (store_external) {
        if (store == nullptr) {
          throw io::CheckpointError(
              io::CheckpointErrorKind::kMismatch,
              "checkpoint expects a shared pair store, none was provided");
        }
        pairs = std::move(store);
      } else {
        if (store != nullptr) {
          throw io::CheckpointError(
              io::CheckpointErrorKind::kMismatch,
              "checkpoint embeds its own pair store, but a shared store "
              "was provided");
        }
        pairs = std::make_shared<SharingPairStore>();
        pairs->restore_state(reader);
      }
    }
    pair_kept = reader.u8s();
    pending = reader.sizes();
    pending_mark = reader.u8s();
    pending_live = reader.usize();
    coverage = reader.u32s();
    pinned_in_g = reader.u8s();
    pin_pending = reader.sizes();
    pin_pending_mark = reader.u8s();
    pin_pending_live = reader.usize();
    pins_active = reader.usize();
    const std::size_t pair_count = pairs ? pairs->pair_count() : 0;
    bool ok = pair_kept.size() == pair_count &&
              pending_mark.size() == pair_count &&
              coverage.size() == nc_ && pinned_in_g.size() == nc_ &&
              pin_pending_mark.size() == nc_ && pins_active <= nc_ &&
              (!pairs || pairs->path_count() == np_);
    for (std::size_t k = 0; ok && k < pending.size(); ++k) {
      ok = pending[k] < pair_count;
    }
    for (std::size_t k = 0; ok && k < pin_pending.size(); ++k) {
      ok = pin_pending[k] < nc_;
    }
    if (!ok) {
      throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                                "pending-flip/pin state is inconsistent");
    }
  }
  reader.end_section();

  refreshed_ = refreshed;
  std::copy(g.begin(), g.end(), sys_.g.data().begin());
  sys_.h = std::move(h);
  sys_.used = used;
  sys_.dropped = dropped;
  factor_dirty_ = factor_dirty;
  factor_ = std::move(factor);
  factor_updates_ = factor_updates;
  refactorizations_ = refactorizations;
  rank1_updates_ = rank1_updates;
  pin_updates_ = pin_updates;
  links_grown_ = links_grown;
  downdate_fallbacks_ = downdate_fallbacks;
  refine_iterations_ = refine_iterations;
  if (drop_negative_) {
    if (has_store) {
      pairs_ = std::move(pairs);
      pending_r_.reset();
    }
    // else: the lazy pending_r_ installed by the constructor stays.
    pair_kept_ = std::move(pair_kept);
    pending_ = std::move(pending);
    pending_mark_ = std::move(pending_mark);
    pending_live_ = pending_live;
    coverage_ = std::move(coverage);
    pinned_in_g_ = std::move(pinned_in_g);
    pin_pending_ = std::move(pin_pending);
    pin_pending_mark_ = std::move(pin_pending_mark);
    pin_pending_live_ = pin_pending_live;
    pins_active_ = pins_active;
    flip_scratch_.assign(nc_, 0.0);
  }
}

}  // namespace losstomo::core
