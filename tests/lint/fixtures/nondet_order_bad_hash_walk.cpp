// Fixture: iterating an unordered_map feeds hash order into accumulation
// order — the exact shape that turns into a 1-ulp parity flake.
// These fixtures are linted by losstomo_lint.py --fixtures, never compiled.
#include <unordered_map>

double sum_values(const std::unordered_map<int, double>& unused) {
  std::unordered_map<int, double> acc;
  acc[1] = 0.5;
  double total = 0.0;
  for (const auto& [key, value] : acc) {  // must be flagged
    total += value;
  }
  return total + static_cast<double>(unused.size());
}
