// Fixture: the waived equivalents, each with a written justification.
// lint-fixture-path: src/core/fixture_dump.cpp
#include <cstdint>
#include <ostream>

void dump(std::ostream& out, const double* values) {
  // lint: unsafe-bytes-ok(bit-exact gauge export: uint64 view of an
  // 8-aligned double, same discipline as io/binary_trace)
  const auto* bits = reinterpret_cast<const std::uint64_t*>(values);
  // lint: unsafe-bytes-ok(fixed-shape debug line with no string payload,
  // nothing to escape)
  out << "{\"bits\": " << *bits << "}";
}
