#include "linalg/kernels.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/parallel.hpp"

namespace losstomo::linalg {

namespace {

// Output tile edge: a kTile x kTile accumulator is 32 KiB, sized to stay in
// L1 together with the two row segments feeding it.
constexpr std::size_t kTile = 64;
// Depth panel: rows of A are consumed in runs of kDepth per tile so the
// accumulator writes stay register/L1 resident between reloads.
constexpr std::size_t kDepth = 256;

inline std::size_t tile_count(std::size_t n) {
  return (n + kTile - 1) / kTile;
}

}  // namespace

Matrix blocked_gram(const double* a, std::size_t rows, std::size_t cols,
                    double scale, std::size_t threads) {
  Matrix s(cols, cols);
  if (rows == 0 || cols == 0) return s;
  const std::size_t nb = tile_count(cols);
  const std::size_t tasks = nb * (nb + 1) / 2;  // upper-triangle tile pairs

  util::ThreadPool::global().run(
      tasks,
      [&](std::size_t task) {
        // Unrank the task index into an upper-triangle tile pair (bi <= bj).
        std::size_t bi = 0;
        std::size_t offset = task;
        while (offset >= nb - bi) {
          offset -= nb - bi;
          ++bi;
        }
        const std::size_t bj = bi + offset;

        const std::size_t i0 = bi * kTile, i1 = std::min(i0 + kTile, cols);
        const std::size_t j0 = bj * kTile, j1 = std::min(j0 + kTile, cols);
        const std::size_t bw = j1 - j0;
        double acc[kTile * kTile] = {};

        for (std::size_t k0 = 0; k0 < rows; k0 += kDepth) {
          const std::size_t k1 = std::min(k0 + kDepth, rows);
          for (std::size_t k = k0; k < k1; ++k) {
            const double* row = a + k * cols;
            const double* rj = row + j0;
            for (std::size_t i = i0; i < i1; ++i) {
              const double ai = row[i];
              double* out = acc + (i - i0) * kTile;
              for (std::size_t j = 0; j < bw; ++j) out[j] += ai * rj[j];
            }
          }
        }

        for (std::size_t i = i0; i < i1; ++i) {
          const double* src = acc + (i - i0) * kTile;
          double* dst = &s(i, j0);
          for (std::size_t j = 0; j < bw; ++j) dst[j] = scale * src[j];
        }
        if (bi != bj) {
          for (std::size_t i = i0; i < i1; ++i) {
            for (std::size_t j = j0; j < j1; ++j) s(j, i) = s(i, j);
          }
        } else {
          // Diagonal tile: the full square was accumulated; symmetrise the
          // strictly-lower part from the upper for exact symmetry.
          for (std::size_t i = i0; i < i1; ++i) {
            for (std::size_t j = i0; j < i; ++j) s(i, j) = s(j, i);
          }
        }
      },
      threads);
  return s;
}

Matrix blocked_gram(const Matrix& m, double scale, std::size_t threads) {
  return blocked_gram(m.data().data(), m.rows(), m.cols(), scale, threads);
}

Matrix blocked_multiply(const Matrix& a, const Matrix& b,
                        std::size_t threads) {
  if (a.cols() != b.rows()) throw std::invalid_argument("mm size mismatch");
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  Matrix c(m, n);
  if (m == 0 || kk == 0 || n == 0) return c;

  // Rows of C are independent; panel the reduction dimension so the touched
  // rows of B stay in cache while a block of C rows consumes them.
  const std::size_t grain = std::max<std::size_t>(1, kTile / 4);
  util::parallel_for(
      m, grain,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t k0 = 0; k0 < kk; k0 += kDepth) {
          const std::size_t k1 = std::min(k0 + kDepth, kk);
          for (std::size_t i = r0; i < r1; ++i) {
            auto ci = c.row(i);
            const auto ai = a.row(i);
            for (std::size_t k = k0; k < k1; ++k) {
              const double av = ai[k];
              if (av == 0.0) continue;
              const auto bk = b.row(k);
              for (std::size_t j = 0; j < n; ++j) ci[j] += av * bk[j];
            }
          }
        }
      },
      threads);
  return c;
}

}  // namespace losstomo::linalg
