#include "obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "obs/span.hpp"
#include "util/json.hpp"

namespace losstomo::obs {

// -- Histogram ---------------------------------------------------------------

std::size_t Histogram::bucket_index(double v) {
  // The !(>=) form routes NaN and v <= 0 into the underflow slot too.
  if (!(v >= std::ldexp(1.0, kMinExp))) return 0;
  if (v >= std::ldexp(1.0, kMaxExp)) return kBuckets - 1;
  int exp = 0;
  const double mantissa = std::frexp(v, &exp);  // v = mantissa * 2^exp
  const int e = exp - 1;                        // v in [2^e, 2^(e+1))
  const auto sub =
      static_cast<std::size_t>((mantissa - 0.5) * 2.0 * kSubBuckets);
  return 1 + static_cast<std::size_t>(e - kMinExp) * kSubBuckets +
         std::min<std::size_t>(sub, kSubBuckets - 1);
}

double Histogram::bucket_upper(std::size_t i) {
  if (i == 0) return std::ldexp(1.0, kMinExp);
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  const std::size_t idx = i - 1;
  const int e = kMinExp + static_cast<int>(idx / kSubBuckets);
  const auto sub = static_cast<double>(idx % kSubBuckets);
  return std::ldexp(1.0 + (sub + 1.0) / kSubBuckets, e);
}

void Histogram::observe(double v) {
#ifndef LOSSTOMO_NO_TELEMETRY
  ++buckets_[bucket_index(v)];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
#else
  (void)v;
#endif
}

void Histogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

// -- FlightRecorder ----------------------------------------------------------

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void FlightRecorder::record(const SpanEvent& event) {
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
  ++recorded_;
}

std::vector<SpanEvent> FlightRecorder::events() const {
  std::vector<SpanEvent> out;
  out.reserve(size_);
  const std::size_t start = (next_ + ring_.size() - size_) % ring_.size();
  for (std::size_t k = 0; k < size_; ++k) {
    out.push_back(ring_[(start + k) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::clear() {
  next_ = 0;
  size_ = 0;
  recorded_ = 0;
}

// -- Registry ----------------------------------------------------------------

Registry::Metric& Registry::find_or_create(std::string_view name, Kind kind,
                                           Determinism det) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    Metric& metric = metrics_[it->second];
    if (metric.kind != kind) {
      throw std::logic_error("obs: metric '" + std::string(name) +
                             "' already registered as a different kind");
    }
    return metric;
  }
  std::size_t index = 0;
  switch (kind) {
    case Kind::kCounter:
      index = counters_.size();
      counters_.emplace_back();
      break;
    case Kind::kGauge:
      index = gauges_.size();
      gauges_.emplace_back();
      break;
    case Kind::kHistogram:
      index = histograms_.size();
      histograms_.emplace_back();
      break;
  }
  metrics_.push_back(
      {.name = std::string(name), .kind = kind, .index = index, .det = det});
  by_name_.emplace(std::string(name), metrics_.size() - 1);
  return metrics_.back();
}

Counter& Registry::counter(std::string_view name, Determinism det) {
  return counters_[find_or_create(name, Kind::kCounter, det).index];
}

Gauge& Registry::gauge(std::string_view name, Determinism det) {
  return gauges_[find_or_create(name, Kind::kGauge, det).index];
}

Histogram& Registry::histogram(std::string_view name, Determinism det) {
  return histograms_[find_or_create(name, Kind::kHistogram, det).index];
}

std::size_t Registry::phase(std::string_view name) {
  const auto it = phase_by_name_.find(name);
  if (it != phase_by_name_.end()) return it->second;
  Histogram& hist = histogram("span." + std::string(name) + ".seconds",
                              Determinism::kNondeterministic);
  phases_.push_back({.name = std::string(name), .hist = &hist});
  const std::size_t id = phases_.size() - 1;
  phase_by_name_.emplace(std::string(name), id);
  return id;
}

std::string_view Registry::phase_name(std::size_t id) const {
  return phases_.at(id).name;
}

void Registry::enable_flight_recorder(std::size_t capacity) {
  recorder_.emplace(capacity);
}

void Registry::note(std::string_view name) {
  if (!recorder_) return;
  const auto it = note_by_name_.find(name);
  std::size_t idx = 0;
  if (it == note_by_name_.end()) {
    note_names_.emplace_back(name);
    idx = note_names_.size() - 1;
    note_by_name_.emplace(std::string(name), idx);
  } else {
    idx = it->second;
  }
  std::uint32_t depth = 0;
#ifndef LOSSTOMO_NO_TELEMETRY
  if (active_span_ != nullptr) depth = active_span_->depth_ + 1;
#endif
  recorder_->record({.seq = ++event_seq_,
                     .name = note_names_[idx].c_str(),
                     .seconds = 0.0,
                     .depth = depth,
                     .marker = true});
}

void Registry::finish_span(std::size_t phase, double seconds,
                           std::uint32_t depth) {
  Phase& p = phases_[phase];
  p.hist->observe(seconds);
  if (recorder_) {
    recorder_->record({.seq = ++event_seq_,
                       .name = p.name.c_str(),
                       .seconds = seconds,
                       .depth = depth,
                       .marker = false});
  }
}

std::map<std::string, std::uint64_t> Registry::deterministic_values() const {
  std::map<std::string, std::uint64_t> out;
  for (const Metric& m : metrics_) {
    if (m.det != Determinism::kDeterministic) continue;
    if (m.kind == Kind::kCounter) {
      out.emplace(m.name, counters_[m.index].value());
    } else if (m.kind == Kind::kGauge) {
      out.emplace(m.name, std::bit_cast<std::uint64_t>(gauges_[m.index].value()));
    }
  }
  return out;
}

void Registry::reset() {
  for (auto& c : counters_) c = Counter{};
  for (auto& g : gauges_) g = Gauge{};
  for (auto& h : histograms_) h.reset();
  if (recorder_) recorder_->clear();
  event_seq_ = 0;
}

// -- Export ------------------------------------------------------------------

void Registry::write_json(std::ostream& out) const {
  util::json::Writer w(out);
  w.begin_object();
  w.key("schema").value("losstomo.metrics");
  w.key("schema_version").value(1);
  w.key("counters").begin_object();
  for (const Metric& m : metrics_) {
    if (m.kind != Kind::kCounter) continue;
    w.key(m.name).begin_object(true);
    w.key("value").value(counters_[m.index].value());
    w.key("deterministic").value(m.det == Determinism::kDeterministic);
    w.end_object();
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const Metric& m : metrics_) {
    if (m.kind != Kind::kGauge) continue;
    w.key(m.name).begin_object(true);
    w.key("value").value(gauges_[m.index].value());
    w.key("deterministic").value(m.det == Determinism::kDeterministic);
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const Metric& m : metrics_) {
    if (m.kind != Kind::kHistogram) continue;
    const Histogram& h = histograms_[m.index];
    w.key(m.name).begin_object();
    w.key("deterministic").value(m.det == Determinism::kDeterministic);
    w.key("count").value(h.count());
    w.key("sum").value(h.sum());
    w.key("min");
    h.count() ? w.value(h.min()) : w.null();
    w.key("max");
    h.count() ? w.value(h.max()) : w.null();
    // Sparse [upper_bound, count] pairs, non-cumulative; null = +inf.
    w.key("buckets").begin_array(true);
    const auto& buckets = h.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] == 0) continue;
      w.begin_array(true);
      const double upper = Histogram::bucket_upper(i);
      std::isinf(upper) ? w.null() : w.value(upper);
      w.value(buckets[i]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  if (recorder_) {
    w.key("flight_recorder").begin_object();
    w.key("capacity").value(static_cast<std::uint64_t>(recorder_->capacity()));
    w.key("recorded").value(recorder_->recorded());
    w.key("events").begin_array();
    for (const SpanEvent& e : recorder_->events()) {
      w.begin_object(true);
      w.key("seq").value(e.seq);
      w.key("name").value(std::string_view(e.name));
      w.key("seconds").value(e.seconds);
      w.key("depth").value(static_cast<std::uint64_t>(e.depth));
      w.key("marker").value(e.marker);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.finish();
}

void Registry::write_flight_recorder_json(std::ostream& out) const {
  util::json::Writer w(out);
  w.begin_object();
  if (recorder_) {
    w.key("capacity").value(static_cast<std::uint64_t>(recorder_->capacity()));
    w.key("recorded").value(recorder_->recorded());
  }
  w.key("events").begin_array();
  if (recorder_) {
    for (const SpanEvent& e : recorder_->events()) {
      w.begin_object(true);
      w.key("seq").value(e.seq);
      w.key("name").value(std::string_view(e.name));
      w.key("seconds").value(e.seconds);
      w.key("depth").value(static_cast<std::uint64_t>(e.depth));
      w.key("marker").value(e.marker);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  w.finish();
}

namespace {

std::string prometheus_name(std::string_view name) {
  std::string out = "losstomo_";
  for (const char c : name) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

}  // namespace

void Registry::write_prometheus(std::ostream& out) const {
  const auto saved = out.precision(12);
  for (const Metric& m : metrics_) {
    const std::string name = prometheus_name(m.name);
    switch (m.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n"
            << name << ' ' << counters_[m.index].value() << '\n';
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n"
            << name << ' ' << gauges_[m.index].value() << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[m.index];
        out << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        const auto& buckets = h.buckets();
        for (std::size_t i = 0; i + 1 < buckets.size(); ++i) {
          if (buckets[i] == 0) continue;
          cumulative += buckets[i];
          // lint: unsafe-bytes-ok(Prometheus exposition label syntax, not
          // hand-rolled JSON; le values are plain numbers, nothing needs
          // escaping)
          out << name << "_bucket{le=\"" << Histogram::bucket_upper(i)
              << "\"} " << cumulative << '\n';
        }
        cumulative += buckets.back();
        // lint: unsafe-bytes-ok(Prometheus exposition label syntax, not
        // hand-rolled JSON)
        out << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n'
            << name << "_sum " << h.sum() << '\n'
            << name << "_count " << h.count() << '\n';
        break;
      }
    }
  }
  out.precision(saved);
}

void Registry::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write metrics file: " + path);
  const bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  if (prometheus) {
    write_prometheus(out);
  } else {
    write_json(out);
  }
  if (!out) throw std::runtime_error("metrics write failed: " + path);
}

}  // namespace losstomo::obs
