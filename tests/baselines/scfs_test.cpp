#include "baselines/scfs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"
#include "topology/generators.hpp"

namespace losstomo::baselines {
namespace {

using losstomo::testing::make_fig1_network;

TEST(BinarizePaths, ThresholdDependsOnLength) {
  // tl = 0.002; a 10-hop path is bad below 0.998^10 ~ 0.9802.
  const std::vector<double> phi{0.985, 0.975};
  const std::vector<std::size_t> lengths{10, 10};
  const auto bad = binarize_paths(phi, lengths, 0.002);
  EXPECT_FALSE(bad[0]);
  EXPECT_TRUE(bad[1]);
}

TEST(BinarizePaths, SizeMismatchThrows) {
  const std::vector<double> phi{1.0};
  const std::vector<std::size_t> lengths{1, 2};
  EXPECT_THROW(binarize_paths(phi, lengths, 0.002), std::invalid_argument);
}

TEST(PathLengths, CountsLinks) {
  const linalg::SparseBinaryMatrix r(4, {{0, 1}, {2}, {0, 1, 2, 3}});
  const auto lengths = path_lengths(r);
  EXPECT_EQ(lengths, (std::vector<std::size_t>{2, 1, 4}));
}

TEST(ScfsTree, BlamesSharedLinkWhenAllPathsBad) {
  // Fig 1: all three paths bad -> the shared head link explains everything.
  const auto net = make_fig1_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const std::vector<bool> bad{true, true, true};
  const auto diagnosed = scfs_tree(rrm, bad);
  EXPECT_TRUE(diagnosed[0]);  // shared link e1
  EXPECT_FALSE(diagnosed[1]);
  EXPECT_FALSE(diagnosed[2]);
  EXPECT_FALSE(diagnosed[3]);
  EXPECT_FALSE(diagnosed[4]);
}

TEST(ScfsTree, BlamesLeafLinkForSingleBadPath) {
  const auto net = make_fig1_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const std::vector<bool> bad{true, false, false};
  const auto diagnosed = scfs_tree(rrm, bad);
  // Only P1 bad: blame its private link (e2 = link index 1).
  EXPECT_FALSE(diagnosed[0]);
  EXPECT_TRUE(diagnosed[1]);
}

TEST(ScfsTree, BlamesSubtreeRoot) {
  const auto net = make_fig1_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  // P2 and P3 bad (both through e3): blame e3, not e4/e5.
  const std::vector<bool> bad{false, true, true};
  const auto diagnosed = scfs_tree(rrm, bad);
  EXPECT_FALSE(diagnosed[0]);
  EXPECT_FALSE(diagnosed[1]);
  EXPECT_TRUE(diagnosed[2]);
  EXPECT_FALSE(diagnosed[3]);
  EXPECT_FALSE(diagnosed[4]);
}

TEST(ScfsTree, NoBadPathsNoBlame) {
  const auto net = make_fig1_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const std::vector<bool> bad{false, false, false};
  const auto diagnosed = scfs_tree(rrm, bad);
  for (const auto d : diagnosed) EXPECT_FALSE(d);
}

TEST(ScfsTree, ExplainsAllBadPaths) {
  // Consistency property on a random tree: every bad path must contain a
  // diagnosed link, and no good path may.
  stats::Rng rng(111);
  const auto tree = topology::make_random_tree({.nodes = 120, .max_branching = 5}, rng);
  const net::ReducedRoutingMatrix rrm(tree.graph, topology::tree_paths(tree));
  std::vector<bool> bad(rrm.path_count());
  for (std::size_t i = 0; i < bad.size(); ++i) bad[i] = rng.bernoulli(0.3);
  const auto diagnosed = scfs_tree(rrm, bad);
  for (std::size_t i = 0; i < rrm.path_count(); ++i) {
    bool covered = false;
    for (const auto k : rrm.matrix().row(i)) covered |= diagnosed[k];
    EXPECT_EQ(covered, static_cast<bool>(bad[i])) << "path " << i;
  }
}

TEST(ScfsTree, RejectsNonTreeInput) {
  const auto net = losstomo::testing::make_two_beacon_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const std::vector<bool> bad(rrm.path_count(), true);
  EXPECT_THROW(scfs_tree(rrm, bad), std::invalid_argument);
}

TEST(ScfsGeneral, CoversAllBadPaths) {
  const auto net = losstomo::testing::make_two_beacon_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const std::vector<bool> bad{true, false, true, true, false, true};
  const auto diagnosed = scfs_general(rrm.matrix(), bad);
  for (std::size_t i = 0; i < rrm.path_count(); ++i) {
    if (!bad[i]) continue;
    bool covered = false;
    for (const auto k : rrm.matrix().row(i)) covered |= diagnosed[k];
    EXPECT_TRUE(covered) << "bad path " << i << " unexplained";
  }
}

TEST(ScfsGeneral, NeverBlamesExoneratedLinks) {
  const auto net = losstomo::testing::make_two_beacon_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const std::vector<bool> bad{true, false, false, false, false, false};
  const auto diagnosed = scfs_general(rrm.matrix(), bad);
  for (std::size_t i = 0; i < rrm.path_count(); ++i) {
    if (bad[i]) continue;
    for (const auto k : rrm.matrix().row(i)) {
      EXPECT_FALSE(diagnosed[k]) << "good path's link " << k << " blamed";
    }
  }
}

TEST(ScfsGeneral, ParsimonyOnSharedBottleneck) {
  // All paths through one shared link bad -> exactly one link blamed.
  const auto net = make_fig1_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const std::vector<bool> bad{true, true, true};
  const auto diagnosed = scfs_general(rrm.matrix(), bad);
  std::size_t count = 0;
  for (const auto d : diagnosed) count += d ? 1 : 0;
  EXPECT_EQ(count, 1u);
  EXPECT_TRUE(diagnosed[0]);
}

}  // namespace
}  // namespace losstomo::baselines
