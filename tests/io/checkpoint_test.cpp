// Checkpoint format core: primitive round-trips, section framing, and the
// typed-rejection contract — every way a file can be damaged (truncation,
// bit flips, wrong magic/version, lying length prefixes) must surface as a
// CheckpointError of the right kind, never UB or a partial parse.
#include "io/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "test_util.hpp"

namespace losstomo::io {
namespace {

std::vector<std::uint8_t> sample_image() {
  CheckpointWriter writer;
  writer.begin_section("TEST");
  writer.u8(7);
  writer.u32(0xdeadbeefu);
  writer.u64(0x0123456789abcdefull);
  writer.f64(-0.0);
  writer.boolean(true);
  writer.usize(42);
  writer.str("hello checkpoint");
  writer.doubles(std::vector<double>{1.5, -2.25, 3.125});
  writer.end_section();
  return writer.finish();
}

TEST(Checkpoint, PrimitivesRoundTrip) {
  auto reader = CheckpointReader::from_bytes(sample_image());
  reader.expect_section("TEST");
  EXPECT_EQ(reader.u8(), 7u);
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefull);
  const double neg_zero = reader.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_TRUE(reader.boolean());
  EXPECT_EQ(reader.usize(), 42u);
  EXPECT_EQ(reader.str(), "hello checkpoint");
  EXPECT_EQ(reader.doubles(), (std::vector<double>{1.5, -2.25, 3.125}));
  reader.end_section();
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Checkpoint, NanRoundTripsBitExactly) {
  CheckpointWriter writer;
  writer.f64(std::numeric_limits<double>::quiet_NaN());
  writer.f64(std::numeric_limits<double>::infinity());
  auto reader = CheckpointReader::from_bytes(writer.finish());
  EXPECT_TRUE(std::isnan(reader.f64()));
  EXPECT_TRUE(std::isinf(reader.f64()));
}

TEST(Checkpoint, TypedArraysRoundTrip) {
  CheckpointWriter writer;
  const std::vector<std::uint8_t> u8s{0, 1, 255};
  const std::vector<std::uint32_t> u32s{0, 77, 0xffffffffu};
  const std::vector<std::size_t> sizes{9, 0, 123456789};
  writer.u8s(u8s);
  writer.u32s(u32s);
  writer.sizes(sizes);
  auto reader = CheckpointReader::from_bytes(writer.finish());
  EXPECT_EQ(reader.u8s(), u8s);
  EXPECT_EQ(reader.u32s(), u32s);
  EXPECT_EQ(reader.sizes(), sizes);
}

TEST(Checkpoint, SectionsSkipUnreadRemainder) {
  CheckpointWriter writer;
  writer.begin_section("AAAA");
  writer.u64(1);
  writer.u64(2);
  writer.u64(3);
  writer.end_section();
  writer.begin_section("BBBB");
  writer.u8(9);
  writer.end_section();
  auto reader = CheckpointReader::from_bytes(writer.finish());
  reader.expect_section("AAAA");
  EXPECT_EQ(reader.u64(), 1u);  // leave 2 and 3 unread
  reader.end_section();
  reader.expect_section("BBBB");
  EXPECT_EQ(reader.u8(), 9u);
  reader.end_section();
}

TEST(Checkpoint, WrongSectionTagIsCorrupt) {
  auto reader = CheckpointReader::from_bytes(sample_image());
  try {
    reader.expect_section("NOPE");
    FAIL() << "accepted a wrong section tag";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kCorrupt);
  }
}

TEST(Checkpoint, TruncationIsTyped) {
  const auto image = sample_image();
  // Every proper prefix must be rejected cleanly — never parsed.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{12}, std::size_t{19},
        image.size() / 2, image.size() - 1}) {
    std::vector<std::uint8_t> cut(image.begin(),
                                  image.begin() + static_cast<long>(keep));
    try {
      auto reader = CheckpointReader::from_bytes(std::move(cut));
      FAIL() << "accepted a checkpoint truncated to " << keep << " bytes";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.kind(), CheckpointErrorKind::kTruncated)
          << "prefix of " << keep << " bytes";
    }
  }
}

TEST(Checkpoint, EveryPayloadBitFlipIsCaught) {
  const auto image = sample_image();
  constexpr std::size_t kHeader = 20;  // magic + version + size + crc
  for (std::size_t i = kHeader; i < image.size(); ++i) {
    auto damaged = image;
    damaged[i] ^= 0x01;
    try {
      auto reader = CheckpointReader::from_bytes(std::move(damaged));
      FAIL() << "accepted a bit flip at payload byte " << i;
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.kind(), CheckpointErrorKind::kCorrupt) << "byte " << i;
    }
  }
}

TEST(Checkpoint, WrongMagicAndVersionAreTyped) {
  auto bad_magic = sample_image();
  bad_magic[0] = 'X';
  try {
    auto reader = CheckpointReader::from_bytes(std::move(bad_magic));
    FAIL() << "accepted wrong magic";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kBadMagic);
  }
  auto bad_version = sample_image();
  bad_version[4] ^= 0xff;  // version u32 follows the 4-byte magic
  try {
    auto reader = CheckpointReader::from_bytes(std::move(bad_version));
    FAIL() << "accepted wrong version";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kBadVersion);
  }
}

TEST(Checkpoint, OversizedLengthPrefixDoesNotAllocate) {
  // A length prefix claiming more elements than the payload could hold
  // must be rejected before any allocation sized from it.
  CheckpointWriter writer;
  writer.u64(0x7fffffffffffffffull);  // read back as a doubles() count
  auto reader = CheckpointReader::from_bytes(writer.finish());
  try {
    const auto v = reader.doubles();
    FAIL() << "accepted an attacker-sized length prefix";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kCorrupt);
  }
}

TEST(Checkpoint, ReadPastSectionEndIsTyped) {
  CheckpointWriter writer;
  writer.begin_section("TINY");
  writer.u8(1);
  writer.end_section();
  auto reader = CheckpointReader::from_bytes(writer.finish());
  reader.expect_section("TINY");
  EXPECT_EQ(reader.u8(), 1u);
  EXPECT_THROW(reader.u64(), CheckpointError);
}

TEST(Checkpoint, MissingFileIsIoError) {
  try {
    auto reader =
        CheckpointReader::from_file("/tmp/losstomo_no_such_file.ckpt");
    FAIL() << "opened a missing file";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kIo);
  }
}

TEST(Checkpoint, FileSaveLoadRoundTrip) {
  const std::string file = losstomo::testing::scratch_file("roundtrip.ckpt");
  CheckpointWriter writer;
  writer.begin_section("FILE");
  writer.str("on disk");
  writer.end_section();
  writer.save(file);
  auto reader = CheckpointReader::from_file(file);
  reader.expect_section("FILE");
  EXPECT_EQ(reader.str(), "on disk");
  reader.end_section();
  std::remove(file.c_str());
}

TEST(Checkpoint, ErrorKindNamesAreStable) {
  EXPECT_STREQ(checkpoint_error_kind_name(CheckpointErrorKind::kIo), "io");
  EXPECT_STREQ(checkpoint_error_kind_name(CheckpointErrorKind::kCorrupt),
               "corrupt");
  const CheckpointError e(CheckpointErrorKind::kMismatch, "who are you");
  EXPECT_NE(std::string(e.what()).find("mismatch"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("who are you"), std::string::npos);
}

}  // namespace
}  // namespace losstomo::io
