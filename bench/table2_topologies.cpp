// Table 2: LIA accuracy across the six evaluation topologies (BRITE
// Barabasi-Albert / Waxman / hierarchical top-down / bottom-up, plus the
// PlanetLab-like and DIMES-like overlays).  Prints DR, FPR and the
// max/median/min of the error factors and absolute errors, averaged over
// `runs` repetitions — the same row layout as the paper.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace losstomo;
  const util::Args args(argc, argv);
  const bool full = util::Args::full_scale();
  const double scale = args.get_double("scale", full ? 1.0 : 0.35);
  const auto m = args.get_size("m", 50);
  const double p = args.get_double("p", 0.1);
  const auto runs = args.get_size("runs", full ? 10 : 3);
  const auto seed = args.get_size("seed", 11);
  args.finish();

  std::cout << "Table 2: simulations with BRITE, PlanetLab-like and "
               "DIMES-like topologies (scale=" << scale << ", m=" << m
            << ", p=" << p << ", runs=" << runs << ")\n\n";

  sim::ScenarioConfig config;
  config.p = p;

  util::Table table({"Topology", "np", "nc", "DR", "FPR", "EF max", "EF med",
                     "EF min", "AE max", "AE med", "AE min"});
  auto instances = bench::table2_instances(scale, seed);
  for (const auto& inst : instances) {
    stats::RunningStat dr, fpr;
    std::vector<double> factors, abs_errors;
    for (std::size_t run = 0; run < runs; ++run) {
      const auto outcome =
          bench::run_pipeline(inst, config, m, seed * 100 + run);
      dr.add(outcome.lia.dr);
      fpr.add(outcome.lia.fpr);
      factors.insert(factors.end(), outcome.errors.factor.begin(),
                     outcome.errors.factor.end());
      abs_errors.insert(abs_errors.end(), outcome.errors.absolute.begin(),
                        outcome.errors.absolute.end());
    }
    const stats::EmpiricalCdf ef(std::move(factors));
    const stats::EmpiricalCdf ae(std::move(abs_errors));
    table.add_row({inst.name, std::to_string(inst.matrix().path_count()),
                   std::to_string(inst.matrix().link_count()),
                   util::Table::pct(dr.mean()), util::Table::pct(fpr.mean()),
                   util::Table::num(ef.max(), 2), util::Table::num(ef.median(), 2),
                   util::Table::num(ef.min(), 2), util::Table::num(ae.max(), 4),
                   util::Table::num(ae.median(), 4),
                   util::Table::num(ae.min(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): DR ~ 86-96%, FPR ~ 3-6%, median "
               "error factor 1.00, absolute errors in the 1e-3 range.\n";
  return 0;
}
