#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace losstomo::core {

LocationAccuracy locate_congested(std::span<const double> inferred_loss,
                                  const std::vector<bool>& truly_congested,
                                  double tl) {
  if (inferred_loss.size() != truly_congested.size()) {
    throw std::invalid_argument("metric size mismatch");
  }
  std::vector<bool> diagnosed(inferred_loss.size());
  for (std::size_t k = 0; k < inferred_loss.size(); ++k) {
    diagnosed[k] = inferred_loss[k] > tl;
  }
  return locate_congested(diagnosed, truly_congested);
}

LocationAccuracy locate_congested(const std::vector<bool>& diagnosed,
                                  const std::vector<bool>& truly_congested) {
  if (diagnosed.size() != truly_congested.size()) {
    throw std::invalid_argument("metric size mismatch");
  }
  LocationAccuracy acc;
  for (std::size_t k = 0; k < diagnosed.size(); ++k) {
    if (truly_congested[k]) ++acc.actual_congested;
    if (diagnosed[k]) {
      ++acc.diagnosed_congested;
      if (truly_congested[k]) {
        ++acc.hits;
      } else {
        ++acc.false_alarms;
      }
    }
  }
  acc.dr = acc.actual_congested == 0
               ? 1.0
               : static_cast<double>(acc.hits) /
                     static_cast<double>(acc.actual_congested);
  acc.fpr = acc.diagnosed_congested == 0
                ? 0.0
                : static_cast<double>(acc.false_alarms) /
                      static_cast<double>(acc.diagnosed_congested);
  return acc;
}

double error_factor(double q_true, double q_inferred, double delta) {
  const double qd = std::max(delta, q_true);
  const double qsd = std::max(delta, q_inferred);
  return std::max(qd / qsd, qsd / qd);
}

ErrorVectors per_link_errors(std::span<const double> true_loss,
                             std::span<const double> inferred_loss,
                             double delta) {
  if (true_loss.size() != inferred_loss.size()) {
    throw std::invalid_argument("metric size mismatch");
  }
  ErrorVectors out;
  out.absolute.reserve(true_loss.size());
  out.factor.reserve(true_loss.size());
  for (std::size_t k = 0; k < true_loss.size(); ++k) {
    out.absolute.push_back(std::fabs(true_loss[k] - inferred_loss[k]));
    out.factor.push_back(error_factor(true_loss[k], inferred_loss[k], delta));
  }
  return out;
}

}  // namespace losstomo::core
