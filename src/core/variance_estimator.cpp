#include "core/variance_estimator.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/augmented_matrix.hpp"
#include "linalg/nnls.hpp"
#include "linalg/qr.hpp"
#include "util/parallel.hpp"

namespace losstomo::core {

namespace {

// Retained scalar reference of the pairwise accumulation (drop-negative
// policy): every path pair recomputes its sample covariance with an O(m)
// inner loop.  The blocked path below must match it to last-ulps rounding;
// the parity tests enforce that.
NormalEquations accumulate_pairwise_reference(
    const linalg::SparseBinaryMatrix& r, const stats::CenteredSnapshots& y,
    bool drop_negative) {
  const std::size_t np = r.rows();
  const std::size_t nc = r.cols();
  const std::size_t m = y.count();
  NormalEquations sys{linalg::Matrix(nc, nc), linalg::Vector(nc, 0.0)};

  std::vector<std::uint32_t> shared;
  for (std::size_t i = 0; i < np; ++i) {
    const auto ri = r.row(i);
    for (std::size_t j = i; j < np; ++j) {
      linalg::intersect_sorted(ri, r.row(j), shared);
      if (shared.empty()) continue;  // all-zero equation carries nothing
      double cov = 0.0;
      for (std::size_t l = 0; l < m; ++l) {
        const auto row = y.sample(l);
        cov += row[i] * row[j];
      }
      cov /= static_cast<double>(m - 1);
      if (drop_negative && cov < 0.0) {
        ++sys.dropped;
        continue;
      }
      ++sys.used;
      for (const auto a : shared) {
        sys.h[a] += cov;
        for (const auto b : shared) sys.g(a, b) += 1.0;
      }
    }
  }
  return sys;
}

// Deterministic estimate of the pair-sharing structure: how many path
// pairs share at least one link (fraction f) and how many links a sharing
// pair shares on average.  Samples up to `kSamples` pairs on a fixed stride
// over the packed upper-triangle pair index — no RNG, no dependence on the
// thread count.
struct SharingEstimate {
  double fraction = 0.0;      // sharing pairs / all pairs
  double mean_shared = 0.0;   // avg |shared| over sharing samples
};

SharingEstimate estimate_sharing(const linalg::SparseBinaryMatrix& r) {
  const std::size_t np = r.rows();
  const std::size_t total = pair_count(np);
  constexpr std::size_t kSamples = 2048;
  const std::size_t stride = std::max<std::size_t>(1, total / kSamples);
  std::vector<std::uint32_t> shared;
  std::size_t samples = 0, sharing = 0, shared_links = 0;
  std::size_t i = 0;
  std::size_t row_base = 0;  // packed index of pair (i, i)
  for (std::size_t p = 0; p < total; p += stride) {
    while (p >= row_base + (np - i)) {
      row_base += np - i;
      ++i;
    }
    const std::size_t j = i + (p - row_base);
    linalg::intersect_sorted(r.row(i), r.row(j), shared);
    ++samples;
    if (!shared.empty()) {
      ++sharing;
      shared_links += shared.size();
    }
  }
  SharingEstimate est;
  if (samples > 0) {
    est.fraction = static_cast<double>(sharing) / static_cast<double>(samples);
  }
  if (sharing > 0) {
    est.mean_shared =
        static_cast<double>(shared_links) / static_cast<double>(sharing);
  }
  return est;
}

// Blocked/parallel pairwise accumulation over a CovarianceSource.  Two
// covariance strategies, chosen from the sampled sharing structure (a pure
// function of the problem, so the choice is reproducible):
//  * dense sharing — or any source that already holds S (streaming
//    accumulators): read S(i, j) per pair, removing the seed's O(m) inner
//    loop from every pair;
//  * sparse sharing on a batch source: most pairs carry no equation and the
//    skip already avoids their covariances, so computing all of S would be
//    wasted work — keep the on-demand per-pair covariance over the centred
//    samples for the few sharing pairs.
// Either way G/h are folded over path-row chunks with per-chunk partials;
// chunk boundaries depend only on the problem size, so the reduction order
// — and therefore the result — is bit-identical at any thread count.
//
// Caveat vs the scalar reference: under the matrix strategy a pair whose
// true covariance sits within an ulp of zero can round to the opposite sign
// than the scalar sum and flip its drop decision (one whole equation).  The
// parity guarantee therefore assumes no covariance is exactly at the zero
// boundary — sampling noise makes that measure-zero in practice.
NormalEquations accumulate_pairwise_blocked(const linalg::SparseBinaryMatrix& r,
                                            const stats::CovarianceSource& y,
                                            bool drop_negative,
                                            std::size_t threads) {
  const std::size_t np = r.rows();
  const std::size_t nc = r.cols();
  const std::size_t m = y.count();
  if (np == 0) {
    return NormalEquations{linalg::Matrix(nc, nc), linalg::Vector(nc, 0.0)};
  }
  const SharingEstimate sharing = estimate_sharing(r);
  // The full matrix pays off once a meaningful fraction of pairs would
  // otherwise run the O(m) scalar loop — or comes for free from the source.
  const bool use_matrix = sharing.fraction >= 0.125 || y.matrix_is_cheap();
  const linalg::Matrix* s = use_matrix ? &y.matrix() : nullptr;
  const std::span<const double> flat = use_matrix ? std::span<const double>{}
                                                  : y.centered_flat();

  // Balance chunk count against the per-chunk partial cost: each extra
  // chunk buys 1/chunks of the pair-loop work but costs an nc^2 partial
  // (copy-init + reduce).  All inputs are problem sizes or the
  // deterministic sharing sample, never the thread count.
  double row_len = 0.0;
  for (std::size_t i = 0; i < np; ++i) row_len += static_cast<double>(r.row(i).size());
  row_len /= static_cast<double>(std::max<std::size_t>(np, 1));
  const double pair_ops =
      static_cast<double>(pair_count(np)) *
      (2.0 * row_len +
       sharing.fraction * (sharing.mean_shared * sharing.mean_shared +
                           (use_matrix ? 1.0 : static_cast<double>(m))));
  const double chunk_overhead = 4.0 * static_cast<double>(nc) * static_cast<double>(nc);
  const std::size_t partial_bytes = nc * nc * sizeof(double) + nc * sizeof(double);
  const std::size_t budget_chunks = std::max<std::size_t>(
      1, (std::size_t{1} << 28) / std::max<std::size_t>(partial_bytes, 1));
  const std::size_t want_chunks = static_cast<std::size_t>(std::clamp(
      pair_ops / (8.0 * chunk_overhead), 1.0, 32.0));
  const std::size_t chunks = std::min({want_chunks, budget_chunks, np});

  const auto body = [&](NormalEquations& part, std::size_t i_begin,
                        std::size_t i_end) {
        std::vector<std::uint32_t> shared;
        for (std::size_t i = i_begin; i < i_end; ++i) {
          const auto ri = r.row(i);
          const double* si = use_matrix ? s->row(i).data() : nullptr;
          for (std::size_t j = i; j < np; ++j) {
            linalg::intersect_sorted(ri, r.row(j), shared);
            if (shared.empty()) continue;
            double cov;
            if (use_matrix) {
              cov = si[j];
            } else if (!flat.empty()) {
              // On-demand covariance, identical to the scalar reference.
              cov = 0.0;
              const double* pi = flat.data() + i;
              const double* pj = flat.data() + j;
              for (std::size_t l = 0; l < m; ++l, pi += np, pj += np) {
                cov += *pi * *pj;
              }
              cov /= static_cast<double>(m - 1);
            } else {
              cov = y.covariance(i, j);
            }
            if (drop_negative && cov < 0.0) {
              ++part.dropped;
              continue;
            }
            ++part.used;
            for (const auto a : shared) {
              part.h[a] += cov;
              for (const auto b : shared) part.g(a, b) += 1.0;
            }
          }
        }
  };

  NormalEquations acc{linalg::Matrix(nc, nc), linalg::Vector(nc, 0.0)};
  if (chunks <= 1) {
    body(acc, 0, np);
    return acc;
  }

  // Chunk boundaries balanced by *pair* count: row i carries np - i pairs,
  // so equal-width row ranges would load the first chunk with ~2x the
  // average work and cap parallel scaling.  Boundaries depend only on
  // (np, chunks) — the fixed reduction order below is untouched.
  std::vector<std::size_t> bounds(chunks + 1, np);
  bounds[0] = 0;
  {
    const double per_chunk =
        static_cast<double>(pair_count(np)) / static_cast<double>(chunks);
    std::size_t i = 0;
    double covered = 0.0;
    for (std::size_t c = 1; c < chunks; ++c) {
      const double target = per_chunk * static_cast<double>(c);
      while (i < np && covered < target) {
        covered += static_cast<double>(np - i);
        ++i;
      }
      bounds[c] = i;
    }
  }

  std::vector<NormalEquations> partials(chunks, acc);
  util::ThreadPool::global().run(
      chunks,
      [&](std::size_t c) { body(partials[c], bounds[c], bounds[c + 1]); },
      threads);
  acc = std::move(partials.front());
  for (std::size_t c = 1; c < chunks; ++c) {
    const NormalEquations& part = partials[c];
    auto& gd = acc.g.data();
    const auto& pd = part.g.data();
    for (std::size_t idx = 0; idx < gd.size(); ++idx) gd[idx] += pd[idx];
    for (std::size_t k = 0; k < acc.h.size(); ++k) acc.h[k] += part.h[k];
    acc.used += part.used;
    acc.dropped += part.dropped;
  }
  return acc;
}

// Closed-form accumulation keeping all equations (policy kKeep).  Both the
// normal matrix and the right-hand side are assembled in parallel inside
// core/augmented_matrix.cpp.
NormalEquations accumulate_closed_form(const linalg::SparseBinaryMatrix& r,
                                       const stats::CenteredSnapshots& y,
                                       std::size_t threads) {
  NormalEquations sys;
  const linalg::CoTraversalGram gram(r);
  sys.g = augmented_normal_matrix(gram, threads);
  sys.h = augmented_normal_rhs(y, r.column_lists(), threads);
  sys.used = pair_count(r.rows());
  return sys;
}

// Retained scalar reference of the closed form: the seed's sequential
// sweeps (snapshot-outer path-variance accumulation, serial per-link
// sums).  The parallel version above preserves every per-element summation
// order, so the parity tests assert the two are equal — this function is
// what makes that assertion meaningful.
NormalEquations accumulate_closed_form_reference(
    const linalg::SparseBinaryMatrix& r, const stats::CenteredSnapshots& y) {
  NormalEquations sys;
  const linalg::CoTraversalGram gram(r);
  sys.g = gram.map_to_dense([](double n) { return n * (n + 1.0) / 2.0; }, 1);
  sys.used = pair_count(r.rows());

  const auto column_paths = r.column_lists();
  const std::size_t nc = column_paths.size();
  const std::size_t m = y.count();
  sys.h.assign(nc, 0.0);
  linalg::Vector path_var(y.dim(), 0.0);
  for (std::size_t l = 0; l < m; ++l) {
    const auto row = y.sample(l);
    for (std::size_t i = 0; i < y.dim(); ++i) path_var[i] += row[i] * row[i];
  }
  for (auto& v : path_var) v /= static_cast<double>(m - 1);
  for (std::size_t k = 0; k < nc; ++k) {
    const auto& paths = column_paths[k];
    double full_sum = 0.0;
    for (std::size_t l = 0; l < m; ++l) {
      const auto row = y.sample(l);
      double s = 0.0;
      for (const auto i : paths) s += row[i];
      full_sum += s * s;
    }
    full_sum /= static_cast<double>(m - 1);
    double diag = 0.0;
    for (const auto i : paths) diag += path_var[i];
    sys.h[k] = 0.5 * (full_sum + diag);
  }
  return sys;
}

VarianceEstimate finish(linalg::Vector v, VarianceEstimate partial) {
  for (auto& value : v) {
    if (value < 0.0) {
      value = 0.0;
      ++partial.negative_clamped;
    }
  }
  partial.v = std::move(v);
  return partial;
}

NormalEquations build_normal_equations_centered(
    const linalg::SparseBinaryMatrix& r, const stats::CenteredSnapshots& centered,
    const VarianceOptions& options) {
  if (!resolve_negative_policy(options, r.rows())) {
    return options.use_reference_impl
               ? accumulate_closed_form_reference(r, centered)
               : accumulate_closed_form(r, centered, options.threads);
  }
  if (options.use_reference_impl) {
    return accumulate_pairwise_reference(r, centered, true);
  }
  const stats::BatchCovarianceSource source(centered, options.threads);
  return accumulate_pairwise_blocked(r, source, true, options.threads);
}

// Paper-exact dense path: materialise A, drop rows whose packed covariance
// is negative (when the policy says so), Householder QR.  `sigma_full` is
// the packed pair-covariance vector aligned with build_augmented_matrix.
VarianceEstimate dense_qr_estimate(const linalg::SparseBinaryMatrix& r,
                                   const linalg::Vector& sigma_full,
                                   bool drop_negative,
                                   const VarianceOptions& options) {
  const std::size_t nc = r.cols();
  // All-zero rows (path pairs with no shared link) carry no equation and
  // are excluded up front, mirroring the pairwise accumulation.
  const auto a_full =
      build_augmented_matrix(r, options.dense_entry_cap, options.threads);
  std::vector<std::size_t> keep;
  std::size_t dropped = 0;
  keep.reserve(sigma_full.size());
  for (std::size_t row = 0; row < sigma_full.size(); ++row) {
    const auto arow = a_full.row(row);
    const bool informative =
        std::any_of(arow.begin(), arow.end(), [](double x) { return x != 0.0; });
    if (!informative) continue;
    if (drop_negative && sigma_full[row] < 0.0) {
      ++dropped;
      continue;
    }
    keep.push_back(row);
  }
  linalg::Matrix a(keep.size(), nc);
  linalg::Vector sigma(keep.size());
  util::parallel_for(
      keep.size(), 64,
      [&](std::size_t out_begin, std::size_t out_end) {
        for (std::size_t out = out_begin; out < out_end; ++out) {
          const auto src = a_full.row(keep[out]);
          std::copy(src.begin(), src.end(), a.row(out).begin());
          sigma[out] = sigma_full[keep[out]];
        }
      },
      options.threads);
  VarianceEstimate est;
  est.method = "dense-qr";
  est.equations_used = keep.size();
  est.equations_dropped = dropped;
  const linalg::HouseholderQr qr(a);
  if (qr.full_column_rank()) {
    return finish(qr.solve(sigma), std::move(est));
  }
  // Dropping rows can (rarely) lose rank; fall back to the basic
  // rank-revealing solution.
  est.method = "dense-qr(pivoted-fallback)";
  return finish(linalg::PivotedQr(a).solve_basic(sigma), std::move(est));
}

// Shared normal-equation tail of both estimate_link_variances overloads.
VarianceEstimate solve_normal_system(NormalEquations sys, VarianceMethod method,
                                     bool drop_negative) {
  VarianceEstimate est;
  est.equations_used = sys.used;
  est.equations_dropped = sys.dropped;

  if (method == VarianceMethod::kNnls) {
    est.method = drop_negative ? "nnls(drop-negative)" : "nnls(keep-all)";
    auto result = linalg::nnls_gram(sys.g, sys.h);
    return finish(std::move(result.x), std::move(est));
  }

  est.method = drop_negative ? "normal(drop-negative)" : "normal(closed-form)";
  const linalg::RegularizedCholesky chol(sys.g);
  est.jitter_used = chol.jitter_used();
  return finish(chol.solve(sys.h), std::move(est));
}

}  // namespace

bool resolve_negative_policy(const VarianceOptions& options, std::size_t np) {
  switch (options.negatives) {
    case NegativeCovariancePolicy::kDrop:
      return true;
    case NegativeCovariancePolicy::kKeep:
      return false;
    case NegativeCovariancePolicy::kAuto:
    default:
      return np <= options.pairwise_path_cap;
  }
}

NormalEquations build_normal_equations(const linalg::SparseBinaryMatrix& r,
                                       const stats::SnapshotMatrix& y,
                                       const VarianceOptions& options) {
  if (y.dim() != r.rows()) {
    throw std::invalid_argument("snapshot dimension != path count");
  }
  if (y.count() < 2) throw std::invalid_argument("need >= 2 snapshots");
  const stats::CenteredSnapshots centered(y);
  return build_normal_equations_centered(r, centered, options);
}

NormalEquations build_normal_equations(const linalg::SparseBinaryMatrix& r,
                                       const stats::CovarianceSource& source,
                                       const VarianceOptions& options) {
  if (source.dim() != r.rows()) {
    throw std::invalid_argument("source dimension != path count");
  }
  if (source.count() < 2) throw std::invalid_argument("need >= 2 snapshots");
  if (resolve_negative_policy(options, r.rows())) {
    return accumulate_pairwise_blocked(r, source, true, options.threads);
  }
  NormalEquations sys;
  const linalg::CoTraversalGram gram(r);
  sys.g = augmented_normal_matrix(gram, options.threads);
  sys.h = augmented_normal_rhs(source.matrix(), r.column_lists(),
                               options.threads);
  sys.used = pair_count(r.rows());
  return sys;
}

VarianceEstimate estimate_link_variances(const linalg::SparseBinaryMatrix& r,
                                         const stats::SnapshotMatrix& y,
                                         const VarianceOptions& options) {
  if (y.dim() != r.rows()) {
    throw std::invalid_argument("snapshot dimension != path count");
  }
  if (y.count() < 2) throw std::invalid_argument("need >= 2 snapshots");
  const stats::CenteredSnapshots centered(y);

  // Resolve the auto knobs.
  VarianceMethod method = options.method;
  if (method == VarianceMethod::kAuto) {
    method = VarianceMethod::kNormal;
  }
  const bool drop_negative = resolve_negative_policy(options, r.rows());

  if (method == VarianceMethod::kDenseQr) {
    const auto sigma_full =
        options.use_reference_impl
            ? packed_covariances(centered)
            : packed_covariances(
                  stats::covariance_matrix(centered, options.threads));
    return dense_qr_estimate(r, sigma_full, drop_negative, options);
  }

  return solve_normal_system(build_normal_equations_centered(r, centered, options),
                             method, drop_negative);
}

VarianceEstimate estimate_link_variances(const linalg::SparseBinaryMatrix& r,
                                         const stats::CovarianceSource& source,
                                         const VarianceOptions& options) {
  if (source.dim() != r.rows()) {
    throw std::invalid_argument("source dimension != path count");
  }
  if (source.count() < 2) throw std::invalid_argument("need >= 2 snapshots");

  VarianceMethod method = options.method;
  if (method == VarianceMethod::kAuto) {
    method = VarianceMethod::kNormal;
  }
  const bool drop_negative = resolve_negative_policy(options, r.rows());

  if (method == VarianceMethod::kDenseQr) {
    return dense_qr_estimate(r, packed_covariances(source.matrix()),
                             drop_negative, options);
  }
  return solve_normal_system(build_normal_equations(r, source, options), method,
                             drop_negative);
}

StreamingNormalEquations::StreamingNormalEquations(
    const linalg::SparseBinaryMatrix& r, const VarianceOptions& options)
    : options_(options),
      np_(r.rows()),
      nc_(r.cols()),
      drop_negative_(resolve_negative_policy(options, r.rows())) {
  sys_.g = linalg::Matrix(nc_, nc_);
  sys_.h.assign(nc_, 0.0);
  if (!drop_negative_) {
    // Keep-all: G depends only on the routing matrix.
    const linalg::CoTraversalGram gram(r);
    sys_.g = augmented_normal_matrix(gram, options_.threads);
    sys_.used = pair_count(np_);
    column_paths_ = r.column_lists();
    return;
  }
  // Drop-negative: enumerate the sharing pairs once; refresh() only reads
  // their covariances.  G starts empty (every pair initially "dropped") and
  // the first refresh folds the kept pairs in through the flip path.
  pair_offsets_.push_back(0);
  std::vector<std::uint32_t> shared;
  for (std::size_t i = 0; i < np_; ++i) {
    const auto ri = r.row(i);
    for (std::size_t j = i; j < np_; ++j) {
      linalg::intersect_sorted(ri, r.row(j), shared);
      if (shared.empty()) continue;
      pair_i_.push_back(static_cast<std::uint32_t>(i));
      pair_j_.push_back(static_cast<std::uint32_t>(j));
      pair_links_.insert(pair_links_.end(), shared.begin(), shared.end());
      pair_offsets_.push_back(pair_links_.size());
    }
  }
  pair_kept_.assign(pair_i_.size(), 0);
}

const NormalEquations& StreamingNormalEquations::refresh(
    const stats::CovarianceSource& source) {
  if (source.dim() != np_) {
    throw std::invalid_argument("source dimension != path count");
  }
  if (source.count() < 2) throw std::invalid_argument("need >= 2 snapshots");
  const linalg::Matrix& s = source.matrix();
  refreshed_ = true;

  if (!drop_negative_) {
    sys_.h = augmented_normal_rhs(s, column_paths_, options_.threads);
    return sys_;
  }

  struct Partial {
    linalg::Vector h;
    std::size_t used = 0;
    std::size_t dropped = 0;
    std::vector<std::size_t> flips;
  };
  Partial identity;
  identity.h.assign(nc_, 0.0);
  // Pairs are scanned in chunks whose boundaries depend only on the pair
  // count; partials reduce in ascending chunk order, so h is bit-identical
  // at any thread count and `flips` comes back in ascending pair order.
  Partial acc = util::parallel_reduce(
      pair_i_.size(), 8192, identity,
      [&](Partial& part, std::size_t begin, std::size_t end) {
        for (std::size_t p = begin; p < end; ++p) {
          const double cov = s(pair_i_[p], pair_j_[p]);
          const bool kept = !(cov < 0.0);
          if (kept != (pair_kept_[p] != 0)) part.flips.push_back(p);
          if (!kept) {
            ++part.dropped;
            continue;
          }
          ++part.used;
          for (std::size_t idx = pair_offsets_[p]; idx < pair_offsets_[p + 1];
               ++idx) {
            part.h[pair_links_[idx]] += cov;
          }
        }
      },
      [](Partial& into, const Partial& part) {
        for (std::size_t k = 0; k < into.h.size(); ++k) into.h[k] += part.h[k];
        into.used += part.used;
        into.dropped += part.dropped;
        into.flips.insert(into.flips.end(), part.flips.begin(),
                          part.flips.end());
      },
      options_.threads);

  // Fold the flipped pairs into G (integer counts, so the order does not
  // matter and the result exactly matches a from-scratch accumulation over
  // the current kept set).
  for (const std::size_t p : acc.flips) {
    pair_kept_[p] ^= 1;
    const double sign = pair_kept_[p] ? 1.0 : -1.0;
    const auto begin = pair_offsets_[p];
    const auto end = pair_offsets_[p + 1];
    for (std::size_t ia = begin; ia < end; ++ia) {
      const auto a = pair_links_[ia];
      for (std::size_t ib = begin; ib < end; ++ib) {
        sys_.g(a, pair_links_[ib]) += sign;
      }
    }
  }
  if (!acc.flips.empty()) factor_dirty_ = true;
  sys_.h = std::move(acc.h);
  sys_.used = acc.used;
  sys_.dropped = acc.dropped;
  return sys_;
}

VarianceEstimate StreamingNormalEquations::solve() {
  if (!refreshed_) {
    throw std::logic_error("StreamingNormalEquations::solve before refresh");
  }
  VarianceMethod method = options_.method;
  if (method == VarianceMethod::kAuto) method = VarianceMethod::kNormal;
  if (method == VarianceMethod::kDenseQr) {
    throw std::invalid_argument(
        "StreamingNormalEquations does not support kDenseQr; use the batch "
        "path");
  }
  VarianceEstimate est;
  est.equations_used = sys_.used;
  est.equations_dropped = sys_.dropped;

  if (method == VarianceMethod::kNnls) {
    est.method = drop_negative_ ? "streaming-nnls(drop-negative)"
                                : "streaming-nnls(keep-all)";
    auto result = linalg::nnls_gram(sys_.g, sys_.h);
    return finish(std::move(result.x), std::move(est));
  }

  est.method = drop_negative_ ? "streaming-normal(drop-negative)"
                              : "streaming-normal(keep-all)";
  if (!factor_ || factor_dirty_) {
    factor_.emplace(sys_.g);
    factor_dirty_ = false;
    ++refactorizations_;
  }
  est.jitter_used = factor_->jitter_used();
  return finish(factor_->solve(sys_.h), std::move(est));
}

}  // namespace losstomo::core
