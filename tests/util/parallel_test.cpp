#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace losstomo::util {
namespace {

TEST(Parallel, ChunkRangesPartitionExactly) {
  for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u, 1001u}) {
    for (const std::size_t grain : {1u, 3u, 64u, 4096u}) {
      const std::size_t chunks = chunk_count(n, grain);
      if (n == 0) {
        EXPECT_EQ(chunks, 0u);
        continue;
      }
      ASSERT_GE(chunks, 1u);
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [begin, end] = chunk_range(n, chunks, c);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_GE(end, begin);
        covered += end - begin;
        expected_begin = end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(Parallel, ForVisitsEveryIndexOnce) {
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(
      n, 16,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
      },
      4);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(Parallel, ReduceIsBitIdenticalAcrossThreadCounts) {
  // Sum of values whose magnitudes differ wildly: any change in summation
  // order changes the low bits, so equality proves order-determinism.
  const std::size_t n = 50'000;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = (i % 7 == 0 ? 1e12 : 1e-9) * static_cast<double>(i + 1);
  }
  const auto sum_with = [&](std::size_t threads) {
    return parallel_reduce<double>(
        n, 64, 0.0,
        [&](double& acc, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) acc += values[i];
        },
        [](double& acc, const double& partial) { acc += partial; }, threads);
  };
  const double one = sum_with(1);
  const double two = sum_with(2);
  const double eight = sum_with(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(Parallel, NestedSectionsRunInline) {
  std::atomic<int> total{0};
  parallel_for(
      8, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          parallel_for(
              4, 1,
              [&](std::size_t b2, std::size_t e2) {
                total.fetch_add(static_cast<int>(e2 - b2));
              },
              4);
        }
      },
      4);
  EXPECT_EQ(total.load(), 32);
}

TEST(Parallel, OversubscriptionBeyondHardwareWorks) {
  std::atomic<int> total{0};
  ThreadPool::global().run(
      64, [&](std::size_t) { total.fetch_add(1); }, 8);
  EXPECT_EQ(total.load(), 64);
}

TEST(Parallel, DefaultThreadsIsPositiveAndOverridable) {
  EXPECT_GE(default_threads(), 1u);
  set_default_threads(3);
  EXPECT_EQ(default_threads(), 3u);
  set_default_threads(0);
  EXPECT_GE(default_threads(), 1u);
}

}  // namespace
}  // namespace losstomo::util
