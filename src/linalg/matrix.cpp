#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/kernels.hpp"

namespace losstomo::linalg {

namespace {

// Below this many multiply-adds the naive loops win: no pool dispatch, and
// the zero-skipping pays off on the small sparse-ish systems the solvers
// assemble.  Above it the cache-blocked kernels take over.
constexpr std::size_t kKernelFlopThreshold = 1u << 18;

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument("ragged matrix literal");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Vector Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("mv size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto rr = row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += rr[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::multiply_transpose(std::span<const double> y) const {
  if (y.size() != rows_) throw std::invalid_argument("mtv size mismatch");
  Vector x(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto rr = row(r);
    const double yr = y[r];
    if (yr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) x[c] += rr[c] * yr;
  }
  return x;
}

Matrix Matrix::multiply(const Matrix& other, std::size_t threads) const {
  if (cols_ != other.rows()) throw std::invalid_argument("mm size mismatch");
  if (rows_ * cols_ * other.cols() >= kKernelFlopThreshold) {
    return blocked_multiply(*this, other, threads);
  }
  Matrix out(rows_, other.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const auto ok = other.row(k);
      auto oi = out.row(i);
      for (std::size_t j = 0; j < other.cols(); ++j) oi[j] += a * ok[j];
    }
  }
  return out;
}

Matrix Matrix::gram(std::size_t threads) const {
  if (rows_ * cols_ * cols_ >= kKernelFlopThreshold) {
    return blocked_gram(*this, 1.0, threads);
  }
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto rr = row(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = rr[i];
      if (a == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) g(i, j) += a * rr[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

double Matrix::frobenius() const {
  double acc = 0.0;
  for (const double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double norm2(std::span<const double> x) {
  double acc = 0.0;
  for (const double v : x) acc += v * v;
  return std::sqrt(acc);
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector subtract(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("sub size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace losstomo::linalg
