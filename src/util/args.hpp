// Tiny key=value command-line argument parser used by the bench harnesses
// and examples.  Not a general-purpose CLI library: every argument must be
// of the form `key=value`; unknown keys are rejected so typos fail loudly.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace losstomo::util {

/// Parses `key=value` command-line arguments with typed, defaulted lookups.
/// GNU-style spellings `--key=value` and `--key value` are accepted as
/// synonyms (the standardized `--json <path>` bench flag uses this form).
///
/// Usage:
///   Args args(argc, argv);
///   const int m = args.get_int("m", 50);
///   args.finish();   // throws on unknown/unconsumed keys
class Args {
 public:
  Args() = default;
  Args(int argc, const char* const* argv);

  /// Returns the raw value for `key`, if present.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed accessors; each records `key` as known so finish() can
  /// flag leftover (misspelled) arguments.
  [[nodiscard]] int get_int(const std::string& key, int def) const;
  [[nodiscard]] std::size_t get_size(const std::string& key, std::size_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;
  [[nodiscard]] std::string get_string(const std::string& key, std::string def) const;

  /// Parses a comma-separated list of doubles, e.g. `p=0.05,0.1,0.25`.
  [[nodiscard]] std::vector<double> get_doubles(const std::string& key,
                                                std::vector<double> def) const;
  /// Parses a comma-separated list of ints, e.g. `m=10,20,50`.
  [[nodiscard]] std::vector<int> get_ints(const std::string& key,
                                          std::vector<int> def) const;

  /// Throws std::invalid_argument if any provided key was never consumed.
  void finish() const;

  /// True when the environment variable REPRO_FULL=1 requests paper-scale
  /// runs (benches use this to pick their default problem sizes).
  [[nodiscard]] static bool full_scale();

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
};

}  // namespace losstomo::util
