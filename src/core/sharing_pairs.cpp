#include "core/sharing_pairs.hpp"

#include <algorithm>
#include <utility>

#include "io/checkpoint.hpp"
#include "io/checkpoint_tags.hpp"
#include "util/parallel.hpp"

namespace losstomo::core {

PartnerFinder::PartnerFinder(
    const linalg::SparseBinaryMatrix& r,
    const std::vector<std::vector<std::uint32_t>>& columns)
    : r_(&r), columns_(&columns), stamp_(r.rows(), 0) {}

void PartnerFinder::partners_of(std::size_t i, std::vector<std::uint32_t>& out) {
  out.clear();
  // A fresh tag per query invalidates every previous stamp without a clear.
  // Tag 0 is the vector's initial value, so skip it on wrap-around.
  if (++tag_ == 0) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    tag_ = 1;
  }
  for (const auto link : r_->row(i)) {
    const auto& paths = (*columns_)[link];
    // Column lists are sorted, so partners >= i occupy a suffix.
    const auto from = std::lower_bound(paths.begin(), paths.end(),
                                       static_cast<std::uint32_t>(i));
    for (auto it = from; it != paths.end(); ++it) {
      if (stamp_[*it] != tag_) {
        stamp_[*it] = tag_;
        out.push_back(*it);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

SharingPairStore SharingPairStore::build(const linalg::SparseBinaryMatrix& r,
                                         std::size_t threads,
                                         PairFilter keep) {
  const std::size_t np = r.rows();
  SharingPairStore store;
  store.row_offsets_.assign(np + 1, 0);
  store.row_live_.assign(np, 1);
  store.columns_ = r.column_lists();
  store.keep_ = std::move(keep);
  if (np == 0) return store;
  const auto& columns = store.columns_;
  const auto& filter = store.keep_;

  // Per-chunk local buffers, stitched in ascending chunk order afterwards:
  // chunk boundaries depend only on (np, grain), so the stored pair
  // sequence is identical at any thread count.
  struct ChunkOut {
    std::vector<std::size_t> pairs_per_row;
    std::vector<std::uint32_t> partner;
    std::vector<std::size_t> link_counts;
    std::vector<std::uint32_t> links;
  };
  const std::size_t grain = std::max<std::size_t>(1, np / 256);
  const std::size_t chunks = util::chunk_count(np, grain);
  std::vector<ChunkOut> outs(chunks);
  util::ThreadPool::global().run(
      chunks,
      [&](std::size_t c) {
        const auto [begin, end] = util::chunk_range(np, chunks, c);
        ChunkOut& out = outs[c];
        out.pairs_per_row.assign(end - begin, 0);
        PartnerFinder finder(r, columns);
        std::vector<std::uint32_t> partners;
        std::vector<std::uint32_t> shared;
        for (std::size_t i = begin; i < end; ++i) {
          finder.partners_of(i, partners);
          const auto ri = r.row(i);
          for (const auto j : partners) {
            if (filter && !filter(i, j)) continue;
            linalg::intersect_sorted(ri, r.row(j), shared);
            // Candidates share a link by construction, but keep the guard:
            // the invariant is cheap to check and load-bearing downstream.
            if (shared.empty()) continue;
            ++out.pairs_per_row[i - begin];
            out.partner.push_back(j);
            out.link_counts.push_back(shared.size());
            out.links.insert(out.links.end(), shared.begin(), shared.end());
          }
        }
      },
      threads);

  std::size_t total_pairs = 0, total_links = 0;
  for (const auto& out : outs) {
    total_pairs += out.partner.size();
    total_links += out.links.size();
  }
  store.partner_.reserve(total_pairs);
  store.link_offsets_.reserve(total_pairs + 1);
  store.link_offsets_.push_back(0);
  store.links_.reserve(total_links);
  std::size_t row = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const ChunkOut& out = outs[c];
    for (const auto count : out.pairs_per_row) {
      store.row_offsets_[row + 1] = store.row_offsets_[row] + count;
      ++row;
    }
    store.partner_.insert(store.partner_.end(), out.partner.begin(),
                          out.partner.end());
    for (const auto count : out.link_counts) {
      store.link_offsets_.push_back(store.link_offsets_.back() + count);
    }
    store.links_.insert(store.links_.end(), out.links.begin(),
                        out.links.end());
  }
  return store;
}

std::size_t SharingPairStore::add_row(const linalg::SparseBinaryMatrix& r) {
  if (r.rows() != path_count() + 1) {
    throw std::invalid_argument(
        "add_row: routing matrix must contain exactly one new trailing row");
  }
  return add_rows(r);
}

std::size_t SharingPairStore::add_rows(const linalg::SparseBinaryMatrix& r) {
  if (r.rows() < path_count()) {
    throw std::invalid_argument(
        "add_rows: routing matrix has fewer rows than the store");
  }
  // Growing from an empty store (default-constructed, or built over a
  // 0-row matrix): establish the CSR leading offsets the loops below
  // extend via back().
  if (row_offsets_.empty()) row_offsets_.push_back(0);
  if (link_offsets_.empty()) link_offsets_.push_back(0);
  const std::size_t first_pair = pair_count();
  std::vector<std::uint32_t> partners;
  std::vector<std::uint32_t> shared;
  for (std::size_t i_new = path_count(); i_new < r.rows(); ++i_new) {
    const auto row = r.row(i_new);
    // Keep the transpose incidence current first, so the new path is its
    // own partner candidate (diagonal pair) like every build()-time row —
    // and earlier rows of this very batch partner with later ones.
    for (const auto link : row) {
      if (link >= columns_.size()) {
        columns_.resize(link + 1);  // links unseen by any earlier path
      }
      columns_[link].push_back(static_cast<std::uint32_t>(i_new));
    }
    partners.clear();
    for (const auto link : row) {
      const auto& paths = columns_[link];
      partners.insert(partners.end(), paths.begin(), paths.end());
    }
    std::sort(partners.begin(), partners.end());
    partners.erase(std::unique(partners.begin(), partners.end()),
                   partners.end());

    for (const auto j : partners) {
      if (keep_ && !keep_(j, i_new)) continue;
      linalg::intersect_sorted(row, r.row(j), shared);
      if (shared.empty()) continue;
      const std::size_t p = partner_.size();
      partner_.push_back(j);
      link_offsets_.push_back(link_offsets_.back() + shared.size());
      links_.insert(links_.end(), shared.begin(), shared.end());
      if (reverse_built_ && j != i_new) partner_pairs_[j].push_back(p);
    }
    row_offsets_.push_back(partner_.size());
    row_live_.push_back(1);
    if (reverse_built_) partner_pairs_.emplace_back();
  }
  return first_pair;
}

void SharingPairStore::set_row_live(std::size_t i, bool live) {
  row_live_[i] = live ? 1 : 0;
}

void SharingPairStore::ensure_reverse_index() const {
  if (reverse_built_) return;
  partner_pairs_.assign(path_count(), {});
  for (std::size_t i = 0; i < path_count(); ++i) {
    for (std::size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      const std::uint32_t j = partner_[p];
      if (j != i) partner_pairs_[j].push_back(p);
    }
  }
  reverse_built_ = true;
}

std::size_t SharingPairStore::find_pair(std::size_t i, std::size_t j) const {
  const auto in_row = [&](std::size_t row, std::uint32_t want) {
    std::size_t lo = row_offsets_[row], hi = row_offsets_[row + 1];
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (partner_[mid] < want) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < row_offsets_[row + 1] && partner_[lo] == want) return lo;
    return kNoPair;
  };
  const std::size_t p = in_row(i, static_cast<std::uint32_t>(j));
  if (p != kNoPair) return p;
  return in_row(j, static_cast<std::uint32_t>(i));
}

void SharingPairStore::pairs_of_path(std::size_t i,
                                     std::vector<std::size_t>& out) const {
  ensure_reverse_index();
  out.clear();
  for (std::size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
    out.push_back(p);
  }
  out.insert(out.end(), partner_pairs_[i].begin(), partner_pairs_[i].end());
  std::sort(out.begin(), out.end());
}

void SharingPairStore::save_state(io::CheckpointWriter& writer) const {
  writer.begin_section(io::tags::kSharingPairs);
  writer.sizes(row_offsets_);
  writer.u32s(partner_);
  writer.sizes(link_offsets_);
  writer.u32s(links_);
  writer.u8s(row_live_);
  writer.usize(columns_.size());
  for (const auto& column : columns_) writer.u32s(column);
  writer.end_section();
}

void SharingPairStore::restore_state(io::CheckpointReader& reader) {
  reader.expect_section(io::tags::kSharingPairs);
  SharingPairStore tmp;
  tmp.row_offsets_ = reader.sizes();
  tmp.partner_ = reader.u32s();
  tmp.link_offsets_ = reader.sizes();
  tmp.links_ = reader.u32s();
  tmp.row_live_ = reader.u8s();
  const std::size_t column_count = reader.usize();
  if (column_count > reader.remaining() / 8) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "pair store column count exceeds the payload");
  }
  tmp.columns_.resize(column_count);
  for (auto& column : tmp.columns_) column = reader.u32s();
  reader.end_section();
  // Structural consistency: offsets monotone within bounds, partner and
  // link ids in range — everything the unchecked readers rely on.
  const std::size_t paths = tmp.path_count();
  bool ok = !tmp.row_offsets_.empty() && tmp.row_offsets_.front() == 0 &&
            tmp.row_offsets_.back() == tmp.partner_.size() &&
            tmp.row_live_.size() == paths &&
            tmp.link_offsets_.size() == tmp.partner_.size() + 1 &&
            !tmp.link_offsets_.empty() && tmp.link_offsets_.front() == 0 &&
            tmp.link_offsets_.back() == tmp.links_.size();
  for (std::size_t i = 0; ok && i + 1 < tmp.row_offsets_.size(); ++i) {
    ok = tmp.row_offsets_[i] <= tmp.row_offsets_[i + 1];
  }
  for (std::size_t p = 0; ok && p + 1 < tmp.link_offsets_.size(); ++p) {
    ok = tmp.link_offsets_[p] <= tmp.link_offsets_[p + 1];
  }
  for (std::size_t p = 0; ok && p < tmp.partner_.size(); ++p) {
    ok = tmp.partner_[p] < paths;
  }
  for (std::size_t e = 0; ok && e < tmp.links_.size(); ++e) {
    ok = tmp.links_[e] < tmp.columns_.size();
  }
  for (std::size_t c = 0; ok && c < tmp.columns_.size(); ++c) {
    for (std::size_t k = 0; ok && k < tmp.columns_[c].size(); ++k) {
      ok = tmp.columns_[c][k] < paths;
    }
  }
  if (!ok) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "pair store CSR structure is inconsistent");
  }
  // The filter is not serialized; the restore target keeps its own, so a
  // store constructed filtered (the sharded boundary store) stays
  // filtered for post-restore growth.
  tmp.keep_ = std::move(keep_);
  *this = std::move(tmp);
}

std::size_t SharingPairStore::bytes() const {
  std::size_t total = row_offsets_.capacity() * sizeof(std::size_t) +
                      partner_.capacity() * sizeof(std::uint32_t) +
                      link_offsets_.capacity() * sizeof(std::size_t) +
                      links_.capacity() * sizeof(std::uint32_t) +
                      row_live_.capacity();
  for (const auto& column : columns_) {
    total += column.capacity() * sizeof(std::uint32_t);
  }
  total += columns_.capacity() * sizeof(std::vector<std::uint32_t>);
  for (const auto& pairs : partner_pairs_) {
    total += pairs.capacity() * sizeof(std::size_t);
  }
  total += partner_pairs_.capacity() * sizeof(std::vector<std::size_t>);
  return total;
}

}  // namespace losstomo::core
