// CGLS: conjugate gradient on the normal equations, in operator form.
//
// Iterative fallback for least-squares problems where neither the explicit
// matrix nor its Gram matrix fits comfortably in memory.  The caller
// provides y = A x and x = A^T y as callables, so the routing-matrix
// structures can be used directly without densification.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "linalg/matrix.hpp"

namespace losstomo::linalg {

struct CglsOptions {
  std::size_t max_iterations = 1000;
  /// Stop when ||A^T r|| <= tolerance * ||A^T b||.
  double tolerance = 1e-10;
};

struct CglsResult {
  Vector x;
  std::size_t iterations = 0;
  bool converged = false;
  double residual_norm = 0.0;  // final ||A^T r||
};

/// Minimizes ||A x - b||_2 with A given implicitly.
/// `apply(x)` must return A x (length m); `apply_t(y)` must return A^T y
/// (length n); b has length m; the solution has length n.
CglsResult cgls(const std::function<Vector(std::span<const double>)>& apply,
                const std::function<Vector(std::span<const double>)>& apply_t,
                std::span<const double> b, std::size_t n,
                const CglsOptions& options = {});

}  // namespace losstomo::linalg
