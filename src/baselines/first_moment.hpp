// First-moment strawman: solve Y = R X directly.
//
// The system is rank deficient in any realistic topology (paper Fig. 1),
// so the minimum-norm/basic solution is *one of infinitely many* loss
// assignments consistent with the measurements.  Included as the baseline
// that motivates the paper: it demonstrates the unidentifiability LIA
// overcomes (see examples/quickstart and tests/core/identifiability_test).
#pragma once

#include <span>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace losstomo::baselines {

struct FirstMomentResult {
  linalg::Vector x;     // raw log transmission rates (basic LS solution)
  linalg::Vector phi;   // exp(x), clamped to [0, 1]
  linalg::Vector loss;  // 1 - phi
  std::size_t rank = 0;
  std::size_t columns = 0;
  [[nodiscard]] bool identifiable() const { return rank == columns; }
};

/// Basic (rank-revealing) least-squares solution of Y = R X.
FirstMomentResult solve_first_moment(const linalg::SparseBinaryMatrix& r,
                                     std::span<const double> y_log);

}  // namespace losstomo::baselines
