#include "net/graph.hpp"

#include <gtest/gtest.h>

namespace losstomo::net {
namespace {

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  const auto e = g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).from, 0u);
  EXPECT_EQ(g.edge(e).to, 1u);
}

TEST(Graph, AdjacencyLists) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(2), 2u);
  EXPECT_EQ(g.out_edges(1).size(), 1u);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5), std::invalid_argument);
}

TEST(Graph, BidirectionalAddsPair) {
  Graph g(2);
  const auto forward = g.add_bidirectional(0, 1);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.edge(forward).from, 0u);
  EXPECT_EQ(g.edge(forward + 1).from, 1u);
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(Graph, AsAnnotationAndInterAs) {
  Graph g(3);
  g.set_as(0, 1);
  g.set_as(1, 1);
  g.set_as(2, 2);
  const auto intra = g.add_edge(0, 1);
  const auto inter = g.add_edge(1, 2);
  EXPECT_FALSE(g.is_inter_as(intra));
  EXPECT_TRUE(g.is_inter_as(inter));
}

TEST(Graph, UnannotatedNodesNeverInterAs) {
  Graph g(2);
  const auto e = g.add_edge(0, 1);
  EXPECT_FALSE(g.is_inter_as(e));
}

TEST(Graph, HasEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Graph, Reachability) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.reachable_from(0).size(), 3u);  // node 3 unreachable
  EXPECT_FALSE(g.all_reachable_from(0));
  g.add_edge(2, 3);
  EXPECT_TRUE(g.all_reachable_from(0));
}

}  // namespace
}  // namespace losstomo::net
