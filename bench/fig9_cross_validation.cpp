// Figure 9: cross-validation of LIA on the (simulated) PlanetLab overlay.
// Paths are split at random into an inference half and a validation half;
// LIA learns and infers on the inference half only, and each validation
// path checks eq. (11): measured transmission within epsilon = 0.005 of
// the product of inferred link rates over the covered portion.  Prints the
// percentage of consistent paths as a function of m.
#include "common.hpp"

#include <algorithm>

#include "core/validation.hpp"

int main(int argc, char** argv) {
  using namespace losstomo;
  const util::Args args(argc, argv);
  const bool full = util::Args::full_scale();
  const double scale = args.get_double("scale", full ? 0.4 : 0.1);
  const double p = args.get_double("p", 0.05);
  const double epsilon = args.get_double("epsilon", 0.005);
  const auto runs = args.get_size("runs", full ? 10 : 4);
  const auto ms = args.get_ints("m", {20, 40, 60, 80, 100});
  const auto seed = args.get_size("seed", 29);
  args.finish();

  std::cout << "Figure 9: cross-validation on the PlanetLab-like overlay "
               "(scale=" << scale << ", p=" << p << ", epsilon=" << epsilon
            << ", runs=" << runs << ")\n"
            << "Internet-like loss profile: good links near-lossless "
               "(DESIGN.md §4).\n\n";

  stats::Rng topo_rng(seed);
  const auto inst = bench::from_topology(
      topology::make_planetlab_like_scaled(scale, topo_rng), "PlanetLab");
  const auto& rrm = inst.matrix();
  std::cout << "paths: " << rrm.path_count()
            << ", links: " << rrm.link_count() << "\n\n";

  sim::ScenarioConfig config;
  config.p = p;
  config.loss_model.good_hi = 0.0002;
  config.probes_per_snapshot = 2000;

  const int max_m = *std::max_element(ms.begin(), ms.end());
  util::Table table({"m", "consistent paths"});
  for (const int m : ms) {
    stats::RunningStat consistency;
    for (std::size_t run = 0; run < runs; ++run) {
      sim::SnapshotSimulator simulator(inst.graph, rrm, config,
                                       seed * 31 + run);
      // Generate max_m + 1 snapshots once per run shape; use the first m
      // for learning and the last as the evaluation snapshot.
      auto series = sim::run_snapshots(simulator,
                                       static_cast<std::size_t>(max_m) + 1);
      stats::SnapshotMatrix history(rrm.path_count(),
                                    static_cast<std::size_t>(m));
      for (int l = 0; l < m; ++l) {
        const auto& y = series.snapshots[l].path_log_trans;
        std::copy(y.begin(), y.end(), history.sample(l).begin());
      }
      const auto& current = series.snapshots.back();
      stats::Rng split_rng(seed * 997 + run);
      const auto split = core::split_paths(rrm.path_count(), split_rng);
      const auto result = core::cross_validate(
          inst.graph, inst.paths, history, current.path_log_trans,
          current.path_trans, split, epsilon);
      consistency.add(result.consistency());
    }
    table.add_row({std::to_string(m), util::Table::pct(consistency.mean())});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): > 95% consistent, increasing with m "
               "and flattening once m is large (m > 80).\n";
  return 0;
}
