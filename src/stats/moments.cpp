#include "stats/moments.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "io/checkpoint.hpp"
#include "io/checkpoint_tags.hpp"
#include "linalg/kernels.hpp"

namespace losstomo::stats {

SnapshotMatrix::SnapshotMatrix(std::size_t dim, std::size_t count)
    : dim_(dim), count_(count), data_(dim * count, 0.0) {}

SnapshotMatrix SnapshotMatrix::from_rows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) throw std::invalid_argument("no snapshots");
  SnapshotMatrix out(rows.front().size(), rows.size());
  for (std::size_t l = 0; l < rows.size(); ++l) {
    if (rows[l].size() != out.dim()) {
      throw std::invalid_argument("snapshot dimension mismatch");
    }
    std::copy(rows[l].begin(), rows[l].end(), out.sample(l).begin());
  }
  return out;
}

std::span<double> SnapshotMatrix::sample(std::size_t l) {
  return {data_.data() + l * dim_, dim_};
}

std::span<const double> SnapshotMatrix::sample(std::size_t l) const {
  return {data_.data() + l * dim_, dim_};
}

double& SnapshotMatrix::at(std::size_t l, std::size_t i) {
  return data_[l * dim_ + i];
}

double SnapshotMatrix::at(std::size_t l, std::size_t i) const {
  return data_[l * dim_ + i];
}

std::vector<double> sample_means(const SnapshotMatrix& y) {
  std::vector<double> means(y.dim(), 0.0);
  for (std::size_t l = 0; l < y.count(); ++l) {
    const auto row = y.sample(l);
    for (std::size_t i = 0; i < y.dim(); ++i) means[i] += row[i];
  }
  const double inv = 1.0 / static_cast<double>(y.count());
  for (auto& m : means) m *= inv;
  return means;
}

CenteredSnapshots::CenteredSnapshots(const SnapshotMatrix& y)
    : centered_(y.dim(), y.count()), means_(sample_means(y)) {
  for (std::size_t l = 0; l < y.count(); ++l) {
    const auto src = y.sample(l);
    auto dst = centered_.sample(l);
    for (std::size_t i = 0; i < y.dim(); ++i) dst[i] = src[i] - means_[i];
  }
}

double CenteredSnapshots::covariance(std::size_t i, std::size_t j) const {
  const std::size_t m = count();
  if (m < 2) throw std::logic_error("covariance needs >= 2 snapshots");
  double acc = 0.0;
  for (std::size_t l = 0; l < m; ++l) {
    const auto row = sample(l);
    acc += row[i] * row[j];
  }
  return acc / static_cast<double>(m - 1);
}

linalg::Matrix covariance_matrix(const CenteredSnapshots& y,
                                 std::size_t threads) {
  const std::size_t m = y.count();
  if (m < 2) throw std::logic_error("covariance needs >= 2 snapshots");
  const double scale = 1.0 / static_cast<double>(m - 1);
  return linalg::blocked_gram(y.flat().data(), m, y.dim(), scale, threads);
}

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return mean_; }

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return min_; }

double RunningStat::max() const { return max_; }

void RunningStat::save_state(io::CheckpointWriter& writer) const {
  writer.begin_section(io::tags::kRunningStat);
  writer.usize(n_);
  writer.f64(mean_);
  writer.f64(m2_);
  writer.f64(min_);
  writer.f64(max_);
  writer.end_section();
}

void RunningStat::restore_state(io::CheckpointReader& reader) {
  reader.expect_section(io::tags::kRunningStat);
  RunningStat tmp;
  tmp.n_ = reader.usize();
  tmp.mean_ = reader.f64();
  tmp.m2_ = reader.f64();
  tmp.min_ = reader.f64();
  tmp.max_ = reader.f64();
  reader.end_section();
  *this = tmp;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  const double n = static_cast<double>(a.size());
  const double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  const double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

namespace {

// Average ranks (1-based) with ties sharing the mean of their rank range.
std::vector<double> ranks(std::span<const double> x) {
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return x[i] < x[j]; });
  std::vector<double> rank(x.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && x[order[j + 1]] == x[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg;
    i = j + 1;
  }
  return rank;
}

}  // namespace

double spearman(std::span<const double> a, std::span<const double> b) {
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  return pearson(ra, rb);
}

}  // namespace losstomo::stats
