// lia_cli — run LIA on measurement files (the "bring your own traces"
// entry point).
//
// Modes:
//   generate: writes a sample campaign (topology/paths/snapshots files)
//             from the built-in simulator, so the file formats are easy to
//             copy.  format=binary emits the snapshots as an mmap-able
//             io::BinaryTrace instead of text (direct emission through the
//             ingestion pipeline — no intermediate campaign in memory):
//       lia_cli mode=generate out=/tmp/campaign [hosts=16] [m=50]
//               [format=text|binary]
//   infer:    reads a campaign, learns on all but the last snapshot,
//             diagnoses the last one, prints per-link loss rates and the
//             identifiability report:
//       lia_cli mode=infer topology=... paths=... snapshots=... [tl=0.002]
//   monitor:  streams the snapshot file through the ingestion pipeline
//             (io/pipeline.hpp) into LiaMonitor, so arbitrarily long
//             traces run at O(np) reader memory.  The format is detected
//             by content (binary traces by magic) and binary ingestion is
//             zero-copy off the mmap; thin=k keeps every k-th snapshot:
//             shards=K partitions the pair accumulator across K interior
//             shards plus a boundary shard (implies the sharing-pairs
//             accumulator; inferences stay bit-identical):
//       lia_cli mode=monitor topology=... paths=... snapshots=... [m=50]
//               [relearn_every=1] [engine=streaming|batch] [tl=0.002]
//               [format=auto|text|binary] [thin=1] [shards=0]
//   convert:  converts a snapshot campaign between the text and binary
//             trace formats (direction auto-detected from the input;
//             doubles round-trip bit-identically in both directions):
//       lia_cli mode=convert in=<snapshots> out=<snapshots>
//   scenario: runs a scripted dynamic-overlay scenario (path churn, link
//             failures, regime shifts — src/scenario/) through the
//             streaming monitor and reports per-event diagnostics.
//             record= captures the exact monitor feed as a binary trace;
//             replay= drives the monitor from such a trace instead of the
//             simulator (bit-identical inferences):
//             shards=K runs the sharded coordinator and reports per-shard
//             sizes, cross-shard pairs, and merge counts:
//       lia_cli mode=scenario scenario=scenarios/flapping_mesh.scn
//               [ticks=] [window=] [engine=streaming|batch]
//               [accumulator=dense|pairs] [shards=0] [tl=0.002]
//               [record=<trace>] [replay=<trace>]
//   ingest-drill: end-to-end parity drill for the binary ingestion path.
//             Simulates a campaign, writes it both as text and as a binary
//             trace, monitors both (text through the classic SnapshotStream
//             loop, binary zero-copy through the pipeline off the mmap),
//             and verifies every inference is bit-identical (exit 0):
//       lia_cli mode=ingest-drill [hosts=12] [m=30] [ticks=60] [dir=/tmp]
//   checkpoint-drill: crash-recovery drill (io/checkpoint.hpp).  Runs the
//             scenario uninterrupted as a reference, re-runs it killing the
//             process state at a scripted tick, restores from the
//             checkpoint file, and verifies the resumed run is
//             bit-identical with no extra refactorizations.  fault=
//             corrupts the checkpoint instead and verifies the restore is
//             rejected with the right typed error (exit 0 on clean
//             rejection):
//       lia_cli mode=checkpoint-drill scenario=scenarios/flapping_mesh.scn
//               [kill_at=] [file=/tmp/losstomo_drill.ckpt] [ticks=]
//               [window=] [threads=1] [fault=none|truncate|bitflip|version]
//
// File formats are documented in src/io/trace_io.hpp (measurements) and
// src/scenario/spec.hpp (scenario scripts; shipped examples in scenarios/).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <iterator>

#include "core/identifiability.hpp"
#include "core/lia.hpp"
#include "core/monitor.hpp"
#include "core/sharded_moments.hpp"
#include "io/binary_trace.hpp"
#include "io/checkpoint.hpp"
#include "io/pipeline.hpp"
#include "io/scenario_io.hpp"
#include "io/trace_io.hpp"
#include "net/routing_matrix.hpp"
#include "obs/registry.hpp"
#include "scenario/runner.hpp"
#include "sim/probe_sim.hpp"
#include "topology/overlay.hpp"
#include "topology/routing.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace losstomo;

namespace {

void print_usage(std::ostream& os) {
  os << "usage: lia_cli mode=<mode> [key=value ...]\n"
        "modes:\n"
        "  generate   out= [hosts=] [m=] [seed=] [format=text|binary]\n"
        "  infer      topology= paths= snapshots= [tl=] [top=]\n"
        "  monitor    topology= paths= snapshots= [m=] [relearn_every=]\n"
        "             [engine=streaming|batch] [format=auto|text|binary]\n"
        "             [thin=] [shards=] [tl=]\n"
        "             [metrics=<file>] [metrics_every=<ticks>]\n"
        "  convert    in=<snapshots> out=<snapshots>\n"
        "  scenario   scenario=<file.scn> [ticks=] [window=]\n"
        "             [engine=streaming|batch] [accumulator=dense|pairs]\n"
        "             [shards=] [tl=] [record=] [replay=]\n"
        "             [metrics=<file>] [metrics_every=<ticks>]\n"
        "  ingest-drill      [hosts=] [m=] [ticks=] [dir=] [threads=]\n"
        "  checkpoint-drill  scenario= [kill_at=] [file=] [ticks=]\n"
        "                    [window=] [threads=]\n"
        "                    [fault=none|truncate|bitflip|version]\n"
        "metrics= writes a telemetry snapshot (losstomo.metrics JSON; a\n"
        ".prom suffix switches to Prometheus text) at the end of the run;\n"
        "metrics_every=N also rewrites it every N ticks.  Unknown keys and\n"
        "modes exit 2.  Full documentation: docs/OBSERVABILITY.md and the\n"
        "header of examples/lia_cli.cpp.\n";
}

int generate(const util::Args& args) {
  const auto out = args.get_string("out", "/tmp/losstomo_campaign");
  const auto hosts = args.get_size("hosts", 16);
  const auto m = args.get_size("m", 50);
  const auto seed = args.get_size("seed", 1);
  const auto format = args.get_string("format", "text");
  args.finish();
  if (format != "text" && format != "binary") {
    std::cerr << "format must be text|binary\n";
    return 2;
  }

  stats::Rng rng(seed);
  auto topo = topology::make_planetlab_like(
      {.hosts = hosts, .as_count = 8, .routers_per_as = 6}, rng);
  const auto routed = topology::route_paths(topo.graph, topo.hosts, topo.hosts);
  const net::ReducedRoutingMatrix rrm(topo.graph, routed.paths);

  sim::ScenarioConfig config;
  config.p = 0.08;
  sim::SnapshotSimulator simulator(topo.graph, rrm, config, seed * 5);
  std::size_t snapshots = 0;
  if (format == "binary") {
    // Direct emission: simulator -> binary trace, never materialising the
    // campaign in memory.
    io::SimulatorSource source(simulator, m + 1);
    io::BinaryTraceSink sink(out + ".snapshots");
    snapshots = source.drain(sink);
  } else {
    std::vector<std::vector<double>> phi_rows;
    for (std::size_t l = 0; l < m + 1; ++l) {
      phi_rows.push_back(simulator.next().path_trans);
    }
    io::save_snapshots(out + ".snapshots", phi_rows);
    snapshots = phi_rows.size();
  }

  io::save_topology(out + ".topology", topo.graph);
  io::save_paths(out + ".paths", routed.paths);
  std::cout << "wrote " << out << ".topology (" << topo.graph.edge_count()
            << " edges), " << out << ".paths (" << routed.paths.size()
            << " paths), " << out << ".snapshots (" << snapshots << ' '
            << format << " snapshots)\n"
            << "try:  lia_cli mode=infer topology=" << out
            << ".topology paths=" << out << ".paths snapshots=" << out
            << ".snapshots\n";
  return 0;
}

int infer(const util::Args& args) {
  const auto topology_file = args.get_string("topology", "");
  const auto paths_file = args.get_string("paths", "");
  const auto snapshots_file = args.get_string("snapshots", "");
  const double tl = args.get_double("tl", 0.002);
  const auto top = args.get_size("top", 20);
  args.finish();
  if (topology_file.empty() || paths_file.empty() || snapshots_file.empty()) {
    std::cerr << "mode=infer needs topology=, paths=, snapshots= files\n";
    return 2;
  }

  const auto graph = io::load_topology(topology_file);
  const auto paths = io::load_paths(paths_file);
  const auto y = io::load_snapshots(snapshots_file);
  const net::ReducedRoutingMatrix rrm(graph, paths);
  if (y.dim() != rrm.path_count()) {
    std::cerr << "snapshot arity " << y.dim() << " != path count "
              << rrm.path_count() << '\n';
    return 2;
  }
  if (y.count() < 3) {
    std::cerr << "need at least 3 snapshots (m >= 2 to learn + 1 to infer)\n";
    return 2;
  }
  std::cout << "campaign: " << rrm.path_count() << " paths, "
            << rrm.link_count() << " measurable links, " << y.count()
            << " snapshots\n";

  const auto report = core::analyze_identifiability(rrm.matrix());
  std::cout << "identifiability: rank(R) = " << report.routing_rank
            << ", rank(A) = " << report.augmented_rank << " of "
            << report.link_count
            << (report.variances_identifiable()
                    ? " -> variances identifiable (Theorem 1)\n"
                    : " -> WARNING: some variances not identifiable\n");

  // Learn on snapshots [0, m); infer snapshot m.
  const std::size_t m = y.count() - 1;
  stats::SnapshotMatrix history(y.dim(), m);
  for (std::size_t l = 0; l < m; ++l) {
    const auto src = y.sample(l);
    std::copy(src.begin(), src.end(), history.sample(l).begin());
  }
  core::Lia lia(rrm.matrix());
  const auto& learned = lia.learn(history);
  const auto inference = lia.infer(y.sample(m));
  std::cout << "phase 1: " << learned.method << ", "
            << learned.equations_used << " equations ("
            << learned.equations_dropped << " dropped)\n\n";

  // Report: congested links first, by inferred loss.
  std::vector<std::size_t> order(rrm.link_count());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return inference.loss[a] > inference.loss[b];
  });
  util::Table table({"link", "edges", "inferred loss", "learned variance",
                     "verdict"});
  std::size_t shown = 0;
  for (const auto k : order) {
    if (shown++ >= top) break;
    std::string edges;
    for (const auto e : rrm.members(k)) {
      if (!edges.empty()) edges += ",";
      edges += std::to_string(e);
    }
    table.add_row({"link#" + std::to_string(k), edges,
                   util::Table::num(inference.loss[k], 4),
                   util::Table::num(learned.v[k], 6),
                   inference.loss[k] > tl ? "CONGESTED" : "ok"});
  }
  table.print(std::cout);
  return 0;
}

int monitor(const util::Args& args) {
  const auto topology_file = args.get_string("topology", "");
  const auto paths_file = args.get_string("paths", "");
  const auto snapshots_file = args.get_string("snapshots", "");
  const double tl = args.get_double("tl", 0.002);
  const auto m = args.get_size("m", 50);
  const auto relearn_every = args.get_size("relearn_every", 1);
  const auto engine = args.get_string("engine", "streaming");
  const auto format = args.get_string("format", "auto");
  const auto thin_every = args.get_size("thin", 1);
  const auto shards = args.get_size("shards", 0);
  const auto metrics_file = args.get_string("metrics", "");
  const auto metrics_every = args.get_size("metrics_every", 0);
  args.finish();
  if (topology_file.empty() || paths_file.empty() || snapshots_file.empty()) {
    std::cerr << "mode=monitor needs topology=, paths=, snapshots= files\n";
    return 2;
  }
  if (engine != "streaming" && engine != "batch") {
    std::cerr << "engine must be streaming|batch\n";
    return 2;
  }
  if (shards > 0 && engine != "streaming") {
    std::cerr << "shards= needs the streaming engine\n";
    return 2;
  }
  if (format != "auto" && format != "text" && format != "binary") {
    std::cerr << "format must be auto|text|binary\n";
    return 2;
  }

  const auto graph = io::load_topology(topology_file);
  const auto paths = io::load_paths(paths_file);
  const net::ReducedRoutingMatrix rrm(graph, paths);
  auto opened = io::open_snapshot_source(snapshots_file);
  if (format == "binary" && !opened.binary) {
    std::cerr << snapshots_file << " is not a binary trace\n";
    return 2;
  }
  if (format == "text" && opened.binary) {
    std::cerr << snapshots_file << " is a binary trace (use format=auto)\n";
    return 2;
  }

  // A metrics= file arms the telemetry registry: the monitor publishes its
  // deterministic counters into it every tick, the pipeline elements count
  // rows/bytes through them, and the flight recorder keeps the last phase
  // spans for a crash dump.
  obs::Registry registry;
  const bool telemetry = !metrics_file.empty();
  if (telemetry) registry.enable_flight_recorder(256);

  core::MonitorOptions monitor_options;
  monitor_options.window = m;
  monitor_options.relearn_every = relearn_every;
  if (telemetry) monitor_options.telemetry = &registry;
  monitor_options.engine = engine == "batch" ? core::MonitorEngine::kBatch
                                             : core::MonitorEngine::kStreaming;
  if (shards > 0) {
    // Sharding partitions the pair-indexed accumulator; it implies the
    // sharing-pairs layout.
    monitor_options.accumulator = core::CovarianceAccumulator::kSharingPairs;
    monitor_options.shards = shards;
  }
  core::LiaMonitor monitor(rrm.matrix(), monitor_options);
  util::Table log({"tick", "congested links", "worst link loss"});
  std::size_t diagnosed = 0;
  // source -> thin -> log-transform -> monitor: the same chain for text
  // and binary input; binary batches arrive zero-copy off the mmap.
  io::Thin thin(thin_every);
  io::LogTransform log_transform;
  io::MonitorSink sink(
      monitor, [&](std::size_t tick, const core::LossInference& inference) {
        ++diagnosed;
        if (telemetry && metrics_every > 0 && diagnosed % metrics_every == 0) {
          registry.write_file(metrics_file);
        }
        std::size_t flagged = 0;
        double worst = 0.0;
        for (std::size_t k = 0; k < rrm.link_count(); ++k) {
          if (inference.loss[k] > tl) {
            ++flagged;
            worst = std::max(worst, inference.loss[k]);
          }
        }
        log.add_row({std::to_string(tick + 1), std::to_string(flagged),
                     util::Table::num(worst, 4)});
      });
  thin.to(log_transform).to(sink);
  if (telemetry) {
    opened.source->set_telemetry(&registry, "source");
    thin.set_telemetry(&registry, "thin");
    log_transform.set_telemetry(&registry, "log_transform");
    sink.set_telemetry(&registry, "monitor_sink");
  }
  std::size_t streamed = 0;
  try {
    streamed = opened.source->drain(thin);
  } catch (const std::invalid_argument& e) {
    std::cerr << "snapshot feed rejected (" << e.what() << "); expected arity "
              << rrm.path_count() << '\n';
    return 2;
  } catch (...) {
    if (telemetry) {
      // Crash dump: the last phase spans, oldest first, before the error
      // propagates — what the run was doing when it died.
      std::cerr << "flight recorder:\n";
      registry.write_flight_recorder_json(std::cerr);
    }
    throw;
  }
  log.print(std::cout);
  std::cout << '\n'
            << streamed << " snapshots streamed ("
            << (opened.binary ? "binary, zero-copy" : "text") << "), "
            << diagnosed << " diagnosed (window m=" << m << ", " << engine
            << " engine)\n";
  if (streamed <= m) {
    std::cout << "note: the first m snapshots are learning-only; feed more "
                 "than m to see diagnoses\n";
  }
  if (const auto* sharded = monitor.sharded_accumulator()) {
    std::size_t min_paths = rrm.path_count(), max_paths = 0;
    for (std::size_t s = 0; s < sharded->shard_count(); ++s) {
      min_paths = std::min(min_paths, sharded->shard_path_count(s));
      max_paths = std::max(max_paths, sharded->shard_path_count(s));
    }
    std::cout << "shards: " << sharded->shard_count() << " (paths/shard "
              << min_paths << ".." << max_paths << "), "
              << sharded->cross_shard_pairs() << " cross-shard pairs, "
              << sharded->merges() << " merges\n";
  }
  if (telemetry) {
    registry.write_file(metrics_file);
    std::cout << "metrics -> " << metrics_file << '\n';
  }
  return 0;
}

int scenario_mode(const util::Args& args) {
  const auto scenario_file = args.get_string("scenario", "");
  const double tl = args.get_double("tl", 0.002);
  const auto ticks_override = args.get_size("ticks", 0);
  const auto window_override = args.get_size("window", 0);
  const auto engine = args.get_string("engine", "streaming");
  auto accumulator = args.get_string("accumulator", "dense");
  const auto shards = args.get_size("shards", 0);
  const auto record_file = args.get_string("record", "");
  const auto replay_file = args.get_string("replay", "");
  const auto metrics_file = args.get_string("metrics", "");
  const auto metrics_every = args.get_size("metrics_every", 0);
  args.finish();
  if (shards > 0) accumulator = "pairs";  // sharding implies the pair layout
  if (scenario_file.empty()) {
    std::cerr << "mode=scenario needs scenario=<file> "
                 "(see scenarios/*.scn)\n";
    return 2;
  }
  if (engine != "streaming" && engine != "batch") {
    std::cerr << "engine must be streaming|batch\n";
    return 2;
  }
  if (accumulator != "dense" && accumulator != "pairs") {
    std::cerr << "accumulator must be dense|pairs\n";
    return 2;
  }

  auto spec = io::load_scenario(scenario_file);
  if (window_override > 0) spec.window = window_override;
  if (ticks_override > 0) {
    spec.ticks = ticks_override;
    // Keep only the events the shortened run reaches.
    std::erase_if(spec.events, [&](const scenario::Event& e) {
      return e.tick >= spec.ticks;
    });
  }
  core::MonitorOptions options;
  options.engine = engine == "batch" ? core::MonitorEngine::kBatch
                                     : core::MonitorEngine::kStreaming;
  options.accumulator = accumulator == "pairs"
                            ? core::CovarianceAccumulator::kSharingPairs
                            : core::CovarianceAccumulator::kDense;
  options.shards = shards;
  if (shards > 0 && engine != "streaming") {
    std::cerr << "shards= needs the streaming engine\n";
    return 2;
  }
  // metrics= arms telemetry: the runner and monitor publish deterministic
  // counters + per-event-type churn costs, the flight recorder keeps the
  // last phase spans for a crash dump.
  obs::Registry registry;
  const bool telemetry = !metrics_file.empty();
  if (telemetry) {
    registry.enable_flight_recorder(256);
    options.telemetry = &registry;
  }
  scenario::ScenarioRunner runner(std::move(spec), options);
  if (!record_file.empty()) {
    runner.record_trace(record_file);
    std::cout << "recording monitor feed -> " << record_file << '\n';
  }
  if (!replay_file.empty()) {
    runner.replay_trace(replay_file);
    std::cout << "replaying monitor feed <- " << replay_file
              << " (simulator bypassed)\n";
  }
  std::cout << "scenario '" << runner.spec().name << "': "
            << runner.universe().path_count() << " universe paths ("
            << runner.base_path_count() << " base), "
            << runner.universe().link_count() << " links, window "
            << runner.spec().window << ", " << runner.spec().ticks
            << " ticks, " << runner.timeline().size() << " events ("
            << engine << " engine, " << accumulator << " accumulator";
  if (shards > 0) std::cout << ", " << shards << " shards";
  std::cout << ")\n\n";

  util::Table log({"tick", "event(s)", "active", "congested", "worst loss"});
  const auto on_tick = [&](std::size_t tick, std::size_t events,
                           const std::optional<core::LossInference>&
                               inference) {
    if (telemetry && metrics_every > 0 && (tick + 1) % metrics_every == 0) {
      registry.write_file(metrics_file);
    }
    if (events == 0 && !inference) return;
    std::string names;
    for (const auto& e : runner.timeline().at(tick)) {
      if (!names.empty()) names += ",";
      names += scenario::event_type_name(e.type);
    }
    if (events == 0 && names.empty() && inference) {
      // Quiet diagnosing tick: log only a sparse sample to keep the
      // output readable on long runs.
      if (tick % 25 != 0) return;
    }
    std::size_t flagged = 0;
    double worst = 0.0;
    if (inference) {
      for (const double loss : inference->loss) {
        if (loss > tl) {
          ++flagged;
          worst = std::max(worst, loss);
        }
      }
    }
    log.add_row({std::to_string(tick), names.empty() ? "-" : names,
                 std::to_string(runner.monitor().active_path_count()),
                 inference ? std::to_string(flagged) : "-",
                 inference ? util::Table::num(worst, 4) : "-"});
  };
  scenario::ScenarioOutcome outcome;
  try {
    outcome = runner.run(on_tick);
  } catch (...) {
    if (telemetry) {
      std::cerr << "flight recorder:\n";
      registry.write_flight_recorder_json(std::cerr);
    }
    throw;
  }
  log.print(std::cout);
  std::cout << '\n'
            << outcome.ticks << " ticks, " << outcome.events_applied
            << " events applied, " << outcome.diagnosed << " diagnosed, "
            << outcome.active_paths_end << " paths active at end\n"
            << "steady tick " << util::Table::num(outcome.steady_tick_seconds, 5)
            << " s, event tick "
            << util::Table::num(outcome.event_tick_seconds, 5) << " s, max "
            << util::Table::num(outcome.max_tick_seconds, 5) << " s\n";
  if (const auto* eqs = runner.monitor().streaming_equations()) {
    std::cout << "factor cache: " << eqs->refactorizations()
              << " refactorizations, " << eqs->rank1_updates()
              << " rank-1 updates (" << eqs->pin_updates() << " pin borders), "
              << eqs->refine_iterations() << " refinement steps, "
              << eqs->links_pinned() << " links pinned\n";
  }
  if (const auto* sharded = runner.monitor().sharded_accumulator()) {
    std::cout << "shards:";
    for (std::size_t s = 0; s < sharded->shard_count(); ++s) {
      std::cout << ' ' << sharded->shard_path_count(s) << 'p' << '/'
                << sharded->shard_pair_count(s) << "pr";
    }
    std::cout << " | " << sharded->cross_shard_pairs()
              << " cross-shard pairs, " << sharded->merges() << " merges\n";
  }
  if (telemetry) {
    registry.write_file(metrics_file);
    std::cout << "metrics -> " << metrics_file << '\n';
  }
  return 0;
}

int convert(const util::Args& args) {
  const auto in = args.get_string("in", "");
  const auto out = args.get_string("out", "");
  args.finish();
  if (in.empty() || out.empty()) {
    std::cerr << "mode=convert needs in=<snapshots> out=<snapshots>\n";
    return 2;
  }
  auto opened = io::open_snapshot_source(in);
  std::size_t snapshots = 0;
  if (opened.binary) {
    if (opened.log_transformed) {
      std::cerr << in
                << " stores log-transformed Y (a recorded scenario feed); "
                   "the text format stores phi, so this trace has no "
                   "lossless text form\n";
      return 2;
    }
    std::ofstream os(out);
    if (!os) {
      std::cerr << "cannot open for writing: " << out << '\n';
      return 2;
    }
    io::TextSnapshotSink sink(os);
    snapshots = opened.source->drain(sink);
    std::cout << "converted binary -> text: " << snapshots << " snapshots -> "
              << out << '\n';
  } else {
    io::BinaryTraceSink sink(out);
    snapshots = opened.source->drain(sink);
    std::cout << "converted text -> binary: " << snapshots << " snapshots -> "
              << out << '\n';
  }
  return 0;
}

// End-to-end parity drill: the binary ingestion path (mmap reader +
// pipeline) must produce inferences bit-identical to the classic text
// loop on the same campaign.  Exercised under ASan in CI to cover the
// mmap reader, and in the Release smoke as the convert -> run -> compare
// gate.
int ingest_drill(const util::Args& args) {
  const auto hosts = args.get_size("hosts", 12);
  const auto m = args.get_size("m", 30);
  const auto ticks = args.get_size("ticks", 60);
  const auto seed = args.get_size("seed", 7);
  const auto dir = args.get_string("dir", "/tmp");
  const auto threads = args.get_size("threads", 0);
  args.finish();

  stats::Rng rng(seed);
  auto topo = topology::make_planetlab_like(
      {.hosts = hosts, .as_count = 6, .routers_per_as = 5}, rng);
  const auto routed = topology::route_paths(topo.graph, topo.hosts, topo.hosts);
  const net::ReducedRoutingMatrix rrm(topo.graph, routed.paths);
  sim::ScenarioConfig config;
  config.p = 0.12;
  sim::SnapshotSimulator simulator(topo.graph, rrm, config, seed * 11);
  std::vector<std::vector<double>> phi_rows;
  for (std::size_t t = 0; t < ticks; ++t) {
    phi_rows.push_back(simulator.next().path_trans);
  }
  const auto text_file = dir + "/losstomo_ingest.snapshots";
  const auto binary_file = dir + "/losstomo_ingest.snapshots.bin";
  io::save_snapshots(text_file, phi_rows);
  {
    io::BinaryTraceWriter writer(binary_file, rrm.path_count());
    for (const auto& row : phi_rows) writer.append(row);
    writer.finish();
  }
  std::cout << "campaign: " << rrm.path_count() << " paths, " << ticks
            << " snapshots (text + binary)\n";

  core::MonitorOptions options{.window = m};
  options.lia.variance.threads = threads;

  // Reference: the classic per-line text loop.
  std::vector<linalg::Vector> text_inferences;
  {
    core::LiaMonitor monitor(rrm.matrix(), options);
    std::ifstream is(text_file);
    io::SnapshotStream stream(is);
    std::vector<double> y;
    while (stream.next(y)) {
      if (const auto inference = monitor.observe(y)) {
        text_inferences.push_back(inference->loss);
      }
    }
  }

  // Candidate: zero-copy binary ingestion through the pipeline.
  std::vector<linalg::Vector> binary_inferences;
  const auto reader = io::BinaryTraceReader::open(binary_file);
  std::cout << "binary trace: " << reader.snapshots() << " snapshots, "
            << (reader.mapped() ? "mmap" : "buffered") << " payload\n";
  {
    core::LiaMonitor monitor(rrm.matrix(), options);
    io::BinaryTraceSource source(reader);
    io::LogTransform log_transform(threads);
    io::MonitorSink sink(monitor,
                         [&](std::size_t, const core::LossInference& inf) {
                           binary_inferences.push_back(inf.loss);
                         });
    log_transform.to(sink);
    source.drain(log_transform);
  }

  if (text_inferences.size() != binary_inferences.size()) {
    std::cerr << "FAIL: " << text_inferences.size() << " text vs "
              << binary_inferences.size() << " binary diagnoses\n";
    return 1;
  }
  for (std::size_t t = 0; t < text_inferences.size(); ++t) {
    for (std::size_t k = 0; k < text_inferences[t].size(); ++k) {
      if (text_inferences[t][k] != binary_inferences[t][k]) {
        std::cerr << "FAIL: inference diverges at tick " << t << " link " << k
                  << '\n';
        return 1;
      }
    }
  }
  std::cout << text_inferences.size()
            << " diagnoses bit-identical across text and binary ingestion\n";
  return 0;
}

// Overwrites `file` with a deliberately damaged copy of itself.
void corrupt_checkpoint(const std::string& file, const std::string& fault) {
  std::ifstream in(file, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (bytes.empty()) throw std::runtime_error("empty checkpoint: " + file);
  if (fault == "truncate") {
    bytes.resize(bytes.size() / 2);
  } else if (fault == "bitflip") {
    bytes[bytes.size() / 2] ^= 0x20;
  } else if (fault == "version") {
    bytes[4] ^= 0xff;  // version field sits right after the 4-byte magic
  } else {
    throw std::runtime_error("unknown fault: " + fault);
  }
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

int checkpoint_drill(const util::Args& args) {
  const auto scenario_file = args.get_string("scenario", "");
  const auto ckpt_file =
      args.get_string("file", "/tmp/losstomo_drill.ckpt");
  auto kill_at = args.get_size("kill_at", 0);
  const auto ticks_override = args.get_size("ticks", 0);
  const auto window_override = args.get_size("window", 0);
  const auto threads = args.get_size("threads", 1);
  const auto fault = args.get_string("fault", "none");
  args.finish();
  if (scenario_file.empty()) {
    std::cerr << "mode=checkpoint-drill needs scenario=<file>\n";
    return 2;
  }
  auto spec = io::load_scenario(scenario_file);
  if (window_override > 0) spec.window = window_override;
  if (ticks_override > 0) {
    spec.ticks = ticks_override;
    std::erase_if(spec.events, [&](const scenario::Event& e) {
      return e.tick >= spec.ticks;
    });
  }
  if (kill_at == 0) kill_at = (spec.window + spec.ticks) / 2;
  if (kill_at >= spec.ticks) {
    std::cerr << "kill_at must be < ticks (" << spec.ticks << ")\n";
    return 2;
  }
  core::MonitorOptions options;
  options.lia.variance.threads = threads;

  // Uninterrupted reference run, recording every diagnosing tick.
  std::vector<std::optional<linalg::Vector>> reference;
  scenario::ScenarioRunner ref_runner(spec, options);
  ref_runner.run([&](std::size_t, std::size_t,
                     const std::optional<core::LossInference>& inf) {
    reference.push_back(inf ? std::optional<linalg::Vector>(inf->loss)
                            : std::nullopt);
  });
  const auto* ref_eqs = ref_runner.monitor().streaming_equations();
  const std::size_t ref_refactorizations =
      ref_eqs ? ref_eqs->refactorizations() : 0;

  // Interrupted run: advance to the kill tick, checkpoint, and "die".
  {
    scenario::ScenarioRunner runner(spec, options);
    while (runner.ticks_run() < kill_at) runner.step();
    runner.save_checkpoint(ckpt_file);
  }
  std::cout << "checkpointed '" << spec.name << "' at tick " << kill_at
            << " -> " << ckpt_file << '\n';

  if (fault != "none") {
    corrupt_checkpoint(ckpt_file, fault);
    try {
      auto runner = scenario::restore_runner(ckpt_file, options);
      (void)runner;
      std::cerr << "FAIL: " << fault
                << "-corrupted checkpoint was accepted\n";
      return 1;
    } catch (const io::CheckpointError& e) {
      std::cout << "corrupt checkpoint (" << fault
                << ") cleanly rejected: " << e.what() << '\n';
      return 0;
    }
  }

  // Restore into a fresh process image and run the remaining ticks.
  auto resumed = scenario::restore_runner(ckpt_file, options);
  if (resumed.ticks_run() != kill_at) {
    std::cerr << "FAIL: restored tick " << resumed.ticks_run() << " != "
              << kill_at << '\n';
    return 1;
  }
  double max_diff = 0.0;
  bool shape_ok = true;
  std::size_t tick = kill_at;
  resumed.run([&](std::size_t, std::size_t,
                  const std::optional<core::LossInference>& inf) {
    const auto& ref = reference[tick++];
    if (ref.has_value() != inf.has_value() ||
        (ref && ref->size() != inf->loss.size())) {
      shape_ok = false;
      return;
    }
    if (!ref) return;
    for (std::size_t k = 0; k < ref->size(); ++k) {
      max_diff = std::max(max_diff, std::abs((*ref)[k] - inf->loss[k]));
    }
  });
  const auto* eqs = resumed.monitor().streaming_equations();
  const std::size_t refactorizations = eqs ? eqs->refactorizations() : 0;
  std::cout << "resumed " << (spec.ticks - kill_at) << " ticks: max |diff| "
            << max_diff << " vs uninterrupted run, " << refactorizations
            << " refactorizations (reference " << ref_refactorizations
            << ")\n";
  if (!shape_ok || max_diff != 0.0) {
    std::cerr << "FAIL: resumed run diverged from the reference\n";
    return 1;
  }
  if (refactorizations != ref_refactorizations) {
    std::cerr << "FAIL: restore cost a refactorization\n";
    return 1;
  }
  std::cout << "bit-identical resume, factor cache intact\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    const auto mode = args.get_string("mode", "infer");
    if (mode == "generate") return generate(args);
    if (mode == "infer") return infer(args);
    if (mode == "monitor") return monitor(args);
    if (mode == "convert") return convert(args);
    if (mode == "scenario") return scenario_mode(args);
    if (mode == "checkpoint-drill") return checkpoint_drill(args);
    if (mode == "ingest-drill") return ingest_drill(args);
    std::cerr << "unknown mode: " << mode << "\n\n";
    print_usage(std::cerr);
    return 2;
  } catch (const std::invalid_argument& e) {
    // Unknown/misspelled key=value arguments (util::Args::finish) and
    // malformed inputs land here: usage, exit 2.
    std::cerr << "error: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
