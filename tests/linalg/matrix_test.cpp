#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace losstomo::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.5);
  m(1, 2) = -3.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -3.0);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerListThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const auto eye = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transpose) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector x{1.0, -1.0};
  const auto y = m.multiply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, MatrixVectorSizeMismatchThrows) {
  const Matrix m{{1.0, 2.0}};
  const Vector x{1.0};
  EXPECT_THROW(m.multiply(x), std::invalid_argument);
}

TEST(Matrix, TransposeVectorProduct) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Vector y{1.0, 0.0, -1.0};
  const auto x = m.multiply_transpose(y);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_DOUBLE_EQ(x[0], -4.0);
  EXPECT_DOUBLE_EQ(x[1], -4.0);
}

TEST(Matrix, MatrixMatrixProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const auto c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, GramMatchesExplicitProduct) {
  const Matrix a{{1.0, 2.0, 0.0}, {0.0, 1.0, 1.0}, {2.0, 0.0, 1.0}};
  const auto g = a.gram();
  const auto expected = a.transposed().multiply(a);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(g(i, j), expected(i, j), 1e-12) << i << "," << j;
    }
  }
}

TEST(Matrix, GramIsSymmetric) {
  const Matrix a{{1.5, -2.0}, {0.25, 3.0}, {1.0, 1.0}};
  const auto g = a.gram();
  EXPECT_DOUBLE_EQ(g(0, 1), g(1, 0));
}

TEST(Matrix, Frobenius) {
  const Matrix m{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius(), 5.0);
}

TEST(Matrix, MaxAbs) {
  const Matrix m{{-7.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.max_abs(), 7.0);
}

TEST(VectorOps, Norm2) {
  const Vector x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
}

TEST(VectorOps, Dot) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
}

TEST(VectorOps, DotSizeMismatchThrows) {
  const Vector a{1.0};
  const Vector b{1.0, 2.0};
  EXPECT_THROW(dot(a, b), std::invalid_argument);
}

TEST(VectorOps, Axpy) {
  const Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, SubtractAndMaxAbsDiff) {
  const Vector a{1.0, 5.0};
  const Vector b{2.0, 2.0};
  const auto d = subtract(a, b);
  EXPECT_DOUBLE_EQ(d[0], -1.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 3.0);
}

}  // namespace
}  // namespace losstomo::linalg
