// Sparse storage and enumeration of the *sharing* path pairs of a routing
// matrix — the pairs (i, j), i <= j, whose paths traverse at least one
// common link.
//
// The Phase-1 drop-negative policy needs exactly these pairs: every sharing
// pair contributes one covariance equation, and a pair that shares nothing
// contributes an all-zero row that carries no information.  The seed
// enumeration visited every one of the np(np+1)/2 pairs and intersected
// their link lists — O(np^2) scans regardless of how sparse the sharing
// structure is, which blocks 10k+ path overlays.  The structures here visit
// only pairs that actually share a link, discovered through the transpose
// incidence (column lists): path j is a candidate partner of path i iff j
// appears in the path list of some link of i.
//
//  * PartnerFinder — stamp-based candidate discovery, O(sum over links of i
//    of |paths(link)|) per row plus a sort; no allocation per call.  Used
//    directly by the one-shot batch accumulation (no storage).
//  * SharingPairStore — CSR-style materialization for streaming consumers
//    that re-read the pairs every tick: per-path pair ranges, partner
//    indices, and the shared-link sublists, all in flat arrays.  Memory is
//    O(sharing pairs + shared-link entries) — the sharing structure's nnz —
//    never O(np^2).  Construction is chunk-parallel and deterministic
//    (results are identical at any thread count).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "linalg/sparse.hpp"

namespace losstomo::io {
class CheckpointWriter;
class CheckpointReader;
}  // namespace losstomo::io

namespace losstomo::core {

/// Reusable discovery of the sharing partners of one path.
///
/// Not thread-safe (owns a stamp array); use one instance per worker.
/// `r` and `columns` must outlive the finder.
class PartnerFinder {
 public:
  /// `columns` must be r.column_lists() (taken as a reference so several
  /// finders can share one copy).
  PartnerFinder(const linalg::SparseBinaryMatrix& r,
                const std::vector<std::vector<std::uint32_t>>& columns);

  /// Fills `out` (cleared first) with every j in [i, np) whose path shares
  /// at least one link with path i, in ascending order.  Complexity: the
  /// total path-list length of path i's links, plus O(k log k) for the k
  /// candidates found.
  void partners_of(std::size_t i, std::vector<std::uint32_t>& out);

 private:
  const linalg::SparseBinaryMatrix* r_;
  const std::vector<std::vector<std::uint32_t>>* columns_;
  std::vector<std::uint32_t> stamp_;  // last path id that touched each slot
  std::uint32_t tag_ = 0;
};

/// Flat CSR store of all sharing pairs with their shared-link sublists.
///
/// Pairs built by build() are indexed 0..pair_count() in (i asc, j asc)
/// order — the same order a row-major scan of the upper triangle produces,
/// so consumers that previously iterated all pairs and skipped non-sharing
/// ones see an identical sequence.  Rows appended later by add_row() (path
/// churn: a path joins the overlay after the store was built) keep their
/// pairs contiguous in their own row, with the *partner* index on either
/// side of the row index; the overall pair order stays deterministic —
/// independent of thread count — which is what the streaming reductions
/// need.
///
/// Thread-safety: the structural readers (for_pairs, links, partner, row
/// ranges) are safe to call concurrently once no mutator (add_row,
/// set_row_live, first pairs_of_path call — it builds the reverse index
/// lazily) is running.  Mutation is single-writer.
class SharingPairStore {
 public:
  SharingPairStore() = default;

  /// Sentinel returned by find_pair for a pair the store does not hold.
  static constexpr std::size_t kNoPair =
      std::numeric_limits<std::size_t>::max();

  /// Optional pair filter: a store built with one keeps only the sharing
  /// pairs for which keep(i, j) returns true (the sharded accumulator's
  /// boundary store keeps exactly the cross-shard pairs this way).  The
  /// filter is remembered and applied by add_rows too; it must be a pure
  /// function of (i, j) — chunk-parallel construction calls it from worker
  /// threads.  It is NOT serialized: restore_state keeps the target
  /// instance's own filter, so an owner that constructs a filtered store
  /// and restores into it stays filtered for post-restore growth.
  using PairFilter = std::function<bool(std::size_t, std::size_t)>;

  /// Enumerates the sharing structure of `r`.  Work is proportional to the
  /// sharing pairs present (candidate discovery + one sorted intersection
  /// per sharing pair), parallel over path chunks; the result is identical
  /// at any `threads` (0 = library default).
  static SharingPairStore build(const linalg::SparseBinaryMatrix& r,
                                std::size_t threads = 0,
                                PairFilter keep = {});

  /// Incrementally appends the sharing pairs of one new path.  `r` must be
  /// the grown routing matrix whose LAST row (index path_count()) is the
  /// new path; every earlier row must match what the store was built from.
  /// The new row's pairs cover all partners j <= new index (including the
  /// diagonal), ascending.  Returns the index of the first appended pair.
  /// Cost: the total column-list length of the new path's links plus one
  /// sorted intersection per sharing partner — never a rebuild.
  std::size_t add_row(const linalg::SparseBinaryMatrix& r);

  /// Batched growth: appends every row of `r` beyond path_count(), in row
  /// order — the exact pair sequence the equivalent add_row loop would
  /// produce (rows appended earlier in the batch are sharing partners of
  /// later ones).  `r` may also carry new trailing columns (a growing link
  /// universe); the transpose incidence extends to cover them.  Returns
  /// the index of the first appended pair.  Cost: O(appended nnz +
  /// discovered partners) — one pass, no rebuild, no per-row routing
  /// matrix copies.  Throws std::invalid_argument when `r` has fewer rows
  /// than the store.
  std::size_t add_rows(const linalg::SparseBinaryMatrix& r);

  /// Row liveness (path churn): a dead row's pairs stay in the store —
  /// indices are stable — but streaming consumers skip them.  A pair is
  /// live iff both of its paths' rows are live.  Rows start live.
  [[nodiscard]] bool row_live(std::size_t i) const {
    return row_live_[i] != 0;
  }
  void set_row_live(std::size_t i, bool live);
  [[nodiscard]] bool pair_live(std::size_t p, std::size_t i) const {
    return row_live_[i] != 0 && row_live_[partner_[p]] != 0;
  }

  /// Every pair index involving path i, ascending: its own row's range
  /// plus the pairs of other rows whose partner is i.  Builds a reverse
  /// (partner -> pairs) index on first call — that call is a mutator.
  void pairs_of_path(std::size_t i, std::vector<std::size_t>& out) const;

  /// Index of the stored pair (i, j), looked up in either orientation
  /// (O(log deg) binary search over both rows), or kNoPair when the paths
  /// share no link.
  [[nodiscard]] std::size_t find_pair(std::size_t i, std::size_t j) const;

  [[nodiscard]] std::size_t path_count() const {
    return row_offsets_.empty() ? 0 : row_offsets_.size() - 1;
  }
  /// Number of sharing pairs (including the diagonal (i, i) pairs).
  [[nodiscard]] std::size_t pair_count() const { return partner_.size(); }
  /// Total shared-link entries over all pairs (the store's nnz).
  [[nodiscard]] std::size_t shared_link_entries() const {
    return links_.size();
  }
  /// Heap bytes held by the store (capacity-based; the figure recorded by
  /// bench_monitor_streaming for the large-overlay scenario).
  [[nodiscard]] std::size_t bytes() const;

  /// Pair index range [first, second) whose first path is i.
  [[nodiscard]] std::size_t row_begin(std::size_t i) const {
    return row_offsets_[i];
  }
  [[nodiscard]] std::size_t row_end(std::size_t i) const {
    return row_offsets_[i + 1];
  }
  /// Second path of pair p (the first path is the row p falls in).
  [[nodiscard]] std::uint32_t partner(std::size_t p) const {
    return partner_[p];
  }
  /// Sorted shared links of pair p.
  [[nodiscard]] std::span<const std::uint32_t> links(std::size_t p) const {
    return {links_.data() + link_offsets_[p],
            link_offsets_[p + 1] - link_offsets_[p]};
  }

  /// Calls fn(p, i, j, shared_links) for every pair index p in
  /// [begin, end) in ascending order, resolving the row path i via the
  /// row offsets (O(log np) once, then amortized O(1) per pair).  For
  /// build()-time pairs j >= i; for add_row() pairs j may be on either
  /// side (consumers treat (i, j) symmetrically).
  template <typename Fn>
  void for_pairs(std::size_t begin, std::size_t end, Fn&& fn) const {
    if (begin >= end) return;
    // Row containing pair `begin`: the last offset <= begin.
    std::size_t lo = 0, hi = path_count();
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (row_offsets_[mid] <= begin) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    std::size_t i = lo;
    for (std::size_t p = begin; p < end; ++p) {
      while (row_offsets_[i + 1] <= p) ++i;
      fn(p, static_cast<std::uint32_t>(i), partner_[p], links(p));
    }
  }

  // -- Checkpointing (io/checkpoint.hpp) ----------------------------------
  //
  // Serializes the CSR arrays, the liveness flags, and the transpose
  // incidence; the reverse (partner -> pairs) index is NOT serialized —
  // it is a deterministic function of the rest and rebuilds lazily on the
  // first pairs_of_path call.  restore_state replaces the whole store (it
  // may target a default-constructed instance); on failure *this is
  // unchanged.
  void save_state(io::CheckpointWriter& writer) const;
  void restore_state(io::CheckpointReader& reader);

 private:
  void ensure_reverse_index() const;

  std::vector<std::size_t> row_offsets_;   // path_count + 1
  std::vector<std::uint32_t> partner_;     // partner path per pair
  std::vector<std::size_t> link_offsets_;  // pair_count + 1
  std::vector<std::uint32_t> links_;       // concatenated shared-link lists
  std::vector<std::uint8_t> row_live_;     // per path
  // Transpose incidence of the routing matrix the store was built from,
  // maintained by add_row; powers incremental partner discovery.
  std::vector<std::vector<std::uint32_t>> columns_;
  // Lazily built: pair ids where the path appears as the *partner* (its
  // own-row pairs are already contiguous via row_offsets_).
  mutable std::vector<std::vector<std::size_t>> partner_pairs_;
  mutable bool reverse_built_ = false;
  PairFilter keep_;  // empty = keep every sharing pair
};

}  // namespace losstomo::core
