#include "linalg/cgls.hpp"

#include <gtest/gtest.h>

#include "linalg/qr.hpp"
#include "linalg/sparse.hpp"
#include "stats/rng.hpp"

namespace losstomo::linalg {
namespace {

TEST(Cgls, SolvesDiagonalSystem) {
  const Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  const Vector b{2.0, 8.0};
  const auto result = cgls(
      [&](std::span<const double> x) { return a.multiply(x); },
      [&](std::span<const double> y) { return a.multiply_transpose(y); }, b, 2);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-8);
  EXPECT_NEAR(result.x[1], 2.0, 1e-8);
}

TEST(Cgls, MatchesQrOnOverdeterminedSystem) {
  stats::Rng rng(31);
  Matrix a(20, 5);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 5; ++j) a(i, j) = rng.gaussian();
  }
  Vector b(20);
  for (auto& v : b) v = rng.gaussian();
  const auto direct = HouseholderQr(a).solve(b);
  const auto result = cgls(
      [&](std::span<const double> x) { return a.multiply(x); },
      [&](std::span<const double> y) { return a.multiply_transpose(y); }, b, 5);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(max_abs_diff(result.x, direct), 1e-6);
}

TEST(Cgls, WorksWithSparseOperators) {
  const SparseBinaryMatrix r(3, {{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}});
  const Vector x_true{0.5, 1.0, 2.0};
  const auto b = r.multiply(x_true);
  const auto result = cgls(
      [&](std::span<const double> x) { return r.multiply(x); },
      [&](std::span<const double> y) { return r.multiply_transpose(y); }, b, 3);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(max_abs_diff(result.x, x_true), 1e-7);
}

TEST(Cgls, ZeroRhsGivesZero) {
  const Matrix a = Matrix::identity(4);
  const Vector b(4, 0.0);
  const auto result = cgls(
      [&](std::span<const double> x) { return a.multiply(x); },
      [&](std::span<const double> y) { return a.multiply_transpose(y); }, b, 4);
  EXPECT_TRUE(result.converged);
  for (const auto v : result.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Cgls, BreakdownReportsConsistentState) {
  // Degenerate operator pair (possible in operator form): apply annihilates
  // every vector while apply_t does not, so the first iteration hits the
  // qq == 0 breakdown.  The result must be internally consistent: not
  // converged, residual_norm equal to the current ||A^T r||, and no
  // iterations burned spinning on the dead direction.
  const Vector b{3.0, 4.0};
  const auto result = cgls(
      [](std::span<const double> x) { return Vector(x.size(), 0.0); },
      [](std::span<const double> y) { return Vector(y.begin(), y.end()); }, b,
      2);
  EXPECT_FALSE(result.converged);
  EXPECT_NEAR(result.residual_norm, 5.0, 1e-12);  // ||A^T r|| = ||b||
  EXPECT_EQ(result.iterations, 0u);
  for (const auto v : result.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Cgls, RespectsIterationCap) {
  stats::Rng rng(32);
  Matrix a(30, 10);
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = 0; j < 10; ++j) a(i, j) = rng.gaussian();
  }
  Vector b(30);
  for (auto& v : b) v = rng.gaussian();
  CglsOptions opts;
  opts.max_iterations = 1;
  const auto result = cgls(
      [&](std::span<const double> x) { return a.multiply(x); },
      [&](std::span<const double> y) { return a.multiply_transpose(y); }, b, 10,
      opts);
  EXPECT_LE(result.iterations, 1u);
}

}  // namespace
}  // namespace losstomo::linalg
