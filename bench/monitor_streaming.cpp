// Steady-state monitoring tick latency: the streaming engine (incremental
// sliding-window covariance + cached-factor normal-equation refresh)
// against the batch relearn path, on the same tree instance the kernel
// microbench records (np=646 at the defaults), plus a large-overlay
// scenario sizing the sparse sharing-pair store.
//
//   build/bench_monitor_streaming [nodes=1300] [branching=8] [m=200]
//                                 [ticks=60] [relearn_every=1] [p=0.05]
//                                 [overlay_hosts=72] [overlay_m=50]
//                                 [overlay_ticks=8] [ingest_snapshots=192]
//                                 [threads=0|1,2,8] [--json <path>]
//
// Both engines consume an identical snapshot sequence; every measured tick
// cross-checks the two inferences (max |loss diff| is part of the report).
// The headline figure is the keep-all-policy speedup (G fixed, factorized
// once), where the engines agree exactly on the recorded instance.  Under
// drop-negative the cached factor follows each pair sign flip by a rank-1
// up/downdate (linalg::UpdatableCholesky) and a full refactorization runs
// only on the fallback conditions — the report carries the
// refactorization / rank-1 / fallback counters.  Residual caveat: a pair
// whose sample covariance sits within the accumulator's drift of zero can
// flip its drop decision against the batch engine (the drop policy is
// discontinuous at cov = 0 — same caveat as blocked-vs-reference in
// core/variance_estimator.cpp), which can show up as a nonzero
// drop_max_loss_diff on some instances.
//
// The overlay section (overlay_hosts >= 2; 0 skips) builds a
// PlanetLab-style overlay of overlay_hosts end-hosts — 72 hosts give
// ~5100 paths — and records what streaming drop-negative costs at that
// scale: sharing-pair store construction seconds and bytes (the
// structure that replaced the O(np^2) pair scan) and the steady-state
// streaming tick.  The batch engine is deliberately not run there — its
// O(m np^2) relearn is exactly what the streaming engine exists to avoid.
//
// The ingest section records what the LTBT binary trace format buys over
// ASCII parsing on the same overlay: one phi campaign of ingest_snapshots
// rows is written both as a text snapshot file and as a binary trace, then
// each file is ingested to raw phi rows in memory (open + parse/map +
// touch every value).  That isolates the parse/I-O stage the binary
// format replaces — the log transform and accumulator folds downstream
// are identical in both pipelines.  The report carries snapshots/s for
// both paths, the speedup, and the share of a steady monitoring tick that
// ingestion would occupy on each.
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "common.hpp"
#include "core/monitor.hpp"
#include "core/sharded_moments.hpp"
#include "core/sharing_pairs.hpp"
#include "io/binary_trace.hpp"
#include "io/checkpoint.hpp"
#include "io/pipeline.hpp"
#include "io/trace_io.hpp"
#include "obs/registry.hpp"

namespace {

using namespace losstomo;

struct EngineComparison {
  double batch_mean = 0.0;
  double streaming_mean = 0.0;
  double max_loss_diff = 0.0;
  std::string batch_method;
  std::string streaming_method;
  // Factor-cache diagnostics of the streaming engine (drop-negative).
  std::size_t refactorizations = 0;
  std::size_t rank1_updates = 0;
  std::size_t downdate_fallbacks = 0;
};

EngineComparison compare_engines(const linalg::SparseBinaryMatrix& r,
                                 const std::vector<linalg::Vector>& snapshots,
                                 std::size_t m, std::size_t relearn_every,
                                 core::NegativeCovariancePolicy policy) {
  core::MonitorOptions batch_options;
  batch_options.window = m;
  batch_options.relearn_every = relearn_every;
  batch_options.engine = core::MonitorEngine::kBatch;
  batch_options.lia.variance.negatives = policy;
  core::MonitorOptions streaming_options = batch_options;
  streaming_options.engine = core::MonitorEngine::kStreaming;

  core::LiaMonitor batch(r, batch_options);
  core::LiaMonitor streaming(r, streaming_options);

  EngineComparison out;
  stats::RunningStat batch_tick, streaming_tick;
  for (std::size_t t = 0; t < snapshots.size(); ++t) {
    const auto& y = snapshots[t];
    // Warm-up: fill the window and run the first (factorizing) relearn
    // untimed; every later tick is steady state.
    const bool measured = t > m + 1;
    util::Timer batch_timer;
    const auto from_batch = batch.observe(y);
    const double batch_seconds = batch_timer.seconds();
    util::Timer streaming_timer;
    const auto from_streaming = streaming.observe(y);
    const double streaming_seconds = streaming_timer.seconds();
    if (!measured || !from_batch || !from_streaming) continue;
    batch_tick.add(batch_seconds);
    streaming_tick.add(streaming_seconds);
    out.max_loss_diff =
        std::max(out.max_loss_diff,
                 linalg::max_abs_diff(from_batch->loss, from_streaming->loss));
  }
  out.batch_mean = batch_tick.mean();
  out.streaming_mean = streaming_tick.mean();
  out.batch_method = batch.variances().method;
  out.streaming_method = streaming.variances().method;
  if (const auto* eqs = streaming.streaming_equations()) {
    out.refactorizations = eqs->refactorizations();
    out.rank1_updates = eqs->rank1_updates();
    out.downdate_fallbacks = eqs->downdate_fallbacks();
  }
  return out;
}

// Consumes every value pushed down a pipeline (folding into a checksum so
// the ingest passes cannot be dead-code-eliminated and both paths touch
// every double).
class ChecksumSink final : public io::Element {
 public:
  void do_push(const io::SnapshotBatch& batch) override {
    rows_ += batch.rows;
    for (const double v : batch.values) sum_ += v;
  }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t rows_ = 0;
  double sum_ = 0.0;
};

// Streaming drop-negative at overlay scale: sharing-pair store size and
// build time, then the steady-state monitor tick.  No batch reference —
// the O(m np^2) relearn at 5k+ paths is the cost this path exists to
// avoid.
// One point of the shard sweep: the overlay feed replayed through the
// sharded coordinator at K interior shards (0 = the flat pair
// accumulator, the sweep's baseline).  The merge is a pure gather, so
// max_loss_diff against the flat run must be exactly 0.
struct ShardPoint {
  std::size_t shards = 0;
  double tick_seconds = 0.0;
  std::size_t cross_pairs = 0;
  std::size_t merges = 0;
  double max_loss_diff = 0.0;
};

struct OverlayFigures {
  std::size_t np = 0, nc = 0;
  std::size_t pairs = 0, shared_entries = 0, store_bytes = 0;
  double store_build_seconds = 0.0;
  double streaming_tick_seconds = 0.0;
  // The same steady tick with an obs::Registry (+ flight recorder)
  // attached — the telemetry overhead budget is <= 2% of the plain tick.
  double telemetry_tick_seconds = 0.0;
  std::size_t refactorizations = 0;
  std::size_t rank1_updates = 0;
  std::vector<ShardPoint> shard_sweep;
  // Failover cost at this scale: one full monitor checkpoint (store +
  // accumulator + cached factor) serialized and restored.
  std::size_t checkpoint_bytes = 0;
  double checkpoint_save_seconds = 0.0;
  double checkpoint_restore_seconds = 0.0;
  // Ingestion: the same phi campaign through ASCII parsing vs the binary
  // trace pipeline, measured to raw phi rows in memory (parse/I-O only).
  // `verified` = first open (full payload-CRC pass); `binary` = steady
  // re-open of an already-verified trace (PayloadCheck::kTrust).
  std::size_t ingest_snapshots = 0;
  std::size_t ingest_text_bytes = 0;
  std::size_t ingest_binary_bytes = 0;
  double ingest_ascii_seconds = 0.0;
  double ingest_verified_seconds = 0.0;
  double ingest_binary_seconds = 0.0;
  bool ingest_mmap = false;
  bool ingest_sums_match = false;
};

OverlayFigures run_overlay(std::size_t hosts, std::size_t m, std::size_t ticks,
                           std::size_t ingest_snapshots, std::uint64_t seed) {
  stats::Rng rng(seed);
  auto topo = topology::make_planetlab_like(
      {.hosts = hosts, .as_count = 10, .routers_per_as = 8}, rng);
  const auto routed = topology::route_paths(topo.graph, topo.hosts, topo.hosts);
  const net::ReducedRoutingMatrix rrm(topo.graph, routed.paths);
  const auto& r = rrm.matrix();

  OverlayFigures out;
  out.np = r.rows();
  out.nc = r.cols();
  util::Timer build_timer;
  {
    const auto store = core::SharingPairStore::build(r);
    out.store_build_seconds = build_timer.seconds();
    out.pairs = store.pair_count();
    out.shared_entries = store.shared_link_entries();
    out.store_bytes = store.bytes();
  }

  core::MonitorOptions options;
  options.window = m;
  options.engine = core::MonitorEngine::kStreaming;
  options.lia.variance.negatives = core::NegativeCovariancePolicy::kDrop;
  core::LiaMonitor monitor(r, options);
  sim::ScenarioConfig config;
  config.p = 0.04;
  sim::SnapshotSimulator simulator(topo.graph, rrm, config, seed * 7);
  stats::RunningStat tick_stat;
  for (std::size_t t = 0; t < m + 2 + ticks; ++t) {
    const auto y = simulator.next().path_log_trans;
    util::Timer tick_timer;
    monitor.observe(y);
    if (t > m + 1) tick_stat.add(tick_timer.seconds());
  }
  out.streaming_tick_seconds = tick_stat.mean();
  const auto* eqs = monitor.streaming_equations();
  out.refactorizations = eqs->refactorizations();
  out.rank1_updates = eqs->rank1_updates();

  // Telemetry overhead probe: the identical feed (fresh simulator, same
  // seed) and monitor configuration, with a registry and flight recorder
  // attached — per-tick publishing, phase spans, and recorder writes all
  // on.  Compiled with LOSSTOMO_NO_TELEMETRY this measures the stubs.
  {
    obs::Registry registry;
    registry.enable_flight_recorder(256);
    auto instrumented_options = options;
    instrumented_options.telemetry = &registry;
    core::LiaMonitor instrumented(r, instrumented_options);
    sim::SnapshotSimulator feed(topo.graph, rrm, config, seed * 7);
    stats::RunningStat stat;
    for (std::size_t t = 0; t < m + 2 + ticks; ++t) {
      const auto y = feed.next().path_log_trans;
      util::Timer tick_timer;
      instrumented.observe(y);
      if (t > m + 1) stat.add(tick_timer.seconds());
    }
    out.telemetry_tick_seconds = stat.mean();
  }

  util::Timer save_timer;
  io::CheckpointWriter writer;
  monitor.save_state(writer);
  auto image = writer.finish();
  out.checkpoint_save_seconds = save_timer.seconds();
  out.checkpoint_bytes = image.size();

  core::LiaMonitor restored(r, options);
  util::Timer restore_timer;
  auto reader = io::CheckpointReader::from_bytes(std::move(image));
  restored.restore_state(reader);
  out.checkpoint_restore_seconds = restore_timer.seconds();

  // Shard sweep: the identical feed (fresh simulator, same seed) through
  // the pair accumulator flat (K=0, the baseline) and partitioned across
  // K interior shards.  Records what the partition/gather plumbing costs
  // per tick and the cross-shard pair population the boundary shard
  // absorbs; the inferences must stay bit-identical to the flat run.
  {
    core::MonitorOptions pair_options = options;
    pair_options.accumulator = core::CovarianceAccumulator::kSharingPairs;
    std::vector<linalg::Vector> reference;
    for (std::size_t shards : {0, 2, 4, 8}) {
      auto run_options = pair_options;
      run_options.shards = shards;
      core::LiaMonitor sharded(r, run_options);
      sim::SnapshotSimulator feed(topo.graph, rrm, config, seed * 7);
      stats::RunningStat stat;
      ShardPoint point;
      point.shards = shards;
      std::size_t diagnosed = 0;
      for (std::size_t t = 0; t < m + 2 + ticks; ++t) {
        const auto y = feed.next().path_log_trans;
        util::Timer timer;
        const auto inference = sharded.observe(y);
        if (t > m + 1) stat.add(timer.seconds());
        if (!inference) continue;
        if (shards == 0) {
          reference.push_back(inference->loss);
        } else {
          point.max_loss_diff = std::max(
              point.max_loss_diff,
              linalg::max_abs_diff(reference[diagnosed], inference->loss));
        }
        ++diagnosed;
      }
      point.tick_seconds = stat.mean();
      if (const auto* acc = sharded.sharded_accumulator()) {
        point.cross_pairs = acc->cross_shard_pairs();
        point.merges = acc->merges();
      }
      out.shard_sweep.push_back(point);
    }
  }

  // Ingestion shoot-out on the same overlay: one phi campaign, written
  // once as text and once as an LTBT binary trace, then each file is
  // ingested to raw phi rows in memory.  This isolates the parse/I-O
  // stage the binary format replaces — the log transform and the
  // accumulator folds downstream are identical for both paths, so they
  // are excluded from the clock.  Text stores full-precision doubles, so
  // both passes deliver bit-identical values in the same order and the
  // checksums must match exactly.
  if (ingest_snapshots > 0) {
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path();
    const auto tag = "losstomo_ingest_" + std::to_string(seed);
    const auto text_file = (dir / (tag + ".snapshots")).string();
    const auto bin_file = (dir / (tag + ".bin")).string();

    std::vector<std::vector<double>> campaign;
    campaign.reserve(ingest_snapshots);
    for (std::size_t t = 0; t < ingest_snapshots; ++t) {
      const auto& phi = simulator.next().path_trans;
      campaign.emplace_back(phi.begin(), phi.end());
    }
    io::save_snapshots(text_file, campaign);
    {
      io::BinaryTraceWriter writer(bin_file, out.np,
                                   /*log_transformed=*/false);
      for (const auto& row : campaign) writer.append(row);
      writer.finish();
    }
    out.ingest_snapshots = ingest_snapshots;
    out.ingest_text_bytes = fs::file_size(text_file);
    out.ingest_binary_bytes = fs::file_size(bin_file);

    double ascii_sum = 0.0;
    {
      util::Timer ascii_timer;
      std::ifstream is(text_file);
      io::SnapshotStream stream(is, /*log_transform=*/false);
      std::vector<double> y;
      while (stream.next(y)) {
        for (const double v : y) ascii_sum += v;
      }
      out.ingest_ascii_seconds = ascii_timer.seconds();
    }
    double binary_sum = 0.0;
    {
      // First contact: full validation including the payload-CRC pass.
      util::Timer verified_timer;
      auto trace = io::BinaryTraceReader::open(bin_file);
      io::BinaryTraceSource source(trace);
      ChecksumSink sink;
      source.drain(sink);
      out.ingest_verified_seconds = verified_timer.seconds();
      out.ingest_mmap = trace.mapped();
      binary_sum = sink.sum();
    }
    double trusted_sum = 0.0;
    {
      // Steady path: re-open of the trace this process just verified
      // (header checks still run; the payload pass is skipped).
      util::Timer binary_timer;
      auto trace = io::BinaryTraceReader::open(
          bin_file, io::BinaryTraceReader::PayloadCheck::kTrust);
      io::BinaryTraceSource source(trace);
      ChecksumSink sink;
      source.drain(sink);
      out.ingest_binary_seconds = binary_timer.seconds();
      trusted_sum = sink.sum();
    }
    out.ingest_sums_match = ascii_sum == binary_sum &&
                            trusted_sum == binary_sum;

    fs::remove(text_file);
    fs::remove(bin_file);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto nodes = args.get_size("nodes", 1300);
  const auto branching = args.get_size("branching", 8);
  const auto m = args.get_size("m", 200);
  const auto ticks = args.get_size("ticks", 60);
  const auto relearn_every = args.get_size("relearn_every", 1);
  const double p = args.get_double("p", 0.05);
  const auto seed = args.get_size("seed", 41);
  const auto overlay_hosts = args.get_size("overlay_hosts", 72);
  const auto overlay_m = args.get_size("overlay_m", 50);
  const auto overlay_ticks = args.get_size("overlay_ticks", 8);
  const auto ingest_snapshots = args.get_size("ingest_snapshots", 192);
  const auto json_path = args.get_string("json", "");
  // `threads=1,2,8` re-records the whole bench per worker count in one run
  // (keys suffixed _t<N>); the default keeps the historical key names.
  const bench::ThreadSweep sweep(args);
  args.finish();

  const auto inst = bench::make_tree_instance(nodes, branching, seed);
  const auto& rrm = inst.matrix();
  const auto& r = rrm.matrix();
  std::cout << "monitor_streaming: " << inst.name << " np=" << r.rows()
            << " links=" << r.cols() << " m=" << m << " ticks=" << ticks
            << " relearn_every=" << relearn_every
            << " threads=" << util::default_threads() << "\n\n";

  // One shared snapshot sequence, so both engines and both policies see
  // identical data.
  sim::ScenarioConfig config;
  config.p = p;
  sim::SnapshotSimulator simulator(inst.graph, rrm, config, seed * 7);
  std::vector<linalg::Vector> snapshots;
  snapshots.reserve(m + 2 + ticks);
  for (std::size_t t = 0; t < m + 2 + ticks; ++t) {
    snapshots.push_back(simulator.next().path_log_trans);
  }

  bench::JsonReport report;
  report.set("bench", std::string("monitor_streaming"));
  report.set("np", r.rows());
  report.set("nc", r.cols());
  report.set("m", m);
  report.set("ticks", ticks);
  report.set("relearn_every", relearn_every);

  sweep.run([&](std::size_t threads, const std::string& suffix) {
    const auto keep =
        compare_engines(r, snapshots, m, relearn_every,
                        core::NegativeCovariancePolicy::kKeep);
    const auto drop =
        compare_engines(r, snapshots, m, relearn_every,
                        core::NegativeCovariancePolicy::kDrop);

    util::Table table({"policy", "batch tick s", "streaming tick s", "speedup",
                       "max |loss diff|"});
    const auto add = [&](const std::string& name, const EngineComparison& c) {
      table.add_row({name, util::Table::num(c.batch_mean, 5),
                     util::Table::num(c.streaming_mean, 5),
                     util::Table::num(c.batch_mean / c.streaming_mean, 2),
                     util::Table::num(c.max_loss_diff, 14)});
    };
    add("keep-all", keep);
    add("drop-negative", drop);
    std::cout << "threads="
              << (threads == 0 ? util::default_threads() : threads) << "\n";
    table.print(std::cout);
    std::cout << "\nkeep-all: G depends only on R, so the streaming engine "
                 "factorizes the normal equations once and a steady tick is "
                 "two rank-1 covariance updates + an O(nc^2) solve.\n";
    std::cout << "drop-negative factor cache: " << drop.refactorizations
              << " refactorizations, " << drop.rank1_updates
              << " rank-1 up/downdates, " << drop.downdate_fallbacks
              << " downdate fallbacks over " << ticks << " ticks.\n";

    OverlayFigures overlay;
    if (overlay_hosts >= 2) {
      overlay = run_overlay(overlay_hosts, overlay_m, overlay_ticks,
                            ingest_snapshots, seed);
      std::cout << "\nlarge overlay (" << overlay_hosts
                << " hosts): np=" << overlay.np << " nc=" << overlay.nc
                << "\n  sharing-pair store: " << overlay.pairs << " pairs, "
                << overlay.shared_entries << " shared-link entries, "
                << overlay.store_bytes << " bytes, built in "
                << util::Table::num(overlay.store_build_seconds, 4) << " s"
                << "\n  streaming drop-negative tick: "
                << util::Table::num(overlay.streaming_tick_seconds, 5) << " s ("
                << overlay.refactorizations << " refactorizations, "
                << overlay.rank1_updates << " rank-1 updates)\n";
      const double overhead_frac =
          overlay.telemetry_tick_seconds / overlay.streaming_tick_seconds -
          1.0;
      std::cout << "  telemetry overhead: instrumented tick "
                << util::Table::num(overlay.telemetry_tick_seconds, 5)
                << " s (" << util::Table::num(100.0 * overhead_frac, 2)
                << "% vs plain; budget 2%)\n";
      std::cout << "  checkpoint: " << overlay.checkpoint_bytes
                << " bytes, saved in "
                << util::Table::num(overlay.checkpoint_save_seconds, 4)
                << " s, restored (factor included, no refactorization) in "
                << util::Table::num(overlay.checkpoint_restore_seconds, 4)
                << " s\n";
      std::cout << "  shard sweep (pairs accumulator, tick s / cross pairs):";
      for (const auto& point : overlay.shard_sweep) {
        std::cout << "  K=" << point.shards << " "
                  << util::Table::num(point.tick_seconds, 5);
        if (point.shards > 0) {
          std::cout << "/" << point.cross_pairs;
          if (point.max_loss_diff != 0.0) std::cout << " [DIVERGED]";
        }
      }
      std::cout << "\n";
      if (overlay.ingest_snapshots > 0) {
        const double n = static_cast<double>(overlay.ingest_snapshots);
        const double ascii_per_s = n / overlay.ingest_ascii_seconds;
        const double verified_per_s = n / overlay.ingest_verified_seconds;
        const double binary_per_s = n / overlay.ingest_binary_seconds;
        const double ascii_snap = overlay.ingest_ascii_seconds / n;
        const double binary_snap = overlay.ingest_binary_seconds / n;
        const double tick = overlay.streaming_tick_seconds;
        std::cout << "  ingest (" << overlay.ingest_snapshots
                  << " snapshots): ascii "
                  << util::Table::num(ascii_per_s, 1) << " snapshots/s ("
                  << overlay.ingest_text_bytes << " bytes), binary "
                  << util::Table::num(binary_per_s, 1) << " snapshots/s ("
                  << overlay.ingest_binary_bytes << " bytes, "
                  << (overlay.ingest_mmap ? "mmap" : "buffered")
                  << ", first open w/ payload CRC "
                  << util::Table::num(verified_per_s, 1)
                  << ") — " << util::Table::num(binary_per_s / ascii_per_s, 1)
                  << "x; share of a steady tick: ascii "
                  << util::Table::num(
                         100.0 * ascii_snap / (ascii_snap + tick), 1)
                  << "%, binary "
                  << util::Table::num(
                         100.0 * binary_snap / (binary_snap + tick), 1)
                  << "%"
                  << (overlay.ingest_sums_match ? "" : " [CHECKSUM MISMATCH]")
                  << "\n";
      }
    }

    report.set("threads" + suffix,
               threads == 0 ? util::default_threads() : threads);
    // Headline = keep-all policy (the scalable monitoring configuration).
    report.set("batch_tick_seconds" + suffix, keep.batch_mean);
    report.set("streaming_tick_seconds" + suffix, keep.streaming_mean);
    report.set("speedup" + suffix, keep.batch_mean / keep.streaming_mean);
    report.set("max_loss_diff" + suffix, keep.max_loss_diff);
    report.set("batch_method" + suffix, keep.batch_method);
    report.set("streaming_method" + suffix, keep.streaming_method);
    report.set("drop_batch_tick_seconds" + suffix, drop.batch_mean);
    report.set("drop_streaming_tick_seconds" + suffix, drop.streaming_mean);
    report.set("drop_speedup" + suffix, drop.batch_mean / drop.streaming_mean);
    report.set("drop_max_loss_diff" + suffix, drop.max_loss_diff);
    report.set("drop_refactorizations" + suffix, drop.refactorizations);
    report.set("drop_rank1_updates" + suffix, drop.rank1_updates);
    report.set("drop_downdate_fallbacks" + suffix, drop.downdate_fallbacks);
    if (overlay_hosts >= 2) {
      report.set("overlay_hosts" + suffix, overlay_hosts);
      report.set("overlay_np" + suffix, overlay.np);
      report.set("overlay_nc" + suffix, overlay.nc);
      report.set("overlay_m" + suffix, overlay_m);
      report.set("overlay_pairs" + suffix, overlay.pairs);
      report.set("overlay_shared_link_entries" + suffix,
                 overlay.shared_entries);
      report.set("overlay_store_bytes" + suffix, overlay.store_bytes);
      report.set("overlay_store_build_seconds" + suffix,
                 overlay.store_build_seconds);
      report.set("overlay_streaming_tick_seconds" + suffix,
                 overlay.streaming_tick_seconds);
      report.set("overlay_refactorizations" + suffix,
                 overlay.refactorizations);
      report.set("telemetry_overhead_tick_off_seconds" + suffix,
                 overlay.streaming_tick_seconds);
      report.set("telemetry_overhead_tick_on_seconds" + suffix,
                 overlay.telemetry_tick_seconds);
      report.set("telemetry_overhead_frac" + suffix,
                 overlay.telemetry_tick_seconds /
                         overlay.streaming_tick_seconds -
                     1.0);
      report.set("checkpoint_bytes" + suffix, overlay.checkpoint_bytes);
      report.set("checkpoint_save_s" + suffix,
                 overlay.checkpoint_save_seconds);
      report.set("checkpoint_restore_s" + suffix,
                 overlay.checkpoint_restore_seconds);
      double shard_max_diff = 0.0;
      for (const auto& point : overlay.shard_sweep) {
        if (point.shards == 0) {
          report.set("overlay_pairs_tick_seconds" + suffix,
                     point.tick_seconds);
          continue;
        }
        const auto key =
            "overlay_shard" + std::to_string(point.shards) + suffix;
        report.set(key + "_tick_seconds", point.tick_seconds);
        report.set(key + "_cross_pairs", point.cross_pairs);
        report.set(key + "_merges", point.merges);
        shard_max_diff = std::max(shard_max_diff, point.max_loss_diff);
      }
      if (!overlay.shard_sweep.empty()) {
        report.set("overlay_shard_max_loss_diff" + suffix, shard_max_diff);
      }
      if (overlay.ingest_snapshots > 0) {
        const double n = static_cast<double>(overlay.ingest_snapshots);
        const double ascii_snap = overlay.ingest_ascii_seconds / n;
        const double binary_snap = overlay.ingest_binary_seconds / n;
        const double tick = overlay.streaming_tick_seconds;
        report.set("ingest_snapshots" + suffix, overlay.ingest_snapshots);
        report.set("ingest_ascii_snapshots_per_s" + suffix,
                   n / overlay.ingest_ascii_seconds);
        // Headline: binary-trace ingestion throughput (validated trace;
        // the verified key carries the first-open cost incl. payload CRC).
        report.set("ingest_snapshots_per_s" + suffix,
                   n / overlay.ingest_binary_seconds);
        report.set("ingest_verified_snapshots_per_s" + suffix,
                   n / overlay.ingest_verified_seconds);
        report.set("ingest_speedup" + suffix,
                   overlay.ingest_ascii_seconds /
                       overlay.ingest_binary_seconds);
        report.set("ingest_ascii_share_of_tick" + suffix,
                   ascii_snap / (ascii_snap + tick));
        report.set("ingest_share_of_tick" + suffix,
                   binary_snap / (binary_snap + tick));
        report.set("ingest_text_bytes" + suffix, overlay.ingest_text_bytes);
        report.set("ingest_binary_bytes" + suffix,
                   overlay.ingest_binary_bytes);
        report.set("ingest_mmap" + suffix,
                   static_cast<std::size_t>(overlay.ingest_mmap ? 1 : 0));
      }
    }
  });
  report.write(json_path);
  return 0;
}
