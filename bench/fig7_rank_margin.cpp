// Figure 7: ratio between the number of congested links (p * nc) and the
// number of columns remaining in R* after Phase-2 elimination, for every
// evaluation topology.  The paper's claim: the ratio is always below 1 —
// the full-rank reduction never has to evict a congested link.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace losstomo;
  const util::Args args(argc, argv);
  const bool full = util::Args::full_scale();
  const double scale = args.get_double("scale", full ? 1.0 : 0.35);
  const auto m = args.get_size("m", 50);
  const double p = args.get_double("p", 0.1);
  const auto runs = args.get_size("runs", full ? 10 : 3);
  const auto seed = args.get_size("seed", 19);
  const auto tree_nodes = args.get_size("tree_nodes", full ? 1000 : 400);
  args.finish();

  std::cout << "Figure 7: #congested links / #columns in R* (scale=" << scale
            << ", m=" << m << ", p=" << p << ")\n\n";

  sim::ScenarioConfig config;
  config.p = p;

  util::Table table({"Topology", "congested", "columns in R*", "ratio",
                     "evicted congested"});
  std::vector<bench::Instance> instances;
  instances.push_back(bench::make_tree_instance(tree_nodes, 10, seed));
  for (auto& inst : bench::table2_instances(scale, seed)) {
    instances.push_back(std::move(inst));
  }
  for (const auto& inst : instances) {
    stats::RunningStat congested, kept, ratio, evicted_frac;
    for (std::size_t run = 0; run < runs; ++run) {
      const auto outcome =
          bench::run_pipeline(inst, config, m, seed * 100 + run);
      congested.add(static_cast<double>(outcome.congested_links));
      kept.add(static_cast<double>(outcome.kept_columns));
      ratio.add(static_cast<double>(outcome.congested_links) /
                static_cast<double>(outcome.kept_columns));
      evicted_frac.add(
          outcome.congested_links == 0
              ? 0.0
              : static_cast<double>(outcome.congested_evicted) /
                    static_cast<double>(outcome.congested_links));
    }
    table.add_row({inst.name, util::Table::num(congested.mean(), 1),
                   util::Table::num(kept.mean(), 1),
                   util::Table::num(ratio.mean(), 3),
                   util::Table::pct(evicted_frac.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): every ratio < 1; evicting a "
               "congested column is rare ('some of the congested links can "
               "form a linearly dependent set. We show ... that this case "
               "rarely occurs', §5.2).\n";
  return 0;
}
