#include "sim/probe_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "test_util.hpp"
#include "topology/generators.hpp"

namespace losstomo::sim {
namespace {

using losstomo::testing::make_fig1_network;

struct Fixture {
  net::Graph graph;
  std::vector<net::Path> paths;
  std::unique_ptr<net::ReducedRoutingMatrix> rrm;

  Fixture() {
    auto net = make_fig1_network();
    graph = std::move(net.graph);
    paths = std::move(net.paths);
    rrm = std::make_unique<net::ReducedRoutingMatrix>(graph, paths);
  }
};

TEST(SnapshotSimulator, ShapesAreConsistent) {
  Fixture f;
  SnapshotSimulator sim(f.graph, *f.rrm, {}, 1);
  const auto snap = sim.next();
  EXPECT_EQ(snap.path_log_trans.size(), f.rrm->path_count());
  EXPECT_EQ(snap.link_true_loss.size(), f.rrm->link_count());
  EXPECT_EQ(snap.link_sampled_log_trans.size(), f.rrm->link_count());
  EXPECT_EQ(snap.link_congested.size(), f.rrm->link_count());
  EXPECT_EQ(snap.edge_loss.size(), f.graph.edge_count());
}

TEST(SnapshotSimulator, LogTransmissionNonPositive) {
  Fixture f;
  SnapshotSimulator sim(f.graph, *f.rrm, {.p = 0.3}, 2);
  for (int s = 0; s < 5; ++s) {
    const auto snap = sim.next();
    for (const auto y : snap.path_log_trans) EXPECT_LE(y, 0.0);
    for (const auto phi : snap.path_trans) {
      EXPECT_GT(phi, 0.0);
      EXPECT_LE(phi, 1.0);
    }
  }
}

TEST(SnapshotSimulator, NoCongestionMeansTinyLoss) {
  Fixture f;
  ScenarioConfig config;
  config.p = 0.0;  // all links good: loss <= 0.002 each
  SnapshotSimulator sim(f.graph, *f.rrm, config, 3);
  const auto snap = sim.next();
  for (std::size_t k = 0; k < f.rrm->link_count(); ++k) {
    EXPECT_FALSE(snap.link_congested[k]);
    EXPECT_LE(snap.link_true_loss[k], 0.005);  // at most two aliased edges
  }
  for (const auto phi : snap.path_trans) EXPECT_GT(phi, 0.97);
}

TEST(SnapshotSimulator, FullCongestionFlagsEverything) {
  Fixture f;
  ScenarioConfig config;
  config.p = 1.0;
  SnapshotSimulator sim(f.graph, *f.rrm, config, 4);
  const auto snap = sim.next();
  for (std::size_t k = 0; k < f.rrm->link_count(); ++k) {
    EXPECT_TRUE(snap.link_congested[k]);
    EXPECT_GT(snap.link_true_loss[k], 0.002);
  }
}

TEST(SnapshotSimulator, PathLossWithinFrechetBounds) {
  // The path's good slots are the intersection of its links' good slots, so
  // deterministically: 1 - sum_k (1 - phi_k) <= phi_path <= min_k phi_k
  // (Boole / Frechet bounds), up to the 0.5/S clamping floor.
  Fixture f;
  SnapshotSimulator sim(f.graph, *f.rrm, {.p = 0.5}, 5);
  const double floor_value = 0.5 / 1000.0;
  for (int s = 0; s < 10; ++s) {
    const auto snap = sim.next();
    const auto& r = f.rrm->matrix();
    for (std::size_t i = 0; i < r.rows(); ++i) {
      double min_phi = 1.0;
      double sum_loss = 0.0;
      for (const auto k : r.row(i)) {
        const double phi_k = std::exp(snap.link_sampled_log_trans[k]);
        min_phi = std::min(min_phi, phi_k);
        sum_loss += 1.0 - phi_k;
      }
      const double phi_path = snap.path_trans[i];
      EXPECT_LE(phi_path, min_phi + floor_value + 1e-9);
      EXPECT_GE(phi_path, 1.0 - sum_loss - 1e-9);
    }
  }
}

TEST(SnapshotSimulator, SampledLinkRateTracksAssignedRate) {
  Fixture f;
  ScenarioConfig config;
  config.p = 1.0;
  config.probes_per_snapshot = 4000;
  SnapshotSimulator sim(f.graph, *f.rrm, config, 6);
  stats::RunningStat err;
  for (int s = 0; s < 20; ++s) {
    const auto snap = sim.next();
    for (std::size_t k = 0; k < f.rrm->link_count(); ++k) {
      const double sampled_loss = 1.0 - std::exp(snap.link_sampled_log_trans[k]);
      err.add(sampled_loss - snap.link_true_loss[k]);
    }
  }
  // Unbiased within sampling error.
  EXPECT_NEAR(err.mean(), 0.0, 0.01);
}

TEST(SnapshotSimulator, BernoulliProcessSupported) {
  Fixture f;
  ScenarioConfig config;
  config.process = LossProcess::kBernoulli;
  SnapshotSimulator sim(f.graph, *f.rrm, config, 7);
  const auto snap = sim.next();
  EXPECT_EQ(snap.path_log_trans.size(), f.rrm->path_count());
}

TEST(SnapshotSimulator, PerPacketModeSupported) {
  Fixture f;
  ScenarioConfig config;
  config.mode = ProbeMode::kPerPacket;
  config.probes_per_snapshot = 200;
  SnapshotSimulator sim(f.graph, *f.rrm, config, 8);
  const auto snap = sim.next();
  for (const auto phi : snap.path_trans) {
    EXPECT_GT(phi, 0.0);
    EXPECT_LE(phi, 1.0);
  }
}

TEST(SnapshotSimulator, DeterministicUnderSeed) {
  Fixture f;
  SnapshotSimulator sim1(f.graph, *f.rrm, {}, 99);
  SnapshotSimulator sim2(f.graph, *f.rrm, {}, 99);
  const auto s1 = sim1.next();
  const auto s2 = sim2.next();
  EXPECT_EQ(s1.path_log_trans, s2.path_log_trans);
  EXPECT_EQ(s1.link_true_loss, s2.link_true_loss);
}

TEST(SnapshotSimulator, CongestedFractionNearP) {
  // Over many snapshots the average fraction of congested edges ~ p.
  stats::Rng topo_rng(9);
  const auto tree = topology::make_random_tree({.nodes = 300}, topo_rng);
  const auto paths = topology::tree_paths(tree);
  const net::ReducedRoutingMatrix rrm(tree.graph, paths);
  ScenarioConfig config;
  config.p = 0.1;
  config.dynamics = CongestionDynamics::kIid;
  config.probes_per_snapshot = 10;  // cheap; we only need the flags
  SnapshotSimulator sim(tree.graph, rrm, config, 10);
  stats::RunningStat frac;
  for (int s = 0; s < 60; ++s) {
    const auto snap = sim.next();
    std::size_t congested = 0, covered = 0;
    for (const auto e : sim.covered_edges()) {
      covered += 1;
      congested += snap.edge_congested[e] ? 1 : 0;
    }
    frac.add(static_cast<double>(congested) / static_cast<double>(covered));
  }
  EXPECT_NEAR(frac.mean(), 0.1, 0.02);
}

TEST(SnapshotSimulator, PersistenceKeepsCongestionAlive) {
  stats::Rng topo_rng(11);
  const auto tree = topology::make_random_tree({.nodes = 200}, topo_rng);
  const auto paths = topology::tree_paths(tree);
  const net::ReducedRoutingMatrix rrm(tree.graph, paths);
  ScenarioConfig config;
  config.p = 0.1;
  config.dynamics = CongestionDynamics::kMarkov;
  config.persistence = 0.9;
  config.probes_per_snapshot = 10;
  SnapshotSimulator sim(tree.graph, rrm, config, 12);
  // Average run length of congestion should far exceed the iid value ~1.1.
  std::vector<std::vector<bool>> states;
  for (int s = 0; s < 80; ++s) {
    const auto snap = sim.next();
    std::vector<bool> flags;
    for (const auto e : sim.covered_edges()) flags.push_back(snap.edge_congested[e]);
    states.push_back(std::move(flags));
  }
  std::size_t runs = 0, congested_total = 0;
  for (std::size_t e = 0; e < states[0].size(); ++e) {
    bool prev = false;
    for (const auto& snap_flags : states) {
      if (snap_flags[e]) {
        ++congested_total;
        if (!prev) ++runs;
      }
      prev = snap_flags[e];
    }
  }
  ASSERT_GT(runs, 0u);
  const double mean_run =
      static_cast<double>(congested_total) / static_cast<double>(runs);
  EXPECT_GT(mean_run, 3.0);
}

TEST(SnapshotSeries, ObservationMatrixLayout) {
  Fixture f;
  SnapshotSimulator sim(f.graph, *f.rrm, {}, 13);
  const auto series = run_snapshots(sim, 4);
  const auto y = series.observation_matrix();
  EXPECT_EQ(y.count(), 4u);
  EXPECT_EQ(y.dim(), f.rrm->path_count());
  EXPECT_DOUBLE_EQ(y.at(2, 1), series.snapshots[2].path_log_trans[1]);
}

TEST(SnapshotSimulator, InterAsBiasSkewsCongestion) {
  stats::Rng topo_rng(14);
  const auto topo = topology::make_hierarchical_top_down(
      {.as_count = 6, .routers_per_as = 8}, topo_rng);
  const auto hosts = topology::pick_low_degree_hosts(topo.graph, 10);
  const auto routed = topology::route_paths(topo.graph, hosts, hosts);
  const net::ReducedRoutingMatrix rrm(topo.graph, routed.paths);
  ScenarioConfig config;
  config.p = 0.08;
  config.dynamics = CongestionDynamics::kIid;
  config.inter_as_congestion_bias = 3.0;
  config.probes_per_snapshot = 10;
  SnapshotSimulator sim(topo.graph, rrm, config, 15);
  std::size_t inter_congested = 0, inter_total = 0;
  std::size_t intra_congested = 0, intra_total = 0;
  for (int s = 0; s < 60; ++s) {
    const auto snap = sim.next();
    for (const auto e : sim.covered_edges()) {
      if (topo.graph.is_inter_as(e)) {
        ++inter_total;
        inter_congested += snap.edge_congested[e] ? 1 : 0;
      } else {
        ++intra_total;
        intra_congested += snap.edge_congested[e] ? 1 : 0;
      }
    }
  }
  ASSERT_GT(inter_total, 0u);
  ASSERT_GT(intra_total, 0u);
  const double inter_rate =
      static_cast<double>(inter_congested) / static_cast<double>(inter_total);
  const double intra_rate =
      static_cast<double>(intra_congested) / static_cast<double>(intra_total);
  EXPECT_GT(inter_rate, 1.8 * intra_rate);
}

}  // namespace
}  // namespace losstomo::sim
