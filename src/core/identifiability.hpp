// Identifiability diagnostics: operational tooling around Theorem 1.
//
// Theorem 1 guarantees full column rank of the augmented matrix A when
// T.1/T.2 hold; real deployments want to *check* that on their measured
// routing matrix before trusting Phase 1, and — when the check fails — to
// know which links are entangled so they can add beacons or destinations.
// This module reports:
//   * rank(A) vs nc (variance identifiability),
//   * rank(R) vs nc (the first-moment deficit LIA works around),
//   * the links whose variance is NOT uniquely determined (the non-pivot
//     columns of a rank-revealing factorization of A^T A).
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/sparse.hpp"

namespace losstomo::core {

struct IdentifiabilityReport {
  std::size_t link_count = 0;
  std::size_t routing_rank = 0;        // rank(R)
  std::size_t augmented_rank = 0;      // rank(A)
  /// A minimal set of links whose exclusion leaves the remaining variances
  /// identifiable (the non-pivot columns of A's rank factorization); empty
  /// iff variances_identifiable().  Each listed link is entangled with the
  /// pivot basis — adding a beacon/destination that separates it is the
  /// deployment fix.
  std::vector<std::uint32_t> unidentifiable_links;

  [[nodiscard]] bool variances_identifiable() const {
    return augmented_rank == link_count;
  }
  [[nodiscard]] bool means_identifiable() const {
    return routing_rank == link_count;
  }
};

/// Analyzes a reduced routing matrix.  Works on the implicit Gram forms so
/// it scales to large path sets (A is never materialised).  Complexity:
/// O(nc^3) for the rank-revealing factorizations of the nc x nc Gram
/// matrices (independent of the path count beyond forming N = R^T R).
/// Pure function; safe to call concurrently.
IdentifiabilityReport analyze_identifiability(
    const linalg::SparseBinaryMatrix& r, double rank_tol = 1e-9);

}  // namespace losstomo::core
