// Small reusable thread pool and deterministic parallel-for helpers.
//
// Every data-parallel hot path in the library (blocked covariance kernels,
// normal-equation accumulation, snapshot simulation) funnels through
// parallel_for / parallel_reduce.  Two properties are guaranteed:
//
//  * Determinism at any thread count.  Work is split into chunks whose
//    boundaries depend only on the problem size and the caller's grain —
//    never on how many threads execute them — and reductions combine
//    per-chunk partials in ascending chunk order.  Running with 1, 2, or 64
//    threads therefore produces bit-identical results.
//  * One knob.  The worker count defaults to std::thread::hardware_concurrency,
//    can be overridden globally by the LOSSTOMO_THREADS environment variable
//    or set_default_threads(), and per call by the `threads` argument
//    (options structs such as core::VarianceOptions::threads forward here).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace losstomo::util {

/// Default worker count: LOSSTOMO_THREADS if set (clamped to >= 1), else
/// std::thread::hardware_concurrency(), else 1.
std::size_t default_threads();

/// Overrides default_threads() process-wide; 0 restores the env/hardware
/// default.  Not thread-safe against concurrent parallel sections.
void set_default_threads(std::size_t threads);

/// Shared pool of worker threads.  Threads are created lazily up to the
/// largest concurrency any call has requested and reused across calls; a
/// parallel section issued from inside a worker runs inline (no nested
/// parallelism, no deadlock).
class ThreadPool {
 public:
  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool used by parallel_for/parallel_reduce.
  static ThreadPool& global();

  /// Runs fn(task) for every task in [0, tasks), using at most `workers`
  /// concurrent threads (0 = default_threads(); the calling thread counts as
  /// one worker and always participates).  Blocks until every task is done.
  /// Task indices are claimed dynamically, so fn must not depend on which
  /// thread executes it.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn,
           std::size_t workers = 0);

 private:
  struct Job;
  void worker_loop();
  void ensure_workers(std::size_t count);  // callers hold no lock

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::deque<std::shared_ptr<Job>> queue_;  // one entry per helper slot
  bool stop_ = false;
};

/// Number of chunks parallel_for/parallel_reduce split [0, n) into for the
/// given grain (minimum items per chunk).  Depends only on (n, grain).
std::size_t chunk_count(std::size_t n, std::size_t grain);

/// Half-open sub-range of [0, n) covered by `chunk` (balanced partition).
std::pair<std::size_t, std::size_t> chunk_range(std::size_t n,
                                                std::size_t chunks,
                                                std::size_t chunk);

/// Runs body(begin, end) over a deterministic partition of [0, n); chunks
/// are executed concurrently on at most `threads` workers.  Each index is
/// visited exactly once; bodies writing disjoint outputs need no locking.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t threads = 0);

/// Deterministic map-reduce: body(partial, begin, end) accumulates into a
/// per-chunk partial (initialised by copying `identity`), then `reduce(acc,
/// partial)` folds the partials into `identity`'s copy in ascending chunk
/// order.  The result is bit-identical at any thread count.
template <typename T, typename Body, typename Reduce>
T parallel_reduce(std::size_t n, std::size_t grain, const T& identity,
                  Body&& body, Reduce&& reduce, std::size_t threads = 0) {
  const std::size_t chunks = chunk_count(n, grain);
  if (chunks <= 1) {
    T acc = identity;
    if (n > 0) body(acc, std::size_t{0}, n);
    return acc;
  }
  std::vector<T> partials(chunks, identity);
  ThreadPool::global().run(
      chunks,
      [&](std::size_t chunk) {
        const auto [begin, end] = chunk_range(n, chunks, chunk);
        body(partials[chunk], begin, end);
      },
      threads);
  T acc = std::move(partials.front());
  for (std::size_t c = 1; c < chunks; ++c) reduce(acc, partials[c]);
  return acc;
}

}  // namespace losstomo::util
