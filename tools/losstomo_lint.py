#!/usr/bin/env python3
"""losstomo_lint: static checks for the invariants the parity harness assumes.

Usage:

    python3 tools/losstomo_lint.py              # lint src/ + tests/
    python3 tools/losstomo_lint.py src/core     # lint a subtree
    python3 tools/losstomo_lint.py --fixtures   # run the fixture corpus
    python3 tools/losstomo_lint.py --list-rules

The whole reproduction rests on one contract: streaming, sharded,
parallel, and restored execution must be bit-identical to the batch
reference.  The parity tests enforce that dynamically; this linter makes
the invariants they assume *statically* checkable, so an order-dependent
hash-map walk or a stray RNG call fails CI instead of surfacing as a
flaky 1-ulp parity diff weeks later.  Exits non-zero with a per-finding
report.  No third-party dependencies.

Rules (see docs/STATIC_ANALYSIS.md for the full catalogue):

  nondet-order        no iteration over std::unordered_map/unordered_set
                      (iteration order feeds accumulation order)
  rng-discipline      rand()/srand()/std::random_device/std::mt19937/
                      time(nullptr) only inside stats/rng (the one seeded,
                      checkpointable randomness source)
  hot-path-parsing    istringstream / stod / stoul family banned in
                      src/io/ + src/core/ (hot loops parse via from_chars)
  layering            the include graph must respect the module order
                      util -> linalg -> stats -> core -> {scenario, obs,
                      io-sinks}; io container code cannot include core
  checkpoint-symmetry every save_state has a restore_state in the same
                      class; LTCP section tags come from the
                      io/checkpoint_tags.hpp registry, never raw literals
  unsafe-bytes        reinterpret_cast outside src/io/; hand-rolled JSON
                      quoting outside util/json
  metric-naming       registered metric names match check_metrics.py's
                      ^[a-z0-9_.]+$; kDeterministic never tags
                      wall-clock-derived metrics

Escape hatch: a finding is waived by an annotation comment

    // lint: <rule>-ok(<reason>)

on the offending line, on an earlier line of the same statement, or in
the comment block directly above that statement, or

    // lint: <rule>-ok-file(<reason>)

anywhere in the file to waive the rule for the whole file.  The reason
is mandatory — an empty one is itself a violation.

Fixture corpus: tests/lint/fixtures/<rule>_bad_*.cpp must each raise at
least one finding of <rule>; <rule>_ok_*.cpp must lint clean.  A fixture
may carry `// lint-fixture-path: src/...` to be linted as if it lived at
that path (exercising path-scoped rules).  `ctest -R lint` runs both the
tree scan and the corpus.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

NAME_RE = re.compile(r"^[a-z0-9_.]*$")  # matches check_metrics.py (segments)

# --------------------------------------------------------------------------
# Layering model.  A file maps to the first module whose prefix matches its
# repo-relative path; a module may include itself and its `allowed` set.
# File-granular entries split src/io/: the *container* layer (checkpoint,
# binary trace — pure byte formats) sits below stats so every component can
# serialize, and must never grow an engine dependency; the *sinks*
# (pipeline) sit above core.  A new src/io/ file defaults to the container
# module — the strictest set — so growing io requires a conscious edit here.
# --------------------------------------------------------------------------
MODULES = [
    # (module, path prefixes, allowed modules)
    ("io.sink", ("src/io/pipeline",),
     {"io.container", "io.trace", "core", "sim", "obs", "net", "stats",
      "linalg", "util"}),
    ("io.script", ("src/io/scenario_io",),
     {"io.container", "scenario.spec", "util"}),
    ("io.trace", ("src/io/trace_io",),
     {"io.container", "net", "stats", "linalg", "util"}),
    ("io.container", ("src/io/",), {"util"}),
    ("scenario.spec", ("src/scenario/spec.",), {"util"}),
    ("scenario", ("src/scenario/",),
     {"core", "io.container", "io.script", "io.trace", "sim", "stats",
      "topology", "obs", "net", "linalg", "util", "scenario.spec"}),
    ("delay", ("src/delay/",), {"core", "stats", "linalg", "net", "util"}),
    ("baselines", ("src/baselines/",), {"linalg", "net", "util"}),
    ("core", ("src/core/",),
     {"linalg", "stats", "net", "obs", "io.container", "util"}),
    ("topology", ("src/topology/",), {"net", "stats", "linalg", "util"}),
    ("sim", ("src/sim/",),
     {"net", "stats", "linalg", "io.container", "util"}),
    ("stats", ("src/stats/",), {"linalg", "io.container", "util"}),
    ("net", ("src/net/",), {"linalg", "util"}),
    ("obs", ("src/obs/",), {"util"}),
    ("linalg", ("src/linalg/",), {"util"}),
    ("util", ("src/util/",), set()),
]

TAG_REGISTRY = "src/io/checkpoint_tags.hpp"
RNG_HOME = ("src/stats/rng.hpp", "src/stats/rng.cpp")
JSON_HOME = ("src/util/json.hpp", "src/util/json.cpp")

RULES = (
    "nondet-order", "rng-discipline", "hot-path-parsing", "layering",
    "checkpoint-symmetry", "unsafe-bytes", "metric-naming",
)

ANNOT_RE = re.compile(
    r"lint:\s*([a-z-]+?)-ok(-file)?\(", re.MULTILINE)
FIXTURE_PATH_RE = re.compile(r"lint-fixture-path:\s*(\S+)")


class Finding:
    def __init__(self, path, lineno, rule, message):
        self.path, self.lineno, self.rule, self.message = (
            path, lineno, rule, message)

    def __str__(self):
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Lexing: split each line into code and comment text without being fooled
# by string/char literals (or by '//' inside a string).  Annotations are
# read from comment text; rules match against code text — except the rules
# that inspect string literals (tags, metric names), which use raw code
# lines with comments removed but literals kept.
# --------------------------------------------------------------------------
def split_code_comments(text):
    """Returns (code_lines, comment_lines), same line count as text."""
    code, comments = [], []
    cur_code, cur_comment = [], []
    state = "code"  # code | line_comment | block_comment | string | char
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            cur_code.append(c)
        elif state in ("string", "char"):
            cur_code.append(c)
            if c == "\\":
                if nxt and nxt != "\n":
                    cur_code.append(nxt)
                    i += 2
                    continue
            elif (c == '"' and state == "string") or (
                    c == "'" and state == "char"):
                state = "code"
        elif state == "line_comment":
            cur_comment.append(c)
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            cur_comment.append(c)
        i += 1
    code.append("".join(cur_code))
    comments.append("".join(cur_comment))
    return code, comments


class SourceFile:
    """A parsed file: code/comment split plus the annotation index."""

    def __init__(self, path, text, lint_path=None):
        self.path = path            # path on disk (for reporting)
        self.lint_path = lint_path or path  # path the rules see
        self.text = text
        self.code, self.comments = split_code_comments(text)
        self.file_waivers = {}      # rule -> (lineno, reason)
        self.line_waivers = {}      # lineno -> {rule: reason}
        self.bad_annotations = []   # Finding
        self._index_annotations()

    def _index_annotations(self):
        for lineno, comment in enumerate(self.comments, 1):
            for m in ANNOT_RE.finditer(comment):
                rule, is_file = m.group(1), bool(m.group(2))
                reason = self._reason_after(lineno, comment, m.end())
                if rule not in RULES:
                    self.bad_annotations.append(Finding(
                        self.path, lineno, "annotation",
                        f"unknown rule {rule!r} in lint annotation"))
                    continue
                if not reason.strip():
                    self.bad_annotations.append(Finding(
                        self.path, lineno, "annotation",
                        f"lint annotation for {rule!r} carries no reason"))
                    continue
                if is_file:
                    self.file_waivers[rule] = (lineno, reason.strip())
                else:
                    self.line_waivers.setdefault(lineno, {})[rule] = (
                        reason.strip())

    def _reason_after(self, lineno, comment, start):
        """Reason text between the annotation's parens; may continue over
        the following contiguous comment lines."""
        buf, depth = [], 1
        text = comment[start:]
        line = lineno
        while True:
            for ch in text:
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth == 0:
                        return "".join(buf)
                buf.append(ch)
            line += 1
            if line > len(self.comments) or not self.comments[line - 1]:
                return "".join(buf)  # unterminated: treated as the reason
            buf.append(" ")
            text = self.comments[line - 1]

    def waived(self, rule, lineno):
        if rule in self.file_waivers:
            return True
        if rule in self.line_waivers.get(lineno, {}):
            return True
        # Climb through earlier lines of the same statement (a finding may
        # anchor to a continuation line) and then through the contiguous
        # comment block directly above it.
        probe = lineno - 1
        while probe >= 1:
            if rule in self.line_waivers.get(probe, {}):
                return True
            code = self.code[probe - 1].strip()
            if not code and self.comments[probe - 1]:
                probe -= 1  # comment-only line
            elif code and not code.endswith((";", "{", "}")):
                probe -= 1  # continuation of the enclosing statement
            else:
                break
        return False


def emit(findings, src, rule, lineno, message):
    if not src.waived(rule, lineno):
        findings.append(Finding(src.path, lineno, rule, message))


# --------------------------------------------------------------------------
# Rule: nondet-order
# --------------------------------------------------------------------------
# A declaration like `std::unordered_map<K, std::vector<V>> name` — template
# argument lists up to two levels of nesting.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*"
    r"<(?:[^<>]|<(?:[^<>]|<[^<>]*>)*>)*>\s*&?\s*(\w+)\s*(?:[;={(,)]|$)")
UNORDERED_TYPE_RE = re.compile(r"\bunordered_(?:map|set)\b")


def check_nondet_order(src, findings):
    names = set()
    for line in src.code:
        for m in UNORDERED_DECL_RE.finditer(line):
            names.add(m.group(1))
    if not names:
        return
    alt = "|".join(re.escape(n) for n in sorted(names))
    iter_re = re.compile(
        r"(?::\s*(?P<range>" + alt + r")\s*\)"        # for (x : name)
        r"|\b(?P<begin>" + alt + r")\s*\.\s*c?begin\s*\()")
    for lineno, line in enumerate(src.code, 1):
        for m in iter_re.finditer(line):
            name = m.group("range") or m.group("begin")
            emit(findings, src, "nondet-order", lineno,
                 f"iteration over unordered container {name!r}: hash order "
                 f"feeds evaluation order; iterate a sorted copy or "
                 f"annotate why order cannot leak into results")


# --------------------------------------------------------------------------
# Rule: rng-discipline
# --------------------------------------------------------------------------
RNG_PATTERNS = (
    (re.compile(r"(?<![\w.])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time(nullptr)"),
)


def check_rng_discipline(src, findings):
    if src.lint_path in RNG_HOME:
        return
    for lineno, line in enumerate(src.code, 1):
        for pat, what in RNG_PATTERNS:
            if pat.search(line):
                emit(findings, src, "rng-discipline", lineno,
                     f"{what} outside stats::Rng: unseeded or ambient "
                     f"randomness breaks replay/checkpoint determinism — "
                     f"take a stats::Rng (fork() for substreams)")


# --------------------------------------------------------------------------
# Rule: hot-path-parsing (src/io/ + src/core/ only)
# --------------------------------------------------------------------------
PARSE_RE = re.compile(r"\bistringstream\b|\bsto(?:d|f|i|l|ul|ll|ull)\s*\(")


def check_hot_path_parsing(src, findings):
    if not src.lint_path.startswith(("src/io/", "src/core/")):
        return
    for lineno, line in enumerate(src.code, 1):
        if PARSE_RE.search(line):
            emit(findings, src, "hot-path-parsing", lineno,
                 "istringstream/sto* in an ingestion layer: locale-touching "
                 "per-line parsing regressed 31x vs from_chars (PR 7) — "
                 "use std::from_chars, or annotate a genuinely cold path")


# --------------------------------------------------------------------------
# Rule: layering
# --------------------------------------------------------------------------
INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


def module_of(path):
    for name, prefixes, _ in MODULES:
        if any(path.startswith(p) for p in prefixes):
            return name
    return None


def module_allowed(name):
    for mod, _, allowed in MODULES:
        if mod == name:
            return allowed
    return set()


def check_module_table():
    """The allowlist itself must be acyclic, or it proves nothing."""
    order, state = [], {}

    def visit(mod):
        if state.get(mod) == "done":
            return None
        if state.get(mod) == "visiting":
            return mod
        state[mod] = "visiting"
        for dep in sorted(module_allowed(mod)):
            cyc = visit(dep)
            if cyc:
                return cyc
        state[mod] = "done"
        order.append(mod)
        return None

    for mod, _, _ in MODULES:
        cyc = visit(mod)
        if cyc:
            return [Finding("tools/losstomo_lint.py", 1, "layering",
                            f"module table has a cycle through {cyc!r}")]
    return []


def check_layering(src, findings):
    if not src.lint_path.startswith("src/"):
        return
    mod = module_of(src.lint_path)
    if mod is None:
        emit(findings, src, "layering", 1,
             f"{src.lint_path} matches no module in the layering table "
             f"(tools/losstomo_lint.py MODULES) — add it")
        return
    allowed = module_allowed(mod)
    for lineno, line in enumerate(src.code, 1):
        m = INCLUDE_RE.search(line)
        if not m:
            continue
        target = module_of("src/" + m.group(1))
        if target is None:
            emit(findings, src, "layering", lineno,
                 f'include "{m.group(1)}" maps to no module in the '
                 f"layering table")
        elif target != mod and target not in allowed:
            emit(findings, src, "layering", lineno,
                 f"{mod} may not include {target} "
                 f'("{m.group(1)}"): the sanctioned order is util -> '
                 f"linalg -> stats -> core -> {{scenario, obs, io-sinks}}, "
                 f"io container code independent of the engine")


# --------------------------------------------------------------------------
# Rule: checkpoint-symmetry
# --------------------------------------------------------------------------
SECTION_LITERAL_RE = re.compile(
    r"\b(?:begin_section|expect_section)\s*\(\s*\"")
CLASS_RE = re.compile(r"^\s*(?:class|struct)\s+(\w+)[^;]*$")
SAVE_RE = re.compile(r"\bsave_state\s*\(")
RESTORE_RE = re.compile(r"\brestore_state\s*\(")
TAG_DECL_RE = re.compile(r"\bconstexpr\s+char\s+(\w+)\[\]\s*=\s*\"([^\"]*)\"")


def check_checkpoint_symmetry(src, findings):
    if not src.lint_path.startswith("src/"):
        return
    if src.lint_path == TAG_REGISTRY:
        seen = {}
        for lineno, line in enumerate(src.code, 1):
            for m in TAG_DECL_RE.finditer(line):
                name, tag = m.group(1), m.group(2)
                if len(tag) != 4:
                    emit(findings, src, "checkpoint-symmetry", lineno,
                         f"section tag {name} = {tag!r} is not exactly "
                         f"four characters")
                if tag in seen:
                    emit(findings, src, "checkpoint-symmetry", lineno,
                         f"section tag {tag!r} declared twice ({seen[tag]} "
                         f"and {name}): tags must be unique or a reordered "
                         f"image parses as the wrong section")
                seen[tag] = name
        return
    # Raw tag literals at call sites.
    for lineno, line in enumerate(src.code, 1):
        if SECTION_LITERAL_RE.search(line):
            emit(findings, src, "checkpoint-symmetry", lineno,
                 "raw string tag passed to begin/expect_section: declare "
                 "the tag once in io/checkpoint_tags.hpp and reference the "
                 "constant")
    # save_state/restore_state pairing, per class (headers declare the API).
    if not src.lint_path.endswith((".hpp", ".h")):
        return
    current, decls = "<file scope>", {}
    first_line = {}
    for lineno, line in enumerate(src.code, 1):
        cm = CLASS_RE.match(line)
        if cm:
            current = cm.group(1)
        has_save = bool(SAVE_RE.search(line))
        has_restore = bool(RESTORE_RE.search(line))
        if has_save or has_restore:
            entry = decls.setdefault(current, set())
            if has_save:
                entry.add("save")
            if has_restore:
                entry.add("restore")
            first_line.setdefault(current, lineno)
    for cls, kinds in decls.items():
        if kinds == {"save"}:
            emit(findings, src, "checkpoint-symmetry", first_line[cls],
                 f"{cls} declares save_state without restore_state: "
                 f"asymmetric checkpoint surface (the PR 8 store-order bug "
                 f"was exactly this shape)")
        elif kinds == {"restore"}:
            emit(findings, src, "checkpoint-symmetry", first_line[cls],
                 f"{cls} declares restore_state without save_state")


# --------------------------------------------------------------------------
# Rule: unsafe-bytes
# --------------------------------------------------------------------------
ESCAPED_QUOTE_RE = re.compile(r'"(?:[^"\\]|\\.)*\\"(?:[^"\\]|\\.)*"')


def check_unsafe_bytes(src, findings):
    if not src.lint_path.startswith("src/"):
        return
    in_io = src.lint_path.startswith("src/io/")
    in_json_home = src.lint_path in JSON_HOME
    for lineno, line in enumerate(src.code, 1):
        if not in_io and "reinterpret_cast" in line:
            emit(findings, src, "unsafe-bytes", lineno,
                 "reinterpret_cast outside src/io/: byte-level aliasing "
                 "belongs in the container layer where alignment and "
                 "endianness are audited")
        if not in_json_home and ESCAPED_QUOTE_RE.search(line):
            emit(findings, src, "unsafe-bytes", lineno,
                 "hand-rolled JSON quoting (escaped-quote literal): emit "
                 "through util::json so escaping and non-finite handling "
                 "stay correct in one place")


# --------------------------------------------------------------------------
# Rule: metric-naming
# --------------------------------------------------------------------------
REGISTER_RE = re.compile(r"\b(counter|gauge|histogram)\s*\(\s*\"")
WALLCLOCK_NAME_RE = re.compile(r"seconds|_time\b|stall|load|elapsed")


def registration_span(src, lineno):
    """The registration call text: from the call line to the line closing
    its parens (registrations are short; cap at 4 lines)."""
    buf = []
    depth = None
    for off in range(4):
        idx = lineno - 1 + off
        if idx >= len(src.code):
            break
        line = src.code[idx]
        buf.append(line)
        if depth is None:
            m = REGISTER_RE.search(line)
            depth = 0
            line = line[m.start():]
            buf[-1] = line
        depth += line.count("(") - line.count(")")
        if depth <= 0:
            break
    return "\n".join(buf)


def check_metric_naming(src, findings):
    if not src.lint_path.startswith("src/"):
        return
    if src.lint_path.startswith("src/obs/"):
        return  # the registry implementation itself
    for lineno, line in enumerate(src.code, 1):
        m = REGISTER_RE.search(line)
        if not m:
            continue
        span = registration_span(src, lineno)
        kind = m.group(1)
        literals = re.findall(r'"([^"]*)"', span)
        for lit in literals:
            if not NAME_RE.match(lit):
                emit(findings, src, "metric-naming", lineno,
                     f"metric name segment {lit!r} does not match "
                     f"{NAME_RE.pattern} (check_metrics.py rejects the "
                     f"export)")
        name = "".join(literals)
        if "kDeterministic" in span:
            if kind == "histogram":
                emit(findings, src, "metric-naming", lineno,
                     "histogram registered kDeterministic: histograms "
                     "record wall-clock observations and can never be "
                     "bit-identical across thread counts")
            elif WALLCLOCK_NAME_RE.search(name):
                emit(findings, src, "metric-naming", lineno,
                     f"metric {name!r} looks timer-derived but is tagged "
                     f"kDeterministic: deterministic metrics must publish "
                     f"from serialized engine state (Counter::set), never "
                     f"from timers")


CHECKS = (
    check_nondet_order,
    check_rng_discipline,
    check_hot_path_parsing,
    check_layering,
    check_checkpoint_symmetry,
    check_unsafe_bytes,
    check_metric_naming,
)


def lint_file(path_on_disk, rel, findings, lint_path=None):
    with open(path_on_disk, encoding="utf-8") as f:
        text = f.read()
    src = SourceFile(rel, text, lint_path=lint_path)
    findings.extend(src.bad_annotations)
    for check in CHECKS:
        check(src, findings)
    return src


def cpp_files(roots):
    out = []
    for root in roots:
        top = os.path.join(REPO, root)
        if os.path.isfile(top):
            out.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(d for d in dirnames if d != "fixtures")
            for fn in sorted(filenames):
                if fn.endswith((".cpp", ".hpp", ".h", ".cc")):
                    out.append(os.path.relpath(
                        os.path.join(dirpath, fn), REPO))
    return sorted(out)


def run_tree(roots):
    findings = list(check_module_table())
    count, annotations = 0, 0
    for rel in cpp_files(roots):
        src = lint_file(os.path.join(REPO, rel), rel, findings)
        count += 1
        annotations += len(src.file_waivers) + sum(
            len(v) for v in src.line_waivers.values())
    if findings:
        for f in findings:
            print(f)
        print(f"\nlosstomo_lint: {len(findings)} problem(s) in {count} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"losstomo_lint: {count} files, {annotations} annotation(s) — OK")
    return 0


def run_fixtures(fixture_dir):
    full = os.path.join(REPO, fixture_dir)
    names = sorted(fn for fn in os.listdir(full) if fn.endswith(".cpp"))
    if not names:
        print(f"losstomo_lint: no fixtures under {fixture_dir}",
              file=sys.stderr)
        return 1
    errors, covered = [], set()
    for fn in names:
        m = re.match(r"([a-z_]+)_(bad|ok)_", fn)
        if not m:
            errors.append(f"{fn}: fixture name must be "
                          f"<rule>_bad_*.cpp or <rule>_ok_*.cpp")
            continue
        rule, kind = m.group(1).replace("_", "-"), m.group(2)
        if rule not in RULES:
            errors.append(f"{fn}: unknown rule {rule!r}")
            continue
        path = os.path.join(full, fn)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        pm = FIXTURE_PATH_RE.search(text)
        lint_path = pm.group(1) if pm else os.path.join(fixture_dir, fn)
        findings = []
        lint_file(path, os.path.join(fixture_dir, fn), findings,
                  lint_path=lint_path)
        hits = [f for f in findings if f.rule == rule]
        others = [f for f in findings if f.rule != rule]
        if others:
            errors.extend(f"{fn}: unexpected [{f.rule}] finding: "
                          f"{f.message}" for f in others)
        if kind == "bad" and not hits:
            errors.append(f"{fn}: expected a [{rule}] finding, got none — "
                          f"the rule no longer catches its fixture")
        if kind == "ok" and hits:
            errors.extend(f"{fn}: annotated fixture still flagged: "
                          f"{f.message}" for f in hits)
        covered.add((rule, kind))
    for rule in RULES:
        for kind in ("bad", "ok"):
            if (rule, kind) not in covered:
                errors.append(f"fixture corpus is missing a {kind} fixture "
                              f"for rule {rule!r}")
    if errors:
        print("\n".join(errors))
        print(f"\nlosstomo_lint --fixtures: {len(errors)} problem(s)",
              file=sys.stderr)
        return 1
    print(f"losstomo_lint --fixtures: {len(names)} fixtures, "
          f"{len(RULES)} rules pinned — OK")
    return 0


def main(argv):
    args = argv[1:]
    if "--list-rules" in args:
        print("\n".join(RULES))
        return 0
    if "--fixtures" in args:
        args.remove("--fixtures")
        return run_fixtures(args[0] if args else "tests/lint/fixtures")
    return run_tree(args or ["src", "tests"])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
