#include "baselines/clink.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/nnls.hpp"

namespace losstomo::baselines {

ClinkModel clink_learn(const linalg::SparseBinaryMatrix& r,
                       const std::vector<std::vector<bool>>& path_bad,
                       const ClinkOptions& options) {
  const std::size_t np = r.rows();
  const std::size_t nc = r.cols();
  if (path_bad.empty()) throw std::invalid_argument("no snapshots");
  for (const auto& snap : path_bad) {
    if (snap.size() != np) throw std::invalid_argument("snapshot size");
  }
  const auto m = static_cast<double>(path_bad.size());

  // Empirical good rates, clamped away from 0 so the log stays finite
  // (a path bad in every snapshot still carries bounded evidence).
  linalg::Vector y(np, 0.0);
  for (std::size_t i = 0; i < np; ++i) {
    double good = 0.0;
    for (const auto& snap : path_bad) good += snap[i] ? 0.0 : 1.0;
    const double rate = std::max(good / m, 0.5 / m);
    y[i] = -std::log(rate);
  }

  // Non-negative least squares on G = R^T R, h = R^T y.
  linalg::Matrix g(nc, nc);
  linalg::Vector h(nc, 0.0);
  for (std::size_t i = 0; i < np; ++i) {
    const auto row = r.row(i);
    for (const auto a : row) {
      h[a] += y[i];
      for (const auto b : row) g(a, b) += 1.0;
    }
  }
  const auto nnls = linalg::nnls_gram(g, h);

  ClinkModel model;
  model.converged = nnls.converged;
  model.congestion_probability.resize(nc);
  for (std::size_t k = 0; k < nc; ++k) {
    const double p = 1.0 - std::exp(-nnls.x[k]);
    model.congestion_probability[k] =
        std::clamp(p, options.floor_probability, options.ceil_probability);
  }
  return model;
}

std::vector<bool> clink_locate(const linalg::SparseBinaryMatrix& r,
                               const ClinkModel& model,
                               const std::vector<bool>& path_bad) {
  const std::size_t np = r.rows();
  const std::size_t nc = r.cols();
  if (path_bad.size() != np) throw std::invalid_argument("snapshot size");
  if (model.congestion_probability.size() != nc) {
    throw std::invalid_argument("model size");
  }

  // MAP weights: w_k = log((1-p_k)/p_k) > 0 for p_k < 0.5; smaller weight
  // means cheaper to blame.
  linalg::Vector weight(nc);
  for (std::size_t k = 0; k < nc; ++k) {
    const double p = model.congestion_probability[k];
    weight[k] = std::log((1.0 - p) / p);
  }

  std::vector<bool> exonerated(nc, false);
  for (std::size_t i = 0; i < np; ++i) {
    if (path_bad[i]) continue;
    for (const auto k : r.row(i)) exonerated[k] = true;
  }
  std::vector<bool> uncovered(np, false);
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < np; ++i) {
    if (path_bad[i]) {
      uncovered[i] = true;
      ++remaining;
    }
  }

  const auto columns = r.column_lists();
  std::vector<bool> diagnosed(nc, false);
  while (remaining > 0) {
    std::size_t best_link = nc;
    double best_ratio = 0.0;
    for (std::size_t k = 0; k < nc; ++k) {
      if (exonerated[k] || diagnosed[k]) continue;
      std::size_t cover = 0;
      for (const auto i : columns[k]) {
        if (uncovered[i]) ++cover;
      }
      if (cover == 0) continue;
      // Maximize coverage per unit weight (greedy weighted set cover).
      const double ratio =
          static_cast<double>(cover) / std::max(weight[k], 1e-9);
      if (best_link == nc || ratio > best_ratio) {
        best_ratio = ratio;
        best_link = k;
      }
    }
    if (best_link == nc) break;  // inconsistent snapshot: give up
    diagnosed[best_link] = true;
    for (const auto i : columns[best_link]) {
      if (uncovered[i]) {
        uncovered[i] = false;
        --remaining;
      }
    }
  }
  return diagnosed;
}

}  // namespace losstomo::baselines
