// The mass-growth parity acceptance test: scenarios covering every growth
// shape — a reroute (single-row append), a mass `grow` burst (batched
// multi-row append), and a `grow_links` burst whose routes introduce fresh
// virtual links (bordered nc growth) — driven through ScenarioRunner,
// where the streaming engine must stay within 1e-10 of a batch re-learn at
// every tick, at 1, 2, and 8 threads, with exactly ONE factorization per
// run: growth is absorbed by batched pair registration, rank-1/pin border
// steps, and bordered identity growth of the cached factor, never a
// relearn.
//
// Instance notes: the mesh spec exercises reroute + mass grow (meshes have
// alternate routes); the tree spec exercises grow_links (every
// root-to-leaf path owns its leaf virtual link, so reserve rows guarantee
// genuinely fresh links).  min_good_loss keeps every path strictly lossy
// (see churn_parity_test for the boundary rationale).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "linalg/matrix.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace losstomo::scenario {
namespace {

ScenarioSpec mass_grow_spec() {
  ScenarioSpec spec;
  spec.name = "mass-grow-parity";
  spec.topology.kind = TopologySpec::Kind::kMesh;
  spec.topology.nodes = 40;
  spec.topology.hosts = 24;
  spec.topology.seed = 3;
  spec.window = 20;
  spec.ticks = 80;
  spec.seed = 11;
  spec.p = 0.6;
  spec.probes = 600;
  spec.min_good_loss = 0.002;
  spec.reserve_paths = 8;
  spec.events = {
      {.tick = 30, .type = EventType::kRouteChange, .path = 5},
      {.tick = 45, .type = EventType::kGrow, .count = 8},
  };
  return spec;
}

// Instance selection: in link-discovery mode a fresh link's junction must
// already branch among the initial paths, or the pre-growth G is EXACTLY
// singular (two virtual links indistinguishable until the grown path
// arrives) and both engines live on the jitter/rank-revealing degradation
// path, where tight parity is ill-posed.  This wide tree (branching 6,
// topology seed 2) keeps G clean through both growth events — asserted via
// jitter_used == 0 below.
ScenarioSpec grow_links_spec() {
  ScenarioSpec spec;
  spec.name = "grow-links-parity";
  spec.topology.kind = TopologySpec::Kind::kTree;
  spec.topology.nodes = 60;
  spec.topology.branching = 6;
  spec.topology.seed = 2;
  spec.window = 25;
  spec.ticks = 90;
  spec.seed = 11;
  spec.p = 0.6;
  spec.probes = 800;
  spec.min_good_loss = 0.002;
  spec.reserve_paths = 2;
  spec.events = {
      {.tick = 35, .type = EventType::kGrowLinks, .count = 1},
      {.tick = 55, .type = EventType::kGrowLinks, .count = 1},
  };
  return spec;
}

// The constructive well-conditioned link-discovery family
// (topology::make_branching_tree): unlike the random tree above, which
// needs a hand-picked topology seed to keep every growth junction
// branching, the complete branching-ary core GUARANTEES it — every
// junction branches among the initial root-to-leaf paths, and every
// extra leaf (exactly the reserve pool, appended after the core leaves)
// attaches its fresh link at such a junction.  Any seed works.
ScenarioSpec branching_tree_spec() {
  ScenarioSpec spec;
  spec.name = "branching-tree-grow-links-parity";
  spec.topology.kind = TopologySpec::Kind::kBranchingTree;
  spec.topology.depth = 3;
  spec.topology.branching = 4;
  spec.topology.extra_leaves = 3;
  spec.topology.seed = 5;
  spec.window = 30;
  spec.ticks = 80;
  spec.seed = 11;
  spec.p = 0.6;
  spec.probes = 800;
  spec.min_good_loss = 0.002;
  spec.reserve_paths = 3;
  spec.events = {
      {.tick = 40, .type = EventType::kGrowLinks, .count = 2},
      {.tick = 55, .type = EventType::kGrowLinks, .count = 1},
  };
  return spec;
}

// Growth-parity monitor knobs: absorb every burst as rank-1/bordered
// factor steps (the machinery under test) instead of tripping the
// cumulative drift cap, whose refactorizations would mask a growth bug.
core::MonitorOptions growth_monitor_options(std::size_t threads = 0) {
  core::MonitorOptions options;
  options.lia.variance.threads = threads;
  options.lia.variance.factor_flip_threshold = 1u << 20;
  options.lia.variance.factor_update_cap = 1u << 20;
  return options;
}

struct Reference {
  std::vector<std::optional<core::LossInference>> inferences;
  std::vector<linalg::Vector> variances;
};

Reference batch_reference(const ScenarioSpec& spec) {
  core::MonitorOptions options;
  options.engine = core::MonitorEngine::kBatch;
  ScenarioRunner runner(spec, options);
  Reference ref;
  while (runner.ticks_run() < spec.ticks) {
    ref.inferences.push_back(runner.step());
    ref.variances.push_back(ref.inferences.back().has_value()
                                ? runner.monitor().variances().v
                                : linalg::Vector());
  }
  return ref;
}

void expect_growth_parity(const ScenarioSpec& spec, const Reference& ref,
                          std::size_t expected_links_grown) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ScenarioRunner runner(spec, growth_monitor_options(threads));
    std::size_t compared = 0;
    const std::string label = spec.name + "/threads=" + std::to_string(threads);
    while (runner.ticks_run() < spec.ticks) {
      const std::size_t tick = runner.ticks_run();
      const auto inference = runner.step();
      ASSERT_EQ(inference.has_value(), ref.inferences[tick].has_value())
          << label << " tick " << tick;
      if (!inference) continue;
      ++compared;
      EXPECT_LE(
          linalg::max_abs_diff(inference->loss, ref.inferences[tick]->loss),
          1e-10)
          << label << " tick " << tick;
      EXPECT_LE(linalg::max_abs_diff(runner.monitor().variances().v,
                                     ref.variances[tick]),
                1e-10)
          << label << " tick " << tick;
      // The instances are chosen so the system never needs regularization
      // — the precondition for tight cross-engine parity.
      EXPECT_DOUBLE_EQ(runner.monitor().variances().jitter_used, 0.0)
          << label << " tick " << tick;
    }
    EXPECT_EQ(compared, spec.ticks - spec.window) << label;
    const auto* eqs = runner.monitor().streaming_equations();
    ASSERT_NE(eqs, nullptr) << label;
    EXPECT_EQ(eqs->refactorizations(), 1u) << label;
    EXPECT_EQ(eqs->downdate_fallbacks(), 0u) << label;
    EXPECT_EQ(eqs->links_grown(), expected_links_grown) << label;
  }
}

TEST(GrowthParity, MassGrowBurstMatchesBatchAtAnyThreadCount) {
  const auto spec = mass_grow_spec();
  const Reference ref = batch_reference(spec);
  // Fixed-universe growth: the link basis never changes.
  expect_growth_parity(spec, ref, 0);
}

TEST(GrowthParity, FreshLinksMidRunMatchBatchAtAnyThreadCount) {
  const auto spec = grow_links_spec();
  // The instance must genuinely grow the link universe mid-run.
  ScenarioRunner probe(spec, growth_monitor_options());
  const std::size_t initial_cols = probe.monitor().routing().cols();
  (void)probe.run();
  const std::size_t grown = probe.monitor().routing().cols() - initial_cols;
  ASSERT_GT(grown, 0u);

  const Reference ref = batch_reference(spec);
  expect_growth_parity(spec, ref, grown);
}

TEST(GrowthParity, ConstructiveTreeGrowsFreshLinksUnderTightParity) {
  const auto spec = branching_tree_spec();
  // Every reserve row is an extra leaf owning one fresh link.
  ScenarioRunner probe(spec, growth_monitor_options());
  const std::size_t initial_cols = probe.monitor().routing().cols();
  (void)probe.run();
  const std::size_t grown = probe.monitor().routing().cols() - initial_cols;
  ASSERT_EQ(grown, spec.topology.extra_leaves);

  const Reference ref = batch_reference(spec);
  expect_growth_parity(spec, ref, grown);
}

TEST(GrowthParity, PairAccumulatorMatchesBatchThroughGrowth) {
  for (const auto& spec :
       {mass_grow_spec(), grow_links_spec(), branching_tree_spec()}) {
    const Reference ref = batch_reference(spec);
    core::MonitorOptions options = growth_monitor_options();
    options.accumulator = core::CovarianceAccumulator::kSharingPairs;
    ScenarioRunner runner(spec, options);
    std::size_t compared = 0;
    while (runner.ticks_run() < spec.ticks) {
      const std::size_t tick = runner.ticks_run();
      const auto inference = runner.step();
      ASSERT_EQ(inference.has_value(), ref.inferences[tick].has_value())
          << spec.name << " tick " << tick;
      if (!inference) continue;
      ++compared;
      EXPECT_LE(
          linalg::max_abs_diff(inference->loss, ref.inferences[tick]->loss),
          1e-10)
          << spec.name << " tick " << tick;
    }
    EXPECT_EQ(compared, spec.ticks - spec.window) << spec.name;
    EXPECT_EQ(runner.monitor().streaming_equations()->refactorizations(), 1u)
        << spec.name;
  }
}

}  // namespace
}  // namespace losstomo::scenario
