// Plain-text trace formats so LIA can run on external measurements.
//
// Three files describe a measurement campaign (whitespace-separated, '#'
// comments):
//
//  topology file:  one header line `nodes <nv>`, then `as <node> <as_id>`
//                  lines (optional) and `edge <from> <to>` lines; the edge
//                  id is its 0-based line order.
//  paths file:     one path per line: `<source> <destination> <edge>...`
//  snapshot file:  one snapshot per line: np path transmission rates phi_i
//                  in [0, 1] (space separated), in the paths-file order.
//
// These mirror what a traceroute + probing pipeline (paper §7.1) would
// emit, and are exactly what examples/lia_cli consumes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "net/path.hpp"
#include "stats/moments.hpp"

namespace losstomo::io {

/// Writes/reads the graph (node count, AS annotations, edges).
void write_topology(std::ostream& os, const net::Graph& g);
net::Graph read_topology(std::istream& is);

/// Writes/reads measurement paths (edge-id sequences).
void write_paths(std::ostream& os, const std::vector<net::Path>& paths);
std::vector<net::Path> read_paths(std::istream& is);

/// Writes/reads snapshots of per-path transmission rates phi in [0, 1].
/// Readers return a SnapshotMatrix of Y = log phi (ready for Lia::learn);
/// `raw=true` keeps phi untransformed.
void write_snapshots(std::ostream& os,
                     const std::vector<std::vector<double>>& phi_rows);
stats::SnapshotMatrix read_snapshots(std::istream& is, bool log_transform = true);

/// File-path conveniences; throw std::runtime_error on I/O failure.
void save_topology(const std::string& file, const net::Graph& g);
net::Graph load_topology(const std::string& file);
void save_paths(const std::string& file, const std::vector<net::Path>& paths);
std::vector<net::Path> load_paths(const std::string& file);
void save_snapshots(const std::string& file,
                    const std::vector<std::vector<double>>& phi_rows);
stats::SnapshotMatrix load_snapshots(const std::string& file,
                                     bool log_transform = true);

}  // namespace losstomo::io
