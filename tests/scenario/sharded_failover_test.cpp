// Crash drills for the SHARDED monitor: checkpoint/restore of a
// ShardedMonitor-backed ScenarioRunner mid-scenario must resume
// bit-identically with the cached factor carried across (exactly one
// factorization per resumed run), the per-shard accumulators and the
// boundary shard rebuilt from the image, and a shard-count mismatch
// between the image and the restoring runner rejected with a typed
// CheckpointError before any state is touched.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/sharded_moments.hpp"
#include "io/checkpoint.hpp"
#include "linalg/matrix.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace losstomo::scenario {
namespace {

// The failover-drill mesh instance (see failover_test.cpp): every event
// type that touches monitor state happens before the kill window ends.
ScenarioSpec drill_spec() {
  ScenarioSpec spec;
  spec.name = "sharded-failover-drill";
  spec.topology.kind = TopologySpec::Kind::kMesh;
  spec.topology.nodes = 40;
  spec.topology.hosts = 24;
  spec.topology.seed = 3;
  spec.window = 25;
  spec.ticks = 60;
  spec.seed = 11;
  spec.p = 0.6;
  spec.probes = 600;
  spec.min_good_loss = 0.002;
  spec.reserve_paths = 3;
  spec.events = {
      {.tick = 30, .type = EventType::kPathLeave, .path = 3},
      {.tick = 34, .type = EventType::kPathJoin, .path = 3},
      {.tick = 45, .type = EventType::kRouteChange, .path = 5},
      {.tick = 50, .type = EventType::kLinkDown, .link = 2},
      {.tick = 55, .type = EventType::kGrow, .count = 2},
  };
  return spec;
}

// Link-discovery drill over the constructive branching-tree family: the
// restore path must rebuild the sharded accumulator mid-growth, after the
// link universe has already widened.
ScenarioSpec grow_links_drill_spec() {
  ScenarioSpec spec;
  spec.name = "sharded-grow-links-drill";
  spec.topology.kind = TopologySpec::Kind::kBranchingTree;
  spec.topology.depth = 3;
  spec.topology.branching = 4;
  spec.topology.extra_leaves = 3;
  spec.topology.seed = 5;
  spec.window = 30;
  spec.ticks = 70;
  spec.seed = 11;
  spec.p = 0.6;
  spec.probes = 800;
  spec.min_good_loss = 0.002;
  spec.reserve_paths = 3;
  spec.events = {
      {.tick = 40, .type = EventType::kGrowLinks, .count = 2},
      {.tick = 55, .type = EventType::kGrowLinks, .count = 1},
  };
  return spec;
}

core::MonitorOptions sharded_options(std::size_t shards,
                                     std::size_t threads = 1) {
  core::MonitorOptions options;
  options.accumulator = core::CovarianceAccumulator::kSharingPairs;
  options.shards = shards;
  options.lia.variance.threads = threads;
  options.lia.variance.factor_flip_threshold = 1u << 20;
  options.lia.variance.factor_update_cap = 1u << 20;
  return options;
}

struct UninterruptedRun {
  std::vector<std::optional<linalg::Vector>> losses;  // per tick
  std::vector<std::vector<std::uint8_t>> images;      // checkpoint per tick
  std::size_t refactorizations = 0;
};

UninterruptedRun uninterrupted(const ScenarioSpec& spec,
                               const core::MonitorOptions& options) {
  UninterruptedRun run;
  ScenarioRunner runner(spec, options);
  while (runner.ticks_run() < spec.ticks) {
    io::CheckpointWriter writer;
    runner.save_state(writer);
    run.images.push_back(writer.finish());
    const auto inference = runner.step();
    run.losses.push_back(inference
                             ? std::optional<linalg::Vector>(inference->loss)
                             : std::nullopt);
  }
  const auto* eqs = runner.monitor().streaming_equations();
  EXPECT_NE(eqs, nullptr);
  if (eqs) run.refactorizations = eqs->refactorizations();
  return run;
}

// Restores a fresh sharded runner from images[kill_at], finishes the
// scenario, and checks inferences, the factor cache, and the rebuilt
// shard bookkeeping.
void expect_sharded_resume(const ScenarioSpec& spec,
                           const core::MonitorOptions& options,
                           const UninterruptedRun& ref, std::size_t kill_at,
                           const std::string& label) {
  ScenarioRunner runner(spec, options);
  auto reader = io::CheckpointReader::from_bytes(ref.images[kill_at]);
  runner.restore_state(reader);
  ASSERT_EQ(runner.ticks_run(), kill_at) << label;
  while (runner.ticks_run() < spec.ticks) {
    const std::size_t tick = runner.ticks_run();
    const auto inference = runner.step();
    ASSERT_EQ(inference.has_value(), ref.losses[tick].has_value())
        << label << " tick " << tick;
    if (!inference) continue;
    // Bit-identical, not merely close: restore must be exact resumption.
    EXPECT_EQ(linalg::max_abs_diff(inference->loss, *ref.losses[tick]), 0.0)
        << label << " tick " << tick;
    EXPECT_EQ(runner.monitor().variances().jitter_used, 0.0)
        << label << " tick " << tick;
  }
  const auto* eqs = runner.monitor().streaming_equations();
  ASSERT_NE(eqs, nullptr) << label;
  EXPECT_EQ(eqs->refactorizations(), ref.refactorizations) << label;
  EXPECT_EQ(eqs->refactorizations(), 1u) << label;
  EXPECT_EQ(eqs->downdate_fallbacks(), 0u) << label;

  // The restored accumulator is sharded again, with coherent ownership.
  const auto* acc = runner.monitor().sharded_accumulator();
  ASSERT_NE(acc, nullptr) << label;
  EXPECT_EQ(acc->shard_count(), options.shards) << label;
  std::size_t paths = 0;
  std::size_t pairs = acc->cross_shard_pairs();
  for (std::size_t s = 0; s < acc->shard_count(); ++s) {
    paths += acc->shard_path_count(s);
    pairs += acc->shard_pair_count(s);
  }
  EXPECT_EQ(paths, runner.monitor().routing().rows()) << label;
  EXPECT_EQ(pairs, acc->pair_store()->pair_count()) << label;
  EXPECT_GT(acc->merges(), 0u) << label;
}

TEST(ShardedFailover, KillAtEveryTickResumesBitIdentically) {
  const auto spec = drill_spec();
  const auto options = sharded_options(/*shards=*/3);
  const auto ref = uninterrupted(spec, options);
  ASSERT_EQ(ref.images.size(), spec.ticks);
  ASSERT_EQ(ref.refactorizations, 1u);
  for (std::size_t kill_at = 1; kill_at < spec.ticks; ++kill_at) {
    expect_sharded_resume(spec, options, ref, kill_at,
                          "kill_at=" + std::to_string(kill_at));
  }
}

TEST(ShardedFailover, GrowLinksDrillResumesAcrossUniverseGrowth) {
  const auto spec = grow_links_drill_spec();
  for (const std::size_t shards : {2u, 5u}) {
    const auto options = sharded_options(shards);
    const auto ref = uninterrupted(spec, options);
    ASSERT_EQ(ref.refactorizations, 1u) << "shards=" << shards;
    // Curated kill points: mid-warmup, right after the window fills,
    // straight after each grow_links burst, and late in the run.
    for (const std::size_t kill_at : {12u, 31u, 41u, 56u, 65u}) {
      expect_sharded_resume(spec, options, ref, kill_at,
                            "shards=" + std::to_string(shards) +
                                "/kill_at=" + std::to_string(kill_at));
    }
  }
}

TEST(ShardedFailover, ShardCountMismatchIsRefused) {
  const auto spec = drill_spec();
  const auto options = sharded_options(/*shards=*/3);
  ScenarioRunner runner(spec, options);
  while (runner.ticks_run() < 30) (void)runner.step();
  io::CheckpointWriter writer;
  runner.save_state(writer);
  const auto image = writer.finish();

  // A runner partitioned differently — and an unsharded one — must both
  // refuse the image with a typed mismatch, not adopt a half-translated
  // accumulator.
  for (const std::size_t other_shards : {2u, 0u}) {
    const auto other_options = other_shards > 0
                                   ? sharded_options(other_shards)
                                   : core::MonitorOptions{};
    ScenarioRunner other(spec, other_options);
    auto reader = io::CheckpointReader::from_bytes(image);
    try {
      other.restore_state(reader);
      FAIL() << "accepted a shards=3 image into shards=" << other_shards;
    } catch (const io::CheckpointError& e) {
      EXPECT_EQ(e.kind(), io::CheckpointErrorKind::kMismatch)
          << "shards=" << other_shards;
    }
  }

  // A matching runner still restores the very same image and finishes.
  ScenarioRunner matching(spec, options);
  auto reader = io::CheckpointReader::from_bytes(image);
  matching.restore_state(reader);
  EXPECT_EQ(matching.ticks_run(), 30u);
  while (matching.ticks_run() < spec.ticks) (void)matching.step();
  EXPECT_EQ(matching.outcome().ticks, spec.ticks);
}

}  // namespace
}  // namespace losstomo::scenario
