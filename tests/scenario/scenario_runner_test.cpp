// ScenarioRunner mechanics: universe layout, event application, spec
// validation against the generated topology, and determinism (two runners
// over one spec see identical snapshots and produce identical outcomes).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/monitor.hpp"
#include "linalg/matrix.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace losstomo::scenario {
namespace {

ScenarioSpec small_mesh_spec() {
  ScenarioSpec spec;
  spec.name = "runner-test";
  spec.topology.kind = TopologySpec::Kind::kMesh;
  spec.topology.nodes = 40;
  spec.topology.hosts = 10;
  spec.topology.seed = 3;
  spec.window = 10;
  spec.ticks = 40;
  spec.seed = 5;
  spec.probes = 200;
  spec.min_good_loss = 0.002;
  spec.reserve_paths = 2;
  spec.events = {
      {.tick = 12, .type = EventType::kPathLeave, .path = 1},
      {.tick = 15, .type = EventType::kPathJoin, .path = 1},
      {.tick = 18, .type = EventType::kRouteChange, .path = 2},
      {.tick = 20, .type = EventType::kLinkDown, .link = 0},
      {.tick = 24, .type = EventType::kLinkUp, .link = 0},
      {.tick = 26, .type = EventType::kRegimeShift, .value = 0.3},
      {.tick = 28, .type = EventType::kGrow, .count = 2},
  };
  return spec;
}

TEST(ScenarioRunner, LaysOutUniverseAndAppliesEvents) {
  ScenarioRunner runner(small_mesh_spec(), {});
  const std::size_t base = runner.base_path_count();
  // Universe = (base - reserve) initial rows + 1 reroute alternate + 2
  // reserve rows appended in event order.
  EXPECT_EQ(runner.universe().path_count(), base + 1);
  EXPECT_EQ(runner.monitor().routing().rows(), base - 2);

  std::size_t events_seen = 0;
  const auto outcome = runner.run(
      [&](std::size_t tick, std::size_t events,
          const std::optional<core::LossInference>& inference) {
        events_seen += events;
        if (tick < 10) {
          EXPECT_FALSE(inference.has_value());
        } else {
          EXPECT_TRUE(inference.has_value()) << tick;
        }
      });
  EXPECT_EQ(outcome.ticks, 40u);
  EXPECT_EQ(outcome.events_applied, 7u);
  EXPECT_EQ(events_seen, 7u);
  EXPECT_EQ(outcome.diagnosed, 30u);
  // Path 2's old route left, its alternate + 2 grown paths joined.
  EXPECT_EQ(outcome.active_paths_end, base - 2 - 1 + 1 + 2);
  // Monitor learned every appended row at its universe index.
  EXPECT_EQ(runner.monitor().routing().rows(), runner.universe().path_count());
  EXPECT_FALSE(runner.monitor().path_active(2));
  EXPECT_GT(outcome.steady_tick_seconds, 0.0);
  EXPECT_GT(outcome.event_tick_seconds, 0.0);
}

TEST(ScenarioRunner, DeterministicAcrossRuns) {
  ScenarioRunner a(small_mesh_spec(), {});
  ScenarioRunner b(small_mesh_spec(), {});
  while (a.ticks_run() < a.spec().ticks) {
    const auto ia = a.step();
    const auto ib = b.step();
    ASSERT_EQ(ia.has_value(), ib.has_value());
    if (!ia) continue;
    EXPECT_EQ(linalg::max_abs_diff(ia->loss, ib->loss), 0.0);
  }
}

TEST(ScenarioRunner, InitialPathsStartRetired) {
  auto spec = small_mesh_spec();
  spec.events.clear();
  spec.reserve_paths = 0;
  spec.initial_paths = 5;
  ScenarioRunner runner(spec, {});
  EXPECT_EQ(runner.monitor().active_path_count(), 5u);
  for (std::size_t i = 5; i < runner.monitor().routing().rows(); ++i) {
    EXPECT_FALSE(runner.monitor().path_active(i));
  }
}

TEST(ScenarioRunner, ValidatesSpecAgainstTopology) {
  // Reroute on a tree: no alternate route exists.
  {
    ScenarioSpec spec;
    spec.topology.kind = TopologySpec::Kind::kTree;
    spec.topology.nodes = 60;
    spec.window = 8;
    spec.ticks = 20;
    spec.events = {{.tick = 10, .type = EventType::kRouteChange, .path = 0}};
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
  }
  // A second reroute of the same path (its alternate would duplicate).
  {
    auto spec = small_mesh_spec();
    spec.events = {
        {.tick = 12, .type = EventType::kRouteChange, .path = 2},
        {.tick = 20, .type = EventType::kRouteChange, .path = 2},
    };
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
  }
  // Grow beyond the reserve pool.
  {
    auto spec = small_mesh_spec();
    spec.events = {{.tick = 12, .type = EventType::kGrow, .count = 99}};
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
  }
  // Join of an out-of-range path.
  {
    auto spec = small_mesh_spec();
    spec.events = {{.tick = 12, .type = EventType::kPathJoin, .path = 10000}};
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
  }
  // Link event on an unknown link.
  {
    auto spec = small_mesh_spec();
    spec.events = {{.tick = 12, .type = EventType::kLinkDown, .link = 100000}};
    EXPECT_THROW(ScenarioRunner(spec, {}), std::invalid_argument);
  }
}

TEST(ScenarioRunner, LinkDownRaisesMeasuredLossOnAffectedPaths) {
  auto spec = small_mesh_spec();
  spec.p = 0.0;  // only the forced failure produces meaningful loss
  spec.events = {{.tick = 15, .type = EventType::kLinkDown, .link = 0,
                  .value = 0.5}};
  ScenarioRunner runner(spec, {});
  // Find a universe path through virtual link 0.
  const auto& r = runner.universe().matrix();
  std::size_t victim = r.rows();
  for (std::size_t i = 0; i < runner.monitor().routing().rows(); ++i) {
    if (r.contains(i, 0)) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, r.rows());
  double before = 0.0, after = 0.0;
  while (runner.ticks_run() < spec.ticks) {
    (void)runner.step();
    const double loss = 1.0 - runner.last_snapshot().path_trans[victim];
    if (runner.ticks_run() - 1 < 15) {
      before = std::max(before, loss);
    } else {
      after = std::max(after, loss);
    }
  }
  // Forced 50% loss dwarfs anything the stationary regime produced.
  EXPECT_GT(after, 0.3);
  EXPECT_LT(before, 0.3);
}

}  // namespace
}  // namespace losstomo::scenario
