#include "util/args.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace losstomo::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.starts_with("--")) {
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        // `--key value`: the value is the next argv token.  A following
        // token that is itself a flag means the value was forgotten —
        // swallowing it would silently misparse both arguments.
        if (arg.empty() || i + 1 >= argc ||
            std::string_view(argv[i + 1]).starts_with("--")) {
          throw std::invalid_argument("flag --" + arg + " expects a value");
        }
        values_[arg] = argv[++i];
        continue;
      }
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("expected key=value argument, got: " + arg);
    }
    values_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
}

std::optional<std::string> Args::get(const std::string& key) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

int Args::get_int(const std::string& key, int def) const {
  const auto v = get(key);
  return v ? std::stoi(*v) : def;
}

std::size_t Args::get_size(const std::string& key, std::size_t def) const {
  const auto v = get(key);
  return v ? static_cast<std::size_t>(std::stoull(*v)) : def;
}

double Args::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  return v ? std::stod(*v) : def;
}

bool Args::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  if (*v == "1" || *v == "true" || *v == "yes") return true;
  if (*v == "0" || *v == "false" || *v == "no") return false;
  throw std::invalid_argument("bad boolean for " + key + ": " + *v);
}

std::string Args::get_string(const std::string& key, std::string def) const {
  const auto v = get(key);
  return v ? *v : std::move(def);
}

std::vector<double> Args::get_doubles(const std::string& key,
                                      std::vector<double> def) const {
  const auto v = get(key);
  if (!v) return def;
  std::vector<double> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}

std::vector<int> Args::get_ints(const std::string& key,
                                std::vector<int> def) const {
  const auto v = get(key);
  if (!v) return def;
  std::vector<int> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}

void Args::finish() const {
  for (const auto& [key, value] : values_) {
    if (!consumed_.contains(key)) {
      throw std::invalid_argument("unknown argument: " + key + "=" + value);
    }
  }
}

bool Args::full_scale() {
  const char* env = std::getenv("REPRO_FULL");
  return env != nullptr && std::string(env) == "1";
}

}  // namespace losstomo::util
