// The single registry of LTCP section tags.
//
// Every tagged section in a checkpoint image is opened with
// CheckpointWriter::begin_section and re-validated with
// CheckpointReader::expect_section.  The PR 8 store-order bug was a
// save/restore asymmetry that survived review because the tag literals —
// and therefore the section inventory — were scattered across call
// sites.  This header is now the only place a section tag may be
// *defined*: call sites reference these constants, and the repo lint
// (tools/losstomo_lint.py, rule checkpoint-symmetry) rejects raw string
// literals passed to begin_section/expect_section anywhere else, and
// rejects duplicate tag values here.
//
// Rules for adding a tag:
//   * exactly four ASCII characters (pad with a trailing space, as
//     kRng does) — CheckpointWriter::begin_section enforces the width;
//   * unique across this file — two components sharing a tag would make
//     a truncated or reordered image parse as the wrong section;
//   * name the owning component, not the payload shape.
#pragma once

namespace losstomo::io::tags {

// stats/ — leaf state serialized inside larger component sections.
inline constexpr char kRng[] = "RNG ";              // stats::Rng
inline constexpr char kRunningStat[] = "RSTA";      // stats::RunningStat
inline constexpr char kStreamingMoments[] = "SMOM"; // stats::StreamingMoments
inline constexpr char kChurnLedger[] = "CHRN";      // stats::PathChurnLedger

// core/ — the estimation engine.
inline constexpr char kSharingPairs[] = "PAIR";     // core::SharingPairStore
inline constexpr char kPairMoments[] = "PMOM";      // core::PairMoments
inline constexpr char kShardedPairMoments[] = "SPMO";  // core::ShardedPairMoments
inline constexpr char kNormalEquations[] = "SNEQ";  // core::StreamingNormalEquations
inline constexpr char kVarianceEstimate[] = "VEST"; // core::VarianceEstimate
inline constexpr char kMonitor[] = "LMON";          // core::LiaMonitor

// sim/ + scenario/ — the workload side of a resumable run.
inline constexpr char kProbeSim[] = "PSIM";         // sim::SnapshotSimulator
inline constexpr char kScenarioRunner[] = "SRUN";   // scenario::ScenarioRunner

}  // namespace losstomo::io::tags
