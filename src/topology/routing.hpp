// Deterministic shortest-path routing between beacons and destinations.
//
// Forwarding is destination-based, as in IP: for every destination we build
// a reverse shortest-path tree (unit weights, ties broken by smallest node
// id) giving each node a unique next hop.  Paths to a common destination
// therefore merge and never diverge; paths to *different* destinations can
// still exhibit the meet-diverge-meet pattern that violates Assumption T.2,
// which is why route_paths can optionally run the fluttering sanitizer
// (mirroring the paper's PlanetLab methodology, §7.1).
#pragma once

#include <vector>

#include "net/fluttering.hpp"
#include "net/graph.hpp"
#include "net/path.hpp"

namespace losstomo::topology {

struct RoutingOptions {
  /// Drop paths violating T.2 after route computation.
  bool sanitize_fluttering = true;
  /// Skip beacon==destination pairs (always true in the paper's setups).
  bool skip_self = true;
};

struct RoutingResult {
  std::vector<net::Path> paths;
  std::size_t unreachable_pairs = 0;
  std::size_t fluttering_removed = 0;
};

/// Routes every (beacon, destination) pair.  Unreachable pairs are skipped
/// and counted.
RoutingResult route_paths(const net::Graph& g,
                          const std::vector<net::NodeId>& beacons,
                          const std::vector<net::NodeId>& destinations,
                          const RoutingOptions& options = {});

/// Next-hop table toward `destination`: for each node, the edge to take
/// (or net::kNoAs when unreachable / at the destination).  Exposed for
/// tests and diagnostics.
std::vector<net::EdgeId> next_hop_toward(const net::Graph& g,
                                         net::NodeId destination);

}  // namespace losstomo::topology
