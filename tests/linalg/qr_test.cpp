#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "stats/rng.hpp"

namespace losstomo::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, stats::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.gaussian();
  }
  return m;
}

TEST(HouseholderQr, SolvesSquareSystemExactly) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{5.0, 10.0};
  const auto x = HouseholderQr(a).solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(HouseholderQr, LeastSquaresMatchesNormalEquations) {
  stats::Rng rng(42);
  const auto a = random_matrix(20, 5, rng);
  Vector b(20);
  for (auto& v : b) v = rng.gaussian();
  const auto x = HouseholderQr(a).solve(b);
  // Normal equations residual: A^T (A x - b) = 0.
  const auto ax = a.multiply(x);
  const auto resid = subtract(ax, b);
  const auto grad = a.multiply_transpose(resid);
  EXPECT_LT(norm2(grad), 1e-9);
}

TEST(HouseholderQr, ThrowsOnWideMatrix) {
  const Matrix a(2, 3);
  EXPECT_THROW(HouseholderQr{a}, std::invalid_argument);
}

TEST(HouseholderQr, DetectsRankDeficiency) {
  // Third column = first + second.
  Matrix a(4, 3);
  stats::Rng rng(7);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = rng.gaussian();
    a(i, 1) = rng.gaussian();
    a(i, 2) = a(i, 0) + a(i, 1);
  }
  const HouseholderQr qr(a);
  EXPECT_FALSE(qr.full_column_rank());
  const Vector b{1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(qr.solve(b), std::runtime_error);
}

TEST(HouseholderQr, FullColumnRankOnWellConditioned) {
  stats::Rng rng(3);
  const auto a = random_matrix(10, 4, rng);
  EXPECT_TRUE(HouseholderQr(a).full_column_rank());
}

TEST(HouseholderQr, ReusableForMultipleRhs) {
  const Matrix a{{1.0, 0.0}, {0.0, 2.0}, {1.0, 1.0}};
  const HouseholderQr qr(a);
  const auto x1 = qr.solve(Vector{1.0, 0.0, 1.0});
  const auto x2 = qr.solve(Vector{0.0, 2.0, 1.0});
  EXPECT_NEAR(x1[0], 1.0, 1e-12);
  EXPECT_NEAR(x2[1], 1.0, 1e-12);
}

TEST(PivotedQr, RankOfIdentity) {
  EXPECT_EQ(PivotedQr(Matrix::identity(5)).rank(), 5u);
}

TEST(PivotedQr, RankOfZeroMatrix) {
  EXPECT_EQ(PivotedQr(Matrix(4, 3)).rank(), 0u);
}

TEST(PivotedQr, RankOfOuterProduct) {
  // u v^T has rank 1.
  Matrix a(5, 4);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      a(i, j) = static_cast<double>(i + 1) * static_cast<double>(j + 2);
    }
  }
  EXPECT_EQ(PivotedQr(a).rank(), 1u);
}

TEST(PivotedQr, BasicSolutionSolvesFullRankSystem) {
  const Matrix a{{2.0, 0.0}, {0.0, 4.0}, {0.0, 0.0}};
  const Vector b{2.0, 8.0, 0.0};
  const auto x = PivotedQr(a).solve_basic(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(PivotedQr, BasicSolutionFitsRankDeficientSystem) {
  // Columns 0 and 1 identical: any split between them fits; the basic
  // solution must still reproduce b.
  Matrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = static_cast<double>(i + 1);
    a(i, 2) = (i == 0) ? 1.0 : 0.0;
  }
  const Vector b{3.0, 4.0, 6.0};
  const PivotedQr qr(a);
  EXPECT_EQ(qr.rank(), 2u);
  const auto x = qr.solve_basic(b);
  const auto fitted = a.multiply(x);
  // b = 2*(col0) + 1*(col2) is representable exactly.
  EXPECT_NEAR(fitted[1], 4.0, 1e-10);
  EXPECT_NEAR(fitted[2], 6.0, 1e-10);
}

TEST(PivotedQr, PermutationIsValid) {
  stats::Rng rng(9);
  const auto a = random_matrix(6, 6, rng);
  const PivotedQr qr(a);
  const auto& perm = qr.permutation();
  std::vector<bool> seen(6, false);
  for (const auto p : perm) {
    ASSERT_LT(p, 6u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(MatrixRank, HandlesWideMatrices) {
  // 2 x 4 with independent rows.
  const Matrix a{{1.0, 0.0, 1.0, 2.0}, {0.0, 1.0, 1.0, 3.0}};
  EXPECT_EQ(matrix_rank(a), 2u);
}

TEST(MatrixRank, EmptyMatrixIsRankZero) {
  EXPECT_EQ(matrix_rank(Matrix()), 0u);
}

TEST(LeastSquares, RecoversExactSolution) {
  stats::Rng rng(11);
  const auto a = random_matrix(30, 6, rng);
  Vector x_true(6);
  for (auto& v : x_true) v = rng.gaussian();
  const auto b = a.multiply(x_true);
  const auto x = least_squares(a, b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-9);
}

// Property sweep: QR least squares satisfies the normal equations across
// shapes and seeds.
class QrProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, int>> {};

TEST_P(QrProperty, NormalEquationsResidualVanishes) {
  const auto [rows, cols, seed] = GetParam();
  stats::Rng rng(static_cast<std::uint64_t>(seed));
  const auto a = random_matrix(rows, cols, rng);
  Vector b(rows);
  for (auto& v : b) v = rng.gaussian();
  const auto x = HouseholderQr(a).solve(b);
  const auto grad = a.multiply_transpose(subtract(a.multiply(x), b));
  EXPECT_LT(norm2(grad), 1e-8 * static_cast<double>(rows));
}

TEST_P(QrProperty, PivotedRankMatchesConstruction) {
  const auto [rows, cols, seed] = GetParam();
  stats::Rng rng(static_cast<std::uint64_t>(seed) + 1000);
  // Build a matrix with known rank r = cols - 1 by duplicating a column.
  auto a = random_matrix(rows, cols, rng);
  if (cols >= 2) {
    for (std::size_t i = 0; i < rows; ++i) a(i, cols - 1) = a(i, 0);
    EXPECT_EQ(PivotedQr(a).rank(), cols - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrProperty,
    ::testing::Combine(::testing::Values<std::size_t>(8, 16, 40),
                       ::testing::Values<std::size_t>(2, 5, 8),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace losstomo::linalg
