// Scenario trace record/replay: a run recorded through a churn timeline
// (leave/join/reroute/link-down/grow — everything that changes the known
// prefix or the feed) must replay to bit-identical inferences with the
// simulator bypassed, at 1, 2, and 8 threads, and a trace that does not
// match the scenario must be rejected with a typed error.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "io/binary_trace.hpp"
#include "io/checkpoint.hpp"
#include "linalg/matrix.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "test_util.hpp"

namespace losstomo::scenario {
namespace {

std::string temp_file(const std::string& name) {
  return losstomo::testing::scratch_file(name);
}

ScenarioSpec replay_spec() {
  ScenarioSpec spec;
  spec.name = "replay-drill";
  spec.topology.kind = TopologySpec::Kind::kMesh;
  spec.topology.nodes = 40;
  spec.topology.hosts = 24;
  spec.topology.seed = 3;
  spec.window = 20;
  spec.ticks = 50;
  spec.seed = 11;
  spec.p = 0.6;
  spec.probes = 600;
  spec.min_good_loss = 0.002;
  spec.reserve_paths = 3;
  spec.events = {
      {.tick = 25, .type = EventType::kPathLeave, .path = 3},
      {.tick = 28, .type = EventType::kPathJoin, .path = 3},
      {.tick = 35, .type = EventType::kRouteChange, .path = 5},
      {.tick = 40, .type = EventType::kLinkDown, .link = 2},
      {.tick = 44, .type = EventType::kGrow, .count = 2},
  };
  return spec;
}

std::vector<std::optional<linalg::Vector>> run_collecting(
    ScenarioRunner& runner) {
  std::vector<std::optional<linalg::Vector>> losses;
  runner.run([&](std::size_t, std::size_t,
                 const std::optional<core::LossInference>& inf) {
    losses.push_back(inf ? std::optional<linalg::Vector>(inf->loss)
                         : std::nullopt);
  });
  return losses;
}

TEST(ScenarioReplay, ReplayIsBitIdenticalAcrossThreadCounts) {
  const auto spec = replay_spec();
  const auto trace = temp_file("feed.bin");

  // Record once (single-threaded reference).
  core::MonitorOptions record_options;
  record_options.lia.variance.threads = 1;
  ScenarioRunner recorder(spec, record_options);
  recorder.record_trace(trace);
  EXPECT_FALSE(recorder.replaying());
  const auto reference = run_collecting(recorder);
  const auto* ref_eqs = recorder.monitor().streaming_equations();
  ASSERT_NE(ref_eqs, nullptr);

  {
    // The recorded trace is universe-width, log-flagged, one row per tick.
    const auto reader = io::BinaryTraceReader::open(trace);
    EXPECT_EQ(reader.paths(), recorder.universe().path_count());
    EXPECT_EQ(reader.snapshots(), spec.ticks);
    EXPECT_TRUE(reader.log_transformed());
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    core::MonitorOptions options;
    options.lia.variance.threads = threads;
    ScenarioRunner replayer(spec, options);
    replayer.replay_trace(trace);
    EXPECT_TRUE(replayer.replaying());
    const auto replayed = run_collecting(replayer);
    const std::string label = "threads=" + std::to_string(threads);
    ASSERT_EQ(replayed.size(), reference.size()) << label;
    for (std::size_t t = 0; t < reference.size(); ++t) {
      ASSERT_EQ(replayed[t].has_value(), reference[t].has_value())
          << label << " tick " << t;
      if (!reference[t]) continue;
      ASSERT_EQ(replayed[t]->size(), reference[t]->size()) << label;
      for (std::size_t k = 0; k < reference[t]->size(); ++k) {
        EXPECT_EQ((*replayed[t])[k], (*reference[t])[k])
            << label << " tick " << t << " link " << k;
      }
    }
    const auto* eqs = replayer.monitor().streaming_equations();
    ASSERT_NE(eqs, nullptr) << label;
    EXPECT_EQ(eqs->refactorizations(), ref_eqs->refactorizations()) << label;
    EXPECT_EQ(eqs->rank1_updates(), ref_eqs->rank1_updates()) << label;
    // Events still applied on schedule during replay.
    EXPECT_EQ(replayer.events_applied(), recorder.events_applied()) << label;
  }
}

TEST(ScenarioReplay, RejectsMismatchedTraces) {
  const auto spec = replay_spec();

  // Wrong arity: a trace over a different universe.
  const auto narrow = temp_file("narrow.bin");
  {
    io::BinaryTraceWriter writer(narrow, 4, /*log_transformed=*/true);
    const std::vector<double> row{0.0, 0.0, 0.0, 0.0};
    for (std::size_t t = 0; t < spec.ticks; ++t) writer.append(row);
    writer.finish();
  }
  {
    ScenarioRunner runner(spec);
    try {
      runner.replay_trace(narrow);
      FAIL() << "wrong-arity trace accepted";
    } catch (const io::CheckpointError& e) {
      EXPECT_EQ(e.kind(), io::CheckpointErrorKind::kMismatch);
    }
  }

  ScenarioRunner probe(spec);
  const std::size_t universe = probe.universe().path_count();

  // Raw-phi trace (not a recorded feed).
  const auto raw = temp_file("raw.bin");
  {
    io::BinaryTraceWriter writer(raw, universe, /*log_transformed=*/false);
    const std::vector<double> row(universe, 0.5);
    for (std::size_t t = 0; t < spec.ticks; ++t) writer.append(row);
    writer.finish();
  }
  {
    ScenarioRunner runner(spec);
    try {
      runner.replay_trace(raw);
      FAIL() << "raw-phi trace accepted";
    } catch (const io::CheckpointError& e) {
      EXPECT_EQ(e.kind(), io::CheckpointErrorKind::kMismatch);
    }
  }

  // Too few snapshots for the timeline.
  const auto stub = temp_file("short.bin");
  {
    io::BinaryTraceWriter writer(stub, universe, /*log_transformed=*/true);
    const std::vector<double> row(universe, 0.0);
    for (std::size_t t = 0; t + 1 < spec.ticks; ++t) writer.append(row);
    writer.finish();
  }
  {
    ScenarioRunner runner(spec);
    try {
      runner.replay_trace(stub);
      FAIL() << "short trace accepted";
    } catch (const io::CheckpointError& e) {
      EXPECT_EQ(e.kind(), io::CheckpointErrorKind::kMismatch);
    }
  }

  // A corrupt file surfaces the binary-trace failure surface unchanged.
  {
    ScenarioRunner runner(spec);
    try {
      runner.replay_trace(temp_file("missing.bin"));
      FAIL() << "missing trace accepted";
    } catch (const io::CheckpointError& e) {
      EXPECT_EQ(e.kind(), io::CheckpointErrorKind::kIo);
    }
  }
}

TEST(ScenarioReplay, RecordAndReplayAreMutuallyExclusive) {
  const auto spec = replay_spec();
  const auto trace = temp_file("exclusive.bin");
  {
    ScenarioRunner runner(spec);
    runner.record_trace(trace + ".rec");
    EXPECT_THROW(runner.replay_trace(trace), std::logic_error);
  }
  {
    ScenarioRunner recorder(spec);
    recorder.record_trace(trace);
    recorder.run();
  }
  ScenarioRunner runner(spec);
  runner.replay_trace(trace);
  EXPECT_THROW(runner.record_trace(trace + ".rec"), std::logic_error);
}

}  // namespace
}  // namespace losstomo::scenario
