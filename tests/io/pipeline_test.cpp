// Ingestion pipeline semantics and the binary-vs-text parity contract:
// every element transforms exactly as documented, the convert round trip
// is bit-identical in both directions, the blocked accumulator folds are
// state-identical to per-row pushes, and a monitor fed zero-copy off the
// mmap produces bit-identical inferences to the classic text loop at 1, 2,
// and 8 threads — factorization counters included.
#include "io/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/pair_moments.hpp"
#include "core/sharing_pairs.hpp"
#include "io/trace_io.hpp"
#include "sim/probe_sim.hpp"
#include "stats/rng.hpp"
#include "stats/streaming.hpp"
#include "test_util.hpp"

namespace losstomo::io {
namespace {

std::string temp_file(const std::string& name) {
  return losstomo::testing::scratch_file(name);
}

SnapshotBatch phi_batch(std::span<const double> values, std::size_t rows,
                        std::size_t paths) {
  return {.values = values, .rows = rows, .paths = paths,
          .log_transformed = false};
}

TEST(Pipeline, LogTransformMatchesSnapshotStreamExpression) {
  const std::vector<double> phi{1.0, 0.5, 0.0, 1e-12, 0.999, 2.5e-9};
  LogTransform log;
  CollectSink sink;
  log.to(sink);
  log.push(phi_batch(phi, 2, 3));
  log.finish();
  ASSERT_EQ(sink.rows(), 2u);
  EXPECT_TRUE(sink.log_transformed());
  for (std::size_t i = 0; i < phi.size(); ++i) {
    const double expected = std::log(std::max(phi[i], 1e-9));
    EXPECT_EQ(std::memcmp(&sink.values()[i], &expected, sizeof(double)), 0)
        << "value " << i;
  }
}

TEST(Pipeline, LogTransformIsBitIdenticalAtAnyThreadCount) {
  stats::Rng rng(5);
  std::vector<double> phi(64 * 1024);
  for (auto& v : phi) v = rng.uniform();
  std::vector<std::vector<double>> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    LogTransform log(threads);
    CollectSink sink;
    log.to(sink);
    log.push(phi_batch(phi, 64, 1024));
    results.push_back(sink.values());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Pipeline, LogTransformPassesTransformedBatchesThrough) {
  const std::vector<double> y{-0.5, -1.0};
  LogTransform log;
  CollectSink sink;
  log.to(sink);
  log.push({.values = y, .rows = 1, .paths = 2, .log_transformed = true});
  EXPECT_EQ(sink.values(), y);
  EXPECT_TRUE(sink.log_transformed());
}

TEST(Pipeline, ThinKeepsEveryKthAcrossBatchBoundaries) {
  // 7 rows arriving as batches of 3+2+2; keep_every=3 must keep global
  // rows 0, 3, 6 regardless of the batch seams.
  std::vector<double> rows(7);
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = double(i);
  Thin thin(3);
  CollectSink sink;
  thin.to(sink);
  thin.push(phi_batch(std::span(rows).subspan(0, 3), 3, 1));
  thin.push(phi_batch(std::span(rows).subspan(3, 2), 2, 1));
  thin.push(phi_batch(std::span(rows).subspan(5, 2), 2, 1));
  thin.finish();
  EXPECT_EQ(sink.values(), (std::vector<double>{0.0, 3.0, 6.0}));
}

TEST(Pipeline, ThinOneIsZeroCopyPassThrough) {
  const std::vector<double> rows{1.0, 2.0};
  Thin thin(1);
  struct SpanCheck final : Element {
    const double* expected = nullptr;
    void do_push(const SnapshotBatch& batch) override {
      EXPECT_EQ(batch.values.data(), expected);
    }
  } check;
  check.expected = rows.data();
  thin.to(check);
  thin.push(phi_batch(rows, 2, 1));
  EXPECT_THROW(Thin(0), std::invalid_argument);
}

TEST(Pipeline, ScaleConvertsUnitsAndRejectsLogStreams) {
  const std::vector<double> percent{50.0, 100.0};
  Scale scale(0.01);
  CollectSink sink;
  scale.to(sink);
  scale.push(phi_batch(percent, 1, 2));
  EXPECT_EQ(sink.values(), (std::vector<double>{0.5, 1.0}));
  EXPECT_THROW(scale.push({.values = percent, .rows = 1, .paths = 2,
                           .log_transformed = true}),
               std::logic_error);
}

TEST(Pipeline, MonitorSinkRejectsRawPhi) {
  const linalg::SparseBinaryMatrix r(2, {{0}, {1}});
  core::LiaMonitor monitor(r, {.window = 2});
  MonitorSink sink(monitor);
  const std::vector<double> phi{0.5, 0.5};
  EXPECT_THROW(sink.push(phi_batch(phi, 1, 2)), std::logic_error);
}

TEST(Pipeline, TextSnapshotSinkRejectsLogStreams) {
  std::ostringstream os;
  TextSnapshotSink sink(os);
  const std::vector<double> y{-0.5};
  EXPECT_THROW(sink.push({.values = y, .rows = 1, .paths = 1,
                          .log_transformed = true}),
               std::logic_error);
}

// -- Blocked accumulator folds ----------------------------------------------

TEST(Pipeline, StreamingMomentsPushBlockMatchesPerRowPushes) {
  const std::size_t np = 12, ticks = 37;
  stats::Rng rng(23);
  std::vector<double> flat(np * ticks);
  for (auto& v : flat) v = std::log(std::max(rng.uniform(), 1e-9));
  const stats::StreamingMomentsOptions options{.window = 9};
  stats::StreamingMoments per_row(np, options);
  stats::StreamingMoments blocked(np, options);
  for (std::size_t t = 0; t < ticks; ++t) {
    per_row.push(std::span(flat).subspan(t * np, np));
  }
  // Deliberately ragged block sizes, crossing window wraps and refreshes.
  std::size_t at = 0;
  for (const std::size_t rows : {1u, 7u, 2u, 13u, 9u, 5u}) {
    blocked.push_block(std::span(flat).subspan(at * np, rows * np), rows);
    at += rows;
  }
  ASSERT_EQ(at, ticks);
  EXPECT_EQ(per_row.pushes(), blocked.pushes());
  EXPECT_EQ(per_row.refreshes(), blocked.refreshes());
  for (std::size_t i = 0; i < np; ++i) {
    EXPECT_EQ(per_row.means()[i], blocked.means()[i]);
    for (std::size_t j = 0; j < np; ++j) {
      EXPECT_EQ(per_row.covariance(i, j), blocked.covariance(i, j));
    }
  }
  EXPECT_THROW(blocked.push_block(std::span(flat).subspan(0, np + 1), 1),
               std::invalid_argument);
}

TEST(Pipeline, PairMomentsPushBlockMatchesPerRowPushes) {
  stats::Rng mesh_rng(31);
  const auto mesh = losstomo::testing::make_random_mesh(30, 10, mesh_rng);
  const net::ReducedRoutingMatrix rrm(mesh.topo.graph, mesh.paths);
  const auto& r = rrm.matrix();
  const std::size_t np = r.rows();
  auto store = std::make_shared<core::SharingPairStore>(
      core::SharingPairStore::build(r));
  const stats::StreamingMomentsOptions options{.window = 8};
  core::PairMoments per_row(store, np, options);
  core::PairMoments blocked(store, np, options);
  stats::Rng rng(77);
  const std::size_t ticks = 21;
  std::vector<double> flat(np * ticks);
  for (auto& v : flat) v = std::log(std::max(rng.uniform(), 1e-9));
  for (std::size_t t = 0; t < ticks; ++t) {
    per_row.push(std::span(flat).subspan(t * np, np));
  }
  std::size_t at = 0;
  for (const std::size_t rows : {4u, 1u, 11u, 5u}) {
    blocked.push_block(std::span(flat).subspan(at * np, rows * np), rows);
    at += rows;
  }
  ASSERT_EQ(at, ticks);
  EXPECT_EQ(per_row.pushes(), blocked.pushes());
  for (std::size_t p = 0; p < store->pair_count(); ++p) {
    EXPECT_EQ(per_row.pair_covariance(p), blocked.pair_covariance(p));
  }
}

// -- Conversion round trips --------------------------------------------------

std::vector<std::vector<double>> simulated_campaign(
    const net::Graph& graph, const net::ReducedRoutingMatrix& rrm,
    std::size_t ticks) {
  sim::ScenarioConfig config;
  config.p = 0.15;
  sim::SnapshotSimulator simulator(graph, rrm, config, 99);
  std::vector<std::vector<double>> rows;
  for (std::size_t t = 0; t < ticks; ++t) {
    rows.push_back(simulator.next().path_trans);
  }
  return rows;
}

TEST(Pipeline, ConvertRoundTripsBitIdenticalDoublesBothWays) {
  stats::Rng rng(41);
  const auto mesh = losstomo::testing::make_random_mesh(26, 8, rng);
  const net::ReducedRoutingMatrix rrm(mesh.topo.graph, mesh.paths);
  const auto rows = simulated_campaign(mesh.topo.graph, rrm, 12);
  const auto text1 = temp_file("rt.snapshots");
  const auto bin1 = temp_file("rt1.bin");
  const auto text2 = temp_file("rt2.snapshots");
  const auto bin2 = temp_file("rt2.bin");
  save_snapshots(text1, rows);

  // text -> binary
  {
    auto opened = open_snapshot_source(text1);
    ASSERT_FALSE(opened.binary);
    BinaryTraceSink sink(bin1);
    EXPECT_EQ(opened.source->drain(sink), rows.size());
  }
  // binary -> text
  {
    auto opened = open_snapshot_source(bin1);
    ASSERT_TRUE(opened.binary);
    std::ofstream os(text2);
    TextSnapshotSink sink(os);
    EXPECT_EQ(opened.source->drain(sink), rows.size());
  }
  // text -> binary again
  {
    auto opened = open_snapshot_source(text2);
    BinaryTraceSink sink(bin2);
    EXPECT_EQ(opened.source->drain(sink), rows.size());
  }

  // Binary payloads bit-identical through the text detour: every double
  // survived both directions exactly.
  const auto a = BinaryTraceReader::open(bin1);
  const auto b = BinaryTraceReader::open(bin2);
  ASSERT_EQ(a.snapshots(), b.snapshots());
  ASSERT_EQ(a.paths(), b.paths());
  const auto ra = a.rows(0, a.snapshots());
  const auto rb = b.rows(0, b.snapshots());
  EXPECT_EQ(std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)), 0);
  // And the binary values are bit-identical to the simulated originals.
  for (std::size_t t = 0; t < rows.size(); ++t) {
    const auto row = a.row(t);
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(std::memcmp(&row[i], &rows[t][i], sizeof(double)), 0);
    }
  }
}

TEST(Pipeline, SimulatorSourceMatchesDirectSimulation) {
  stats::Rng rng(43);
  const auto mesh = losstomo::testing::make_random_mesh(24, 7, rng);
  const net::ReducedRoutingMatrix rrm(mesh.topo.graph, mesh.paths);
  sim::ScenarioConfig config;
  config.p = 0.2;
  sim::SnapshotSimulator direct(mesh.topo.graph, rrm, config, 7);
  sim::SnapshotSimulator piped(mesh.topo.graph, rrm, config, 7);
  const std::size_t ticks = 9;
  SimulatorSource source(piped, ticks);
  CollectSink sink;
  EXPECT_EQ(source.drain(sink, 4), ticks);
  ASSERT_EQ(sink.rows(), ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    const auto expected = direct.next().path_trans;
    const auto got = sink.row(t);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]);
    }
  }
}

// -- The acceptance criterion: binary vs text monitor parity ------------------

TEST(Pipeline, BinaryIngestionInferencesBitIdenticalToTextPath) {
  stats::Rng rng(53);
  const auto mesh = losstomo::testing::make_random_mesh(34, 12, rng);
  const net::ReducedRoutingMatrix rrm(mesh.topo.graph, mesh.paths);
  const std::size_t np = rrm.path_count();
  const std::size_t window = 14, ticks = 40;
  const auto campaign = simulated_campaign(mesh.topo.graph, rrm, ticks);
  const auto text_file = temp_file("parity.snapshots");
  const auto bin_file = temp_file("parity.bin");
  save_snapshots(text_file, campaign);
  {
    auto opened = open_snapshot_source(text_file);
    BinaryTraceSink sink(bin_file);
    opened.source->drain(sink);
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    core::MonitorOptions options{.window = window};
    options.lia.variance.threads = threads;
    const std::string label = "threads=" + std::to_string(threads);

    // Reference: the classic per-line text loop (SnapshotStream applies
    // the log transform itself).
    core::LiaMonitor text_monitor(rrm.matrix(), options);
    std::vector<linalg::Vector> text_inferences;
    {
      std::ifstream is(text_file);
      SnapshotStream stream(is);
      std::vector<double> y;
      while (stream.next(y)) {
        if (const auto inf = text_monitor.observe(y)) {
          text_inferences.push_back(inf->loss);
        }
      }
    }

    // Candidate: mmap -> zero-copy blocks -> LogTransform -> observe_block.
    core::LiaMonitor binary_monitor(rrm.matrix(), options);
    std::vector<linalg::Vector> binary_inferences;
    {
      const auto reader = BinaryTraceReader::open(bin_file);
      ASSERT_EQ(reader.paths(), np);
      BinaryTraceSource source(reader);
      LogTransform log(threads);
      MonitorSink sink(binary_monitor,
                       [&](std::size_t, const core::LossInference& inf) {
                         binary_inferences.push_back(inf.loss);
                       });
      log.to(sink);
      source.drain(log);
    }

    ASSERT_EQ(text_inferences.size(), ticks - window) << label;
    ASSERT_EQ(binary_inferences.size(), text_inferences.size()) << label;
    for (std::size_t t = 0; t < text_inferences.size(); ++t) {
      for (std::size_t k = 0; k < text_inferences[t].size(); ++k) {
        EXPECT_EQ(text_inferences[t][k], binary_inferences[t][k])
            << label << " tick " << t << " link " << k;
      }
    }
    // Same per-tick work on both paths: the factor cache behaved
    // identically (keep-all never refactorizes after the first learn).
    const auto* text_eqs = text_monitor.streaming_equations();
    const auto* binary_eqs = binary_monitor.streaming_equations();
    ASSERT_NE(text_eqs, nullptr) << label;
    ASSERT_NE(binary_eqs, nullptr) << label;
    EXPECT_EQ(binary_eqs->refactorizations(), text_eqs->refactorizations())
        << label;
    EXPECT_EQ(binary_eqs->rank1_updates(), text_eqs->rank1_updates())
        << label;
  }
}

TEST(Pipeline, OpenSnapshotSourceRejectsMissingFile) {
  EXPECT_THROW(open_snapshot_source(temp_file("nope.snapshots")),
               CheckpointError);
}

}  // namespace
}  // namespace losstomo::io
