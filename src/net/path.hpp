// End-to-end measurement paths: the edge sequence a probe traverses from a
// beacon to a probing destination (paper §3.1, P_{s,d}).
#pragma once

#include <vector>

#include "net/graph.hpp"

namespace losstomo::net {

/// A beacon-to-destination path through the physical graph.
struct Path {
  NodeId source = 0;
  NodeId destination = 0;
  std::vector<EdgeId> edges;  // in traversal order

  [[nodiscard]] std::size_t length() const { return edges.size(); }
};

/// Validates that `path.edges` is a contiguous walk from source to
/// destination in `g` with no repeated node (simple path).  Throws
/// std::invalid_argument on violation.
void validate_path(const Graph& g, const Path& path);

/// True when the paths (interpreted as from a common beacon) form a tree:
/// whenever two paths share a node they share the entire prefix up to it.
/// This is the per-beacon consequence of Assumption T.2 (paper §3.1).
bool paths_form_tree(const Graph& g, const std::vector<Path>& paths);

}  // namespace losstomo::net
