#include "core/variance_estimator.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/augmented_matrix.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/nnls.hpp"
#include "linalg/qr.hpp"

namespace losstomo::core {

namespace {

struct NormalSystem {
  linalg::Matrix g;   // A^T A (possibly restricted to kept equations)
  linalg::Vector h;   // A^T sigma
  std::size_t used = 0;
  std::size_t dropped = 0;
};

// Pairwise accumulation with the drop-negative policy: iterate every path
// pair, compute its sample covariance, and (unless dropped) add the outer
// product of the shared-link indicator into G and the covariance into h.
NormalSystem accumulate_pairwise(const linalg::SparseBinaryMatrix& r,
                                 const stats::CenteredSnapshots& y,
                                 bool drop_negative) {
  const std::size_t np = r.rows();
  const std::size_t nc = r.cols();
  const std::size_t m = y.count();
  NormalSystem sys{linalg::Matrix(nc, nc), linalg::Vector(nc, 0.0)};

  std::vector<std::uint32_t> shared;
  for (std::size_t i = 0; i < np; ++i) {
    const auto ri = r.row(i);
    for (std::size_t j = i; j < np; ++j) {
      const auto rj = r.row(j);
      shared.clear();
      std::size_t x = 0, yy = 0;
      while (x < ri.size() && yy < rj.size()) {
        if (ri[x] < rj[yy]) {
          ++x;
        } else if (ri[x] > rj[yy]) {
          ++yy;
        } else {
          shared.push_back(ri[x]);
          ++x;
          ++yy;
        }
      }
      if (shared.empty()) continue;  // all-zero equation carries nothing
      double cov = 0.0;
      for (std::size_t l = 0; l < m; ++l) {
        const auto row = y.sample(l);
        cov += row[i] * row[j];
      }
      cov /= static_cast<double>(m - 1);
      if (drop_negative && cov < 0.0) {
        ++sys.dropped;
        continue;
      }
      ++sys.used;
      for (const auto a : shared) {
        sys.h[a] += cov;
        for (const auto b : shared) sys.g(a, b) += 1.0;
      }
    }
  }
  return sys;
}

// Closed-form accumulation keeping all equations (policy kKeep).
NormalSystem accumulate_closed_form(const linalg::SparseBinaryMatrix& r,
                                    const stats::CenteredSnapshots& y) {
  NormalSystem sys;
  const linalg::CoTraversalGram gram(r);
  sys.g = augmented_normal_matrix(gram);
  sys.h = augmented_normal_rhs(y, r.column_lists());
  sys.used = pair_count(r.rows());
  return sys;
}

VarianceEstimate finish(linalg::Vector v, VarianceEstimate partial) {
  for (auto& value : v) {
    if (value < 0.0) {
      value = 0.0;
      ++partial.negative_clamped;
    }
  }
  partial.v = std::move(v);
  return partial;
}

}  // namespace

VarianceEstimate estimate_link_variances(const linalg::SparseBinaryMatrix& r,
                                         const stats::SnapshotMatrix& y,
                                         const VarianceOptions& options) {
  if (y.dim() != r.rows()) {
    throw std::invalid_argument("snapshot dimension != path count");
  }
  if (y.count() < 2) throw std::invalid_argument("need >= 2 snapshots");
  const stats::CenteredSnapshots centered(y);
  const std::size_t np = r.rows();
  const std::size_t nc = r.cols();

  // Resolve the auto knobs.
  VarianceMethod method = options.method;
  if (method == VarianceMethod::kAuto) {
    method = VarianceMethod::kNormal;
  }
  bool drop_negative;
  switch (options.negatives) {
    case NegativeCovariancePolicy::kDrop:
      drop_negative = true;
      break;
    case NegativeCovariancePolicy::kKeep:
      drop_negative = false;
      break;
    case NegativeCovariancePolicy::kAuto:
    default:
      drop_negative = np <= options.pairwise_path_cap;
      break;
  }

  if (method == VarianceMethod::kDenseQr) {
    // Paper-exact path: materialise A and Sigma*, drop negative rows, QR.
    // All-zero rows (path pairs with no shared link) carry no equation and
    // are excluded up front, mirroring the pairwise accumulation.
    const auto a_full = build_augmented_matrix(r, options.dense_entry_cap);
    const auto sigma_full = packed_covariances(centered);
    std::vector<std::size_t> keep;
    std::size_t dropped = 0;
    keep.reserve(sigma_full.size());
    for (std::size_t row = 0; row < sigma_full.size(); ++row) {
      const auto arow = a_full.row(row);
      const bool informative =
          std::any_of(arow.begin(), arow.end(), [](double x) { return x != 0.0; });
      if (!informative) continue;
      if (drop_negative && sigma_full[row] < 0.0) {
        ++dropped;
        continue;
      }
      keep.push_back(row);
    }
    linalg::Matrix a(keep.size(), nc);
    linalg::Vector sigma(keep.size());
    for (std::size_t out = 0; out < keep.size(); ++out) {
      const auto src = a_full.row(keep[out]);
      std::copy(src.begin(), src.end(), a.row(out).begin());
      sigma[out] = sigma_full[keep[out]];
    }
    VarianceEstimate est;
    est.method = "dense-qr";
    est.equations_used = keep.size();
    est.equations_dropped = dropped;
    const linalg::HouseholderQr qr(a);
    if (qr.full_column_rank()) {
      return finish(qr.solve(sigma), std::move(est));
    }
    // Dropping rows can (rarely) lose rank; fall back to the basic
    // rank-revealing solution.
    est.method = "dense-qr(pivoted-fallback)";
    return finish(linalg::PivotedQr(a).solve_basic(sigma), std::move(est));
  }

  NormalSystem sys = drop_negative ? accumulate_pairwise(r, centered, true)
                                   : accumulate_closed_form(r, centered);
  VarianceEstimate est;
  est.equations_used = sys.used;
  est.equations_dropped = sys.dropped;

  if (method == VarianceMethod::kNnls) {
    est.method = drop_negative ? "nnls(drop-negative)" : "nnls(keep-all)";
    auto result = linalg::nnls_gram(sys.g, sys.h);
    return finish(std::move(result.x), std::move(est));
  }

  est.method = drop_negative ? "normal(drop-negative)" : "normal(closed-form)";
  const linalg::RegularizedCholesky chol(sys.g);
  est.jitter_used = chol.jitter_used();
  return finish(chol.solve(sys.h), std::move(est));
}

}  // namespace losstomo::core
