// Phase 1 of LIA: estimating the link variances v from end-to-end snapshots
// (paper §5.1).
//
// The moment system Sigma* = A v is solved by least squares.  Three solver
// backends are provided:
//  * kDenseQr      — materialise A, drop rows with negative sample
//                    covariance (the paper's policy), Householder QR.
//                    Exact paper method; only viable for small path sets.
//  * kNormal       — normal equations G v = h accumulated either pairwise
//                    (exact drop-negative policy) or in closed form from
//                    the co-traversal Gram matrix (keep-all policy, scales
//                    to tens of thousands of paths without materialising
//                    the np(np+1)/2-row system).
//  * kNnls         — non-negative least squares on the normal equations;
//                    enforces v >= 0 by construction (extension, ablated in
//                    bench/ablation_estimator).
// kAuto picks per problem size; sampling-noise negatives in the LS solution
// are clamped to zero and counted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/sharing_pairs.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "stats/covariance_source.hpp"
#include "stats/moments.hpp"

namespace losstomo::core {

enum class VarianceMethod {
  kAuto,
  kDenseQr,
  kNormal,
  kNnls,
};

enum class NegativeCovariancePolicy {
  kAuto,  // drop when the pairwise pass is affordable, else keep
  kDrop,  // paper §5.1: "we ignore equations with sigma_ii' < 0"
  kKeep,  // keep every pair equation (enables the closed-form fast path)
};

struct VarianceOptions {
  VarianceMethod method = VarianceMethod::kAuto;
  NegativeCovariancePolicy negatives = NegativeCovariancePolicy::kAuto;
  /// Largest dense A (in doubles) the kDenseQr backend may build.
  std::size_t dense_entry_cap = 20'000'000;
  /// Largest path count for which the pairwise (drop-negative) accumulation
  /// runs; beyond it kAuto switches to the closed form (keep-all), whose
  /// cost is independent of the number of path pairs.
  std::size_t pairwise_path_cap = 2000;
  /// Worker threads for the blocked covariance kernels and the parallel
  /// normal-equation accumulation.  0 = library default (LOSSTOMO_THREADS
  /// environment variable, else hardware concurrency).  Results are
  /// bit-identical at any thread count.
  std::size_t threads = 0;
  /// Streaming drop-negative only: cumulative rank-1 factor up/downdates
  /// (linalg::UpdatableCholesky) applied to the cached Cholesky factor
  /// before a full refactorization is forced, bounding floating-point
  /// drift of the incrementally maintained factor.  0 = automatic
  /// (4 * link count).
  std::size_t factor_update_cap = 0;
  /// Streaming drop-negative only: pending flips (pair sign flips + churn
  /// validity flips + pin border steps) a single solve will absorb as
  /// rank-1 factor steps; beyond it the factor deliberately goes stale and
  /// the solve leans on PCG refinement instead.  0 = automatic
  /// (nc / 4 + 1 — past that, rank-1 work stops beating a
  /// refactorization).  Deployments that churn in large bursts but want
  /// the factor always current (e.g. to keep solve latency flat) can
  /// raise it.
  std::size_t factor_flip_threshold = 0;
  /// Streaming drop-negative PCG refinement knobs (stale/drifted cached
  /// factor polished against the exact integer-maintained G).  These trade
  /// parity for tick latency in a deployment: a looser tolerance or a
  /// smaller budget accepts a less-refined solve before falling back to a
  /// full refactorization.
  ///
  /// Residual target, relative to ||h||_inf: refinement stops once
  /// ||h - G v||_inf <= refine_tolerance * ||h||_inf (a recomputed true
  /// residual within 10x of the target is accepted).
  double refine_tolerance = 1e-13;
  /// PCG iteration budget per solve; <= 0 disables refinement entirely, so
  /// every inexact-factor tick refactorizes (the pre-PR-3 behaviour).
  int refine_max_iterations = 40;
  /// A step "contracts" when it multiplies the best residual seen by at
  /// most this factor; refine_stall_window consecutive non-contracting
  /// steps abort to the refactorization fallback.
  double refine_contraction = 0.5;
  int refine_stall_window = 5;
  /// Drop-negative only: jitter-ladder rung (linalg::RegularizedCholesky
  /// escalation attempts; 1 = the base jitter) at which the solve abandons
  /// the regularized factorization and degrades through the pivoted
  /// rank-revealing fallback — pinning pivot-deficient links to zero
  /// variance, like the dense-QR pivoted fallback.  The default 2 keeps
  /// the benign base-jitter solve (Tikhonov-like minimum-norm behaviour,
  /// which measures better downstream on barely-singular instances) and
  /// pins only when the guard would have to *amplify* the jitter;
  /// 1 pins on any jitter; <= 0 never pins (the pre-PR-4 behaviour).
  /// Links with no kept equation at all never reach this knob — they are
  /// identity-pinned exactly, with no jitter involved.
  int rank_revealing_min_attempts = 2;
  /// Runs the retained scalar implementation (per-pair O(m) covariance
  /// loops, sequential accumulation) instead of the blocked/parallel
  /// kernels.  Kept for the parity tests and as a debugging fallback; the
  /// two paths agree to last-ulps rounding (<= 1e-12 in practice, provided
  /// no pair covariance sits within an ulp of the drop-negative zero
  /// boundary — see accumulate_pairwise_blocked).
  bool use_reference_impl = false;
};

struct VarianceEstimate {
  linalg::Vector v;                  // per-link variance (>= 0)
  std::string method;                // backend actually used
  std::size_t equations_used = 0;    // pair equations entering the LS
  std::size_t equations_dropped = 0; // negative-covariance rows removed
  std::size_t negative_clamped = 0;  // LS outputs clamped up to 0
  double jitter_used = 0.0;          // Cholesky regularization, if any
  /// Drop-negative links solved as v = 0 instead of through the LS: links
  /// whose every pair equation was dropped (zero G diagonal — the system
  /// carries no information about them) plus, when equation drops leave G
  /// rank-deficient with positive diagonals, the pivot-deficient links of
  /// the rank-revealing fallback.  Replaces the old jitter-amplified
  /// solutions on singular systems.
  std::size_t links_pinned = 0;
};

/// The Phase-1 normal equations G v = h (G = A^T A restricted to the kept
/// pair equations, h = A^T Sigma*) before solving.
struct NormalEquations {
  linalg::Matrix g;
  linalg::Vector h;
  std::size_t used = 0;     // pair equations entering the system
  std::size_t dropped = 0;  // negative-covariance rows removed
};

/// The negative-covariance policy options.negatives resolves to for a
/// problem with np paths (kAuto drops below pairwise_path_cap).  Exposed so
/// streaming consumers mirror the batch resolution exactly.
bool resolve_negative_policy(const VarianceOptions& options, std::size_t np);

/// Assembles the covariance system without solving it — the O(np^2) hot
/// path the blocked kernels accelerate.  Honours options.negatives /
/// threads / use_reference_impl exactly like estimate_link_variances
/// (options.method is ignored).  Exposed for benchmarking and diagnostics.
NormalEquations build_normal_equations(const linalg::SparseBinaryMatrix& r,
                                       const stats::SnapshotMatrix& y,
                                       const VarianceOptions& options = {});

/// Same system assembled from an abstract CovarianceSource (batch wrapper
/// or streaming accumulator).  `use_reference_impl` is ignored — the scalar
/// references are snapshot-based and live on the SnapshotMatrix overload.
NormalEquations build_normal_equations(const linalg::SparseBinaryMatrix& r,
                                       const stats::CovarianceSource& source,
                                       const VarianceOptions& options = {});

/// Estimates link variances from m snapshots of the path observations.
/// `y` must have dim() == r.rows() and count() >= 2.
VarianceEstimate estimate_link_variances(const linalg::SparseBinaryMatrix& r,
                                         const stats::SnapshotMatrix& y,
                                         const VarianceOptions& options = {});

/// Estimates link variances from a CovarianceSource; the entry point
/// Lia::learn(source) uses.  `source.dim()` must equal r.rows().
VarianceEstimate estimate_link_variances(const linalg::SparseBinaryMatrix& r,
                                         const stats::CovarianceSource& source,
                                         const VarianceOptions& options = {});

/// Incrementally maintained Phase-1 normal equations for monitoring loops.
///
/// Two policies, two incremental strategies:
///  * keep-all: G = A^T A depends only on the routing matrix, so it is
///    assembled at construction, the Cholesky factorization is computed on
///    the first solve(), and every subsequent solve() is O(nc^2);
///  * drop-negative: the sharing pairs live in a SharingPairStore built
///    *lazily* on the first refresh() (chunk-parallel, memory proportional
///    to the sharing structure — see core/sharing_pairs.hpp), so
///    constructing a monitor on a 10k+ path overlay costs nothing until
///    streaming actually starts.  Each refresh() re-reads every pair's
///    covariance; only pairs whose drop decision flipped touch G (exact
///    integer +/-1 counts).  The cached Cholesky factor is reconciled at
///    solve() time against the *pending* flip set (pairs whose state
///    differs from the factor; a pair that flips back cancels out), in
///    one of three modes:
///      1. small pending set (<= nc/4): one rank-1 up/downdate per flip
///         (linalg::UpdatableCholesky), O((nc - j0)^2) each;
///      2. large pending set (sign-flip storms — thousands of
///         near-zero-covariance pairs oscillate every tick): the factor
///         stays deliberately stale and the solve runs iterative
///         refinement against the exact G through it, O(nc^2) per step —
///         the state difference vs the factor saturates rather than
///         grows, so a recent factor keeps preconditioning G well;
///      3. full refactorization, only when a downdate would lose positive
///         definiteness, refinement stops contracting, or the cumulative
///         rank-1 count reaches VarianceOptions::factor_update_cap
///         (drift bound).
///
/// refresh() rebuilds h from the source's current covariance matrix — cost
/// proportional to the sharing structure, independent of the window length
/// — and solve() yields the same clamped estimate as
/// estimate_link_variances on an equal-valued source to refinement
/// accuracy (residual <= 1e-13 * ||h||; <= 1e-10 parity observed on
/// well-conditioned instances, and bit-identical on freshly refactorized
/// ticks; methods kNormal and kNnls; kDenseQr callers must use the batch
/// path).
///
/// Thread-safety: refresh() parallelizes internally (bit-identical at any
/// VarianceOptions::threads); concurrent calls on one instance are not
/// supported.
class StreamingNormalEquations {
 public:
  /// O(nc^2) for keep-all (Gram assembly); O(nnz(r)) copy for
  /// drop-negative (the pair store is deferred to the first refresh).
  StreamingNormalEquations(const linalg::SparseBinaryMatrix& r,
                           const VarianceOptions& options = {});

  /// Drop-negative with an externally owned (shared) pair store — the
  /// configuration the pair-indexed covariance accumulator
  /// (core::PairMoments) uses, so refresh() reads each pair's covariance by
  /// its store index in O(1).  `store` must enumerate exactly the pairs of
  /// `r` and stay alive; the resolved policy must be drop-negative (throws
  /// std::invalid_argument otherwise).
  StreamingNormalEquations(const linalg::SparseBinaryMatrix& r,
                           const VarianceOptions& options,
                           std::shared_ptr<SharingPairStore> store);

  /// Recomputes h (and the sign-flipped parts of G and the cached factor
  /// under drop-negative) from the source's current covariance matrix.
  /// Under drop-negative a pair enters the system only when it is live
  /// (both paths' store rows live), ready (source.samples() covers the
  /// full window for both paths — path-churn warm-up), and its covariance
  /// is non-negative; skipped pairs count neither used nor dropped, so the
  /// counts match a batch accumulation over the live-and-ready submatrix.
  const NormalEquations& refresh(const stats::CovarianceSource& source);

  // -- Path churn (scenario engine, src/scenario/) ------------------------
  //
  // Dimension changes never resize the factor: G stays nc x nc, and a link
  // whose every pair equation is gone is *identity-pinned* (unit diagonal,
  // zero elsewhere — its variance solves to exactly 0).  A path join or
  // leave therefore reaches the cached factor as a batch of rank-1
  // +/- e_S e_S^T pair steps plus +/- e_a e_a^T pin/unpin steps — the
  // bordered-update realization: pinned links sit as identity borders of
  // the live block and are bordered in or out by rank-1 work, with the
  // usual stale-factor PCG and full-refactorization fallbacks.
  // Drop-negative only (throws std::logic_error under keep-all).

  /// Marks a path's pairs live/dead.  Going dead immediately flips its
  /// kept pairs out of G (exact integer updates; the factor reconciles at
  /// the next solve).  Builds the lazy pair store if needed.
  void set_path_live(std::size_t path, bool live);

  /// Registers one appended path (row r.rows()-1 of the grown routing
  /// matrix; earlier rows must be unchanged).  Its pairs join the store
  /// dropped — they enter G through refresh() once the covariance source
  /// reports them ready.  With a shared store this is the call that grows
  /// it: invoke BEFORE PairMoments::add_path.
  void add_path(const linalg::SparseBinaryMatrix& r);

  /// Batched growth: registers `count` appended paths (the trailing rows
  /// of `r`; earlier rows must be unchanged) in one step — the pair store
  /// grows once, state-identical to `count` add_path calls but without the
  /// per-row bookkeeping resizes.  Rows referencing new links require a
  /// grow_links() call first (r.cols() must equal the current link count;
  /// throws std::invalid_argument otherwise).
  void add_paths(const linalg::SparseBinaryMatrix& r, std::size_t count);

  /// Grows the link universe by `count` fresh trailing columns.  Fresh
  /// links have no kept pair equation yet, so they enter identity-pinned:
  /// G becomes diag(G, I) exactly, and the cached factor follows by
  /// bordered identity growth (linalg::UpdatableCholesky::append_identity)
  /// — no refactorization, no rank-1 work.  Pairs covering the new links
  /// later unpin them through the usual refresh()/flip border steps.
  /// Drop-negative only (throws std::logic_error under keep-all).
  void grow_links(std::size_t count);

  /// Solves the current system for v, reusing the cached (possibly
  /// up/downdated) factorization while it is valid.  Requires a prior
  /// refresh().
  [[nodiscard]] VarianceEstimate solve();

  [[nodiscard]] const NormalEquations& system() const { return sys_; }
  [[nodiscard]] bool drop_negative() const { return drop_negative_; }
  /// Full Cholesky factorizations performed so far (1 after the first
  /// solve under keep-all; under drop-negative grows only on the fallback
  /// conditions listed above).
  [[nodiscard]] std::size_t refactorizations() const {
    return refactorizations_;
  }
  /// Rank-1 factor up/downdates applied so far (drop-negative only),
  /// including the pin/unpin border steps.
  [[nodiscard]] std::size_t rank1_updates() const { return rank1_updates_; }
  /// Pin/unpin border steps among rank1_updates() (links entering/leaving
  /// the identity-pinned state on the factor).
  [[nodiscard]] std::size_t pin_updates() const { return pin_updates_; }
  /// Fresh virtual links absorbed mid-run via bordered identity growth
  /// (grow_links), each entering pinned without a refactorization.
  [[nodiscard]] std::size_t links_grown() const { return links_grown_; }
  /// Links currently identity-pinned (no kept pair equation covers them).
  [[nodiscard]] std::size_t links_pinned() const { return pins_active_; }
  /// Failed downdates that forced a refactorization.
  [[nodiscard]] std::size_t downdate_fallbacks() const {
    return downdate_fallbacks_;
  }
  /// Iterative-refinement steps run against stale or drifted factors.
  [[nodiscard]] std::size_t refine_iterations() const {
    return refine_iterations_;
  }
  /// Pairs whose kept/dropped state currently differs from the factor.
  [[nodiscard]] std::size_t pending_flips() const { return pending_live_; }
  /// The sharing-pair store: built lazily at the first drop-negative
  /// refresh (or shared from construction); nullptr before that and always
  /// under keep-all.
  [[nodiscard]] const SharingPairStore* pair_store() const {
    return pairs_.get();
  }

  // -- Checkpointing (io/checkpoint.hpp) ----------------------------------
  //
  // Serializes every piece of mutable state the incremental machinery
  // depends on: the integer-maintained G and rhs, the cached
  // UpdatableCholesky factor (restored via from_state — NO refactorization
  // on resume), the pending pair/pin flip queues with their membership
  // marks, the kept-pair flags, link coverage and pin states, and all
  // counters.  `store_external` is true when the pair store is owned by
  // someone else (the monitor's shared PairMoments store) and serialized
  // there; otherwise an owned store is embedded.  Structure derived purely
  // from the routing matrix (column_paths_, the lazy pending_r_) is NOT
  // serialized — restore_state targets an instance freshly constructed
  // over the same (already restored) routing matrix and store
  // configuration, and throws io::CheckpointError(kMismatch) on any shape
  // or policy disagreement.  On failure *this is unchanged.
  void save_state(io::CheckpointWriter& writer, bool store_external) const;
  void restore_state(io::CheckpointReader& reader,
                     std::shared_ptr<SharingPairStore> shared_store);

 private:
  void ensure_store();
  void apply_flips(const std::vector<std::size_t>& flips);
  void note_pin_change(std::size_t link);
  bool reconcile_factor();
  void refactorize();
  bool refine(linalg::Vector& v);

  VarianceOptions options_;
  std::size_t np_ = 0;
  std::size_t nc_ = 0;
  bool drop_negative_ = false;
  bool refreshed_ = false;
  // keep-all: per-link path lists for the closed-form rhs.
  std::vector<std::vector<std::uint32_t>> column_paths_;
  // drop-negative: routing matrix retained until the pair store is built
  // (kept current by add_path while still lazy).
  std::optional<linalg::SparseBinaryMatrix> pending_r_;
  std::shared_ptr<SharingPairStore> pairs_;
  std::vector<std::uint8_t> pair_kept_;
  linalg::Vector flip_scratch_;  // shared-link indicator for up/downdates
  // Pairs whose kept state diverged from the factor: queue + membership
  // marks (an unmarked queue entry was cancelled by a flip-back).
  std::vector<std::size_t> pending_;
  std::vector<std::uint8_t> pending_mark_;
  std::size_t pending_live_ = 0;
  // Identity pinning of links with no kept pair equation: kept-pair
  // coverage count per link, the pin state reflected in G, and the pin
  // changes the factor has not absorbed yet (queue + marks, like pairs).
  std::vector<std::uint32_t> coverage_;
  std::vector<std::uint8_t> pinned_in_g_;
  std::vector<std::size_t> pin_pending_;
  std::vector<std::uint8_t> pin_pending_mark_;
  std::size_t pin_pending_live_ = 0;
  std::size_t pins_active_ = 0;
  std::vector<std::size_t> path_pairs_scratch_;
  NormalEquations sys_;
  bool factor_dirty_ = true;
  std::optional<linalg::UpdatableCholesky> factor_;
  std::size_t factor_updates_ = 0;  // rank-1 steps since last refactorization
  std::size_t refactorizations_ = 0;
  std::size_t rank1_updates_ = 0;
  std::size_t pin_updates_ = 0;
  std::size_t links_grown_ = 0;
  std::size_t downdate_fallbacks_ = 0;
  std::size_t refine_iterations_ = 0;
};

}  // namespace losstomo::core
