// Fixture: ambient randomness outside stats::Rng — unseeded, invisible to
// checkpoints, different on every run.
#include <cstdlib>
#include <ctime>
#include <random>

int ambient_noise() {
  std::random_device rd;               // must be flagged
  std::mt19937 engine(rd());           // must be flagged
  return static_cast<int>(engine() % 7) + rand() % 3 +  // must be flagged
         static_cast<int>(time(nullptr) % 2);           // must be flagged
}
