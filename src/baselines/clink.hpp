// CLINK — congested-link location with learned link priors
// (Nguyen & Thiran, INFOCOM 2007; the authors' prior work, compared in the
// paper's Table 1 under "First Order Moments / Multiple Snapshots").
//
// CLINK also uses multiple snapshots of unicast flows, but only their
// binary projections: it learns each link's *probability of being
// congested* and then, per snapshot, finds the most likely congested set
// explaining the binary path states.
//
//  Phase 1 (learning).  Under link independence the probability that path
//  i is good in a snapshot is prod_{k in i} (1 - p_k).  With g_i the
//  empirical fraction of snapshots where path i was good,
//      -log g_i  ~  sum_{k in i} x_k,   x_k = -log(1 - p_k) >= 0,
//  a non-negative least-squares problem on the routing matrix (we solve it
//  with the library's NNLS; CLINK's original gradient scheme solves the
//  same program).
//
//  Phase 2 (MAP inference).  Given one snapshot's binary path states, the
//  maximum a-posteriori congested set minimizes
//      sum_{k in X} w_k,   w_k = log((1 - p_k) / p_k),
//  over sets X covering every bad path while touching no good path — a
//  weighted set cover, approximated greedily (cost/coverage), as in the
//  original paper.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace losstomo::baselines {

struct ClinkModel {
  /// Learned per-link congestion probabilities, clamped to
  /// [floor_probability, ceil_probability].
  linalg::Vector congestion_probability;
  bool converged = false;
};

struct ClinkOptions {
  /// Probability clamp: keeps the set-cover weights finite and encodes the
  /// prior that no link is ever certainly good/congested.
  double floor_probability = 1e-4;
  double ceil_probability = 0.5;
};

/// Phase 1: learns link congestion probabilities from m snapshots of
/// binary path states (path_bad[l][i] = path i bad in snapshot l).
ClinkModel clink_learn(const linalg::SparseBinaryMatrix& r,
                       const std::vector<std::vector<bool>>& path_bad,
                       const ClinkOptions& options = {});

/// Phase 2: MAP congested set for one snapshot.  Links on good paths are
/// exonerated; remaining bad paths are covered greedily by the link with
/// the best weight-per-newly-covered-path ratio.
std::vector<bool> clink_locate(const linalg::SparseBinaryMatrix& r,
                               const ClinkModel& model,
                               const std::vector<bool>& path_bad);

}  // namespace losstomo::baselines
