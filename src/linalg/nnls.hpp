// Non-negative least squares (Lawson–Hanson active set) in Gram form.
//
// Phase 1 of LIA estimates link *variances*, which are non-negative by
// definition; the paper's plain least-squares estimate can dip slightly
// negative under sampling noise.  The library offers NNLS as an alternative
// Phase-1 solver (ablated in bench/ablation_estimator): minimize
// ||A v - b||^2 subject to v >= 0, expressed through G = A^T A and
// h = A^T b so the caller never materialises A.
#pragma once

#include <cstddef>
#include <span>

#include "linalg/matrix.hpp"

namespace losstomo::linalg {

struct NnlsResult {
  Vector x;
  std::size_t iterations = 0;
  bool converged = false;
};

struct NnlsOptions {
  /// Stop when no inactive coordinate has gradient above this threshold
  /// (relative to the largest diagonal of G).
  double tolerance = 1e-10;
  /// Hard cap on outer iterations (3n is the classical guidance).
  std::size_t max_iterations = 0;  // 0 => 3 * n
};

/// Solves min ||A x - b||^2 s.t. x >= 0, given G = A^T A (symmetric PSD)
/// and h = A^T b.  Classical Lawson–Hanson with an inner feasibility line
/// search; unconstrained subproblems are solved with a jitter-guarded
/// Cholesky of the passive-set principal submatrix.
NnlsResult nnls_gram(const Matrix& g, std::span<const double> h,
                     const NnlsOptions& options = {});

}  // namespace losstomo::linalg
