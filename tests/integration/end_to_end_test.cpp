// Integration tests: the full measurement -> inference pipeline on
// simulated networks, checking the paper's qualitative claims end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/scfs.hpp"
#include "core/lia.hpp"
#include "core/metrics.hpp"
#include "sim/probe_sim.hpp"
#include "stats/cdf.hpp"
#include "stats/moments.hpp"
#include "topology/generators.hpp"
#include "topology/overlay.hpp"
#include "topology/routing.hpp"

namespace losstomo {
namespace {

struct PipelineResult {
  core::LocationAccuracy lia_accuracy;
  core::LocationAccuracy scfs_accuracy;
  core::ErrorVectors errors;
  bool congested_link_removed = false;
};

// Runs m learning snapshots + 1 inference snapshot of LIA (and tree-SCFS
// when the topology is a tree) and reports accuracy against ground truth.
PipelineResult run_pipeline(const net::Graph& graph,
                            const net::ReducedRoutingMatrix& rrm,
                            const sim::ScenarioConfig& config, std::size_t m,
                            std::uint64_t seed, bool run_scfs) {
  sim::SnapshotSimulator simulator(graph, rrm, config, seed);
  auto series = sim::run_snapshots(simulator, m + 1);
  stats::SnapshotMatrix history(rrm.path_count(), m);
  for (std::size_t l = 0; l < m; ++l) {
    const auto& y = series.snapshots[l].path_log_trans;
    std::copy(y.begin(), y.end(), history.sample(l).begin());
  }
  const auto& current = series.snapshots[m];

  core::Lia lia(rrm.matrix());
  lia.learn(history);
  const auto inference = lia.infer(current.path_log_trans);

  PipelineResult result;
  const double tl = config.loss_model.threshold_tl;
  result.lia_accuracy =
      core::locate_congested(inference.loss, current.link_congested, tl);
  result.errors =
      core::per_link_errors(current.link_true_loss, inference.loss);
  for (std::size_t k = 0; k < rrm.link_count(); ++k) {
    if (inference.removed[k] && current.link_congested[k]) {
      result.congested_link_removed = true;
    }
  }
  if (run_scfs) {
    const auto bad = baselines::binarize_paths(
        current.path_trans, baselines::path_lengths(rrm.matrix()), tl);
    result.scfs_accuracy = core::locate_congested(
        baselines::scfs_tree(rrm, bad), current.link_congested);
  }
  return result;
}

TEST(EndToEnd, TreePipelineAccurate) {
  // Paper §6.1 in miniature: tree, p = 10%, S = 1000, m = 50.
  stats::Rng rng(131);
  const auto tree =
      topology::make_random_tree({.nodes = 250, .max_branching = 10}, rng);
  const net::ReducedRoutingMatrix rrm(tree.graph, topology::tree_paths(tree));
  sim::ScenarioConfig config;
  config.p = 0.1;
  const auto result = run_pipeline(tree.graph, rrm, config, 50, 777, true);

  EXPECT_GT(result.lia_accuracy.dr, 0.8);
  EXPECT_LT(result.lia_accuracy.fpr, 0.15);
  // Fig. 7's claim: no congested link is eliminated in Phase 2.
  EXPECT_FALSE(result.congested_link_removed);
}

TEST(EndToEnd, LiaBeatsScfsOnTree) {
  // Fig. 5's claim, averaged over a few runs to damp single-snapshot noise.
  stats::Rng rng(132);
  const auto tree =
      topology::make_random_tree({.nodes = 200, .max_branching = 10}, rng);
  const net::ReducedRoutingMatrix rrm(tree.graph, topology::tree_paths(tree));
  sim::ScenarioConfig config;
  config.p = 0.1;
  stats::RunningStat lia_dr, scfs_dr, lia_fpr, scfs_fpr;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto result = run_pipeline(tree.graph, rrm, config, 40, 900 + seed, true);
    lia_dr.add(result.lia_accuracy.dr);
    scfs_dr.add(result.scfs_accuracy.dr);
    lia_fpr.add(result.lia_accuracy.fpr);
    scfs_fpr.add(result.scfs_accuracy.fpr);
  }
  // The robust Fig. 5 claim is the detection-rate gap: SCFS can only blame
  // the topmost all-bad link of a subtree, missing congested links that
  // hide below other congested links; LIA recovers them from variances.
  EXPECT_GT(lia_dr.mean(), scfs_dr.mean() + 0.1);
  // Both false-positive rates stay small.  (Their relative order depends
  // on the good-link loss floor: the paper's noisier good links inflate
  // SCFS's FPR above LIA's; the calibrated floor here deflates it.  See
  // EXPERIMENTS.md.)
  EXPECT_LT(lia_fpr.mean(), 0.15);
  EXPECT_LT(scfs_fpr.mean(), 0.15);
}

TEST(EndToEnd, ErrorsConcentratedNearZero) {
  // Fig. 6's claim: absolute-error CDF concentrated near 0, error factors
  // near 1.
  stats::Rng rng(133);
  const auto tree =
      topology::make_random_tree({.nodes = 250, .max_branching = 10}, rng);
  const net::ReducedRoutingMatrix rrm(tree.graph, topology::tree_paths(tree));
  sim::ScenarioConfig config;
  config.p = 0.1;
  const auto result = run_pipeline(tree.graph, rrm, config, 50, 555, false);
  const stats::EmpiricalCdf abs_cdf(result.errors.absolute);
  const stats::EmpiricalCdf factor_cdf(result.errors.factor);
  EXPECT_LT(abs_cdf.median(), 0.003);
  EXPECT_LT(factor_cdf.quantile(0.9), 2.0);
}

TEST(EndToEnd, MeshPipelineAccurate) {
  // Table 2's claim on a mesh with multiple beacons.
  stats::Rng rng(134);
  const auto topo = topology::make_planetlab_like(
      {.hosts = 16, .as_count = 7, .routers_per_as = 6}, rng);
  const auto routed = topology::route_paths(topo.graph, topo.hosts, topo.hosts);
  const net::ReducedRoutingMatrix rrm(topo.graph, routed.paths);
  sim::ScenarioConfig config;
  config.p = 0.1;
  const auto result = run_pipeline(topo.graph, rrm, config, 50, 313, false);
  EXPECT_GT(result.lia_accuracy.dr, 0.75);
  // FPR is count-dominated at this tiny scale (|F| ~ 7): a handful of
  // links misattributed by ~0.003 dominates the ratio.  The Table-2 bench
  // runs the larger topologies where the paper's 3-6% band applies.
  EXPECT_LT(result.lia_accuracy.fpr, 0.45);
}

TEST(EndToEnd, Llrd2ModelAlsoWorks) {
  // Paper: "We found very little difference between the two models".
  stats::Rng rng(135);
  const auto tree =
      topology::make_random_tree({.nodes = 200, .max_branching = 10}, rng);
  const net::ReducedRoutingMatrix rrm(tree.graph, topology::tree_paths(tree));
  sim::ScenarioConfig config;
  config.p = 0.1;
  config.loss_model = sim::LossModelConfig::llrd2();
  const auto result = run_pipeline(tree.graph, rrm, config, 50, 414, false);
  EXPECT_GT(result.lia_accuracy.dr, 0.75);
}

TEST(EndToEnd, BernoulliLossesAlsoWork) {
  // Paper: "We also run simulations with Bernoulli losses, but the
  // differences are insignificant."
  stats::Rng rng(136);
  const auto tree =
      topology::make_random_tree({.nodes = 200, .max_branching = 10}, rng);
  const net::ReducedRoutingMatrix rrm(tree.graph, topology::tree_paths(tree));
  sim::ScenarioConfig config;
  config.p = 0.1;
  config.process = sim::LossProcess::kBernoulli;
  const auto result = run_pipeline(tree.graph, rrm, config, 50, 515, false);
  EXPECT_GT(result.lia_accuracy.dr, 0.75);
  EXPECT_LT(result.lia_accuracy.fpr, 0.2);
}

TEST(EndToEnd, MoreSnapshotsImproveAccuracy) {
  // Fig. 5's trend in m.
  stats::Rng rng(137);
  const auto tree =
      topology::make_random_tree({.nodes = 200, .max_branching = 10}, rng);
  const net::ReducedRoutingMatrix rrm(tree.graph, topology::tree_paths(tree));
  sim::ScenarioConfig config;
  config.p = 0.1;
  stats::RunningStat dr_small, dr_large;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    dr_small.add(
        run_pipeline(tree.graph, rrm, config, 8, 20 + seed, false).lia_accuracy.dr);
    dr_large.add(
        run_pipeline(tree.graph, rrm, config, 80, 20 + seed, false).lia_accuracy.dr);
  }
  EXPECT_GE(dr_large.mean() + 0.05, dr_small.mean());
}

}  // namespace
}  // namespace losstomo
