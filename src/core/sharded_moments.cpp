#include "core/sharded_moments.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "io/checkpoint.hpp"
#include "io/checkpoint_tags.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/parallel.hpp"

namespace losstomo::core {

namespace {
constexpr std::size_t kMergeGrain = 8192;
}  // namespace

std::uint32_t ShardedPairMoments::hash_shard(std::size_t path,
                                             std::size_t shards) {
  // splitmix64 finalizer: well-mixed, stable across platforms, and cheap
  // enough to recompute per grown path.
  std::uint64_t z = static_cast<std::uint64_t>(path) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<std::uint32_t>(z % static_cast<std::uint64_t>(shards));
}

ShardedPairMoments::ShardedPairMoments(
    std::shared_ptr<const SharingPairStore> store,
    const linalg::SparseBinaryMatrix& r, std::size_t shards,
    stats::StreamingMomentsOptions options,
    std::span<const std::uint32_t> partition)
    : store_(std::move(store)),
      dim_(r.rows()),
      shard_count_(shards),
      options_(options) {
  if (shard_count_ == 0) throw std::invalid_argument("shards must be >= 1");
  if (store_->path_count() != dim_) {
    throw std::invalid_argument("store path count != routing rows");
  }
  if (partition.size() > dim_) {
    throw std::invalid_argument("partition larger than the path count");
  }
  shard_of_.resize(dim_);
  local_of_.resize(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    if (i < partition.size()) {
      if (partition[i] >= shard_count_) {
        throw std::invalid_argument("partition entry out of shard range");
      }
      shard_of_[i] = partition[i];
    } else {
      shard_of_[i] = hash_shard(i, shard_count_);
    }
  }

  shards_.resize(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    std::vector<std::vector<std::uint32_t>> rows;
    for (std::size_t i = 0; i < dim_; ++i) {
      if (shard_of_[i] != s) continue;
      local_of_[i] = static_cast<std::uint32_t>(shard.paths.size());
      shard.paths.push_back(static_cast<std::uint32_t>(i));
      const auto row = r.row(i);
      rows.emplace_back(row.begin(), row.end());
    }
    shard.sub_r = linalg::SparseBinaryMatrix(r.cols(), std::move(rows));
    shard.store = std::make_shared<SharingPairStore>(
        SharingPairStore::build(shard.sub_r, options_.threads));
    shard.moments.emplace(shard.store, shard.paths.size(), options_);
    shard.gather.resize(shard.paths.size());
  }

  // The filter captures this->shard_of_, which add_paths extends before
  // growing the boundary store — that is why the class is not movable.
  boundary_store_ = std::make_shared<SharingPairStore>(SharingPairStore::build(
      r, options_.threads, [this](std::size_t i, std::size_t j) {
        return shard_of_[i] != shard_of_[j];
      }));
  boundary_.emplace(boundary_store_, dim_, options_);

  map_pairs_from(0);
}

void ShardedPairMoments::map_pairs_from(std::size_t first_pair) {
  const std::size_t pairs = store_->pair_count();
  pair_shard_.resize(pairs);
  pair_local_.resize(pairs);
  store_->for_pairs(
      first_pair, pairs,
      [&](std::size_t p, std::uint32_t i, std::uint32_t j,
          std::span<const std::uint32_t>) {
        const std::uint32_t si = shard_of_[i];
        std::size_t local = SharingPairStore::kNoPair;
        if (si == shard_of_[j]) {
          local = shards_[si].store->find_pair(local_of_[i], local_of_[j]);
          pair_shard_[p] = si;
        } else {
          local = boundary_store_->find_pair(i, j);
          pair_shard_[p] = static_cast<std::uint32_t>(shard_count_);
        }
        if (local == SharingPairStore::kNoPair) {
          // Every global sharing pair is intra-shard or cross-shard by
          // construction; a miss means the stores diverged from the
          // global one.
          throw std::logic_error("sharded pair maps lost a sharing pair");
        }
        pair_local_[p] = local;
      });
}

void ShardedPairMoments::push(std::span<const double> y) {
  if (y.size() != dim_) throw std::invalid_argument("snapshot size != dim");
  for (auto& shard : shards_) {
    for (std::size_t k = 0; k < shard.paths.size(); ++k) {
      shard.gather[k] = y[shard.paths[k]];
    }
    shard.moments->push(shard.gather);
  }
  boundary_->push(y);
  merged_dirty_ = true;
}

void ShardedPairMoments::push_block(std::span<const double> values,
                                    std::size_t rows) {
  if (values.size() != rows * dim_) {
    throw std::invalid_argument("push_block size != rows * dim");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    push(values.subspan(r * dim_, dim_));
  }
}

void ShardedPairMoments::activate_path(std::size_t i) {
  if (i >= dim_) throw std::invalid_argument("path out of range");
  boundary_->activate_path(i);
  shards_[shard_of_[i]].moments->activate_path(local_of_[i]);
}

void ShardedPairMoments::retire_path(std::size_t i) {
  if (i >= dim_) throw std::invalid_argument("path out of range");
  boundary_->retire_path(i);
  shards_[shard_of_[i]].moments->retire_path(local_of_[i]);
}

std::size_t ShardedPairMoments::add_paths(const linalg::SparseBinaryMatrix& r,
                                          std::size_t count) {
  if (count == 0) throw std::invalid_argument("add_paths needs count >= 1");
  if (r.rows() != dim_ + count) {
    throw std::invalid_argument("routing rows != dim + count");
  }
  if (store_->path_count() != r.rows()) {
    throw std::logic_error("global pair store not grown before add_paths");
  }
  const std::size_t first = dim_;
  const std::size_t first_pair_before = store_->row_begin(first);
  // Grown paths always hash — the rule a restored accumulator replays.
  shard_of_.reserve(r.rows());
  local_of_.resize(r.rows());
  for (std::size_t i = first; i < r.rows(); ++i) {
    shard_of_.push_back(hash_shard(i, shard_count_));
  }
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    std::vector<std::vector<std::uint32_t>> rows;
    for (std::size_t i = first; i < r.rows(); ++i) {
      if (shard_of_[i] != s) continue;
      local_of_[i] =
          static_cast<std::uint32_t>(shard.paths.size() + rows.size());
      const auto row = r.row(i);
      rows.emplace_back(row.begin(), row.end());
    }
    const std::size_t grown = rows.size();
    // Widen every shard's column space to the (possibly grown) global link
    // universe, even when the shard receives no rows this batch.
    shard.sub_r.append_rows(r.cols() - shard.sub_r.cols(), std::move(rows));
    if (grown == 0) continue;
    for (std::size_t i = first; i < r.rows(); ++i) {
      if (shard_of_[i] == s) {
        shard.paths.push_back(static_cast<std::uint32_t>(i));
      }
    }
    shard.store->add_rows(shard.sub_r);
    shard.moments->add_paths(grown);
    shard.gather.resize(shard.paths.size());
  }
  boundary_store_->add_rows(r);
  boundary_->add_paths(count);
  dim_ = r.rows();
  map_pairs_from(first_pair_before);
  merged_dirty_ = true;
  return first;
}

void ShardedPairMoments::set_telemetry(obs::Registry* registry) {
  telemetry_ = registry;
  if (registry != nullptr) merge_phase_ = registry->phase("merge");
}

std::span<const double> ShardedPairMoments::pair_values() const {
  if (merged_dirty_) {
    obs::Span merge_span(telemetry_, merge_phase_);
    merged_values_.resize(store_->pair_count());
    std::vector<std::span<const double>> sources(shard_count_ + 1);
    for (std::size_t s = 0; s < shard_count_; ++s) {
      sources[s] = shards_[s].moments->pair_values();
    }
    sources[shard_count_] = boundary_->pair_values();
    // The merge is a pure gather (disjoint writes, no arithmetic), so it
    // is bit-identical at any thread count — and the reason shard count
    // never changes an inference.
    util::parallel_for(
        merged_values_.size(), kMergeGrain,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t p = begin; p < end; ++p) {
            merged_values_[p] = sources[pair_shard_[p]][pair_local_[p]];
          }
        },
        options_.threads);
    merged_dirty_ = false;
    ++merges_;
  }
  return merged_values_;
}

double ShardedPairMoments::covariance(std::size_t i, std::size_t j) const {
  if (count() < 2) throw std::logic_error("covariance needs >= 2 snapshots");
  const std::size_t p = store_->find_pair(i, j);
  if (p == SharingPairStore::kNoPair) {
    return 0.0;  // non-sharing pair: never consumed
  }
  return pair_values()[p] / static_cast<double>(count() - 1);
}

const linalg::Matrix& ShardedPairMoments::matrix() const {
  throw std::logic_error(
      "ShardedPairMoments maintains only sharing-pair covariances; use the "
      "dense StreamingMoments accumulator where the full S is required");
}

void ShardedPairMoments::save_state(io::CheckpointWriter& writer) const {
  writer.begin_section(io::tags::kShardedPairMoments);
  writer.usize(shard_count_);
  writer.u32s(shard_of_);
  // The boundary and shard-local stores are serialized, not rebuilt on
  // restore: a store grown by add_rows orders the appended rows' pairs
  // differently from a fresh build over the grown matrix, and the moment
  // windows restore POSITIONALLY in store order — rebuilding would load
  // them against the wrong pairs after any mid-run growth.
  boundary_store_->save_state(writer);
  for (const auto& shard : shards_) shard.store->save_state(writer);
  boundary_->save_state(writer);
  for (const auto& shard : shards_) shard.moments->save_state(writer);
  writer.end_section();
}

void ShardedPairMoments::restore_state(io::CheckpointReader& reader) {
  reader.expect_section(io::tags::kShardedPairMoments);
  const std::size_t shards = reader.usize();
  if (shards != shard_count_) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "checkpointed shard count " + std::to_string(shards) +
            " != configured " + std::to_string(shard_count_));
  }
  const std::vector<std::uint32_t> shard_of = reader.u32s();
  if (shard_of != shard_of_) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "checkpointed shard partition differs from the constructed one");
  }
  // The sub-matrices and partition are a deterministic function of
  // (routing, partition) and were rebuilt by the constructor, but the
  // STORES restore from the image: their pair order depends on the
  // build-then-grow history, which the constructor cannot replay.  After
  // the stores land, the global gather maps are rebuilt against the
  // restored orders, and only then do the windows load.  Unlike the flat
  // PairMoments this is not atomic across shards — the monitor restores
  // into a freshly constructed accumulator and discards it on failure.
  boundary_store_->restore_state(reader);
  if (boundary_store_->path_count() != dim_) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "checkpointed boundary store path count != routing rows");
  }
  for (auto& shard : shards_) {
    shard.store->restore_state(reader);
    if (shard.store->path_count() != shard.paths.size()) {
      throw io::CheckpointError(
          io::CheckpointErrorKind::kMismatch,
          "checkpointed shard store path count != owned paths");
    }
  }
  map_pairs_from(0);
  boundary_->restore_state(reader);
  for (auto& shard : shards_) shard.moments->restore_state(reader);
  reader.end_section();
  merged_dirty_ = true;
}

}  // namespace losstomo::core
