// Accuracy metrics, exactly as the paper defines them (§6).
//
//   DR  = |F ∩ X| / |F|   (detection rate: congested links found)
//   FPR = |X \ F| / |X|   (false positive rate: fraction of the *diagnosed*
//                          set that is actually good — note the denominator
//                          is |X|, the paper's definition)
//   error factor f_delta(q, q*) = max{q(d)/q*(d), q*(d)/q(d)},
//     q(d) = max(delta, q)  (eq. (10); default delta = 1e-3)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace losstomo::core {

struct LocationAccuracy {
  std::size_t actual_congested = 0;    // |F|
  std::size_t diagnosed_congested = 0; // |X|
  std::size_t hits = 0;                // |F ∩ X|
  std::size_t false_alarms = 0;        // |X \ F|
  double dr = 1.0;                     // 1 when |F| = 0
  double fpr = 0.0;                    // 0 when |X| = 0
};

/// Compares inferred loss rates against true congestion flags at threshold
/// tl: a link is diagnosed congested iff inferred_loss > tl.
LocationAccuracy locate_congested(std::span<const double> inferred_loss,
                                  const std::vector<bool>& truly_congested,
                                  double tl);

/// As above but from an explicit diagnosed set (for binary baselines).
LocationAccuracy locate_congested(const std::vector<bool>& diagnosed,
                                  const std::vector<bool>& truly_congested);

/// Error factor of eq. (10).
double error_factor(double q_true, double q_inferred, double delta = 1e-3);

/// Per-link |q - q*| and f_delta vectors for CDF reporting.
struct ErrorVectors {
  std::vector<double> absolute;
  std::vector<double> factor;
};

/// Precondition for all comparison helpers in this header: the two input
/// ranges have equal length (one entry per link).  All are pure O(nc)
/// functions, safe to call concurrently.
ErrorVectors per_link_errors(std::span<const double> true_loss,
                             std::span<const double> inferred_loss,
                             double delta = 1e-3);

}  // namespace losstomo::core
