// Fixture: byte aliasing outside the audited container layer, plus JSON
// assembled by hand instead of through util::json.
// lint-fixture-path: src/core/fixture_dump.cpp
#include <cstdint>
#include <ostream>

void dump(std::ostream& out, const double* values) {
  const auto* bits =
      reinterpret_cast<const std::uint64_t*>(values);  // must be flagged
  out << "{\"bits\": " << *bits << "}";               // must be flagged
}
