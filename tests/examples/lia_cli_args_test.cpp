// Regression tests for the lia_cli argument surface: unknown modes and
// unknown/misspelled key=value arguments must exit 2 with usage text (a
// typo that silently fell back to defaults once burned a whole overnight
// campaign), and metrics= must leave a parseable telemetry snapshot
// behind.
//
// These tests exec the real binary (CMake injects its path as
// LOSSTOMO_LIA_CLI_PATH and makes the tests depend on it); when the
// examples are not built the whole suite compiles to a skip stub.
#include <gtest/gtest.h>

#ifdef LOSSTOMO_LIA_CLI_PATH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "test_util.hpp"

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

// Runs the CLI with `argv_tail`, capturing combined output to a scratch
// file (portable enough for POSIX sh; ctest runs these in parallel, so
// the capture file must be per-test).
RunResult run_cli(const std::string& argv_tail) {
  const std::string capture = losstomo::testing::scratch_file("cli.out");
  const std::string command = std::string(LOSSTOMO_LIA_CLI_PATH) + " " +
                              argv_tail + " > " + capture + " 2>&1";
  const int status = std::system(command.c_str());
  RunResult result;
#ifdef WIFEXITED
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#else
  result.exit_code = status;
#endif
  std::ifstream is(capture);
  std::ostringstream os;
  os << is.rdbuf();
  result.output = os.str();
  std::remove(capture.c_str());
  return result;
}

std::string scenario_fixture() {
  return std::string(LOSSTOMO_SOURCE_DIR) + "/scenarios/stable_tree.scn";
}

TEST(LiaCliArgs, UnknownModeExits2WithUsage) {
  const auto result = run_cli("mode=frobnicate");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("unknown mode"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("usage:"), std::string::npos) << result.output;
}

TEST(LiaCliArgs, UnknownKeyExits2WithUsage) {
  // `tick=` is a typo for `ticks=`: it must fail loudly, not run the
  // scenario with the default tick count.
  const auto result =
      run_cli("mode=scenario scenario=" + scenario_fixture() + " tick=40");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("usage:"), std::string::npos) << result.output;
}

TEST(LiaCliArgs, TrailingGarbageExits2) {
  const auto result = run_cli("mode=infer extra_nonsense_key=1");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("usage:"), std::string::npos) << result.output;
}

TEST(LiaCliArgs, ScenarioMetricsSnapshotIsWritten) {
  const std::string metrics = losstomo::testing::scratch_file("metrics.json");
  const auto result =
      run_cli("mode=scenario scenario=" + scenario_fixture() +
              " ticks=40 window=12 metrics=" + metrics + " metrics_every=10");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  std::ifstream is(metrics);
  ASSERT_TRUE(is.good()) << "metrics file missing: " << metrics;
  std::ostringstream os;
  os << is.rdbuf();
  const std::string text = os.str();
  EXPECT_NE(text.find("\"schema\": \"losstomo.metrics\""), std::string::npos);
  EXPECT_NE(text.find("\"scenario.ticks\""), std::string::npos);
  EXPECT_NE(text.find("\"monitor.rank1_updates\""), std::string::npos);
  EXPECT_NE(text.find("\"span.tick.seconds\""), std::string::npos);
  EXPECT_NE(text.find("\"flight_recorder\""), std::string::npos);
  std::remove(metrics.c_str());
}

TEST(LiaCliArgs, PromSuffixSwitchesToPrometheus) {
  const std::string metrics = losstomo::testing::scratch_file("metrics.prom");
  const auto result =
      run_cli("mode=scenario scenario=" + scenario_fixture() +
              " ticks=30 window=12 metrics=" + metrics);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  std::ifstream is(metrics);
  ASSERT_TRUE(is.good()) << "metrics file missing: " << metrics;
  std::ostringstream os;
  os << is.rdbuf();
  EXPECT_NE(os.str().find("# TYPE losstomo_scenario_ticks counter"),
            std::string::npos);
  std::remove(metrics.c_str());
}

}  // namespace

#else  // !LOSSTOMO_LIA_CLI_PATH

TEST(LiaCliArgs, DISABLED_RequiresExampleBinary) {
  GTEST_SKIP() << "examples not built; lia_cli path unavailable";
}

#endif
