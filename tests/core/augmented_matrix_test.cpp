#include "core/augmented_matrix.hpp"

#include <gtest/gtest.h>

#include "linalg/qr.hpp"
#include "test_util.hpp"

namespace losstomo::core {
namespace {

using losstomo::testing::make_fig1_network;

TEST(PairIndexing, CountsAndBounds) {
  EXPECT_EQ(pair_count(1), 1u);
  EXPECT_EQ(pair_count(3), 6u);
  EXPECT_EQ(pair_count(10), 55u);
}

TEST(PairIndexing, PacksUpperTriangleRowMajor) {
  // np = 3: (0,0)=0 (0,1)=1 (0,2)=2 (1,1)=3 (1,2)=4 (2,2)=5.
  EXPECT_EQ(pair_index(0, 0, 3), 0u);
  EXPECT_EQ(pair_index(0, 1, 3), 1u);
  EXPECT_EQ(pair_index(0, 2, 3), 2u);
  EXPECT_EQ(pair_index(1, 1, 3), 3u);
  EXPECT_EQ(pair_index(1, 2, 3), 4u);
  EXPECT_EQ(pair_index(2, 2, 3), 5u);
}

TEST(PairIndexing, BijectiveOverAllPairs) {
  const std::size_t np = 17;
  std::vector<bool> seen(pair_count(np), false);
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t j = i; j < np; ++j) {
      const auto idx = pair_index(i, j, np);
      ASSERT_LT(idx, seen.size());
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
}

TEST(AugmentedMatrix, MatchesPaperPrintedExample) {
  // Paper §4 prints, for the Figure 1 single-beacon network:
  //   A = [1 1 0 0 0;   (pair 1,1)
  //        1 0 0 0 0;   (pair 1,2)
  //        1 0 0 0 0;   (pair 1,3)
  //        1 0 1 1 0;   (pair 2,2)
  //        1 0 1 0 0;   (pair 2,3)
  //        1 0 1 0 1]   (pair 3,3)
  const auto net = make_fig1_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const auto a = build_augmented_matrix(rrm.matrix());
  ASSERT_EQ(a.rows(), 6u);
  ASSERT_EQ(a.cols(), 5u);
  const linalg::Matrix expected{{1, 1, 0, 0, 0}, {1, 0, 0, 0, 0},
                                {1, 0, 0, 0, 0}, {1, 0, 1, 1, 0},
                                {1, 0, 1, 0, 0}, {1, 0, 1, 0, 1}};
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(a(i, j), expected(i, j)) << "entry " << i << "," << j;
    }
  }
}

TEST(AugmentedMatrix, DiagonalPairRowsEqualRoutingRows) {
  const auto net = make_fig1_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const auto a = build_augmented_matrix(rrm.matrix());
  const auto r = rrm.matrix().to_dense();
  const std::size_t np = rrm.path_count();
  for (std::size_t i = 0; i < np; ++i) {
    const auto arow = a.row(pair_index(i, i, np));
    const auto rrow = r.row(i);
    for (std::size_t j = 0; j < r.cols(); ++j) {
      EXPECT_DOUBLE_EQ(arow[j], rrow[j]);
    }
  }
}

TEST(AugmentedMatrix, ThrowsWhenTooLarge) {
  const auto net = make_fig1_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  EXPECT_THROW(build_augmented_matrix(rrm.matrix(), 10), std::length_error);
}

TEST(AugmentedMatrix, LemmaOneHolds) {
  // Lemma 1: Sigma = R diag(v) R^T  <=>  Sigma* = A v, entrywise.
  const auto net = make_fig1_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const auto r = rrm.matrix().to_dense();
  const std::size_t np = rrm.path_count();
  const linalg::Vector v{0.05, 0.001, 0.02, 0.0, 0.01};
  // Direct: Sigma = R diag(v) R^T.
  linalg::Matrix rd = r;
  for (std::size_t i = 0; i < rd.rows(); ++i) {
    for (std::size_t j = 0; j < rd.cols(); ++j) rd(i, j) *= v[j];
  }
  const auto sigma = rd.multiply(r.transposed());
  // Via A: Sigma* = A v.
  const auto a = build_augmented_matrix(rrm.matrix());
  const auto sigma_star = a.multiply(v);
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t j = i; j < np; ++j) {
      EXPECT_NEAR(sigma_star[pair_index(i, j, np)], sigma(i, j), 1e-14);
    }
  }
}

TEST(AugmentedMatrix, PackedCovariancesAlignWithPairIndex) {
  stats::Rng rng(51);
  const auto y = stats::SnapshotMatrix::from_rows(
      {{1.0, 2.0, 0.0}, {0.5, 1.0, 1.0}, {0.0, 0.5, 2.0}, {1.5, 0.0, 0.5}});
  const stats::CenteredSnapshots centered(y);
  const auto packed = packed_covariances(centered);
  ASSERT_EQ(packed.size(), pair_count(3));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(packed[pair_index(i, j, 3)], centered.covariance(i, j));
    }
  }
}

TEST(AugmentedNormal, MatrixMatchesExplicitGram) {
  // (A^T A) from the closed form must equal gram(A) computed explicitly.
  const auto net = losstomo::testing::make_two_beacon_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const auto a = build_augmented_matrix(rrm.matrix());
  const auto explicit_gram = a.gram();
  const linalg::CoTraversalGram gram(rrm.matrix());
  const auto implicit_gram = augmented_normal_matrix(gram);
  ASSERT_EQ(implicit_gram.rows(), explicit_gram.rows());
  for (std::size_t i = 0; i < explicit_gram.rows(); ++i) {
    for (std::size_t j = 0; j < explicit_gram.cols(); ++j) {
      EXPECT_DOUBLE_EQ(implicit_gram(i, j), explicit_gram(i, j))
          << i << "," << j;
    }
  }
}

TEST(AugmentedNormal, RhsMatchesExplicitProduct) {
  stats::Rng rng(52);
  const auto net = losstomo::testing::make_two_beacon_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const auto mu = linalg::Vector(rrm.link_count(), -0.01);
  const auto v = losstomo::testing::random_variances(rrm.link_count(), rng, 0.3);
  const auto y =
      losstomo::testing::synthetic_observations(rrm.matrix(), mu, v, 25, rng);
  const stats::CenteredSnapshots centered(y);

  const auto a = build_augmented_matrix(rrm.matrix());
  const auto sigma = packed_covariances(centered);
  const auto explicit_rhs = a.multiply_transpose(sigma);
  const auto implicit_rhs =
      augmented_normal_rhs(centered, rrm.matrix().column_lists());
  ASSERT_EQ(implicit_rhs.size(), explicit_rhs.size());
  for (std::size_t k = 0; k < explicit_rhs.size(); ++k) {
    EXPECT_NEAR(implicit_rhs[k], explicit_rhs[k], 1e-10) << "link " << k;
  }
}

// Property: closed-form normal equations equal the explicit ones on random
// sparse routing matrices.
class AugmentedNormalProperty : public ::testing::TestWithParam<int> {};

TEST_P(AugmentedNormalProperty, ImplicitEqualsExplicit) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t np = 8, nc = 6;
  std::vector<std::vector<std::uint32_t>> rows(np);
  for (auto& row : rows) {
    for (std::uint32_t c = 0; c < nc; ++c) {
      if (rng.bernoulli(0.4)) row.push_back(c);
    }
    if (row.empty()) row.push_back(0);
  }
  const linalg::SparseBinaryMatrix r(nc, std::move(rows));
  const auto a = build_augmented_matrix(r);
  const linalg::CoTraversalGram gram(r);
  const auto implicit_gram = augmented_normal_matrix(gram);
  const auto explicit_gram = a.gram();
  for (std::size_t i = 0; i < nc; ++i) {
    for (std::size_t j = 0; j < nc; ++j) {
      EXPECT_DOUBLE_EQ(implicit_gram(i, j), explicit_gram(i, j));
    }
  }
  // RHS equality on random observations.
  stats::SnapshotMatrix y(np, 12);
  for (std::size_t l = 0; l < 12; ++l) {
    for (std::size_t i = 0; i < np; ++i) y.at(l, i) = rng.gaussian();
  }
  const stats::CenteredSnapshots centered(y);
  const auto explicit_rhs = a.multiply_transpose(packed_covariances(centered));
  const auto implicit_rhs = augmented_normal_rhs(centered, r.column_lists());
  for (std::size_t k = 0; k < nc; ++k) {
    EXPECT_NEAR(implicit_rhs[k], explicit_rhs[k], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AugmentedNormalProperty,
                         ::testing::Range(300, 312));

}  // namespace
}  // namespace losstomo::core
