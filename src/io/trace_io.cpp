#include "io/trace_io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace losstomo::io {

namespace {

// Strips comments, skips blank lines, and keeps `lineno` at the 1-based
// number of the returned line.  Returns false only at clean end-of-file: a
// stream-level I/O failure (badbit) mid-read would otherwise be
// indistinguishable from EOF and silently truncate the trace, so it throws
// instead.
bool next_content_line(std::istream& is, std::string& line,
                       std::size_t& lineno) {
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Any non-whitespace character makes this a content line; no stream
    // construction in the per-line loop.
    if (line.find_first_not_of(" \t\r\v\f") != std::string::npos) return true;
  }
  if (is.bad()) {
    throw std::runtime_error("trace read: stream I/O failure after line " +
                             std::to_string(lineno));
  }
  return false;
}

template <typename Open>
auto with_input(const std::string& file, Open&& open) {
  std::ifstream is(file);
  if (!is) throw std::runtime_error("cannot open for reading: " + file);
  return open(is);
}

template <typename Open>
void with_output(const std::string& file, Open&& open) {
  std::ofstream os(file);
  if (!os) throw std::runtime_error("cannot open for writing: " + file);
  open(os);
  if (!os) throw std::runtime_error("write failed: " + file);
}

}  // namespace

void write_topology(std::ostream& os, const net::Graph& g) {
  os << "# losstomo topology\n";
  os << "nodes " << g.node_count() << '\n';
  for (net::NodeId v = 0; v < g.node_count(); ++v) {
    if (g.as_of(v) != net::kNoAs) os << "as " << v << ' ' << g.as_of(v) << '\n';
  }
  for (net::EdgeId e = 0; e < g.edge_count(); ++e) {
    os << "edge " << g.edge(e).from << ' ' << g.edge(e).to << '\n';
  }
}

net::Graph read_topology(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  if (!next_content_line(is, line, lineno)) {
    throw std::runtime_error("empty topology");
  }
  // lint: hot-path-parsing-ok(topology header, parsed once per file load)
  std::istringstream header(line);
  std::string keyword;
  std::size_t nv = 0;
  header >> keyword >> nv;
  if (keyword != "nodes") {
    throw std::runtime_error("expected 'nodes <count>' at topology line " +
                             std::to_string(lineno) + ": " + line);
  }
  net::Graph g(nv);
  while (next_content_line(is, line, lineno)) {
    // lint: hot-path-parsing-ok(topology lines, O(edges) once per run —
    // never on the snapshot path)
    std::istringstream ss(line);
    ss >> keyword;
    if (keyword == "as") {
      net::NodeId v;
      std::uint32_t as_id;
      if (!(ss >> v >> as_id)) {
        throw std::runtime_error("bad 'as' line " + std::to_string(lineno) +
                                 ": " + line);
      }
      g.set_as(v, as_id);
    } else if (keyword == "edge") {
      net::NodeId from, to;
      if (!(ss >> from >> to)) {
        throw std::runtime_error("bad 'edge' line " + std::to_string(lineno) +
                                 ": " + line);
      }
      g.add_edge(from, to);
    } else {
      throw std::runtime_error("unknown topology keyword at line " +
                               std::to_string(lineno) + ": " + keyword);
    }
  }
  return g;
}

void write_paths(std::ostream& os, const std::vector<net::Path>& paths) {
  os << "# losstomo paths: <source> <destination> <edge ids...>\n";
  for (const auto& p : paths) {
    os << p.source << ' ' << p.destination;
    for (const auto e : p.edges) os << ' ' << e;
    os << '\n';
  }
}

std::vector<net::Path> read_paths(std::istream& is) {
  std::vector<net::Path> paths;
  std::string line;
  std::size_t lineno = 0;
  while (next_content_line(is, line, lineno)) {
    // lint: hot-path-parsing-ok(path list, O(paths) once per run — the
    // per-snapshot hot loop below uses from_chars)
    std::istringstream ss(line);
    net::Path p;
    if (!(ss >> p.source >> p.destination)) {
      throw std::runtime_error("bad path line " + std::to_string(lineno) +
                               ": " + line);
    }
    net::EdgeId e;
    while (ss >> e) p.edges.push_back(e);
    if (!ss.eof()) {  // non-numeric trailing token, not end of line
      throw std::runtime_error("bad path line " + std::to_string(lineno) +
                               ": " + line);
    }
    if (p.edges.empty()) {
      throw std::runtime_error("path without edges at line " +
                               std::to_string(lineno) + ": " + line);
    }
    paths.push_back(std::move(p));
  }
  return paths;
}

void write_snapshots(std::ostream& os,
                     const std::vector<std::vector<double>>& phi_rows) {
  os << "# losstomo snapshots: one line per snapshot, phi per path\n";
  // max_digits10 so a written campaign parses back to bit-identical
  // doubles (text <-> binary conversion round-trips exactly).
  const auto saved = os.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& row : phi_rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ' ';
      os << row[i];
    }
    os << '\n';
  }
  os.precision(saved);
}

SnapshotStream::SnapshotStream(std::istream& is, bool log_transform)
    : is_(&is), log_transform_(log_transform) {}

bool SnapshotStream::next(std::vector<double>& y) {
  if (!next_content_line(*is_, line_, lineno_)) return false;
  y.clear();
  // Hot loop: scan the reused line buffer with std::from_chars — no
  // istringstream construction, no locale machinery, same
  // correctly-rounded doubles as the stream extraction it replaces.
  const char* p = line_.data();
  const char* const end = p + line_.size();
  while (true) {
    while (p != end && (*p == ' ' || *p == '\t' || *p == '\r' ||
                        *p == '\v' || *p == '\f')) {
      ++p;
    }
    if (p == end) break;
    double phi = 0.0;
    const auto [rest, ec] = std::from_chars(p, end, phi);
    if (ec != std::errc{}) {
      throw std::runtime_error("bad snapshot line " + std::to_string(lineno_) +
                               ": " + line_);
    }
    p = rest;
    // Negated-range form so NaN (which compares false to everything, and
    // which from_chars happily parses from "nan") is rejected too.
    if (!(phi >= 0.0 && phi <= 1.0)) {
      throw std::runtime_error("phi out of [0,1] at snapshot line " +
                               std::to_string(lineno_) + ": " + line_);
    }
    y.push_back(log_transform_ ? std::log(std::max(phi, 1e-9)) : phi);
  }
  // next_content_line guarantees at least one token, so an empty parse
  // means non-numeric input.
  if (y.empty()) {
    throw std::runtime_error("bad snapshot line " + std::to_string(lineno_) +
                             ": " + line_);
  }
  if (dim_ == 0) {
    dim_ = y.size();
  } else if (y.size() != dim_) {
    throw std::runtime_error("ragged snapshot file at line " +
                             std::to_string(lineno_));
  }
  ++read_;
  return true;
}

stats::SnapshotMatrix read_snapshots(std::istream& is, bool log_transform) {
  SnapshotStream stream(is, log_transform);
  std::vector<std::vector<double>> rows;
  std::vector<double> row;
  while (stream.next(row)) rows.push_back(row);
  if (rows.empty()) throw std::runtime_error("empty snapshot file");
  return stats::SnapshotMatrix::from_rows(rows);
}

void save_topology(const std::string& file, const net::Graph& g) {
  with_output(file, [&](std::ostream& os) { write_topology(os, g); });
}

net::Graph load_topology(const std::string& file) {
  return with_input(file, [&](std::istream& is) { return read_topology(is); });
}

void save_paths(const std::string& file, const std::vector<net::Path>& paths) {
  with_output(file, [&](std::ostream& os) { write_paths(os, paths); });
}

std::vector<net::Path> load_paths(const std::string& file) {
  return with_input(file, [&](std::istream& is) { return read_paths(is); });
}

void save_snapshots(const std::string& file,
                    const std::vector<std::vector<double>>& phi_rows) {
  with_output(file, [&](std::ostream& os) { write_snapshots(os, phi_rows); });
}

stats::SnapshotMatrix load_snapshots(const std::string& file,
                                     bool log_transform) {
  return with_input(file, [&](std::istream& is) {
    return read_snapshots(is, log_transform);
  });
}

}  // namespace losstomo::io
