// Fixture: metric names the exporter schema rejects, and a deterministic
// tag on wall-clock material.
// lint-fixture-path: src/core/fixture_metrics.cpp
#include "obs/registry.hpp"

void register_metrics(losstomo::obs::Registry& r) {
  r.counter("Monitor.Ticks");  // must be flagged: uppercase
  r.gauge("monitor.solve.seconds",
          losstomo::obs::Determinism::kDeterministic);  // must be flagged:
  // timer-derived metric published as deterministic
  r.histogram("monitor.merge.seconds",
              losstomo::obs::Determinism::kDeterministic);  // must be
  // flagged: histograms are wall-clock by contract
}
