#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace losstomo::linalg {

namespace {

// Forward + back substitution with a lower-triangular factor: solves
// (L L^T) x = b.  Shared by every factor-owning class in this file.
Vector solve_llt(const Matrix& l, std::span<const double> b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("rhs size mismatch");
  Vector w(b.begin(), b.end());
  for (std::size_t i = 0; i < n; ++i) {
    double s = w[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * w[k];
    w[i] = s / l(i, i);
  }
  for (std::size_t ri = n; ri-- > 0;) {
    double s = w[ri];
    for (std::size_t k = ri + 1; k < n; ++k) s -= l(k, ri) * w[k];
    w[ri] = s / l(ri, ri);
  }
  return w;
}

}  // namespace

Cholesky::Cholesky(Matrix a, double min_pivot) : l_(std::move(a)) {
  if (l_.rows() != l_.cols()) throw std::invalid_argument("not square");
  const std::size_t n = l_.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = l_(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (!(d > min_pivot)) throw std::runtime_error("Cholesky: matrix not SPD");
    const double ljj = std::sqrt(d);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = l_(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / ljj;
    }
    // Zero the strict upper triangle so l() is a clean factor.
    for (std::size_t c = j + 1; c < n; ++c) l_(j, c) = 0.0;
  }
}

Vector Cholesky::solve(std::span<const double> b) const {
  return solve_llt(l_, b);
}

double Cholesky::sqrt_det() const {
  double p = 1.0;
  for (std::size_t i = 0; i < dim(); ++i) p *= l_(i, i);
  return p;
}

RegularizedCholesky::RegularizedCholesky(const Matrix& a, double jitter,
                                         int max_attempts,
                                         double min_pivot_rel) {
  double max_diag = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    max_diag = std::max(max_diag, std::fabs(a(i, i)));
  }
  if (max_diag == 0.0) max_diag = 1.0;
  const double min_pivot = min_pivot_rel * max_diag;

  double eps = 0.0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Matrix work = a;
    if (eps > 0.0) {
      for (std::size_t i = 0; i < work.rows(); ++i) work(i, i) += eps;
    }
    try {
      holder_.emplace_back(std::move(work), min_pivot);
      jitter_used_ = eps;
      jitter_attempts_ = attempt;
      return;
    } catch (const std::runtime_error&) {
      eps = (eps == 0.0) ? jitter * max_diag : eps * 10.0;
    }
  }
  throw std::runtime_error("RegularizedCholesky: factorization failed");
}

Vector RegularizedCholesky::solve(std::span<const double> b) const {
  return holder_.front().solve(b);
}

UpdatableCholesky::UpdatableCholesky(const Matrix& a, double jitter,
                                     int max_attempts,
                                     double min_pivot_rel) {
  const RegularizedCholesky chol(a, jitter, max_attempts, min_pivot_rel);
  l_ = chol.factor().l();
  jitter_used_ = chol.jitter_used();
  jitter_attempts_ = chol.jitter_attempts();
  w_.resize(l_.rows());
}

UpdatableCholesky UpdatableCholesky::from_state(Matrix l, double jitter_used,
                                                int jitter_attempts) {
  if (l.rows() != l.cols()) {
    throw std::invalid_argument("from_state: factor must be square");
  }
  UpdatableCholesky chol;
  chol.l_ = std::move(l);
  chol.jitter_used_ = jitter_used;
  chol.jitter_attempts_ = jitter_attempts;
  chol.w_.resize(chol.l_.rows());
  return chol;
}

void UpdatableCholesky::update(std::span<const double> x) {
  const std::size_t n = dim();
  if (x.size() != n) throw std::invalid_argument("update size mismatch");
  std::copy(x.begin(), x.end(), w_.begin());
  for (std::size_t k = 0; k < n; ++k) {
    const double wk = w_[k];
    if (wk == 0.0) continue;  // identity rotation; preserves leading sparsity
    const double lkk = l_(k, k);
    const double r = std::sqrt(lkk * lkk + wk * wk);
    const double c = lkk / r;
    const double s = wk / r;
    l_(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = l_(i, k);
      const double wi = w_[i];
      l_(i, k) = c * lik + s * wi;
      w_[i] = c * wi - s * lik;
    }
  }
}

bool UpdatableCholesky::downdate(std::span<const double> x,
                                 double downdate_tol) {
  const std::size_t n = dim();
  if (x.size() != n) throw std::invalid_argument("downdate size mismatch");
  std::copy(x.begin(), x.end(), w_.begin());
  for (std::size_t k = 0; k < n; ++k) {
    const double wk = w_[k];
    if (wk == 0.0) continue;
    const double lkk = l_(k, k);
    const double d = (lkk - wk) * (lkk + wk);
    // Pivot would vanish (or go negative): the downdated matrix is no
    // longer safely positive definite.  The factor is now partially
    // rotated and therefore invalid — the caller must refactorize.
    if (!(d > downdate_tol * lkk * lkk)) return false;
    const double r = std::sqrt(d);
    const double ch = lkk / r;
    const double sh = wk / r;
    l_(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = l_(i, k);
      const double wi = w_[i];
      l_(i, k) = ch * lik - sh * wi;
      w_[i] = ch * wi - sh * lik;
    }
  }
  return true;
}

void UpdatableCholesky::append_identity(std::size_t k) {
  if (k == 0) return;
  const std::size_t n = dim();
  Matrix grown(n + k, n + k);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = l_.row(i);
    std::copy(src.begin(), src.end(), grown.row(i).begin());
  }
  for (std::size_t i = n; i < n + k; ++i) grown(i, i) = 1.0;
  l_ = std::move(grown);
  w_.resize(n + k);
}

Vector UpdatableCholesky::solve(std::span<const double> b) const {
  return solve_llt(l_, b);
}

PivotedCholesky::PivotedCholesky(Matrix a, double rel_tol) {
  if (a.rows() != a.cols()) throw std::invalid_argument("not square");
  const std::size_t n = a.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  double max_pivot0 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_pivot0 = std::max(max_pivot0, a(i, i));
  }
  if (max_pivot0 <= 0.0) {
    rank_ = 0;
    return;
  }
  const double cutoff = rel_tol * max_pivot0;

  for (std::size_t k = 0; k < n; ++k) {
    // Select the largest remaining diagonal entry as pivot.
    std::size_t best = k;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (a(i, i) > a(best, best)) best = i;
    }
    if (a(best, best) <= cutoff) break;
    if (best != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(k, c), a(best, c));
      for (std::size_t r = 0; r < n; ++r) std::swap(a(r, k), a(r, best));
      std::swap(perm_[k], perm_[best]);
    }
    const double piv = std::sqrt(a(k, k));
    a(k, k) = piv;
    for (std::size_t i = k + 1; i < n; ++i) a(i, k) /= piv;
    // Keep the trailing block symmetric: the pivot search swaps whole
    // rows/columns, so both triangles must stay current.
    for (std::size_t j = k + 1; j < n; ++j) {
      const double ljk = a(j, k);
      if (ljk == 0.0) continue;
      for (std::size_t i = j; i < n; ++i) {
        a(i, j) -= a(i, k) * ljk;
        a(j, i) = a(i, j);
      }
    }
    ++rank_;
  }
}

IncrementalCholesky::IncrementalCholesky(double rel_tol) : rel_tol_(rel_tol) {}

bool IncrementalCholesky::try_add(double diag, std::span<const double> cross) {
  if (cross.size() != n_) throw std::invalid_argument("cross size mismatch");
  // Forward substitution L w = cross.
  Vector w(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    const double* li = row(i);
    double s = cross[i];
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * w[k];
    w[i] = s / li[i];
  }
  double res2 = diag;
  for (const double wi : w) res2 -= wi * wi;
  last_res2_ = res2;
  if (!(res2 > rel_tol_ * std::max(diag, 1e-300))) return false;

  packed_.insert(packed_.end(), w.begin(), w.end());
  packed_.push_back(std::sqrt(res2));
  ++n_;
  return true;
}

Vector IncrementalCholesky::forward(std::span<const double> b) const {
  if (b.size() != n_) throw std::invalid_argument("rhs size mismatch");
  Vector w(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    const double* li = row(i);
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * w[k];
    w[i] = s / li[i];
  }
  return w;
}

Vector IncrementalCholesky::backward(std::span<const double> w) const {
  if (w.size() != n_) throw std::invalid_argument("rhs size mismatch");
  Vector x(w.begin(), w.end());
  for (std::size_t ri = n_; ri-- > 0;) {
    x[ri] /= row(ri)[ri];
    const double xi = x[ri];
    for (std::size_t i = 0; i < ri; ++i) x[i] -= row(ri)[i] * xi;
  }
  return x;
}

Vector IncrementalCholesky::solve(std::span<const double> b) const {
  const Vector w = forward(b);
  return backward(w);
}

}  // namespace losstomo::linalg
