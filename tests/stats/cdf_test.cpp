#include "stats/cdf.hpp"

#include <gtest/gtest.h>

namespace losstomo::stats {
namespace {

TEST(EmpiricalCdf, BasicFractions) {
  const EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
}

TEST(EmpiricalCdf, RejectsEmpty) {
  EXPECT_THROW(EmpiricalCdf({}), std::invalid_argument);
}

TEST(EmpiricalCdf, Quantiles) {
  const EmpiricalCdf cdf({0.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
}

TEST(EmpiricalCdf, QuantileOutOfRangeThrows) {
  const EmpiricalCdf cdf({1.0});
  EXPECT_THROW((void)cdf.quantile(1.5), std::invalid_argument);
}

TEST(EmpiricalCdf, MedianMinMax) {
  const EmpiricalCdf cdf({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  const EmpiricalCdf cdf({1.0, 1.5, 2.0, 8.0, 9.0});
  const auto curve = cdf.curve(11);
  ASSERT_EQ(curve.size(), 11u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(25.0);   // clamps to last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 2.5);
  EXPECT_DOUBLE_EQ(h.count(0), 2.5);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace losstomo::stats
