// The reduced routing matrix R (paper §3.1).
//
// Construction performs the paper's two reduction steps:
//  1. drop links not covered by any path (all-zero columns), and
//  2. group links that are indistinguishable from end-to-end measurements
//     into a single *virtual link*.
//
// Two physical links are indistinguishable exactly when they are traversed
// by the same set of paths (identical columns of the unreduced matrix);
// consecutive "alias" links without a branching point are the common case,
// but the column criterion is the precise one and is what the paper's
// proofs require ("the columns of the resulting reduced routing matrix are
// therefore all distinct and nonzero").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "linalg/sparse.hpp"
#include "net/graph.hpp"
#include "net/path.hpp"

namespace losstomo::net {

/// Reduced routing matrix: rows = paths, columns = virtual links.
class ReducedRoutingMatrix {
 public:
  /// Builds the reduced matrix for the given paths over `g`.
  /// Paths must be non-empty; edges referenced must exist in `g`.
  ReducedRoutingMatrix(const Graph& g, std::vector<Path> paths);

  [[nodiscard]] std::size_t path_count() const { return matrix_.rows(); }
  [[nodiscard]] std::size_t link_count() const { return matrix_.cols(); }

  /// The 0/1 path-by-link matrix.
  [[nodiscard]] const linalg::SparseBinaryMatrix& matrix() const {
    return matrix_;
  }

  /// The paths, in row order.
  [[nodiscard]] const std::vector<Path>& paths() const { return paths_; }

  /// Physical edges grouped into virtual link k (ascending edge id).
  [[nodiscard]] std::span<const EdgeId> members(std::size_t k) const {
    return members_[k];
  }

  /// Virtual link containing physical edge e, if e is covered.
  [[nodiscard]] std::optional<std::size_t> link_of(EdgeId e) const;

  /// Virtual links of path i in traversal order (first-encounter order of
  /// the path's physical edges).
  [[nodiscard]] std::span<const std::uint32_t> links_of_path(
      std::size_t i) const {
    return path_links_[i];
  }

  /// Sums a per-physical-edge quantity over each virtual link's members
  /// (e.g. log transmission rates: the virtual link's log rate is the sum
  /// of its members').
  [[nodiscard]] linalg::Vector aggregate_edge_values(
      std::span<const double> per_edge) const;

  /// Combines per-edge loss rates into per-virtual-link loss rates:
  /// loss_k = 1 - prod_members (1 - loss_e).
  [[nodiscard]] linalg::Vector aggregate_edge_losses(
      std::span<const double> per_edge_loss) const;

  /// True when any member edge crosses an AS boundary.
  [[nodiscard]] bool link_is_inter_as(const Graph& g, std::size_t k) const;

  /// Number of physical edges covered by at least one path.
  [[nodiscard]] std::size_t covered_edge_count() const { return edge_link_.size(); }

 private:
  std::vector<Path> paths_;
  linalg::SparseBinaryMatrix matrix_;
  std::vector<std::vector<EdgeId>> members_;
  std::vector<std::pair<EdgeId, std::uint32_t>> edge_link_;  // sorted by edge
  std::vector<std::vector<std::uint32_t>> path_links_;       // traversal order
};

}  // namespace losstomo::net
