// Fixture: a raw section-tag literal at a call site, and a class whose
// checkpoint surface is asymmetric (save without restore) — the PR 8
// store-order bug was exactly a save/restore asymmetry.
// lint-fixture-path: src/core/fixture_component.hpp
namespace losstomo::io {
class CheckpointWriter;
class CheckpointReader;
}  // namespace losstomo::io

namespace losstomo::core {

class FixtureComponent {
 public:
  void save_state(io::CheckpointWriter& writer) const;  // must be flagged:
  // no matching restore_state in this class
};

void poke(io::CheckpointWriter& w);

inline void save_raw(io::CheckpointWriter& writer) {
  (void)writer;
  // A call-shaped use of a raw tag literal; must be flagged.
  // (begin_section("FIXT") stands in for the real writer API.)
}

}  // namespace losstomo::core

#define FIXTURE_EMIT(w) begin_section("FIXT")
