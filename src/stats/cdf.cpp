#include "stats/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace losstomo::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  if (sorted_.empty()) throw std::invalid_argument("empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile out of range");
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  if (points < 2) throw std::invalid_argument("need >= 2 curve points");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = min();
  const double hi = max();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("bad histogram");
}

void Histogram::add(double x, double weight) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<long>(std::floor(t * static_cast<double>(counts_.size())));
  b = std::clamp(b, 0L, static_cast<long>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(b)] += weight;
}

double Histogram::bin_center(std::size_t b) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(b) + 0.5) * w;
}

double Histogram::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), 0.0);
}

}  // namespace losstomo::stats
