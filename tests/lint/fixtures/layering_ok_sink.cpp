// Fixture: the pipeline *sink* layer may depend on the engine — sinks sit
// above core in the sanctioned order, the container below it.
// lint-fixture-path: src/io/pipeline_extra.cpp
#include "core/monitor.hpp"
#include "io/binary_trace.hpp"
#include "util/timer.hpp"
