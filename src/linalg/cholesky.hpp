// Cholesky-family factorizations for symmetric positive (semi-)definite
// systems.
//
// These power the "implicit" large-scale paths of the library: the Phase-1
// normal equations (A^T A) v = A^T sigma and the Phase-2 reduced
// first-moment solve, both of which operate on Gram matrices derived from
// the routing matrix.  IncrementalCholesky is the core of the Phase-2
// column-elimination procedure: columns are admitted in decreasing variance
// order until the first dependent column, which identifies the minimal
// removal set (see src/core/elimination.hpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace losstomo::linalg {

/// Standard Cholesky (L L^T) of a symmetric positive definite matrix.
class Cholesky {
 public:
  /// Factorizes `a` (copied; only the lower triangle is read).  Throws
  /// std::runtime_error if a pivot is not strictly positive.
  explicit Cholesky(Matrix a);

  [[nodiscard]] std::size_t dim() const { return l_.rows(); }

  /// Solves a x = b.
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Lower-triangular factor.
  [[nodiscard]] const Matrix& l() const { return l_; }

  /// det(a)^(1/2) = prod of diagonal entries (useful for diagnostics).
  [[nodiscard]] double sqrt_det() const;

 private:
  Matrix l_;
};

/// Cholesky with additive diagonal regularization fallback: attempts a plain
/// factorization and, on failure, retries with `jitter * max_diag * I`
/// escalating by 10x up to `max_attempts`.  Returns the jitter actually
/// used; 0 for a clean factorization.  This is the pragmatic guard for
/// nearly-singular normal equations produced by sampling noise.
class RegularizedCholesky {
 public:
  explicit RegularizedCholesky(const Matrix& a, double jitter = 1e-12,
                               int max_attempts = 6);

  [[nodiscard]] Vector solve(std::span<const double> b) const;
  [[nodiscard]] double jitter_used() const { return jitter_used_; }

 private:
  std::vector<Cholesky> holder_;  // size 1; indirection for late init
  double jitter_used_ = 0.0;
};

/// Diagonal-pivoted (rank-revealing) Cholesky of a PSD matrix:
/// P^T A P = L L^T with non-increasing pivots.  Stops when the largest
/// remaining pivot falls below rel_tol * (largest initial pivot), which
/// yields the numerical rank.
class PivotedCholesky {
 public:
  explicit PivotedCholesky(Matrix a, double rel_tol = 1e-10);

  [[nodiscard]] std::size_t rank() const { return rank_; }
  /// permutation()[k] = original index of the k-th pivot.
  [[nodiscard]] const std::vector<std::size_t>& permutation() const {
    return perm_;
  }

 private:
  std::size_t rank_ = 0;
  std::vector<std::size_t> perm_;
};

/// Incrementally grown Cholesky factor of a Gram matrix whose columns are
/// revealed one at a time.
///
/// Each `try_add(diag, cross)` call attempts to append a column with
/// self-inner-product `diag` and inner products `cross` against the
/// already-accepted columns.  If the squared residual of the new column
/// against the span of the accepted ones falls at or below
/// rel_tol * diag, the column is rejected (linearly dependent) and the
/// factor is unchanged.  Otherwise the factor grows by one row.
///
/// After construction, `solve(b)` solves (C^T C) x = b where C is the
/// matrix of accepted columns in insertion order.
class IncrementalCholesky {
 public:
  explicit IncrementalCholesky(double rel_tol = 1e-9);

  /// Number of accepted columns.
  [[nodiscard]] std::size_t size() const { return n_; }

  /// Attempts to append a column; returns true when accepted.
  /// `cross.size()` must equal size().
  bool try_add(double diag, std::span<const double> cross);

  /// Squared residual of the most recent try_add (accepted or not);
  /// diagnostic for tolerance tuning.
  [[nodiscard]] double last_residual_sq() const { return last_res2_; }

  /// Solves (C^T C) x = b for b of length size().
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Forward substitution L w = b.
  [[nodiscard]] Vector forward(std::span<const double> b) const;
  /// Back substitution L^T x = w.
  [[nodiscard]] Vector backward(std::span<const double> w) const;

 private:
  // Row k of L (length k+1) starts at offset k(k+1)/2 in the packed store.
  [[nodiscard]] const double* row(std::size_t k) const {
    return packed_.data() + k * (k + 1) / 2;
  }

  double rel_tol_;
  std::size_t n_ = 0;
  std::vector<double> packed_;  // packed lower-triangular rows
  double last_res2_ = 0.0;
};

}  // namespace losstomo::linalg
