// Shared builders for the test suite: the paper's worked examples and
// random problem generators, plus the per-test scratch-file helper.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "net/graph.hpp"
#include "net/path.hpp"
#include "net/routing_matrix.hpp"
#include "stats/moments.hpp"
#include "stats/rng.hpp"
#include "topology/generators.hpp"
#include "topology/routing.hpp"

namespace losstomo::testing {

/// Scratch-file path unique to the calling gtest test.  Parallel ctest
/// processes must not share scratch files: a fixed /tmp path racing
/// between two tests corrupts both, so the suite and test name are
/// embedded in the filename.  `name` distinguishes multiple files within
/// one test.
inline std::string scratch_file(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string unique = ::testing::TempDir() + "losstomo_";
  if (info != nullptr) {
    unique += std::string(info->test_suite_name()) + "_" +
              std::string(info->name()) + "_";
  }
  return unique + name;
}

/// The paper's Figure 1 network: one beacon B1, three destinations, five
/// links; link e1 shared by all paths.
///   P1 = {e1, e2}, P2 = {e1, e3, e4}, P3 = {e1, e3, e5}
/// Its reduced routing matrix is printed in §4 of the paper:
///   R = [1 1 0 0 0; 1 0 1 1 0; 1 0 1 0 1]
struct Fig1Network {
  net::Graph graph;
  std::vector<net::Path> paths;
  net::NodeId beacon;
  std::vector<net::NodeId> destinations;
};

inline Fig1Network make_fig1_network() {
  Fig1Network net;
  // Nodes: B1=0, v=1, w=2, D1=3, D2=4, D3=5.
  net.graph.add_nodes(6);
  net.beacon = 0;
  const auto e1 = net.graph.add_edge(0, 1);  // B1 -> v   (shared)
  const auto e2 = net.graph.add_edge(1, 3);  // v  -> D1
  const auto e3 = net.graph.add_edge(1, 2);  // v  -> w   (shared by P2,P3)
  const auto e4 = net.graph.add_edge(2, 4);  // w  -> D2
  const auto e5 = net.graph.add_edge(2, 5);  // w  -> D3
  net.paths = {
      {.source = 0, .destination = 3, .edges = {e1, e2}},
      {.source = 0, .destination = 4, .edges = {e1, e3, e4}},
      {.source = 0, .destination = 5, .edges = {e1, e3, e5}},
  };
  net.destinations = {3, 4, 5};
  return net;
}

/// A two-beacon variant of the paper's Figure 2: beacons B1, B2 each probe
/// destinations D1..D3 through a shared interior.  rank(R) < nc but the
/// augmented matrix has full column rank (Theorem 1).
struct TwoBeaconNetwork {
  net::Graph graph;
  std::vector<net::Path> paths;
};

inline TwoBeaconNetwork make_two_beacon_network() {
  TwoBeaconNetwork net;
  // Nodes: B1=0, B2=1, u=2, v=3, D1=4, D2=5, D3=6.
  net.graph.add_nodes(7);
  const auto e1 = net.graph.add_edge(0, 2);  // B1 -> u
  const auto e2 = net.graph.add_edge(1, 2);  // B2 -> u
  const auto e3 = net.graph.add_edge(2, 4);  // u  -> D1
  const auto e4 = net.graph.add_edge(2, 3);  // u  -> v
  const auto e5 = net.graph.add_edge(3, 5);  // v  -> D2
  const auto e6 = net.graph.add_edge(3, 6);  // v  -> D3
  for (const net::NodeId b : {0u, 1u}) {
    const auto first = (b == 0) ? e1 : e2;
    net.paths.push_back({.source = b, .destination = 4, .edges = {first, e3}});
    net.paths.push_back({.source = b, .destination = 5, .edges = {first, e4, e5}});
    net.paths.push_back({.source = b, .destination = 6, .edges = {first, e4, e6}});
  }
  return net;
}

/// Random per-link "variances" scaled to look like log-loss variances.
inline linalg::Vector random_variances(std::size_t n, stats::Rng& rng,
                                       double congested_fraction = 0.1) {
  linalg::Vector v(n);
  for (auto& x : v) {
    x = rng.bernoulli(congested_fraction) ? rng.uniform(0.01, 0.1)
                                          : rng.uniform(0.0, 1e-6);
  }
  return v;
}

/// Synthetic observation matrix: draws X ~ N(mu, diag(v)) per snapshot and
/// returns Y = R X.  The exact log-linear model, no probe noise — used to
/// test estimator correctness in isolation.
inline stats::SnapshotMatrix synthetic_observations(
    const linalg::SparseBinaryMatrix& r, std::span<const double> mu,
    std::span<const double> v, std::size_t m, stats::Rng& rng) {
  stats::SnapshotMatrix y(r.rows(), m);
  linalg::Vector x(r.cols());
  for (std::size_t l = 0; l < m; ++l) {
    for (std::size_t k = 0; k < r.cols(); ++k) {
      x[k] = rng.gaussian(mu[k], std::sqrt(v[k]));
    }
    const auto yl = r.multiply(x);
    std::copy(yl.begin(), yl.end(), y.sample(l).begin());
  }
  return y;
}

/// Random multi-beacon mesh + routed, sanitized paths + reduced matrix.
struct RandomMesh {
  topology::Topology topo;
  std::vector<net::Path> paths;
};

inline RandomMesh make_random_mesh(std::size_t nodes, std::size_t hosts,
                                   stats::Rng& rng) {
  RandomMesh mesh;
  mesh.topo = topology::make_waxman(
      {.nodes = nodes, .links_per_node = 2, .alpha = 0.3, .beta = 0.4}, rng);
  const auto host_nodes = topology::pick_low_degree_hosts(mesh.topo.graph, hosts);
  const auto routed =
      topology::route_paths(mesh.topo.graph, host_nodes, host_nodes);
  mesh.paths = routed.paths;
  return mesh;
}

}  // namespace losstomo::testing
