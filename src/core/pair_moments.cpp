#include "core/pair_moments.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "io/checkpoint.hpp"
#include "io/checkpoint_tags.hpp"
#include "util/parallel.hpp"

namespace losstomo::core {

namespace {
constexpr std::size_t kPairGrain = 8192;
}  // namespace

PairMoments::PairMoments(std::shared_ptr<const SharingPairStore> store,
                         std::size_t dim,
                         stats::StreamingMomentsOptions options)
    : store_(std::move(store)),
      dim_(dim),
      options_(options),
      churn_(dim),
      ring_(dim, options.window),
      mean_(dim, 0.0),
      delta_(dim, 0.0),
      values_(store_->pair_count(), 0.0) {
  if (options_.window < 2) throw std::invalid_argument("window must be >= 2");
  if (store_->path_count() != dim_) {
    throw std::invalid_argument("store path count != dim");
  }
  if (options_.refresh_every == 0) {
    options_.refresh_every = 2 * options_.window;
  }
}

void PairMoments::rank1(double w) {
  util::parallel_for(
      values_.size(), kPairGrain,
      [&](std::size_t begin, std::size_t end) {
        store_->for_pairs(begin, end,
                          [&](std::size_t p, std::uint32_t i, std::uint32_t j,
                              std::span<const std::uint32_t>) {
                            values_[p] += w * delta_[i] * delta_[j];
                          });
      },
      options_.threads);
}

void PairMoments::add(std::span<const double> y) {
  const double n1 = static_cast<double>(count_ + 1);
  for (std::size_t i = 0; i < dim_; ++i) delta_[i] = y[i] - mean_[i];
  for (std::size_t i = 0; i < dim_; ++i) mean_[i] += delta_[i] / n1;
  if (count_ > 0) rank1(static_cast<double>(count_) / n1);
  ++count_;
}

void PairMoments::retire(std::span<const double> y) {
  const double n = static_cast<double>(count_);
  for (std::size_t i = 0; i < dim_; ++i) delta_[i] = y[i] - mean_[i];
  if (count_ == 1) {
    std::fill(mean_.begin(), mean_.end(), 0.0);
    std::fill(values_.begin(), values_.end(), 0.0);
    count_ = 0;
    return;
  }
  const double n1 = n - 1.0;
  for (std::size_t i = 0; i < dim_; ++i) mean_[i] -= delta_[i] / n1;
  rank1(-n / n1);
  --count_;
}

void PairMoments::push(std::span<const double> y) {
  if (y.size() != dim_) throw std::invalid_argument("snapshot size != dim");
  if (values_.size() != store_->pair_count()) {
    throw std::logic_error("pair store grew without PairMoments::add_path");
  }
  std::size_t slot;
  if (count_ == options_.window) {
    slot = head_;
    retire(ring_.sample(head_));
    head_ = (head_ + 1) % options_.window;
  } else {
    slot = (head_ + count_) % options_.window;
  }
  std::copy(y.begin(), y.end(), ring_.sample(slot).begin());
  add(y);
  ++pushes_;
  if (++since_refresh_ >= options_.refresh_every) refresh();
}

void PairMoments::push_block(std::span<const double> values,
                             std::size_t rows) {
  if (values.size() != rows * dim_) {
    throw std::invalid_argument("push_block size != rows * dim");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    push(values.subspan(r * dim_, dim_));
  }
}

void PairMoments::refresh() {
  since_refresh_ = 0;
  ++refreshes_;
  if (count_ == 0) return;
  // Means in logical (oldest-to-newest) order, as in StreamingMoments.
  std::fill(mean_.begin(), mean_.end(), 0.0);
  for (std::size_t l = 0; l < count_; ++l) {
    const auto src = ring_.sample((head_ + l) % options_.window);
    for (std::size_t i = 0; i < dim_; ++i) mean_[i] += src[i];
  }
  const double inv = 1.0 / static_cast<double>(count_);
  for (auto& m : mean_) m *= inv;
  // Exact per-pair recompute, chunk-parallel over the pair list; each pair
  // accumulates its own sum sequentially in logical order, so the result is
  // independent of the thread count.
  util::parallel_for(
      values_.size(), std::max<std::size_t>(1, kPairGrain / options_.window),
      [&](std::size_t begin, std::size_t end) {
        store_->for_pairs(
            begin, end,
            [&](std::size_t p, std::uint32_t i, std::uint32_t j,
                std::span<const std::uint32_t>) {
              double sum = 0.0;
              for (std::size_t l = 0; l < count_; ++l) {
                const auto src = ring_.sample((head_ + l) % options_.window);
                sum += (src[i] - mean_[i]) * (src[j] - mean_[j]);
              }
              values_[p] = sum;
            });
      },
      options_.threads);
}

void PairMoments::save_state(io::CheckpointWriter& writer) const {
  writer.begin_section(io::tags::kPairMoments);
  writer.usize(dim_);
  writer.usize(options_.window);
  writer.usize(values_.size());
  churn_.save_state(writer);
  writer.doubles(ring_.flat());
  writer.usize(head_);
  writer.usize(count_);
  writer.usize(pushes_);
  writer.usize(since_refresh_);
  writer.usize(refreshes_);
  writer.doubles(mean_);
  writer.doubles(values_);
  writer.end_section();
}

void PairMoments::restore_state(io::CheckpointReader& reader) {
  reader.expect_section(io::tags::kPairMoments);
  const std::size_t dim = reader.usize();
  const std::size_t window = reader.usize();
  const std::size_t pairs = reader.usize();
  if (dim != dim_ || window != options_.window || pairs != values_.size()) {
    throw io::CheckpointError(
        io::CheckpointErrorKind::kMismatch,
        "pair moments shape " + std::to_string(dim) + "x" +
            std::to_string(window) + "/" + std::to_string(pairs) +
            " pairs, expected " + std::to_string(dim_) + "x" +
            std::to_string(options_.window) + "/" +
            std::to_string(values_.size()));
  }
  stats::PathChurnLedger churn = churn_;
  churn.restore_state(reader);
  std::vector<double> ring = reader.doubles();
  const std::size_t head = reader.usize();
  const std::size_t count = reader.usize();
  const std::size_t pushes = reader.usize();
  const std::size_t since_refresh = reader.usize();
  const std::size_t refreshes = reader.usize();
  std::vector<double> mean = reader.doubles();
  std::vector<double> values = reader.doubles();
  reader.end_section();
  if (ring.size() != dim_ * options_.window || head >= options_.window ||
      count > options_.window || mean.size() != dim_ ||
      values.size() != values_.size()) {
    throw io::CheckpointError(io::CheckpointErrorKind::kCorrupt,
                              "pair moments state is inconsistent");
  }
  churn_ = std::move(churn);
  std::copy(ring.begin(), ring.end(), ring_.sample(0).data());
  head_ = head;
  count_ = count;
  pushes_ = pushes;
  since_refresh_ = since_refresh;
  refreshes_ = refreshes;
  mean_ = std::move(mean);
  values_ = std::move(values);
}

double PairMoments::covariance(std::size_t i, std::size_t j) const {
  if (count_ < 2) throw std::logic_error("covariance needs >= 2 snapshots");
  const std::size_t p = store_->find_pair(i, j);
  if (p == SharingPairStore::kNoPair) {
    return 0.0;  // non-sharing pair: never consumed
  }
  return pair_covariance(p);
}

const linalg::Matrix& PairMoments::matrix() const {
  throw std::logic_error(
      "PairMoments maintains only sharing-pair covariances; use the dense "
      "StreamingMoments accumulator where the full S is required");
}

std::size_t PairMoments::samples(std::size_t i) const {
  return churn_.samples(i, pushes_, count_);
}

bool PairMoments::pair_ready(std::size_t i, std::size_t j) const {
  return churn_.pair_ready(i, j, pushes_, count_);
}

void PairMoments::activate_path(std::size_t i) {
  if (i >= dim_) throw std::invalid_argument("path out of range");
  churn_.activate(i, pushes_);
}

void PairMoments::retire_path(std::size_t i) {
  if (i >= dim_) throw std::invalid_argument("path out of range");
  churn_.retire(i);
}

std::size_t PairMoments::add_path() { return add_paths(1); }

std::size_t PairMoments::add_paths(std::size_t count) {
  if (count == 0) throw std::invalid_argument("add_paths needs count >= 1");
  const std::size_t index = dim_;
  const std::size_t next = dim_ + count;
  stats::SnapshotMatrix ring(next, options_.window);
  for (std::size_t l = 0; l < options_.window; ++l) {
    const auto src = ring_.sample(l);
    std::copy(src.begin(), src.end(), ring.sample(l).begin());
  }
  ring_ = std::move(ring);
  mean_.resize(next, 0.0);
  delta_.resize(next, 0.0);
  for (std::size_t k = 0; k < count; ++k) churn_.add_dim(pushes_);
  // New pairs appended by SharingPairStore::add_rows start at zero — the
  // exact centred cross-product of the new dimensions' all-zero history.
  values_.resize(store_->pair_count(), 0.0);
  dim_ = next;
  return index;
}

}  // namespace losstomo::core
