#include "core/augmented_matrix.hpp"

#include <stdexcept>

namespace losstomo::core {

linalg::Matrix build_augmented_matrix(const linalg::SparseBinaryMatrix& r,
                                      std::size_t max_entries) {
  const std::size_t np = r.rows();
  const std::size_t nc = r.cols();
  const std::size_t rows = pair_count(np);
  if (rows * nc > max_entries) {
    throw std::length_error("augmented matrix too large to materialise");
  }
  linalg::Matrix a(rows, nc);
  for (std::size_t i = 0; i < np; ++i) {
    const auto ri = r.row(i);
    for (std::size_t j = i; j < np; ++j) {
      const auto rj = r.row(j);
      auto out = a.row(pair_index(i, j, np));
      // Sorted-list intersection of the two link sets.
      std::size_t x = 0, y = 0;
      while (x < ri.size() && y < rj.size()) {
        if (ri[x] < rj[y]) {
          ++x;
        } else if (ri[x] > rj[y]) {
          ++y;
        } else {
          out[ri[x]] = 1.0;
          ++x;
          ++y;
        }
      }
    }
  }
  return a;
}

linalg::Vector packed_covariances(const stats::CenteredSnapshots& y) {
  const std::size_t np = y.dim();
  linalg::Vector sigma(pair_count(np), 0.0);
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t j = i; j < np; ++j) {
      sigma[pair_index(i, j, np)] = y.covariance(i, j);
    }
  }
  return sigma;
}

linalg::Matrix augmented_normal_matrix(const linalg::CoTraversalGram& gram) {
  return gram.map_to_dense(
      [](double n) { return n * (n + 1.0) / 2.0; });
}

linalg::Vector augmented_normal_rhs(
    const stats::CenteredSnapshots& y,
    const std::vector<std::vector<std::uint32_t>>& column_paths) {
  const std::size_t nc = column_paths.size();
  const std::size_t m = y.count();
  if (m < 2) throw std::logic_error("need >= 2 snapshots");
  linalg::Vector h(nc, 0.0);

  // Per-path variances, shared across links.
  linalg::Vector path_var(y.dim(), 0.0);
  for (std::size_t l = 0; l < m; ++l) {
    const auto row = y.sample(l);
    for (std::size_t i = 0; i < y.dim(); ++i) path_var[i] += row[i] * row[i];
  }
  for (auto& v : path_var) v /= static_cast<double>(m - 1);

  for (std::size_t k = 0; k < nc; ++k) {
    const auto& paths = column_paths[k];
    // FullSum = 1/(m-1) sum_l ( sum_{i in S_k} ytilde_i^l )^2.
    double full_sum = 0.0;
    for (std::size_t l = 0; l < m; ++l) {
      const auto row = y.sample(l);
      double s = 0.0;
      for (const auto i : paths) s += row[i];
      full_sum += s * s;
    }
    full_sum /= static_cast<double>(m - 1);
    double diag = 0.0;
    for (const auto i : paths) diag += path_var[i];
    h[k] = 0.5 * (full_sum + diag);
  }
  return h;
}

}  // namespace losstomo::core
