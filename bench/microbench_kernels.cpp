// Microbenchmark of the compute-kernel layer: scalar (seed) vs blocked vs
// blocked+parallel for the Phase-1 covariance-system build and the dense
// gram/GEMM kernels.  This is the perf-trajectory harness for the kernel
// work: run with `--json BENCH_kernels.json` and diff the recorded numbers
// across PRs.
//
//   build/bench_microbench_kernels [instance=tree|mesh] [nodes=1300] [m=384]
//                                  [hosts=32] [reps=3] [--json <path>]
//
// The headline figures are normal_build_speedup_1t (the seed's per-pair
// scalar accumulation vs the blocked single-thread path; target >= 5x on a
// >= 500-path instance) and normal_build_parallel_scaling (blocked 1-thread
// vs all-threads).
#include <algorithm>
#include <cmath>

#include "common.hpp"
#include "core/variance_estimator.hpp"
#include "linalg/kernels.hpp"
#include "util/parallel.hpp"

namespace {

using namespace losstomo;

// Best-of-reps wall time of fn(); the returned checksum feeds a sink so the
// optimizer cannot elide any rep.
template <typename Fn>
double time_best(std::size_t reps, double& sink, Fn&& fn) {
  double best = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    util::Timer timer;
    sink += fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

double checksum(const linalg::Matrix& m) {
  double acc = 0.0;
  for (const double v : m.data()) acc += v;
  return acc;
}

// The seed's scalar covariance pass: one O(m) inner loop per path pair
// (stats::CenteredSnapshots::covariance), exactly what accumulate_pairwise
// ran before the blocked kernels.
double scalar_packed_covariances(const stats::CenteredSnapshots& y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < y.dim(); ++i) {
    for (std::size_t j = i; j < y.dim(); ++j) acc += y.covariance(i, j);
  }
  return acc;
}

// The seed's naive gram triple loop (pre-kernel Matrix::gram).
double naive_gram(const linalg::Matrix& a, linalg::Matrix& g) {
  g = linalg::Matrix(a.cols(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto rr = a.row(r);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double v = rr[i];
      if (v == 0.0) continue;
      for (std::size_t j = i; j < a.cols(); ++j) g(i, j) += v * rr[j];
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return checksum(g);
}

}  // namespace

namespace {

// Synthetic Gaussian observations through the routing matrix, so timings
// depend only on problem shape, not simulator state.
stats::SnapshotMatrix synthetic_snapshots(const linalg::SparseBinaryMatrix& r,
                                          std::size_t m, stats::Rng& rng) {
  stats::SnapshotMatrix y(r.rows(), m);
  linalg::Vector x(r.cols());
  for (std::size_t l = 0; l < m; ++l) {
    for (std::size_t k = 0; k < r.cols(); ++k) {
      x[k] = -0.02 + 0.03 * rng.gaussian();
    }
    const auto yl = r.multiply(x);
    std::copy(yl.begin(), yl.end(), y.sample(l).begin());
  }
  return y;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto nodes = args.get_size("nodes", 1300);
  const auto hosts = args.get_size("hosts", 32);
  const auto instance = args.get_string("instance", "tree");
  const auto m = args.get_size("m", 384);
  const auto reps = args.get_size("reps", 3);
  const auto json_path = args.get_string("json", "");
  args.finish();
  const std::size_t threads = util::default_threads();

  // A >= 500-path instance.  The default single-beacon-style tree has dense
  // pair sharing (most path pairs share links near the root), which is the
  // regime where the seed's per-pair O(m) covariance loop dominated;
  // `instance=mesh` gives a sparse-sharing Waxman overlay where the seed's
  // skip already avoided most covariances (the kernels must not regress
  // there).
  stats::Rng rng(41);
  auto inst = instance == "mesh"
                  ? bench::from_topology(
                        topology::make_waxman(
                            {.nodes = nodes, .links_per_node = 2}, rng),
                        "Waxman", hosts)
                  : bench::make_tree_instance(nodes, 8, 41);
  const auto& r = inst.matrix().matrix();
  const std::size_t np = r.rows();
  const std::size_t nc = r.cols();

  const stats::SnapshotMatrix y = synthetic_snapshots(r, m, rng);
  const stats::CenteredSnapshots centered(y);

  std::cout << "microbench_kernels: instance=" << inst.name << " np=" << np
            << " links=" << nc << " m=" << m << " threads=" << threads
            << "\n\n";

  double sink = 0.0;

  // --- covariance matrix S = Yc^T Yc / (m-1) -------------------------------
  const double cov_scalar = time_best(
      reps, sink, [&] { return scalar_packed_covariances(centered); });
  const double cov_blocked = time_best(reps, sink, [&] {
    return checksum(stats::covariance_matrix(centered, 1));
  });
  const double cov_parallel = time_best(reps, sink, [&] {
    return checksum(stats::covariance_matrix(centered, threads));
  });

  // --- full normal-equation build (covariance system, drop-negative) ------
  core::VarianceOptions scalar_opts;
  scalar_opts.negatives = core::NegativeCovariancePolicy::kDrop;
  scalar_opts.use_reference_impl = true;
  core::VarianceOptions blocked_opts = scalar_opts;
  blocked_opts.use_reference_impl = false;
  blocked_opts.threads = 1;
  core::VarianceOptions parallel_opts = blocked_opts;
  parallel_opts.threads = threads;

  const double build_scalar = time_best(reps, sink, [&] {
    return checksum(core::build_normal_equations(r, y, scalar_opts).g);
  });
  const double build_blocked = time_best(reps, sink, [&] {
    return checksum(core::build_normal_equations(r, y, blocked_opts).g);
  });
  const double build_parallel = time_best(reps, sink, [&] {
    return checksum(core::build_normal_equations(r, y, parallel_opts).g);
  });

  // --- dense gram / GEMM kernels ------------------------------------------
  const std::size_t gn = 512;
  linalg::Matrix dense(gn, gn);
  for (auto& v : dense.data()) v = rng.gaussian();
  linalg::Matrix scratch;
  const double gram_naive_s =
      time_best(reps, sink, [&] { return naive_gram(dense, scratch); });
  const double gram_blocked_s = time_best(
      reps, sink, [&] { return checksum(linalg::blocked_gram(dense, 1.0, 1)); });
  const double gram_parallel_s = time_best(reps, sink, [&] {
    return checksum(linalg::blocked_gram(dense, 1.0, threads));
  });

  util::Table table({"kernel", "scalar s", "blocked 1t s", "parallel s",
                     "speedup 1t", "scaling"});
  const auto add = [&](const std::string& name, double scalar, double blocked,
                       double parallel) {
    table.add_row({name, util::Table::num(scalar, 4),
                   util::Table::num(blocked, 4), util::Table::num(parallel, 4),
                   util::Table::num(scalar / blocked, 2),
                   util::Table::num(blocked / parallel, 2)});
  };
  add("covariance S", cov_scalar, cov_blocked, cov_parallel);
  add("normal-eq build", build_scalar, build_blocked, build_parallel);
  add("gram 512^2", gram_naive_s, gram_blocked_s, gram_parallel_s);
  table.print(std::cout);
  std::cout << "\n(sink " << sink << ")\n";

  bench::JsonReport report;
  report.set("bench", std::string("microbench_kernels"));
  report.set("instance", inst.name);
  report.set("np", np);
  report.set("nc", nc);
  report.set("m", m);
  report.set("threads", threads);
  report.set("cov_scalar_seconds", cov_scalar);
  report.set("cov_blocked_1t_seconds", cov_blocked);
  report.set("cov_parallel_seconds", cov_parallel);
  report.set("cov_speedup_1t", cov_scalar / cov_blocked);
  report.set("normal_build_scalar_seconds", build_scalar);
  report.set("normal_build_blocked_1t_seconds", build_blocked);
  report.set("normal_build_parallel_seconds", build_parallel);
  report.set("normal_build_speedup_1t", build_scalar / build_blocked);
  report.set("normal_build_parallel_scaling", build_blocked / build_parallel);
  report.set("gram_naive_seconds", gram_naive_s);
  report.set("gram_blocked_1t_seconds", gram_blocked_s);
  report.set("gram_parallel_seconds", gram_parallel_s);
  report.set("gram_speedup_1t", gram_naive_s / gram_blocked_s);
  report.write(json_path);
  return 0;
}
