#include "stats/covariance_source.hpp"

namespace losstomo::stats {

BatchCovarianceSource::BatchCovarianceSource(const SnapshotMatrix& y,
                                             std::size_t threads)
    : owned_(CenteredSnapshots(y)), centered_(&*owned_), threads_(threads) {}

BatchCovarianceSource::BatchCovarianceSource(const CenteredSnapshots& centered,
                                             std::size_t threads)
    : centered_(&centered), threads_(threads) {}

const linalg::Matrix& BatchCovarianceSource::matrix() const {
  if (!cached_) cached_ = covariance_matrix(*centered_, threads_);
  return *cached_;
}

}  // namespace losstomo::stats
