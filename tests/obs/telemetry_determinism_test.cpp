// The telemetry determinism contract, pinned end to end: every metric
// registered kDeterministic must be BIT-identical across thread counts,
// shard counts, and a checkpoint/restore.  The instrumented components
// earn this by *publishing* counters from their serialized engine state
// (obs::Registry docs) — so this fuzzer is the tripwire for anyone who
// later wires a live, order-dependent count into a deterministic slot.
//
// The drill: one churn-heavy branching-tree scenario (every event type
// the runner grows through, including link discovery) driven to
// completion under threads x shards ∈ {1,2,8} x {0,2,4}, each run with
// its own registry; all nine deterministic_values() maps must be equal.
// Then the checkpoint leg: save mid-run, restore into a fresh runner and
// a fresh registry, and require the map to match at the restore point and
// again at the end of the run.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "core/monitor.hpp"
#include "obs/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "test_util.hpp"

namespace losstomo::obs {
namespace {

using scenario::EventType;
using scenario::ScenarioRunner;
using scenario::ScenarioSpec;
using scenario::TopologySpec;

ScenarioSpec fuzz_spec() {
  ScenarioSpec spec;
  spec.name = "telemetry-fuzz";
  spec.topology.kind = TopologySpec::Kind::kBranchingTree;
  spec.topology.depth = 3;
  spec.topology.branching = 3;
  spec.topology.extra_leaves = 2;
  spec.topology.seed = 5;
  spec.window = 12;
  spec.ticks = 48;
  spec.seed = 17;
  spec.p = 0.3;
  spec.probes = 400;
  spec.min_good_loss = 0.002;
  spec.reserve_paths = 4;
  spec.events = {
      {.tick = 16, .type = EventType::kPathLeave, .path = 2},
      {.tick = 20, .type = EventType::kPathJoin, .path = 2},
      {.tick = 24, .type = EventType::kLinkDown, .link = 1},
      {.tick = 30, .type = EventType::kLinkUp, .link = 1},
      {.tick = 34, .type = EventType::kRegimeShift, .value = 0.2},
      {.tick = 38, .type = EventType::kGrow, .count = 2},
      {.tick = 42, .type = EventType::kGrowLinks, .count = 2},
  };
  return spec;
}

// All runs use the sharing-pairs accumulator so the published metric SET
// is identical; shards == 0 is the flat PairMoments, shards > 0 the
// sharded gather (bit-identical to flat by contract, which is exactly
// what this fuzzer pins).
core::MonitorOptions options_for(std::size_t threads, std::size_t shards,
                                 Registry& registry) {
  core::MonitorOptions options;
  options.lia.variance.threads = threads;
  options.accumulator = core::CovarianceAccumulator::kSharingPairs;
  options.shards = shards;
  options.telemetry = &registry;
  return options;
}

std::map<std::string, std::uint64_t> run_to_completion(std::size_t threads,
                                                       std::size_t shards) {
  Registry registry;
  ScenarioRunner runner(fuzz_spec(),
                        options_for(threads, shards, registry));
  while (runner.ticks_run() < runner.spec().ticks) runner.step();
  return registry.deterministic_values();
}

TEST(TelemetryDeterminism, BitIdenticalAcrossThreadsAndShards) {
  const auto reference = run_to_completion(1, 0);
  ASSERT_FALSE(reference.empty());
  // Spot checks that the map actually covers the engine counters this
  // fuzzer exists to pin — an accidentally-empty registry passes nothing.
  EXPECT_TRUE(reference.contains("monitor.rank1_updates"));
  EXPECT_TRUE(reference.contains("monitor.refactorizations"));
  EXPECT_TRUE(reference.contains("monitor.pairs"));
  EXPECT_TRUE(reference.contains("scenario.ticks"));
  EXPECT_TRUE(reference.contains("scenario.events.grow_links"));

  for (const std::size_t threads : {1, 2, 8}) {
    for (const std::size_t shards : {0, 2, 4}) {
      const auto values = run_to_completion(threads, shards);
      EXPECT_EQ(values, reference)
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(TelemetryDeterminism, CheckpointRestoreResumesCountersExactly) {
  const std::string file =
      losstomo::testing::scratch_file("telemetry.ckpt");
  const auto spec = fuzz_spec();
  const std::size_t kill_at = 26;  // past churn, mid link-down forcing

  // Reference run records the deterministic map at the kill tick and at
  // the end.
  Registry ref_registry;
  ScenarioRunner reference(spec, options_for(2, 2, ref_registry));
  while (reference.ticks_run() < kill_at) reference.step();
  reference.save_checkpoint(file);
  const auto at_kill = ref_registry.deterministic_values();
  while (reference.ticks_run() < spec.ticks) reference.step();
  const auto at_end = ref_registry.deterministic_values();

  // A fresh runner + fresh registry restored from the file must publish
  // the identical map immediately, and stay identical to the end — at a
  // different thread count for good measure.  (The shard count is part of
  // the checkpoint identity and must match; threads are a pure execution
  // knob.)
  Registry resumed_registry;
  ScenarioRunner resumed(spec, options_for(8, 2, resumed_registry));
  resumed.restore_checkpoint(file);
  EXPECT_EQ(resumed_registry.deterministic_values(), at_kill);
  while (resumed.ticks_run() < spec.ticks) resumed.step();
  EXPECT_EQ(resumed_registry.deterministic_values(), at_end);

  // The per-type event ledger came back too (it feeds the counters).
  EXPECT_EQ(resumed.event_counts(), reference.event_counts());
}

}  // namespace
}  // namespace losstomo::obs
