// Sparse structures tailored to routing matrices.
//
// A reduced routing matrix R is a 0/1 matrix with one row per end-to-end
// path (the links the path traverses).  Everything the inference needs at
// scale derives from R's sparsity pattern:
//   * R x and R^T y products (first-moment system),
//   * the co-traversal Gram matrix N = R^T R, whose entry N_kl counts the
//     paths traversing both links k and l.  N determines both the Phase-1
//     normal equations ((A^T A)_kl = N_kl (N_kl + 1) / 2, see
//     core/augmented_matrix.hpp) and the Phase-2 rank structure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/parallel.hpp"

namespace losstomo::linalg {

/// Sorted-list intersection of two ascending index lists into `out`
/// (cleared first).  The shared-link set of a path pair — used by the
/// augmented-matrix row assembly and both pairwise accumulators.
void intersect_sorted(std::span<const std::uint32_t> a,
                      std::span<const std::uint32_t> b,
                      std::vector<std::uint32_t>& out);

/// 0/1 sparse matrix stored as sorted column indices per row.  Existing
/// rows are immutable; the matrix grows append-only via append_rows (the
/// overlay-growth path: new measurement paths, and with `new_cols` new
/// virtual links, join an already-monitored matrix in O(appended nnz)).
class SparseBinaryMatrix {
 public:
  SparseBinaryMatrix() = default;
  /// `rows[i]` lists the column indices of row i (need not be sorted;
  /// duplicates are rejected).
  SparseBinaryMatrix(std::size_t cols,
                     std::vector<std::vector<std::uint32_t>> rows);

  /// Appends `rows` below the existing ones, first widening the column
  /// space by `new_cols` (0 = fixed column universe).  Row indices may
  /// reference the new columns; validation matches the constructor
  /// (sorting, duplicate and range checks).  Cost: O(total appended nnz)
  /// — existing rows are untouched, never copied.  Throws
  /// std::invalid_argument and leaves the matrix unchanged on a bad row.
  void append_rows(std::size_t new_cols,
                   std::vector<std::vector<std::uint32_t>> rows);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const;

  /// Sorted column indices of row i.
  [[nodiscard]] std::span<const std::uint32_t> row(std::size_t i) const {
    return rows_[i];
  }

  /// True when row i contains column c (binary search).
  [[nodiscard]] bool contains(std::size_t i, std::uint32_t c) const;

  /// y = R x.
  [[nodiscard]] Vector multiply(std::span<const double> x) const;
  /// x = R^T y.
  [[nodiscard]] Vector multiply_transpose(std::span<const double> y) const;

  /// Transpose incidence: for each column, the sorted list of rows that
  /// contain it.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> column_lists() const;

  /// Dense copy (for small problems and tests).
  [[nodiscard]] Matrix to_dense() const;

 private:
  std::size_t cols_ = 0;
  std::vector<std::vector<std::uint32_t>> rows_;
};

/// Symmetric sparse matrix of co-occurrence counts N = R^T R for a
/// SparseBinaryMatrix R.  Stores a full (both-triangles) adjacency per row,
/// sorted by column, for O(log nnz_row) lookup and linear row scans.
class CoTraversalGram {
 public:
  explicit CoTraversalGram(const SparseBinaryMatrix& r);

  [[nodiscard]] std::size_t dim() const { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t nnz() const { return cols_.size(); }

  /// N_kl (0 when the links share no path).
  [[nodiscard]] double at(std::size_t k, std::size_t l) const;

  /// Row access: parallel spans of column indices and count values.
  [[nodiscard]] std::span<const std::uint32_t> row_cols(std::size_t k) const;
  [[nodiscard]] std::span<const double> row_values(std::size_t k) const;

  /// Dense copy of N (for small problems and tests).
  [[nodiscard]] Matrix to_dense() const;

  /// Dense matrix with entries f(N_kl) for nonzero N_kl; used to build the
  /// Phase-1 normal equations (A^T A)_kl = N_kl (N_kl + 1) / 2 without
  /// materializing A.  Entries with N_kl = 0 stay 0 (f(0) must be 0).
  /// Rows are filled in parallel (disjoint writes — bit-identical at any
  /// `threads`; 0 = library default).
  template <typename F>
  [[nodiscard]] Matrix map_to_dense(F&& f, std::size_t threads = 0) const {
    Matrix out(dim(), dim());
    util::parallel_for(
        dim(), 8,
        [&](std::size_t k_begin, std::size_t k_end) {
          for (std::size_t k = k_begin; k < k_end; ++k) {
            const auto cols = row_cols(k);
            const auto vals = row_values(k);
            auto row = out.row(k);
            for (std::size_t idx = 0; idx < cols.size(); ++idx) {
              row[cols[idx]] = f(vals[idx]);
            }
          }
        },
        threads);
    return out;
  }

 private:
  std::vector<std::size_t> offsets_;   // dim+1 CSR offsets
  std::vector<std::uint32_t> cols_;    // column indices, sorted per row
  std::vector<double> values_;         // counts
};

}  // namespace losstomo::linalg
