#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "sim/probe_sim.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"

namespace losstomo::core {
namespace {

TEST(LiaMonitor, WarmupProducesNoDiagnosis) {
  const linalg::SparseBinaryMatrix r(2, {{0}, {1}});
  LiaMonitor monitor(r, {.window = 3});
  const linalg::Vector y{0.0, 0.0};
  EXPECT_FALSE(monitor.observe(y).has_value());
  EXPECT_FALSE(monitor.observe(y).has_value());
  EXPECT_FALSE(monitor.observe(y).has_value());
  EXPECT_TRUE(monitor.observe(y).has_value());  // 4th tick: window full
  EXPECT_TRUE(monitor.warmed_up());
  EXPECT_EQ(monitor.ticks(), 4u);
}

TEST(LiaMonitor, RejectsBadConfig) {
  const linalg::SparseBinaryMatrix r(1, {{0}});
  EXPECT_THROW(LiaMonitor(r, {.window = 1}), std::invalid_argument);
  EXPECT_THROW(LiaMonitor(r, {.window = 5, .relearn_every = 0}),
               std::invalid_argument);
}

TEST(LiaMonitor, RejectsWrongSnapshotSize) {
  const linalg::SparseBinaryMatrix r(2, {{0}, {1}});
  LiaMonitor monitor(r, {.window = 2});
  const linalg::Vector wrong{0.0};
  EXPECT_THROW(monitor.observe(wrong), std::invalid_argument);
}

TEST(LiaMonitor, MatchesManualLearnInferSplit) {
  // Feeding m+1 snapshots must reproduce exactly Lia::learn(first m) +
  // infer(last).
  const auto net = losstomo::testing::make_two_beacon_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  stats::Rng rng(301);
  const auto v = losstomo::testing::random_variances(rrm.link_count(), rng, 0.3);
  const linalg::Vector mu(rrm.link_count(), -0.05);
  const std::size_t m = 12;
  const auto y =
      losstomo::testing::synthetic_observations(rrm.matrix(), mu, v, m + 1, rng);

  LiaMonitor monitor(rrm.matrix(), {.window = m});
  std::optional<LossInference> from_monitor;
  for (std::size_t l = 0; l <= m; ++l) {
    from_monitor = monitor.observe(y.sample(l));
  }
  ASSERT_TRUE(from_monitor.has_value());

  stats::SnapshotMatrix history(rrm.path_count(), m);
  for (std::size_t l = 0; l < m; ++l) {
    const auto src = y.sample(l);
    std::copy(src.begin(), src.end(), history.sample(l).begin());
  }
  Lia lia(rrm.matrix());
  lia.learn(history);
  const auto manual = lia.infer(y.sample(m));
  EXPECT_LT(linalg::max_abs_diff(from_monitor->loss, manual.loss), 1e-12);
}

TEST(LiaMonitor, SlidingWindowTracksRegimeChange) {
  // The congested link changes identity mid-run; after enough new
  // snapshots the monitor's variance ordering must follow.
  const auto net = losstomo::testing::make_two_beacon_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  const std::size_t nc = rrm.link_count();
  stats::Rng rng(302);
  const std::size_t m = 20;
  LiaMonitor monitor(rrm.matrix(), {.window = m});

  const auto feed = [&](std::size_t hot_link, std::size_t count) {
    linalg::Vector mu(nc, -1e-4);
    linalg::Vector v(nc, 1e-10);
    mu[hot_link] = -0.1;
    v[hot_link] = 0.01;
    std::optional<LossInference> last;
    for (std::size_t l = 0; l < count; ++l) {
      linalg::Vector x(nc);
      for (std::size_t k = 0; k < nc; ++k) {
        x[k] = std::min(rng.gaussian(mu[k], std::sqrt(v[k])), 0.0);
      }
      last = monitor.observe(rrm.matrix().multiply(x));
    }
    return last;
  };

  const auto before = feed(0, 2 * m);
  ASSERT_TRUE(before.has_value());
  EXPECT_GT(before->loss[0], 0.01);
  // Regime change: link 3 becomes the hot one.
  const auto after = feed(3, 3 * m);
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(after->loss[3], 0.01);
  EXPECT_LT(after->loss[0], 0.01);
}

TEST(LiaMonitor, RelearnEveryAmortizes) {
  // With relearn_every = 5 the variance estimate stays frozen between
  // re-learns but diagnoses continue every tick.
  const auto net = losstomo::testing::make_fig1_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  stats::Rng rng(303);
  const auto v = losstomo::testing::random_variances(rrm.link_count(), rng, 0.4);
  const linalg::Vector mu(rrm.link_count(), -0.02);
  const std::size_t m = 8;
  const auto y = losstomo::testing::synthetic_observations(rrm.matrix(), mu, v,
                                                           m + 10, rng);
  LiaMonitor monitor(rrm.matrix(), {.window = m, .relearn_every = 5});
  std::size_t diagnoses = 0;
  for (std::size_t l = 0; l < m + 10; ++l) {
    if (monitor.observe(y.sample(l)).has_value()) ++diagnoses;
  }
  EXPECT_EQ(diagnoses, 10u);
}

// The streaming engine (incremental covariance + cached-factor normal
// equations) must reproduce the batch relearn path on every diagnosed
// tick, under both negative-covariance policies, through several window
// wrap-arounds.
TEST(LiaMonitor, StreamingEngineMatchesBatchEngine) {
  const auto net = losstomo::testing::make_two_beacon_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  stats::Rng rng(310);
  const auto v = losstomo::testing::random_variances(rrm.link_count(), rng, 0.4);
  const linalg::Vector mu(rrm.link_count(), -0.05);
  const std::size_t m = 10;
  const std::size_t ticks = 4 * m;  // >= 3 wrap-arounds
  const auto y =
      losstomo::testing::synthetic_observations(rrm.matrix(), mu, v, ticks, rng);

  for (const auto policy : {NegativeCovariancePolicy::kDrop,
                            NegativeCovariancePolicy::kKeep}) {
    MonitorOptions batch_options{.window = m, .engine = MonitorEngine::kBatch};
    batch_options.lia.variance.negatives = policy;
    MonitorOptions streaming_options = batch_options;
    streaming_options.engine = MonitorEngine::kStreaming;
    // Cross a drift-refresh boundary mid-run.
    streaming_options.refresh_every = m + 3;

    LiaMonitor batch(rrm.matrix(), batch_options);
    LiaMonitor streaming(rrm.matrix(), streaming_options);
    ASSERT_EQ(streaming.engine(), MonitorEngine::kStreaming);
    std::size_t compared = 0;
    for (std::size_t l = 0; l < ticks; ++l) {
      const auto from_batch = batch.observe(y.sample(l));
      const auto from_streaming = streaming.observe(y.sample(l));
      ASSERT_EQ(from_batch.has_value(), from_streaming.has_value());
      if (!from_batch) continue;
      ++compared;
      EXPECT_LE(linalg::max_abs_diff(from_batch->loss, from_streaming->loss),
                1e-10)
          << "tick " << l;
      EXPECT_LE(linalg::max_abs_diff(batch.variances().v,
                                     streaming.variances().v),
                1e-10)
          << "tick " << l;
    }
    EXPECT_EQ(compared, ticks - m);
  }
}

// Regression (satellite): with relearn_every > 1 every snapshot must still
// enter the window, so a delayed relearn sees the full intermediate
// history.  Pinned by comparing each relearn tick against a fresh Lia
// trained on exactly the preceding m snapshots.
TEST(LiaMonitor, DelayedRelearnSeesAllIntermediateSnapshots) {
  const auto net = losstomo::testing::make_two_beacon_network();
  const net::ReducedRoutingMatrix rrm(net.graph, net.paths);
  stats::Rng rng(311);
  const auto v = losstomo::testing::random_variances(rrm.link_count(), rng, 0.4);
  const linalg::Vector mu(rrm.link_count(), -0.05);
  const std::size_t m = 8;
  const std::size_t relearn_every = 4;
  const std::size_t ticks = m + 3 * relearn_every + 1;
  const auto y =
      losstomo::testing::synthetic_observations(rrm.matrix(), mu, v, ticks, rng);

  for (const auto engine : {MonitorEngine::kStreaming, MonitorEngine::kBatch}) {
    LiaMonitor monitor(rrm.matrix(),
                       {.window = m, .relearn_every = relearn_every,
                        .engine = engine});
    std::size_t since_learn = 0;
    bool trained = false;
    for (std::size_t l = 0; l < ticks; ++l) {
      const auto inference = monitor.observe(y.sample(l));
      if (l < m) continue;
      ASSERT_TRUE(inference.has_value());
      const bool relearn_tick =
          !trained || ++since_learn >= relearn_every;
      if (!relearn_tick) continue;
      trained = true;
      since_learn = 0;
      // Expected: variances learned on the m snapshots preceding tick l —
      // including the ones observed since the previous relearn.
      stats::SnapshotMatrix history(rrm.path_count(), m);
      for (std::size_t w = 0; w < m; ++w) {
        const auto src = y.sample(l - m + w);
        std::copy(src.begin(), src.end(), history.sample(w).begin());
      }
      Lia expected(rrm.matrix());
      expected.learn(history);
      EXPECT_LE(linalg::max_abs_diff(monitor.variances().v,
                                     expected.variances().v),
                1e-10)
          << "engine=" << (engine == MonitorEngine::kStreaming ? "streaming"
                                                               : "batch")
          << " relearn tick " << l;
      EXPECT_LE(linalg::max_abs_diff(inference->loss,
                                     expected.infer(y.sample(l)).loss),
                1e-10);
    }
  }
}

// Regression (satellite): the monitor (and its inner Lia) own the routing
// matrix, so constructing from a temporary must be safe.  Under ASan the
// old const-reference member turned this into a use-after-free.
TEST(LiaMonitor, OwnsRoutingMatrixAcrossReconstruction) {
  const auto make_matrix = [] {
    const auto net = losstomo::testing::make_two_beacon_network();
    return net::ReducedRoutingMatrix(net.graph, net.paths).matrix();
  };
  std::optional<LiaMonitor> monitor;
  monitor.emplace(make_matrix(), MonitorOptions{.window = 4});
  stats::Rng rng(312);
  const std::size_t nc = monitor->routing().cols();
  const auto v = losstomo::testing::random_variances(nc, rng, 0.5);
  const linalg::Vector mu(nc, -0.05);
  const auto y = losstomo::testing::synthetic_observations(
      monitor->routing(), mu, v, 12, rng);
  // Reconstruct from another temporary mid-run, then keep observing.
  for (std::size_t l = 0; l < 6; ++l) monitor->observe(y.sample(l));
  monitor.emplace(make_matrix(), MonitorOptions{.window = 4});
  std::optional<LossInference> last;
  for (std::size_t l = 0; l < 12; ++l) last = monitor->observe(y.sample(l));
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->loss.size(), nc);
}

TEST(LiaMonitor, DenseQrConfigurationFallsBackToBatchEngine) {
  const linalg::SparseBinaryMatrix r(2, {{0}, {1}});
  MonitorOptions options{.window = 3, .engine = MonitorEngine::kStreaming};
  options.lia.variance.method = VarianceMethod::kDenseQr;
  LiaMonitor monitor(r, options);
  EXPECT_EQ(monitor.engine(), MonitorEngine::kBatch);
  const linalg::Vector y{-0.01, -0.02};
  for (int t = 0; t < 3; ++t) EXPECT_FALSE(monitor.observe(y).has_value());
  EXPECT_TRUE(monitor.observe(y).has_value());
  EXPECT_EQ(monitor.variances().method.substr(0, 8), "dense-qr");
}

TEST(LiaMonitor, EndToEndOnSimulator) {
  stats::Rng topo_rng(304);
  const auto tree =
      topology::make_random_tree({.nodes = 150, .max_branching = 8}, topo_rng);
  const net::ReducedRoutingMatrix rrm(tree.graph, topology::tree_paths(tree));
  sim::ScenarioConfig config;
  config.p = 0.1;
  sim::SnapshotSimulator simulator(tree.graph, rrm, config, 305);

  LiaMonitor monitor(rrm.matrix(), {.window = 30});
  stats::RunningStat dr;
  for (std::size_t t = 0; t < 36; ++t) {
    const auto snap = simulator.next();
    const auto inference = monitor.observe(snap.path_log_trans);
    if (!inference) continue;
    const auto acc = locate_congested(inference->loss, snap.link_congested,
                                      config.loss_model.threshold_tl);
    dr.add(acc.dr);
  }
  EXPECT_EQ(dr.count(), 6u);
  EXPECT_GT(dr.mean(), 0.8);
}

}  // namespace
}  // namespace losstomo::core
