// Path-churn bookkeeping of the sliding-window accumulator: add/retire is
// pure bookkeeping on top of a uniform incremental invariant — after a
// (re)activated dimension's filler has been flushed out of the ring, its
// moments equal a from-scratch computation over the real window.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/moments.hpp"
#include "stats/rng.hpp"
#include "stats/streaming.hpp"

namespace losstomo::stats {
namespace {

// From-scratch covariance of the last `window` pushed rows.
double reference_cov(const std::vector<std::vector<double>>& rows,
                     std::size_t window, std::size_t i, std::size_t j) {
  const std::size_t start = rows.size() - window;
  double mi = 0.0, mj = 0.0;
  for (std::size_t l = start; l < rows.size(); ++l) {
    mi += rows[l][i];
    mj += rows[l][j];
  }
  mi /= static_cast<double>(window);
  mj /= static_cast<double>(window);
  double c = 0.0;
  for (std::size_t l = start; l < rows.size(); ++l) {
    c += (rows[l][i] - mi) * (rows[l][j] - mj);
  }
  return c / static_cast<double>(window - 1);
}

TEST(StreamingChurn, RetireAndRejoinRecoversExactMoments) {
  constexpr std::size_t kDim = 6, kWindow = 8;
  StreamingMoments acc(kDim, {.window = kWindow});
  Rng rng(99);
  std::vector<std::vector<double>> rows;
  const auto push = [&](bool path2_active) {
    std::vector<double> y(kDim);
    for (std::size_t i = 0; i < kDim; ++i) y[i] = rng.gaussian(0.0, 1.0);
    if (!path2_active) y[2] = 0.0;  // deterministic filler for the retiree
    rows.push_back(y);
    acc.push(y);
  };

  for (std::size_t l = 0; l < kWindow + 3; ++l) push(true);
  ASSERT_TRUE(acc.pair_ready(2, 4));

  // Retire path 2: readiness drops immediately, every other pair is
  // untouched.
  acc.retire_path(2);
  EXPECT_FALSE(acc.path_active(2));
  EXPECT_EQ(acc.samples(2), 0u);
  EXPECT_FALSE(acc.pair_ready(2, 4));
  EXPECT_TRUE(acc.pair_ready(0, 4));
  for (std::size_t l = 0; l < 3; ++l) push(false);
  EXPECT_NEAR(acc.covariance(0, 4), reference_cov(rows, kWindow, 0, 4), 1e-12);

  // Rejoin: not ready until the filler slots have been flushed...
  acc.activate_path(2);
  for (std::size_t l = 0; l + 1 < kWindow; ++l) {
    push(true);
    EXPECT_FALSE(acc.pair_ready(2, 4)) << "after " << l + 1 << " pushes";
  }
  push(true);
  // ...then exactly the from-scratch window moments again.
  EXPECT_TRUE(acc.pair_ready(2, 4));
  for (std::size_t i = 0; i < kDim; ++i) {
    for (std::size_t j = i; j < kDim; ++j) {
      EXPECT_NEAR(acc.covariance(i, j), reference_cov(rows, kWindow, i, j),
                  1e-12)
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(StreamingChurn, AddPathGrowsWithZeroHistoryInvariant) {
  constexpr std::size_t kWindow = 6;
  StreamingMoments acc(3, {.window = kWindow});
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  const auto push = [&](std::size_t dims) {
    std::vector<double> y(dims);
    for (auto& v : y) v = rng.gaussian(0.0, 1.0);
    auto padded = y;
    padded.resize(4, 0.0);  // reference always sees 4 dims (zero history)
    rows.push_back(padded);
    acc.push(y);
  };
  for (std::size_t l = 0; l < kWindow + 2; ++l) push(3);

  const std::size_t added = acc.add_path();
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(acc.dim(), 4u);
  EXPECT_EQ(acc.samples(3), 0u);
  EXPECT_FALSE(acc.pair_ready(3, 0));
  EXPECT_TRUE(acc.pair_ready(0, 1));  // old dims unaffected

  for (std::size_t l = 0; l < kWindow; ++l) push(4);
  EXPECT_TRUE(acc.pair_ready(3, 0));
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i; j < 4; ++j) {
      EXPECT_NEAR(acc.covariance(i, j), reference_cov(rows, kWindow, i, j),
                  1e-12);
    }
  }
}

TEST(StreamingChurn, NonChurnedSourceReportsFullWindow) {
  StreamingMoments acc(2, {.window = 4});
  acc.push(std::vector<double>{1.0, 2.0});
  acc.push(std::vector<double>{2.0, 1.0});
  EXPECT_EQ(acc.samples(0), acc.count());
  EXPECT_TRUE(acc.pair_ready(0, 1));
}

}  // namespace
}  // namespace losstomo::stats
