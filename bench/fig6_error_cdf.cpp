// Figure 6: CDFs of the absolute error and of the error factor f_delta
// (eq. (10), delta = 1e-3) of LIA's inferred link loss rates on the tree
// topology with m = 50 snapshots.  Prints both CDFs as (x, F(x)) series.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace losstomo;
  const util::Args args(argc, argv);
  const bool full = util::Args::full_scale();
  const auto nodes = args.get_size("nodes", full ? 1000 : 400);
  const auto m = args.get_size("m", 50);
  const double p = args.get_double("p", 0.1);
  const auto runs = args.get_size("runs", full ? 10 : 4);
  const auto seed = args.get_size("seed", 7);
  const auto json_path = args.get_string("json", "");
  args.finish();

  std::cout << "Figure 6: error CDFs on the tree (nodes=" << nodes
            << ", m=" << m << ", p=" << p << ", runs=" << runs << ")\n\n";

  sim::ScenarioConfig config;
  config.p = p;

  // Trials are independent: run them concurrently with per-trial RNG
  // streams (results identical at any thread count).
  const auto outcomes = bench::run_trials(
      runs, seed, [&](std::size_t run, std::uint64_t trial_seed) {
        const auto inst = bench::make_tree_instance(nodes, 10, seed + run);
        return bench::run_pipeline(inst, config, m, trial_seed);
      });
  std::vector<double> abs_errors, factors;
  for (const auto& outcome : outcomes) {
    abs_errors.insert(abs_errors.end(), outcome.errors.absolute.begin(),
                      outcome.errors.absolute.end());
    factors.insert(factors.end(), outcome.errors.factor.begin(),
                   outcome.errors.factor.end());
  }
  const stats::EmpiricalCdf abs_cdf(std::move(abs_errors));
  const stats::EmpiricalCdf factor_cdf(std::move(factors));

  util::Table abs_table({"absolute error", "CDF"});
  for (const double x : {0.0, 0.0005, 0.001, 0.0015, 0.002, 0.0025, 0.005, 0.01}) {
    abs_table.add_row({util::Table::num(x, 4), util::Table::num(abs_cdf.at(x), 4)});
  }
  abs_table.print(std::cout);
  std::cout << '\n';

  util::Table factor_table({"error factor", "CDF"});
  for (const double x : {1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.5, 2.0}) {
    factor_table.add_row(
        {util::Table::num(x, 2), util::Table::num(factor_cdf.at(x), 4)});
  }
  factor_table.print(std::cout);

  std::cout << "\nmedian |error| = " << util::Table::num(abs_cdf.median(), 5)
            << ", 90th pct = " << util::Table::num(abs_cdf.quantile(0.9), 5)
            << "; median f_delta = " << util::Table::num(factor_cdf.median(), 3)
            << ", 90th pct = " << util::Table::num(factor_cdf.quantile(0.9), 3)
            << "\nExpected shape (paper): both CDFs concentrated at the left "
               "edge (|err| mostly < 0.0025, f_delta mostly < 1.25).\n";

  bench::JsonReport report;
  report.set("bench", std::string("fig6_error_cdf"));
  report.set("nodes", nodes);
  report.set("m", m);
  report.set("runs", runs);
  report.set("abs_error_median", abs_cdf.median());
  report.set("abs_error_p90", abs_cdf.quantile(0.9));
  report.set("factor_median", factor_cdf.median());
  report.set("factor_p90", factor_cdf.quantile(0.9));
  report.write(json_path);
  return 0;
}
